//===----------------------------------------------------------------------===//
///
/// \file
/// SAT backend for exact modulo scheduling: encodes the fixed-II
/// schedulability question the branch-and-bound engine answers by search
/// as a Boolean satisfiability problem and decides it with the embedded
/// CDCL solver (SatSolver.h), giving an independent decision procedure the
/// two engines can be cross-checked on.
///
/// The encoding follows the residue-space theorem the branch-and-bound
/// solver is built on: at a fixed II, a schedule exists iff there is an
/// assignment of issue-cycle residues rho(op) in [0, II) such that (a) the
/// modulo reservation table accepts every residue under the pre-scheduling
/// functional-unit assignment and (b) the dependence-constraint graph,
/// with each placed-pair bound MinDist(x,y) tightened to the smallest
/// congruent value, has no positive cycle. One Boolean per (operation,
/// residue) with exactly-one constraints captures the assignment; resource
/// conflicts and pairwise two-cycle dependence violations become binary
/// clauses up front; longer positive cycles (which pairwise clauses cannot
/// express) are excluded by lazy refinement — each candidate model is
/// checked with a max-plus closure, and any positive cycle found is
/// returned to the solver as a blocking clause over the participating
/// (operation, residue) pairs. The loop terminates because each cut
/// removes at least one point of the finite residue space, so the verdict
/// is exact: Scheduled models decode to validator-clean schedules and
/// Infeasible proves no schedule exists at this II.
///
/// The encoding is *incremental across the II = MII, MII+1, ... ladder*
/// (SatIILadder): one persistent solver per loop. At-most-one clauses over
/// residue columns are valid at every rung (an operation has one residue
/// regardless of II), so they — and all learned clauses — are shared;
/// residue columns are grown lazily as the ladder climbs. Everything that
/// depends on the concrete II (at-least-one over [0, II), resource
/// conflicts, dependence-difference clauses, lazy cycle cuts) is guarded
/// by a per-rung activation literal a_II: clauses carry a_II, the rung is
/// decided by solving under the assumption ¬a_II, and a finished rung is
/// permanently retired with the unit clause {a_II}, which also satisfies
/// every learned clause that depended on the rung.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SAT_SATSCHEDULER_H
#define LSMS_SAT_SATSCHEDULER_H

#include "graph/MinDist.h"
#include "ir/DepGraph.h"
#include "sat/SatSolver.h"

#include <atomic>
#include <vector>

namespace lsms {

/// Engine-level verdict for one fixed-II SAT attempt. The engine-neutral
/// dispatch (exact/ExactEngine.h) maps these onto ExactStatus.
enum class SatScheduleStatus : uint8_t {
  Scheduled,  ///< model found and decoded; TimesOut passes validateSchedule
  Infeasible, ///< formula (plus sound cuts) proven unsatisfiable
  Budget,     ///< conflict budget exhausted first
};

/// CDCL + encoder statistics for one fixed-II attempt. For ladder rungs
/// after the first these are per-call deltas, so accumulating attempts
/// never double-counts shared work.
struct SatEngineStats {
  long Variables = 0;
  long Clauses = 0; ///< problem clauses added this attempt (incl. cuts)
  long Decisions = 0;
  long Propagations = 0;
  long Conflicts = 0;
  long Restarts = 0;
  long Learned = 0;
  long Refinements = 0; ///< lazy positive-cycle cuts added
};

/// Persistent incremental SAT context for one loop's II ladder. Rungs must
/// be visited in non-decreasing II order; each solveAtII call retires the
/// previous rung's activation group and encodes only what the new II adds.
/// Deterministic for a fixed call sequence (unless a stop flag is set).
class SatIILadder {
public:
  SatIILadder(const DepGraph &Graph, const std::vector<int> &FuInstance);

  /// Decides schedulability at the II of \p MinDist (which must already
  /// hold the relation at that II). Semantics match scheduleAtIISat.
  SatScheduleStatus solveAtII(const MinDistMatrix &MinDist,
                              long ConflictBudget,
                              std::vector<int> &TimesOut,
                              SatEngineStats &Stats);

  /// Cooperative cancellation (see SatSolver::setStopFlag); a cancelled
  /// call reports Budget.
  void setStopFlag(const std::atomic<bool> *Flag) {
    Solver.setStopFlag(Flag);
  }

private:
  Lit placedAt(int Slot, int Rho) const {
    return mkLit(ColBase[static_cast<size_t>(Rho)] + Slot);
  }
  void growColumns(int NewColumns);
  void encodeRung(Lit Guard, const MinDistMatrix &MinDist);
  void decodeResidues(int II);
  bool closeTightened(const MinDistMatrix &MinDist, int II);
  std::vector<Lit> cycleCut() const;
  void materializeTimes(const MinDistMatrix &MinDist, int II,
                        std::vector<int> &TimesOut) const;

  const DepGraph &Graph;
  const LoopBody &Body;
  const MachineModel &Machine;
  const std::vector<int> FuInstance;
  const int N;

  SatSolver Solver;
  std::vector<int> Real;    ///< op ids with a functional unit, ascending
  std::vector<int> Slot;    ///< op id -> index in Real, -1 for pseudo-ops
  std::vector<int> ColBase; ///< residue column -> base variable index
  Lit ActiveGuard{};        ///< current rung's activation literal
  int LastII = 0;

  std::vector<int> Rho; ///< decoded residue per real slot
  std::vector<long> T;  ///< tightened closure over real slots
  int CycleSlot = -1;   ///< diagonal violator when closure failed
};

/// Decides schedulability of \p Graph at the fixed II of \p MinDist (which
/// must already hold the relation at that II) for the pre-scheduling
/// functional-unit assignment \p FuInstance. On Scheduled, \p TimesOut
/// holds canonical earliest issue times consistent with the model's
/// residues. \p ConflictBudget bounds total CDCL conflicts across
/// refinement rounds; <= 0 gives up immediately (mirroring the
/// branch-and-bound node budget). Deterministic. One-shot convenience
/// wrapper over SatIILadder; ladder callers reuse the context instead.
SatScheduleStatus scheduleAtIISat(const DepGraph &Graph,
                                  const MinDistMatrix &MinDist,
                                  const std::vector<int> &FuInstance,
                                  long ConflictBudget,
                                  std::vector<int> &TimesOut,
                                  SatEngineStats &Stats);

} // namespace lsms

#endif // LSMS_SAT_SATSCHEDULER_H
