//===----------------------------------------------------------------------===//
///
/// \file
/// SAT backend for exact modulo scheduling: encodes the fixed-II
/// schedulability question the branch-and-bound engine answers by search
/// as a Boolean satisfiability problem and decides it with the embedded
/// CDCL solver (SatSolver.h), giving an independent decision procedure the
/// two engines can be cross-checked on.
///
/// The encoding follows the residue-space theorem the branch-and-bound
/// solver is built on: at a fixed II, a schedule exists iff there is an
/// assignment of issue-cycle residues rho(op) in [0, II) such that (a) the
/// modulo reservation table accepts every residue under the pre-scheduling
/// functional-unit assignment and (b) the dependence-constraint graph,
/// with each placed-pair bound MinDist(x,y) tightened to the smallest
/// congruent value, has no positive cycle. One Boolean per (operation,
/// residue) with exactly-one constraints captures the assignment; resource
/// conflicts and pairwise two-cycle dependence violations become binary
/// clauses up front; longer positive cycles (which pairwise clauses cannot
/// express) are excluded by lazy refinement — each candidate model is
/// checked with a max-plus closure, and any positive cycle found is
/// returned to the solver as a blocking clause over the participating
/// (operation, residue) pairs. The loop terminates because each cut
/// removes at least one point of the finite residue space, so the verdict
/// is exact: Scheduled models decode to validator-clean schedules and
/// Infeasible proves no schedule exists at this II.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SAT_SATSCHEDULER_H
#define LSMS_SAT_SATSCHEDULER_H

#include "graph/MinDist.h"
#include "ir/DepGraph.h"

#include <vector>

namespace lsms {

/// Engine-level verdict for one fixed-II SAT attempt. The engine-neutral
/// dispatch (exact/ExactEngine.h) maps these onto ExactStatus.
enum class SatScheduleStatus : uint8_t {
  Scheduled,  ///< model found and decoded; TimesOut passes validateSchedule
  Infeasible, ///< formula (plus sound cuts) proven unsatisfiable
  Budget,     ///< conflict budget exhausted first
};

/// CDCL + encoder statistics for one fixed-II attempt.
struct SatEngineStats {
  long Variables = 0;
  long Clauses = 0; ///< problem clauses after encoding (incl. cuts)
  long Decisions = 0;
  long Propagations = 0;
  long Conflicts = 0;
  long Restarts = 0;
  long Learned = 0;
  long Refinements = 0; ///< lazy positive-cycle cuts added
};

/// Decides schedulability of \p Graph at the fixed II of \p MinDist (which
/// must already hold the relation at that II) for the pre-scheduling
/// functional-unit assignment \p FuInstance. On Scheduled, \p TimesOut
/// holds canonical earliest issue times consistent with the model's
/// residues. \p ConflictBudget bounds total CDCL conflicts across
/// refinement rounds; <= 0 gives up immediately (mirroring the
/// branch-and-bound node budget). Deterministic.
SatScheduleStatus scheduleAtIISat(const DepGraph &Graph,
                                  const MinDistMatrix &MinDist,
                                  const std::vector<int> &FuInstance,
                                  long ConflictBudget,
                                  std::vector<int> &TimesOut,
                                  SatEngineStats &Stats);

} // namespace lsms

#endif // LSMS_SAT_SATSCHEDULER_H
