//===----------------------------------------------------------------------===//
///
/// \file
/// SAT certification path for exact MaxLive minimization over issue-time
/// families. Where the branch-and-bound pass (exact/BranchAndBound.h)
/// proves the family minimum by exhausting the residue search, this module
/// proves the same bound by unsatisfiability: "some family schedule has
/// MaxLive <= k" is encoded as CNF and k is searched downward, so the
/// final UNSAT answer is an engine-independent certificate that no
/// schedule of canonical makespan beats the reported pressure.
///
/// The encoding is time-indexed rather than residue-indexed. Every real
/// operation gets order literals O(x,t) = "x issues at or before t" over
/// its static [Estart, Lstart] window (computeIssueWindows — the same
/// family definition the branch-and-bound engine enumerates), chained so
/// a model picks exactly one issue time; direct literals channel to the
/// order chain for the modulo-resource conflicts, which depend only on
/// residues and are probed pairwise against the reservation table.
/// Dependence bounds t_y - t_x >= MinDist(x,y) become one binary clause
/// per (pair, time). Register pressure enters through liveness literals
/// B(v,tau) — value v live at absolute cycle tau — forced true whenever
/// the def has issued by tau and some use ends after tau; wrapping
/// lifetimes longer than II are counted exactly because every absolute
/// cycle of the lifetime contributes its own literal to its column
/// tau mod II. A sequential counter per column then caps the column sum
/// at k, and k is tightened monotonically (each model's true pressure
/// jumps k below it), so one incremental solver instance carries all
/// probes down to the UNSAT floor.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SAT_MAXLIVESAT_H
#define LSMS_SAT_MAXLIVESAT_H

#include "graph/MinDist.h"
#include "ir/DepGraph.h"
#include "sat/SatScheduler.h"

#include <atomic>
#include <vector>

namespace lsms {

/// Result of one SAT MaxLive-certification run.
struct SatMaxLiveResult {
  /// True when the downward search ran to completion (final probe UNSAT
  /// or the MinAvg floor reached) within the conflict budget. Only then
  /// is FamilyMin a proven family minimum.
  bool SearchComplete = false;

  /// Minimal MaxLive over the issue-time family when SearchComplete and a
  /// member at or below the caller's cap exists; -1 when the search
  /// proved no family member has MaxLive <= cap (including the empty
  /// family). When the budget ran out, the best witness value found so
  /// far (-1 if none) without any minimality claim.
  long FamilyMin = -1;

  /// Witness schedule achieving FamilyMin (validator-clean; empty when
  /// FamilyMin is -1). Pseudo-ops are placed at their earliest consistent
  /// cycles.
  std::vector<int> Times;

  /// CDCL + encoder statistics, cumulative over all probes.
  SatEngineStats Stats;
};

/// Searches for the minimal family MaxLive at the II of \p MinDist (which
/// must already hold the relation at that II), considering only values
/// k <= \p UpperCap — the caller's incumbent pressure; anything above it
/// cannot improve the reported schedule, so the search is cut there.
/// \p MinAvg is the paper's lower bound at this II: a witness meeting it
/// is accepted without a further probe. \p ConflictBudget bounds total
/// CDCL conflicts across probes. Deterministic unless \p Stop is set (a
/// cancelled run reports best-so-far with no completeness claim).
SatMaxLiveResult minimizeMaxLiveSat(const DepGraph &Graph,
                                    const MinDistMatrix &MinDist,
                                    const std::vector<int> &FuInstance,
                                    long ConflictBudget, long MinAvg,
                                    long UpperCap,
                                    const std::atomic<bool> *Stop = nullptr);

} // namespace lsms

#endif // LSMS_SAT_MAXLIVESAT_H
