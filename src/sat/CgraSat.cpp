#include "sat/CgraSat.h"

#include "cgra/CgraMapper.h"
#include "sat/SatSolver.h"

#include <algorithm>
#include <cassert>
#include <climits>

using namespace lsms;

namespace {

constexpr long NoPath = MinDistMatrix::NoPath;

bool isPath(long W) { return W > NoPath / 2; }

long tighten(long C, long D, long II) {
  return C + (((D - C) % II + II) % II);
}

long satAdd(long A, long B) {
  constexpr long Cap = LONG_MAX / 4;
  const long S = A + B;
  return S > Cap ? Cap : S;
}

/// Per-arc clause-count gate for the up-front hop-strengthened pairwise
/// encoding; recurrence arcs beyond it fall back to lazy cuts alone.
constexpr long EagerHopClauseCap = 50000;

/// One fixed-II spatial encoding + CEGAR loop.
class CgraSatAttempt {
public:
  CgraSatAttempt(const DepGraph &Graph, const CgraModel &Cgra,
                 const MinDistMatrix &MinDist)
      : Graph(Graph), Cgra(Cgra), Body(Graph.body()), M(Cgra.machine()),
        MinDist(MinDist), II(MinDist.initiationInterval()),
        N(Graph.numOps()) {
    Slot.assign(static_cast<size_t>(N), -1);
    for (int X = 0; X < N; ++X) {
      if (M.unitFor(Body.op(X).Opc) == FuKind::None)
        continue;
      Slot[static_cast<size_t>(X)] = static_cast<int>(Real.size());
      Real.push_back(X);
    }
    Allowed.assign(Real.size(), {});
    PeIndex.assign(Real.size(),
                   std::vector<int>(static_cast<size_t>(Cgra.numPes()), -1));
    for (size_t S = 0; S < Real.size(); ++S) {
      const Opcode Opc = Body.op(Real[S]).Opc;
      if (!fuKindNeedsPe(M.unitFor(Opc)))
        continue;
      for (int Pe = 0; Pe < Cgra.numPes(); ++Pe)
        if (Cgra.capableOf(Pe, Opc)) {
          PeIndex[S][static_cast<size_t>(Pe)] =
              static_cast<int>(Allowed[S].size());
          Allowed[S].push_back(Pe);
        }
    }
  }

  CgraSatStatus run(long ConflictBudget, std::vector<int> &TimesOut,
                    std::vector<int> &PesOut, SatEngineStats &Stats);

private:
  bool placeable(size_t S) const { return !Allowed[S].empty(); }
  Lit rVar(size_t S, int R) const {
    return mkLit(RBase[S] + R);
  }
  Lit sVar(size_t S, int R, int K) const {
    return mkLit(SBase[S] + R * static_cast<int>(Allowed[S].size()) + K);
  }

  bool encode();
  void decode();
  bool closeTightened();
  std::vector<Lit> cycleCut() const;
  bool routeCut(std::vector<Lit> &Cut) const;
  void materialize(std::vector<int> &TimesOut, std::vector<int> &PesOut) const;

  const DepGraph &Graph;
  const CgraModel &Cgra;
  const LoopBody &Body;
  const MachineModel &M;
  const MinDistMatrix &MinDist;
  const int II;
  const int N;

  SatSolver Solver;
  std::vector<int> Real; ///< op ids with a functional unit, ascending
  std::vector<int> Slot; ///< op id -> index in Real, -1 for pseudo-ops
  std::vector<std::vector<int>> Allowed; ///< capable PEs per slot (empty =
                                         ///< no PE slot needed, e.g. brtop)
  std::vector<std::vector<int>> PeIndex; ///< PE id -> index in Allowed
  std::vector<int> RBase; ///< residue-column base var per slot
  std::vector<int> SBase; ///< selector base var per placeable slot

  std::vector<int> Rho; ///< decoded residue per slot
  std::vector<int> Pe;  ///< decoded PE per slot (-1 when not placeable)
  std::vector<long> T;  ///< hop-augmented tightened closure
  int CycleSlot = -1;
};

bool CgraSatAttempt::encode() {
  RBase.assign(Real.size(), 0);
  SBase.assign(Real.size(), 0);
  for (size_t S = 0; S < Real.size(); ++S) {
    RBase[S] = Solver.numVars();
    for (int R = 0; R < II; ++R)
      Solver.newVar();
    SBase[S] = Solver.numVars();
    for (size_t V = 0; V < Allowed[S].size() * static_cast<size_t>(II); ++V)
      Solver.newVar();
  }

  // Exactly one residue per operation.
  for (size_t S = 0; S < Real.size(); ++S) {
    std::vector<Lit> AtLeastOne;
    for (int R = 0; R < II; ++R)
      AtLeastOne.push_back(rVar(S, R));
    Solver.addClause(AtLeastOne);
    for (int A = 0; A < II; ++A)
      for (int B = A + 1; B < II; ++B)
        Solver.addClause({~rVar(S, A), ~rVar(S, B)});
  }

  // Channeling: a residue commits to exactly one capable PE.
  for (size_t S = 0; S < Real.size(); ++S) {
    if (!placeable(S))
      continue;
    const int A = static_cast<int>(Allowed[S].size());
    for (int R = 0; R < II; ++R) {
      std::vector<Lit> PickOne;
      PickOne.push_back(~rVar(S, R));
      for (int K = 0; K < A; ++K)
        PickOne.push_back(sVar(S, R, K));
      Solver.addClause(PickOne);
      for (int K = 0; K < A; ++K)
        Solver.addClause({~sVar(S, R, K), rVar(S, R)});
      for (int K1 = 0; K1 < A; ++K1)
        for (int K2 = K1 + 1; K2 < A; ++K2)
          Solver.addClause({~sVar(S, R, K1), ~sVar(S, R, K2)});
    }
  }

  // Per-PE modulo exclusivity: two ops sharing a PE must not overlap their
  // reservation intervals mod II.
  std::vector<char> Mark(static_cast<size_t>(II), 0);
  for (size_t SU = 0; SU < Real.size(); ++SU) {
    if (!placeable(SU))
      continue;
    const int ResU = M.reservationCycles(Body.op(Real[SU]).Opc);
    for (size_t SV = SU + 1; SV < Real.size(); ++SV) {
      if (!placeable(SV))
        continue;
      const int ResV = M.reservationCycles(Body.op(Real[SV]).Opc);
      for (const int P : Allowed[SU]) {
        const int KV = PeIndex[SV][static_cast<size_t>(P)];
        if (KV < 0)
          continue;
        const int KU = PeIndex[SU][static_cast<size_t>(P)];
        for (int A = 0; A < II; ++A) {
          std::fill(Mark.begin(), Mark.end(), 0);
          for (int K = 0; K < ResU; ++K)
            Mark[static_cast<size_t>((A + K) % II)] = 1;
          for (int B = 0; B < II; ++B) {
            bool Overlap = false;
            for (int K = 0; K < ResV && !Overlap; ++K)
              Overlap = Mark[static_cast<size_t>((B + K) % II)];
            if (Overlap)
              Solver.addClause({~sVar(SU, A, KU), ~sVar(SV, B, KV)});
          }
        }
      }
    }
  }

  // Flat pairwise dependence legality over residue columns (hop-free lower
  // bounds; valid for every placement).
  for (size_t SU = 0; SU < Real.size(); ++SU) {
    const int U = Real[SU];
    for (size_t SV = SU + 1; SV < Real.size(); ++SV) {
      const int V = Real[SV];
      if (!MinDist.connected(U, V) || !MinDist.connected(V, U))
        continue;
      const long CUV = MinDist.at(U, V);
      const long CVU = MinDist.at(V, U);
      for (int D = 0; D < II; ++D) {
        if (tighten(CUV, D, II) + tighten(CVU, -D, II) <= 0)
          continue;
        for (int A = 0; A < II; ++A)
          Solver.addClause({~rVar(SU, A), ~rVar(SV, (A + D) % II)});
      }
    }
  }

  // Hop-strengthened pairwise legality for register-flow arcs inside a
  // recurrence: landing producer and consumer on distant PEs adds hop
  // latency to the arc, which can close an otherwise-slack two-cycle.
  // Bounded per arc; larger products rely on the lazy cuts below.
  for (const DepArc &Arc : Graph.arcs()) {
    if (Arc.Value < 0 || Arc.Src == Arc.Dst)
      continue;
    const int SX = Slot[static_cast<size_t>(Arc.Src)];
    const int SY = Slot[static_cast<size_t>(Arc.Dst)];
    if (SX < 0 || SY < 0)
      continue;
    const size_t SXU = static_cast<size_t>(SX);
    const size_t SYU = static_cast<size_t>(SY);
    if (!placeable(SXU) || !placeable(SYU))
      continue;
    if (!MinDist.connected(Arc.Src, Arc.Dst) ||
        !MinDist.connected(Arc.Dst, Arc.Src))
      continue;
    const long Pairs = static_cast<long>(Allowed[SXU].size()) *
                       static_cast<long>(Allowed[SYU].size());
    if (Pairs * II * II > EagerHopClauseCap)
      continue;
    const long CXY = MinDist.at(Arc.Src, Arc.Dst);
    const long CYX = MinDist.at(Arc.Dst, Arc.Src);
    for (size_t KX = 0; KX < Allowed[SXU].size(); ++KX) {
      for (size_t KY = 0; KY < Allowed[SYU].size(); ++KY) {
        const int PX = Allowed[SXU][KX];
        const int PY = Allowed[SYU][KY];
        if (PX == PY)
          continue;
        const long Hopped =
            std::max(CXY, static_cast<long>(Arc.Latency) +
                              Cgra.hopDelay(PX, PY) -
                              static_cast<long>(Arc.Omega) * II);
        for (int D = 0; D < II; ++D) {
          if (tighten(Hopped, D, II) + tighten(CYX, -D, II) <= 0)
            continue;
          for (int A = 0; A < II; ++A)
            Solver.addClause({~sVar(SXU, A, static_cast<int>(KX)),
                              ~sVar(SYU, (A + D) % II,
                                    static_cast<int>(KY))});
        }
      }
    }
  }
  return Solver.okay();
}

void CgraSatAttempt::decode() {
  Rho.assign(Real.size(), -1);
  Pe.assign(Real.size(), -1);
  for (size_t S = 0; S < Real.size(); ++S) {
    for (int R = 0; R < II; ++R)
      if (Solver.modelValue(litVar(rVar(S, R)))) {
        assert(Rho[S] < 0 && "exactly-one residue violated");
        Rho[S] = R;
      }
    assert(Rho[S] >= 0 && "operation left without a residue");
    if (!placeable(S))
      continue;
    for (size_t K = 0; K < Allowed[S].size(); ++K)
      if (Solver.modelValue(litVar(sVar(S, Rho[S], static_cast<int>(K))))) {
        assert(Pe[S] < 0 && "at-most-one PE violated");
        Pe[S] = Allowed[S][K];
      }
    assert(Pe[S] >= 0 && "placeable operation left without a PE");
  }
}

bool CgraSatAttempt::closeTightened() {
  const size_t R = Real.size();
  T.assign(R * R, NoPath);
  for (size_t I = 0; I < R; ++I)
    for (size_t J = 0; J < R; ++J) {
      if (I == J) {
        T[I * R + J] = 0;
        continue;
      }
      if (MinDist.connected(Real[I], Real[J]))
        T[I * R + J] =
            tighten(MinDist.at(Real[I], Real[J]), Rho[J] - Rho[I], II);
    }
  // Overlay the hop-charged register-flow arcs of the decoded placement.
  for (const DepArc &Arc : Graph.arcs()) {
    const int SX = Slot[static_cast<size_t>(Arc.Src)];
    const int SY = Slot[static_cast<size_t>(Arc.Dst)];
    if (SX < 0 || SY < 0 || SX == SY)
      continue;
    const int Hop = arcHopDelay(Cgra, Arc, Pe[static_cast<size_t>(SX)],
                                Pe[static_cast<size_t>(SY)]);
    if (Hop == 0)
      continue;
    const long W =
        tighten(static_cast<long>(Arc.Latency) + Hop -
                    static_cast<long>(Arc.Omega) * II,
                Rho[static_cast<size_t>(SY)] - Rho[static_cast<size_t>(SX)],
                II);
    long &Cell = T[static_cast<size_t>(SX) * R + static_cast<size_t>(SY)];
    Cell = std::max(Cell, W);
  }
  for (size_t K = 0; K < R; ++K) {
    for (size_t I = 0; I < R; ++I) {
      const long IK = T[I * R + K];
      if (!isPath(IK))
        continue;
      for (size_t J = 0; J < R; ++J) {
        const long KJ = T[K * R + J];
        if (!isPath(KJ))
          continue;
        long &Cell = T[I * R + J];
        const long Via = satAdd(IK, KJ);
        if (Via > Cell)
          Cell = Via;
      }
    }
    for (size_t I = 0; I < R; ++I)
      if (T[I * R + I] > 0) {
        CycleSlot = static_cast<int>(I);
        return false;
      }
  }
  CycleSlot = -1;
  return true;
}

/// Blocking clause for the positive cycle through CycleSlot: every slot
/// mutually connected with it keeps its current (residue, PE) choice only
/// if at least one of them moves. All arc weights inside that strongly
/// connected set — tightened MinDist entries and hop overlays alike —
/// are functions of exactly those residues and PEs, so the cut is sound.
std::vector<Lit> CgraSatAttempt::cycleCut() const {
  const size_t R = Real.size();
  const size_t V = static_cast<size_t>(CycleSlot);
  std::vector<Lit> Cut;
  for (size_t U = 0; U < R; ++U) {
    if (U != V && (!isPath(T[V * R + U]) || !isPath(T[U * R + V])))
      continue;
    if (placeable(U))
      Cut.push_back(~sVar(U, Rho[U],
                          PeIndex[U][static_cast<size_t>(Pe[U])]));
    else
      Cut.push_back(~rVar(U, Rho[U]));
  }
  return Cut;
}

/// Checks route capacity on the decoded residues (departure cycles depend
/// only on residues, not absolute times). On overflow builds the blocking
/// clause: every transfer feeding the overflowing (PE, residue) slot pins
/// its producer's selector and one witness consumer's selector per
/// destination; with all of them held the slot provably overflows again,
/// so excluding the combination is sound. Returns true when clean.
bool CgraSatAttempt::routeCut(std::vector<Lit> &Cut) const {
  std::vector<int> Times(static_cast<size_t>(N), -1);
  std::vector<int> Pes(static_cast<size_t>(N), -1);
  for (size_t S = 0; S < Real.size(); ++S) {
    Times[static_cast<size_t>(Real[S])] = Rho[S];
    Pes[static_cast<size_t>(Real[S])] = Pe[S];
  }
  std::vector<int> Counts;
  int OverPe = -1, OverR = -1;
  if (countRouteUse(Graph, Cgra, Times, Pes, II, Counts, &OverPe, &OverR))
    return true;

  Cut.clear();
  for (size_t SX = 0; SX < Real.size(); ++SX) {
    const int X = Real[SX];
    if (Pe[SX] != OverPe ||
        (Rho[SX] + Graph.latency(X)) % II != OverR)
      continue;
    // One witness consumer per distinct destination PE of this producer.
    std::vector<char> Seen(static_cast<size_t>(Cgra.numPes()), 0);
    bool Sends = false;
    for (const int ArcId : Graph.succArcs(X)) {
      const DepArc &Arc = Graph.arc(ArcId);
      const int SY = Slot[static_cast<size_t>(Arc.Dst)];
      if (Arc.Value < 0 || SY < 0)
        continue;
      const int Q = Pe[static_cast<size_t>(SY)];
      if (Q < 0 || Q == OverPe || Seen[static_cast<size_t>(Q)])
        continue;
      Seen[static_cast<size_t>(Q)] = 1;
      Sends = true;
      Cut.push_back(~sVar(static_cast<size_t>(SY),
                          Rho[static_cast<size_t>(SY)],
                          PeIndex[static_cast<size_t>(SY)]
                                 [static_cast<size_t>(Q)]));
    }
    if (Sends)
      Cut.push_back(~sVar(SX, Rho[SX],
                          PeIndex[SX][static_cast<size_t>(OverPe)]));
  }
  assert(!Cut.empty() && "route overflow without contributing transfers");
  return false;
}

void CgraSatAttempt::materialize(std::vector<int> &TimesOut,
                                 std::vector<int> &PesOut) const {
  const int Start = Body.startOp();
  const size_t R = Real.size();
  std::vector<long> Base(R, 0);
  for (size_t I = 0; I < R; ++I) {
    const long FromStart =
        MinDist.connected(Start, Real[I]) ? MinDist.at(Start, Real[I]) : 0;
    Base[I] = tighten(std::max(0L, FromStart), Rho[I], II);
  }
  std::vector<long> Time(R, 0);
  for (size_t J = 0; J < R; ++J) {
    long TJ = Base[J];
    for (size_t I = 0; I < R; ++I)
      if (isPath(T[I * R + J]))
        TJ = std::max(TJ, Base[I] + T[I * R + J]);
    Time[J] = TJ;
  }

  TimesOut.assign(static_cast<size_t>(N), 0);
  PesOut.assign(static_cast<size_t>(N), -1);
  for (size_t I = 0; I < R; ++I) {
    assert(Time[I] % II == Rho[I] && "decoded time lost its residue");
    TimesOut[static_cast<size_t>(Real[I])] = static_cast<int>(Time[I]);
    PesOut[static_cast<size_t>(Real[I])] = Pe[I];
  }
  for (int X = 0; X < N; ++X) {
    if (X == Start || Slot[static_cast<size_t>(X)] >= 0)
      continue;
    long TX = std::max(
        0L, MinDist.connected(Start, X) ? MinDist.at(Start, X) : 0L);
    for (size_t I = 0; I < R; ++I)
      if (MinDist.connected(Real[I], X))
        TX = std::max(TX, Time[I] + MinDist.at(Real[I], X));
    TimesOut[static_cast<size_t>(X)] = static_cast<int>(TX);
  }
  TimesOut[static_cast<size_t>(Start)] = 0;
}

CgraSatStatus CgraSatAttempt::run(long ConflictBudget,
                                  std::vector<int> &TimesOut,
                                  std::vector<int> &PesOut,
                                  SatEngineStats &Stats) {
  // Structural pre-checks shared with the heuristic mapper: a capability
  // hole or a reservation wrapping past II is infeasible at every
  // placement, no search needed.
  for (size_t S = 0; S < Real.size(); ++S) {
    const Opcode Opc = Body.op(Real[S]).Opc;
    if (!fuKindNeedsPe(M.unitFor(Opc)))
      continue;
    if (Allowed[S].empty())
      return CgraSatStatus::Infeasible;
    if (M.reservationCycles(Opc) > II)
      return CgraSatStatus::Infeasible;
  }
  if (ConflictBudget == 0)
    return CgraSatStatus::Budget;

  const SatSolverStats Before = Solver.stats();
  const auto Snapshot = [&]() {
    Stats.Variables += Solver.numVars();
    Stats.Clauses += Solver.numClauses();
    Stats.Decisions += Solver.stats().Decisions - Before.Decisions;
    Stats.Propagations += Solver.stats().Propagations - Before.Propagations;
    Stats.Conflicts += Solver.stats().Conflicts - Before.Conflicts;
    Stats.Restarts += Solver.stats().Restarts - Before.Restarts;
    Stats.Learned += Solver.stats().Learned - Before.Learned;
  };

  if (!encode()) {
    Snapshot();
    return CgraSatStatus::Infeasible;
  }

  CgraSatStatus Status = CgraSatStatus::Budget;
  for (;;) {
    const long Spent = Solver.stats().Conflicts - Before.Conflicts;
    if (ConflictBudget >= 0 && Spent >= ConflictBudget)
      break;
    const long Remaining = ConflictBudget < 0 ? -1 : ConflictBudget - Spent;
    const SatResult R = Solver.solve(Remaining);
    if (R == SatResult::Unknown)
      break;
    if (R == SatResult::Unsat) {
      Status = CgraSatStatus::Infeasible;
      break;
    }
    decode();
    if (!closeTightened()) {
      Solver.addClause(cycleCut());
      ++Stats.Refinements;
      continue;
    }
    std::vector<Lit> Cut;
    if (!routeCut(Cut)) {
      Solver.addClause(Cut);
      ++Stats.Refinements;
      continue;
    }
    materialize(TimesOut, PesOut);
    Status = CgraSatStatus::Mapped;
    break;
  }
  Snapshot();
  return Status;
}

} // namespace

CgraSatStatus lsms::mapAtIICgraSat(const DepGraph &Graph,
                                   const CgraModel &Cgra,
                                   const MinDistMatrix &MinDist,
                                   long ConflictBudget,
                                   std::vector<int> &TimesOut,
                                   std::vector<int> &PesOut,
                                   SatEngineStats &Stats) {
  assert(MinDist.initiationInterval() > 0 &&
         MinDist.numOps() == Graph.numOps() &&
         "MinDist must hold the relation at the candidate II");
  CgraSatAttempt Attempt(Graph, Cgra, MinDist);
  return Attempt.run(ConflictBudget, TimesOut, PesOut, Stats);
}
