//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained CDCL SAT solver in the MiniSat lineage: two
/// watched literals per clause, first-UIP conflict-clause learning,
/// VSIDS-style variable activities with a deterministic order heap, Luby
/// restarts, phase saving, and activity-driven learned-clause deletion.
///
/// The solver exists to serve as the decision core of the SAT modulo-
/// scheduling engine (SatScheduler.h), so it is deliberately deterministic:
/// no randomness anywhere, all ties broken by variable/clause index, and
/// the same clause stream always yields the same model, the same conflict
/// count, and the same learned clauses. Clauses may be added between
/// solve() calls (the scheduling encoder adds lazy positive-cycle cuts and
/// re-solves); learned clauses persist across calls.
///
/// Incremental interface: solveUnderAssumptions() decides satisfiability
/// under a conjunction of assumption literals without committing them as
/// facts. Assumptions act as pseudo-decisions, so every learned clause is
/// implied by the clause database alone (an assumption can never be a
/// resolution pivot — its reason is empty) and persists soundly across
/// calls with different assumptions. This is what makes activation-literal
/// constraint groups work: a group clause (a ∨ C) is switched on by
/// assuming ¬a, switched off by simply not assuming it, and permanently
/// retired with the unit clause {a}.
///
/// Clause literals live in a single arena (LitPool) rather than one
/// heap-allocated vector per clause; reduceDB compacts the arena in place.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SAT_SATSOLVER_H
#define LSMS_SAT_SATSOLVER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsms {

/// A propositional literal: variable index plus sign, encoded as
/// 2*var + (negated ? 1 : 0). Invalid literals have Code < 0.
struct Lit {
  int Code = -1;

  friend bool operator==(Lit A, Lit B) { return A.Code == B.Code; }
  friend bool operator!=(Lit A, Lit B) { return A.Code != B.Code; }
  friend bool operator<(Lit A, Lit B) { return A.Code < B.Code; }
};

/// Builds the literal for \p Var (non-negative), negated when \p Neg.
inline Lit mkLit(int Var, bool Neg = false) {
  return Lit{2 * Var + (Neg ? 1 : 0)};
}

/// Negation.
inline Lit operator~(Lit L) { return Lit{L.Code ^ 1}; }

inline int litVar(Lit L) { return L.Code >> 1; }
inline bool litSign(Lit L) { return (L.Code & 1) != 0; }

/// Outcome of a solve() call.
enum class SatResult : uint8_t {
  Sat,     ///< a model was found (query it with modelValue)
  Unsat,   ///< unsatisfiable (outright, or under the given assumptions)
  Unknown, ///< the conflict budget ran out or the stop flag was raised
};

/// Returns "sat", "unsat", or "unknown".
const char *satResultName(SatResult Result);

/// Search statistics, cumulative over the solver's lifetime.
struct SatSolverStats {
  long Decisions = 0;
  long Propagations = 0; ///< literals enqueued by unit propagation
  long Conflicts = 0;
  long Restarts = 0;
  long Learned = 0;        ///< learned clauses (incl. learned units)
  long LearnedLiterals = 0;
  long Deleted = 0;        ///< learned clauses removed by reduceDB
};

class SatSolver {
public:
  SatSolver();

  /// Creates a fresh variable and returns its index.
  int newVar();
  int numVars() const { return static_cast<int>(Activity.size()); }

  /// Adds a clause over existing variables. Returns false when the clause
  /// set is already unsatisfiable at the root level (further addClause /
  /// solve calls then keep reporting failure). Duplicate literals are
  /// merged and tautologies are dropped.
  bool addClause(std::vector<Lit> Lits);

  /// Number of problem (non-learned) clauses currently alive.
  int numClauses() const { return NumProblemClauses; }

  /// True until a root-level contradiction has been derived. Stays true
  /// when a solveUnderAssumptions() call returns Unsat only because of its
  /// assumptions — the solver remains usable with other assumptions.
  bool okay() const { return Ok; }

  /// Decides satisfiability. \p ConflictBudget < 0 means unlimited;
  /// otherwise the call gives up with Unknown once it has spent that many
  /// conflicts. Deterministic: depends only on the clause stream and the
  /// budgets of prior calls.
  SatResult solve(long ConflictBudget = -1);

  /// Decides satisfiability of the clause set conjoined with the given
  /// assumption literals. Assumptions are pseudo-decisions: they are not
  /// asserted as facts, learned clauses never depend on them, and the
  /// solver state remains valid for later calls with different
  /// assumptions. On Unsat caused by the assumptions, finalConflict()
  /// holds an unsatisfiable core of them; on outright Unsat okay() turns
  /// false and the core is empty.
  SatResult solveUnderAssumptions(const std::vector<Lit> &Assumptions,
                                  long ConflictBudget = -1);

  /// After solveUnderAssumptions() == Unsat: the subset of the passed
  /// assumptions (same polarity) whose conjunction is contradicted by the
  /// clause set. Empty when the clause set is unsatisfiable outright.
  const std::vector<Lit> &finalConflict() const { return FinalConflictLits; }

  /// Installs a cooperative cancellation flag (nullptr to clear). The
  /// search polls it once per decision/conflict and returns Unknown when
  /// it is set. Results then depend on wall-clock timing, so deterministic
  /// callers leave it unset; the portfolio race mode uses it for
  /// first-finisher-wins cancellation.
  void setStopFlag(const std::atomic<bool> *Flag) { StopFlag = Flag; }

  /// Value of \p Var in the last model (valid only after solve() == Sat).
  bool modelValue(int Var) const {
    return Model[static_cast<size_t>(Var)] > 0;
  }

  const SatSolverStats &stats() const { return Stats; }

private:
  /// One clause: a span [Off, Off+Size) of LitPool. Watched literals are
  /// the first two literals of the span.
  struct Clause {
    int Off = 0;
    int Size = 0;
    double Act = 0;
    bool Learnt = false;
    bool Dead = false;
  };

  static constexpr int NoReason = -1;

  Lit *lits(Clause &C) { return LitPool.data() + C.Off; }
  const Lit *lits(const Clause &C) const { return LitPool.data() + C.Off; }

  // -- assignment / trail ---------------------------------------------------
  int8_t value(int Var) const { return Assigns[static_cast<size_t>(Var)]; }
  int8_t value(Lit L) const {
    const int8_t V = Assigns[static_cast<size_t>(litVar(L))];
    return litSign(L) ? static_cast<int8_t>(-V) : V;
  }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }
  void uncheckedEnqueue(Lit P, int Reason);
  void cancelUntil(int Level);

  // -- search ---------------------------------------------------------------
  SatResult search(long ConflictBudget);
  int propagate(); ///< returns conflicting clause id or NoReason
  void analyze(int Confl, std::vector<Lit> &Learnt, int &BtLevel);
  void analyzeFinal(Lit P); ///< assumption core for failed assumption P
  Lit pickBranchLit();
  void attachClause(int Id);
  int addClauseRecord(const std::vector<Lit> &Lits, bool Learnt);
  void reduceDB();
  void rebuildWatches();

  // -- activities -----------------------------------------------------------
  void bumpVar(int Var);
  void decayVarActivity();
  void bumpClause(Clause &C);
  void decayClauseActivity();

  // -- order heap (max-heap on activity, ties to the smaller index) --------
  bool heapLess(int A, int B) const;
  void heapPercolateUp(int Pos);
  void heapPercolateDown(int Pos);
  void heapInsert(int Var);
  int heapPopMax();
  bool heapInHeap(int Var) const {
    return HeapIndex[static_cast<size_t>(Var)] >= 0;
  }

  bool Ok = true;
  std::vector<Clause> Clauses;
  std::vector<Lit> LitPool; ///< clause-literal arena, compacted by reduceDB
  std::vector<int> LearntIds;
  int NumProblemClauses = 0;
  std::vector<std::vector<int>> Watches; ///< per literal code

  std::vector<int8_t> Assigns; ///< per var: 1 true, -1 false, 0 unassigned
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t QHead = 0;
  std::vector<int> VarReason;
  std::vector<int> VarLevel;

  std::vector<double> Activity;
  double VarInc = 1.0;
  double ClaInc = 1.0;
  std::vector<char> Polarity; ///< saved phase; initial false

  std::vector<int> Heap;      ///< variable indices, heap-ordered
  std::vector<int> HeapIndex; ///< position in Heap, -1 when absent

  std::vector<char> Seen; ///< analyze scratch
  std::vector<int8_t> Model;

  std::vector<Lit> Assumps; ///< active assumptions during search()
  std::vector<Lit> FinalConflictLits;
  const std::atomic<bool> *StopFlag = nullptr;

  size_t MaxLearnts = 4096; ///< reduceDB threshold, grows geometrically

  SatSolverStats Stats;
};

} // namespace lsms

#endif // LSMS_SAT_SATSOLVER_H
