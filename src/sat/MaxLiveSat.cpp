#include "sat/MaxLiveSat.h"

#include "bounds/Lifetimes.h"
#include "machine/ModuloResourceTable.h"
#include "sat/SatSolver.h"

#include <algorithm>
#include <cassert>
#include <climits>

using namespace lsms;

namespace {

/// Builds the time-indexed encoding once and drives the downward probe
/// loop on a single incremental solver instance.
class MaxLiveEncoder {
public:
  MaxLiveEncoder(const DepGraph &Graph, const MinDistMatrix &MinDist,
                 const std::vector<int> &FuInstance)
      : Graph(Graph), Body(Graph.body()), Machine(Graph.machine()),
        MinDist(MinDist), FuInstance(FuInstance),
        II(MinDist.initiationInterval()), N(Body.numOps()) {}

  SatMaxLiveResult run(long ConflictBudget, long MinAvg, long UpperCap,
                       const std::atomic<bool> *Stop);

private:
  /// Order-literal lookup with window boundaries folded in: "t_x <= T" is
  /// constant true at or above Lstart, constant false below Estart.
  /// Returns +1/-1 for the constants, 0 with \p L set otherwise.
  int orderLit(size_t S, long T, Lit &L) const {
    const int X = Real[S];
    if (T >= Lstart[static_cast<size_t>(X)])
      return 1;
    if (T < Estart[static_cast<size_t>(X)])
      return -1;
    L = mkLit(OBase[S] + static_cast<int>(T - Estart[static_cast<size_t>(X)]));
    return 0;
  }

  /// Adds "if all of \p Pre hold then t_x <= T" with constant folding.
  /// Returns false when the clause is constant-false (root conflict).
  void addOrderClause(std::vector<Lit> Pre, size_t S, long T) {
    Lit L;
    const int C = orderLit(S, T, L);
    if (C > 0)
      return; // consequent constant true
    if (C == 0)
      Pre.push_back(L);
    Solver.addClause(std::move(Pre)); // empty/unsat handled by the solver
  }

  void buildWindows();
  void encodeChainsAndDirects();
  void encodeDependences();
  void encodeResources();
  void collectLifetimes();
  void encodeLiveness();
  void encodeCounters(long Width);
  std::vector<Lit> capAssumptions(long K) const;
  long decode(std::vector<int> &TimesOut) const;

  const DepGraph &Graph;
  const LoopBody &Body;
  const MachineModel &Machine;
  const MinDistMatrix &MinDist;
  const std::vector<int> &FuInstance;
  const int II;
  const int N;

  SatSolver Solver;
  std::vector<long> Estart, Lstart; ///< shared issue windows, per op id
  std::vector<int> Real;            ///< op ids with a functional unit
  std::vector<int> Slot;            ///< op id -> index in Real; -1 pseudo
  std::vector<int> OBase;           ///< first order var per slot
  std::vector<int> DBase;           ///< first direct (time) var per slot

  /// One lifetime literal family per RR value with uses: live at absolute
  /// cycles [DefEstart, End).
  struct ValueSpan {
    int ValueId = 0;
    int Def = 0;       ///< defining op (real)
    long Lo = 0;       ///< Estart of the def
    long End = 0;      ///< exclusive upper bound on the lifetime end
    int BBase = 0;     ///< first liveness var; one per cycle in [Lo, End)
  };
  std::vector<ValueSpan> Spans;
  /// RR use sites per value id: (user op, omega).
  std::vector<std::vector<std::pair<int, int>>> UsesOf;

  /// Sequential-counter outputs per column: CapVar[c][j-1] is the var for
  /// "at least j liveness literals of column c are true".
  std::vector<std::vector<int>> CapVar;
};

void MaxLiveEncoder::buildWindows() {
  const IssueWindows W = computeIssueWindows(Body, MinDist);
  Estart = W.Estart;
  Lstart = W.Lstart;
  Real.clear();
  Slot.assign(static_cast<size_t>(N), -1);
  for (int X = 0; X < N; ++X) {
    if (Machine.unitFor(Body.op(X).Opc) == FuKind::None)
      continue;
    Slot[static_cast<size_t>(X)] = static_cast<int>(Real.size());
    Real.push_back(X);
  }

  OBase.resize(Real.size());
  DBase.resize(Real.size());
  for (size_t S = 0; S < Real.size(); ++S) {
    const int X = Real[S];
    const long E = Estart[static_cast<size_t>(X)];
    const long L = Lstart[static_cast<size_t>(X)];
    OBase[S] = Solver.numVars();
    for (long T = E; T < L; ++T)
      Solver.newVar();
    DBase[S] = Solver.numVars();
    for (long T = E; T <= L; ++T)
      Solver.newVar();
    if (L < E) {
      // Empty window: the family is empty. Force a root conflict so every
      // probe answers Unsat.
      Solver.addClause({});
    }
  }
}

void MaxLiveEncoder::encodeChainsAndDirects() {
  for (size_t S = 0; S < Real.size(); ++S) {
    const int X = Real[S];
    const long E = Estart[static_cast<size_t>(X)];
    const long L = Lstart[static_cast<size_t>(X)];
    // Monotone chain: t_x <= T implies t_x <= T+1.
    for (long T = E; T + 1 < L; ++T)
      Solver.addClause({~mkLit(OBase[S] + static_cast<int>(T - E)),
                        mkLit(OBase[S] + static_cast<int>(T + 1 - E))});
    // Channel the direct literal D(x,T) <-> (t_x <= T) & !(t_x <= T-1).
    for (long T = E; T <= L; ++T) {
      const Lit D = mkLit(DBase[S] + static_cast<int>(T - E));
      Lit OT, OP;
      const int CT = orderLit(S, T, OT);     // t_x <= T
      const int CP = orderLit(S, T - 1, OP); // t_x <= T-1
      assert(CT >= 0 && CP <= 0 && "window bounds violated");
      std::vector<Lit> Def{D};
      if (CT == 0) {
        Solver.addClause({~D, OT});
        Def.push_back(~OT);
      }
      if (CP == 0) {
        Solver.addClause({~D, ~OP});
        Def.push_back(OP);
      }
      Solver.addClause(std::move(Def)); // D | !(t<=T) | (t<=T-1)
    }
  }
}

void MaxLiveEncoder::encodeDependences() {
  // Every connected ordered pair of real ops contributes t_y - t_x >=
  // MinDist(x,y), as "t_y <= T implies t_x <= T - C" over the window of y.
  // (Unlike the residue-space feasibility encoding, one-directional
  // bounds matter here: the windows stop an op from sliding by whole IIs.)
  for (size_t SX = 0; SX < Real.size(); ++SX) {
    const int X = Real[SX];
    for (size_t SY = 0; SY < Real.size(); ++SY) {
      const int Y = Real[SY];
      if (SX == SY || !MinDist.connected(X, Y))
        continue;
      const long C = MinDist.at(X, Y);
      for (long T = Estart[static_cast<size_t>(Y)];
           T <= Lstart[static_cast<size_t>(Y)]; ++T) {
        Lit OY;
        const int CY = orderLit(SY, T, OY);
        if (CY < 0)
          continue; // antecedent constant false
        std::vector<Lit> Pre;
        if (CY == 0)
          Pre.push_back(~OY);
        addOrderClause(std::move(Pre), SX, T - C);
      }
    }
  }
}

void MaxLiveEncoder::encodeResources() {
  // Modulo-resource conflicts depend only on residues; probe the
  // reservation table pairwise (the single source of truth, non-pipelined
  // multi-cycle reservations included) and forbid colliding time pairs on
  // shared functional-unit instances via the direct literals.
  ModuloResourceTable Mrt(Machine, II);
  for (size_t SU = 0; SU < Real.size(); ++SU) {
    const Operation &U = Body.op(Real[SU]);
    const FuKind KindU = Machine.unitFor(U.Opc);
    const int InstU = FuInstance[static_cast<size_t>(Real[SU])];
    const long EU = Estart[static_cast<size_t>(Real[SU])];
    const long LU = Lstart[static_cast<size_t>(Real[SU])];
    for (long A = EU; A <= LU; ++A)
      if (!Mrt.canPlace(U.Opc, KindU, InstU, static_cast<int>(A % II)))
        Solver.addClause({~mkLit(DBase[SU] + static_cast<int>(A - EU))});
    for (size_t SV = SU + 1; SV < Real.size(); ++SV) {
      const Operation &V = Body.op(Real[SV]);
      const FuKind KindV = Machine.unitFor(V.Opc);
      const int InstV = FuInstance[static_cast<size_t>(Real[SV])];
      if (KindU != KindV || InstU != InstV)
        continue;
      const long EV = Estart[static_cast<size_t>(Real[SV])];
      const long LV = Lstart[static_cast<size_t>(Real[SV])];
      // II x II conflict bitmap, then one binary clause per colliding
      // absolute-time pair inside the windows.
      std::vector<char> Conflict(static_cast<size_t>(II) * II, 0);
      for (int RA = 0; RA < II; ++RA) {
        if (!Mrt.canPlace(U.Opc, KindU, InstU, RA))
          continue;
        Mrt.place(U.Opc, KindU, InstU, RA);
        for (int RB = 0; RB < II; ++RB)
          if (!Mrt.canPlace(V.Opc, KindV, InstV, RB))
            Conflict[static_cast<size_t>(RA) * II + RB] = 1;
        Mrt.remove(U.Opc, KindU, InstU, RA);
      }
      for (long A = EU; A <= LU; ++A)
        for (long B = EV; B <= LV; ++B)
          if (Conflict[static_cast<size_t>(A % II) * II + (B % II)])
            Solver.addClause({~mkLit(DBase[SU] + static_cast<int>(A - EU)),
                              ~mkLit(DBase[SV] + static_cast<int>(B - EV))});
    }
  }
}

void MaxLiveEncoder::collectLifetimes() {
  // Mirror computePressure's use collection exactly: operand uses plus
  // predicate uses, filtered to the RR class.
  UsesOf.assign(static_cast<size_t>(Body.numValues()), {});
  auto Record = [&](int ValueId, int UserOp, int Omega) {
    if (Body.value(ValueId).Class == RegClass::RR)
      UsesOf[static_cast<size_t>(ValueId)].push_back({UserOp, Omega});
  };
  for (const Operation &Op : Body.Ops) {
    for (const Use &U : Op.Operands)
      Record(U.Value, Op.Id, U.Omega);
    if (Op.PredValue >= 0)
      Record(Op.PredValue, Op.Id, Op.PredOmega);
  }

  Spans.clear();
  for (const Value &V : Body.Values) {
    if (V.Class != RegClass::RR ||
        UsesOf[static_cast<size_t>(V.Id)].empty())
      continue;
    assert(V.Def >= 0 && Slot[static_cast<size_t>(V.Def)] >= 0 &&
           "RR values are defined by real operations");
    ValueSpan Span;
    Span.ValueId = V.Id;
    Span.Def = V.Def;
    Span.Lo = Estart[static_cast<size_t>(V.Def)];
    Span.End = Span.Lo;
    for (const auto &[User, Omega] : UsesOf[static_cast<size_t>(V.Id)]) {
      assert(Slot[static_cast<size_t>(User)] >= 0 &&
             "RR values are used by real operations");
      Span.End = std::max(Span.End, Lstart[static_cast<size_t>(User)] +
                                        static_cast<long>(Omega) * II);
    }
    Span.BBase = Solver.numVars();
    for (long Tau = Span.Lo; Tau < Span.End; ++Tau)
      Solver.newVar();
    Spans.push_back(Span);
  }
}

void MaxLiveEncoder::encodeLiveness() {
  // B(v,tau) is forced true when the def has issued by tau and some use
  // keeps the value alive past tau:
  //   (t_def <= tau) & !(t_use <= tau - omega*II)  ->  B(v,tau).
  // The literals are one-directional (never forced false), which is sound
  // for an upper-bound cap: spurious liveness only over-counts.
  for (const ValueSpan &Span : Spans) {
    const size_t SD = static_cast<size_t>(Slot[static_cast<size_t>(Span.Def)]);
    for (const auto &[User, Omega] : UsesOf[static_cast<size_t>(Span.ValueId)]) {
      const size_t SU = static_cast<size_t>(Slot[static_cast<size_t>(User)]);
      const long UseEndMax =
          Lstart[static_cast<size_t>(User)] + static_cast<long>(Omega) * II;
      for (long Tau = Span.Lo; Tau < UseEndMax; ++Tau) {
        std::vector<Lit> Clause;
        Lit OD, OU;
        const int CD = orderLit(SD, Tau, OD); // def issued by tau
        if (CD < 0)
          continue; // def cannot have issued yet: not live through v's def
        if (CD == 0)
          Clause.push_back(~OD);
        const int CU = orderLit(SU, Tau - static_cast<long>(Omega) * II, OU);
        if (CU > 0)
          continue; // use surely over by tau: clause satisfied
        if (CU == 0)
          Clause.push_back(OU);
        Clause.push_back(mkLit(Span.BBase + static_cast<int>(Tau - Span.Lo)));
        Solver.addClause(std::move(Clause));
      }
    }
  }
}

void MaxLiveEncoder::encodeCounters(long Width) {
  // Sequential counter per II column over that column's liveness
  // literals, in (value, cycle) order. S(i,j) = "at least j of the first
  // i+1 literals are true"; only the >= direction is clausified, which is
  // all a monotone at-most-k cap needs.
  CapVar.assign(static_cast<size_t>(II), {});
  for (int Col = 0; Col < II; ++Col) {
    std::vector<Lit> Ls;
    for (const ValueSpan &Span : Spans)
      for (long Tau = Span.Lo; Tau < Span.End; ++Tau)
        if (((Tau % II) + II) % II == Col)
          Ls.push_back(mkLit(Span.BBase + static_cast<int>(Tau - Span.Lo)));
    const long M = static_cast<long>(Ls.size());
    const long W = std::min(M, Width);
    if (W <= 0)
      continue;
    std::vector<int> Prev, Cur;
    for (long I = 0; I < M; ++I) {
      const long JMax = std::min(I + 1, W);
      Cur.assign(static_cast<size_t>(JMax), 0);
      for (long J = 1; J <= JMax; ++J)
        Cur[static_cast<size_t>(J - 1)] = Solver.newVar();
      // L_i -> S(i,1)
      Solver.addClause({~Ls[static_cast<size_t>(I)],
                        mkLit(Cur[0])});
      for (long J = 1; J <= JMax; ++J) {
        if (I > 0 && J <= static_cast<long>(Prev.size()))
          // S(i-1,j) -> S(i,j)
          Solver.addClause({~mkLit(Prev[static_cast<size_t>(J - 1)]),
                            mkLit(Cur[static_cast<size_t>(J - 1)])});
        if (J >= 2)
          // L_i & S(i-1,j-1) -> S(i,j)
          Solver.addClause({~Ls[static_cast<size_t>(I)],
                            ~mkLit(Prev[static_cast<size_t>(J - 2)]),
                            mkLit(Cur[static_cast<size_t>(J - 1)])});
      }
      Prev = Cur;
    }
    CapVar[static_cast<size_t>(Col)] = Prev; // outputs of the last stage
  }
}

/// At-most-K as assumptions rather than permanent units: blocking "at
/// least K+1 in column c" at the counter output is enough because any K+1
/// true literals force that output through the >=-direction clauses. Every
/// probe of the k-walk then reuses one solver state — learned clauses
/// never depend on the cap and survive each tightening.
std::vector<Lit> MaxLiveEncoder::capAssumptions(long K) const {
  std::vector<Lit> Assumptions;
  for (int Col = 0; Col < II; ++Col) {
    const std::vector<int> &Out = CapVar[static_cast<size_t>(Col)];
    if (K + 1 <= static_cast<long>(Out.size()))
      Assumptions.push_back(~mkLit(Out[static_cast<size_t>(K)]));
  }
  return Assumptions;
}

/// Reads issue times out of the model (smallest T whose order literal is
/// true, Lstart when none), derives pseudo-ops at their earliest
/// consistent cycles, and returns the schedule's true MaxLive.
long MaxLiveEncoder::decode(std::vector<int> &TimesOut) const {
  const int Start = Body.startOp();
  TimesOut.assign(static_cast<size_t>(N), 0);
  for (size_t S = 0; S < Real.size(); ++S) {
    const int X = Real[S];
    const long E = Estart[static_cast<size_t>(X)];
    long T = Lstart[static_cast<size_t>(X)];
    for (long U = E; U < Lstart[static_cast<size_t>(X)]; ++U)
      if (Solver.modelValue(OBase[S] + static_cast<int>(U - E))) {
        T = U;
        break;
      }
    TimesOut[static_cast<size_t>(X)] = static_cast<int>(T);
  }
  for (int X = 0; X < N; ++X) {
    if (X == Start || Slot[static_cast<size_t>(X)] >= 0)
      continue;
    long T = std::max(0L, MinDist.at(Start, X));
    for (int Y : Real)
      if (MinDist.connected(Y, X))
        T = std::max(T, static_cast<long>(
                            TimesOut[static_cast<size_t>(Y)]) +
                            MinDist.at(Y, X));
    TimesOut[static_cast<size_t>(X)] = static_cast<int>(T);
  }
  return computePressure(Body, TimesOut, II, RegClass::RR).MaxLive;
}

SatMaxLiveResult MaxLiveEncoder::run(long ConflictBudget, long MinAvg,
                                     long UpperCap,
                                     const std::atomic<bool> *Stop) {
  SatMaxLiveResult Result;
  Solver.setStopFlag(Stop);
  buildWindows();
  encodeChainsAndDirects();
  encodeDependences();
  encodeResources();
  collectLifetimes();
  encodeLiveness();
  encodeCounters(/*Width=*/std::max(0L, UpperCap) + 1);

  long BestVal = -1;
  std::vector<int> BestTimes;
  long K = UpperCap;
  for (;;) {
    if (K < MinAvg) {
      // Nothing below the global MinAvg bound exists; the current witness
      // (necessarily at MinAvg) is the family minimum.
      Result.SearchComplete = true;
      break;
    }
    const long Spent = Solver.stats().Conflicts;
    const long Remaining = ConflictBudget - Spent;
    if (Remaining <= 0)
      break; // budget exhausted: report best-so-far, no claim
    const SatResult R =
        Solver.solveUnderAssumptions(capAssumptions(K), Remaining);
    if (R == SatResult::Unknown)
      break;
    if (R == SatResult::Unsat) {
      Result.SearchComplete = true;
      break;
    }
    std::vector<int> Times;
    const long Val = decode(Times);
    assert(Val <= K && "cardinality cap admitted a hotter schedule");
    BestVal = Val;
    BestTimes = std::move(Times);
    K = Val - 1;
  }

  Result.FamilyMin = BestVal;
  Result.Times = std::move(BestTimes);
  const SatSolverStats &S = Solver.stats();
  Result.Stats.Variables = Solver.numVars();
  Result.Stats.Clauses = Solver.numClauses();
  Result.Stats.Decisions = S.Decisions;
  Result.Stats.Propagations = S.Propagations;
  Result.Stats.Conflicts = S.Conflicts;
  Result.Stats.Restarts = S.Restarts;
  Result.Stats.Learned = S.Learned;
  return Result;
}

} // namespace

SatMaxLiveResult lsms::minimizeMaxLiveSat(const DepGraph &Graph,
                                          const MinDistMatrix &MinDist,
                                          const std::vector<int> &FuInstance,
                                          long ConflictBudget, long MinAvg,
                                          long UpperCap,
                                          const std::atomic<bool> *Stop) {
  assert(MinDist.initiationInterval() > 0 &&
         MinDist.numOps() == Graph.numOps() &&
         "MinDist must hold the relation at the candidate II");
  MaxLiveEncoder Encoder(Graph, MinDist, FuInstance);
  return Encoder.run(ConflictBudget, MinAvg, UpperCap, Stop);
}
