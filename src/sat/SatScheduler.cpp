#include "sat/SatScheduler.h"

#include "machine/ModuloResourceTable.h"

#include <algorithm>
#include <cassert>
#include <climits>

using namespace lsms;

namespace {

constexpr long NoPath = MinDistMatrix::NoPath;

bool isPath(long W) { return W > NoPath / 2; }

/// Smallest value >= C congruent to D modulo II (the same tightening step
/// the branch-and-bound engine applies once both residues are fixed).
long tighten(long C, long D, long II) {
  return C + (((D - C) % II + II) % II);
}

/// Saturating max-plus addition: closure entries can grow while a positive
/// cycle is being detected, and any weight beyond every simple path's
/// reach already implies such a cycle, so clamping is sound.
long satAdd(long A, long B) {
  constexpr long Cap = LONG_MAX / 4;
  const long S = A + B;
  return S > Cap ? Cap : S;
}

} // namespace

SatIILadder::SatIILadder(const DepGraph &Graph,
                         const std::vector<int> &FuInstance)
    : Graph(Graph), Body(Graph.body()), Machine(Graph.machine()),
      FuInstance(FuInstance), N(Body.numOps()) {
  Slot.assign(static_cast<size_t>(N), -1);
  for (int X = 0; X < N; ++X) {
    if (Machine.unitFor(Body.op(X).Opc) == FuKind::None)
      continue;
    Slot[static_cast<size_t>(X)] = static_cast<int>(Real.size());
    Real.push_back(X);
  }
}

void SatIILadder::growColumns(int NewColumns) {
  // One variable block per residue column; at-most-one against every
  // earlier column is II-independent (an operation occupies exactly one
  // residue whatever the II), so these clauses are permanent and shared by
  // every rung — the quadratic part of the exactly-one encoding is paid
  // once per loop instead of once per rung.
  while (static_cast<int>(ColBase.size()) < NewColumns) {
    const int Col = static_cast<int>(ColBase.size());
    ColBase.push_back(Solver.numVars());
    for (size_t S = 0; S < Real.size(); ++S)
      Solver.newVar();
    for (size_t S = 0; S < Real.size(); ++S)
      for (int B = 0; B < Col; ++B)
        Solver.addClause({~placedAt(static_cast<int>(S), B),
                          ~placedAt(static_cast<int>(S), Col)});
  }
}

void SatIILadder::encodeRung(Lit Guard, const MinDistMatrix &MinDist) {
  const int II = MinDist.initiationInterval();

  // At-least-one over [0, II) — II-dependent, so guarded.
  for (size_t S = 0; S < Real.size(); ++S) {
    std::vector<Lit> AtLeastOne;
    AtLeastOne.reserve(static_cast<size_t>(II) + 1);
    AtLeastOne.push_back(Guard);
    for (int R = 0; R < II; ++R)
      AtLeastOne.push_back(placedAt(static_cast<int>(S), R));
    Solver.addClause(AtLeastOne);
  }

  // Modulo-resource conflicts are pairwise over operations sharing a
  // functional-unit instance; the reservation table itself is the single
  // source of truth for what conflicts (multi-cycle reservations on the
  // non-pipelined divider included).
  ModuloResourceTable Mrt(Machine, II);
  for (size_t SU = 0; SU < Real.size(); ++SU) {
    const Operation &U = Body.op(Real[SU]);
    const FuKind KindU = Machine.unitFor(U.Opc);
    const int InstU = FuInstance[static_cast<size_t>(Real[SU])];
    // Residues an operation cannot occupy even alone (a non-pipelined
    // reservation wrapping onto itself) are excluded for this rung.
    for (int A = 0; A < II; ++A)
      if (!Mrt.canPlace(U.Opc, KindU, InstU, A))
        Solver.addClause({Guard, ~placedAt(static_cast<int>(SU), A)});
    for (size_t SV = SU + 1; SV < Real.size(); ++SV) {
      const Operation &V = Body.op(Real[SV]);
      const FuKind KindV = Machine.unitFor(V.Opc);
      const int InstV = FuInstance[static_cast<size_t>(Real[SV])];
      if (KindU != KindV || InstU != InstV)
        continue;
      for (int A = 0; A < II; ++A) {
        if (!Mrt.canPlace(U.Opc, KindU, InstU, A))
          continue;
        Mrt.place(U.Opc, KindU, InstU, A);
        for (int B = 0; B < II; ++B)
          if (!Mrt.canPlace(V.Opc, KindV, InstV, B))
            Solver.addClause({Guard, ~placedAt(static_cast<int>(SU), A),
                              ~placedAt(static_cast<int>(SV), B)});
        Mrt.remove(U.Opc, KindU, InstU, A);
      }
    }
  }

  // Pairwise dependence legality. Only mutually connected pairs (the same
  // MinDist recurrence component) constrain residues: for a one-directional
  // bound the later operation can always slide by whole IIs, so every
  // residue pair admits integer times. For a mutual pair the two tightened
  // bounds must not form a positive two-cycle; that condition depends only
  // on the residue difference, so each infeasible difference yields II
  // binary clauses. Positive cycles longer than two are handled lazily.
  for (size_t SU = 0; SU < Real.size(); ++SU) {
    const int U = Real[SU];
    for (size_t SV = SU + 1; SV < Real.size(); ++SV) {
      const int V = Real[SV];
      if (!MinDist.connected(U, V) || !MinDist.connected(V, U))
        continue;
      const long CUV = MinDist.at(U, V);
      const long CVU = MinDist.at(V, U);
      for (int D = 0; D < II; ++D) {
        if (tighten(CUV, D, II) + tighten(CVU, -D, II) <= 0)
          continue;
        for (int A = 0; A < II; ++A)
          Solver.addClause({Guard, ~placedAt(static_cast<int>(SU), A),
                            ~placedAt(static_cast<int>(SV),
                                      (A + D) % II)});
      }
    }
  }
}

void SatIILadder::decodeResidues(int II) {
  Rho.assign(Real.size(), -1);
  for (size_t S = 0; S < Real.size(); ++S) {
    for (int R = 0; R < II; ++R) {
      if (Solver.modelValue(ColBase[static_cast<size_t>(R)] +
                            static_cast<int>(S))) {
        assert(Rho[S] < 0 && "exactly-one constraint violated");
        Rho[S] = R;
      }
    }
    assert(Rho[S] >= 0 && "operation left unplaced by the model");
  }
}

/// Max-plus Floyd-Warshall over the tightened constraint graph of the
/// decoded residues. Returns false (setting CycleSlot) when some diagonal
/// goes positive, i.e. no integer issue times realize these residues.
bool SatIILadder::closeTightened(const MinDistMatrix &MinDist, int II) {
  const size_t R = Real.size();
  T.assign(R * R, NoPath);
  for (size_t I = 0; I < R; ++I) {
    for (size_t J = 0; J < R; ++J) {
      if (I == J) {
        T[I * R + J] = 0;
        continue;
      }
      if (MinDist.connected(Real[I], Real[J]))
        T[I * R + J] = tighten(MinDist.at(Real[I], Real[J]),
                               Rho[J] - Rho[I], II);
    }
  }
  for (size_t K = 0; K < R; ++K) {
    for (size_t I = 0; I < R; ++I) {
      const long IK = T[I * R + K];
      if (!isPath(IK))
        continue;
      for (size_t J = 0; J < R; ++J) {
        const long KJ = T[K * R + J];
        if (!isPath(KJ))
          continue;
        long &Cell = T[I * R + J];
        const long Via = satAdd(IK, KJ);
        if (Via > Cell)
          Cell = Via;
      }
    }
    for (size_t I = 0; I < R; ++I) {
      if (T[I * R + I] > 0) {
        CycleSlot = static_cast<int>(I);
        return false;
      }
    }
  }
  CycleSlot = -1;
  return true;
}

/// Blocking clause for the positive cycle through CycleSlot: every
/// operation mutually connected with it in the tightened graph keeps its
/// current residue only if at least one of them moves. The cycle's arcs
/// run entirely inside that strongly connected set and their weights
/// depend only on those residues, so the cut is sound; it excludes the
/// current model, so each refinement shrinks the finite residue space.
std::vector<Lit> SatIILadder::cycleCut() const {
  const size_t R = Real.size();
  const size_t V = static_cast<size_t>(CycleSlot);
  std::vector<Lit> Cut;
  Cut.push_back(ActiveGuard); // the cut's weights are this rung's
  for (size_t U = 0; U < R; ++U)
    if (U == V || (isPath(T[V * R + U]) && isPath(T[U * R + V])))
      Cut.push_back(~placedAt(static_cast<int>(U), Rho[U]));
  return Cut;
}

/// Canonical earliest issue times from the positive-cycle-free closure:
/// real operations at their longest tightened path from Start (whose
/// outgoing bounds are clamped at zero, pinning t(Start) = 0 and every
/// time non-negative), pseudo-operations at the earliest cycle consistent
/// with every real operation — the same rule as the branch-and-bound
/// engine's leaf materialization, justified by MinDist maximality.
void SatIILadder::materializeTimes(const MinDistMatrix &MinDist, int II,
                                   std::vector<int> &TimesOut) const {
  const int Start = Body.startOp();
  const size_t R = Real.size();
  std::vector<long> Base(R, 0);
  for (size_t I = 0; I < R; ++I) {
    const long FromStart =
        MinDist.connected(Start, Real[I]) ? MinDist.at(Start, Real[I]) : 0;
    Base[I] = tighten(std::max(0L, FromStart), Rho[I], II);
  }
  std::vector<long> Time(R, 0);
  for (size_t J = 0; J < R; ++J) {
    long TJ = Base[J];
    for (size_t I = 0; I < R; ++I)
      if (isPath(T[I * R + J]))
        TJ = std::max(TJ, Base[I] + T[I * R + J]);
    Time[J] = TJ;
  }

  TimesOut.assign(static_cast<size_t>(N), 0);
  for (size_t I = 0; I < R; ++I) {
    assert(Time[I] % II == Rho[I] && "decoded time lost its residue");
    TimesOut[static_cast<size_t>(Real[I])] = static_cast<int>(Time[I]);
  }
  for (int X = 0; X < N; ++X) {
    if (X == Start || Slot[static_cast<size_t>(X)] >= 0)
      continue;
    long TX = std::max(0L, MinDist.connected(Start, X)
                               ? MinDist.at(Start, X)
                               : 0L);
    for (size_t I = 0; I < R; ++I)
      if (MinDist.connected(Real[I], X))
        TX = std::max(TX, Time[I] + MinDist.at(Real[I], X));
    TimesOut[static_cast<size_t>(X)] = static_cast<int>(TX);
  }
  TimesOut[static_cast<size_t>(Start)] = 0;
}

SatScheduleStatus SatIILadder::solveAtII(const MinDistMatrix &MinDist,
                                         long ConflictBudget,
                                         std::vector<int> &TimesOut,
                                         SatEngineStats &Stats) {
  const int II = MinDist.initiationInterval();
  assert(II > 0 && MinDist.numOps() == Graph.numOps() &&
         "MinDist must hold the relation at the candidate II");
  assert(II >= LastII && "ladder rungs must be non-decreasing");

  const SatSolverStats Before = Solver.stats();
  const int VarsBefore = Solver.numVars();
  const int ClausesBefore = Solver.numClauses();
  const auto Snapshot = [&]() {
    Stats.Variables += Solver.numVars() - VarsBefore;
    Stats.Clauses += Solver.numClauses() - ClausesBefore;
    Stats.Decisions += Solver.stats().Decisions - Before.Decisions;
    Stats.Propagations += Solver.stats().Propagations - Before.Propagations;
    Stats.Conflicts += Solver.stats().Conflicts - Before.Conflicts;
    Stats.Restarts += Solver.stats().Restarts - Before.Restarts;
    Stats.Learned += Solver.stats().Learned - Before.Learned;
  };

  if (ConflictBudget == 0) {
    return SatScheduleStatus::Budget; // mirror NodeBudget = 0 semantics
  }

  // Retire the previous rung: its activation literal becomes a permanent
  // fact, satisfying the whole group (and every learned clause guarded by
  // it) without touching the shared at-most-one core.
  if (ActiveGuard.Code >= 0 && II != LastII) {
    Solver.addClause({ActiveGuard});
    ActiveGuard = Lit{};
  }
  if (!Solver.okay()) {
    Snapshot();
    return SatScheduleStatus::Infeasible;
  }
  if (ActiveGuard.Code < 0) {
    growColumns(II);
    ActiveGuard = mkLit(Solver.newVar());
    encodeRung(ActiveGuard, MinDist);
    LastII = II;
  }

  SatScheduleStatus Status = SatScheduleStatus::Budget;
  for (;;) {
    const long Spent = Solver.stats().Conflicts - Before.Conflicts;
    if (ConflictBudget >= 0 && Spent >= ConflictBudget)
      break;
    const long Remaining = ConflictBudget < 0 ? -1 : ConflictBudget - Spent;
    const SatResult R =
        Solver.solveUnderAssumptions({~ActiveGuard}, Remaining);
    if (R == SatResult::Unknown)
      break;
    if (R == SatResult::Unsat) {
      Status = SatScheduleStatus::Infeasible;
      // Retire immediately: nothing below this II will be asked again.
      if (Solver.okay())
        Solver.addClause({ActiveGuard});
      ActiveGuard = Lit{};
      break;
    }
    decodeResidues(II);
    if (closeTightened(MinDist, II)) {
      materializeTimes(MinDist, II, TimesOut);
      Status = SatScheduleStatus::Scheduled;
      break;
    }
    Solver.addClause(cycleCut());
    ++Stats.Refinements;
  }

  Snapshot();
  return Status;
}

SatScheduleStatus lsms::scheduleAtIISat(const DepGraph &Graph,
                                        const MinDistMatrix &MinDist,
                                        const std::vector<int> &FuInstance,
                                        long ConflictBudget,
                                        std::vector<int> &TimesOut,
                                        SatEngineStats &Stats) {
  SatIILadder Ladder(Graph, FuInstance);
  return Ladder.solveAtII(MinDist, ConflictBudget, TimesOut, Stats);
}
