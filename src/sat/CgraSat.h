//===----------------------------------------------------------------------===//
///
/// \file
/// SAT backend for exact spatial modulo scheduling: extends the flat
/// (operation, residue) encoding of SatScheduler.h with *placement* — one
/// selector per (operation, residue, PE) triple — so a model decides both
/// when and where every operation executes on a CgraModel grid.
///
/// The clause families mirror the residue-space theorem, spatialized:
/// exactly-one residue per operation (shared with the flat encoding),
/// channeling between residue columns and (residue, PE) selectors with
/// at-most-one PE per operation, per-PE modulo-resource exclusivity
/// (pairwise over operations sharing a capable PE, reservation cycles
/// included), and pairwise dependence legality — the flat two-cycle test
/// over MinDist plus, for register-flow arcs inside a recurrence, the
/// hop-strengthened test per (PE, PE) pair, since a value crossing the
/// grid adds hop latency to its dependence. Longer positive cycles and
/// route-capacity overflows (bounded remote transfers per PE per cycle)
/// cannot be expressed pairwise; both are excluded by lazy CEGAR
/// refinement: each candidate model is checked with a hop-augmented
/// max-plus closure and a route count, and every violation becomes a
/// blocking clause over the participating selectors. Each cut removes at
/// least one point of the finite (residue x PE) space, so the verdict is
/// exact: Mapped models decode to validateMapping-clean mappings and
/// Infeasible proves no mapping exists at this II.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SAT_CGRASAT_H
#define LSMS_SAT_CGRASAT_H

#include "cgra/CgraModel.h"
#include "graph/MinDist.h"
#include "ir/DepGraph.h"
#include "sat/SatScheduler.h"

#include <vector>

namespace lsms {

/// Verdict for one fixed-II spatial SAT attempt.
enum class CgraSatStatus : uint8_t {
  Mapped,     ///< model found; (TimesOut, PesOut) passes validateMapping
  Infeasible, ///< no mapping exists at this II
  Budget,     ///< conflict budget exhausted first
};

/// Decides spatial mappability of \p Graph (built over Cgra.flatModel())
/// onto \p Cgra at the fixed II of \p MinDist, which must already hold the
/// relation at that II. On Mapped, \p TimesOut holds canonical earliest
/// issue times and \p PesOut the PE per op (-1 for ops taking no PE slot).
/// \p ConflictBudget bounds CDCL conflicts across refinement rounds; <= 0
/// gives up immediately. Deterministic; one fresh solver per call (the
/// spatial ladder is not yet incremental across rungs).
CgraSatStatus mapAtIICgraSat(const DepGraph &Graph, const CgraModel &Cgra,
                             const MinDistMatrix &MinDist, long ConflictBudget,
                             std::vector<int> &TimesOut,
                             std::vector<int> &PesOut, SatEngineStats &Stats);

} // namespace lsms

#endif // LSMS_SAT_CGRASAT_H
