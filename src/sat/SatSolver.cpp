#include "sat/SatSolver.h"

#include <algorithm>
#include <cassert>

using namespace lsms;

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
long luby(long I) {
  // Find the finite subsequence containing index I (the smallest full
  // sequence of length 2^Seq - 1 covering it), then recurse into it.
  long Size = 1, Seq = 0;
  while (Size < I + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) >> 1;
    --Seq;
    I %= Size;
  }
  return 1L << Seq;
}

constexpr long RestartBase = 64;
constexpr double VarDecay = 1.0 / 0.95;
constexpr double ClauseDecay = 1.0 / 0.999;
constexpr double RescaleLimit = 1e100;

} // namespace

const char *lsms::satResultName(SatResult Result) {
  switch (Result) {
  case SatResult::Sat:
    return "sat";
  case SatResult::Unsat:
    return "unsat";
  case SatResult::Unknown:
    return "unknown";
  }
  return "?";
}

SatSolver::SatSolver() = default;

int SatSolver::newVar() {
  const int V = numVars();
  Watches.emplace_back();
  Watches.emplace_back();
  Assigns.push_back(0);
  VarReason.push_back(NoReason);
  VarLevel.push_back(0);
  Activity.push_back(0);
  Polarity.push_back(0);
  HeapIndex.push_back(-1);
  Seen.push_back(0);
  heapInsert(V);
  return V;
}

// -- order heap -------------------------------------------------------------

bool SatSolver::heapLess(int A, int B) const {
  const double ActA = Activity[static_cast<size_t>(A)];
  const double ActB = Activity[static_cast<size_t>(B)];
  if (ActA != ActB)
    return ActA > ActB;
  return A < B; // deterministic tie-break
}

void SatSolver::heapPercolateUp(int Pos) {
  const int V = Heap[static_cast<size_t>(Pos)];
  while (Pos > 0) {
    const int Parent = (Pos - 1) / 2;
    if (!heapLess(V, Heap[static_cast<size_t>(Parent)]))
      break;
    Heap[static_cast<size_t>(Pos)] = Heap[static_cast<size_t>(Parent)];
    HeapIndex[static_cast<size_t>(Heap[static_cast<size_t>(Pos)])] = Pos;
    Pos = Parent;
  }
  Heap[static_cast<size_t>(Pos)] = V;
  HeapIndex[static_cast<size_t>(V)] = Pos;
}

void SatSolver::heapPercolateDown(int Pos) {
  const int V = Heap[static_cast<size_t>(Pos)];
  const int Size = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * Pos + 1;
    if (Child >= Size)
      break;
    if (Child + 1 < Size &&
        heapLess(Heap[static_cast<size_t>(Child + 1)],
                 Heap[static_cast<size_t>(Child)]))
      ++Child;
    if (!heapLess(Heap[static_cast<size_t>(Child)], V))
      break;
    Heap[static_cast<size_t>(Pos)] = Heap[static_cast<size_t>(Child)];
    HeapIndex[static_cast<size_t>(Heap[static_cast<size_t>(Pos)])] = Pos;
    Pos = Child;
  }
  Heap[static_cast<size_t>(Pos)] = V;
  HeapIndex[static_cast<size_t>(V)] = Pos;
}

void SatSolver::heapInsert(int Var) {
  if (heapInHeap(Var))
    return;
  Heap.push_back(Var);
  HeapIndex[static_cast<size_t>(Var)] = static_cast<int>(Heap.size()) - 1;
  heapPercolateUp(static_cast<int>(Heap.size()) - 1);
}

int SatSolver::heapPopMax() {
  const int V = Heap[0];
  HeapIndex[static_cast<size_t>(V)] = -1;
  const int Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapIndex[static_cast<size_t>(Last)] = 0;
    heapPercolateDown(0);
  }
  return V;
}

// -- activities -------------------------------------------------------------

void SatSolver::bumpVar(int Var) {
  double &Act = Activity[static_cast<size_t>(Var)];
  Act += VarInc;
  if (Act > RescaleLimit) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (heapInHeap(Var))
    heapPercolateUp(HeapIndex[static_cast<size_t>(Var)]);
}

void SatSolver::decayVarActivity() { VarInc *= VarDecay; }

void SatSolver::bumpClause(Clause &C) {
  C.Act += ClaInc;
  if (C.Act > RescaleLimit) {
    for (int Id : LearntIds)
      Clauses[static_cast<size_t>(Id)].Act *= 1e-100;
    ClaInc *= 1e-100;
  }
}

void SatSolver::decayClauseActivity() { ClaInc *= ClauseDecay; }

// -- trail ------------------------------------------------------------------

void SatSolver::uncheckedEnqueue(Lit P, int Reason) {
  const int V = litVar(P);
  assert(value(V) == 0 && "enqueue of an assigned variable");
  Assigns[static_cast<size_t>(V)] = litSign(P) ? -1 : 1;
  // Root-level facts need no reason; recording none keeps reduceDB free to
  // delete any learned clause while the solver sits at level 0.
  VarReason[static_cast<size_t>(V)] =
      decisionLevel() == 0 ? NoReason : Reason;
  VarLevel[static_cast<size_t>(V)] = decisionLevel();
  Trail.push_back(P);
}

void SatSolver::cancelUntil(int Level) {
  if (decisionLevel() <= Level)
    return;
  const size_t Bound =
      static_cast<size_t>(TrailLim[static_cast<size_t>(Level)]);
  for (size_t I = Trail.size(); I > Bound; --I) {
    const Lit P = Trail[I - 1];
    const int V = litVar(P);
    Polarity[static_cast<size_t>(V)] = litSign(P) ? 1 : 0; // phase saving
    Assigns[static_cast<size_t>(V)] = 0;
    VarReason[static_cast<size_t>(V)] = NoReason;
    heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(static_cast<size_t>(Level));
  QHead = Trail.size();
}

// -- clause management ------------------------------------------------------

void SatSolver::attachClause(int Id) {
  const Clause &C = Clauses[static_cast<size_t>(Id)];
  assert(C.Size >= 2 && "attach of a short clause");
  const Lit *Ls = lits(C);
  Watches[static_cast<size_t>(Ls[0].Code)].push_back(Id);
  Watches[static_cast<size_t>(Ls[1].Code)].push_back(Id);
}

int SatSolver::addClauseRecord(const std::vector<Lit> &Lits, bool Learnt) {
  const int Id = static_cast<int>(Clauses.size());
  Clause C;
  C.Off = static_cast<int>(LitPool.size());
  C.Size = static_cast<int>(Lits.size());
  C.Learnt = Learnt;
  LitPool.insert(LitPool.end(), Lits.begin(), Lits.end());
  Clauses.push_back(C);
  attachClause(Id);
  if (Learnt)
    LearntIds.push_back(Id);
  else
    ++NumProblemClauses;
  return Id;
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  if (!Ok)
    return false;
  assert(decisionLevel() == 0 && "clauses are added at the root level");

  // Normalize: sort, merge duplicates, detect tautologies, drop literals
  // already false at the root, succeed early on literals already true.
  std::sort(Lits.begin(), Lits.end());
  std::vector<Lit> Out;
  Out.reserve(Lits.size());
  for (const Lit L : Lits) {
    assert(litVar(L) >= 0 && litVar(L) < numVars() && "unknown variable");
    if (!Out.empty() && Out.back() == L)
      continue;
    if (!Out.empty() && Out.back() == ~L)
      return true; // tautology
    if (value(L) > 0 && VarLevel[static_cast<size_t>(litVar(L))] == 0)
      return true; // already satisfied
    if (value(L) < 0 && VarLevel[static_cast<size_t>(litVar(L))] == 0)
      continue; // already falsified
    Out.push_back(L);
  }

  if (Out.empty()) {
    Ok = false;
    return false;
  }
  if (Out.size() == 1) {
    if (value(Out[0]) < 0) {
      Ok = false;
      return false;
    }
    if (value(Out[0]) == 0)
      uncheckedEnqueue(Out[0], NoReason);
    if (propagate() != NoReason)
      Ok = false;
    return Ok;
  }
  addClauseRecord(Out, /*Learnt=*/false);
  return true;
}

void SatSolver::rebuildWatches() {
  for (auto &W : Watches)
    W.clear();
  for (int Id = 0; Id < static_cast<int>(Clauses.size()); ++Id)
    if (!Clauses[static_cast<size_t>(Id)].Dead)
      attachClause(Id);
}

void SatSolver::reduceDB() {
  assert(decisionLevel() == 0 && "reduceDB runs between restarts");
  // Keep binary clauses unconditionally; drop the low-activity half of the
  // rest (ties to the older clause id, keeping the run deterministic).
  std::vector<int> Candidates;
  Candidates.reserve(LearntIds.size());
  for (int Id : LearntIds)
    if (Clauses[static_cast<size_t>(Id)].Size > 2)
      Candidates.push_back(Id);
  if (Candidates.empty())
    return;
  std::sort(Candidates.begin(), Candidates.end(), [&](int A, int B) {
    const Clause &CA = Clauses[static_cast<size_t>(A)];
    const Clause &CB = Clauses[static_cast<size_t>(B)];
    if (CA.Act != CB.Act)
      return CA.Act < CB.Act;
    return A < B;
  });
  const size_t Drop = Candidates.size() / 2;
  for (size_t I = 0; I < Drop; ++I) {
    Clause &C = Clauses[static_cast<size_t>(Candidates[I])];
    C.Dead = true;
    ++Stats.Deleted;
  }
  LearntIds.erase(std::remove_if(LearntIds.begin(), LearntIds.end(),
                                 [&](int Id) {
                                   return Clauses[static_cast<size_t>(Id)]
                                       .Dead;
                                 }),
                  LearntIds.end());

  // Compact the literal arena in place: clause ids were assigned in pool
  // order, so a single forward pass moves every surviving span left.
  size_t WritePos = 0;
  for (Clause &C : Clauses) {
    if (C.Dead) {
      C.Size = 0;
      continue;
    }
    const size_t Off = static_cast<size_t>(C.Off);
    const size_t Size = static_cast<size_t>(C.Size);
    if (Off != WritePos)
      std::copy(LitPool.begin() + static_cast<long>(Off),
                LitPool.begin() + static_cast<long>(Off + Size),
                LitPool.begin() + static_cast<long>(WritePos));
    C.Off = static_cast<int>(WritePos);
    WritePos += Size;
  }
  LitPool.resize(WritePos);
  rebuildWatches();
}

// -- propagation ------------------------------------------------------------

int SatSolver::propagate() {
  while (QHead < Trail.size()) {
    const Lit P = Trail[QHead++]; // P just became true; ~P is false
    std::vector<int> &WL = Watches[static_cast<size_t>((~P).Code)];
    size_t Keep = 0;
    for (size_t I = 0; I < WL.size(); ++I) {
      const int Id = WL[I];
      Clause &C = Clauses[static_cast<size_t>(Id)];
      Lit *Ls = lits(C);
      // Move the false watch to slot 1.
      if (Ls[0] == ~P)
        std::swap(Ls[0], Ls[1]);
      assert(Ls[1] == ~P && "watch list out of sync");
      if (value(Ls[0]) > 0) {
        WL[Keep++] = Id; // clause already satisfied by the other watch
        continue;
      }
      bool Moved = false;
      for (int K = 2; K < C.Size; ++K) {
        if (value(Ls[K]) >= 0) {
          std::swap(Ls[1], Ls[K]);
          Watches[static_cast<size_t>(Ls[1].Code)].push_back(Id);
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Unit or conflicting.
      WL[Keep++] = Id;
      if (value(Ls[0]) < 0) {
        for (size_t J = I + 1; J < WL.size(); ++J)
          WL[Keep++] = WL[J];
        WL.resize(Keep);
        QHead = Trail.size();
        return Id;
      }
      uncheckedEnqueue(Ls[0], Id);
      ++Stats.Propagations;
    }
    WL.resize(Keep);
  }
  return NoReason;
}

// -- conflict analysis ------------------------------------------------------

void SatSolver::analyze(int Confl, std::vector<Lit> &Learnt, int &BtLevel) {
  Learnt.assign(1, Lit{}); // slot 0 is the asserting literal
  int PathCount = 0;
  Lit P{};
  int Index = static_cast<int>(Trail.size()) - 1;
  std::vector<int> ToClear;

  do {
    assert(Confl != NoReason && "no reason on the conflict path");
    Clause &C = Clauses[static_cast<size_t>(Confl)];
    if (C.Learnt)
      bumpClause(C);
    const Lit *Ls = lits(C);
    for (int J = (P.Code < 0 ? 0 : 1); J < C.Size; ++J) {
      const Lit Q = Ls[J];
      const int V = litVar(Q);
      if (Seen[static_cast<size_t>(V)] ||
          VarLevel[static_cast<size_t>(V)] == 0)
        continue;
      bumpVar(V);
      Seen[static_cast<size_t>(V)] = 1;
      ToClear.push_back(V);
      if (VarLevel[static_cast<size_t>(V)] >= decisionLevel())
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    while (!Seen[static_cast<size_t>(litVar(Trail[static_cast<size_t>(
        Index)]))])
      --Index;
    P = Trail[static_cast<size_t>(Index)];
    --Index;
    Confl = VarReason[static_cast<size_t>(litVar(P))];
    Seen[static_cast<size_t>(litVar(P))] = 0;
    --PathCount;
  } while (PathCount > 0);
  Learnt[0] = ~P;

  // Backjump to the second-highest decision level in the learned clause,
  // moving that literal into the other watch slot.
  BtLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxIdx = 1;
    for (size_t J = 2; J < Learnt.size(); ++J)
      if (VarLevel[static_cast<size_t>(litVar(Learnt[J]))] >
          VarLevel[static_cast<size_t>(litVar(Learnt[MaxIdx]))])
        MaxIdx = J;
    std::swap(Learnt[1], Learnt[MaxIdx]);
    BtLevel = VarLevel[static_cast<size_t>(litVar(Learnt[1]))];
  }

  for (int V : ToClear)
    Seen[static_cast<size_t>(V)] = 0;
}

void SatSolver::analyzeFinal(Lit P) {
  // P is an assumption found false under the current trail. Walk the
  // implication graph backwards from ~P; every assumption decision reached
  // joins the core. Literals below level 1 are facts and never contribute.
  FinalConflictLits.assign(1, P);
  if (VarLevel[static_cast<size_t>(litVar(P))] == 0 || decisionLevel() == 0)
    return;
  Seen[static_cast<size_t>(litVar(P))] = 1;
  const size_t Bound = static_cast<size_t>(TrailLim[0]);
  for (size_t I = Trail.size(); I > Bound; --I) {
    const Lit Q = Trail[I - 1];
    const int V = litVar(Q);
    if (!Seen[static_cast<size_t>(V)])
      continue;
    const int Reason = VarReason[static_cast<size_t>(V)];
    if (Reason == NoReason) {
      assert(VarLevel[static_cast<size_t>(V)] > 0 &&
             "decision below the first assumption level");
      FinalConflictLits.push_back(Q);
    } else {
      const Clause &C = Clauses[static_cast<size_t>(Reason)];
      const Lit *Ls = lits(C);
      for (int J = 1; J < C.Size; ++J) {
        const int W = litVar(Ls[J]);
        if (VarLevel[static_cast<size_t>(W)] > 0)
          Seen[static_cast<size_t>(W)] = 1;
      }
    }
    Seen[static_cast<size_t>(V)] = 0;
  }
  Seen[static_cast<size_t>(litVar(P))] = 0;
}

Lit SatSolver::pickBranchLit() {
  while (!Heap.empty()) {
    const int V = heapPopMax();
    if (value(V) == 0)
      return mkLit(V, Polarity[static_cast<size_t>(V)] == 0);
  }
  return Lit{};
}

// -- main search ------------------------------------------------------------

SatResult SatSolver::solve(long ConflictBudget) {
  return solveUnderAssumptions({}, ConflictBudget);
}

SatResult SatSolver::solveUnderAssumptions(
    const std::vector<Lit> &Assumptions, long ConflictBudget) {
  if (!Ok) {
    FinalConflictLits.clear();
    return SatResult::Unsat;
  }
  // Copy before clearing the previous core: callers may legitimately pass
  // finalConflict() itself back in (e.g. to re-probe a derived core).
  Assumps = Assumptions;
  FinalConflictLits.clear();
  const SatResult Result = search(ConflictBudget);
  Assumps.clear();
  cancelUntil(0);
  return Result;
}

SatResult SatSolver::search(long ConflictBudget) {
  cancelUntil(0);
  if (propagate() != NoReason) {
    Ok = false;
    return SatResult::Unsat;
  }

  const long BudgetStart = Stats.Conflicts;
  long RestartIndex = 0;
  long RestartLimit = RestartBase * luby(RestartIndex);
  long ConflictsThisRestart = 0;
  std::vector<Lit> Learnt;

  for (;;) {
    if (StopFlag && StopFlag->load(std::memory_order_relaxed))
      return SatResult::Unknown;

    const int Confl = propagate();
    if (Confl != NoReason) {
      ++Stats.Conflicts;
      ++ConflictsThisRestart;
      if (decisionLevel() == 0) {
        Ok = false;
        return SatResult::Unsat;
      }
      int BtLevel = 0;
      analyze(Confl, Learnt, BtLevel);
      cancelUntil(BtLevel);
      ++Stats.Learned;
      Stats.LearnedLiterals += static_cast<long>(Learnt.size());
      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], NoReason);
      } else {
        const int Id = addClauseRecord(Learnt, /*Learnt=*/true);
        bumpClause(Clauses[static_cast<size_t>(Id)]);
        uncheckedEnqueue(Learnt[0], Id);
      }
      decayVarActivity();
      decayClauseActivity();
      if (ConflictBudget >= 0 &&
          Stats.Conflicts - BudgetStart >= ConflictBudget)
        return SatResult::Unknown;
      continue;
    }

    if (ConflictsThisRestart >= RestartLimit) {
      ++Stats.Restarts;
      ++RestartIndex;
      RestartLimit = RestartBase * luby(RestartIndex);
      ConflictsThisRestart = 0;
      cancelUntil(0);
      if (LearntIds.size() > MaxLearnts) {
        reduceDB();
        MaxLearnts += MaxLearnts / 2;
      }
      continue;
    }

    // Re-establish any assumptions popped by backjumping or restarts
    // before making free decisions. An already-true assumption gets an
    // empty decision level to keep level numbering aligned with the
    // assumption index; a false one yields the final conflict.
    Lit Next{};
    while (decisionLevel() < static_cast<int>(Assumps.size())) {
      const Lit P = Assumps[static_cast<size_t>(decisionLevel())];
      if (value(P) > 0) {
        TrailLim.push_back(static_cast<int>(Trail.size()));
      } else if (value(P) < 0) {
        analyzeFinal(P);
        return SatResult::Unsat;
      } else {
        Next = P;
        break;
      }
    }

    if (Next.Code < 0)
      Next = pickBranchLit();
    if (Next.Code < 0) {
      // Every variable is assigned: a model.
      Model.assign(Assigns.begin(), Assigns.end());
      return SatResult::Sat;
    }
    ++Stats.Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    uncheckedEnqueue(Next, NoReason);
  }
}
