#include "regalloc/RotatingAllocator.h"

#include "bounds/Lifetimes.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace lsms;

namespace {

struct Range {
  int Value = -1;
  long Start = 0;  ///< issue cycle of the defining operation
  long Length = 0; ///< lifetime in cycles
};

/// True when colors (Cv, Cw) collide in a file of \p Size registers:
/// instances j_v and j_w share a physical register when
/// j_v - j_w == (Cv - Cw) mod Size, and their live intervals overlap when
/// -LTv < (Sv - Sw) + m*II < LTw for m = j_v - j_w.
bool colorsConflict(const Range &V, const Range &W, int Cv, int Cw, int Size,
                    int II) {
  const long Delta = V.Start - W.Start;
  // Forbidden m interval: m*II in (-LTv - Delta, LTw - Delta).
  const long LoNum = -V.Length - Delta; // exclusive
  const long HiNum = W.Length - Delta;  // exclusive
  // Smallest integer m with m*II > LoNum:
  long MLo = LoNum >= 0 ? LoNum / II + 1
                        : -((-LoNum) / II); // floor(LoNum/II) + 1 in effect
  while (MLo * II <= LoNum)
    ++MLo;
  while ((MLo - 1) * II > LoNum)
    --MLo;
  const bool SameValue = V.Value == W.Value;
  const long D = (((Cv - Cw) % Size) + Size) % Size;
  for (long M = MLo; M * II < HiNum; ++M) {
    if (SameValue && M == 0)
      continue; // a value never conflicts with its own instance
    if (((M % Size) + Size) % Size == D)
      return true;
  }
  return false;
}

std::vector<Range> collectRanges(const LoopBody &Body,
                                 const std::vector<int> &Times, int II,
                                 RegClass Class) {
  const PressureInfo Info = computePressure(Body, Times, II, Class);
  std::vector<Range> Ranges;
  for (const Value &V : Body.Values) {
    if (V.Class != Class)
      continue;
    const long Length = Info.Length[static_cast<size_t>(V.Id)];
    if (Length <= 0)
      continue; // never read: no register needed
    Ranges.push_back(
        {V.Id, Times[static_cast<size_t>(V.Def)], Length});
  }
  return Ranges;
}

/// Orderings tried by the allocator (Rau et al. [18] evaluate start-time
/// and adjacency orderings; longest-first is the classic interval-packing
/// heuristic). The allocator keeps whichever yields the smallest file.
enum class AllocOrder { StartTime, LongestFirst, EndTime };

void orderRanges(std::vector<Range> &Ranges, AllocOrder Order) {
  switch (Order) {
  case AllocOrder::StartTime:
    std::stable_sort(Ranges.begin(), Ranges.end(),
                     [](const Range &A, const Range &B) {
                       if (A.Start != B.Start)
                         return A.Start < B.Start;
                       return A.Length > B.Length;
                     });
    return;
  case AllocOrder::LongestFirst:
    std::stable_sort(Ranges.begin(), Ranges.end(),
                     [](const Range &A, const Range &B) {
                       if (A.Length != B.Length)
                         return A.Length > B.Length;
                       return A.Start < B.Start;
                     });
    return;
  case AllocOrder::EndTime:
    std::stable_sort(Ranges.begin(), Ranges.end(),
                     [](const Range &A, const Range &B) {
                       return A.Start + A.Length < B.Start + B.Length;
                     });
    return;
  }
}

/// First-fit coloring of \p Ranges into a file of \p Size registers;
/// returns false when some range cannot be colored.
bool colorRanges(const std::vector<Range> &Ranges, int Size, int II,
                 std::vector<int> &Color) {
  Color.assign(Ranges.size(), -1);
  for (size_t I = 0; I < Ranges.size(); ++I) {
    int Chosen = -1;
    for (int C = 0; C < Size && Chosen < 0; ++C) {
      bool Free = !colorsConflict(Ranges[I], Ranges[I], C, C, Size, II);
      for (size_t J = 0; J < I && Free; ++J)
        if (colorsConflict(Ranges[I], Ranges[J], C, Color[J], Size, II))
          Free = false;
      if (Free)
        Chosen = C;
    }
    if (Chosen < 0)
      return false;
    Color[I] = Chosen;
  }
  return true;
}

} // namespace

AllocationResult lsms::allocateRotating(const LoopBody &Body,
                                        const std::vector<int> &Times, int II,
                                        RegClass Class, int MaxSize,
                                        const std::vector<ExtraRange> &Extra) {
  AllocationResult Result;
  Result.Color.assign(static_cast<size_t>(Body.numValues()), -1);
  Result.ExtraColor.assign(Extra.size(), -1);
  Result.MaxLive = computePressure(Body, Times, II, Class).MaxLive;

  std::vector<Range> Ranges = collectRanges(Body, Times, II, Class);
  // Extra ranges use negative pseudo-value ids below any real value.
  for (size_t E = 0; E < Extra.size(); ++E)
    Ranges.push_back({-2 - static_cast<int>(E), Extra[E].Start,
                      Extra[E].Length});
  if (Ranges.empty()) {
    Result.Success = true;
    Result.FileSize = 0;
    return Result;
  }

  // Try each ordering at growing sizes; the first size at which any
  // ordering succeeds is minimal for first-fit across these orderings.
  for (int Size = std::max<long>(1, Result.MaxLive); Size <= MaxSize;
       ++Size) {
    for (const AllocOrder Order :
         {AllocOrder::StartTime, AllocOrder::LongestFirst,
          AllocOrder::EndTime}) {
      std::vector<Range> Ordered = Ranges;
      orderRanges(Ordered, Order);
      std::vector<int> Color;
      if (!colorRanges(Ordered, Size, II, Color))
        continue;
      Result.Success = true;
      Result.FileSize = Size;
      for (size_t I = 0; I < Ordered.size(); ++I) {
        if (Ordered[I].Value >= 0)
          Result.Color[static_cast<size_t>(Ordered[I].Value)] = Color[I];
        else
          Result.ExtraColor[static_cast<size_t>(-2 - Ordered[I].Value)] =
              Color[I];
      }
      return Result;
    }
  }
  return Result;
}

std::string lsms::validateAllocation(const LoopBody &Body,
                                     const std::vector<int> &Times, int II,
                                     RegClass Class,
                                     const AllocationResult &Alloc) {
  std::ostringstream Err;
  if (!Alloc.Success) {
    Err << "allocation unsuccessful";
    return Err.str();
  }
  const std::vector<Range> Ranges = collectRanges(Body, Times, II, Class);
  if (Ranges.empty())
    return std::string();

  long MaxLen = 0, MaxStart = 0;
  for (const Range &R : Ranges) {
    MaxLen = std::max(MaxLen, R.Length);
    MaxStart = std::max(MaxStart, R.Start);
    if (Alloc.Color[static_cast<size_t>(R.Value)] < 0) {
      Err << "live value " << Body.value(R.Value).Name << " has no color";
      return Err.str();
    }
  }

  // Simulate occupancy: enough iterations that every pair of instances
  // whose physical registers can coincide is exercised (one full rotation
  // of the file plus the longest lifetime).
  const int Size = Alloc.FileSize;
  const long Iterations =
      Size + (MaxStart + MaxLen) / II + 2;
  // (physreg, cycle) -> (value, iteration): distinct instances of the same
  // value are distinct owners and must not collide either.
  std::map<std::pair<int, long>, std::pair<int, long>> Owner;
  for (long J = 0; J < Iterations; ++J) {
    for (const Range &R : Ranges) {
      const int C = Alloc.Color[static_cast<size_t>(R.Value)];
      const int Phys = static_cast<int>((((C - J) % Size) + Size) % Size);
      const long Start = R.Start + J * II;
      for (long T = Start; T < Start + R.Length; ++T) {
        auto [It, Inserted] = Owner.emplace(std::make_pair(Phys, T),
                                            std::make_pair(R.Value, J));
        if (!Inserted && It->second != std::make_pair(R.Value, J)) {
          Err << "register r" << Phys << " at cycle " << T
              << " held by both " << Body.value(It->second.first).Name
              << "(iter " << It->second.second << ") and "
              << Body.value(R.Value).Name << "(iter " << J << ")";
          return Err.str();
        }
      }
    }
  }
  return std::string();
}
