//===----------------------------------------------------------------------===//
///
/// \file
/// Rotating register allocation for modulo-scheduled loops (Section 2.3).
///
/// Each rotating value receives a color C in a rotating file of S
/// registers; iteration j's instance lives in physical register
/// (C - j) mod S for [def(j), def(j) + LT) cycles, where the file rotates
/// once per II. The allocator greedily colors values (start-time order,
/// first fit), growing S until conflict-free — reproducing the observation
/// of Rau et al. [18], which the paper leans on, that allocation almost
/// always lands within a register or two of the MaxLive lower bound.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_REGALLOC_ROTATINGALLOCATOR_H
#define LSMS_REGALLOC_ROTATINGALLOCATOR_H

#include "ir/LoopBody.h"

#include <string>
#include <vector>

namespace lsms {

struct AllocationResult {
  bool Success = false;
  /// Size of the rotating file used (number of registers).
  int FileSize = 0;
  /// Color per value id; -1 for values of other classes or without uses.
  std::vector<int> Color;
  /// Colors of the caller-supplied extra ranges (same order).
  std::vector<int> ExtraColor;
  /// The MaxLive lower bound for comparison (loop values only).
  long MaxLive = 0;
};

/// A caller-supplied rotating live range allocated alongside the loop's
/// values (e.g. the kernel's stage-predicate chain, whose single logical
/// value is live for StageCount * II cycles).
struct ExtraRange {
  long Start = 0;
  long Length = 0;
};

/// Allocates rotating registers for all \p Class values of \p Body under
/// the complete schedule \p Times at initiation interval \p II. Fails only
/// if more than \p MaxSize registers would be needed.
AllocationResult allocateRotating(const LoopBody &Body,
                                  const std::vector<int> &Times, int II,
                                  RegClass Class = RegClass::RR,
                                  int MaxSize = 4096,
                                  const std::vector<ExtraRange> &Extra = {});

/// Independently validates \p Alloc by simulating physical-register
/// occupancy over enough iterations to cover every relative overlap.
/// Returns an empty string when no two live ranges collide.
std::string validateAllocation(const LoopBody &Body,
                               const std::vector<int> &Times, int II,
                               RegClass Class, const AllocationResult &Alloc);

} // namespace lsms

#endif // LSMS_REGALLOC_ROTATINGALLOCATOR_H
