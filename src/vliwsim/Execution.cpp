#include "vliwsim/Execution.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

using namespace lsms;

double lsms::defaultMemoryInit(int Array, long Index) {
  uint64_t H = (static_cast<uint64_t>(Array) + 1) * 0x9E3779B97F4A7C15ULL ^
               (static_cast<uint64_t>(Index) + 4096) * 0xBF58476D1CE4E5B9ULL;
  H ^= H >> 30;
  H *= 0x94D049BB133111EBULL;
  H ^= H >> 31;
  const double Frac =
      static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0);
  return 1.0 + 2.0 * Frac;
}

namespace {

/// Shared machinery: per-value instance tables, memory, and per-operation
/// evaluation. Both executors drive it with different (iteration, op)
/// orders.
class Machine {
public:
  Machine(const LoopBody &Body, long Iterations, const MemoryInit &Init)
      : Body(Body), First(Body.First), Iterations(Iterations), Init(Init) {
    Instances.assign(static_cast<size_t>(Body.numValues()), {});
    Computed.assign(static_cast<size_t>(Body.numValues()), {});
    for (auto &V : Instances)
      V.assign(static_cast<size_t>(Iterations), 0.0);
    for (auto &C : Computed)
      C.assign(static_cast<size_t>(Iterations), false);
    Memory.assign(static_cast<size_t>(Body.NumArrays), {});
    // Loop inputs (Start-defined values) are available for every
    // iteration.
  }

  /// Value instance of \p ValueId for iteration \p Iter (absolute, may be
  /// below First for seeded reads). Sets \p Ok false on undefined reads.
  double instance(int ValueId, long Iter, bool &Ok) {
    const Value &V = Body.value(ValueId);
    if (V.Def == Body.startOp())
      return V.Init; // loop input: same every iteration
    if (Iter < First) {
      if (V.SeedArrayId >= 0)
        return memoryAt(V.SeedArrayId,
                        Iter * V.SeedElemStride + V.SeedElemOffset);
      const size_t K = static_cast<size_t>(First - 1 - Iter);
      return K < V.Seeds.size() ? V.Seeds[K] : 0.0;
    }
    const size_t Slot = static_cast<size_t>(Iter - First);
    if (Slot >= static_cast<size_t>(Iterations) ||
        !Computed[static_cast<size_t>(ValueId)][Slot]) {
      Ok = false;
      return 0.0;
    }
    return Instances[static_cast<size_t>(ValueId)][Slot];
  }

  void setInstance(int ValueId, long Iter, double D) {
    const size_t Slot = static_cast<size_t>(Iter - First);
    Instances[static_cast<size_t>(ValueId)][Slot] = D;
    Computed[static_cast<size_t>(ValueId)][Slot] = true;
  }

  double memoryAt(int Array, long Index) {
    auto &Cells = Memory[static_cast<size_t>(Array)];
    const auto It = Cells.find(Index);
    return It != Cells.end() ? It->second : Init(Array, Index);
  }

  void memoryWrite(int Array, long Index, double D) {
    Memory[static_cast<size_t>(Array)][Index] = D;
  }

  /// Evaluates \p Op for iteration \p Iter against current memory; when
  /// \p StoreOut is non-null, stores are deferred (the pipelined executor
  /// commits them a cycle later), otherwise applied immediately.
  struct PendingStore {
    int Array;
    long Index;
    double Datum;
  };
  bool evaluate(const Operation &Op, long Iter, std::string &Error,
                PendingStore *StoreOut = nullptr);

  /// Records executed memory accesses when non-null.
  std::vector<MemTraceEntry> *Trace = nullptr;

  /// \p ActualTrip is the number of iterations actually executed (equals
  /// the window for counted loops); live-outs are read at the last executed
  /// iteration.
  ExecutionResult finish(std::string Error, long ActualTrip) {
    ExecutionResult R;
    R.Error = std::move(Error);
    R.ActualTrip = ActualTrip;
    if (R.Error.empty() && ActualTrip > 0) {
      for (const Value &V : Body.Values) {
        if (!V.LiveOut)
          continue;
        bool Ok = true;
        const double D = instance(V.Id, First + ActualTrip - 1, Ok);
        R.LiveOuts[V.Id] = Ok ? D : std::numeric_limits<double>::quiet_NaN();
      }
    }
    R.Arrays = std::move(Memory);
    return R;
  }

private:
  const LoopBody &Body;
  const long First;
  const long Iterations;
  const MemoryInit &Init;
  std::vector<std::vector<double>> Instances;
  std::vector<std::vector<bool>> Computed;
  std::vector<std::map<long, double>> Memory;
};

bool Machine::evaluate(const Operation &Op, long Iter, std::string &Error,
                       PendingStore *StoreOut) {
  bool Ok = true;
  auto Operand = [this, &Op, Iter, &Ok](size_t I) {
    return instance(Op.Operands[I].Value, Iter - Op.Operands[I].Omega, Ok);
  };

  // Predicated execution: a false predicate turns the operation into a
  // no-op (Section 2.2).
  if (Op.PredValue >= 0) {
    const double P = instance(Op.PredValue, Iter - Op.PredOmega, Ok);
    if (!Ok) {
      Error = "predicate of " + Op.Name + " undefined";
      return false;
    }
    if (P == 0.0)
      return true;
  }

  double Result = 0;

  switch (Op.Opc) {
  case Opcode::Start:
  case Opcode::Stop:
  case Opcode::BrTop:
    return true;
  case Opcode::Load: {
    // Affine accesses compute the address stream for fidelity but derive
    // the element index from the subscript; indirect accesses round
    // operand 0 (the index scalar's runtime value). Loads never fault —
    // any index reads initialized memory.
    const double A0 = Operand(0);
    if (!Ok)
      break;
    const long Index = Op.Indirect
                           ? static_cast<long>(std::llround(A0))
                           : Iter * Op.ElemStride + Op.ElemOffset;
    if (Trace)
      Trace->push_back({Op.Id, Iter, Index, false});
    Result = memoryAt(Op.ArrayId, Index);
    break;
  }
  case Opcode::Store: {
    const double A0 = Operand(0);
    const double Datum = Operand(1);
    if (!Ok)
      break;
    const long Index = Op.Indirect
                           ? static_cast<long>(std::llround(A0))
                           : Iter * Op.ElemStride + Op.ElemOffset;
    if (Trace)
      Trace->push_back({Op.Id, Iter, Index, true});
    if (StoreOut) {
      *StoreOut = {Op.ArrayId, Index, Datum};
    } else {
      memoryWrite(Op.ArrayId, Index, Datum);
    }
    return true;
  }
  default: {
    std::vector<double> Operands(Op.Operands.size());
    for (size_t I = 0; I < Op.Operands.size(); ++I)
      Operands[I] = Operand(I);
    if (Ok)
      Result = evaluateOpcode(Op.Opc, Operands);
    break;
  }
  }

  if (!Ok) {
    std::ostringstream OS;
    OS << "operation " << Op.Name << " read an undefined value instance in "
       << "iteration " << Iter;
    Error = OS.str();
    return false;
  }
  if (Op.Result >= 0)
    setInstance(Op.Result, Iter, Result);
  return true;
}



/// Topological order of operations under omega-0 dependences (register and
/// memory): the sequential execution order of one iteration.
std::vector<int> sequentialOrder(const LoopBody &Body) {
  const int N = Body.numOps();
  std::vector<std::vector<int>> Succ(static_cast<size_t>(N));
  std::vector<int> InDegree(static_cast<size_t>(N), 0);
  auto AddEdge = [&Succ, &InDegree](int From, int To) {
    Succ[static_cast<size_t>(From)].push_back(To);
    ++InDegree[static_cast<size_t>(To)];
  };
  for (const Operation &Op : Body.Ops) {
    for (const Use &U : Op.Operands)
      if (U.Omega == 0 && Body.value(U.Value).Def != Body.startOp())
        AddEdge(Body.value(U.Value).Def, Op.Id);
    if (Op.PredValue >= 0 && Op.PredOmega == 0)
      AddEdge(Body.value(Op.PredValue).Def, Op.Id);
  }
  for (const MemDep &D : Body.MemDeps)
    if (D.Omega == 0)
      AddEdge(D.Src, D.Dst);

  // Kahn's algorithm, preferring low op ids (stable program order).
  std::vector<int> Ready, Order;
  for (int Op = 0; Op < N; ++Op)
    if (InDegree[static_cast<size_t>(Op)] == 0)
      Ready.push_back(Op);
  while (!Ready.empty()) {
    const auto MinIt = std::min_element(Ready.begin(), Ready.end());
    const int Op = *MinIt;
    Ready.erase(MinIt);
    Order.push_back(Op);
    for (int S : Succ[static_cast<size_t>(Op)])
      if (--InDegree[static_cast<size_t>(S)] == 0)
        Ready.push_back(S);
  }
  assert(Order.size() == static_cast<size_t>(N) &&
         "omega-0 cycle (verifier should have rejected this body)");
  return Order;
}

} // namespace

namespace {

ExecutionResult runReferenceImpl(const LoopBody &Body, long Iterations,
                                 const MemoryInit &Init,
                                 std::vector<MemTraceEntry> *TraceOut) {
  Machine M(Body, Iterations, Init);
  M.Trace = TraceOut;
  const std::vector<int> Order = sequentialOrder(Body);
  std::string Error;
  long Executed = 0;
  for (long Iter = Body.First; Iter < Body.First + Iterations; ++Iter) {
    for (int OpId : Order) {
      if (!M.evaluate(Body.op(OpId), Iter, Error))
        return M.finish(std::move(Error), Executed);
    }
    ++Executed;
    if (Body.isWhileLoop()) {
      // Do-while: the first iteration whose exit value is false is the
      // last executed.
      bool Ok = true;
      const double Exit = M.instance(Body.ExitValue, Iter, Ok);
      if (Ok && Exit == 0.0)
        break;
    }
  }
  return M.finish(std::string(), Executed);
}

} // namespace

ExecutionResult lsms::runReference(const LoopBody &Body, long Iterations,
                                   const MemoryInit &Init) {
  return runReferenceImpl(Body, Iterations, Init, nullptr);
}

ExecutionResult lsms::runReferenceTraced(const LoopBody &Body,
                                         long Iterations,
                                         const MemoryInit &Init,
                                         std::vector<MemTraceEntry> &TraceOut) {
  TraceOut.clear();
  return runReferenceImpl(Body, Iterations, Init, &TraceOut);
}

ExecutionResult lsms::runPipelined(const LoopBody &Body,
                                   const Schedule &Sched, long Iterations,
                                   const MemoryInit &Init) {
  if (!Sched.Success) {
    ExecutionResult R;
    R.Error = "cannot execute a failed schedule";
    return R;
  }

  Machine M(Body, Iterations, Init);

  // Build the event list: (issue time, op, iteration).
  struct Event {
    long Time;
    int Op;
    long Iter;
  };
  std::vector<Event> Events;
  Events.reserve(static_cast<size_t>(Body.numOps()) *
                 static_cast<size_t>(Iterations));
  for (long Iter = Body.First; Iter < Body.First + Iterations; ++Iter) {
    const long Offset = (Iter - Body.First) * Sched.II;
    for (const Operation &Op : Body.Ops)
      Events.push_back(
          {Sched.Times[static_cast<size_t>(Op.Id)] + Offset, Op.Id, Iter});
  }
  std::sort(Events.begin(), Events.end(), [](const Event &A, const Event &B) {
    if (A.Time != B.Time)
      return A.Time < B.Time;
    if (A.Iter != B.Iter)
      return A.Iter < B.Iter;
    return A.Op < B.Op;
  });

  // Stores commit one cycle after issue; loads sample memory at issue.
  struct Commit {
    long Time;
    long Iter;
    Machine::PendingStore Store;
  };
  std::vector<Commit> CommitQueue; // sorted by insertion (times ascend)
  size_t NextCommit = 0;

  // While-loops: the exit compare for iteration j resolves one cycle after
  // it issues. Once the first false exit value is known (scanning exit
  // events in time order visits them in iteration order), stores of later
  // iterations that issue at or after the resolve cycle are squashed;
  // stores already issued commit anyway — observable misspeculation.
  // Conservative control arcs (exit -> store, latency 1, omega 1) force
  // every later store past the resolve cycle, so conservative schedules
  // squash all of them. Loads and register writes of dead iterations are
  // harmless: loads never fault and non-negative omegas mean no live
  // iteration reads a later iteration's values.
  const int ExitDef =
      Body.isWhileLoop() ? Body.value(Body.ExitValue).Def : -1;
  bool ExitFound = false;
  long ExitIter = 0;
  long ResolveTime = 0;

  std::string Error;
  for (const Event &E : Events) {
    while (NextCommit < CommitQueue.size() &&
           CommitQueue[NextCommit].Time <= E.Time) {
      const auto &S = CommitQueue[NextCommit++].Store;
      M.memoryWrite(S.Array, S.Index, S.Datum);
    }
    const Operation &Op = Body.op(E.Op);
    Machine::PendingStore Pending{-1, 0, 0};
    if (!M.evaluate(Op, E.Iter, Error, &Pending))
      return M.finish(std::move(Error),
                      ExitFound ? ExitIter - Body.First + 1 : Iterations);
    if (Pending.Array >= 0) {
      const bool Squashed = ExitFound && E.Iter > ExitIter &&
                            E.Time >= ResolveTime;
      if (!Squashed)
        CommitQueue.push_back({E.Time + 1, E.Iter, Pending});
    }
    if (E.Op == ExitDef && !ExitFound) {
      bool Ok = true;
      const double Exit = M.instance(Body.ExitValue, E.Iter, Ok);
      if (Ok && Exit == 0.0) {
        ExitFound = true;
        ExitIter = E.Iter;
        ResolveTime = E.Time + 1;
      }
    }
  }
  while (NextCommit < CommitQueue.size()) {
    const auto &S = CommitQueue[NextCommit++].Store;
    M.memoryWrite(S.Array, S.Index, S.Datum);
  }

  long Misspeculated = 0;
  if (ExitFound)
    for (const Commit &C : CommitQueue)
      if (C.Iter > ExitIter)
        ++Misspeculated;

  ExecutionResult R = M.finish(
      std::string(), ExitFound ? ExitIter - Body.First + 1 : Iterations);
  R.MisspeculatedStores = Misspeculated;
  return R;
}

std::string lsms::compareExecutions(const ExecutionResult &A,
                                    const ExecutionResult &B) {
  std::ostringstream OS;
  auto Same = [](double X, double Y) {
    return X == Y || (std::isnan(X) && std::isnan(Y));
  };
  if (!A.Error.empty() || !B.Error.empty()) {
    OS << "execution errors: '" << A.Error << "' vs '" << B.Error << "'";
    return OS.str();
  }
  // Trip counts are deliberately NOT compared here: callers legitimately
  // compare executions at different granularities (an unrolled body runs
  // 1/Factor as many iterations over the same work). The speculation
  // replay, where truncation must agree, checks ActualTrip itself.
  if (A.Arrays.size() != B.Arrays.size()) {
    OS << "different array counts";
    return OS.str();
  }
  for (size_t Array = 0; Array < A.Arrays.size(); ++Array) {
    const auto &MapA = A.Arrays[Array];
    const auto &MapB = B.Arrays[Array];
    for (const auto &[Index, ValueA] : MapA) {
      const auto It = MapB.find(Index);
      if (It == MapB.end()) {
        OS << "array " << Array << "[" << Index << "] written only by A";
        return OS.str();
      }
      if (!Same(ValueA, It->second)) {
        OS << "array " << Array << "[" << Index << "]: " << ValueA
           << " vs " << It->second;
        return OS.str();
      }
    }
    for (const auto &[Index, ValueB] : MapB) {
      (void)ValueB;
      if (!MapA.count(Index)) {
        OS << "array " << Array << "[" << Index << "] written only by B";
        return OS.str();
      }
    }
  }
  if (A.LiveOuts.size() != B.LiveOuts.size()) {
    OS << "different live-out counts";
    return OS.str();
  }
  for (const auto &[Id, ValueA] : A.LiveOuts) {
    const auto It = B.LiveOuts.find(Id);
    if (It == B.LiveOuts.end() || !Same(ValueA, It->second)) {
      OS << "live-out value " << Id << " differs";
      return OS.str();
    }
  }
  return std::string();
}

double lsms::evaluateOpcode(Opcode Opc, const std::vector<double> &Operands) {
  auto AsLong = [](double D) { return static_cast<long>(D); };
  auto A = [&Operands](size_t I) {
    assert(I < Operands.size() && "missing operand");
    return Operands[I];
  };
  switch (Opc) {
  case Opcode::AddrAdd:
  case Opcode::IntAdd:
  case Opcode::FloatAdd:
    return A(0) + A(1);
  case Opcode::AddrSub:
  case Opcode::IntSub:
  case Opcode::FloatSub:
    return A(0) - A(1);
  case Opcode::AddrMul:
  case Opcode::IntMul:
  case Opcode::FloatMul:
    return A(0) * A(1);
  case Opcode::IntAnd:
    return static_cast<double>(AsLong(A(0)) & AsLong(A(1)));
  case Opcode::IntOr:
    return static_cast<double>(AsLong(A(0)) | AsLong(A(1)));
  case Opcode::IntXor:
    return static_cast<double>(AsLong(A(0)) ^ AsLong(A(1)));
  case Opcode::FloatDiv:
    return A(0) / A(1);
  case Opcode::IntDiv: {
    const long B = AsLong(A(1));
    return B == 0 ? 0.0 : static_cast<double>(AsLong(A(0)) / B);
  }
  case Opcode::IntMod: {
    const long B = AsLong(A(1));
    return B == 0 ? 0.0 : static_cast<double>(AsLong(A(0)) % B);
  }
  case Opcode::FloatSqrt:
    return std::sqrt(A(0));
  case Opcode::CmpEQ:
    return A(0) == A(1) ? 1.0 : 0.0;
  case Opcode::CmpNE:
    return A(0) != A(1) ? 1.0 : 0.0;
  case Opcode::CmpLT:
    return A(0) < A(1) ? 1.0 : 0.0;
  case Opcode::CmpLE:
    return A(0) <= A(1) ? 1.0 : 0.0;
  case Opcode::CmpGT:
    return A(0) > A(1) ? 1.0 : 0.0;
  case Opcode::CmpGE:
    return A(0) >= A(1) ? 1.0 : 0.0;
  case Opcode::PredAnd:
    return A(0) != 0.0 && A(1) != 0.0 ? 1.0 : 0.0;
  case Opcode::PredOr:
    return A(0) != 0.0 || A(1) != 0.0 ? 1.0 : 0.0;
  case Opcode::PredNot:
    return A(0) == 0.0 ? 1.0 : 0.0;
  case Opcode::Copy:
    return A(0);
  case Opcode::Select:
    return A(0) != 0.0 ? A(1) : A(2);
  case Opcode::Start:
  case Opcode::Stop:
  case Opcode::BrTop:
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::NumOpcodes:
    break;
  }
  LSMS_UNREACHABLE("evaluateOpcode on a non-arithmetic opcode");
}
