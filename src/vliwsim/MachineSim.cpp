#include "vliwsim/MachineSim.h"

#include "support/Compiler.h"

#include <cassert>
#include <map>
#include <vector>

using namespace lsms;

namespace {

/// Physical register addressed by \p Spec in kernel iteration \p K of a
/// rotating file of \p Size registers (the ICP decrements once per
/// iteration).
int physReg(int Spec, long K, int Size) {
  assert(Size > 0 && "empty rotating file");
  const long P = (Spec - K) % Size;
  return static_cast<int>(P < 0 ? P + Size : P);
}

} // namespace

namespace {

/// Shared implementation: kernel-only predicated execution (stage
/// predicates read from the rotating ICR file) or the prologue/epilogue
/// schema (stage eligibility decided by the explicit code copy being
/// executed, modeled by filtering on the kernel iteration index).
ExecutionResult runKernelImpl(const LoopBody &Body, const KernelCode &Code,
                              long Iterations, const MemoryInit &Init,
                              bool ExplicitStageFilter) {
  ExecutionResult Result;
  Result.Arrays.assign(static_cast<size_t>(Body.NumArrays), {});
  if (Code.II <= 0) {
    Result.Error = "invalid kernel";
    return Result;
  }

  std::vector<double> RR(static_cast<size_t>(Code.RRSize), 0.0);
  std::vector<double> ICRF(static_cast<size_t>(std::max(Code.ICRSize, 1)),
                           0.0);
  std::vector<double> GPR = Code.GprInit;

  auto MemoryAt = [&Result, &Init](int Array, long Index) {
    const auto &Cells = Result.Arrays[static_cast<size_t>(Array)];
    const auto It = Cells.find(Index);
    return It != Cells.end() ? It->second : Init(Array, Index);
  };

  // Rotating seeds: instance j = -d of a value with color C lives in
  // physical register (C + d) mod size. The register may be legitimately
  // occupied by another lifetime until the seed's *virtual definition
  // time* (def cycle minus d*II) — the allocation only guarantees the
  // register from then on — so each seed is injected at exactly that time
  // (clamped to the loop's start, which the model shows is safe: the
  // seed's modeled lifetime covers [0, ...) whenever its virtual def time
  // is negative).
  struct SeedInject {
    long Time;
    int Phys;
    double Datum;
  };
  std::vector<SeedInject> Seeds;
  {
    std::vector<int> DefTime(static_cast<size_t>(Body.numValues()), 0);
    for (const KernelOp &Op : Code.Ops)
      if (Op.OrigOp >= 0 && Body.op(Op.OrigOp).Result >= 0)
        DefTime[static_cast<size_t>(Body.op(Op.OrigOp).Result)] =
            Op.Stage * Code.II + Op.Cycle;
    for (const Value &V : Body.Values) {
      if (V.Class != RegClass::RR ||
          Code.RRColor[static_cast<size_t>(V.Id)] < 0)
        continue;
      int MaxOmega = 0;
      for (const LoopBody::UseSite &Site : Body.usesOf(V.Id))
        MaxOmega = std::max(MaxOmega, Site.Omega);
      for (int D = 1; D <= MaxOmega && D < Code.RRSize; ++D) {
        double Seed = 0.0;
        if (V.SeedArrayId >= 0)
          Seed = Init(V.SeedArrayId,
                      (Body.First - D) * V.SeedElemStride +
                          V.SeedElemOffset);
        else if (static_cast<size_t>(D - 1) < V.Seeds.size())
          Seed = V.Seeds[static_cast<size_t>(D - 1)];
        const long T = std::max<long>(
            0, DefTime[static_cast<size_t>(V.Id)] -
                   static_cast<long>(D) * Code.II);
        const int Phys =
            physReg(Code.RRColor[static_cast<size_t>(V.Id)] + D, 0,
                    Code.RRSize);
        Seeds.push_back({T, Phys, Seed});
      }
    }
    std::stable_sort(Seeds.begin(), Seeds.end(),
                     [](const SeedInject &A, const SeedInject &B) {
                       return A.Time < B.Time;
                     });
  }
  size_t NextSeed = 0;
  // Seeds whose virtual definition precedes the loop are preloaded.
  while (NextSeed < Seeds.size() && Seeds[NextSeed].Time <= 0) {
    RR[static_cast<size_t>(Seeds[NextSeed].Phys)] = Seeds[NextSeed].Datum;
    ++NextSeed;
  }

  struct Commit {
    long Time;
    int Array;
    long Index;
    double Datum;
  };
  std::vector<Commit> Commits;
  size_t NextCommit = 0;

  struct WriteBack {
    RegRef Dst;
    double Datum;
  };

  const long KernelIterations = Iterations + Code.StageCount - 1;
  for (long K = 0; K < KernelIterations; ++K) {
    // brtop's effect at the top of each kernel iteration: rotate (implicit
    // in physReg) and publish the stage predicate for source iteration K.
    // The prologue/epilogue schema has no stage predicates to publish.
    if (!ExplicitStageFilter && Code.ICRSize > 0)
      ICRF[static_cast<size_t>(
          physReg(Code.StagePredColor, K, Code.ICRSize))] =
          K < Iterations ? 1.0 : 0.0;

    for (int Cycle = 0; Cycle < Code.II; ++Cycle) {
      const long Now = K * Code.II + Cycle;
      while (NextCommit < Commits.size() && Commits[NextCommit].Time <= Now) {
        const Commit &C = Commits[NextCommit++];
        Result.Arrays[static_cast<size_t>(C.Array)][C.Index] = C.Datum;
      }

      auto ReadRef = [&](const RegRef &Ref) -> double {
        switch (Ref.WhichFile) {
        case RegRef::File::RR:
          return RR[static_cast<size_t>(physReg(Ref.Spec, K, Code.RRSize))];
        case RegRef::File::GPR:
          return GPR[static_cast<size_t>(Ref.Spec)];
        case RegRef::File::ICR:
          return ICRF[static_cast<size_t>(
              physReg(Ref.Spec, K, Code.ICRSize))];
        case RegRef::File::None:
          break;
        }
        LSMS_UNREACHABLE("read of an unassigned register reference");
      };

      // Register semantics: all reads of a cycle observe the register
      // state before any of the cycle's writes (a lifetime may end exactly
      // where the next one begins).
      std::vector<WriteBack> Writes;
      for (const KernelOp &Op : Code.Ops) {
        if (Op.Cycle != Cycle)
          continue;
        // Stage eligibility: squash iterations outside [0, N) — through the
        // rotating stage predicate (kernel-only code) or because the
        // prologue/epilogue copy simply does not contain the operation.
        if (ExplicitStageFilter) {
          const long J = K - Op.Stage;
          if (J < 0 || J >= Iterations)
            continue;
        } else if (Code.ICRSize > 0 &&
                   ICRF[static_cast<size_t>(physReg(
                       Op.StagePredSpec, K, Code.ICRSize))] == 0.0) {
          continue;
        }
        if (Op.UserPred.WhichFile != RegRef::File::None &&
            ReadRef(Op.UserPred) == 0.0)
          continue;

        const long SourceIter = Body.First + (K - Op.Stage);
        double ResultValue = 0.0;
        bool HasResult = Op.Dst.WhichFile != RegRef::File::None;
        switch (Op.Opc) {
        case Opcode::BrTop:
          continue; // modeled at the top of the iteration
        case Opcode::Load:
          ResultValue = MemoryAt(Op.ArrayId, SourceIter * Op.ElemStride +
                                                 Op.ElemOffset);
          break;
        case Opcode::Store:
          Commits.push_back({Now + 1, Op.ArrayId,
                             SourceIter * Op.ElemStride + Op.ElemOffset,
                             ReadRef(Op.Srcs[1])});
          continue;
        default: {
          std::vector<double> Operands;
          Operands.reserve(Op.Srcs.size());
          for (const RegRef &Src : Op.Srcs)
            Operands.push_back(ReadRef(Src));
          ResultValue = evaluateOpcode(Op.Opc, Operands);
          break;
        }
        }
        if (HasResult) {
          Writes.push_back({Op.Dst, ResultValue});
          // Live-outs are captured as their final instance is produced:
          // post-loop code must copy them out before the drain reuses the
          // rotating register (their allocated lifetime ends at the last
          // in-loop use).
          if (K - Op.Stage == Iterations - 1 && Op.OrigOp >= 0) {
            const int ValueId = Body.op(Op.OrigOp).Result;
            if (ValueId >= 0 && Body.value(ValueId).LiveOut)
              Result.LiveOuts[ValueId] = ResultValue;
          }
        }
      }

      for (const WriteBack &W : Writes) {
        if (W.Dst.WhichFile == RegRef::File::RR)
          RR[static_cast<size_t>(physReg(W.Dst.Spec, K, Code.RRSize))] =
              W.Datum;
        else if (W.Dst.WhichFile == RegRef::File::ICR)
          ICRF[static_cast<size_t>(physReg(W.Dst.Spec, K, Code.ICRSize))] =
              W.Datum;
      }

      // Seed injections act like definitions of pre-loop instances: they
      // land in the write phase of their virtual definition cycle.
      while (NextSeed < Seeds.size() && Seeds[NextSeed].Time <= Now) {
        RR[static_cast<size_t>(Seeds[NextSeed].Phys)] =
            Seeds[NextSeed].Datum;
        ++NextSeed;
      }
    }
  }
  while (NextCommit < Commits.size()) {
    const Commit &C = Commits[NextCommit++];
    Result.Arrays[static_cast<size_t>(C.Array)][C.Index] = C.Datum;
  }

  // The kernel simulators execute counted windows only (code generation
  // rejects while-loops), so the executed trip equals the request.
  Result.ActualTrip = Iterations;
  return Result;
}

} // namespace

ExecutionResult lsms::runKernelCode(const LoopBody &Body,
                                    const KernelCode &Code, long Iterations,
                                    const MemoryInit &Init) {
  return runKernelImpl(Body, Code, Iterations, Init,
                       /*ExplicitStageFilter=*/false);
}

ExecutionResult lsms::runSchemaCode(const LoopBody &Body,
                                    const KernelCode &Code, long Iterations,
                                    const MemoryInit &Init) {
  return runKernelImpl(Body, Code, Iterations, Init,
                       /*ExplicitStageFilter=*/true);
}
