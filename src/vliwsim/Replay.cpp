#include "vliwsim/Replay.h"

#include <map>

using namespace lsms;

ReplayResult lsms::replaySchedule(const LoopBody &Body, const Schedule &Sched,
                                  long Iterations,
                                  const std::vector<Assumption> &Assumptions,
                                  const MemoryInit &Init) {
  ReplayResult R;
  std::vector<MemTraceEntry> TraceEntries;
  R.Reference = runReferenceTraced(Body, Iterations, Init, TraceEntries);
  // Only arcs differ between lowerings, and the pipelined executor reads
  // timing from the schedule, not from arcs — so the conservative body
  // replays the speculative schedule faithfully.
  R.Pipelined = runPipelined(Body, Sched, Iterations, Init);

  // Per-op histogram of executed element indices (reference order —
  // predicated-off accesses never executed, never recorded).
  std::map<int, std::map<long, long>> IndexCounts;
  for (const MemTraceEntry &E : TraceEntries)
    ++IndexCounts[E.Op][E.Index];

  R.Outcomes.reserve(Assumptions.size());
  for (const Assumption &A : Assumptions) {
    AssumptionOutcome O;
    O.Text = A.Text;
    switch (A.Kind) {
    case AssumptionKind::NoAlias: {
      // Disjoint address sets over the whole executed window: for every
      // pair of executed instances, the two accesses touch different
      // elements. Held implies any interleaving of the two ops is safe, so
      // dropping their ordering arcs was sound on this trace.
      const auto SrcIt = IndexCounts.find(A.SrcOp);
      const auto DstIt = IndexCounts.find(A.DstOp);
      long Collisions = 0;
      if (SrcIt != IndexCounts.end() && DstIt != IndexCounts.end())
        for (const auto &[Index, Count] : SrcIt->second) {
          const auto Hit = DstIt->second.find(Index);
          if (Hit != DstIt->second.end())
            Collisions += Count * Hit->second;
        }
      O.Violations = Collisions;
      O.Held = Collisions == 0;
      break;
    }
    case AssumptionKind::NoEarlyExit:
      O.Violations = Iterations - R.Reference.ActualTrip;
      O.Held = R.Reference.Error.empty() && O.Violations == 0;
      break;
    }
    R.AllHeld = R.AllHeld && O.Held;
    R.Outcomes.push_back(std::move(O));
  }

  if (R.Reference.ActualTrip != R.Pipelined.ActualTrip) {
    R.Mismatch = "executed trip counts differ: " +
                 std::to_string(R.Reference.ActualTrip) + " vs " +
                 std::to_string(R.Pipelined.ActualTrip);
    return R;
  }
  R.Mismatch = compareExecutions(R.Reference, R.Pipelined);
  return R;
}
