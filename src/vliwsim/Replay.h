//===----------------------------------------------------------------------===//
///
/// \file
/// Speculative-schedule replay: executes a mapped schedule against a
/// concrete memory trace and reports whether each speculation assumption
/// held, making misspeculation observable rather than hypothetical.
///
/// The ground truth is the sequential reference execution of the
/// *conservative* body (identical ops — only arcs differ between
/// lowerings, and arcs do not change dataflow semantics). NoAlias
/// assumptions are checked by address-set disjointness over the executed
/// window; NoEarlyExit by whether the exit fired inside the window. When
/// every assumption holds, the speculative pipelined execution must match
/// the reference bit for bit; when one is violated, the mismatch (or the
/// misspeculated stores the simulator counts) is the observable evidence.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_VLIWSIM_REPLAY_H
#define LSMS_VLIWSIM_REPLAY_H

#include "spec/Speculation.h"
#include "vliwsim/Execution.h"

#include <string>
#include <vector>

namespace lsms {

/// Verdict for one assumption after replaying a concrete trace.
struct AssumptionOutcome {
  bool Held = false;
  /// NoAlias: number of (i, j) iteration pairs where the two accesses hit
  /// the same element. NoEarlyExit: iterations cut off by the exit.
  long Violations = 0;
  std::string Text; ///< copied from the assumption, for reports
};

struct ReplayResult {
  /// Reference (sequential) execution of \p Body.
  ExecutionResult Reference;
  /// Pipelined execution of the (speculative) schedule.
  ExecutionResult Pipelined;
  std::vector<AssumptionOutcome> Outcomes; ///< parallel to Assumptions
  bool AllHeld = true;
  /// Empty when the pipelined execution matches the reference; otherwise
  /// the first observed difference. A mismatch with AllHeld would be a
  /// scheduler bug; with a violated assumption it is expected
  /// misspeculation.
  std::string Mismatch;
};

/// Replays \p Sched (a schedule of the speculative lowering of \p Body)
/// for \p Iterations against the trace induced by \p Init. \p Body must be
/// the *conservative* body — the assumption checks read its access trace.
ReplayResult replaySchedule(const LoopBody &Body, const Schedule &Sched,
                            long Iterations,
                            const std::vector<Assumption> &Assumptions,
                            const MemoryInit &Init = defaultMemoryInit);

} // namespace lsms

#endif // LSMS_VLIWSIM_REPLAY_H
