//===----------------------------------------------------------------------===//
///
/// \file
/// Functional execution of loop bodies, used to validate schedules
/// end-to-end:
///
///  - runReference executes the loop sequentially, iteration by iteration,
///    in (omega-0) dependence order — the semantics the source program
///    defines;
///  - runPipelined executes a modulo schedule the way the VLIW would:
///    iteration j's operation issues at time(op) + (j - First) * II,
///    operations overlap across iterations, loads sample memory at issue,
///    and stores commit one cycle later.
///
/// A correct schedule must make both executions produce bit-identical
/// memory and live-out values: the dataflow is identical, only the timing
/// differs.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_VLIWSIM_EXECUTION_H
#define LSMS_VLIWSIM_EXECUTION_H

#include "core/Schedule.h"
#include "ir/LoopBody.h"
#include "machine/MachineModel.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace lsms {

/// Supplies the initial contents of memory: InitialArray[Array][Index].
using MemoryInit = std::function<double(int Array, long Index)>;

/// Deterministic pseudo-random initial memory in [1, 3) — away from zero so
/// speculated divides stay finite.
double defaultMemoryInit(int Array, long Index);

/// The observable outcome of executing a loop.
struct ExecutionResult {
  /// Per array: the cells the loop wrote (untouched cells keep their
  /// initial contents and are not listed).
  std::vector<std::map<long, double>> Arrays;
  /// Final instances of live-out values (value id -> value).
  std::map<int, double> LiveOuts;
  /// Non-empty when execution failed (e.g. an operation read a value
  /// instance that was never computed).
  std::string Error;
  /// Iterations actually executed: equals the requested window for counted
  /// loops; for while-loops the first iteration whose exit value is false
  /// is the last executed (do-while semantics).
  long ActualTrip = 0;
  /// Pipelined execution only: stores from iterations past the exit that
  /// issued before the exit test resolved and therefore committed anyway.
  /// Always 0 when the schedule honors the conservative control fences.
  long MisspeculatedStores = 0;
};

/// One executed memory access (reference order): used by the speculation
/// replay to check NoAlias assumptions against a concrete trace.
struct MemTraceEntry {
  int Op = -1;
  long Iter = 0;
  long Index = 0; ///< element index within the op's array
  bool IsStore = false;
};

/// Executes \p Body sequentially for \p Iterations iterations starting at
/// Body.First. While-loops stop at the first false exit value.
ExecutionResult runReference(const LoopBody &Body, long Iterations,
                             const MemoryInit &Init = defaultMemoryInit);

/// runReference that additionally records every executed memory access
/// (predicated-off accesses are not executed and not recorded).
ExecutionResult runReferenceTraced(const LoopBody &Body, long Iterations,
                                   const MemoryInit &Init,
                                   std::vector<MemTraceEntry> &TraceOut);

/// Executes \p Sched's overlapped pipeline for \p Iterations iterations.
/// \p Sched must be a successful schedule of \p Body. For while-loops the
/// exit test resolves one cycle after its compare issues; stores of later
/// iterations that issue at or after that cycle are squashed, earlier ones
/// commit and are counted as misspeculated.
ExecutionResult runPipelined(const LoopBody &Body, const Schedule &Sched,
                             long Iterations,
                             const MemoryInit &Init = defaultMemoryInit);

/// Compares two executions; returns an empty string when identical
/// (NaN compares equal to NaN) or a description of the first difference.
std::string compareExecutions(const ExecutionResult &A,
                              const ExecutionResult &B);

/// Evaluates a pure (non-memory, non-pseudo) opcode on operand values:
/// the single source of operation semantics shared by the interpreters
/// and the machine-code simulator.
double evaluateOpcode(Opcode Opc, const std::vector<double> &Operands);

} // namespace lsms

#endif // LSMS_VLIWSIM_EXECUTION_H
