//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-level simulation of kernel-only code: executes the emitted VLIW
/// instruction words against concrete rotating register files with an
/// iteration control pointer that decrements once per kernel iteration,
/// stage predicates squashing out-of-range iterations, and predicated
/// stores. The most end-to-end check in the repository: schedule,
/// rotating allocation, specifier arithmetic, and staging must all be
/// right for the memory image to match the sequential reference.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_VLIWSIM_MACHINESIM_H
#define LSMS_VLIWSIM_MACHINESIM_H

#include "codegen/KernelCode.h"
#include "vliwsim/Execution.h"

namespace lsms {

/// Executes \p Code for \p Iterations source iterations (the kernel runs
/// Iterations + StageCount - 1 times). Live-outs are captured as their
/// final instance is produced — modeling the post-loop code that must copy
/// them out before the pipeline drain reuses the rotating register — and
/// are reported only for values that received a register (a dead live-out
/// has none).
ExecutionResult runKernelCode(const LoopBody &Body, const KernelCode &Code,
                              long Iterations,
                              const MemoryInit &Init = defaultMemoryInit);

/// Executes the prologue/kernel/epilogue schema form of \p Code (Rau et
/// al. [19]): no stage predicates — the fill and drain phases exist as
/// explicit partial code copies, modeled by filtering each kernel
/// iteration's operations on their stage. Must compute exactly what
/// runKernelCode computes.
ExecutionResult runSchemaCode(const LoopBody &Body, const KernelCode &Code,
                              long Iterations,
                              const MemoryInit &Init = defaultMemoryInit);

} // namespace lsms

#endif // LSMS_VLIWSIM_MACHINESIM_H
