//===----------------------------------------------------------------------===//
///
/// \file
/// Absolute lower bounds on the initiation interval (Section 3.1):
/// ResMII from resource contention, RecMII from recurrence circuits, and
/// MII = max(ResMII, RecMII). Also the "critical resource" classification
/// used by the dynamic priority scheme (Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_BOUNDS_BOUNDS_H
#define LSMS_BOUNDS_BOUNDS_H

#include "ir/DepGraph.h"
#include "machine/MachineModel.h"

#include <array>
#include <vector>

namespace lsms {

/// Cycles of each functional-unit kind consumed by one loop iteration
/// (reservation cycles summed over operations).
std::array<int, NumFuKinds> resourceUsage(const LoopBody &Body,
                                          const MachineModel &Machine);

/// Resource-contention bound: max over resources of
/// ceil(usage / unit count). At least 1.
int computeResMII(const LoopBody &Body, const MachineModel &Machine);

/// Recurrence bound via the min cost-to-time ratio cycle. At least 1 for a
/// loop body (the brtop self-spacing is implicit in II itself).
int computeRecMII(const DepGraph &Graph);

struct MIIBounds {
  int ResMII = 1;
  int RecMII = 1;
  int MII = 1;
};

/// Computes both bounds and their max.
MIIBounds computeMII(const DepGraph &Graph);

/// Marks each operation whose functional unit is critical at \p II: one
/// iteration uses the unit kind for at least 0.90 * II * count cycles
/// (Section 4.3: "a resource is critical if one iteration uses the
/// resource for at least 0.90 II cycles", applied per unit instance
/// capacity).
std::vector<bool> markCriticalOps(const LoopBody &Body,
                                  const MachineModel &Machine, int II);

} // namespace lsms

#endif // LSMS_BOUNDS_BOUNDS_H
