#include "bounds/Lifetimes.h"

#include <algorithm>
#include <cassert>
#include <climits>

using namespace lsms;

PressureInfo lsms::computePressure(const LoopBody &Body,
                                   const std::vector<int> &Times, int II,
                                   RegClass Class) {
  assert(II > 0 && "bad initiation interval");
  assert(Times.size() == static_cast<size_t>(Body.numOps()) &&
         "times must cover every operation");

  PressureInfo Info;
  Info.Length.assign(static_cast<size_t>(Body.numValues()), 0);
  Info.LiveVector.assign(static_cast<size_t>(II), 0);

  // Gather latest-use end per value in one pass over use sites.
  std::vector<long> End(static_cast<size_t>(Body.numValues()), LONG_MIN);
  auto Record = [&](int ValueId, int UserOp, int Omega) {
    const Value &V = Body.value(ValueId);
    if (V.Class != Class)
      return;
    const long UseEnd = static_cast<long>(Times[static_cast<size_t>(UserOp)]) +
                        static_cast<long>(Omega) * II;
    End[static_cast<size_t>(ValueId)] =
        std::max(End[static_cast<size_t>(ValueId)], UseEnd);
  };
  for (const Operation &Op : Body.Ops) {
    for (const Use &U : Op.Operands)
      Record(U.Value, Op.Id, U.Omega);
    if (Op.PredValue >= 0)
      Record(Op.PredValue, Op.Id, Op.PredOmega);
  }

  long TotalLength = 0;
  for (const Value &V : Body.Values) {
    if (V.Class != Class || End[static_cast<size_t>(V.Id)] == LONG_MIN)
      continue;
    const long DefTime = Times[static_cast<size_t>(V.Def)];
    const long Length = End[static_cast<size_t>(V.Id)] - DefTime;
    assert(Length >= 0 && "use precedes definition in schedule");
    Info.Length[static_cast<size_t>(V.Id)] = Length;
    TotalLength += Length;
    // Wrap the lifetime around the II columns (Figure 4).
    const long Whole = Length / II;
    const long Rem = Length % II;
    for (int C = 0; C < II; ++C)
      Info.LiveVector[static_cast<size_t>(C)] += Whole;
    for (long K = 0; K < Rem; ++K) {
      const long Col = (DefTime + K) % II;
      ++Info.LiveVector[static_cast<size_t>((Col + II) % II)];
    }
  }

  Info.MaxLive = 0;
  for (long L : Info.LiveVector)
    Info.MaxLive = std::max(Info.MaxLive, L);
  Info.AvgLive = static_cast<double>(TotalLength) / II;
  return Info;
}

long lsms::computeMaxLive(const LoopBody &Body,
                          const std::vector<int> &Times, int II,
                          RegClass Class, PressureScratch &Scratch) {
  assert(II > 0 && "bad initiation interval");
  assert(Times.size() == static_cast<size_t>(Body.numOps()) &&
         "times must cover every operation");

  std::vector<long> &End = Scratch.End;
  std::vector<long> &Live = Scratch.Live;
  End.assign(static_cast<size_t>(Body.numValues()), LONG_MIN);
  Live.assign(static_cast<size_t>(II), 0);

  auto Record = [&](int ValueId, int UserOp, int Omega) {
    if (Body.value(ValueId).Class != Class)
      return;
    const long UseEnd = static_cast<long>(Times[static_cast<size_t>(UserOp)]) +
                        static_cast<long>(Omega) * II;
    End[static_cast<size_t>(ValueId)] =
        std::max(End[static_cast<size_t>(ValueId)], UseEnd);
  };
  for (const Operation &Op : Body.Ops) {
    for (const Use &U : Op.Operands)
      Record(U.Value, Op.Id, U.Omega);
    if (Op.PredValue >= 0)
      Record(Op.PredValue, Op.Id, Op.PredOmega);
  }

  long WholeSum = 0; // full-II wraps contribute to every column equally
  for (const Value &V : Body.Values) {
    if (V.Class != Class || End[static_cast<size_t>(V.Id)] == LONG_MIN)
      continue;
    const long DefTime = Times[static_cast<size_t>(V.Def)];
    const long Length = End[static_cast<size_t>(V.Id)] - DefTime;
    assert(Length >= 0 && "use precedes definition in schedule");
    WholeSum += Length / II;
    const long Rem = Length % II;
    for (long K = 0; K < Rem; ++K) {
      const long Col = (DefTime + K) % II;
      ++Live[static_cast<size_t>((Col + II) % II)];
    }
  }

  long MaxLive = 0;
  for (long L : Live)
    MaxLive = std::max(MaxLive, L);
  return MaxLive + WholeSum;
}

long lsms::computeMinLT(const DepGraph &Graph, const MinDistMatrix &MinDist,
                        int ValueId) {
  const long II = MinDist.initiationInterval();
  long MinLT = 0;
  bool HasUse = false;
  for (const DepArc &Arc : Graph.arcs()) {
    if (Arc.Kind != DepKind::Flow || Arc.Value != ValueId)
      continue;
    HasUse = true;
    assert(MinDist.connected(Arc.Src, Arc.Dst) && "flow arc implies a path");
    MinLT = std::max(MinLT, static_cast<long>(Arc.Omega) * II +
                                MinDist.at(Arc.Src, Arc.Dst));
  }
  return HasUse ? MinLT : 0;
}

long lsms::computeMinAvg(const DepGraph &Graph,
                         const MinDistMatrix &MinDist) {
  const long II = MinDist.initiationInterval();
  long MinLTSum = 0;
  for (const Value &V : Graph.body().Values) {
    if (V.Class != RegClass::RR)
      continue;
    MinLTSum += computeMinLT(Graph, MinDist, V.Id);
  }
  return (MinLTSum + II - 1) / II;
}

long lsms::computeMinAvgPerValueCeil(const DepGraph &Graph,
                                     const MinDistMatrix &MinDist) {
  const long II = MinDist.initiationInterval();
  long MinAvg = 0;
  for (const Value &V : Graph.body().Values) {
    if (V.Class != RegClass::RR)
      continue;
    const long MinLT = computeMinLT(Graph, MinDist, V.Id);
    MinAvg += (MinLT + II - 1) / II;
  }
  return MinAvg;
}

IssueWindows lsms::computeIssueWindows(const LoopBody &Body,
                                       const MinDistMatrix &MinDist) {
  assert(MinDist.initiationInterval() > 0 &&
         MinDist.numOps() == Body.numOps() &&
         "MinDist must hold the relation at the candidate II");
  IssueWindows W;
  const int Start = Body.startOp(), Stop = Body.stopOp();
  W.Cap = std::max(0L, MinDist.at(Start, Stop));
  MinDist.estarts(Start, W.Estart);
  MinDist.lstarts(Stop, W.Cap, W.Lstart);
  // Start is pinned at cycle 0, so a bound back into it caps the window
  // directly. (The IR never produces such arcs today; kept for soundness.)
  for (int X = 0; X < Body.numOps(); ++X)
    if (X != Start && MinDist.connected(X, Start))
      W.Lstart[static_cast<size_t>(X)] =
          std::min(W.Lstart[static_cast<size_t>(X)], -MinDist.at(X, Start));
  // Lstart >= Estart by the triangle inequality whenever a nonnegative-
  // time schedule exists at this II; an empty window simply yields an
  // empty family.
  return W;
}

int lsms::countGprs(const LoopBody &Body) {
  int Count = 0;
  for (const Value &V : Body.Values)
    if (V.Class == RegClass::GPR)
      ++Count;
  return Count;
}
