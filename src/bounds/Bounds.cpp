#include "bounds/Bounds.h"

#include "graph/MinRatioCycle.h"

#include <algorithm>

using namespace lsms;

std::array<int, NumFuKinds> lsms::resourceUsage(const LoopBody &Body,
                                                const MachineModel &Machine) {
  std::array<int, NumFuKinds> Usage{};
  for (const Operation &Op : Body.Ops) {
    const FuKind Kind = Machine.unitFor(Op.Opc);
    if (Kind == FuKind::None)
      continue;
    Usage[static_cast<unsigned>(Kind)] += Machine.reservationCycles(Op.Opc);
  }
  return Usage;
}

int lsms::computeResMII(const LoopBody &Body, const MachineModel &Machine) {
  const auto Usage = resourceUsage(Body, Machine);
  int ResMII = 1;
  for (unsigned K = 0; K < NumFuKinds; ++K) {
    const int Count = Machine.unitCount(static_cast<FuKind>(K));
    if (Count <= 0 || Usage[K] == 0)
      continue;
    ResMII = std::max(ResMII, (Usage[K] + Count - 1) / Count);
  }
  return ResMII;
}

int lsms::computeRecMII(const DepGraph &Graph) {
  return std::max(1, computeRecMIIByRatio(Graph));
}

MIIBounds lsms::computeMII(const DepGraph &Graph) {
  MIIBounds B;
  B.ResMII = computeResMII(Graph.body(), Graph.machine());
  B.RecMII = computeRecMII(Graph);
  B.MII = std::max(B.ResMII, B.RecMII);
  return B;
}

std::vector<bool> lsms::markCriticalOps(const LoopBody &Body,
                                        const MachineModel &Machine, int II) {
  const auto Usage = resourceUsage(Body, Machine);
  std::array<bool, NumFuKinds> CriticalKind{};
  for (unsigned K = 0; K < NumFuKinds; ++K) {
    const int Count = Machine.unitCount(static_cast<FuKind>(K));
    if (Count <= 0)
      continue;
    CriticalKind[K] =
        static_cast<double>(Usage[K]) >= 0.90 * II * Count;
  }
  std::vector<bool> Critical(static_cast<size_t>(Body.numOps()), false);
  for (const Operation &Op : Body.Ops) {
    const FuKind Kind = Machine.unitFor(Op.Opc);
    if (Kind == FuKind::None)
      continue;
    Critical[static_cast<size_t>(Op.Id)] =
        CriticalKind[static_cast<unsigned>(Kind)];
  }
  return Critical;
}
