//===----------------------------------------------------------------------===//
///
/// \file
/// Register-pressure accounting (Sections 3.2 and 5.1): per-value lifetimes
/// of a schedule, the LiveVector and its maximum MaxLive, the
/// schedule-independent per-value lower bound MinLT, and the aggregate
/// lower bound MinAvg = sum(ceil(MinLT(v)/II)).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_BOUNDS_LIFETIMES_H
#define LSMS_BOUNDS_LIFETIMES_H

#include "graph/MinDist.h"
#include "ir/DepGraph.h"

#include <vector>

namespace lsms {

/// Lifetime accounting for one register class under a complete schedule.
struct PressureInfo {
  /// Lifetime length per value (0 for values of other classes or without
  /// uses). A value defined at t is live in [t, t + Length).
  std::vector<long> Length;
  /// Number of live values per cycle modulo II.
  std::vector<long> LiveVector;
  /// max(LiveVector) — the schedule's register pressure proxy.
  long MaxLive = 0;
  /// Total lifetime length divided by II.
  double AvgLive = 0;
};

/// Computes per-value lifetimes of \p Class given issue cycles \p Times
/// (indexed by operation id; every op of the body must be placed) at
/// initiation interval \p II. A value's lifetime runs from its defining
/// operation's issue to its latest use's issue plus omega*II (Figure 3's
/// convention). Values without uses contribute nothing.
PressureInfo computePressure(const LoopBody &Body,
                             const std::vector<int> &Times, int II,
                             RegClass Class);

/// Reusable buffers for computeMaxLive. The branch-and-bound family
/// enumeration evaluates pressure at every leaf; routing those calls
/// through one scratch keeps the inner loop allocation-free.
struct PressureScratch {
  std::vector<long> End;
  std::vector<long> Live;
};

/// MaxLive of computePressure's LiveVector, and nothing else: same
/// lifetime accounting, no per-value lengths or averages, buffers reused
/// from \p Scratch.
long computeMaxLive(const LoopBody &Body, const std::vector<int> &Times,
                    int II, RegClass Class, PressureScratch &Scratch);

/// Schedule-independent lower bound on the lifetime of \p ValueId at the
/// MinDist matrix's II: max over flow dependences (omega*II +
/// MinDist(def, use)) (Section 5.1). Returns 0 for values without uses.
long computeMinLT(const DepGraph &Graph, const MinDistMatrix &MinDist,
                  int ValueId);

/// MinAvg = ceil(sum over RR values of MinLT(v) / II) (Section 3.2).
///
/// This is a genuine schedule-independent lower bound on MaxLive:
/// MaxLive >= AvgLive = sum(LT)/II >= sum(MinLT)/II, and MaxLive is an
/// integer. (The paper's typesetting can also be read as summing
/// per-value ceilings — see computeMinAvgPerValueCeil — but that variant
/// can exceed MaxLive and would contradict Figure 5's non-negative gap,
/// so the sound reading is used throughout.)
long computeMinAvg(const DepGraph &Graph, const MinDistMatrix &MinDist);

/// The alternative per-value-ceiling reading of MinAvg:
/// sum over RR values of ceil(MinLT(v)/II). Not a lower bound on MaxLive
/// in general; provided for comparison.
long computeMinAvgPerValueCeil(const DepGraph &Graph,
                               const MinDistMatrix &MinDist);

/// Number of loop-invariant (GPR) values, the paper's "# GPRs" metric.
int countGprs(const LoopBody &Body);

/// Static per-operation issue windows at the MinDist matrix's II, shared
/// by both exact engines so they reason about the identical *issue-time
/// family*: the set of schedules that keep every operation inside
/// [Estart, Lstart] against the canonical makespan Cap = MinDist(Start,
/// Stop). Holding Stop at Cap is equivalent to holding every operation at
/// or before its Lstart, so the family is exactly the dependence- and
/// resource-feasible placements of canonical schedule length.
struct IssueWindows {
  /// Canonical makespan: MinDist(Start, Stop).
  long Cap = 0;
  /// Earliest issue per op: max(0, MinDist(Start, x)).
  std::vector<long> Estart;
  /// Latest issue per op: Cap - MinDist(x, Stop); ops with no path to
  /// Stop get Cap itself. Never below Estart (triangle inequality).
  std::vector<long> Lstart;
};

/// Computes the shared issue windows from a MinDist relation that already
/// holds at the candidate II.
IssueWindows computeIssueWindows(const LoopBody &Body,
                                 const MinDistMatrix &MinDist);

} // namespace lsms

#endif // LSMS_BOUNDS_LIFETIMES_H
