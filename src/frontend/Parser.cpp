#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <cmath>
#include <sstream>

using namespace lsms;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string &ErrorOut)
      : Tokens(std::move(Tokens)), Error(ErrorOut) {}

  std::unique_ptr<Program> run();

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &advance() { return Tokens[Pos++]; }
  bool check(TokenKind Kind) const { return peek().Kind == Kind; }
  bool accept(TokenKind Kind) {
    if (!check(Kind))
      return false;
    ++Pos;
    return true;
  }

  bool expect(TokenKind Kind, const char *Context) {
    if (accept(Kind))
      return true;
    std::ostringstream OS;
    OS << "line " << peek().Line << ": expected " << tokenKindName(Kind)
       << " " << Context << ", found " << tokenKindName(peek().Kind);
    if (!peek().Text.empty() && peek().Kind != TokenKind::Newline)
      OS << " '" << peek().Text << "'";
    Error = OS.str();
    return false;
  }

  void skipNewlines() {
    while (accept(TokenKind::Newline)) {
    }
  }

  bool fail(const std::string &Msg) {
    if (Error.empty()) {
      std::ostringstream OS;
      OS << "line " << peek().Line << ": " << Msg;
      Error = OS.str();
    }
    return false;
  }

  bool parseParams(Program &Prog);
  bool parseLoopHeader(Program &Prog);
  bool parseStmtList(std::vector<std::unique_ptr<Stmt>> &Out);
  std::unique_ptr<Stmt> parseStmt();
  std::unique_ptr<Stmt> parseIf();
  std::unique_ptr<Stmt> parseAssign();
  bool parseArrayIndex(int &OffsetOut, int &StrideOut,
                       std::string &IndexVarOut);
  std::unique_ptr<Expr> parseExpr();
  std::unique_ptr<Expr> parseTerm();
  std::unique_ptr<Expr> parseFactor();
  bool parseCondition(Condition &Out);

  std::vector<Token> Tokens;
  std::string &Error;
  size_t Pos = 0;
  std::string Counter;
};

std::unique_ptr<Program> Parser::run() {
  auto Prog = std::make_unique<Program>();
  skipNewlines();
  if (!parseParams(*Prog))
    return nullptr;
  if (!parseLoopHeader(*Prog))
    return nullptr;
  Counter = Prog->Counter;
  if (!parseStmtList(Prog->Body))
    return nullptr;
  if (!expect(TokenKind::KwEnd, "to close the loop"))
    return nullptr;
  skipNewlines();
  if (!check(TokenKind::Eof)) {
    fail("trailing input after the loop");
    return nullptr;
  }
  if (Prog->Body.empty()) {
    fail("loop body is empty");
    return nullptr;
  }
  return Prog;
}

bool Parser::parseParams(Program &Prog) {
  while (accept(TokenKind::KwParam)) {
    if (!check(TokenKind::Identifier))
      return fail("expected parameter name after 'param'");
    const std::string Name = advance().Text;
    if (!expect(TokenKind::Assign, "after parameter name"))
      return false;
    double Sign = 1;
    if (accept(TokenKind::Minus))
      Sign = -1;
    if (!check(TokenKind::Number))
      return fail("expected numeric initial value for parameter " + Name);
    Prog.Params.emplace_back(Name, Sign * advance().NumberValue);
    skipNewlines();
  }
  return true;
}

bool Parser::parseLoopHeader(Program &Prog) {
  if (!expect(TokenKind::KwLoop, "to begin the loop"))
    return false;
  if (!check(TokenKind::Identifier))
    return fail("expected induction variable after 'loop'");
  Prog.Counter = advance().Text;
  if (!expect(TokenKind::Assign, "after the induction variable"))
    return false;
  if (!check(TokenKind::Number))
    return fail("expected the loop's first iteration number");
  Prog.First = static_cast<long>(advance().NumberValue);
  if (!expect(TokenKind::Comma, "between loop bounds"))
    return false;
  if (!check(TokenKind::Identifier) || peek().Text != "n")
    return fail("the loop's upper bound must be the symbolic trip count 'n'");
  advance();
  // Subscripts inside the optional while clause need the counter name.
  Counter = Prog.Counter;
  if (accept(TokenKind::KwWhile)) {
    if (!expect(TokenKind::LParen, "after 'while'"))
      return false;
    if (!parseCondition(Prog.Exit))
      return false;
    if (!expect(TokenKind::RParen, "to close the while condition"))
      return false;
    Prog.HasExit = true;
  }
  if (check(TokenKind::KwWhile))
    return fail("a loop may have only one while clause");
  skipNewlines();
  return true;
}

bool Parser::parseStmtList(std::vector<std::unique_ptr<Stmt>> &Out) {
  skipNewlines();
  while (!check(TokenKind::KwEnd) && !check(TokenKind::KwElse) &&
         !check(TokenKind::Eof)) {
    auto S = parseStmt();
    if (!S)
      return false;
    Out.push_back(std::move(S));
    skipNewlines();
  }
  return true;
}

std::unique_ptr<Stmt> Parser::parseStmt() {
  if (check(TokenKind::KwIf))
    return parseIf();
  return parseAssign();
}

std::unique_ptr<Stmt> Parser::parseIf() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Line = peek().Line;
  advance(); // 'if'
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  if (!parseCondition(S->If.Cond))
    return nullptr;
  if (!expect(TokenKind::RParen, "to close the condition"))
    return nullptr;
  if (!expect(TokenKind::KwThen, "after the condition"))
    return nullptr;
  if (!parseStmtList(S->If.Then))
    return nullptr;
  if (accept(TokenKind::KwElse)) {
    if (!parseStmtList(S->If.Else))
      return nullptr;
  }
  if (!expect(TokenKind::KwEnd, "to close the if"))
    return nullptr;
  return S;
}

std::unique_ptr<Stmt> Parser::parseAssign() {
  if (!check(TokenKind::Identifier)) {
    fail("expected a statement");
    return nullptr;
  }
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Assign;
  S->Line = peek().Line;
  S->Assign.Name = advance().Text;
  if (accept(TokenKind::LBracket)) {
    S->Assign.IsArray = true;
    if (!parseArrayIndex(S->Assign.Offset, S->Assign.Stride,
                         S->Assign.IndexVar))
      return nullptr;
  }
  if (!expect(TokenKind::Assign, "in assignment"))
    return nullptr;
  S->Assign.Value = parseExpr();
  if (!S->Assign.Value)
    return nullptr;
  return S;
}

bool Parser::parseArrayIndex(int &OffsetOut, int &StrideOut,
                             std::string &IndexVarOut) {
  // Subscripts are affine in the induction variable — [i], [i +/- d],
  // [c*i], [c*i +/- d] — or data-dependent through a bare scalar: [x].
  StrideOut = 1;
  IndexVarOut.clear();
  bool SawStride = false;
  if (check(TokenKind::Number)) {
    const double C = advance().NumberValue;
    if (C != std::floor(C) || C < 1)
      return fail("subscript strides must be positive integers");
    StrideOut = static_cast<int>(C);
    SawStride = true;
    if (!expect(TokenKind::Star, "between stride and induction variable"))
      return false;
  }
  if (!check(TokenKind::Identifier))
    return fail("array subscripts must be affine in '" + Counter + "'");
  if (peek().Text != Counter) {
    // Data-dependent subscript: a bare scalar identifier, nothing else.
    if (SawStride)
      return fail("data-dependent subscripts may not carry a stride");
    IndexVarOut = advance().Text;
    OffsetOut = 0;
    if (check(TokenKind::Plus) || check(TokenKind::Minus))
      return fail("data-dependent subscripts may not carry an offset");
    if (!expect(TokenKind::RBracket, "to close the subscript"))
      return false;
    return true;
  }
  advance();
  OffsetOut = 0;
  if (accept(TokenKind::Plus) || check(TokenKind::Minus)) {
    const bool Neg = check(TokenKind::Minus);
    if (Neg)
      advance();
    if (!check(TokenKind::Number))
      return fail("expected constant subscript offset");
    const double Off = advance().NumberValue;
    if (Off != std::floor(Off))
      return fail("subscript offsets must be integers");
    OffsetOut = static_cast<int>(Neg ? -Off : Off);
  }
  if (!expect(TokenKind::RBracket, "to close the subscript"))
    return false;
  return true;
}

std::unique_ptr<Expr> Parser::parseExpr() {
  auto Lhs = parseTerm();
  if (!Lhs)
    return nullptr;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    const bool IsAdd = advance().Kind == TokenKind::Plus;
    auto Rhs = parseTerm();
    if (!Rhs)
      return nullptr;
    auto Node = std::make_unique<Expr>();
    Node->Kind = ExprKind::Binary;
    Node->Op = IsAdd ? BinaryOp::Add : BinaryOp::Sub;
    Node->Line = Lhs->Line;
    Node->Lhs = std::move(Lhs);
    Node->Rhs = std::move(Rhs);
    Lhs = std::move(Node);
  }
  return Lhs;
}

std::unique_ptr<Expr> Parser::parseTerm() {
  auto Lhs = parseFactor();
  if (!Lhs)
    return nullptr;
  while (check(TokenKind::Star) || check(TokenKind::Slash)) {
    const bool IsMul = advance().Kind == TokenKind::Star;
    auto Rhs = parseFactor();
    if (!Rhs)
      return nullptr;
    auto Node = std::make_unique<Expr>();
    Node->Kind = ExprKind::Binary;
    Node->Op = IsMul ? BinaryOp::Mul : BinaryOp::Div;
    Node->Line = Lhs->Line;
    Node->Lhs = std::move(Lhs);
    Node->Rhs = std::move(Rhs);
    Lhs = std::move(Node);
  }
  return Lhs;
}

std::unique_ptr<Expr> Parser::parseFactor() {
  const int Line = peek().Line;
  if (accept(TokenKind::LParen)) {
    auto E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close the expression"))
      return nullptr;
    return E;
  }
  if (accept(TokenKind::Minus)) {
    auto Operand = parseFactor();
    if (!Operand)
      return nullptr;
    auto Node = std::make_unique<Expr>();
    Node->Kind = ExprKind::Unary;
    Node->Line = Line;
    Node->Lhs = std::move(Operand);
    return Node;
  }
  if (accept(TokenKind::KwSqrt)) {
    if (!expect(TokenKind::LParen, "after sqrt"))
      return nullptr;
    auto Operand = parseExpr();
    if (!Operand)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close sqrt"))
      return nullptr;
    auto Node = std::make_unique<Expr>();
    Node->Kind = ExprKind::Sqrt;
    Node->Line = Line;
    Node->Lhs = std::move(Operand);
    return Node;
  }
  if (check(TokenKind::Number)) {
    auto Node = std::make_unique<Expr>();
    Node->Kind = ExprKind::Number;
    Node->Line = Line;
    Node->Number = advance().NumberValue;
    return Node;
  }
  if (check(TokenKind::Identifier)) {
    auto Node = std::make_unique<Expr>();
    Node->Line = Line;
    Node->Name = advance().Text;
    if (accept(TokenKind::LBracket)) {
      Node->Kind = ExprKind::ArrayRef;
      if (!parseArrayIndex(Node->Offset, Node->Stride, Node->IndexVar))
        return nullptr;
    } else {
      Node->Kind = ExprKind::Scalar;
    }
    return Node;
  }
  fail("expected an expression");
  return nullptr;
}

bool Parser::parseCondition(Condition &Out) {
  Out.Line = peek().Line;
  Out.Lhs = parseExpr();
  if (!Out.Lhs)
    return false;
  switch (peek().Kind) {
  case TokenKind::Lt:
    Out.Op = CmpOp::Lt;
    break;
  case TokenKind::Le:
    Out.Op = CmpOp::Le;
    break;
  case TokenKind::Gt:
    Out.Op = CmpOp::Gt;
    break;
  case TokenKind::Ge:
    Out.Op = CmpOp::Ge;
    break;
  case TokenKind::EqEq:
    Out.Op = CmpOp::Eq;
    break;
  case TokenKind::Ne:
    Out.Op = CmpOp::Ne;
    break;
  default:
    return fail("expected a comparison operator");
  }
  advance();
  Out.Rhs = parseExpr();
  return Out.Rhs != nullptr;
}

} // namespace

std::unique_ptr<Program> lsms::parseProgram(const std::string &Source,
                                            std::string &ErrorOut) {
  std::vector<Token> Tokens;
  if (!tokenize(Source, Tokens, ErrorOut))
    return nullptr;
  Parser P(std::move(Tokens), ErrorOut);
  return P.run();
}
