#include "frontend/LoopCompiler.h"

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "support/Compiler.h"

#include <algorithm>
#include <climits>
#include <map>
#include <set>
#include <sstream>

using namespace lsms;

namespace {

/// A write site discovered during analysis.
struct WriteSite {
  int Offset = 0;
  int Stride = 1;
  bool Conditional = false;
  bool Indirect = false; ///< data-dependent subscript a[x]
  int TopLevelIndex = 0; ///< index of the containing top-level statement
};

long gcdOf(long A, long B) {
  A = std::abs(A);
  B = std::abs(B);
  while (B) {
    const long T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// GCD dependence test: may subscripts Stride1*i + Off1 and
/// Stride2*j + Off2 ever address the same element (for some integers
/// i, j)?
bool mayAlias(int Stride1, int Off1, int Stride2, int Off2) {
  const long G = gcdOf(Stride1, Stride2);
  return G != 0 && (static_cast<long>(Off1) - Off2) % G == 0;
}

/// Per-array analysis results.
struct ArrayInfo {
  int Id = -1;
  /// Any access with a data-dependent subscript makes the array's memory
  /// state unanalyzable: no load/store elimination, and every pair of
  /// potentially-conflicting accesses gets conservative may-alias arcs.
  bool HasIndirectWrite = false;
  bool HasIndirectRead = false;
  std::vector<WriteSite> Writes;
  /// Value id carrying the unconditional single-writer store per
  /// (stride, offset) subscript, declared up-front so earlier reads can
  /// reference it across iterations (load/store elimination).
  std::map<std::pair<int, int>, int> StoreValue;
};

class Compiler {
public:
  Compiler(const Program &Prog, const std::string &Name, LoopBody &Body)
      : Prog(Prog), Body(Body), Builder(Body) {
    Body.Name = Name;
    Body.First = Prog.First;
  }

  std::string run();

private:
  // ---- analysis ----
  bool analyze();
  void analyzeStmt(const Stmt &S, bool Conditional, int TopLevelIndex);
  void analyzeExpr(const Expr &E);
  bool error(int Line, const std::string &Msg) {
    if (Diag.empty()) {
      std::ostringstream OS;
      OS << "line " << Line << ": " << Msg;
      Diag = OS.str();
    }
    return false;
  }

  // ---- code generation ----
  void genStmtList(const std::vector<std::unique_ptr<Stmt>> &Stmts,
                   int Predicate, bool TopLevel);
  void genAssign(const Stmt &S, int Predicate, bool TopLevel);
  void genIf(const Stmt &S, int Predicate, bool TopLevel);
  /// Generates \p E; when \p Target >= 0 the root operation defines that
  /// pre-declared value (a Copy is emitted when the expression root is a
  /// leaf or an already-materialized value).
  Use genExpr(const Expr &E, int Target = -1);
  Use finishLeaf(Use U, int Target);
  Use genOp(Opcode Opc, std::vector<Use> Operands, const std::string &Name,
            int Target);
  Use genArrayRead(const std::string &Name, int Stride, int Offset);
  Use genIndirectRead(const std::string &Name, const std::string &IndexVar);
  bool tryEliminateLoad(const std::string &Array, int Stride, int Offset,
                        Use &Out);
  Use addressOf(const std::string &Array, int Stride, int Offset);
  Use inductionValue();
  Use scalarValue(const std::string &Name);
  int scalarLastAssignTarget(const std::string &Name, bool TopLevel);
  void genExit();
  void addMemoryDeps();
  void addControlDeps();
  std::string freshName(const std::string &Base) {
    return Base + "." + std::to_string(NameCounter++);
  }

  const Program &Prog;
  LoopBody &Body;
  IRBuilder Builder;
  std::string Diag;

  // Analysis state.
  std::set<std::string> ArrayVars;
  std::set<std::string> AssignedScalars;
  std::map<std::string, int> LastTopLevelAssign; // scalar -> stmt index
  std::map<std::string, ArrayInfo> Arrays;
  std::map<std::string, double> ParamInit;

  // Codegen state.
  std::map<std::string, int> FinalValue;     // assigned scalar -> value id
  std::map<std::string, Use> CurBinding;     // scalar -> current value
  std::map<std::string, int> InvariantValue; // invariant scalar -> value id
  using RefKey = std::tuple<std::string, int, int>; // (array, stride, off)
  std::map<RefKey, Use> AddrStream;
  std::map<RefKey, Use> LoadCache;
  std::map<RefKey, int> LoadCacheVersion;
  std::map<std::string, int> MemVersion; // array -> store counter
  std::map<RefKey, bool> StoreDone;
  int CurrentTopLevel = 0;
  int InductionVal = -1;
  int NameCounter = 0;
  double NextDefaultInit = 1.25;
};

std::string Compiler::run() {
  if (!analyze())
    return Diag;
  genStmtList(Prog.Body, /*Predicate=*/-1, /*TopLevel=*/true);
  if (!Diag.empty())
    return Diag;
  // Degenerate flows (e.g. a conditional self-assignment) can leave a
  // scalar's pre-declared final value undefined; close the loop with a
  // copy of its current binding.
  for (const auto &[Name, V] : FinalValue)
    if (Body.value(V).Def < 0)
      Builder.defineValue(V, Opcode::Copy, {CurBinding.at(Name)});
  // The exit condition reads end-of-iteration bindings (do-while), so it is
  // compiled after the body; its loads still take part in dependence
  // analysis below.
  genExit();
  if (!Diag.empty())
    return Diag;
  addMemoryDeps();
  addControlDeps();
  Builder.finish();
  return Diag;
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

bool Compiler::analyze() {
  for (const auto &[Name, Init] : Prog.Params) {
    if (Name == Prog.Counter)
      return error(1, "the induction variable cannot be a parameter");
    if (ParamInit.count(Name))
      return error(1, "duplicate parameter '" + Name + "'");
    ParamInit[Name] = Init;
  }

  for (size_t I = 0; I < Prog.Body.size(); ++I)
    analyzeStmt(*Prog.Body[I], /*Conditional=*/false, static_cast<int>(I));
  if (Prog.HasExit) {
    analyzeExpr(*Prog.Exit.Lhs);
    analyzeExpr(*Prog.Exit.Rhs);
  }
  if (!Diag.empty())
    return false;

  // Array ids in name order; declare cross-iteration store values for
  // offsets written exactly once and unconditionally (the only case where
  // load/store elimination is sound without predicate analysis).
  for (auto &[Name, Info] : Arrays) {
    Info.Id = Builder.newArray(Name);
    if (Info.HasIndirectWrite)
      continue; // elimination is unsound under data-dependent writes
    std::map<std::pair<int, int>, int> Writers, ConditionalWriters;
    for (const WriteSite &W : Info.Writes) {
      ++Writers[{W.Stride, W.Offset}];
      ConditionalWriters[{W.Stride, W.Offset}] += W.Conditional ? 1 : 0;
    }
    for (const auto &[Ref, Count] : Writers) {
      if (Count != 1 || ConditionalWriters[Ref] != 0)
        continue;
      const auto [Stride, Offset] = Ref;
      const int V = Builder.declareValue(
          RegClass::RR, Name + (Stride != 1 ? "_s" + std::to_string(Stride)
                                            : std::string()) +
                            (Offset < 0 ? "_m" : "_p") +
                            std::to_string(std::abs(Offset)));
      Body.value(V).SeedArrayId = Info.Id;
      Body.value(V).SeedElemOffset = Offset;
      Body.value(V).SeedElemStride = Stride;
      Info.StoreValue[Ref] = V;
    }
  }

  // Pre-declare each assigned scalar's per-iteration final value so reads
  // of the previous iteration can reference it before its definition.
  for (const std::string &S : AssignedScalars) {
    const int V = Builder.declareValue(RegClass::RR, S);
    FinalValue[S] = V;
    const auto It = ParamInit.find(S);
    Builder.setSeeds(V, {It != ParamInit.end() ? It->second : 0.75});
    Builder.markLiveOut(V);
    CurBinding[S] = Use{V, 1};
  }
  return Diag.empty();
}

void Compiler::analyzeStmt(const Stmt &S, bool Conditional,
                           int TopLevelIndex) {
  if (S.Kind == StmtKind::If) {
    Body.HasConditional = true;
    Body.SourceBasicBlocks += S.If.Else.empty() ? 2 : 3;
    analyzeExpr(*S.If.Cond.Lhs);
    analyzeExpr(*S.If.Cond.Rhs);
    for (const auto &Sub : S.If.Then)
      analyzeStmt(*Sub, /*Conditional=*/true, TopLevelIndex);
    for (const auto &Sub : S.If.Else)
      analyzeStmt(*Sub, /*Conditional=*/true, TopLevelIndex);
    return;
  }

  const AssignStmt &A = S.Assign;
  analyzeExpr(*A.Value);
  if (A.Name == Prog.Counter) {
    error(S.Line, "the induction variable cannot be assigned");
    return;
  }
  if (A.IsArray) {
    if (AssignedScalars.count(A.Name) || ParamInit.count(A.Name)) {
      error(S.Line, "'" + A.Name + "' used as both scalar and array");
      return;
    }
    ArrayVars.insert(A.Name);
    const bool Indirect = !A.IndexVar.empty();
    if (Indirect) {
      if (ArrayVars.count(A.IndexVar)) {
        error(S.Line, "'" + A.IndexVar + "' used as both scalar and array");
        return;
      }
      Arrays[A.Name].HasIndirectWrite = true;
    }
    Arrays[A.Name].Writes.push_back(
        {A.Offset, A.Stride, Conditional, Indirect, TopLevelIndex});
    return;
  }
  if (ArrayVars.count(A.Name)) {
    error(S.Line, "'" + A.Name + "' used as both scalar and array");
    return;
  }
  AssignedScalars.insert(A.Name);
  LastTopLevelAssign[A.Name] = TopLevelIndex;
}

void Compiler::analyzeExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::Number:
    return;
  case ExprKind::Scalar:
    if (ArrayVars.count(E.Name))
      error(E.Line, "'" + E.Name + "' used as both scalar and array");
    return;
  case ExprKind::ArrayRef:
    if (AssignedScalars.count(E.Name) || ParamInit.count(E.Name)) {
      error(E.Line, "'" + E.Name + "' used as both scalar and array");
      return;
    }
    ArrayVars.insert(E.Name);
    Arrays[E.Name]; // ensure the array exists even when never written
    if (!E.IndexVar.empty()) {
      if (ArrayVars.count(E.IndexVar)) {
        error(E.Line, "'" + E.IndexVar + "' used as both scalar and array");
        return;
      }
      Arrays[E.Name].HasIndirectRead = true;
    }
    return;
  case ExprKind::Unary:
  case ExprKind::Sqrt:
    analyzeExpr(*E.Lhs);
    return;
  case ExprKind::Binary:
    analyzeExpr(*E.Lhs);
    analyzeExpr(*E.Rhs);
    return;
  }
  LSMS_UNREACHABLE("invalid expression kind");
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

void Compiler::genStmtList(const std::vector<std::unique_ptr<Stmt>> &Stmts,
                           int Predicate, bool TopLevel) {
  for (size_t I = 0; I < Stmts.size(); ++I) {
    if (!Diag.empty())
      return;
    if (TopLevel)
      CurrentTopLevel = static_cast<int>(I);
    const Stmt &S = *Stmts[I];
    if (S.Kind == StmtKind::Assign)
      genAssign(S, Predicate, TopLevel);
    else
      genIf(S, Predicate, TopLevel);
  }
}

int Compiler::scalarLastAssignTarget(const std::string &Name, bool TopLevel) {
  if (!TopLevel)
    return -1;
  const auto It = LastTopLevelAssign.find(Name);
  if (It == LastTopLevelAssign.end() || It->second != CurrentTopLevel)
    return -1;
  return FinalValue.at(Name);
}

void Compiler::genAssign(const Stmt &S, int Predicate, bool TopLevel) {
  const AssignStmt &A = S.Assign;

  if (!A.IsArray) {
    const int Target = scalarLastAssignTarget(A.Name, TopLevel);
    CurBinding[A.Name] = genExpr(*A.Value, Target);
    return;
  }

  ArrayInfo &Info = Arrays.at(A.Name);
  if (!A.IndexVar.empty()) {
    // Data-dependent store target: the element index is the scalar's
    // current (rounded) value.
    const Use V = genExpr(*A.Value);
    const Use Idx = scalarValue(A.IndexVar);
    Builder.emitIndirectStore(Info.Id, Idx, V,
                              "st_" + A.Name + "_at_" + A.IndexVar, Predicate,
                              0);
    ++MemVersion[A.Name];
    return;
  }
  int Target = -1;
  if (Predicate < 0) {
    const auto It = Info.StoreValue.find({A.Stride, A.Offset});
    if (It != Info.StoreValue.end())
      Target = It->second;
  }
  const Use V = genExpr(*A.Value, Target);
  const Use Addr = addressOf(A.Name, A.Stride, A.Offset);
  const int StoreOp = Builder.emitStore(
      Info.Id, A.Offset, Addr, V,
      "st_" + A.Name + "[" + std::to_string(A.Offset) + "]", Predicate, 0);
  Body.op(StoreOp).ElemStride = A.Stride;
  ++MemVersion[A.Name];
  if (Predicate < 0)
    StoreDone[{A.Name, A.Stride, A.Offset}] = true;
}

void Compiler::genIf(const Stmt &S, int Predicate, bool TopLevel) {
  // Evaluate the condition speculatively (if-conversion computes both
  // sides; only stores are guarded).
  const Use L = genExpr(*S.If.Cond.Lhs);
  const Use R = genExpr(*S.If.Cond.Rhs);
  Opcode CmpOpc = Opcode::CmpEQ;
  switch (S.If.Cond.Op) {
  case CmpOp::Eq:
    CmpOpc = Opcode::CmpEQ;
    break;
  case CmpOp::Ne:
    CmpOpc = Opcode::CmpNE;
    break;
  case CmpOp::Lt:
    CmpOpc = Opcode::CmpLT;
    break;
  case CmpOp::Le:
    CmpOpc = Opcode::CmpLE;
    break;
  case CmpOp::Gt:
    CmpOpc = Opcode::CmpGT;
    break;
  case CmpOp::Ge:
    CmpOpc = Opcode::CmpGE;
    break;
  }
  const int P = Body.value(genOp(CmpOpc, {L, R}, freshName("p"), -1).Value).Id;

  const int ThenPred =
      Predicate < 0
          ? P
          : Body.value(genOp(Opcode::PredAnd, {Use{Predicate, 0}, Use{P, 0}},
                             freshName("pa"), -1)
                           .Value)
                .Id;

  const auto Saved = CurBinding;
  genStmtList(S.If.Then, ThenPred, /*TopLevel=*/false);
  const auto ThenBind = CurBinding;

  CurBinding = Saved;
  if (!S.If.Else.empty()) {
    const int NotP =
        Body.value(genOp(Opcode::PredNot, {Use{P, 0}}, freshName("np"), -1)
                       .Value)
            .Id;
    const int ElsePred =
        Predicate < 0
            ? NotP
            : Body.value(genOp(Opcode::PredAnd,
                               {Use{Predicate, 0}, Use{NotP, 0}},
                               freshName("pa"), -1)
                             .Value)
                  .Id;
    genStmtList(S.If.Else, ElsePred, /*TopLevel=*/false);
  }
  const auto ElseBind = CurBinding;

  // Join: merge scalar bindings that differ across the branches with a
  // select on the local condition.
  CurBinding = Saved;
  for (const auto &[Name, SavedUse] : Saved) {
    const Use TB = ThenBind.at(Name);
    const Use EB = ElseBind.at(Name);
    if (TB == EB) {
      CurBinding[Name] = TB;
      continue;
    }
    const int Target = scalarLastAssignTarget(Name, TopLevel);
    CurBinding[Name] =
        genOp(Opcode::Select, {Use{P, 0}, TB, EB}, freshName(Name + ".sel"),
              Target);
  }
}

Use Compiler::finishLeaf(Use U, int Target) {
  if (Target < 0)
    return U;
  Builder.defineValue(Target, Opcode::Copy, {U});
  return Use{Target, 0};
}

Use Compiler::genOp(Opcode Opc, std::vector<Use> Operands,
                    const std::string &Name, int Target) {
  if (Target >= 0) {
    Builder.defineValue(Target, Opc, std::move(Operands));
    return Use{Target, 0};
  }
  return Use{Builder.emitValue(Opc, std::move(Operands), Name), 0};
}

Use Compiler::genExpr(const Expr &E, int Target) {
  switch (E.Kind) {
  case ExprKind::Number:
    return finishLeaf(Use{Builder.constant(E.Number), 0}, Target);
  case ExprKind::Scalar:
    return finishLeaf(scalarValue(E.Name), Target);
  case ExprKind::ArrayRef:
    if (!E.IndexVar.empty())
      return finishLeaf(genIndirectRead(E.Name, E.IndexVar), Target);
    return finishLeaf(genArrayRead(E.Name, E.Stride, E.Offset), Target);
  case ExprKind::Unary: {
    const Use A = genExpr(*E.Lhs);
    return genOp(Opcode::FloatSub, {Use{Builder.constant(0.0), 0}, A},
                 freshName("neg"), Target);
  }
  case ExprKind::Sqrt: {
    const Use A = genExpr(*E.Lhs);
    return genOp(Opcode::FloatSqrt, {A}, freshName("sqrt"), Target);
  }
  case ExprKind::Binary: {
    const Use A = genExpr(*E.Lhs);
    const Use B = genExpr(*E.Rhs);
    Opcode Opc = Opcode::FloatAdd;
    switch (E.Op) {
    case BinaryOp::Add:
      Opc = Opcode::FloatAdd;
      break;
    case BinaryOp::Sub:
      Opc = Opcode::FloatSub;
      break;
    case BinaryOp::Mul:
      Opc = Opcode::FloatMul;
      break;
    case BinaryOp::Div:
      Opc = Opcode::FloatDiv;
      break;
    }
    return genOp(Opc, {A, B}, freshName("t"), Target);
  }
  }
  LSMS_UNREACHABLE("invalid expression kind");
}

Use Compiler::scalarValue(const std::string &Name) {
  if (Name == Prog.Counter)
    return inductionValue();
  const auto Bound = CurBinding.find(Name);
  if (Bound != CurBinding.end())
    return Bound->second;
  // Loop invariant (parameter or implicitly declared input).
  const auto Known = InvariantValue.find(Name);
  if (Known != InvariantValue.end())
    return Use{Known->second, 0};
  const auto It = ParamInit.find(Name);
  const double Init =
      It != ParamInit.end() ? It->second : (NextDefaultInit += 0.5);
  const int V = Builder.invariant(Name, Init);
  InvariantValue[Name] = V;
  return Use{V, 0};
}

Use Compiler::inductionValue() {
  if (InductionVal < 0) {
    InductionVal = Builder.declareValue(RegClass::RR, Prog.Counter);
    Builder.defineValue(
        InductionVal, Opcode::IntAdd,
        {Use{InductionVal, 1}, Use{Builder.constant(1.0), 0}});
    Builder.setSeeds(InductionVal, {static_cast<double>(Prog.First - 1)});
  }
  return Use{InductionVal, 0};
}

Use Compiler::addressOf(const std::string &Array, int Stride, int Offset) {
  const RefKey Key{Array, Stride, Offset};
  const auto It = AddrStream.find(Key);
  if (It != AddrStream.end())
    return It->second;
  const ArrayInfo &Info = Arrays.at(Array);
  // Element size 4; per-array base spacing keeps streams distinct. The
  // numeric address is never interpreted (loads/stores carry the array id
  // and affine subscript), but keeping it consistent exercises the
  // address ALUs the way a real code generator would.
  const double Base =
      4096.0 * (Info.Id + 1) +
      4.0 * static_cast<double>(Stride * (Prog.First - 1) + Offset);
  const int V = Builder.addressStream(
      "addr_" + Array + (Offset < 0 ? "_m" : "_p") +
          std::to_string(std::abs(Offset)),
      Base, 4.0 * Stride);
  AddrStream[Key] = Use{V, 0};
  return Use{V, 0};
}

bool Compiler::tryEliminateLoad(const std::string &Array, int Stride,
                                int Offset, Use &Out) {
  const ArrayInfo &Info = Arrays.at(Array);
  if (Info.HasIndirectWrite)
    return false; // a data-dependent write may clobber any element
  // Writes through a different affine shape that may alias this read make
  // the memory state unanalyzable: keep the load.
  for (const WriteSite &W : Info.Writes) {
    const bool Exact =
        W.Stride == Stride && (W.Offset - Offset) % Stride == 0;
    if (!Exact && mayAlias(Stride, Offset, W.Stride, W.Offset))
      return false;
  }
  // Candidate covering writes, most recent (smallest distance) first. A
  // write at stride*i + M covers the read of stride*i + Offset from
  // (M - Offset)/stride iterations earlier.
  std::set<int> Distances;
  for (const WriteSite &W : Info.Writes)
    if (W.Stride == Stride && (W.Offset - Offset) % Stride == 0 &&
        W.Offset >= Offset)
      Distances.insert((W.Offset - Offset) / Stride);
  for (const int D : Distances) {
    const int M = Offset + D * Stride;
    if (D == 0 && !StoreDone.count({Array, Stride, Offset})) {
      // The same-subscript write has not executed yet this iteration; the
      // most recent value of this location is the next covering write.
      continue;
    }
    const auto It = Info.StoreValue.find({Stride, M});
    if (It == Info.StoreValue.end())
      return false; // covering write is conditional or multi-writer
    Out = Use{It->second, D};
    return true;
  }
  return false;
}

Use Compiler::genArrayRead(const std::string &Name, int Stride,
                           int Offset) {
  Use Eliminated;
  if (tryEliminateLoad(Name, Stride, Offset, Eliminated))
    return Eliminated;

  const RefKey Key{Name, Stride, Offset};
  const int Version = MemVersion[Name];
  const auto Cached = LoadCache.find(Key);
  if (Cached != LoadCache.end() && LoadCacheVersion[Key] == Version)
    return Cached->second;

  const ArrayInfo &Info = Arrays.at(Name);
  const Use Addr = addressOf(Name, Stride, Offset);
  const int V = Builder.emitLoad(Info.Id, Offset, Addr,
                                 "ld_" + Name +
                                     (Offset < 0 ? "_m" : "_p") +
                                     std::to_string(std::abs(Offset)));
  Body.op(Body.value(V).Def).ElemStride = Stride;
  const Use U{V, 0};
  LoadCache[Key] = U;
  LoadCacheVersion[Key] = Version;
  return U;
}

Use Compiler::genIndirectRead(const std::string &Name,
                              const std::string &IndexVar) {
  // Data-dependent loads are never eliminated or cached: the addressed
  // element changes with the index scalar's runtime value.
  const ArrayInfo &Info = Arrays.at(Name);
  const Use Idx = scalarValue(IndexVar);
  const int V =
      Builder.emitIndirectLoad(Info.Id, Idx, "ld_" + Name + "_at_" + IndexVar);
  return Use{V, 0};
}

void Compiler::genExit() {
  if (!Prog.HasExit)
    return;
  const Use L = genExpr(*Prog.Exit.Lhs);
  const Use R = genExpr(*Prog.Exit.Rhs);
  Opcode CmpOpc = Opcode::CmpEQ;
  switch (Prog.Exit.Op) {
  case CmpOp::Eq:
    CmpOpc = Opcode::CmpEQ;
    break;
  case CmpOp::Ne:
    CmpOpc = Opcode::CmpNE;
    break;
  case CmpOp::Lt:
    CmpOpc = Opcode::CmpLT;
    break;
  case CmpOp::Le:
    CmpOpc = Opcode::CmpLE;
    break;
  case CmpOp::Gt:
    CmpOpc = Opcode::CmpGT;
    break;
  case CmpOp::Ge:
    CmpOpc = Opcode::CmpGE;
    break;
  }
  Body.ExitValue = genOp(CmpOpc, {L, R}, "exit", -1).Value;
}

void Compiler::addControlDeps() {
  // Do-while semantics: iteration j's exit test decides whether iteration
  // j+1 runs at all. Conservatively, no store of iteration j+1 may commit
  // before iteration j's exit value resolves (latency 1 past the compare's
  // issue). Register writes of a squashed iteration are harmless — omegas
  // are non-negative, so no live iteration reads them — which is why only
  // stores are fenced. Speculative lowering may drop these arcs and emit a
  // NoEarlyExit assumption instead.
  if (Body.ExitValue < 0)
    return;
  const int ExitDef = Body.value(Body.ExitValue).Def;
  for (const Operation &Op : Body.Ops)
    if (Op.Opc == Opcode::Store)
      Builder.addTaggedMemDep(ExitDef, Op.Id, DepKind::Extra, /*Latency=*/1,
                              /*Omega=*/1, ArcConfidence::Control);
}

void Compiler::addMemoryDeps() {
  struct MemOp {
    int Op;
    bool IsStore;
    int Array;
    int Offset;
    int Stride;
    bool Indirect;
  };
  std::vector<MemOp> MemOps;
  for (const Operation &Op : Body.Ops)
    if (isMemoryOp(Op.Opc))
      MemOps.push_back({Op.Id, Op.Opc == Opcode::Store, Op.ArrayId,
                        Op.ElemOffset, Op.ElemStride, Op.Indirect});

  int NextAliasGroup = 0;
  for (size_t I = 0; I < MemOps.size(); ++I) {
    for (size_t J = I + 1; J < MemOps.size(); ++J) {
      const MemOp &A = MemOps[I]; // emitted (program order) first
      const MemOp &B = MemOps[J];
      if (A.Array != B.Array || (!A.IsStore && !B.IsStore))
        continue;

      if (A.Indirect || B.Indirect) {
        // A data-dependent subscript may touch any element of the array:
        // serialize conservatively (program order within the iteration,
        // reverse direction across iterations) with may-alias arcs that
        // speculation can drop as a group. The collision probability is
        // unknown here; calibrated generators stamp an estimate.
        const int Group = NextAliasGroup++;
        DepKind Fwd = DepKind::Output, Rev = DepKind::Output;
        int FwdLat = 1, RevLat = 1;
        if (A.IsStore != B.IsStore) {
          Fwd = A.IsStore ? DepKind::Flow : DepKind::Anti;
          Rev = A.IsStore ? DepKind::Anti : DepKind::Flow;
          FwdLat = A.IsStore ? 1 : 0;
          RevLat = A.IsStore ? 0 : 1;
        }
        Builder.addTaggedMemDep(A.Op, B.Op, Fwd, FwdLat, 0,
                                ArcConfidence::MayAlias, -1.0, Group);
        Builder.addTaggedMemDep(B.Op, A.Op, Rev, RevLat, 1,
                                ArcConfidence::MayAlias, -1.0, Group);
        continue;
      }

      // GCD dependence test: references that can never touch the same
      // element need no ordering at all.
      if (!mayAlias(A.Stride, A.Offset, B.Stride, B.Offset))
        continue;

      if (A.Stride == B.Stride && (A.Offset - B.Offset) % A.Stride == 0) {
        // Exact iteration distance.
        const int D = (A.Offset - B.Offset) / A.Stride;
        if (A.IsStore && B.IsStore) {
          if (D >= 0)
            Builder.addMemDep(A.Op, B.Op, DepKind::Output, 1, D);
          else
            Builder.addMemDep(B.Op, A.Op, DepKind::Output, 1, -D);
          continue;
        }
        if (A.IsStore) { // store then load
          if (D >= 0)
            Builder.addMemDep(A.Op, B.Op, DepKind::Flow, 1, D);
          else
            Builder.addMemDep(B.Op, A.Op, DepKind::Anti, 0, -D);
          continue;
        }
        // Load then store.
        if (D >= 0)
          Builder.addMemDep(A.Op, B.Op, DepKind::Anti, 0, D);
        else
          Builder.addMemDep(B.Op, A.Op, DepKind::Flow, 1, -D);
        continue;
      }

      // May alias at some unknown distance: serialize conservatively —
      // program order within the iteration (omega 0) and the reverse
      // direction across iterations (omega 1 dominates all distances).
      // These are may-alias arcs: the GCD test proved the subscripts *can*
      // coincide but not at which iteration distance.
      const int Group = NextAliasGroup++;
      if (A.IsStore && B.IsStore) {
        Builder.addTaggedMemDep(A.Op, B.Op, DepKind::Output, 1, 0,
                                ArcConfidence::MayAlias, -1.0, Group);
        Builder.addTaggedMemDep(B.Op, A.Op, DepKind::Output, 1, 1,
                                ArcConfidence::MayAlias, -1.0, Group);
      } else if (A.IsStore) {
        Builder.addTaggedMemDep(A.Op, B.Op, DepKind::Flow, 1, 0,
                                ArcConfidence::MayAlias, -1.0, Group);
        Builder.addTaggedMemDep(B.Op, A.Op, DepKind::Anti, 0, 1,
                                ArcConfidence::MayAlias, -1.0, Group);
      } else {
        Builder.addTaggedMemDep(A.Op, B.Op, DepKind::Anti, 0, 0,
                                ArcConfidence::MayAlias, -1.0, Group);
        Builder.addTaggedMemDep(B.Op, A.Op, DepKind::Flow, 1, 1,
                                ArcConfidence::MayAlias, -1.0, Group);
      }
    }
  }
}

} // namespace

std::string lsms::compileProgram(const Program &Prog, const std::string &Name,
                                 LoopBody &Out) {
  Compiler C(Prog, Name, Out);
  return C.run();
}

std::string lsms::compileLoop(const std::string &Source,
                              const std::string &Name, LoopBody &Out) {
  std::string Err;
  const std::unique_ptr<Program> Prog = parseProgram(Source, Err);
  if (!Prog)
    return Err.empty() ? "parse error" : Err;
  Out.Source = Source;
  return compileProgram(*Prog, Name, Out);
}

std::vector<std::string> lsms::arrayNamesOf(const LoopBody &Body) {
  return Body.ArrayNames;
}
