#include "frontend/AstPrinter.h"

#include <bit>
#include <cassert>
#include <charconv>
#include <sstream>

using namespace lsms;

namespace {

/// Shortest decimal form that strtod parses back to the same double (the
/// lexer accepts 'e'-exponents, so scientific output is fine).
std::string formatNumber(double D) {
  char Buf[64];
  const auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), D);
  assert(Ec == std::errc());
  (void)Ec;
  return std::string(Buf, End);
}

/// Expression precedence: additive = 1, multiplicative = 2, atoms and
/// unary forms = 3. A child is parenthesized when its precedence is below
/// what its position requires; every binary right operand requires one
/// level more than its parent (left associativity).
int precedenceOf(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::Binary:
    return E.Op == BinaryOp::Add || E.Op == BinaryOp::Sub ? 1 : 2;
  case ExprKind::Number:
  case ExprKind::Scalar:
  case ExprKind::ArrayRef:
  case ExprKind::Unary:
  case ExprKind::Sqrt:
    return 3;
  }
  return 3;
}

void printSubscript(std::ostringstream &OS, const std::string &Counter,
                    int Offset, int Stride, const std::string &IndexVar) {
  if (!IndexVar.empty()) {
    OS << '[' << IndexVar << ']';
    return;
  }
  OS << '[';
  if (Stride != 1)
    OS << Stride << '*';
  OS << Counter;
  if (Offset > 0)
    OS << '+' << Offset;
  else if (Offset < 0)
    OS << '-' << -Offset;
  OS << ']';
}

void printExprInto(std::ostringstream &OS, const std::string &Counter,
                   const Expr &E, int MinPrec) {
  const int Prec = precedenceOf(E);
  const bool Parens = Prec < MinPrec;
  if (Parens)
    OS << '(';
  switch (E.Kind) {
  case ExprKind::Number:
    OS << formatNumber(E.Number);
    break;
  case ExprKind::Scalar:
    OS << E.Name;
    break;
  case ExprKind::ArrayRef:
    OS << E.Name;
    printSubscript(OS, Counter, E.Offset, E.Stride, E.IndexVar);
    break;
  case ExprKind::Unary:
    OS << '-';
    printExprInto(OS, Counter, *E.Lhs, 3);
    break;
  case ExprKind::Sqrt:
    OS << "sqrt(";
    printExprInto(OS, Counter, *E.Lhs, 1);
    OS << ')';
    break;
  case ExprKind::Binary: {
    const char Op = E.Op == BinaryOp::Add   ? '+'
                    : E.Op == BinaryOp::Sub ? '-'
                    : E.Op == BinaryOp::Mul ? '*'
                                            : '/';
    printExprInto(OS, Counter, *E.Lhs, Prec);
    OS << ' ' << Op << ' ';
    // The grammar is left-associative, so a same-precedence RIGHT child
    // always needs parens to keep its shape — for every operator, not
    // just - and /: "a + (b - c)" reparsed without them would become
    // "(a + b) - c", a different tree (and a different rounding order).
    printExprInto(OS, Counter, *E.Rhs, Prec + 1);
    break;
  }
  }
  if (Parens)
    OS << ')';
}

const char *cmpSpelling(CmpOp Op) {
  switch (Op) {
  case CmpOp::Eq:
    return "==";
  case CmpOp::Ne:
    return "!=";
  case CmpOp::Lt:
    return "<";
  case CmpOp::Le:
    return "<=";
  case CmpOp::Gt:
    return ">";
  case CmpOp::Ge:
    return ">=";
  }
  return "<";
}

void printStmtList(std::ostringstream &OS, const std::string &Counter,
                   const std::vector<std::unique_ptr<Stmt>> &Stmts,
                   int Indent);

void printStmt(std::ostringstream &OS, const std::string &Counter,
               const Stmt &S, int Indent) {
  OS << std::string(static_cast<size_t>(Indent), ' ');
  if (S.Kind == StmtKind::Assign) {
    OS << S.Assign.Name;
    if (S.Assign.IsArray)
      printSubscript(OS, Counter, S.Assign.Offset, S.Assign.Stride,
                     S.Assign.IndexVar);
    OS << " = ";
    printExprInto(OS, Counter, *S.Assign.Value, 1);
    OS << '\n';
    return;
  }
  OS << "if (";
  printExprInto(OS, Counter, *S.If.Cond.Lhs, 1);
  OS << ' ' << cmpSpelling(S.If.Cond.Op) << ' ';
  printExprInto(OS, Counter, *S.If.Cond.Rhs, 1);
  OS << ") then\n";
  printStmtList(OS, Counter, S.If.Then, Indent + 2);
  if (!S.If.Else.empty()) {
    OS << std::string(static_cast<size_t>(Indent), ' ') << "else\n";
    printStmtList(OS, Counter, S.If.Else, Indent + 2);
  }
  OS << std::string(static_cast<size_t>(Indent), ' ') << "end\n";
}

void printStmtList(std::ostringstream &OS, const std::string &Counter,
                   const std::vector<std::unique_ptr<Stmt>> &Stmts,
                   int Indent) {
  for (const auto &S : Stmts)
    printStmt(OS, Counter, *S, Indent);
}

bool sameBits(double A, double B) {
  return std::bit_cast<uint64_t>(A) == std::bit_cast<uint64_t>(B);
}

bool exprsEqual(const Expr *A, const Expr *B) {
  if (!A || !B)
    return A == B;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case ExprKind::Number:
    return sameBits(A->Number, B->Number);
  case ExprKind::Scalar:
    return A->Name == B->Name;
  case ExprKind::ArrayRef:
    return A->Name == B->Name && A->Offset == B->Offset &&
           A->Stride == B->Stride && A->IndexVar == B->IndexVar;
  case ExprKind::Unary:
  case ExprKind::Sqrt:
    return exprsEqual(A->Lhs.get(), B->Lhs.get());
  case ExprKind::Binary:
    return A->Op == B->Op && exprsEqual(A->Lhs.get(), B->Lhs.get()) &&
           exprsEqual(A->Rhs.get(), B->Rhs.get());
  }
  return false;
}

bool stmtsEqual(const std::vector<std::unique_ptr<Stmt>> &A,
                const std::vector<std::unique_ptr<Stmt>> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    const Stmt &SA = *A[I], &SB = *B[I];
    if (SA.Kind != SB.Kind)
      return false;
    if (SA.Kind == StmtKind::Assign) {
      if (SA.Assign.IsArray != SB.Assign.IsArray ||
          SA.Assign.Name != SB.Assign.Name ||
          SA.Assign.Offset != SB.Assign.Offset ||
          SA.Assign.Stride != SB.Assign.Stride ||
          SA.Assign.IndexVar != SB.Assign.IndexVar ||
          !exprsEqual(SA.Assign.Value.get(), SB.Assign.Value.get()))
        return false;
    } else {
      if (SA.If.Cond.Op != SB.If.Cond.Op ||
          !exprsEqual(SA.If.Cond.Lhs.get(), SB.If.Cond.Lhs.get()) ||
          !exprsEqual(SA.If.Cond.Rhs.get(), SB.If.Cond.Rhs.get()) ||
          !stmtsEqual(SA.If.Then, SB.If.Then) ||
          !stmtsEqual(SA.If.Else, SB.If.Else))
        return false;
    }
  }
  return true;
}

} // namespace

std::string lsms::printExpr(const Expr &E) {
  std::ostringstream OS;
  printExprInto(OS, "i", E, 1);
  return OS.str();
}

std::string lsms::printProgram(const Program &Prog) {
  std::ostringstream OS;
  for (const auto &[Name, Value] : Prog.Params)
    OS << "param " << Name << " = " << formatNumber(Value) << '\n';
  OS << "loop " << Prog.Counter << " = " << Prog.First << ", n";
  if (Prog.HasExit) {
    OS << " while (";
    printExprInto(OS, Prog.Counter, *Prog.Exit.Lhs, 1);
    OS << ' ' << cmpSpelling(Prog.Exit.Op) << ' ';
    printExprInto(OS, Prog.Counter, *Prog.Exit.Rhs, 1);
    OS << ')';
  }
  OS << '\n';
  printStmtList(OS, Prog.Counter, Prog.Body, 2);
  OS << "end\n";
  return OS.str();
}

bool lsms::programsEqual(const Program &A, const Program &B) {
  if (A.Counter != B.Counter || A.First != B.First ||
      A.HasExit != B.HasExit || A.Params.size() != B.Params.size())
    return false;
  if (A.HasExit &&
      (A.Exit.Op != B.Exit.Op ||
       !exprsEqual(A.Exit.Lhs.get(), B.Exit.Lhs.get()) ||
       !exprsEqual(A.Exit.Rhs.get(), B.Exit.Rhs.get())))
    return false;
  for (size_t I = 0; I < A.Params.size(); ++I)
    if (A.Params[I].first != B.Params[I].first ||
        !sameBits(A.Params[I].second, B.Params[I].second))
      return false;
  return stmtsEqual(A.Body, B.Body);
}
