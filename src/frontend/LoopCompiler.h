//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a loop DSL program into a branch-free LoopBody ready for modulo
/// scheduling, performing the front-end work the paper assumes:
///
///  - if-conversion (Section 2.2): conditionals become predicated stores
///    plus select merges for scalars; all other operations are speculated;
///  - load/store elimination (Section 2.3): reads of a[i+k] covered by an
///    unconditional write a[i+m] (m >= k) become cross-iteration register
///    flow with omega = m-k, seeded from the array's initial contents;
///  - exact dependence omegas from array subscripts (Section 3.1);
///  - address arithmetic lowering: one self-recurrent address stream per
///    distinct array reference.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_FRONTEND_LOOPCOMPILER_H
#define LSMS_FRONTEND_LOOPCOMPILER_H

#include "frontend/Ast.h"
#include "ir/LoopBody.h"

#include <string>

namespace lsms {

/// Compiles \p Prog into \p Out. Returns an empty string on success or a
/// diagnostic on semantic errors. \p Out must be a fresh LoopBody.
std::string compileProgram(const Program &Prog, const std::string &Name,
                           LoopBody &Out);

/// Parses and compiles \p Source. Returns an empty string on success.
std::string compileLoop(const std::string &Source, const std::string &Name,
                        LoopBody &Out);

/// Names of the arrays in declaration order (ArrayId indexes this list);
/// derived from the compiled body's metadata. Provided so tools can label
/// simulator output.
std::vector<std::string> arrayNamesOf(const LoopBody &Body);

} // namespace lsms

#endif // LSMS_FRONTEND_LOOPCOMPILER_H
