//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printer emitting parseable loop-DSL source from a parsed AST.
/// The output round-trips: parseProgram(printProgram(P)) yields a Program
/// structurally equal to P (numbers are printed in shortest round-trip
/// form, parentheses are inserted only where precedence demands them).
/// Used by tools that normalize or re-emit DSL programs and by the
/// parse -> print -> parse frontend test.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_FRONTEND_ASTPRINTER_H
#define LSMS_FRONTEND_ASTPRINTER_H

#include "frontend/Ast.h"

#include <string>

namespace lsms {

/// Renders \p Prog as loop-DSL source text ending in a newline.
std::string printProgram(const Program &Prog);

/// Renders one expression (no trailing newline). Exposed for diagnostics.
std::string printExpr(const Expr &E);

/// Structural equality of two programs: same parameters, loop header, and
/// statement trees (numbers compared bitwise, so -0.0 != 0.0). Names,
/// source lines, and the program Name field are compared/ignored exactly
/// as the round-trip guarantee requires (Line fields are ignored, Name is
/// ignored — it comes from the caller, not the source text).
bool programsEqual(const Program &A, const Program &B);

} // namespace lsms

#endif // LSMS_FRONTEND_ASTPRINTER_H
