#include "frontend/Lexer.h"

#include "support/Compiler.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace lsms;

const char *lsms::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::KwParam:
    return "'param'";
  case TokenKind::KwLoop:
    return "'loop'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwSqrt:
    return "'sqrt'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::Ne:
    return "'!='";
  case TokenKind::Newline:
    return "newline";
  case TokenKind::Eof:
    return "end of input";
  }
  LSMS_UNREACHABLE("invalid token kind");
}

static TokenKind keywordKind(const std::string &Word) {
  if (Word == "param")
    return TokenKind::KwParam;
  if (Word == "loop")
    return TokenKind::KwLoop;
  if (Word == "if")
    return TokenKind::KwIf;
  if (Word == "then")
    return TokenKind::KwThen;
  if (Word == "else")
    return TokenKind::KwElse;
  if (Word == "end" || Word == "endif" || Word == "endloop")
    return TokenKind::KwEnd;
  if (Word == "sqrt")
    return TokenKind::KwSqrt;
  if (Word == "while")
    return TokenKind::KwWhile;
  return TokenKind::Identifier;
}

bool lsms::tokenize(const std::string &Source, std::vector<Token> &TokensOut,
                    std::string &ErrorOut) {
  int Line = 1, Column = 1;
  size_t I = 0;
  const size_t N = Source.size();

  auto Push = [&TokensOut, &Line, &Column](TokenKind Kind, std::string Text,
                                           double Num = 0) {
    // Collapse consecutive newlines and skip a leading one.
    if (Kind == TokenKind::Newline &&
        (TokensOut.empty() || TokensOut.back().Kind == TokenKind::Newline))
      return;
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.NumberValue = Num;
    T.Line = Line;
    T.Column = Column;
    TokensOut.push_back(std::move(T));
  };

  while (I < N) {
    const char C = Source[I];
    if (C == '\n') {
      Push(TokenKind::Newline, "\\n");
      ++Line;
      Column = 1;
      ++I;
      continue;
    }
    if (C == '#') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C)) || C == ';') {
      if (C == ';')
        Push(TokenKind::Newline, ";");
      ++I;
      ++Column;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Word;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_')) {
        Word += Source[I++];
        ++Column;
      }
      Push(keywordKind(Word), Word);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Source[I + 1])))) {
      const size_t Begin = I;
      while (I < N && (std::isdigit(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '.' || Source[I] == 'e' ||
                       Source[I] == 'E' ||
                       ((Source[I] == '+' || Source[I] == '-') && I > Begin &&
                        (Source[I - 1] == 'e' || Source[I - 1] == 'E')))) {
        ++I;
        ++Column;
      }
      const std::string Text = Source.substr(Begin, I - Begin);
      char *EndPtr = nullptr;
      const double Num = std::strtod(Text.c_str(), &EndPtr);
      if (EndPtr != Text.c_str() + Text.size()) {
        std::ostringstream OS;
        OS << "line " << Line << ": malformed number '" << Text << "'";
        ErrorOut = OS.str();
        return false;
      }
      Push(TokenKind::Number, Text, Num);
      continue;
    }

    auto Two = [&](char Next) {
      return I + 1 < N && Source[I + 1] == Next;
    };
    TokenKind Kind;
    int Len = 1;
    switch (C) {
    case '(':
      Kind = TokenKind::LParen;
      break;
    case ')':
      Kind = TokenKind::RParen;
      break;
    case '[':
      Kind = TokenKind::LBracket;
      break;
    case ']':
      Kind = TokenKind::RBracket;
      break;
    case '+':
      Kind = TokenKind::Plus;
      break;
    case '-':
      Kind = TokenKind::Minus;
      break;
    case '*':
      Kind = TokenKind::Star;
      break;
    case '/':
      Kind = TokenKind::Slash;
      break;
    case ',':
      Kind = TokenKind::Comma;
      break;
    case '<':
      Kind = Two('=') ? (Len = 2, TokenKind::Le) : TokenKind::Lt;
      break;
    case '>':
      Kind = Two('=') ? (Len = 2, TokenKind::Ge) : TokenKind::Gt;
      break;
    case '=':
      Kind = Two('=') ? (Len = 2, TokenKind::EqEq) : TokenKind::Assign;
      break;
    case '!':
      if (Two('=')) {
        Kind = TokenKind::Ne;
        Len = 2;
        break;
      }
      [[fallthrough]];
    default: {
      std::ostringstream OS;
      OS << "line " << Line << ": unexpected character '" << C << "'";
      ErrorOut = OS.str();
      return false;
    }
    }
    Push(Kind, Source.substr(I, static_cast<size_t>(Len)));
    I += static_cast<size_t>(Len);
    Column += Len;
  }

  Push(TokenKind::Newline, "\\n");
  Push(TokenKind::Eof, "");
  return true;
}
