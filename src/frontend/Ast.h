//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for the loop DSL. Expressions are real-valued;
/// conditions are comparisons between expressions. Statements are array or
/// scalar assignments and structured if/then/else, which the compiler
/// if-converts into predicated code (Section 2.2).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_FRONTEND_AST_H
#define LSMS_FRONTEND_AST_H

#include <memory>
#include <string>
#include <vector>

namespace lsms {

enum class ExprKind : uint8_t {
  Number,   ///< literal constant
  Scalar,   ///< scalar variable reference
  ArrayRef, ///< a[i + Offset]
  Unary,    ///< -e
  Binary,   ///< e1 op e2 with op in + - * /
  Sqrt,     ///< sqrt(e)
};

enum class BinaryOp : uint8_t { Add, Sub, Mul, Div };

struct Expr {
  ExprKind Kind;
  double Number = 0;          // Number
  std::string Name;           // Scalar / ArrayRef
  int Offset = 0;             // ArrayRef: a[Stride*i + Offset]
  int Stride = 1;             // ArrayRef subscript stride
  /// ArrayRef with a data-dependent subscript a[x]: the scalar variable
  /// naming the element index. Empty for affine subscripts.
  std::string IndexVar;
  BinaryOp Op = BinaryOp::Add; // Binary
  std::unique_ptr<Expr> Lhs, Rhs; // Binary / Unary(Lhs) / Sqrt(Lhs)
  int Line = 0;
};

enum class CmpOp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

struct Condition {
  CmpOp Op = CmpOp::Lt;
  std::unique_ptr<Expr> Lhs, Rhs;
  int Line = 0;
};

struct Stmt;

struct IfStmt {
  Condition Cond;
  std::vector<std::unique_ptr<Stmt>> Then;
  std::vector<std::unique_ptr<Stmt>> Else;
};

struct AssignStmt {
  bool IsArray = false;
  std::string Name;
  int Offset = 0; ///< array targets: a[Stride*i + Offset]
  int Stride = 1;
  std::string IndexVar; ///< data-dependent target a[x]; empty when affine
  std::unique_ptr<Expr> Value;
};

enum class StmtKind : uint8_t { Assign, If };

struct Stmt {
  StmtKind Kind;
  AssignStmt Assign; // Kind == Assign
  IfStmt If;         // Kind == If
  int Line = 0;
};

/// A parsed program: optional parameters plus one loop.
struct Program {
  std::string Name;
  /// Declared loop-invariant parameters with initial values.
  std::vector<std::pair<std::string, double>> Params;
  std::string Counter; ///< induction variable name (usually "i")
  long First = 1;      ///< lower bound of the iteration space
  /// While-style exit clause (`loop i = 1, n while (cond)`): do-while
  /// semantics — the condition is evaluated at the *end* of each iteration
  /// and the first iteration where it is false is the last one executed.
  bool HasExit = false;
  Condition Exit;
  std::vector<std::unique_ptr<Stmt>> Body;
};

} // namespace lsms

#endif // LSMS_FRONTEND_AST_H
