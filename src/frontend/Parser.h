//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the loop DSL.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_FRONTEND_PARSER_H
#define LSMS_FRONTEND_PARSER_H

#include "frontend/Ast.h"

#include <memory>
#include <string>

namespace lsms {

/// Parses \p Source into a Program. Returns nullptr and fills \p ErrorOut
/// on syntax errors.
std::unique_ptr<Program> parseProgram(const std::string &Source,
                                      std::string &ErrorOut);

} // namespace lsms

#endif // LSMS_FRONTEND_PARSER_H
