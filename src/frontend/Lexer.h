//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the loop DSL — a minimal FORTRAN-like notation for the DO
/// loops the paper's compiler pipelines:
///
///   param a = 3.0
///   loop i = 3, n
///     x[i] = x[i-1] + y[i-2]
///     if (x[i] > 0) then
///       y[i] = a * x[i]
///     else
///       y[i] = 0 - x[i]
///     end
///   end
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_FRONTEND_LEXER_H
#define LSMS_FRONTEND_LEXER_H

#include <string>
#include <vector>

namespace lsms {

enum class TokenKind : uint8_t {
  Identifier,
  Number,
  KwParam,
  KwLoop,
  KwIf,
  KwThen,
  KwElse,
  KwEnd,
  KwSqrt,
  KwWhile,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Plus,
  Minus,
  Star,
  Slash,
  Assign, // '='
  Comma,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  Ne,
  Newline,
  Eof,
};

/// Returns a printable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  double NumberValue = 0;
  int Line = 0;
  int Column = 0;
};

/// Tokenizes \p Source. On a lexical error, returns false and fills
/// \p ErrorOut (tokens produced so far remain in \p TokensOut).
/// Comments run from '#' to end of line. Newlines are significant (they
/// separate statements) and consecutive ones are collapsed.
bool tokenize(const std::string &Source, std::vector<Token> &TokensOut,
              std::string &ErrorOut);

} // namespace lsms

#endif // LSMS_FRONTEND_LEXER_H
