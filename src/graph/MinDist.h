//===----------------------------------------------------------------------===//
///
/// \file
/// The minimum distance relation of Section 4.1: MinDist(x,y) is the
/// minimum number of cycles (possibly negative) by which x must precede y
/// in any feasible schedule at a given II, or -infinity when no dependence
/// path connects them. Computed as an all-pairs longest-paths problem over
/// arc weights latency - omega*II (all cycles non-positive once
/// II >= RecMII).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_GRAPH_MINDIST_H
#define LSMS_GRAPH_MINDIST_H

#include "ir/DepGraph.h"

#include <climits>
#include <vector>

namespace lsms {

/// Dense MinDist matrix for one (graph, II) pair.
class MinDistMatrix {
public:
  /// Sentinel for "no path" (a very negative value safe to add once).
  static constexpr long NoPath = LONG_MIN / 4;

  /// Computes the relation; returns false (leaving the matrix unusable)
  /// when II admits a positive cycle, i.e. II < RecMII.
  bool compute(const DepGraph &Graph, int II);

  int initiationInterval() const { return II; }
  int numOps() const { return N; }

  /// MinDist(x,y); NoPath when unconnected.
  long at(int X, int Y) const {
    return Matrix[static_cast<size_t>(X) * static_cast<size_t>(N) +
                  static_cast<size_t>(Y)];
  }

  /// True when a dependence path leads from x to y.
  bool connected(int X, int Y) const { return at(X, Y) != NoPath; }

  /// Static Estart of every operation in the empty schedule:
  /// MinDist(\p StartOp, x), clamped at 0 (Section 4.1).
  std::vector<long> estarts(int StartOp) const;

  /// Static Lstart of every operation when \p StopOp must issue no later
  /// than \p Cap: Cap - MinDist(x, StopOp); operations with no path to
  /// Stop get Cap itself.
  std::vector<long> lstarts(int StopOp, long Cap) const;

private:
  int N = 0;
  int II = 0;
  std::vector<long> Matrix;
};

} // namespace lsms

#endif // LSMS_GRAPH_MINDIST_H
