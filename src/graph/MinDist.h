//===----------------------------------------------------------------------===//
///
/// \file
/// The minimum distance relation of Section 4.1: MinDist(x,y) is the
/// minimum number of cycles (possibly negative) by which x must precede y
/// in any feasible schedule at a given II, or -infinity when no dependence
/// path connects them. An all-pairs longest-paths problem over arc weights
/// latency - omega*II (all cycles non-positive once II >= RecMII).
///
/// compute() exploits the structure of dependence graphs: cycles live
/// entirely inside strongly connected components, so max-plus
/// Floyd-Warshall only runs inside each recurrence component and
/// cross-component distances propagate with a single topological-order
/// pass over the condensation DAG. The SCC structure and arc buckets are
/// II-independent and cached across calls on the same graph, so the
/// II=MII, MII+1, ... retry loops of the schedulers only refresh the
/// omega-carrying arc weights per candidate II. Two further delta-update
/// layers serve the II ladder: a graph without omega arcs has an
/// II-independent relation, so a repeat compute() on it returns the
/// previous matrix outright; and components whose intra arcs are all
/// omega-free keep their closed local blocks across rungs, so only
/// omega-carrying recurrences re-run Floyd-Warshall. computeDense() keeps
/// the original dense Floyd-Warshall as a differential-testing reference;
/// the max-plus closure is unique, so the two agree entry for entry.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_GRAPH_MINDIST_H
#define LSMS_GRAPH_MINDIST_H

#include "ir/DepGraph.h"

#include <climits>
#include <vector>

namespace lsms {

/// Dense MinDist matrix for one (graph, II) pair.
class MinDistMatrix {
public:
  /// Sentinel for "no path" (a very negative value safe to add once).
  static constexpr long NoPath = LONG_MIN / 4;

  /// Computes the relation; returns false (leaving the matrix unusable)
  /// when II admits a positive cycle, i.e. II < RecMII. SCC-decomposed;
  /// reuses the cached condensation when \p Graph is the one from the
  /// previous call.
  bool compute(const DepGraph &Graph, int II);

  /// Reference implementation: dense Floyd-Warshall over all operations.
  /// Kept for differential testing; equals compute() entry for entry.
  bool computeDense(const DepGraph &Graph, int II);

  int initiationInterval() const { return II; }
  int numOps() const { return N; }

  /// MinDist(x,y); NoPath when unconnected.
  long at(int X, int Y) const {
    return Matrix[static_cast<size_t>(X) * static_cast<size_t>(N) +
                  static_cast<size_t>(Y)];
  }

  /// True when a dependence path leads from x to y.
  bool connected(int X, int Y) const { return at(X, Y) != NoPath; }

  /// Static Estart of every operation in the empty schedule:
  /// MinDist(\p StartOp, x), clamped at 0 (Section 4.1). The out-parameter
  /// form reuses \p Out's storage; hot callers should hold one buffer and
  /// pass it to every query.
  void estarts(int StartOp, std::vector<long> &Out) const;
  std::vector<long> estarts(int StartOp) const;

  /// Static Lstart of every operation when \p StopOp must issue no later
  /// than \p Cap: Cap - MinDist(x, StopOp); operations with no path to
  /// Stop get Cap itself.
  void lstarts(int StopOp, long Cap, std::vector<long> &Out) const;
  std::vector<long> lstarts(int StopOp, long Cap) const;

private:
  void buildStructure(const DepGraph &Graph);
  void refreshWeights(const DepGraph &Graph, int NewII);

  int N = 0;
  int II = 0;
  std::vector<long> Matrix;

  // II-independent condensation structure, cached per graph. The cache key
  // is (graph address, numOps, arc count); dependence graphs are immutable
  // so a match means the buckets below are still valid.
  const DepGraph *CachedGraph = nullptr;
  size_t CachedNumArcs = 0;
  int NumComps = 0;
  std::vector<int> Comp;        ///< component id per op (reverse topo order)
  std::vector<int> LocalIndex;  ///< position of each op within its component
  std::vector<int> MemberStart; ///< CSR offsets into MemberList, per component
  std::vector<int> MemberList;  ///< ops grouped by component, ascending ids
  std::vector<int> IntraStart;  ///< CSR offsets into IntraArcs, per component
  std::vector<int> IntraArcs;   ///< arc ids with both endpoints in the comp
  std::vector<int> CrossStart;  ///< CSR offsets into CrossArcs, per dst comp
  std::vector<int> CrossArcs;   ///< arc ids entering the comp from outside
  std::vector<int> OmegaArcs;   ///< arc ids with omega > 0 (II-dependent)

  std::vector<char> IntraOmegaFree; ///< per component: no intra omega arc
  std::vector<size_t> BlockStart;   ///< offsets into BlockCache, per component
  std::vector<long> BlockCache; ///< closed Local blocks of intra-omega-free
                                ///< multi-op components (II-independent)
  bool BlocksValid = false;     ///< BlockCache holds this graph's closures

  // Per-II state.
  int WeightsII = -1;           ///< II the arc weights were refreshed for
  int MatrixII = -1;            ///< II of the last successful compute()
  std::vector<long> ArcW;       ///< latency - II*omega, per arc id
  std::vector<long> Local;      ///< per-component Floyd-Warshall scratch
  std::vector<long> Gather;     ///< per-component entry-value scratch
};

} // namespace lsms

#endif // LSMS_GRAPH_MINDIST_H
