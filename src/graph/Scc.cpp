#include "graph/Scc.h"

#include <algorithm>

using namespace lsms;

SccInfo lsms::computeSccs(const DepGraph &Graph) {
  const int N = Graph.numOps();
  SccInfo Info;
  Info.Component.assign(static_cast<size_t>(N), -1);
  Info.OnRecurrence.assign(static_cast<size_t>(N), false);

  std::vector<int> Index(static_cast<size_t>(N), -1);
  std::vector<int> LowLink(static_cast<size_t>(N), 0);
  std::vector<bool> OnStack(static_cast<size_t>(N), false);
  std::vector<int> Stack;
  int NextIndex = 0;

  struct Frame {
    int Node;
    size_t ArcPos;
  };
  std::vector<Frame> Dfs;

  for (int Root = 0; Root < N; ++Root) {
    if (Index[static_cast<size_t>(Root)] != -1)
      continue;
    Dfs.push_back({Root, 0});
    Index[static_cast<size_t>(Root)] = LowLink[static_cast<size_t>(Root)] =
        NextIndex++;
    Stack.push_back(Root);
    OnStack[static_cast<size_t>(Root)] = true;

    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      const auto &Succ = Graph.succArcs(F.Node);
      if (F.ArcPos < Succ.size()) {
        const int To = Graph.arc(Succ[F.ArcPos++]).Dst;
        if (Index[static_cast<size_t>(To)] == -1) {
          Index[static_cast<size_t>(To)] = LowLink[static_cast<size_t>(To)] =
              NextIndex++;
          Stack.push_back(To);
          OnStack[static_cast<size_t>(To)] = true;
          Dfs.push_back({To, 0});
        } else if (OnStack[static_cast<size_t>(To)]) {
          LowLink[static_cast<size_t>(F.Node)] =
              std::min(LowLink[static_cast<size_t>(F.Node)],
                       Index[static_cast<size_t>(To)]);
        }
        continue;
      }

      const int Node = F.Node;
      Dfs.pop_back();
      if (!Dfs.empty())
        LowLink[static_cast<size_t>(Dfs.back().Node)] =
            std::min(LowLink[static_cast<size_t>(Dfs.back().Node)],
                     LowLink[static_cast<size_t>(Node)]);

      if (LowLink[static_cast<size_t>(Node)] !=
          Index[static_cast<size_t>(Node)])
        continue;

      // Node is the root of a component: pop it off the stack.
      const int Comp = Info.NumComponents++;
      int Size = 0;
      for (;;) {
        const int Member = Stack.back();
        Stack.pop_back();
        OnStack[static_cast<size_t>(Member)] = false;
        Info.Component[static_cast<size_t>(Member)] = Comp;
        ++Size;
        if (Member == Node)
          break;
      }
      Info.Size.push_back(Size);
    }
  }

  for (int Op = 0; Op < N; ++Op)
    Info.OnRecurrence[static_cast<size_t>(Op)] =
        Info.Size[static_cast<size_t>(
            Info.Component[static_cast<size_t>(Op)])] >= 2;
  return Info;
}
