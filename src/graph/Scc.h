//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly connected components of the dependence graph, used to find the
/// operations that lie on non-trivial recurrence circuits (Section 4's
/// definition: a dependence arc from an operation to itself is a *trivial*
/// circuit and is excluded).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_GRAPH_SCC_H
#define LSMS_GRAPH_SCC_H

#include "ir/DepGraph.h"

#include <vector>

namespace lsms {

/// Result of an SCC decomposition over the dependence graph (Start/Stop
/// arcs participate but Start/Stop can never be in a cycle).
struct SccInfo {
  /// Component id per operation (components numbered in reverse topological
  /// order of the condensation).
  std::vector<int> Component;
  /// Size of each component.
  std::vector<int> Size;
  /// True when the operation is part of a non-trivial recurrence circuit
  /// (its SCC has >= 2 operations).
  std::vector<bool> OnRecurrence;
  int NumComponents = 0;
};

/// Computes SCCs with Tarjan's algorithm (iterative).
SccInfo computeSccs(const DepGraph &Graph);

} // namespace lsms

#endif // LSMS_GRAPH_SCC_H
