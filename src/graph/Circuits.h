//===----------------------------------------------------------------------===//
///
/// \file
/// Elementary-circuit enumeration (Johnson's algorithm; the paper cites
/// Tiernan [21] for the same job). RecMII can be computed by scanning each
/// elementary recurrence circuit; although there can be exponentially many,
/// "most loop bodies have very few" (Section 3.1), so enumeration is bounded
/// and the min cost-to-time ratio algorithm serves as the fallback.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_GRAPH_CIRCUITS_H
#define LSMS_GRAPH_CIRCUITS_H

#include "ir/DepGraph.h"

#include <vector>

namespace lsms {

/// An elementary circuit, as the ordered list of operations it visits
/// (each exactly once; Nodes.front() is the least-numbered member).
struct Circuit {
  std::vector<int> Nodes;
  /// Total latency and omega of the circuit when, at each hop, the arc that
  /// binds tightest for RecMII is chosen (see circuitRecMII).
  int Latency = 0;
  int Omega = 0;
};

/// Result of circuit enumeration.
struct CircuitScan {
  std::vector<Circuit> Circuits;
  /// True when enumeration stopped early because MaxCircuits was reached.
  bool Truncated = false;
};

/// Enumerates elementary circuits of the dependence graph (including
/// single-node self-loop circuits), visiting at most \p MaxCircuits.
CircuitScan findElementaryCircuits(const DepGraph &Graph,
                                   size_t MaxCircuits = 20000);

/// Minimum II imposed by one circuit: the smallest integer II such that,
/// for the best per-hop arc choice, total latency <= II * total omega.
int circuitRecMII(const DepGraph &Graph, const std::vector<int> &Nodes);

} // namespace lsms

#endif // LSMS_GRAPH_CIRCUITS_H
