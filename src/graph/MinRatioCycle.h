//===----------------------------------------------------------------------===//
///
/// \file
/// RecMII via the minimum cost-to-time ratio cycle formulation (Section
/// 3.1, citing Lawler [11]): viewing each dependence arc as having cost
/// -latency and time omega, RecMII = ceil(-R) where R is the minimum ratio.
/// Implemented as an integer binary search on II with a positive-cycle test
/// (Bellman-Ford) at each step, which handles parallel arcs exactly and is
/// robust when circuit enumeration would blow up.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_GRAPH_MINRATIOCYCLE_H
#define LSMS_GRAPH_MINRATIOCYCLE_H

#include "ir/DepGraph.h"

namespace lsms {

/// Returns the smallest II >= 0 such that no dependence circuit has total
/// latency exceeding II times its total omega. Asserts that the graph has
/// no zero-omega positive-latency cycle (the IR verifier guarantees this).
int computeRecMIIByRatio(const DepGraph &Graph);

/// True when the arc weights latency - II*omega admit a positive-weight
/// cycle, i.e. II is below some circuit's minimum.
bool hasPositiveCycle(const DepGraph &Graph, int II);

} // namespace lsms

#endif // LSMS_GRAPH_MINRATIOCYCLE_H
