#include "graph/MinDist.h"

#include <algorithm>
#include <cassert>

using namespace lsms;

bool MinDistMatrix::compute(const DepGraph &Graph, int NewII) {
  II = NewII;
  N = Graph.numOps();
  const size_t NN = static_cast<size_t>(N);
  Matrix.assign(NN * NN, NoPath);

  auto At = [this, NN](int X, int Y) -> long & {
    return Matrix[static_cast<size_t>(X) * NN + static_cast<size_t>(Y)];
  };

  for (const DepArc &Arc : Graph.arcs()) {
    const long W = static_cast<long>(Arc.Latency) -
                   static_cast<long>(II) * static_cast<long>(Arc.Omega);
    At(Arc.Src, Arc.Dst) = std::max(At(Arc.Src, Arc.Dst), W);
  }
  for (int X = 0; X < N; ++X)
    At(X, X) = std::max(At(X, X), 0L);

  // Floyd-Warshall in max-plus algebra. Valid because II >= RecMII implies
  // all cycles have non-positive weight; a positive diagonal afterwards
  // reveals the opposite and the computation is rejected.
  for (int K = 0; K < N; ++K) {
    for (int X = 0; X < N; ++X) {
      const long XK = At(X, K);
      if (XK == NoPath)
        continue;
      long *RowK = &Matrix[static_cast<size_t>(K) * NN];
      long *RowX = &Matrix[static_cast<size_t>(X) * NN];
      for (int Y = 0; Y < N; ++Y) {
        if (RowK[Y] == NoPath)
          continue;
        RowX[Y] = std::max(RowX[Y], XK + RowK[Y]);
      }
    }
  }

  for (int X = 0; X < N; ++X)
    if (At(X, X) > 0)
      return false;
  return true;
}

std::vector<long> MinDistMatrix::estarts(int StartOp) const {
  std::vector<long> E(static_cast<size_t>(N), 0);
  for (int X = 0; X < N; ++X)
    if (connected(StartOp, X))
      E[static_cast<size_t>(X)] = std::max(0L, at(StartOp, X));
  return E;
}

std::vector<long> MinDistMatrix::lstarts(int StopOp, long Cap) const {
  std::vector<long> L(static_cast<size_t>(N), Cap);
  for (int X = 0; X < N; ++X)
    if (connected(X, StopOp))
      L[static_cast<size_t>(X)] = Cap - at(X, StopOp);
  return L;
}
