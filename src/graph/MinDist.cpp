#include "graph/MinDist.h"

#include "graph/Scc.h"

#include <algorithm>
#include <cassert>

using namespace lsms;

bool MinDistMatrix::computeDense(const DepGraph &Graph, int NewII) {
  II = NewII;
  N = Graph.numOps();
  const size_t NN = static_cast<size_t>(N);
  Matrix.assign(NN * NN, NoPath);
  // The dense path leaves the SCC cache untouched; invalidate it so a later
  // compute() on another graph does not reuse stale buckets.
  CachedGraph = nullptr;
  WeightsII = -1;
  MatrixII = -1;
  BlocksValid = false;

  auto At = [this, NN](int X, int Y) -> long & {
    return Matrix[static_cast<size_t>(X) * NN + static_cast<size_t>(Y)];
  };

  for (const DepArc &Arc : Graph.arcs()) {
    const long W = static_cast<long>(Arc.Latency) -
                   static_cast<long>(II) * static_cast<long>(Arc.Omega);
    At(Arc.Src, Arc.Dst) = std::max(At(Arc.Src, Arc.Dst), W);
  }
  for (int X = 0; X < N; ++X)
    At(X, X) = std::max(At(X, X), 0L);

  // Floyd-Warshall in max-plus algebra. Valid because II >= RecMII implies
  // all cycles have non-positive weight; a positive diagonal afterwards
  // reveals the opposite and the computation is rejected.
  for (int K = 0; K < N; ++K) {
    for (int X = 0; X < N; ++X) {
      const long XK = At(X, K);
      if (XK == NoPath)
        continue;
      long *RowK = &Matrix[static_cast<size_t>(K) * NN];
      long *RowX = &Matrix[static_cast<size_t>(X) * NN];
      for (int Y = 0; Y < N; ++Y) {
        if (RowK[Y] == NoPath)
          continue;
        RowX[Y] = std::max(RowX[Y], XK + RowK[Y]);
      }
    }
  }

  for (int X = 0; X < N; ++X)
    if (At(X, X) > 0)
      return false;
  return true;
}

void MinDistMatrix::buildStructure(const DepGraph &Graph) {
  N = Graph.numOps();
  const SccInfo Sccs = computeSccs(Graph);
  NumComps = Sccs.NumComponents;
  Comp = Sccs.Component;

  // Members per component, ascending op ids (counting sort keeps the
  // within-component order deterministic).
  MemberStart.assign(static_cast<size_t>(NumComps) + 1, 0);
  for (int Op = 0; Op < N; ++Op)
    ++MemberStart[static_cast<size_t>(Comp[static_cast<size_t>(Op)]) + 1];
  for (int C = 0; C < NumComps; ++C)
    MemberStart[static_cast<size_t>(C) + 1] +=
        MemberStart[static_cast<size_t>(C)];
  MemberList.assign(static_cast<size_t>(N), 0);
  LocalIndex.assign(static_cast<size_t>(N), 0);
  {
    std::vector<int> Fill(MemberStart.begin(), MemberStart.end() - 1);
    for (int Op = 0; Op < N; ++Op) {
      const int C = Comp[static_cast<size_t>(Op)];
      const int Pos = Fill[static_cast<size_t>(C)]++;
      MemberList[static_cast<size_t>(Pos)] = Op;
      LocalIndex[static_cast<size_t>(Op)] =
          Pos - MemberStart[static_cast<size_t>(C)];
    }
  }

  // Arc buckets: intra arcs by component, cross arcs by destination
  // component, each in arc-id order.
  const std::vector<DepArc> &Arcs = Graph.arcs();
  const int M = static_cast<int>(Arcs.size());
  IntraStart.assign(static_cast<size_t>(NumComps) + 1, 0);
  CrossStart.assign(static_cast<size_t>(NumComps) + 1, 0);
  OmegaArcs.clear();
  for (int I = 0; I < M; ++I) {
    const DepArc &Arc = Arcs[static_cast<size_t>(I)];
    const int CS = Comp[static_cast<size_t>(Arc.Src)];
    const int CD = Comp[static_cast<size_t>(Arc.Dst)];
    if (CS == CD)
      ++IntraStart[static_cast<size_t>(CD) + 1];
    else
      ++CrossStart[static_cast<size_t>(CD) + 1];
    if (Arc.Omega > 0)
      OmegaArcs.push_back(I);
  }
  for (int C = 0; C < NumComps; ++C) {
    IntraStart[static_cast<size_t>(C) + 1] +=
        IntraStart[static_cast<size_t>(C)];
    CrossStart[static_cast<size_t>(C) + 1] +=
        CrossStart[static_cast<size_t>(C)];
  }
  IntraArcs.assign(IntraStart.back(), 0);
  CrossArcs.assign(CrossStart.back(), 0);
  {
    std::vector<int> IntraFill(IntraStart.begin(), IntraStart.end() - 1);
    std::vector<int> CrossFill(CrossStart.begin(), CrossStart.end() - 1);
    for (int I = 0; I < M; ++I) {
      const DepArc &Arc = Arcs[static_cast<size_t>(I)];
      const int CS = Comp[static_cast<size_t>(Arc.Src)];
      const int CD = Comp[static_cast<size_t>(Arc.Dst)];
      if (CS == CD)
        IntraArcs[static_cast<size_t>(IntraFill[static_cast<size_t>(CD)]++)] =
            I;
      else
        CrossArcs[static_cast<size_t>(CrossFill[static_cast<size_t>(CD)]++)] =
            I;
    }
  }

  // Components without intra omega arcs have II-independent local
  // closures; reserve a cache slot for every multi-op one so the ladder's
  // later rungs can skip their Floyd-Warshall entirely.
  IntraOmegaFree.assign(static_cast<size_t>(NumComps), 1);
  for (int C = 0; C < NumComps; ++C)
    for (int I = IntraStart[static_cast<size_t>(C)];
         I < IntraStart[static_cast<size_t>(C) + 1]; ++I)
      if (Arcs[static_cast<size_t>(IntraArcs[static_cast<size_t>(I)])].Omega >
          0) {
        IntraOmegaFree[static_cast<size_t>(C)] = 0;
        break;
      }
  BlockStart.assign(static_cast<size_t>(NumComps) + 1, 0);
  for (int C = 0; C < NumComps; ++C) {
    const int S = MemberStart[static_cast<size_t>(C) + 1] -
                  MemberStart[static_cast<size_t>(C)];
    const size_t Need = (IntraOmegaFree[static_cast<size_t>(C)] && S > 1)
                            ? static_cast<size_t>(S) * static_cast<size_t>(S)
                            : 0;
    BlockStart[static_cast<size_t>(C) + 1] =
        BlockStart[static_cast<size_t>(C)] + Need;
  }
  BlockCache.assign(BlockStart.back(), NoPath);
  BlocksValid = false;

  CachedGraph = &Graph;
  CachedNumArcs = Arcs.size();
  WeightsII = -1; // weights belong to the old graph
  MatrixII = -1;
}

void MinDistMatrix::refreshWeights(const DepGraph &Graph, int NewII) {
  const std::vector<DepArc> &Arcs = Graph.arcs();
  if (WeightsII < 0) {
    ArcW.assign(Arcs.size(), 0);
    for (size_t I = 0; I < Arcs.size(); ++I)
      ArcW[I] = static_cast<long>(Arcs[I].Latency) -
                static_cast<long>(NewII) * static_cast<long>(Arcs[I].Omega);
  } else if (WeightsII != NewII) {
    // Only omega-carrying arcs depend on II.
    for (int I : OmegaArcs) {
      const DepArc &Arc = Arcs[static_cast<size_t>(I)];
      ArcW[static_cast<size_t>(I)] =
          static_cast<long>(Arc.Latency) -
          static_cast<long>(NewII) * static_cast<long>(Arc.Omega);
    }
  }
  WeightsII = NewII;
}

bool MinDistMatrix::compute(const DepGraph &Graph, int NewII) {
  if (CachedGraph != &Graph || N != Graph.numOps() ||
      CachedNumArcs != Graph.arcs().size())
    buildStructure(Graph);

  // Ladder fast path: no omega arcs means no arc weight depends on II, so
  // a matrix already closed for this graph is the answer at every II.
  if (MatrixII >= 0 && OmegaArcs.empty()) {
    II = NewII;
    WeightsII = NewII;
    return true;
  }
  MatrixII = -1;

  refreshWeights(Graph, NewII);
  II = NewII;

  const size_t NN = static_cast<size_t>(N);
  Matrix.assign(NN * NN, NoPath);

  // Phase 1: close every component. A path between two operations of one
  // SCC can never leave the SCC (each intermediate both reaches and is
  // reached by the endpoints), so max-plus Floyd-Warshall over the members
  // alone is the full intra-component closure. Positive cycles are
  // intra-SCC by definition, so this phase also owns the II < RecMII
  // rejection.
  for (int C = 0; C < NumComps; ++C) {
    const int Lo = MemberStart[static_cast<size_t>(C)];
    const int S = MemberStart[static_cast<size_t>(C) + 1] - Lo;
    if (S == 1) {
      const int V = MemberList[static_cast<size_t>(Lo)];
      for (int I = IntraStart[static_cast<size_t>(C)];
           I < IntraStart[static_cast<size_t>(C) + 1]; ++I)
        if (ArcW[static_cast<size_t>(IntraArcs[static_cast<size_t>(I)])] > 0)
          return false; // positive self-arc cycle
      Matrix[static_cast<size_t>(V) * NN + static_cast<size_t>(V)] = 0;
      continue;
    }

    const size_t SS = static_cast<size_t>(S);

    // Intra-omega-free components close to the same block at every II;
    // reuse the cached closure from an earlier rung when available.
    const bool Cacheable = IntraOmegaFree[static_cast<size_t>(C)] != 0;
    if (Cacheable && BlocksValid) {
      const long *Block = &BlockCache[BlockStart[static_cast<size_t>(C)]];
      for (size_t X = 0; X < SS; ++X) {
        const int GX = MemberList[static_cast<size_t>(Lo) + X];
        long *Row = &Matrix[static_cast<size_t>(GX) * NN];
        for (size_t Y = 0; Y < SS; ++Y)
          Row[MemberList[static_cast<size_t>(Lo) + Y]] = Block[X * SS + Y];
      }
      continue;
    }

    Local.assign(SS * SS, NoPath);
    for (int I = IntraStart[static_cast<size_t>(C)];
         I < IntraStart[static_cast<size_t>(C) + 1]; ++I) {
      const int ArcIdx = IntraArcs[static_cast<size_t>(I)];
      const DepArc &Arc = CachedGraph->arc(ArcIdx);
      long &Cell = Local[static_cast<size_t>(
                             LocalIndex[static_cast<size_t>(Arc.Src)]) *
                             SS +
                         static_cast<size_t>(
                             LocalIndex[static_cast<size_t>(Arc.Dst)])];
      Cell = std::max(Cell, ArcW[static_cast<size_t>(ArcIdx)]);
    }
    for (size_t X = 0; X < SS; ++X)
      Local[X * SS + X] = std::max(Local[X * SS + X], 0L);
    for (size_t K = 0; K < SS; ++K) {
      for (size_t X = 0; X < SS; ++X) {
        const long XK = Local[X * SS + K];
        if (XK == NoPath)
          continue;
        const long *RowK = &Local[K * SS];
        long *RowX = &Local[X * SS];
        for (size_t Y = 0; Y < SS; ++Y) {
          if (RowK[Y] == NoPath)
            continue;
          RowX[Y] = std::max(RowX[Y], XK + RowK[Y]);
        }
      }
    }
    for (size_t X = 0; X < SS; ++X)
      if (Local[X * SS + X] > 0)
        return false; // positive recurrence cycle: II < RecMII
    if (Cacheable)
      std::copy(Local.begin(), Local.end(),
                BlockCache.begin() +
                    static_cast<long>(BlockStart[static_cast<size_t>(C)]));
    for (size_t X = 0; X < SS; ++X) {
      const int GX = MemberList[static_cast<size_t>(Lo) + X];
      long *Row = &Matrix[static_cast<size_t>(GX) * NN];
      for (size_t Y = 0; Y < SS; ++Y)
        Row[MemberList[static_cast<size_t>(Lo) + Y]] = Local[X * SS + Y];
    }
  }
  // Every intra-omega-free block is now closed and cached (either copied
  // from the cache or just stored into it); later rungs may reuse them.
  BlocksValid = true;

  // Phase 2: cross-component distances, one row at a time. Components are
  // numbered in reverse topological order (an arc between components goes
  // from the higher id to the lower), so scanning ids downward from the
  // source's component is one topological DAG pass: by the time component
  // C is reached, every row entry a cross arc into C can extend is final.
  // A path into C enters it exactly once, so "best entry value per member,
  // then close through the intra-component matrix" is exact.
  for (int X = 0; X < N; ++X) {
    long *Row = &Matrix[static_cast<size_t>(X) * NN];
    for (int C = Comp[static_cast<size_t>(X)] - 1; C >= 0; --C) {
      const int Lo = MemberStart[static_cast<size_t>(C)];
      const int S = MemberStart[static_cast<size_t>(C) + 1] - Lo;
      const size_t SS = static_cast<size_t>(S);
      Gather.assign(SS, NoPath);
      bool Any = false;
      for (int I = CrossStart[static_cast<size_t>(C)];
           I < CrossStart[static_cast<size_t>(C) + 1]; ++I) {
        const int ArcIdx = CrossArcs[static_cast<size_t>(I)];
        const DepArc &Arc = CachedGraph->arc(ArcIdx);
        const long DX = Row[Arc.Src];
        if (DX == NoPath)
          continue;
        long &Cell =
            Gather[static_cast<size_t>(LocalIndex[static_cast<size_t>(Arc.Dst)])];
        Cell = std::max(Cell, DX + ArcW[static_cast<size_t>(ArcIdx)]);
        Any = true;
      }
      if (!Any)
        continue;
      if (S == 1) {
        Row[MemberList[static_cast<size_t>(Lo)]] = Gather[0];
        continue;
      }
      for (size_t E = 0; E < SS; ++E) {
        const long Entry = Gather[E];
        if (Entry == NoPath)
          continue;
        const long *Intra =
            &Matrix[static_cast<size_t>(
                        MemberList[static_cast<size_t>(Lo) + E]) *
                    NN];
        for (size_t Y = 0; Y < SS; ++Y) {
          const int GY = MemberList[static_cast<size_t>(Lo) + Y];
          const long Closed = Intra[GY];
          if (Closed == NoPath)
            continue;
          Row[GY] = std::max(Row[GY], Entry + Closed);
        }
      }
    }
  }
  MatrixII = NewII;
  return true;
}

void MinDistMatrix::estarts(int StartOp, std::vector<long> &Out) const {
  Out.assign(static_cast<size_t>(N), 0);
  const long *Row = &Matrix[static_cast<size_t>(StartOp) *
                            static_cast<size_t>(N)];
  for (int X = 0; X < N; ++X) {
    const long D = Row[X];
    if (D != NoPath && D > 0)
      Out[static_cast<size_t>(X)] = D;
  }
}

std::vector<long> MinDistMatrix::estarts(int StartOp) const {
  std::vector<long> E;
  estarts(StartOp, E);
  return E;
}

void MinDistMatrix::lstarts(int StopOp, long Cap,
                            std::vector<long> &Out) const {
  Out.assign(static_cast<size_t>(N), Cap);
  for (int X = 0; X < N; ++X) {
    const long D = Matrix[static_cast<size_t>(X) * static_cast<size_t>(N) +
                          static_cast<size_t>(StopOp)];
    if (D != NoPath)
      Out[static_cast<size_t>(X)] = Cap - D;
  }
}

std::vector<long> MinDistMatrix::lstarts(int StopOp, long Cap) const {
  std::vector<long> L;
  lstarts(StopOp, Cap, L);
  return L;
}
