#include "graph/MinRatioCycle.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace lsms;

bool lsms::hasPositiveCycle(const DepGraph &Graph, int II) {
  // Longest-path relaxation from all sources simultaneously: initialize all
  // distances to 0 and relax V times; a relaxation succeeding on the V-th
  // pass proves a positive cycle.
  const int N = Graph.numOps();
  std::vector<long> Dist(static_cast<size_t>(N), 0);
  for (int Pass = 0; Pass < N; ++Pass) {
    bool Changed = false;
    for (const DepArc &Arc : Graph.arcs()) {
      const long W = static_cast<long>(Arc.Latency) -
                     static_cast<long>(II) * static_cast<long>(Arc.Omega);
      if (Dist[static_cast<size_t>(Arc.Src)] + W >
          Dist[static_cast<size_t>(Arc.Dst)]) {
        Dist[static_cast<size_t>(Arc.Dst)] =
            Dist[static_cast<size_t>(Arc.Src)] + W;
        Changed = true;
      }
    }
    if (!Changed)
      return false;
  }
  return true;
}

int lsms::computeRecMIIByRatio(const DepGraph &Graph) {
  long Hi = 1;
  // Total latency is a safe upper bound on any circuit's RecMII
  // contribution (omegas are >= 1 on every cycle).
  long LatSum = 1;
  for (const DepArc &Arc : Graph.arcs())
    LatSum += std::max(0, Arc.Latency);
  Hi = LatSum;
  assert(!hasPositiveCycle(Graph, static_cast<int>(Hi)) &&
         "graph has a zero-omega cycle");

  long Lo = 0;
  while (Lo < Hi) {
    const long Mid = Lo + (Hi - Lo) / 2;
    if (hasPositiveCycle(Graph, static_cast<int>(Mid)))
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return static_cast<int>(Lo);
}
