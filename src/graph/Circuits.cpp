#include "graph/Circuits.h"

#include "graph/Scc.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <set>

using namespace lsms;

namespace {

/// Johnson-style enumeration restricted to one SCC at a time.
class JohnsonEnumerator {
public:
  JohnsonEnumerator(const DepGraph &Graph, size_t MaxCircuits,
                    CircuitScan &Out)
      : Graph(Graph), MaxCircuits(MaxCircuits), Out(Out) {
    const int N = Graph.numOps();
    Blocked.assign(static_cast<size_t>(N), false);
    BlockMap.assign(static_cast<size_t>(N), {});
    InScope.assign(static_cast<size_t>(N), false);
  }

  void run() {
    const SccInfo Sccs = computeSccs(Graph);

    // Self-loop circuits first (trivial recurrences; they matter for
    // RecMII even though they impose no scheduling constraint beyond it).
    for (const DepArc &Arc : Graph.arcs())
      if (Arc.Src == Arc.Dst)
        SelfLoopNodes.insert(Arc.Src);
    for (int Node : SelfLoopNodes) {
      if (Out.Circuits.size() >= MaxCircuits) {
        Out.Truncated = true;
        return;
      }
      emit({Node});
    }

    // Multi-node circuits, one SCC at a time.
    for (int Comp = 0; Comp < Sccs.NumComponents; ++Comp) {
      if (Sccs.Size[static_cast<size_t>(Comp)] < 2)
        continue;
      std::vector<int> Members;
      for (int Op = 0; Op < Graph.numOps(); ++Op)
        if (Sccs.Component[static_cast<size_t>(Op)] == Comp)
          Members.push_back(Op);
      std::sort(Members.begin(), Members.end());
      for (int Root : Members) {
        if (Out.Truncated)
          return;
        // Scope: members >= Root (Johnson's "least vertex" rule).
        for (int M : Members) {
          InScope[static_cast<size_t>(M)] = M >= Root;
          Blocked[static_cast<size_t>(M)] = false;
          BlockMap[static_cast<size_t>(M)].clear();
        }
        RootNode = Root;
        Path.clear();
        circuit(Root);
      }
    }
  }

private:
  bool circuit(int Node) {
    if (Out.Truncated)
      return true;
    bool Found = false;
    Path.push_back(Node);
    Blocked[static_cast<size_t>(Node)] = true;
    for (int ArcIdx : Graph.succArcs(Node)) {
      const DepArc &Arc = Graph.arc(ArcIdx);
      const int To = Arc.Dst;
      if (To == Node || !InScope[static_cast<size_t>(To)])
        continue;
      if (To == RootNode) {
        emit(Path);
        Found = true;
        if (Out.Circuits.size() >= MaxCircuits) {
          Out.Truncated = true;
          break;
        }
      } else if (!Blocked[static_cast<size_t>(To)]) {
        if (circuit(To))
          Found = true;
        if (Out.Truncated)
          break;
      }
    }
    if (Found) {
      unblock(Node);
    } else {
      for (int ArcIdx : Graph.succArcs(Node)) {
        const int To = Graph.arc(ArcIdx).Dst;
        if (To == Node || !InScope[static_cast<size_t>(To)])
          continue;
        auto &Map = BlockMap[static_cast<size_t>(To)];
        if (std::find(Map.begin(), Map.end(), Node) == Map.end())
          Map.push_back(Node);
      }
    }
    Path.pop_back();
    return Found;
  }

  void unblock(int Node) {
    Blocked[static_cast<size_t>(Node)] = false;
    auto Map = std::move(BlockMap[static_cast<size_t>(Node)]);
    BlockMap[static_cast<size_t>(Node)].clear();
    for (int Other : Map)
      if (Blocked[static_cast<size_t>(Other)])
        unblock(Other);
  }

  void emit(const std::vector<int> &Nodes) {
    Circuit C;
    C.Nodes = Nodes;
    const int II = circuitRecMII(Graph, Nodes);
    // Record the binding latency/omega at that II for reporting: choose
    // per-hop arcs maximizing latency - II*omega.
    int Lat = 0, Om = 0;
    const size_t N = Nodes.size();
    for (size_t I = 0; I < N; ++I) {
      const int From = Nodes[I];
      const int To = Nodes[(I + 1) % N];
      int BestLat = 0, BestOm = 0;
      long BestKey = LONG_MIN;
      for (int ArcIdx : Graph.succArcs(From)) {
        const DepArc &Arc = Graph.arc(ArcIdx);
        if (Arc.Dst != To)
          continue;
        if (N == 1 && Arc.Src != Arc.Dst)
          continue;
        const long Key =
            static_cast<long>(Arc.Latency) - static_cast<long>(II) * Arc.Omega;
        if (Key > BestKey) {
          BestKey = Key;
          BestLat = Arc.Latency;
          BestOm = Arc.Omega;
        }
      }
      Lat += BestLat;
      Om += BestOm;
    }
    C.Latency = Lat;
    C.Omega = Om;
    Out.Circuits.push_back(std::move(C));
  }

  const DepGraph &Graph;
  size_t MaxCircuits;
  CircuitScan &Out;
  std::vector<bool> Blocked;
  std::vector<std::vector<int>> BlockMap;
  std::vector<bool> InScope;
  std::set<int> SelfLoopNodes;
  std::vector<int> Path;
  int RootNode = -1;
};

} // namespace

CircuitScan lsms::findElementaryCircuits(const DepGraph &Graph,
                                         size_t MaxCircuits) {
  CircuitScan Scan;
  JohnsonEnumerator(Graph, MaxCircuits, Scan).run();
  return Scan;
}

int lsms::circuitRecMII(const DepGraph &Graph, const std::vector<int> &Nodes) {
  assert(!Nodes.empty() && "empty circuit");
  const size_t N = Nodes.size();
  // Feasibility of an II: sum over hops of max_arc(latency - II*omega) <= 0.
  auto Feasible = [&](long II) {
    long Total = 0;
    for (size_t I = 0; I < N; ++I) {
      const int From = Nodes[I];
      const int To = Nodes[(I + 1) % N];
      long Best = LONG_MIN;
      for (int ArcIdx : Graph.succArcs(From)) {
        const DepArc &Arc = Graph.arc(ArcIdx);
        if (Arc.Dst != To)
          continue;
        Best = std::max(Best, static_cast<long>(Arc.Latency) -
                                  II * static_cast<long>(Arc.Omega));
      }
      assert(Best != LONG_MIN && "circuit hop without an arc");
      Total += Best;
    }
    return Total <= 0;
  };

  long Lo = 0, Hi = 1;
  while (!Feasible(Hi))
    Hi *= 2;
  while (Lo < Hi) {
    const long Mid = Lo + (Hi - Lo) / 2;
    if (Feasible(Mid))
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return static_cast<int>(Lo);
}
