//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-neutral exact-scheduling API. Two complete decision
/// procedures answer the fixed-II schedulability question behind it:
///
///  - BranchAndBound (exact/BranchAndBound.h): residue-space search with
///    an incremental positive-cycle test (the original engine);
///  - Sat (sat/SatScheduler.h): a CNF encoding over (operation, residue)
///    Booleans decided by the embedded CDCL solver with lazy
///    positive-cycle refinement.
///
/// Both engines share the same pre-checks (MinDist positive-cycle
/// rejection, non-pipelined reservation fit) and the same deterministic
/// pre-scheduling functional-unit assignment, so they must agree verdict
/// for verdict — the differential oracle and the cross-engine tests hold
/// them to that. solveAtII dispatches on ExactOptions::Engine;
/// scheduleLoopExact iterates the II ladder (in steps of 1 — exactness
/// requires visiting every II) with whichever engine is selected.
///
/// A third selection, Portfolio, combines them: branch-and-bound decides
/// feasibility first (it is fastest on the kernel suite's shallow
/// residue spaces) with the SAT engine as the fallback when its node
/// budget runs out, and the MaxLive pass runs SAT-first (the incremental
/// cardinality walk, warm-started from the incumbent schedule's pressure)
/// with branch-and-bound as the fallback, seeded with the best SAT
/// witness. Facts flow both ways across the engines — incumbents tighten
/// SAT upper bounds, SAT witnesses seed branch-and-bound incumbents — and
/// the staged dispatch is deterministic: both stages are deterministic
/// and the hand-off depends only on their verdicts, never on wall-clock.
/// ExactOptions::Stop arms cooperative cancellation for racing callers.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_EXACT_EXACTENGINE_H
#define LSMS_EXACT_EXACTENGINE_H

#include "core/IICapPolicy.h"
#include "core/Schedule.h"
#include "graph/MinDist.h"
#include "ir/DepGraph.h"

#include <atomic>
#include <chrono>
#include <vector>

namespace lsms {

/// Outcome of an exact scheduling run.
enum class ExactStatus : uint8_t {
  Optimal,    ///< schedule found and every smaller II proven infeasible
  Feasible,   ///< schedule found; some smaller II attempt hit the budget
  Infeasible, ///< no schedule exists for any II up to the cap
  Timeout,    ///< budget exhausted before a schedule was found
};

/// Returns "optimal", "feasible", "infeasible", or "timeout".
const char *exactStatusName(ExactStatus Status);

/// The exact decision procedures available behind solveAtII.
enum class ExactEngineKind : uint8_t {
  BranchAndBound, ///< residue-space branch-and-bound (the default)
  Sat,            ///< CDCL SAT over (operation, residue) Booleans
  Portfolio,      ///< staged bnb/sat combination with fact sharing
};

/// How a minimized MaxLive was proven. MinAvgMet certifies global
/// optimality at the II (the paper's schedule-independent bound is met);
/// the other two certify minimality over the *issue-time family* — every
/// dependence- and resource-feasible placement inside the static
/// [Estart, Lstart] windows of canonical makespan (computeIssueWindows) —
/// via an exhausted branch-and-bound enumeration or a SAT cardinality
/// proof that "MaxLive <= reported - 1" is unsatisfiable. The two family
/// certificates are engine-specific spellings of the same fact, so
/// cross-engine parity compares them as equivalent.
enum class MaxLiveCertificate : uint8_t {
  None,          ///< best-effort value only (budget ran out, or only an
                 ///< out-of-family incumbent reached it)
  MinAvgMet,     ///< MaxLive == MinAvg: globally minimal at this II
  BnBExhausted,  ///< family minimum by exhausted branch-and-bound search
  SatUnsatBelow, ///< family minimum by SAT UNSAT below the reported value
};

/// Returns "none", "minavg", "bnb-exhausted", or "sat-unsat-below".
const char *maxLiveCertificateName(MaxLiveCertificate Certificate);

/// True when two certificates make the same claim: equal, or the two
/// engine-specific family-minimality spellings of each other. MinAvgMet
/// and a family certificate are NOT the same claim (global vs family
/// minimality) — use certifiedMaxLiveConsistent to cross-check those.
bool maxLiveCertificatesAgree(MaxLiveCertificate A, MaxLiveCertificate B);

/// Cross-engine consistency of two certified outcomes for the same loop
/// and II. Two certificates of the same claim must name the same value
/// (family certificates both name the family minimum; MinAvgMet on both
/// sides names MinAvg). A MinAvgMet value may come from a schedule
/// OUTSIDE the issue-time family — the branch-and-bound engine's
/// incumbents can issue past the canonical makespan — so against a
/// family certificate it is only bounded: global minimum <= family
/// minimum. Outcomes without a certificate make no claim and are
/// vacuously consistent. Returns false exactly when the two proofs
/// contradict each other, i.e. at least one engine is wrong.
bool certifiedMaxLiveConsistent(long MaxLiveA, MaxLiveCertificate A,
                                long MaxLiveB, MaxLiveCertificate B);

/// Returns "bnb", "sat", or "portfolio" (the --engine spellings).
const char *exactEngineName(ExactEngineKind Engine);

/// Parses an --engine spelling ("bnb", "sat", or "portfolio"). Returns
/// false on an unknown name, leaving \p Engine untouched.
bool parseExactEngine(const char *Name, ExactEngineKind &Engine);

/// Knobs for the exact scheduler, engine selection included.
struct ExactOptions {
  /// Which decision procedure solveAtII dispatches to.
  ExactEngineKind Engine = ExactEngineKind::BranchAndBound;

  /// Branch-and-bound node budget per II attempt (a node is one candidate
  /// residue evaluated). Exhausting it turns the attempt into Timeout
  /// instead of hanging on large loop bodies.
  long NodeBudget = 1L << 18;

  /// CDCL conflict budget per II attempt for the SAT engine, counted
  /// across lazy refinement rounds; <= 0 gives up immediately.
  long SatConflictBudget = 1L << 18;

  /// Node budget for the secondary MaxLive-minimization pass when the
  /// branch-and-bound engine runs it (a node is one candidate residue or
  /// one family placement evaluated).
  long MaxLiveNodeBudget = 1L << 18;

  /// CDCL conflict budget for the SAT MaxLive-certification pass, counted
  /// across the downward cardinality probes; used when Engine is Sat.
  long MaxLiveConflictBudget = 1L << 18;

  /// II cap shared with SchedulerOptions: the ladder gives up beyond
  /// IICap.maxII(MII).
  IICapPolicy IICap;

  /// After the minimal II is found, re-run the search at that II to
  /// minimize MaxLive (RR register pressure).
  bool MinimizeMaxLive = false;

  /// Optional wall-clock deadline for the II ladder (used by the scheduling
  /// service): when set to a non-default time point, scheduleLoopExact
  /// checks it before every II attempt and reports Timeout once it has
  /// passed. The check happens only between attempts, so one attempt may
  /// overrun the deadline by its node/conflict-budgeted search time. The
  /// default (epoch) time point means "no deadline". Note that a deadline
  /// makes the result wall-clock dependent; callers that rely on the
  /// repo's byte-identical-reports guarantee must leave it unset.
  std::chrono::steady_clock::time_point Deadline{};

  /// True when a deadline is armed.
  bool hasDeadline() const {
    return Deadline != std::chrono::steady_clock::time_point{};
  }

  /// Optional cooperative cancellation token, polled by both engines on
  /// their hot loops. A set flag makes the current attempt report Timeout
  /// promptly. Unlike Deadline this is caller-driven, so determinism is
  /// exactly as deterministic as the caller's trigger; leave null for the
  /// byte-identical-reports guarantee.
  const std::atomic<bool> *Stop = nullptr;
};

/// Per-engine search statistics, unified so callers can report effort
/// without knowing which engine ran. Branch-and-bound fills Nodes; the
/// SAT engine fills the CDCL counters.
struct ExactEngineStats {
  long Nodes = 0;         ///< B&B candidate residues evaluated
  long Conflicts = 0;     ///< SAT: CDCL conflicts
  long Propagations = 0;  ///< SAT: literals enqueued by unit propagation
  long Decisions = 0;     ///< SAT: CDCL decisions
  long Restarts = 0;      ///< SAT: CDCL restarts
  long LearnedClauses = 0;///< SAT: clauses learned
  long Refinements = 0;   ///< SAT: lazy positive-cycle cuts added
  long SatVariables = 0;  ///< SAT: Booleans in the last encoding
  long SatClauses = 0;    ///< SAT: problem clauses in the last encoding

  /// The engine's primary effort metric: nodes for branch-and-bound,
  /// conflicts for SAT, their sum for the portfolio (both stages spend).
  long primary(ExactEngineKind Engine) const {
    switch (Engine) {
    case ExactEngineKind::BranchAndBound:
      return Nodes;
    case ExactEngineKind::Sat:
      return Conflicts;
    case ExactEngineKind::Portfolio:
      return Nodes + Conflicts;
    }
    return Nodes + Conflicts;
  }

  void accumulate(const ExactEngineStats &Other) {
    Nodes += Other.Nodes;
    Conflicts += Other.Conflicts;
    Propagations += Other.Propagations;
    Decisions += Other.Decisions;
    Restarts += Other.Restarts;
    LearnedClauses += Other.LearnedClauses;
    Refinements += Other.Refinements;
    SatVariables = Other.SatVariables;
    SatClauses = Other.SatClauses;
  }
};

/// Result of scheduleLoopExact.
struct ExactResult {
  ExactStatus Status = ExactStatus::Timeout;

  /// The engine that produced this result.
  ExactEngineKind Engine = ExactEngineKind::BranchAndBound;

  /// On Optimal/Feasible: a legal schedule (passes validateSchedule) at
  /// the best II found. On failure: Success=false, II = last II attempted.
  Schedule Sched;

  /// Primary search effort over all II attempts: branch-and-bound nodes,
  /// or CDCL conflicts for the SAT engine (plus the MaxLive pass's nodes
  /// when enabled — that pass is always branch-and-bound).
  long NodesExplored = 0;

  /// Detailed per-engine counters behind NodesExplored.
  ExactEngineStats EngineStats;

  /// Number of II values attempted.
  int IIAttempts = 0;

  /// MaxLive (RR pressure) of Sched; -1 when no schedule was found. With
  /// MinimizeMaxLive set, the best pressure the search found at Sched.II.
  long MaxLive = -1;

  /// True when MaxLive carries a certificate: globally minimal at Sched.II
  /// (MinAvg met) or minimal over the issue-time family (exhausted
  /// branch-and-bound or SAT unsatisfiability below it). Always equal to
  /// (Certificate != MaxLiveCertificate::None).
  bool MaxLiveProven = false;

  /// Which proof backs MaxLiveProven.
  MaxLiveCertificate Certificate = MaxLiveCertificate::None;

  /// The paper's MinAvg lower bound at Sched.II (0 when unscheduled).
  long MinAvgAtII = 0;
};

/// Result of one fixed-II MaxLive-minimization run (minimizeMaxLiveAtII).
struct MaxLiveOutcome {
  /// Feasibility verdict at the II: Optimal (schedule found, pressure pass
  /// ran), Infeasible, or Timeout (either the feasibility search or the
  /// minimization pass ran out of budget before finishing — MaxLive still
  /// holds the best found when Times is non-empty).
  ExactStatus Status = ExactStatus::Timeout;

  /// Best MaxLive found; -1 when no schedule exists / was found.
  long MaxLive = -1;

  /// The paper's MinAvg lower bound at this II.
  long MinAvg = 0;

  /// Proof backing MaxLive (None when the budget ran out or only an
  /// out-of-family incumbent achieved it).
  MaxLiveCertificate Certificate = MaxLiveCertificate::None;

  /// Schedule achieving MaxLive (validator-clean when non-empty).
  std::vector<int> Times;

  /// Engine counters accumulated over feasibility and minimization.
  ExactEngineStats Stats;
};

/// Minimizes MaxLive at the fixed \p II with the engine selected by
/// \p Options (branch-and-bound family search, or the SAT cardinality
/// certification path), independent of the II ladder. Both engines reason
/// over the same issue-time family, so on completion their minimized
/// values and certificate claims must agree — the cross-engine tests hold
/// them to that. Deterministic.
MaxLiveOutcome minimizeMaxLiveAtII(const DepGraph &Graph, int II,
                                   const ExactOptions &Options);

/// As above with a caller-provided MinDist matrix (reused across IIs).
MaxLiveOutcome minimizeMaxLiveAtII(const DepGraph &Graph, int II,
                                   const ExactOptions &Options,
                                   MinDistMatrix &MinDist);

/// Decides schedulability of \p Graph at the fixed \p II with the engine
/// selected by \p Options. Returns Optimal (schedulable; \p TimesOut
/// filled with a legal schedule), Infeasible (proven unschedulable at this
/// II), or Timeout. \p NodesExplored is incremented by the engine's
/// primary effort metric. Deterministic for either engine.
ExactStatus solveAtII(const DepGraph &Graph, int II,
                      const ExactOptions &Options, std::vector<int> &TimesOut,
                      long &NodesExplored);

/// As above, but computes the MinDist relation into the caller-provided
/// \p MinDist. Callers iterating II upward should pass the same matrix to
/// every attempt so its cached SCC condensation is reused and only the
/// omega-carrying arc weights are refreshed per candidate II; on return it
/// holds the relation at \p II whenever the status is not Infeasible-by-
/// positive-cycle.
ExactStatus solveAtII(const DepGraph &Graph, int II,
                      const ExactOptions &Options, MinDistMatrix &MinDist,
                      std::vector<int> &TimesOut, long &NodesExplored);

/// Full-detail form: accumulates every engine counter into \p Stats.
ExactStatus solveAtII(const DepGraph &Graph, int II,
                      const ExactOptions &Options, MinDistMatrix &MinDist,
                      std::vector<int> &TimesOut, ExactEngineStats &Stats);

/// Finds the provably minimal initiation interval of \p Graph by iterating
/// solveAtII upward from MII (in steps of 1 — unlike the heuristic's
/// geometric escalation, exactness requires visiting every II).
/// Deterministic: the same input always yields the same result.
ExactResult scheduleLoopExact(const DepGraph &Graph,
                              const ExactOptions &Options = ExactOptions());

/// Convenience overload building the dependence graph internally.
ExactResult scheduleLoopExact(const LoopBody &Body,
                              const MachineModel &Machine,
                              const ExactOptions &Options = ExactOptions());

} // namespace lsms

#endif // LSMS_EXACT_EXACTENGINE_H
