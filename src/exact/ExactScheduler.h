//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility forwarding header. The exact-scheduling API used to live
/// here as a single branch-and-bound scheduler; it is now split into the
/// engine-neutral interface (ExactEngine.h: ExactStatus, ExactOptions,
/// ExactResult, solveAtII, scheduleLoopExact) and the individual engines
/// (exact/BranchAndBound.h, sat/SatScheduler.h). Existing includes keep
/// compiling; new code should include exact/ExactEngine.h directly.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_EXACT_EXACTSCHEDULER_H
#define LSMS_EXACT_EXACTSCHEDULER_H

#include "exact/BranchAndBound.h"
#include "exact/ExactEngine.h"

#endif // LSMS_EXACT_EXACTSCHEDULER_H
