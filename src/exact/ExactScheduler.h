//===----------------------------------------------------------------------===//
///
/// \file
/// An exact (branch-and-bound) modulo scheduler used as a ground-truth
/// oracle for the slack heuristic. For a fixed II the solver branches over
/// issue-cycle residues modulo II — the only part of an issue time the
/// modulo resource table can see — and checks dependence feasibility with
/// an incremental positive-cycle test on the MinDist relation tightened to
/// the chosen residues. The residue space is finite, so the search is
/// complete: at a fixed II it either produces a legal schedule, proves that
/// none exists (for the deterministic pre-scheduling functional-unit
/// assignment shared with the heuristic and the validator), or gives up
/// when a node budget is exhausted. Iterating II upward from MII yields the
/// provably minimal initiation interval.
///
/// A secondary objective mode re-runs the search at the optimal II to
/// minimize MaxLive, branching in order of lifetime contribution and
/// bounding with the paper's MinAvg machinery (Section 3.2). Leaves are
/// evaluated at canonical earliest issue times; when the best pressure
/// found meets the MinAvg lower bound it is proven globally optimal.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_EXACT_EXACTSCHEDULER_H
#define LSMS_EXACT_EXACTSCHEDULER_H

#include "core/Schedule.h"
#include "graph/MinDist.h"
#include "ir/DepGraph.h"

#include <vector>

namespace lsms {

/// Outcome of an exact scheduling run.
enum class ExactStatus : uint8_t {
  Optimal,    ///< schedule found and every smaller II proven infeasible
  Feasible,   ///< schedule found; some smaller II attempt hit the budget
  Infeasible, ///< no schedule exists for any II up to the cap
  Timeout,    ///< budget exhausted before a schedule was found
};

/// Returns "optimal", "feasible", "infeasible", or "timeout".
const char *exactStatusName(ExactStatus Status);

/// Knobs for the exact scheduler.
struct ExactOptions {
  /// Branch-and-bound node budget per II attempt (a node is one candidate
  /// residue evaluated). Exhausting it turns the attempt into Timeout
  /// instead of hanging on large loop bodies.
  long NodeBudget = 1L << 18;

  /// Node budget for the secondary MaxLive-minimization pass.
  long MaxLiveNodeBudget = 1L << 18;

  /// II cap, mirroring SchedulerOptions: the search gives up beyond
  /// MaxIIFactor*MII + MaxIISlack.
  int MaxIIFactor = 2;
  int MaxIISlack = 64;

  /// After the minimal II is found, re-run the search at that II to
  /// minimize MaxLive (RR register pressure).
  bool MinimizeMaxLive = false;
};

/// Result of scheduleLoopExact.
struct ExactResult {
  ExactStatus Status = ExactStatus::Timeout;

  /// On Optimal/Feasible: a legal schedule (passes validateSchedule) at
  /// the best II found. On failure: Success=false, II = last II attempted.
  Schedule Sched;

  /// Total branch-and-bound nodes over all II attempts (and the MaxLive
  /// pass when enabled).
  long NodesExplored = 0;

  /// Number of II values attempted.
  int IIAttempts = 0;

  /// MaxLive (RR pressure) of Sched; -1 when no schedule was found. With
  /// MinimizeMaxLive set, the best pressure the search found at Sched.II.
  long MaxLive = -1;

  /// True when MaxLive meets the MinAvg lower bound, certifying a globally
  /// minimal register pressure at Sched.II. (An exhausted search without
  /// this certificate only proves minimality over earliest-issue schedules,
  /// so it is reported unproven.)
  bool MaxLiveProven = false;

  /// The paper's MinAvg lower bound at Sched.II (0 when unscheduled).
  long MinAvgAtII = 0;
};

/// Decides schedulability of \p Graph at the fixed \p II. Returns Optimal
/// (schedulable; \p TimesOut filled with a legal schedule), Infeasible
/// (proven unschedulable at this II), or Timeout. \p NodesExplored is
/// incremented by the nodes the attempt consumed. Deterministic.
ExactStatus solveAtII(const DepGraph &Graph, int II,
                      const ExactOptions &Options, std::vector<int> &TimesOut,
                      long &NodesExplored);

/// As above, but computes the MinDist relation into the caller-provided
/// \p MinDist. Callers iterating II upward should pass the same matrix to
/// every attempt so its cached SCC condensation is reused and only the
/// omega-carrying arc weights are refreshed per candidate II; on return it
/// holds the relation at \p II whenever the status is not Infeasible-by-
/// positive-cycle.
ExactStatus solveAtII(const DepGraph &Graph, int II,
                      const ExactOptions &Options, MinDistMatrix &MinDist,
                      std::vector<int> &TimesOut, long &NodesExplored);

/// Finds the provably minimal initiation interval of \p Graph by iterating
/// solveAtII upward from MII (in steps of 1 — unlike the heuristic's
/// geometric escalation, exactness requires visiting every II).
/// Deterministic: the same input always yields the same result.
ExactResult scheduleLoopExact(const DepGraph &Graph,
                              const ExactOptions &Options = ExactOptions());

/// Convenience overload building the dependence graph internally.
ExactResult scheduleLoopExact(const LoopBody &Body,
                              const MachineModel &Machine,
                              const ExactOptions &Options = ExactOptions());

} // namespace lsms

#endif // LSMS_EXACT_EXACTSCHEDULER_H
