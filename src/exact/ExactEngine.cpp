#include "exact/ExactEngine.h"

#include "bounds/Bounds.h"
#include "bounds/Lifetimes.h"
#include "core/FuAssignment.h"
#include "exact/BranchAndBound.h"
#include "sat/MaxLiveSat.h"
#include "sat/SatScheduler.h"

#include <cassert>
#include <cstring>
#include <memory>

using namespace lsms;

const char *lsms::exactStatusName(ExactStatus Status) {
  switch (Status) {
  case ExactStatus::Optimal:
    return "optimal";
  case ExactStatus::Feasible:
    return "feasible";
  case ExactStatus::Infeasible:
    return "infeasible";
  case ExactStatus::Timeout:
    return "timeout";
  }
  return "?";
}

const char *lsms::exactEngineName(ExactEngineKind Engine) {
  switch (Engine) {
  case ExactEngineKind::BranchAndBound:
    return "bnb";
  case ExactEngineKind::Sat:
    return "sat";
  case ExactEngineKind::Portfolio:
    return "portfolio";
  }
  return "?";
}

bool lsms::parseExactEngine(const char *Name, ExactEngineKind &Engine) {
  if (std::strcmp(Name, "bnb") == 0) {
    Engine = ExactEngineKind::BranchAndBound;
    return true;
  }
  if (std::strcmp(Name, "sat") == 0) {
    Engine = ExactEngineKind::Sat;
    return true;
  }
  if (std::strcmp(Name, "portfolio") == 0) {
    Engine = ExactEngineKind::Portfolio;
    return true;
  }
  return false;
}

const char *lsms::maxLiveCertificateName(MaxLiveCertificate Certificate) {
  switch (Certificate) {
  case MaxLiveCertificate::None:
    return "none";
  case MaxLiveCertificate::MinAvgMet:
    return "minavg";
  case MaxLiveCertificate::BnBExhausted:
    return "bnb-exhausted";
  case MaxLiveCertificate::SatUnsatBelow:
    return "sat-unsat-below";
  }
  return "?";
}

bool lsms::maxLiveCertificatesAgree(MaxLiveCertificate A,
                                    MaxLiveCertificate B) {
  if (A == B)
    return true;
  // The two family-minimality proofs are engine-specific spellings of the
  // same claim.
  auto IsFamily = [](MaxLiveCertificate C) {
    return C == MaxLiveCertificate::BnBExhausted ||
           C == MaxLiveCertificate::SatUnsatBelow;
  };
  return IsFamily(A) && IsFamily(B);
}

bool lsms::certifiedMaxLiveConsistent(long MaxLiveA, MaxLiveCertificate A,
                                      long MaxLiveB, MaxLiveCertificate B) {
  if (A == MaxLiveCertificate::None || B == MaxLiveCertificate::None)
    return true; // no claim, nothing to contradict
  const bool FamA = A != MaxLiveCertificate::MinAvgMet;
  const bool FamB = B != MaxLiveCertificate::MinAvgMet;
  if (FamA == FamB)
    return MaxLiveA == MaxLiveB; // same space, same minimum
  // Mixed: a MinAvg-met (global) value can only sit at or below the
  // certified family minimum.
  return FamA ? MaxLiveB <= MaxLiveA : MaxLiveA <= MaxLiveB;
}

namespace {

/// Folds one SAT engine's per-call counter deltas into the unified stats.
void accumulateSat(ExactEngineStats &Stats, const SatEngineStats &Sat) {
  Stats.Conflicts += Sat.Conflicts;
  Stats.Propagations += Sat.Propagations;
  Stats.Decisions += Sat.Decisions;
  Stats.Restarts += Sat.Restarts;
  Stats.LearnedClauses += Sat.Learned;
  Stats.Refinements += Sat.Refinements;
  Stats.SatVariables = Sat.Variables;
  Stats.SatClauses = Sat.Clauses;
}

/// Folds a MaxLive-certification run's counters into the unified stats.
void accumulateMaxLiveSat(ExactEngineStats &Stats,
                          const SatMaxLiveResult &R) {
  Stats.Conflicts += R.Stats.Conflicts;
  Stats.Propagations += R.Stats.Propagations;
  Stats.Decisions += R.Stats.Decisions;
  Stats.Restarts += R.Stats.Restarts;
  Stats.LearnedClauses += R.Stats.Learned;
  Stats.Refinements += R.Stats.Refinements;
  Stats.SatVariables = R.Stats.Variables;
  Stats.SatClauses = R.Stats.Clauses;
}

/// State shared across one II ladder: the functional-unit assignment is
/// computed once, and the SAT engine keeps a persistent incremental
/// SatIILadder so the pairwise at-most-one core and every learned clause
/// survive from rung to rung (assumption-based solving retires only the
/// rung-specific guarded clauses).
struct LadderContext {
  explicit LadderContext(const DepGraph &Graph)
      : FuInstance(assignFunctionalUnits(Graph.body(), Graph.machine())) {}

  SatIILadder &ladder(const DepGraph &Graph) {
    if (!Ladder)
      Ladder.reset(new SatIILadder(Graph, FuInstance));
    return *Ladder;
  }

  std::vector<int> FuInstance;
  std::unique_ptr<SatIILadder> Ladder; ///< created on first SAT use
};

/// Runs the engine-selected MaxLive-minimization pass at the II of
/// \p MinDist, seeded with the legal schedule in \p Times (pressure
/// \p MaxLive). Updates both in place with the best found and reports the
/// certificate earned: MinAvgMet when the final value meets the paper's
/// bound, a family certificate when the engine proved the family minimum,
/// None when the budget ran out or only an out-of-family incumbent
/// reached the value. Returns Optimal when the engine's search completed,
/// Timeout otherwise.
ExactStatus runMaxLivePass(const DepGraph &Graph, const MinDistMatrix &MinDist,
                           const ExactOptions &Options,
                           const std::vector<int> &FuInstance,
                           std::vector<int> &Times, long &MaxLive, long MinAvg,
                           ExactEngineStats &Stats,
                           MaxLiveCertificate &Certificate) {
  Certificate = MaxLiveCertificate::None;
  if (MaxLive <= MinAvg) {
    // The seed already meets the schedule-independent lower bound; no
    // search can improve on it at this II.
    Certificate = MaxLiveCertificate::MinAvgMet;
    return ExactStatus::Optimal;
  }

  const auto RunBnB = [&]() {
    bool FamilyCertified = false;
    const ExactStatus St = minimizeMaxLiveBranchAndBound(
        Graph, MinDist, FuInstance, Options.MaxLiveNodeBudget, Times, MaxLive,
        Stats.Nodes, FamilyCertified, Options.Stop);
    if (St != ExactStatus::Optimal)
      return ExactStatus::Timeout;
    if (MaxLive <= MinAvg)
      Certificate = MaxLiveCertificate::MinAvgMet;
    else if (FamilyCertified)
      Certificate = MaxLiveCertificate::BnBExhausted;
    return ExactStatus::Optimal;
  };

  if (Options.Engine == ExactEngineKind::BranchAndBound)
    return RunBnB();

  // SAT cardinality walk, warm-started from the incumbent's pressure (for
  // the portfolio that incumbent may come from the other engine — this is
  // the bnb-to-sat half of the fact sharing).
  const SatMaxLiveResult R = minimizeMaxLiveSat(
      Graph, MinDist, FuInstance, Options.MaxLiveConflictBudget, MinAvg,
      MaxLive, Options.Stop);
  accumulateMaxLiveSat(Stats, R);
  if (R.FamilyMin >= 0 && R.FamilyMin < MaxLive) {
    MaxLive = R.FamilyMin;
    Times = R.Times;
  }
  if (!R.SearchComplete) {
    if (Options.Engine != ExactEngineKind::Portfolio)
      return ExactStatus::Timeout;
    // Portfolio fallback: hand branch-and-bound the best SAT witness as
    // its incumbent (the sat-to-bnb half of the fact sharing) and let it
    // finish the family proof.
    return RunBnB();
  }
  // Search complete: every family member with pressure below the seed was
  // either found (and is now MaxLive) or refuted. Certify only when the
  // reported value is itself achieved inside the family (FamilyMin ==
  // MaxLive after the update above); a seed that no family member matches
  // stays an uncertified best-effort value.
  if (R.FamilyMin >= 0 && R.FamilyMin <= MaxLive)
    Certificate = MaxLive <= MinAvg ? MaxLiveCertificate::MinAvgMet
                                    : MaxLiveCertificate::SatUnsatBelow;
  return ExactStatus::Optimal;
}

/// The fixed-II decision procedure behind solveAtII. \p Ctx carries the
/// functional-unit assignment and the incremental SAT ladder across rungs;
/// a null context gets a one-shot local one (same verdicts, no reuse).
ExactStatus solveAtIIImpl(const DepGraph &Graph, int II,
                          const ExactOptions &Options, MinDistMatrix &MinDist,
                          std::vector<int> &TimesOut, ExactEngineStats &Stats,
                          LadderContext *Ctx) {
  // Shared pre-checks: both engines assume a positive-cycle-free MinDist
  // relation and a reservation that fits, so verdicts can only differ if
  // one of the complete decision procedures is wrong.
  if (II <= 0)
    return ExactStatus::Infeasible;
  if (!MinDist.compute(Graph, II))
    return ExactStatus::Infeasible; // II below RecMII: positive cycle
  const LoopBody &Body = Graph.body();
  const MachineModel &Machine = Graph.machine();
  for (const Operation &Op : Body.Ops)
    if (Machine.reservationCycles(Op.Opc) > II)
      return ExactStatus::Infeasible; // non-pipelined op cannot fit
  std::unique_ptr<LadderContext> OwnCtx;
  if (!Ctx) {
    OwnCtx.reset(new LadderContext(Graph));
    Ctx = OwnCtx.get();
  }

  const auto RunBnB = [&]() {
    return solveAtIIBranchAndBound(Graph, MinDist, Ctx->FuInstance,
                                   Options.NodeBudget, TimesOut, Stats.Nodes,
                                   Options.Stop);
  };
  const auto RunSat = [&]() {
    SatIILadder &Ladder = Ctx->ladder(Graph);
    Ladder.setStopFlag(Options.Stop);
    SatEngineStats Sat;
    const SatScheduleStatus St =
        Ladder.solveAtII(MinDist, Options.SatConflictBudget, TimesOut, Sat);
    accumulateSat(Stats, Sat);
    switch (St) {
    case SatScheduleStatus::Scheduled:
      return ExactStatus::Optimal;
    case SatScheduleStatus::Infeasible:
      return ExactStatus::Infeasible;
    case SatScheduleStatus::Budget:
      return ExactStatus::Timeout;
    }
    return ExactStatus::Timeout;
  };

  switch (Options.Engine) {
  case ExactEngineKind::BranchAndBound:
    return RunBnB();
  case ExactEngineKind::Sat:
    return RunSat();
  case ExactEngineKind::Portfolio: {
    // Branch-and-bound first (fastest on shallow residue spaces), the SAT
    // engine only when its node budget gave out. Both stages answer the
    // identical decision question, so the hand-off cannot change verdicts.
    const ExactStatus St = RunBnB();
    return St == ExactStatus::Timeout ? RunSat() : St;
  }
  }
  return ExactStatus::Timeout;
}

} // namespace

ExactStatus lsms::solveAtII(const DepGraph &Graph, int II,
                            const ExactOptions &Options,
                            std::vector<int> &TimesOut,
                            long &NodesExplored) {
  MinDistMatrix MinDist;
  return solveAtII(Graph, II, Options, MinDist, TimesOut, NodesExplored);
}

ExactStatus lsms::solveAtII(const DepGraph &Graph, int II,
                            const ExactOptions &Options,
                            MinDistMatrix &MinDist,
                            std::vector<int> &TimesOut,
                            long &NodesExplored) {
  ExactEngineStats Stats;
  const ExactStatus St =
      solveAtII(Graph, II, Options, MinDist, TimesOut, Stats);
  NodesExplored += Stats.primary(Options.Engine);
  return St;
}

ExactStatus lsms::solveAtII(const DepGraph &Graph, int II,
                            const ExactOptions &Options,
                            MinDistMatrix &MinDist,
                            std::vector<int> &TimesOut,
                            ExactEngineStats &Stats) {
  return solveAtIIImpl(Graph, II, Options, MinDist, TimesOut, Stats,
                       /*Ctx=*/nullptr);
}

ExactResult lsms::scheduleLoopExact(const DepGraph &Graph,
                                    const ExactOptions &Options) {
  ExactResult Result;
  Result.Engine = Options.Engine;
  Schedule &Sched = Result.Sched;
  Sched.ResMII = computeResMII(Graph.body(), Graph.machine());
  Sched.RecMII = computeRecMII(Graph);
  Sched.MII = std::max(Sched.ResMII, Sched.RecMII);

  const int MaxII = Options.IICap.maxII(Sched.MII);
  bool LowerProven = true;
  bool AnyTimeout = false;
  bool Found = false;
  // One matrix across the II ladder: the SCC condensation is II-independent
  // and stays cached, so each attempt only refreshes omega-arc weights. The
  // context likewise persists the functional-unit assignment and the
  // incremental SAT ladder, so SAT rungs share one clause core and keep
  // every learned clause.
  MinDistMatrix MinDist;
  LadderContext Ctx(Graph);
  for (int II = Sched.MII; II <= MaxII; ++II) {
    if (Options.hasDeadline() &&
        std::chrono::steady_clock::now() >= Options.Deadline) {
      LowerProven = false;
      AnyTimeout = true;
      break;
    }
    ++Result.IIAttempts;
    Sched.II = II;
    const ExactStatus St =
        solveAtIIImpl(Graph, II, Options, MinDist, Sched.Times,
                      Result.EngineStats, &Ctx);
    if (St == ExactStatus::Optimal) {
      Found = true;
      break;
    }
    if (St == ExactStatus::Timeout) {
      LowerProven = false;
      AnyTimeout = true;
    }
  }
  Result.NodesExplored = Result.EngineStats.primary(Options.Engine);

  if (!Found) {
    Result.Status =
        AnyTimeout ? ExactStatus::Timeout : ExactStatus::Infeasible;
    return Result;
  }

  Sched.Success = true;
  Result.Status = LowerProven ? ExactStatus::Optimal : ExactStatus::Feasible;
  Result.MaxLive =
      computePressure(Graph.body(), Sched.Times, Sched.II, RegClass::RR)
          .MaxLive;

  // The matrix still holds the relation at the II the search broke on.
  assert(MinDist.initiationInterval() == Sched.II &&
         "feasible II lost its MinDist matrix");
  Result.MinAvgAtII = computeMinAvg(Graph, MinDist);

  if (Options.MinimizeMaxLive) {
    // The pressure-minimization pass runs on the same engine selection
    // that decided feasibility: branch-and-bound enumerates the issue-time
    // family under incumbent pruning, the SAT engine probes "MaxLive <= k"
    // cardinality encodings downward, and the portfolio stages SAT first
    // with a branch-and-bound finisher. Either way the certificate claims
    // the same family minimum.
    runMaxLivePass(Graph, MinDist, Options, Ctx.FuInstance, Sched.Times,
                   Result.MaxLive, Result.MinAvgAtII, Result.EngineStats,
                   Result.Certificate);
    Result.NodesExplored = Result.EngineStats.primary(Options.Engine);
    Result.MaxLiveProven = Result.Certificate != MaxLiveCertificate::None;
  }
  return Result;
}

MaxLiveOutcome lsms::minimizeMaxLiveAtII(const DepGraph &Graph, int II,
                                         const ExactOptions &Options) {
  MinDistMatrix MinDist;
  return minimizeMaxLiveAtII(Graph, II, Options, MinDist);
}

MaxLiveOutcome lsms::minimizeMaxLiveAtII(const DepGraph &Graph, int II,
                                         const ExactOptions &Options,
                                         MinDistMatrix &MinDist) {
  MaxLiveOutcome Out;
  std::vector<int> Times;
  const ExactStatus St =
      solveAtII(Graph, II, Options, MinDist, Times, Out.Stats);
  if (St != ExactStatus::Optimal) {
    // At a fixed II the ladder statuses collapse to Infeasible/Timeout.
    Out.Status = St;
    return Out;
  }
  Out.MinAvg = computeMinAvg(Graph, MinDist);
  Out.MaxLive =
      computePressure(Graph.body(), Times, II, RegClass::RR).MaxLive;
  const std::vector<int> FuInstance =
      assignFunctionalUnits(Graph.body(), Graph.machine());
  Out.Status = runMaxLivePass(Graph, MinDist, Options, FuInstance, Times,
                              Out.MaxLive, Out.MinAvg, Out.Stats,
                              Out.Certificate);
  Out.Times = std::move(Times);
  return Out;
}

ExactResult lsms::scheduleLoopExact(const LoopBody &Body,
                                    const MachineModel &Machine,
                                    const ExactOptions &Options) {
  const DepGraph Graph(Body, Machine);
  return scheduleLoopExact(Graph, Options);
}
