#include "exact/ExactEngine.h"

#include "bounds/Bounds.h"
#include "bounds/Lifetimes.h"
#include "core/FuAssignment.h"
#include "exact/BranchAndBound.h"
#include "sat/SatScheduler.h"

#include <cassert>
#include <cstring>

using namespace lsms;

const char *lsms::exactStatusName(ExactStatus Status) {
  switch (Status) {
  case ExactStatus::Optimal:
    return "optimal";
  case ExactStatus::Feasible:
    return "feasible";
  case ExactStatus::Infeasible:
    return "infeasible";
  case ExactStatus::Timeout:
    return "timeout";
  }
  return "?";
}

const char *lsms::exactEngineName(ExactEngineKind Engine) {
  switch (Engine) {
  case ExactEngineKind::BranchAndBound:
    return "bnb";
  case ExactEngineKind::Sat:
    return "sat";
  }
  return "?";
}

bool lsms::parseExactEngine(const char *Name, ExactEngineKind &Engine) {
  if (std::strcmp(Name, "bnb") == 0) {
    Engine = ExactEngineKind::BranchAndBound;
    return true;
  }
  if (std::strcmp(Name, "sat") == 0) {
    Engine = ExactEngineKind::Sat;
    return true;
  }
  return false;
}

ExactStatus lsms::solveAtII(const DepGraph &Graph, int II,
                            const ExactOptions &Options,
                            std::vector<int> &TimesOut,
                            long &NodesExplored) {
  MinDistMatrix MinDist;
  return solveAtII(Graph, II, Options, MinDist, TimesOut, NodesExplored);
}

ExactStatus lsms::solveAtII(const DepGraph &Graph, int II,
                            const ExactOptions &Options,
                            MinDistMatrix &MinDist,
                            std::vector<int> &TimesOut,
                            long &NodesExplored) {
  ExactEngineStats Stats;
  const ExactStatus St =
      solveAtII(Graph, II, Options, MinDist, TimesOut, Stats);
  NodesExplored += Stats.primary(Options.Engine);
  return St;
}

ExactStatus lsms::solveAtII(const DepGraph &Graph, int II,
                            const ExactOptions &Options,
                            MinDistMatrix &MinDist,
                            std::vector<int> &TimesOut,
                            ExactEngineStats &Stats) {
  // Shared pre-checks: both engines assume a positive-cycle-free MinDist
  // relation and a reservation that fits, so verdicts can only differ if
  // one of the complete decision procedures is wrong.
  if (II <= 0)
    return ExactStatus::Infeasible;
  if (!MinDist.compute(Graph, II))
    return ExactStatus::Infeasible; // II below RecMII: positive cycle
  const LoopBody &Body = Graph.body();
  const MachineModel &Machine = Graph.machine();
  for (const Operation &Op : Body.Ops)
    if (Machine.reservationCycles(Op.Opc) > II)
      return ExactStatus::Infeasible; // non-pipelined op cannot fit
  const std::vector<int> FuInstance = assignFunctionalUnits(Body, Machine);

  if (Options.Engine == ExactEngineKind::BranchAndBound)
    return solveAtIIBranchAndBound(Graph, MinDist, FuInstance,
                                   Options.NodeBudget, TimesOut, Stats.Nodes);

  SatEngineStats Sat;
  const SatScheduleStatus St = scheduleAtIISat(
      Graph, MinDist, FuInstance, Options.SatConflictBudget, TimesOut, Sat);
  Stats.Conflicts += Sat.Conflicts;
  Stats.Propagations += Sat.Propagations;
  Stats.Decisions += Sat.Decisions;
  Stats.Restarts += Sat.Restarts;
  Stats.LearnedClauses += Sat.Learned;
  Stats.Refinements += Sat.Refinements;
  Stats.SatVariables = Sat.Variables;
  Stats.SatClauses = Sat.Clauses;
  switch (St) {
  case SatScheduleStatus::Scheduled:
    return ExactStatus::Optimal;
  case SatScheduleStatus::Infeasible:
    return ExactStatus::Infeasible;
  case SatScheduleStatus::Budget:
    return ExactStatus::Timeout;
  }
  return ExactStatus::Timeout;
}

ExactResult lsms::scheduleLoopExact(const DepGraph &Graph,
                                    const ExactOptions &Options) {
  ExactResult Result;
  Result.Engine = Options.Engine;
  Schedule &Sched = Result.Sched;
  Sched.ResMII = computeResMII(Graph.body(), Graph.machine());
  Sched.RecMII = computeRecMII(Graph);
  Sched.MII = std::max(Sched.ResMII, Sched.RecMII);

  const int MaxII = Options.IICap.maxII(Sched.MII);
  bool LowerProven = true;
  bool AnyTimeout = false;
  bool Found = false;
  // One matrix across the II ladder: the SCC condensation is II-independent
  // and stays cached, so each attempt only refreshes omega-arc weights.
  MinDistMatrix MinDist;
  for (int II = Sched.MII; II <= MaxII; ++II) {
    if (Options.hasDeadline() &&
        std::chrono::steady_clock::now() >= Options.Deadline) {
      LowerProven = false;
      AnyTimeout = true;
      break;
    }
    ++Result.IIAttempts;
    Sched.II = II;
    const ExactStatus St =
        solveAtII(Graph, II, Options, MinDist, Sched.Times,
                  Result.EngineStats);
    if (St == ExactStatus::Optimal) {
      Found = true;
      break;
    }
    if (St == ExactStatus::Timeout) {
      LowerProven = false;
      AnyTimeout = true;
    }
  }
  Result.NodesExplored = Result.EngineStats.primary(Options.Engine);

  if (!Found) {
    Result.Status =
        AnyTimeout ? ExactStatus::Timeout : ExactStatus::Infeasible;
    return Result;
  }

  Sched.Success = true;
  Result.Status = LowerProven ? ExactStatus::Optimal : ExactStatus::Feasible;
  Result.MaxLive =
      computePressure(Graph.body(), Sched.Times, Sched.II, RegClass::RR)
          .MaxLive;

  // The matrix still holds the relation at the II the search broke on.
  assert(MinDist.initiationInterval() == Sched.II &&
         "feasible II lost its MinDist matrix");
  Result.MinAvgAtII = computeMinAvg(Graph, MinDist);

  if (Options.MinimizeMaxLive) {
    // The pressure-minimization pass is branch-and-bound regardless of
    // which engine decided feasibility: it needs incumbent-driven pruning,
    // which the CNF encoding has no incremental handle on.
    const std::vector<int> FuInstance =
        assignFunctionalUnits(Graph.body(), Graph.machine());
    minimizeMaxLiveBranchAndBound(Graph, MinDist, FuInstance,
                                  Options.MaxLiveNodeBudget, Sched.Times,
                                  Result.MaxLive, Result.EngineStats.Nodes);
    Result.NodesExplored = Result.EngineStats.primary(Options.Engine);
    if (Options.Engine != ExactEngineKind::BranchAndBound)
      Result.NodesExplored += Result.EngineStats.Nodes;
    // Exhausting the residue search only proves minimality over schedules
    // issued at canonical earliest times; meeting the MinAvg lower bound is
    // what certifies a globally minimal MaxLive at this II.
    Result.MaxLiveProven = Result.MaxLive <= Result.MinAvgAtII;
  }
  return Result;
}

ExactResult lsms::scheduleLoopExact(const LoopBody &Body,
                                    const MachineModel &Machine,
                                    const ExactOptions &Options) {
  const DepGraph Graph(Body, Machine);
  return scheduleLoopExact(Graph, Options);
}
