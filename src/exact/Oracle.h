//===----------------------------------------------------------------------===//
///
/// \file
/// Differential-testing oracle for the slack heuristic: runs the paper's
/// bidirectional slack scheduler and the exact branch-and-bound scheduler
/// side by side on Table 2-calibrated random loops (seeded, deterministic),
/// validates every returned schedule with validateSchedule, and aggregates
/// the II and MaxLive gaps. This separates heuristic slack (heuristic vs
/// exact optimum) from bound slack (exact optimum vs MII / MinAvg), which
/// the schedule-independent bounds alone cannot do.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_EXACT_ORACLE_H
#define LSMS_EXACT_ORACLE_H

#include "core/SchedulerOptions.h"
#include "exact/ExactScheduler.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lsms {

/// Configuration of one oracle sweep.
struct OracleOptions {
  uint64_t Seed = 0x19930601;
  int NumLoops = 50;
  /// Loop-body size range in machine operations; exact scheduling is
  /// tractable well beyond 20 ops but the sweep defaults stay small so the
  /// suite runs as a test tier.
  int MinOps = 3;
  int MaxOps = 20;
  SchedulerOptions Heuristic = SchedulerOptions::slack();
  ExactOptions Exact;
  /// Run the exact MaxLive-minimization pass at the optimal II so the
  /// pressure gap can be reported next to the II gap.
  bool MinimizeMaxLive = true;
  /// Worker threads for the per-loop sweep. Positive = that many; 0 (the
  /// default) defers to LSMS_JOBS, else the hardware. Results are merged
  /// in loop-index order, so the report is byte-identical for every job
  /// count; 1 runs the plain sequential path.
  int Jobs = 0;
};

/// One loop's differential result.
struct OracleCase {
  uint64_t Seed = 0;        ///< generator seed of this loop
  std::string Name;
  int Ops = 0;              ///< machine operations
  int MII = 0, ResMII = 0, RecMII = 0;

  bool HeurSuccess = false;
  int HeurII = 0;
  long HeurMaxLive = -1;
  long HeurEjections = 0;   ///< total ejections across attempts
  long HeurAttempts = 0;    ///< II values the heuristic tried

  ExactStatus Status = ExactStatus::Timeout;
  int ExactII = 0;          ///< valid when Status is Optimal/Feasible
  long ExactMaxLive = -1;
  bool MaxLiveProven = false;
  /// Proof backing ExactMaxLive (None when only best-effort).
  MaxLiveCertificate Certificate = MaxLiveCertificate::None;
  long MinAvg = 0;          ///< the paper's bound at ExactII
  long Nodes = 0;           ///< branch-and-bound nodes consumed

  bool IIGapValid = false;      ///< both schedulers produced a schedule
  int IIGap = 0;                ///< HeurII - ExactII
  bool MaxLiveGapValid = false; ///< additionally, at the same II
  long MaxLiveGap = 0;          ///< HeurMaxLive - ExactMaxLive

  std::string HeurError;  ///< validateSchedule output (empty = legal)
  std::string ExactError; ///< validateSchedule output (empty = legal)
};

/// Derives the gap fields of \p Case from its scheduler outcomes. The
/// MaxLive gap is only valid when both schedulers succeeded AND landed on
/// the same II (pressure at different IIs is incomparable: a longer II
/// stretches lifetimes over more columns) AND both pressures were
/// computed; the II gap only needs both to have scheduled. Factored out
/// of the sweep so the aggregation rule itself is unit-testable.
void finalizeOracleGaps(OracleCase &Case);

/// Aggregated sweep results.
struct OracleReport {
  OracleOptions Config;
  std::vector<OracleCase> Cases;

  int HeurScheduled = 0;
  int ExactScheduled = 0;
  int ProvenOptimalII = 0;  ///< exact status Optimal
  int HeurAtExactII = 0;    ///< heuristic matched the proven/best exact II
  int HeurAtMII = 0;
  int ExactAtMII = 0;
  int MaxLiveCertified = 0; ///< cases whose ExactMaxLive carries a proof
  int CertMinAvg = 0;       ///< ... via the MinAvg bound (globally minimal)
  int CertFamily = 0;       ///< ... via a family-minimality proof
  int Timeouts = 0;
  int ValidationFailures = 0;
};

/// Runs the sweep. Deterministic: depends only on \p Options.
OracleReport runOracle(const OracleOptions &Options = OracleOptions());

/// Prints the per-loop table, the II-gap and MaxLive-gap histograms, and
/// the summary counters. Deterministic (no timings).
void printOracleReport(std::ostream &OS, const OracleReport &Report);

} // namespace lsms

#endif // LSMS_EXACT_ORACLE_H
