#include "exact/BranchAndBound.h"

#include "bounds/Bounds.h"
#include "bounds/Lifetimes.h"
#include "machine/ModuloResourceTable.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <tuple>

using namespace lsms;

namespace {

constexpr long NoPath = MinDistMatrix::NoPath;

bool isPath(long W) { return W > NoPath / 2; }

/// Smallest value >= C congruent to D modulo II. This is the tightening
/// step: once both endpoints' residues are fixed, a dependence constraint
/// t_y - t_x >= C can only be met at values congruent to
/// rho_y - rho_x (mod II), so it sharpens to tighten(C, rho_y - rho_x).
long tighten(long C, long D, long II) {
  return C + (((D - C) % II + II) % II);
}

/// Branch-and-bound search over issue-cycle residues at a fixed II.
///
/// State per search node: residues of the placed prefix, the modulo
/// resource table, and the matrix T of longest tightened-constraint paths
/// between placed operations (time-valued; transitively closed). Placing
/// an operation is feasible iff its residue finds a free resource slot and
/// the tightened constraint graph stays free of positive cycles — the
/// exact condition for integer issue times with those residues to exist.
/// Start participates as a pre-placed operation at residue 0, so T(Start,x)
/// is the canonical earliest issue time of x, used both for candidate
/// ordering and to materialize the schedule at leaves.
class ExactSolver {
public:
  ExactSolver(const DepGraph &Graph, const MinDistMatrix &MinDist,
              const std::vector<int> &FuInstance, long NodeBudget,
              const std::atomic<bool> *Stop)
      : Graph(Graph), Body(Graph.body()), Machine(Graph.machine()),
        MinDist(MinDist), FuInstance(FuInstance), NodeBudget(NodeBudget),
        Stop(Stop), II(MinDist.initiationInterval()), N(Body.numOps()),
        Mrt(Machine, II) {}

  /// Decides schedulability; fills \p TimesOut on success.
  ExactStatus solve(std::vector<int> &TimesOut, long &Nodes);

  /// Minimizes MaxLive at this II, seeded with the legal schedule in
  /// \p TimesInOut. Returns Optimal when the search space was exhausted
  /// (or the MinAvg bound was met), Timeout when the node budget ran out
  /// first; \p TimesInOut and \p MaxLiveInOut hold the best found either
  /// way. \p FamilyCertified reports minimality over the issue-time
  /// family (see minimizeMaxLiveBranchAndBound).
  ExactStatus minimize(std::vector<int> &TimesInOut, long &MaxLiveInOut,
                       long &Nodes, bool &FamilyCertified);

private:
  enum class Mode : uint8_t { Feasibility, Pressure };

  void buildOrder(Mode M);
  bool dfs(size_t Depth);
  bool tryPlace(int V, int Rho, size_t Depth);
  void leafTimes(const std::vector<long> &T, std::vector<int> &TimesOut) const;
  long pressureLowerBound(const std::vector<long> &T) const;
  void familyDfs(size_t Idx, const std::vector<long> &T);
  void evaluateFamilyMember();

  const DepGraph &Graph;
  const LoopBody &Body;
  const MachineModel &Machine;
  const MinDistMatrix &MinDist;
  const std::vector<int> &FuInstance;
  const long NodeBudget;
  const std::atomic<bool> *Stop; ///< cooperative cancellation, may be null
  const int II;
  const int N;

  ModuloResourceTable Mrt;
  Mode SearchMode = Mode::Feasibility;
  std::vector<long> EstartBuf, LstartBuf; ///< static-window scratch
  std::vector<int> Order;     ///< real operations, in branch order
  std::vector<int> Rho;       ///< residue per op; -1 unplaced
  std::vector<int> Placed;    ///< Start + placed prefix
  std::vector<std::vector<long>> TStack; ///< T matrix per depth
  long NodesUsed = 0;
  bool TimedOut = false;

  // Pressure mode state.
  bool StopSearch = false;
  long BestMaxLive = LONG_MAX;
  long GlobalMinAvg = 0;
  std::vector<int> BestTimes;
  std::vector<int> FoundTimes; ///< feasibility-mode result
  /// Flow-arc indices per RR value, for the MinAvg-style bound.
  std::vector<std::vector<int>> FlowArcsOf;
  /// Best pressure over issue-time-family members (LONG_MAX when no
  /// member was evaluated). BestMaxLive can beat it only through an
  /// incumbent or canonical leaf issuing past the canonical makespan.
  long FamilyBest = LONG_MAX;
  std::vector<int> RealOps;    ///< real ops ascending, family branch order
  std::vector<long> FamTime;   ///< per-op issue time of the member prefix
  std::vector<int> MemberBuf;  ///< materialized member, pseudo-ops derived
  std::vector<int> LeafBuf;    ///< pressure-leaf canonical times scratch
  PressureScratch Pressure;    ///< computeMaxLive buffers, reused per leaf
  // tryPlace scratch: all uses finish before the recursive dfs call, so
  // one set of buffers serves every depth.
  std::vector<long> InBuf, OutBuf, ABuf, BBuf;

  /// True once the external stop token fires; folded into TimedOut so
  /// both report the budget-style "no claim" verdict.
  bool stopRequested() {
    if (Stop && Stop->load(std::memory_order_relaxed)) {
      TimedOut = true;
      return true;
    }
    return false;
  }
};

void ExactSolver::buildOrder(Mode M) {
  SearchMode = M;
  Order.clear();
  for (int X = 0; X < N; ++X)
    if (Machine.unitFor(Body.op(X).Opc) != FuKind::None)
      Order.push_back(X);

  // Static windows at this II: slack against the critical path. Most
  // constrained first keeps the tree narrow near the root. The shared
  // computeIssueWindows definition is what makes the family evaluated
  // here the same space the SAT certification path encodes.
  const int Start = Body.startOp();
  IssueWindows Windows = computeIssueWindows(Body, MinDist);
  EstartBuf = std::move(Windows.Estart);
  LstartBuf = std::move(Windows.Lstart);
  const std::vector<long> &Estart = EstartBuf;
  const std::vector<long> &Lstart = LstartBuf;
  std::vector<long> Slack(static_cast<size_t>(N), 0);
  std::vector<long> LifeLB(static_cast<size_t>(N), 0);
  for (int X : Order) {
    Slack[static_cast<size_t>(X)] =
        Lstart[static_cast<size_t>(X)] - Estart[static_cast<size_t>(X)];
    const int Result = Body.op(X).Result;
    if (M == Mode::Pressure && Result >= 0 &&
        Body.value(Result).Class == RegClass::RR)
      LifeLB[static_cast<size_t>(X)] = computeMinLT(Graph, MinDist, Result);
  }
  std::sort(Order.begin(), Order.end(), [&](int A, int B) {
    // Pressure mode branches in order of lifetime contribution so the
    // MinAvg-style bound bites early; feasibility mode by tightness alone.
    return std::make_tuple(-LifeLB[static_cast<size_t>(A)],
                           Slack[static_cast<size_t>(A)], A) <
           std::make_tuple(-LifeLB[static_cast<size_t>(B)],
                           Slack[static_cast<size_t>(B)], B);
  });

  Rho.assign(static_cast<size_t>(N), -1);
  Rho[static_cast<size_t>(Start)] = 0;
  Placed.assign(1, Start);
  Mrt.clear();
  TStack.assign(Order.size() + 1,
                std::vector<long>(static_cast<size_t>(N) *
                                      static_cast<size_t>(N),
                                  NoPath));
  TStack[0][static_cast<size_t>(Start) * N + Start] = 0;
  NodesUsed = 0;
  TimedOut = false;
  StopSearch = false;

  if (M == Mode::Pressure) {
    FlowArcsOf.assign(static_cast<size_t>(Body.numValues()), {});
    const auto &Arcs = Graph.arcs();
    for (int I = 0; I < static_cast<int>(Arcs.size()); ++I) {
      const DepArc &Arc = Arcs[static_cast<size_t>(I)];
      if (Arc.Kind == DepKind::Flow && Arc.Value >= 0 &&
          Body.value(Arc.Value).Class == RegClass::RR)
        FlowArcsOf[static_cast<size_t>(Arc.Value)].push_back(I);
    }
    GlobalMinAvg = computeMinAvg(Graph, MinDist);
    RealOps.clear();
    for (int X = 0; X < N; ++X)
      if (Machine.unitFor(Body.op(X).Opc) != FuKind::None)
        RealOps.push_back(X);
    FamTime.assign(static_cast<size_t>(N), 0);
    FamilyBest = LONG_MAX;
  }
}

/// Canonical earliest issue times of a complete residue assignment:
/// placed operations at their longest tightened path from Start; the
/// pseudo-operations (Stop) at the earliest cycle consistent with every
/// placed operation, which MinDist maximality shows always satisfies the
/// remaining constraints.
void ExactSolver::leafTimes(const std::vector<long> &T,
                            std::vector<int> &TimesOut) const {
  const int Start = Body.startOp();
  TimesOut.assign(static_cast<size_t>(N), 0);
  for (int X = 0; X < N; ++X) {
    if (X == Start)
      continue;
    if (Rho[static_cast<size_t>(X)] >= 0) {
      const long TX = T[static_cast<size_t>(Start) * N + X];
      assert(isPath(TX) && TX >= 0 && "placed op unreachable from Start");
      TimesOut[static_cast<size_t>(X)] = static_cast<int>(TX);
    }
  }
  for (int X = 0; X < N; ++X) {
    if (X == Start || Rho[static_cast<size_t>(X)] >= 0)
      continue;
    long TX = std::max(0L, MinDist.at(Start, X));
    for (int Y : Placed) {
      if (!MinDist.connected(Y, X))
        continue;
      TX = std::max(TX, static_cast<long>(
                            TimesOut[static_cast<size_t>(Y)]) +
                            MinDist.at(Y, X));
    }
    TimesOut[static_cast<size_t>(X)] = static_cast<int>(TX);
  }
}

/// ceil(sum of per-value lifetime lower bounds / II) — the paper's MinAvg
/// bound, sharpened for placed def/use pairs by the tightened path matrix.
long ExactSolver::pressureLowerBound(const std::vector<long> &T) const {
  long Sum = 0;
  for (const Value &V : Body.Values) {
    if (V.Class != RegClass::RR ||
        FlowArcsOf[static_cast<size_t>(V.Id)].empty())
      continue;
    long LT = 0;
    for (int ArcIdx : FlowArcsOf[static_cast<size_t>(V.Id)]) {
      const DepArc &Arc = Graph.arc(ArcIdx);
      long Dist = MinDist.at(Arc.Src, Arc.Dst);
      if (Rho[static_cast<size_t>(Arc.Src)] >= 0 &&
          Rho[static_cast<size_t>(Arc.Dst)] >= 0) {
        const long Closed = T[static_cast<size_t>(Arc.Src) * N + Arc.Dst];
        if (isPath(Closed))
          Dist = std::max(Dist, Closed);
      }
      LT = std::max(LT, static_cast<long>(Arc.Omega) * II + Dist);
    }
    Sum += LT;
  }
  return (Sum + II - 1) / II;
}

/// Enumerates the leaf family over RealOps[Idx..]: candidate times for an
/// op are its canonical leaf time (pre-loaded in FamTime) plus multiples
/// of II up to its static Lstart, checked pairwise against the assigned
/// prefix through the closed tightened matrix \p T — which carries
/// exactly the constraints this residue class implies, so no member is
/// excluded and every complete assignment is dependence-feasible (shifts
/// by II preserve residues, so the resource table stays satisfied too).
/// Every candidate time costs one node from the shared budget.
void ExactSolver::familyDfs(size_t Idx, const std::vector<long> &T) {
  if (TimedOut || StopSearch || stopRequested())
    return;
  if (Idx == RealOps.size()) {
    evaluateFamilyMember();
    return;
  }
  const int X = RealOps[Idx];
  const long Base = FamTime[static_cast<size_t>(X)];
  for (long TX = Base; TX <= LstartBuf[static_cast<size_t>(X)]; TX += II) {
    if (TimedOut || StopSearch)
      break;
    if (++NodesUsed > NodeBudget) {
      TimedOut = true;
      break;
    }
    // Pairwise screen against the assigned prefix. A "too late" violation
    // (some earlier op forces X at or before an already-passed time) only
    // worsens as TX grows, so it ends this level; a "too early" one is
    // cured by a later candidate.
    bool TooLate = false, TooEarly = false;
    for (size_t J = 0; J < Idx && !TooLate && !TooEarly; ++J) {
      const int Y = RealOps[J];
      const long TY = FamTime[static_cast<size_t>(Y)];
      const long XY = T[static_cast<size_t>(X) * N + Y];
      const long YX = T[static_cast<size_t>(Y) * N + X];
      if (isPath(XY) && TY - TX < XY)
        TooLate = true;
      else if (isPath(YX) && TX - TY < YX)
        TooEarly = true;
    }
    if (TooLate)
      break;
    if (TooEarly)
      continue;
    FamTime[static_cast<size_t>(X)] = TX;
    familyDfs(Idx + 1, T);
  }
  FamTime[static_cast<size_t>(X)] = Base; // restore for sibling branches
}

/// Scores one complete family member: pseudo-operations are re-derived at
/// the earliest cycle consistent with the shifted real ops (they carry no
/// operands, so they cannot change RR pressure), then the member competes
/// for both the incumbent and the family minimum.
void ExactSolver::evaluateFamilyMember() {
  const int Start = Body.startOp();
  MemberBuf.assign(static_cast<size_t>(N), 0);
  for (int X : RealOps)
    MemberBuf[static_cast<size_t>(X)] =
        static_cast<int>(FamTime[static_cast<size_t>(X)]);
  for (int X = 0; X < N; ++X) {
    if (X == Start || Rho[static_cast<size_t>(X)] >= 0)
      continue;
    long TX = std::max(0L, MinDist.at(Start, X));
    for (int Y : RealOps)
      if (MinDist.connected(Y, X))
        TX = std::max(TX, FamTime[static_cast<size_t>(Y)] +
                              MinDist.at(Y, X));
    MemberBuf[static_cast<size_t>(X)] = static_cast<int>(TX);
  }
  const long MaxLive =
      computeMaxLive(Body, MemberBuf, II, RegClass::RR, Pressure);
  FamilyBest = std::min(FamilyBest, MaxLive);
  if (MaxLive < BestMaxLive) {
    BestMaxLive = MaxLive;
    BestTimes = MemberBuf;
    if (BestMaxLive <= GlobalMinAvg)
      StopSearch = true; // met the paper's lower bound: proven optimal
  }
}

bool ExactSolver::tryPlace(int V, int Rho_, size_t Depth) {
  const std::vector<long> &T = TStack[Depth];
  std::vector<long> &TN = TStack[Depth + 1];

  // Incremental feasibility: direct tightened constraints between V and
  // every placed op, closed through the existing matrix. A positive cycle
  // (necessarily a multiple of II) means no integer times realize these
  // residues.
  std::vector<long> &In = InBuf, &Out = OutBuf, &A = ABuf, &B = BBuf;
  In.assign(static_cast<size_t>(N), NoPath);
  Out.assign(static_cast<size_t>(N), NoPath);
  A.assign(static_cast<size_t>(N), NoPath);
  B.assign(static_cast<size_t>(N), NoPath);
  for (int X : Placed) {
    if (MinDist.connected(X, V))
      A[static_cast<size_t>(X)] =
          tighten(MinDist.at(X, V),
                  Rho_ - Rho[static_cast<size_t>(X)], II);
    if (MinDist.connected(V, X))
      B[static_cast<size_t>(X)] =
          tighten(MinDist.at(V, X),
                  Rho[static_cast<size_t>(X)] - Rho_, II);
  }
  for (int X : Placed) {
    long InX = A[static_cast<size_t>(X)];
    long OutX = B[static_cast<size_t>(X)];
    for (int W : Placed) {
      const long XW = T[static_cast<size_t>(X) * N + W];
      const long WX = T[static_cast<size_t>(W) * N + X];
      if (isPath(XW) && isPath(A[static_cast<size_t>(W)]))
        InX = std::max(InX, XW + A[static_cast<size_t>(W)]);
      if (isPath(WX) && isPath(B[static_cast<size_t>(W)]))
        OutX = std::max(OutX, B[static_cast<size_t>(W)] + WX);
    }
    In[static_cast<size_t>(X)] = InX;
    Out[static_cast<size_t>(X)] = OutX;
    if (isPath(InX) && isPath(OutX) && InX + OutX > 0)
      return false; // positive cycle through V
  }

  // Commit: vertex-incremental transitive closure.
  TN = T;
  for (int X : Placed) {
    const long InX = In[static_cast<size_t>(X)];
    TN[static_cast<size_t>(X) * N + V] = InX;
    TN[static_cast<size_t>(V) * N + X] = Out[static_cast<size_t>(X)];
    if (!isPath(InX))
      continue;
    for (int Y : Placed) {
      const long OutY = Out[static_cast<size_t>(Y)];
      if (!isPath(OutY))
        continue;
      long &Cell = TN[static_cast<size_t>(X) * N + Y];
      Cell = std::max(Cell, InX + OutY);
    }
  }
  TN[static_cast<size_t>(V) * N + V] = 0;

  const Operation &Op = Body.op(V);
  Mrt.place(Op.Opc, Machine.unitFor(Op.Opc), FuInstance[static_cast<size_t>(V)],
            Rho_);
  Rho[static_cast<size_t>(V)] = Rho_;
  Placed.push_back(V);

  bool Found = false;
  if (SearchMode != Mode::Pressure ||
      pressureLowerBound(TN) < BestMaxLive)
    Found = dfs(Depth + 1);

  Placed.pop_back();
  Rho[static_cast<size_t>(V)] = -1;
  Mrt.remove(Op.Opc, Machine.unitFor(Op.Opc),
             FuInstance[static_cast<size_t>(V)], Rho_);
  return Found;
}

bool ExactSolver::dfs(size_t Depth) {
  if (TimedOut || StopSearch || stopRequested())
    return false;

  if (Depth == Order.size()) {
    if (SearchMode == Mode::Feasibility) {
      leafTimes(TStack[Depth], FoundTimes);
      return true;
    }
    // A pressure-mode leaf is a whole issue-time family: every combination
    // of per-op shifts by multiples of II from the canonical earliest times
    // that stays inside the static windows and the leaf's closed tightened
    // matrix. familyDfs enumerates it, canonical member first. A residue
    // assignment whose canonical times overrun some Lstart has an empty
    // family; its canonical leaf is still evaluated so the incumbent stays
    // at least as good as the earliest-time search found.
    std::vector<int> &Times = LeafBuf;
    leafTimes(TStack[Depth], Times);
    bool InFamily = true;
    for (int X : RealOps)
      InFamily = InFamily && Times[static_cast<size_t>(X)] <=
                                 LstartBuf[static_cast<size_t>(X)];
    if (!InFamily) {
      const long MaxLive =
          computeMaxLive(Body, Times, II, RegClass::RR, Pressure);
      if (MaxLive < BestMaxLive) {
        BestMaxLive = MaxLive;
        BestTimes = Times;
        if (BestMaxLive <= GlobalMinAvg)
          StopSearch = true; // met the paper's lower bound: proven optimal
      }
      return false;
    }
    for (int X : RealOps)
      FamTime[static_cast<size_t>(X)] = Times[static_cast<size_t>(X)];
    familyDfs(0, TStack[Depth]);
    return false;
  }

  const int V = Order[Depth];
  const Operation &Op = Body.op(V);
  const FuKind Kind = Machine.unitFor(Op.Opc);
  const int Instance = FuInstance[static_cast<size_t>(V)];
  const std::vector<long> &T = TStack[Depth];
  const int Start = Body.startOp();

  // Candidate residues, scanned from the dynamic earliest start so the
  // first solutions found resemble earliest-issue schedules.
  long Estart = std::max(0L, MinDist.at(Start, V));
  for (int X : Placed) {
    if (!MinDist.connected(X, V))
      continue;
    const long TX = T[static_cast<size_t>(Start) * N + X];
    if (isPath(TX))
      Estart = std::max(Estart, TX + MinDist.at(X, V));
  }

  for (int J = 0; J < II; ++J) {
    if (TimedOut || StopSearch)
      return false;
    if (++NodesUsed > NodeBudget) {
      TimedOut = true;
      return false;
    }
    const int Rho_ = static_cast<int>((Estart + J) % II);
    if (!Mrt.canPlace(Op.Opc, Kind, Instance, Rho_))
      continue;
    if (tryPlace(V, Rho_, Depth) && SearchMode == Mode::Feasibility)
      return true;
  }
  return false;
}

ExactStatus ExactSolver::solve(std::vector<int> &TimesOut, long &Nodes) {
  buildOrder(Mode::Feasibility);
  const bool Found = dfs(0);
  Nodes += NodesUsed;
  if (Found) {
    TimesOut = FoundTimes;
    return ExactStatus::Optimal;
  }
  return TimedOut ? ExactStatus::Timeout : ExactStatus::Infeasible;
}

ExactStatus ExactSolver::minimize(std::vector<int> &TimesInOut,
                                  long &MaxLiveInOut, long &Nodes,
                                  bool &FamilyCertified) {
  buildOrder(Mode::Pressure);
  BestTimes = TimesInOut;
  BestMaxLive = MaxLiveInOut;
  FamilyCertified = false;
  if (BestMaxLive <= GlobalMinAvg) {
    Nodes += NodesUsed;
    return ExactStatus::Optimal; // incumbent already meets the bound
  }
  // A seed inside the issue windows is itself a family member achieving
  // MaxLiveInOut: it is a legal schedule (dependence- and resource-
  // feasible) and the window check adds canonical makespan. Record it so
  // exhaustion can certify a tie with the seed, not just a strict
  // improvement — without this, a search whose bound prunes every
  // tying residue class would exhaust uncertified.
  if (TimesInOut.size() == static_cast<size_t>(N) &&
      TimesInOut[static_cast<size_t>(Body.startOp())] == 0) {
    bool SeedInFamily = true;
    for (int X : RealOps)
      SeedInFamily = SeedInFamily &&
                     TimesInOut[static_cast<size_t>(X)] >=
                         EstartBuf[static_cast<size_t>(X)] &&
                     TimesInOut[static_cast<size_t>(X)] <=
                         LstartBuf[static_cast<size_t>(X)];
    if (SeedInFamily)
      FamilyBest = BestMaxLive;
  }
  dfs(0);
  Nodes += NodesUsed;
  TimesInOut = BestTimes;
  MaxLiveInOut = BestMaxLive;
  if (TimedOut)
    return ExactStatus::Timeout;
  // Exhaustion proves no family member beats BestMaxLive (pruned subtrees
  // were bounded at or above it). When a member achieving it was found,
  // BestMaxLive is therefore the family minimum; otherwise only the
  // incumbent — possibly issuing past the canonical makespan — reached
  // it, and the family minimum is merely known to be no smaller.
  FamilyCertified = FamilyBest <= BestMaxLive;
  return ExactStatus::Optimal;
}

} // namespace

ExactStatus lsms::solveAtIIBranchAndBound(const DepGraph &Graph,
                                          const MinDistMatrix &MinDist,
                                          const std::vector<int> &FuInstance,
                                          long NodeBudget,
                                          std::vector<int> &TimesOut,
                                          long &Nodes,
                                          const std::atomic<bool> *Stop) {
  assert(MinDist.initiationInterval() > 0 &&
         MinDist.numOps() == Graph.numOps() &&
         "MinDist must hold the relation at the candidate II");
  ExactSolver Solver(Graph, MinDist, FuInstance, NodeBudget, Stop);
  return Solver.solve(TimesOut, Nodes);
}

ExactStatus lsms::minimizeMaxLiveBranchAndBound(
    const DepGraph &Graph, const MinDistMatrix &MinDist,
    const std::vector<int> &FuInstance, long NodeBudget,
    std::vector<int> &TimesInOut, long &MaxLiveInOut, long &Nodes,
    bool &FamilyCertifiedOut, const std::atomic<bool> *Stop) {
  ExactSolver Solver(Graph, MinDist, FuInstance, NodeBudget, Stop);
  return Solver.minimize(TimesInOut, MaxLiveInOut, Nodes,
                         FamilyCertifiedOut);
}
