#include "exact/Oracle.h"

#include "bounds/Lifetimes.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "support/Histogram.h"
#include "support/ParallelFor.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <ostream>

using namespace lsms;

namespace {

/// Runs both schedulers on one loop. Pure: touches nothing but its
/// arguments, so the sweep can fan out across workers.
OracleCase runOracleCase(const LoopBody &Body, const MachineModel &Machine,
                         const OracleOptions &Options,
                         const ExactOptions &Exact) {
  const DepGraph Graph(Body, Machine);
  OracleCase Case;
  Case.Seed = Options.Seed;
  Case.Name = Body.Name;
  Case.Ops = Body.numMachineOps();

  const Schedule Heur = scheduleLoop(Graph, Options.Heuristic);
  Case.MII = Heur.MII;
  Case.ResMII = Heur.ResMII;
  Case.RecMII = Heur.RecMII;
  Case.HeurSuccess = Heur.Success;
  Case.HeurEjections = Heur.Stats.Ejections;
  Case.HeurAttempts = Heur.Stats.AttemptsTried;
  if (Heur.Success) {
    Case.HeurII = Heur.II;
    Case.HeurMaxLive =
        computePressure(Body, Heur.Times, Heur.II, RegClass::RR).MaxLive;
    Case.HeurError = validateSchedule(Graph, Heur);
  }

  const ExactResult Ex = scheduleLoopExact(Graph, Exact);
  Case.Status = Ex.Status;
  Case.Nodes = Ex.NodesExplored;
  if (Ex.Sched.Success) {
    Case.ExactII = Ex.Sched.II;
    Case.ExactMaxLive = Ex.MaxLive;
    Case.MaxLiveProven = Ex.MaxLiveProven;
    Case.Certificate = Ex.Certificate;
    Case.MinAvg = Ex.MinAvgAtII;
    Case.ExactError = validateSchedule(Graph, Ex.Sched);
  }

  finalizeOracleGaps(Case);
  return Case;
}

/// Short certificate spelling for the per-loop table column.
const char *certColumn(MaxLiveCertificate Certificate) {
  switch (Certificate) {
  case MaxLiveCertificate::None:
    return "-";
  case MaxLiveCertificate::MinAvgMet:
    return "minavg";
  case MaxLiveCertificate::BnBExhausted:
    return "bnb";
  case MaxLiveCertificate::SatUnsatBelow:
    return "sat";
  }
  return "?";
}

} // namespace

void lsms::finalizeOracleGaps(OracleCase &Case) {
  const bool ExactSuccess = Case.Status == ExactStatus::Optimal ||
                            Case.Status == ExactStatus::Feasible;
  Case.IIGapValid = Case.HeurSuccess && ExactSuccess;
  Case.IIGap = Case.IIGapValid ? Case.HeurII - Case.ExactII : 0;
  // Pressure at different IIs is incomparable — MaxLive counts lifetimes
  // folded over II columns, so a larger II changes the quantity itself,
  // not just the schedule. Aggregate the gap only at equal II, and only
  // when both sides actually computed a pressure.
  Case.MaxLiveGapValid = Case.IIGapValid && Case.IIGap == 0 &&
                         Case.HeurMaxLive >= 0 && Case.ExactMaxLive >= 0;
  Case.MaxLiveGap =
      Case.MaxLiveGapValid ? Case.HeurMaxLive - Case.ExactMaxLive : 0;
}

OracleReport lsms::runOracle(const OracleOptions &Options) {
  OracleReport Report;
  Report.Config = Options;

  const std::vector<LoopBody> Suite = buildOracleSuite(
      Options.NumLoops, Options.MinOps, Options.MaxOps, Options.Seed);

  ExactOptions Exact = Options.Exact;
  Exact.MinimizeMaxLive = Options.MinimizeMaxLive;

  // DepGraph keeps a reference to the machine, so it must outlive the loop.
  const MachineModel Machine = MachineModel::cydra5();

  // Per-loop results land in disjoint slots; the index-ordered sharding
  // plus the sequential aggregation below keep the report byte-identical
  // for every job count.
  Report.Cases.resize(Suite.size());
  parallelFor(resolveJobs(Options.Jobs), static_cast<int>(Suite.size()),
              [&](int I) {
                Report.Cases[static_cast<size_t>(I)] = runOracleCase(
                    Suite[static_cast<size_t>(I)], Machine, Options, Exact);
              });

  for (const OracleCase &Case : Report.Cases) {
    const bool ExactSuccess = Case.Status == ExactStatus::Optimal ||
                              Case.Status == ExactStatus::Feasible;
    if (Case.HeurSuccess) {
      ++Report.HeurScheduled;
      if (Case.HeurII == Case.MII)
        ++Report.HeurAtMII;
    }
    if (ExactSuccess) {
      ++Report.ExactScheduled;
      if (Case.Status == ExactStatus::Optimal)
        ++Report.ProvenOptimalII;
      if (Case.ExactII == Case.MII)
        ++Report.ExactAtMII;
    } else if (Case.Status == ExactStatus::Timeout) {
      ++Report.Timeouts;
    }
    if (Case.IIGapValid && Case.IIGap == 0)
      ++Report.HeurAtExactII;
    if (Case.Certificate != MaxLiveCertificate::None) {
      ++Report.MaxLiveCertified;
      if (Case.Certificate == MaxLiveCertificate::MinAvgMet)
        ++Report.CertMinAvg;
      else
        ++Report.CertFamily;
    }
    if (!Case.HeurError.empty() || !Case.ExactError.empty())
      ++Report.ValidationFailures;
  }
  return Report;
}

void lsms::printOracleReport(std::ostream &OS, const OracleReport &Report) {
  TextTable T;
  T.setHeader({"loop", "ops", "MII", "II slk", "II ex", "status", "dII",
               "ML slk", "ML ex", "MinAvg", "cert", "dML", "ej", "nodes"});
  Histogram IIGaps(1, 4), MaxLiveGaps(1, 16);
  std::vector<double> IIGapSamples, MaxLiveGapSamples;
  for (const OracleCase &Case : Report.Cases) {
    T.addRow({Case.Name, std::to_string(Case.Ops), std::to_string(Case.MII),
              Case.HeurSuccess ? std::to_string(Case.HeurII) : "-",
              Case.Status == ExactStatus::Optimal ||
                      Case.Status == ExactStatus::Feasible
                  ? std::to_string(Case.ExactII)
                  : "-",
              exactStatusName(Case.Status),
              Case.IIGapValid ? std::to_string(Case.IIGap) : "-",
              Case.HeurMaxLive >= 0 ? std::to_string(Case.HeurMaxLive) : "-",
              Case.ExactMaxLive >= 0 ? std::to_string(Case.ExactMaxLive)
                                     : "-",
              std::to_string(Case.MinAvg), certColumn(Case.Certificate),
              Case.MaxLiveGapValid ? std::to_string(Case.MaxLiveGap) : "-",
              std::to_string(Case.HeurEjections),
              std::to_string(Case.Nodes)});
    if (Case.IIGapValid) {
      IIGaps.add(Case.IIGap);
      IIGapSamples.push_back(Case.IIGap);
    }
    if (Case.MaxLiveGapValid) {
      MaxLiveGaps.add(Case.MaxLiveGap);
      MaxLiveGapSamples.push_back(static_cast<double>(Case.MaxLiveGap));
    }
  }
  T.print(OS);

  OS << "\nSummary over " << Report.Cases.size() << " loops (seed "
     << Report.Config.Seed << ", " << Report.Config.MinOps << "-"
     << Report.Config.MaxOps << " ops):\n"
     << "  heuristic scheduled:   " << Report.HeurScheduled << "\n"
     << "  exact scheduled:       " << Report.ExactScheduled << " ("
     << Report.ProvenOptimalII << " with proven-minimal II, "
     << Report.Timeouts << " timeouts)\n"
     << "  heuristic at MII:      " << Report.HeurAtMII << "\n"
     << "  exact minimum at MII:  " << Report.ExactAtMII
     << " (the remainder is bound slack, not heuristic slack)\n"
     << "  heuristic at exact II: " << Report.HeurAtExactII << "\n"
     << "  MaxLive certified:     " << Report.MaxLiveCertified << " ("
     << Report.CertMinAvg << " at the MinAvg bound, " << Report.CertFamily
     << " family-minimal)\n"
     << "  validation failures:   " << Report.ValidationFailures << "\n";

  if (!IIGapSamples.empty()) {
    const QuantileSummary S = summarize(IIGapSamples);
    OS << "\nII gap (heuristic - exact): mean " << formatNumber(S.Mean)
       << ", median " << formatNumber(S.Median) << ", max "
       << formatNumber(S.Max) << "\n";
    IIGaps.print(OS, "II gap");
  }
  if (!MaxLiveGapSamples.empty()) {
    const QuantileSummary S = summarize(MaxLiveGapSamples);
    OS << "\nMaxLive gap at equal II (heuristic - exact): mean "
       << formatNumber(S.Mean) << ", median " << formatNumber(S.Median)
       << ", max " << formatNumber(S.Max) << "\n";
    MaxLiveGaps.print(OS, "MaxLive gap");
  }
}
