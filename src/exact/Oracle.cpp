#include "exact/Oracle.h"

#include "bounds/Lifetimes.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <ostream>

using namespace lsms;

OracleReport lsms::runOracle(const OracleOptions &Options) {
  OracleReport Report;
  Report.Config = Options;

  const std::vector<LoopBody> Suite = buildOracleSuite(
      Options.NumLoops, Options.MinOps, Options.MaxOps, Options.Seed);

  ExactOptions Exact = Options.Exact;
  Exact.MinimizeMaxLive = Options.MinimizeMaxLive;

  // DepGraph keeps a reference to the machine, so it must outlive the loop.
  const MachineModel Machine = MachineModel::cydra5();

  for (const LoopBody &Body : Suite) {
    const DepGraph Graph(Body, Machine);
    OracleCase Case;
    Case.Seed = Options.Seed;
    Case.Name = Body.Name;
    Case.Ops = Body.numMachineOps();

    const Schedule Heur = scheduleLoop(Graph, Options.Heuristic);
    Case.MII = Heur.MII;
    Case.ResMII = Heur.ResMII;
    Case.RecMII = Heur.RecMII;
    Case.HeurSuccess = Heur.Success;
    Case.HeurEjections = Heur.Stats.Ejections;
    Case.HeurAttempts = Heur.Stats.AttemptsTried;
    if (Heur.Success) {
      ++Report.HeurScheduled;
      Case.HeurII = Heur.II;
      Case.HeurMaxLive =
          computePressure(Body, Heur.Times, Heur.II, RegClass::RR).MaxLive;
      Case.HeurError = validateSchedule(Graph, Heur);
      if (Heur.II == Heur.MII)
        ++Report.HeurAtMII;
    }

    const ExactResult Ex = scheduleLoopExact(Graph, Exact);
    Case.Status = Ex.Status;
    Case.Nodes = Ex.NodesExplored;
    if (Ex.Sched.Success) {
      ++Report.ExactScheduled;
      Case.ExactII = Ex.Sched.II;
      Case.ExactMaxLive = Ex.MaxLive;
      Case.MaxLiveProven = Ex.MaxLiveProven;
      Case.MinAvg = Ex.MinAvgAtII;
      Case.ExactError = validateSchedule(Graph, Ex.Sched);
      if (Ex.Status == ExactStatus::Optimal)
        ++Report.ProvenOptimalII;
      if (Ex.Sched.II == Ex.Sched.MII)
        ++Report.ExactAtMII;
    } else if (Ex.Status == ExactStatus::Timeout) {
      ++Report.Timeouts;
    }

    if (Heur.Success && Ex.Sched.Success) {
      Case.IIGapValid = true;
      Case.IIGap = Heur.II - Ex.Sched.II;
      if (Case.IIGap == 0)
        ++Report.HeurAtExactII;
      if (Heur.II == Ex.Sched.II) {
        Case.MaxLiveGapValid = true;
        Case.MaxLiveGap = Case.HeurMaxLive - Case.ExactMaxLive;
      }
    }

    if (!Case.HeurError.empty() || !Case.ExactError.empty())
      ++Report.ValidationFailures;
    Report.Cases.push_back(std::move(Case));
  }
  return Report;
}

void lsms::printOracleReport(std::ostream &OS, const OracleReport &Report) {
  TextTable T;
  T.setHeader({"loop", "ops", "MII", "II slk", "II ex", "status", "dII",
               "ML slk", "ML ex", "MinAvg", "dML", "ej", "nodes"});
  Histogram IIGaps(1, 4), MaxLiveGaps(1, 16);
  std::vector<double> IIGapSamples, MaxLiveGapSamples;
  for (const OracleCase &Case : Report.Cases) {
    T.addRow({Case.Name, std::to_string(Case.Ops), std::to_string(Case.MII),
              Case.HeurSuccess ? std::to_string(Case.HeurII) : "-",
              Case.Status == ExactStatus::Optimal ||
                      Case.Status == ExactStatus::Feasible
                  ? std::to_string(Case.ExactII)
                  : "-",
              exactStatusName(Case.Status),
              Case.IIGapValid ? std::to_string(Case.IIGap) : "-",
              Case.HeurMaxLive >= 0 ? std::to_string(Case.HeurMaxLive) : "-",
              Case.ExactMaxLive >= 0 ? std::to_string(Case.ExactMaxLive)
                                     : "-",
              std::to_string(Case.MinAvg),
              Case.MaxLiveGapValid ? std::to_string(Case.MaxLiveGap) : "-",
              std::to_string(Case.HeurEjections),
              std::to_string(Case.Nodes)});
    if (Case.IIGapValid) {
      IIGaps.add(Case.IIGap);
      IIGapSamples.push_back(Case.IIGap);
    }
    if (Case.MaxLiveGapValid) {
      MaxLiveGaps.add(Case.MaxLiveGap);
      MaxLiveGapSamples.push_back(static_cast<double>(Case.MaxLiveGap));
    }
  }
  T.print(OS);

  OS << "\nSummary over " << Report.Cases.size() << " loops (seed "
     << Report.Config.Seed << ", " << Report.Config.MinOps << "-"
     << Report.Config.MaxOps << " ops):\n"
     << "  heuristic scheduled:   " << Report.HeurScheduled << "\n"
     << "  exact scheduled:       " << Report.ExactScheduled << " ("
     << Report.ProvenOptimalII << " with proven-minimal II, "
     << Report.Timeouts << " timeouts)\n"
     << "  heuristic at MII:      " << Report.HeurAtMII << "\n"
     << "  exact minimum at MII:  " << Report.ExactAtMII
     << " (the remainder is bound slack, not heuristic slack)\n"
     << "  heuristic at exact II: " << Report.HeurAtExactII << "\n"
     << "  validation failures:   " << Report.ValidationFailures << "\n";

  if (!IIGapSamples.empty()) {
    const QuantileSummary S = summarize(IIGapSamples);
    OS << "\nII gap (heuristic - exact): mean " << formatNumber(S.Mean)
       << ", median " << formatNumber(S.Median) << ", max "
       << formatNumber(S.Max) << "\n";
    IIGaps.print(OS, "II gap");
  }
  if (!MaxLiveGapSamples.empty()) {
    const QuantileSummary S = summarize(MaxLiveGapSamples);
    OS << "\nMaxLive gap at equal II (heuristic - exact): mean "
       << formatNumber(S.Mean) << ", median " << formatNumber(S.Median)
       << ", max " << formatNumber(S.Max) << "\n";
    MaxLiveGaps.print(OS, "MaxLive gap");
  }
}
