//===----------------------------------------------------------------------===//
///
/// \file
/// The branch-and-bound exact engine behind the engine-neutral API
/// (ExactEngine.h). For a fixed II the solver branches over issue-cycle
/// residues modulo II — the only part of an issue time the modulo resource
/// table can see — and checks dependence feasibility with an incremental
/// positive-cycle test on the MinDist relation tightened to the chosen
/// residues. The residue space is finite, so the search is complete: at a
/// fixed II it either produces a legal schedule, proves that none exists
/// (for the deterministic pre-scheduling functional-unit assignment shared
/// with the heuristic and the validator), or gives up when the node budget
/// is exhausted.
///
/// A secondary objective mode re-runs the search at the optimal II to
/// minimize MaxLive, branching in order of lifetime contribution and
/// bounding with the paper's MinAvg machinery (Section 3.2). Each leaf is
/// evaluated over its whole *issue-time family*: starting from the
/// canonical earliest times of the residue assignment, every combination
/// of per-op shifts by multiples of II that stays inside the static
/// [Estart, Lstart] windows (computeIssueWindows) and the leaf's tightened
/// constraint matrix is enumerated, so the leaf contributes the minimum
/// MaxLive of its family rather than the earliest-time value. Exhausting
/// the search therefore proves that no schedule of canonical makespan
/// beats the best pressure found; meeting the MinAvg lower bound proves
/// it globally optimal.
///
/// These entry points assume the shared pre-checks already ran (the
/// dispatch in ExactEngine.cpp rejects II < RecMII via MinDist and
/// non-pipelined reservations longer than II before selecting an engine).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_EXACT_BRANCHANDBOUND_H
#define LSMS_EXACT_BRANCHANDBOUND_H

#include "exact/ExactEngine.h"

#include <atomic>
#include <vector>

namespace lsms {

/// Decides schedulability at the fixed II of \p MinDist (which must
/// already hold the relation at that II) for the functional-unit
/// assignment \p FuInstance. Returns Optimal (\p TimesOut filled),
/// Infeasible, or Timeout; \p Nodes is incremented by the candidate
/// residues evaluated. Deterministic. A set \p Stop flag (portfolio
/// cancellation) surfaces as Timeout.
ExactStatus solveAtIIBranchAndBound(const DepGraph &Graph,
                                    const MinDistMatrix &MinDist,
                                    const std::vector<int> &FuInstance,
                                    long NodeBudget,
                                    std::vector<int> &TimesOut, long &Nodes,
                                    const std::atomic<bool> *Stop = nullptr);

/// Minimizes MaxLive at the II of \p MinDist, seeded with the legal
/// schedule in \p TimesInOut. Returns Optimal when the search space was
/// exhausted (or the MinAvg bound was met), Timeout when the node budget
/// ran out first; \p TimesInOut and \p MaxLiveInOut hold the best found
/// either way. On Optimal, \p FamilyCertifiedOut reports whether the best
/// pressure is additionally the proven minimum over the issue-time family
/// (a member achieving it was found and the exhausted search excluded
/// anything smaller); it stays false when the incumbent — which may issue
/// past the canonical makespan — beat every family member.
ExactStatus minimizeMaxLiveBranchAndBound(
    const DepGraph &Graph, const MinDistMatrix &MinDist,
    const std::vector<int> &FuInstance, long NodeBudget,
    std::vector<int> &TimesInOut, long &MaxLiveInOut, long &Nodes,
    bool &FamilyCertifiedOut, const std::atomic<bool> *Stop = nullptr);

} // namespace lsms

#endif // LSMS_EXACT_BRANCHANDBOUND_H
