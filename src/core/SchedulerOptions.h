//===----------------------------------------------------------------------===//
///
/// \file
/// Policy knobs for the modulo-scheduling framework. The defaults are the
/// paper's bidirectional slack scheduler; presets configure the Cydrome
/// baseline (Section 8) and the ablations (unidirectional slack, static
/// priority, II increment of 1).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CORE_SCHEDULEROPTIONS_H
#define LSMS_CORE_SCHEDULEROPTIONS_H

#include "core/IICapPolicy.h"

namespace lsms {

struct SchedulerOptions {
  /// Use the dynamic priority scheme (recompute slack from live
  /// Estart/Lstart bounds each central-loop iteration, Section 4.3). When
  /// false, priorities are the operations' initial slack values, as in
  /// Cydrome's scheduler.
  bool DynamicPriority = true;

  /// Use the bidirectional early/late placement heuristic of Section 5.2.
  /// When false, operations are always placed as early as possible (the
  /// unidirectional legacy strategy the paper criticizes).
  bool Bidirectional = true;

  /// Place every operation that lies on a non-trivial recurrence circuit
  /// before any other operation (Cydrome's policy; Section 8).
  bool RecurrencesFirst = false;

  /// Halve the slack of operations on critical resources (>= 0.90*II
  /// usage), and halve divider operations' slack again (Section 4.3).
  bool HalveCriticalSlack = true;
  bool HalveDividerSlack = true;

  /// Percentage for the II escalation step: II += max(floor(Pct/100*II),1).
  /// The paper uses 4; 0 yields the increment-by-1 ablation (footnote 6).
  int IIIncrementPct = 4;

  /// Ejection budget per II attempt, as a multiple of the operation count.
  int BudgetRatio = 16;

  /// Hard cap on II attempts beyond which the loop is reported unschedul-
  /// able (the paper's Cydrome scheduler failed on 14 loops): II is allowed
  /// to grow to IICap.maxII(MII) before giving up. Shared policy type with
  /// ExactOptions so the heuristic, exact, and oracle paths cap alike.
  IICapPolicy IICap;

  /// Straight-line mode (used by scheduleStraightLine): when positive,
  /// Lstart(Stop) is pinned to Estart(Stop) plus an additive pad instead
  /// of the II-rounded rule, and failed attempts grow the pad by this step
  /// at a fixed II rather than escalating II (escalation is meaningless
  /// for basic blocks).
  int AcyclicPadStep = 0;

  /// The paper's slack scheduler (Sections 4-5).
  static SchedulerOptions slack() { return SchedulerOptions(); }

  /// Cydrome's scheduler as characterized in Section 8.
  static SchedulerOptions cydrome() {
    SchedulerOptions O;
    O.DynamicPriority = false;
    O.Bidirectional = false;
    O.RecurrencesFirst = true;
    return O;
  }

  /// Slack scheduling without lifetime sensitivity (ablation: "without
  /// them, the slack scheduler generates nearly the same register pressure
  /// as Cydrome's scheduler", Section 7).
  static SchedulerOptions unidirectionalSlack() {
    SchedulerOptions O;
    O.Bidirectional = false;
    return O;
  }
};

} // namespace lsms

#endif // LSMS_CORE_SCHEDULEROPTIONS_H
