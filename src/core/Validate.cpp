#include "core/Validate.h"

#include "core/FuAssignment.h"
#include "machine/ModuloResourceTable.h"

#include <sstream>

using namespace lsms;

std::string lsms::validateSchedule(const DepGraph &Graph,
                                   const Schedule &Sched) {
  const LoopBody &Body = Graph.body();
  const MachineModel &Machine = Graph.machine();
  std::ostringstream Err;

  if (!Sched.Success) {
    Err << "schedule marked unsuccessful";
    return Err.str();
  }
  if (Sched.II <= 0) {
    Err << "non-positive II";
    return Err.str();
  }
  if (Sched.Times.size() != static_cast<size_t>(Body.numOps())) {
    Err << "times array does not cover every operation";
    return Err.str();
  }
  if (Sched.Times[static_cast<size_t>(Body.startOp())] != 0) {
    Err << "Start is not at cycle 0";
    return Err.str();
  }
  for (const Operation &Op : Body.Ops) {
    if (Sched.Times[static_cast<size_t>(Op.Id)] < 0) {
      Err << "operation " << Op.Name << " is unplaced";
      return Err.str();
    }
  }

  for (const DepArc &Arc : Graph.arcs()) {
    const long Src = Sched.Times[static_cast<size_t>(Arc.Src)];
    const long Dst = Sched.Times[static_cast<size_t>(Arc.Dst)];
    const long Need =
        Src + Arc.Latency - static_cast<long>(Arc.Omega) * Sched.II;
    if (Dst < Need) {
      Err << "dependence " << Body.op(Arc.Src).Name << " -> "
          << Body.op(Arc.Dst).Name << " violated: t=" << Dst
          << " < " << Need << " (lat=" << Arc.Latency
          << ", omega=" << Arc.Omega << ", II=" << Sched.II << ")";
      return Err.str();
    }
  }

  // Resource check: replay all reservations into a fresh table using the
  // same deterministic functional-unit assignment the scheduler used.
  const std::vector<int> FuInstance = assignFunctionalUnits(Body, Machine);
  ModuloResourceTable Mrt(Machine, Sched.II);
  for (const Operation &Op : Body.Ops) {
    const FuKind Kind = Machine.unitFor(Op.Opc);
    if (Kind == FuKind::None)
      continue;
    const int Instance = FuInstance[static_cast<size_t>(Op.Id)];
    const int Cycle = Sched.Times[static_cast<size_t>(Op.Id)];
    if (!Mrt.canPlace(Op.Opc, Kind, Instance, Cycle)) {
      Err << "resource conflict on " << fuKindName(Kind) << "[" << Instance
          << "] at cycle " << Cycle << " (mod " << Sched.II << ") for "
          << Op.Name;
      return Err.str();
    }
    Mrt.place(Op.Opc, Kind, Instance, Cycle);
  }

  return std::string();
}
