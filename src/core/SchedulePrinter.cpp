#include "core/SchedulePrinter.h"

#include "core/FuAssignment.h"
#include "support/Table.h"

#include <algorithm>
#include <ostream>
#include <vector>

using namespace lsms;

void lsms::printScheduleListing(std::ostream &OS, const LoopBody &Body,
                                const MachineModel &Machine,
                                const Schedule &Sched) {
  if (!Sched.Success) {
    OS << "(no schedule)\n";
    return;
  }
  std::vector<int> Order;
  for (const Operation &Op : Body.Ops)
    if (!isPseudo(Op.Opc))
      Order.push_back(Op.Id);
  std::stable_sort(Order.begin(), Order.end(), [&Sched](int A, int B) {
    return Sched.Times[static_cast<size_t>(A)] <
           Sched.Times[static_cast<size_t>(B)];
  });

  TextTable T;
  T.setHeader({"cycle", "mod II", "stage", "unit", "operation"});
  for (int Op : Order) {
    const int Time = Sched.Times[static_cast<size_t>(Op)];
    T.addRow({std::to_string(Time), std::to_string(Time % Sched.II),
              std::to_string(Time / Sched.II),
              fuKindName(Machine.unitFor(Body.op(Op).Opc)),
              Body.op(Op).Name});
  }
  T.print(OS);
}

void lsms::printReservationTable(std::ostream &OS, const LoopBody &Body,
                                 const MachineModel &Machine,
                                 const Schedule &Sched) {
  if (!Sched.Success) {
    OS << "(no schedule)\n";
    return;
  }
  const std::vector<int> FuInstance = assignFunctionalUnits(Body, Machine);

  // Columns: every unit instance of every kind that exists.
  struct Column {
    FuKind Kind;
    int Instance;
  };
  std::vector<Column> Columns;
  std::vector<std::string> Header = {"cycle"};
  const FuKind Kinds[] = {FuKind::MemoryPort, FuKind::AddressAlu,
                          FuKind::Adder,      FuKind::Multiplier,
                          FuKind::Divider,    FuKind::Branch};
  for (FuKind Kind : Kinds) {
    for (int I = 0; I < Machine.unitCount(Kind); ++I) {
      Columns.push_back({Kind, I});
      Header.push_back(std::string(fuKindName(Kind)) + "#" +
                       std::to_string(I));
    }
  }

  TextTable T;
  T.setHeader(Header);
  for (int Cycle = 0; Cycle < Sched.II; ++Cycle) {
    std::vector<std::string> Row = {std::to_string(Cycle)};
    for (const Column &Col : Columns) {
      std::string Cell;
      for (const Operation &Op : Body.Ops) {
        if (isPseudo(Op.Opc) || Machine.unitFor(Op.Opc) != Col.Kind ||
            FuInstance[static_cast<size_t>(Op.Id)] != Col.Instance)
          continue;
        const int Time = Sched.Times[static_cast<size_t>(Op.Id)];
        const int Res = Machine.reservationCycles(Op.Opc);
        for (int R = 0; R < Res; ++R) {
          if (((Time + R) % Sched.II + Sched.II) % Sched.II != Cycle)
            continue;
          if (!Cell.empty())
            Cell += "/";
          Cell += Op.Name + "[s" + std::to_string(Time / Sched.II) + "]";
          if (Res > 1)
            Cell += R == 0 ? "" : "*"; // busy continuation cycle
          break;
        }
      }
      Row.push_back(Cell.empty() ? "." : Cell);
    }
    T.addRow(Row);
  }
  T.print(OS);
}
