#include "core/ModuloScheduler.h"

#include "bounds/Bounds.h"
#include "bounds/Lifetimes.h"
#include "core/FuAssignment.h"
#include "graph/MinDist.h"
#include "graph/Scc.h"
#include "machine/ModuloResourceTable.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <climits>
#include <tuple>
#include <vector>

using namespace lsms;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

constexpr long Unbounded = LONG_MAX / 4;
constexpr int NeverPlaced = INT_MIN / 2;

/// One scheduling attempt at a fixed II.
class AttemptScheduler {
public:
  AttemptScheduler(const DepGraph &Graph, const SchedulerOptions &Options,
                   const MinDistMatrix &MinDist, int II, int ResMII,
                   const std::vector<int> &FuInstance,
                   const std::vector<bool> &OnRecurrence,
                   ScheduleStats &Stats, long StopPad = -1)
      : Graph(Graph), Body(Graph.body()), Machine(Graph.machine()),
        Options(Options), MinDist(MinDist), II(II), ResMII(ResMII),
        FuInstance(FuInstance), OnRecurrence(OnRecurrence), Stats(Stats),
        StopPad(StopPad), Mrt(Machine, II) {}

  /// Runs the central loop; on success fills \p Times.
  bool run(std::vector<int> &TimesOut);

private:
  // -- Bounds maintenance (Section 4.1) ----------------------------------
  void refreshBounds();
  long estartOf(int X) const;
  long lstartOf(int X) const;

  // -- Step 1: operation choice (Section 4.3) ----------------------------
  int chooseOperation();
  long dynamicPriority(int X) const;
  long applyHalving(int X, long Slack) const;

  // -- Step 2: issue-cycle search (Section 5.2) --------------------------
  bool placeEarlyHeuristic(int X) const;
  bool findIssueCycle(int X, long &CycleOut) const;

  // -- Step 3: forced placement with ejection (Section 4.4) --------------
  bool forcePlace(int X);

  // -- Placement bookkeeping ---------------------------------------------
  void place(int X, int Cycle);
  void eject(int Y);
  bool resourceConflict(int X, int CycleX, int Y, int CycleY) const;
  bool isPlaced(int X) const { return Times[static_cast<size_t>(X)] >= 0 ||
                                      X == Body.startOp(); }

  const DepGraph &Graph;
  const LoopBody &Body;
  const MachineModel &Machine;
  const SchedulerOptions &Options;
  const MinDistMatrix &MinDist;
  const int II;
  const int ResMII;
  const std::vector<int> &FuInstance;
  const std::vector<bool> &OnRecurrence;
  ScheduleStats &Stats;
  const long StopPad; ///< straight-line mode: additive Lstart(Stop) pad

  /// Lstart(Stop) policy: the paper's rule, or Estart+pad in straight-line
  /// mode.
  long stopCapFor(long EstartStop) const {
    if (StopPad >= 0)
      return EstartStop + StopPad;
    return ResMII == 1 ? EstartStop : ((EstartStop + II - 1) / II) * II;
  }

  ModuloResourceTable Mrt;
  std::vector<int> Times;    ///< -1 when unplaced (Start held at 0)
  std::vector<int> LastTime; ///< last placement, NeverPlaced initially
  std::vector<long> Estart;
  std::vector<long> Lstart;
  std::vector<long> StaticPriority;
  std::vector<bool> Critical;
  std::vector<long> MinLT; ///< per value, at this II
  long LstartStop = 0;
  long EjectionsThisAttempt = 0;
};

bool AttemptScheduler::run(std::vector<int> &TimesOut) {
  const int N = Body.numOps();
  Times.assign(static_cast<size_t>(N), -1);
  LastTime.assign(static_cast<size_t>(N), NeverPlaced);
  Estart.assign(static_cast<size_t>(N), 0);
  Lstart.assign(static_cast<size_t>(N), Unbounded);

  Critical = markCriticalOps(Body, Machine, II);

  MinLT.assign(static_cast<size_t>(Body.numValues()), 0);
  for (const Value &V : Body.Values)
    if (V.Class != RegClass::GPR)
      MinLT[static_cast<size_t>(V.Id)] = computeMinLT(Graph, MinDist, V.Id);

  // Start is fixed at cycle 0 (Section 4.1).
  Times[static_cast<size_t>(Body.startOp())] = 0;

  // Lstart(Stop): meet the critical path exactly when there is no resource
  // contention, otherwise round up to a whole number of stages to provide
  // extra slack and lessen backtracking (Section 4.2).
  const long EstartStop0 = MinDist.at(Body.startOp(), Body.stopOp());
  LstartStop = stopCapFor(EstartStop0);

  refreshBounds();

  if (!Options.DynamicPriority) {
    // Cydrome's static priority: the operation's slack in the empty
    // schedule, with the same halving refinements.
    StaticPriority.assign(static_cast<size_t>(N), 0);
    for (int X = 0; X < N; ++X)
      StaticPriority[static_cast<size_t>(X)] = applyHalving(
          X, Lstart[static_cast<size_t>(X)] - Estart[static_cast<size_t>(X)]);
  }

  const long Budget =
      static_cast<long>(Options.BudgetRatio) * std::max(N, 8);
  int Remaining = N - 1; // all but Start

  while (Remaining > 0) {
    ++Stats.CentralLoopIterations;

    const int X = chooseOperation();
    assert(X >= 0 && "no unplaced operation found");

    long Cycle;
    if (findIssueCycle(X, Cycle)) {
      place(X, static_cast<int>(Cycle));
      --Remaining;
    } else {
      const auto T0 = Clock::now();
      ++Stats.ForcedPlacements;
      const int Before = static_cast<int>(EjectionsThisAttempt);
      if (!forcePlace(X)) {
        Stats.SecondsBacktracking += secondsSince(T0);
        return false; // irreconcilable brtop conflict: try a larger II
      }
      Remaining -= 1 - (static_cast<int>(EjectionsThisAttempt) - Before);
      Stats.SecondsBacktracking += secondsSince(T0);
      if (EjectionsThisAttempt > Budget)
        return false; // step 6: start over at a larger II
    }

    refreshBounds();
  }

  TimesOut = Times;
  TimesOut[static_cast<size_t>(Body.startOp())] = 0;
  return true;
}

void AttemptScheduler::refreshBounds() {
  // Recompute Estart/Lstart of unplaced operations from the placed set via
  // MinDist (Section 4.4 notes this is O(placed * unplaced); exactly what
  // we do). Also apply the Lstart(Stop) control and its reset rule
  // (Section 4.2).
  const int N = Body.numOps();
  const int Stop = Body.stopOp();

  // Reset rule for Lstart(Stop): only when Estart(Stop) is pushed beyond it
  // (or beyond Stop's current placement, which ejection handles).
  long EstartStop = 0;
  for (int Y = 0; Y < N; ++Y) {
    if (!isPlaced(Y) || !MinDist.connected(Y, Stop))
      continue;
    EstartStop = std::max(EstartStop, Times[static_cast<size_t>(Y)] +
                                          MinDist.at(Y, Stop));
  }
  if (EstartStop > LstartStop)
    LstartStop = stopCapFor(EstartStop);

  for (int X = 0; X < N; ++X) {
    if (isPlaced(X))
      continue;
    Estart[static_cast<size_t>(X)] = estartOf(X);
    Lstart[static_cast<size_t>(X)] = lstartOf(X);
  }
}

long AttemptScheduler::estartOf(int X) const {
  long E = 0; // Start at cycle 0 reaches everything with MinDist >= 0
  for (int Y = 0; Y < Body.numOps(); ++Y) {
    if (!isPlaced(Y) || !MinDist.connected(Y, X))
      continue;
    E = std::max(E, Times[static_cast<size_t>(Y)] + MinDist.at(Y, X));
  }
  return E;
}

long AttemptScheduler::lstartOf(int X) const {
  const int Stop = Body.stopOp();
  long L = Unbounded;
  if (X == Stop)
    L = LstartStop;
  else if (!isPlaced(Stop) && MinDist.connected(X, Stop))
    L = LstartStop - MinDist.at(X, Stop);
  for (int Y = 0; Y < Body.numOps(); ++Y) {
    if (!isPlaced(Y) || !MinDist.connected(X, Y))
      continue;
    L = std::min(L, Times[static_cast<size_t>(Y)] - MinDist.at(X, Y));
  }
  return L;
}

long AttemptScheduler::applyHalving(int X, long Slack) const {
  if (Options.HalveCriticalSlack && ResMII > 1 &&
      Critical[static_cast<size_t>(X)])
    Slack /= 2;
  if (Options.HalveDividerSlack && isDividerOp(Body.op(X).Opc))
    Slack /= 2;
  return Slack;
}

long AttemptScheduler::dynamicPriority(int X) const {
  const long Slack =
      Lstart[static_cast<size_t>(X)] - Estart[static_cast<size_t>(X)];
  return applyHalving(X, Slack);
}

int AttemptScheduler::chooseOperation() {
  int Best = -1;
  long BestTier = LONG_MAX, BestPrio = LONG_MAX, BestLstart = LONG_MAX;
  for (int X = 0; X < Body.numOps(); ++X) {
    if (isPlaced(X))
      continue;
    const long Tier =
        Options.RecurrencesFirst && !OnRecurrence[static_cast<size_t>(X)] ? 1
                                                                          : 0;
    const long Prio = Options.DynamicPriority
                          ? dynamicPriority(X)
                          : StaticPriority[static_cast<size_t>(X)];
    const long L = Lstart[static_cast<size_t>(X)];
    if (std::tie(Tier, Prio, L) < std::tie(BestTier, BestPrio, BestLstart)) {
      Best = X;
      BestTier = Tier;
      BestPrio = Prio;
      BestLstart = L;
    }
  }
  return Best;
}

bool AttemptScheduler::placeEarlyHeuristic(int X) const {
  if (!Options.Bidirectional)
    return true;

  const Operation &Op = Body.op(X);

  // Count stretchable inputs: RR flow operands, ignoring loop invariants,
  // duplicate inputs, and self-recurrences (Section 5.2). An input cannot
  // be stretched by this operation when some other use already pins the
  // lifetime at least as far: Estart(def) + MinLT(v) >= omega*II +
  // Lstart(x).
  int NumIn = 0;
  std::vector<int> Seen;
  auto CountInput = [this, X, &Seen, &NumIn](const Use &U) {
    const Value &V = Body.value(U.Value);
    if (V.Class != RegClass::RR || V.Def == X)
      return;
    if (std::find(Seen.begin(), Seen.end(), U.Value) != Seen.end())
      return;
    Seen.push_back(U.Value);
    const long Pinned = Estart[static_cast<size_t>(V.Def)] +
                        MinLT[static_cast<size_t>(U.Value)];
    const long Reach = static_cast<long>(U.Omega) * II +
                       Lstart[static_cast<size_t>(X)];
    if (Pinned < Reach)
      ++NumIn;
  };
  for (const Use &U : Op.Operands)
    CountInput(U);
  if (Op.PredValue >= 0)
    CountInput(Use{Op.PredValue, Op.PredOmega});

  // Outputs: in SSA form, placing the operation early stretches its result
  // lifetime; a self-recurrence-only result has fixed length and does not
  // count.
  int NumOut = 0;
  if (Op.Result >= 0 && Body.value(Op.Result).Class == RegClass::RR) {
    for (const LoopBody::UseSite &Site : Body.usesOf(Op.Result)) {
      if (Site.Op == X)
        continue;
      NumOut = 1;
      break;
    }
  }

  // No stretchable flow dependences either way: place early to minimize
  // the overall schedule length.
  if (NumIn == 0 && NumOut == 0)
    return true;
  if (NumIn != NumOut)
    return NumIn > NumOut;

  // Tie: place near whichever adjacent group (immediate predecessors or
  // successors) has the larger fraction already placed — it is less likely
  // to be ejected later.
  long PredPlaced = 0, PredTotal = 0, SuccPlaced = 0, SuccTotal = 0;
  for (int ArcIdx : Graph.predArcs(X)) {
    const int Y = Graph.arc(ArcIdx).Src;
    if (Y == X || Y == Body.startOp() || Y == Body.stopOp())
      continue;
    ++PredTotal;
    if (isPlaced(Y))
      ++PredPlaced;
  }
  for (int ArcIdx : Graph.succArcs(X)) {
    const int Y = Graph.arc(ArcIdx).Dst;
    if (Y == X || Y == Body.startOp() || Y == Body.stopOp())
      continue;
    ++SuccTotal;
    if (isPlaced(Y))
      ++SuccPlaced;
  }
  // Compare PredPlaced/PredTotal with SuccPlaced/SuccTotal; an empty group
  // counts as fraction zero.
  const long Lhs = PredPlaced * std::max(SuccTotal, 1L);
  const long Rhs = SuccPlaced * std::max(PredTotal, 1L);
  if (Lhs != Rhs)
    return Lhs > Rhs;

  // Final tie: early if and only if no predecessor or successor is placed.
  return PredPlaced + SuccPlaced == 0;
}

bool AttemptScheduler::findIssueCycle(int X, long &CycleOut) const {
  const long EstartX = Estart[static_cast<size_t>(X)];
  const long LstartX = Lstart[static_cast<size_t>(X)];
  if (EstartX > LstartX)
    return false;

  const Operation &Op = Body.op(X);
  const FuKind Kind = Machine.unitFor(Op.Opc);
  const int Instance = FuInstance[static_cast<size_t>(X)];

  // Due to the modulo constraint at most II consecutive cycles need to be
  // scanned, but the window must anchor at the end the heuristic favors:
  // [Estart, Estart+II-1] scanning up for an early placement,
  // [Lstart-II+1, Lstart] scanning down for a late one (Section 5.2).
  const bool Early = placeEarlyHeuristic(X);
  long Lo, Hi;
  if (Early) {
    Lo = EstartX;
    Hi = std::min(LstartX, EstartX + II - 1);
  } else {
    Hi = LstartX;
    Lo = std::max(EstartX, LstartX - II + 1);
  }
  for (long Step = 0; Step <= Hi - Lo; ++Step) {
    const long T = Early ? Lo + Step : Hi - Step;
    if (Mrt.canPlace(Op.Opc, Kind, Instance, static_cast<int>(T))) {
      CycleOut = T;
      return true;
    }
  }
  return false;
}

bool AttemptScheduler::forcePlace(int X) {
  const Operation &Op = Body.op(X);
  const FuKind Kind = Machine.unitFor(Op.Opc);
  const int Instance = FuInstance[static_cast<size_t>(X)];
  const int BrTop = Body.brTopOp();

  if (Machine.reservationCycles(Op.Opc) > II)
    return false; // can never hold this op at this II (non-pipelined)

  long F = std::max(Estart[static_cast<size_t>(X)],
                    static_cast<long>(LastTime[static_cast<size_t>(X)]) + 1);

  // brtop cannot be ejected: search successive cycles until the forced slot
  // does not conflict with it (Section 4.4). All offsets repeat mod II.
  bool Ok = false;
  for (int Offset = 0; Offset < II; ++Offset) {
    const long Cand = F + Offset;
    const bool BrTopPlaced = BrTop >= 0 && isPlaced(BrTop) && BrTop != X;
    if (BrTopPlaced) {
      if (resourceConflict(X, static_cast<int>(Cand), BrTop,
                           Times[static_cast<size_t>(BrTop)]))
        continue;
      if (MinDist.connected(X, BrTop) &&
          Cand + MinDist.at(X, BrTop) > Times[static_cast<size_t>(BrTop)])
        continue;
    }
    F = Cand;
    Ok = true;
    break;
  }
  if (!Ok)
    return false;

  // Eject every placed operation that conflicts with x at cycle F, either
  // on resources or through the (transitive) dependence relation.
  for (int Y = 0; Y < Body.numOps(); ++Y) {
    if (!isPlaced(Y) || Y == Body.startOp() || Y == BrTop || Y == X)
      continue;
    const int Ty = Times[static_cast<size_t>(Y)];
    bool Conflict = resourceConflict(X, static_cast<int>(F), Y, Ty);
    if (!Conflict && MinDist.connected(Y, X) &&
        Ty + MinDist.at(Y, X) > F)
      Conflict = true;
    if (!Conflict && MinDist.connected(X, Y) &&
        F + MinDist.at(X, Y) > Ty)
      Conflict = true;
    if (Conflict)
      eject(Y);
  }

  assert(Mrt.canPlace(Op.Opc, Kind, Instance, static_cast<int>(F)) &&
         "forced slot still blocked after ejection");
  (void)Kind;
  (void)Instance;
  place(X, static_cast<int>(F));
  return true;
}

bool AttemptScheduler::resourceConflict(int X, int CycleX, int Y,
                                        int CycleY) const {
  const Operation &OpX = Body.op(X);
  const Operation &OpY = Body.op(Y);
  const FuKind KindX = Machine.unitFor(OpX.Opc);
  const FuKind KindY = Machine.unitFor(OpY.Opc);
  if (KindX == FuKind::None || KindX != KindY)
    return false;
  if (FuInstance[static_cast<size_t>(X)] != FuInstance[static_cast<size_t>(Y)])
    return false;
  const int ResX = Machine.reservationCycles(OpX.Opc);
  const int ResY = Machine.reservationCycles(OpY.Opc);
  for (int I = 0; I < ResX; ++I)
    for (int J = 0; J < ResY; ++J)
      if (((CycleX + I) % II + II) % II == ((CycleY + J) % II + II) % II)
        return true;
  return false;
}

void AttemptScheduler::place(int X, int Cycle) {
  const Operation &Op = Body.op(X);
  Mrt.place(Op.Opc, Machine.unitFor(Op.Opc),
            FuInstance[static_cast<size_t>(X)], Cycle);
  Times[static_cast<size_t>(X)] = Cycle;
  LastTime[static_cast<size_t>(X)] = Cycle;
  ++Stats.Placements;
}

void AttemptScheduler::eject(int Y) {
  const Operation &Op = Body.op(Y);
  Mrt.remove(Op.Opc, Machine.unitFor(Op.Opc),
             FuInstance[static_cast<size_t>(Y)],
             Times[static_cast<size_t>(Y)]);
  Times[static_cast<size_t>(Y)] = -1;
  ++EjectionsThisAttempt;
  ++Stats.Ejections;
  Stats.Backtracked = true;
}

} // namespace

Schedule lsms::scheduleLoop(const DepGraph &Graph,
                            const SchedulerOptions &Options) {
  const auto TotalT0 = Clock::now();
  Schedule Result;

  Result.ResMII = computeResMII(Graph.body(), Graph.machine());
  {
    const auto T0 = Clock::now();
    Result.RecMII = computeRecMII(Graph);
    Result.Stats.SecondsRecMII += secondsSince(T0);
  }
  Result.MII = std::max(Result.ResMII, Result.RecMII);

  const std::vector<int> FuInstance =
      assignFunctionalUnits(Graph.body(), Graph.machine());
  const SccInfo Sccs = computeSccs(Graph);

  const int MaxII = Options.IICap.maxII(Result.MII);

  int II = Result.MII;
  long StopPad = Options.AcyclicPadStep > 0 ? 0 : -1;
  MinDistMatrix MinDist;
  for (;;) {
    Result.II = II;
    ++Result.Stats.AttemptsTried;
    const long EjectionsBefore = Result.Stats.Ejections;
    {
      const auto T0 = Clock::now();
      const bool Valid = MinDist.compute(Graph, II);
      Result.Stats.SecondsMinDist += secondsSince(T0);
      assert(Valid && "II below RecMII");
      (void)Valid;
    }

    AttemptScheduler Attempt(Graph, Options, MinDist, II, Result.ResMII,
                             FuInstance, Sccs.OnRecurrence, Result.Stats,
                             StopPad);
    if (Attempt.run(Result.Times)) {
      Result.Success = true;
      Result.Stats.EjectionsLastAttempt =
          Result.Stats.Ejections - EjectionsBefore;
      break;
    }

    ++Result.Stats.IIRestarts;
    if (Options.AcyclicPadStep > 0) {
      // Straight-line mode: growing II is meaningless for a basic block;
      // loosen the Lstart(Stop) cap instead.
      StopPad += Options.AcyclicPadStep;
      if (StopPad > 8L * II)
        break;
      continue;
    }
    const int Increment =
        std::max(II * Options.IIIncrementPct / 100, 1);
    II += Increment;
    if (II > MaxII)
      break; // report failure with the last II attempted
  }

  Result.Stats.SecondsTotal += secondsSince(TotalT0);
  return Result;
}

Schedule lsms::scheduleLoop(const LoopBody &Body, const MachineModel &Machine,
                            const SchedulerOptions &Options) {
  const DepGraph Graph(Body, Machine);
  return scheduleLoop(Graph, Options);
}
