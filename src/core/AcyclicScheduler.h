//===----------------------------------------------------------------------===//
///
/// \file
/// Straight-line (basic-block) scheduling with the slack framework. The
/// paper notes the bidirectional framework "can be applied to straight-
/// line code as well as loops" and leaves measuring it against Integrated
/// Prepass Scheduling as future experimentation (Section 8) — this module
/// runs that experiment.
///
/// Implementation: the modulo framework degenerates gracefully — at an II
/// no schedule can reach, the modulo resource table never wraps and
/// cross-iteration arcs become vacuous, so the very same central loop
/// schedules the block. Register pressure is then measured without
/// wraparound: a value is live from its definition to its last same-
/// iteration use; cross-iteration reads become live-in intervals from
/// cycle 0.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CORE_ACYCLICSCHEDULER_H
#define LSMS_CORE_ACYCLICSCHEDULER_H

#include "core/Schedule.h"
#include "core/SchedulerOptions.h"
#include "ir/DepGraph.h"

namespace lsms {

/// Result of scheduling one basic block (the loop body viewed as
/// straight-line code).
struct AcyclicSchedule {
  bool Success = false;
  int Length = 0; ///< cycles until every result has been produced
  std::vector<int> Times;
  long MaxLive = 0; ///< peak simultaneously-live values (RR class)
};

/// Schedules \p Graph's body as straight-line code under \p Options
/// (bidirectional vs unidirectional matters; recurrence policies are
/// vacuous here).
AcyclicSchedule
scheduleStraightLine(const DepGraph &Graph,
                     const SchedulerOptions &Options = SchedulerOptions());

/// Peak register pressure of a straight-line schedule: per value, live
/// from definition to last omega-0 use; values read with omega > 0 are
/// live-in from cycle 0 to their last such use.
long straightLineMaxLive(const LoopBody &Body, const std::vector<int> &Times,
                         RegClass Class = RegClass::RR);

} // namespace lsms

#endif // LSMS_CORE_ACYCLICSCHEDULER_H
