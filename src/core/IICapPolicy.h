//===----------------------------------------------------------------------===//
///
/// \file
/// The II-retry-ladder cap shared by every scheduler in the repo: the
/// heuristic's geometric escalation, the exact engines' linear ladder, and
/// the oracle sweeps all abandon a loop once the candidate II exceeds
/// MaxIIFactor * MII + MaxIISlack (the paper reports such failures — 14
/// loops under Cydrome's scheduler). One policy object keeps the knobs
/// from drifting apart between SchedulerOptions and ExactOptions.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CORE_IICAPPOLICY_H
#define LSMS_CORE_IICAPPOLICY_H

namespace lsms {

struct IICapPolicy {
  int MaxIIFactor = 2;
  int MaxIISlack = 64;

  /// Largest II worth attempting for a loop with the given MII.
  int maxII(int MII) const { return MII * MaxIIFactor + MaxIISlack; }
};

} // namespace lsms

#endif // LSMS_CORE_IICAPPOLICY_H
