//===----------------------------------------------------------------------===//
///
/// \file
/// Pre-scheduling functional-unit assignment. The compiler "assigns
/// operations to functional units before scheduling commences, thereby
/// restricting an operation to one issue slot per cycle" (Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CORE_FUASSIGNMENT_H
#define LSMS_CORE_FUASSIGNMENT_H

#include "ir/LoopBody.h"
#include "machine/MachineModel.h"

#include <vector>

namespace lsms {

/// Instance index per operation (0 for pseudo-ops). Operations are dealt
/// round-robin across the instances of their unit kind, balancing the load
/// each instance carries.
std::vector<int> assignFunctionalUnits(const LoopBody &Body,
                                       const MachineModel &Machine);

} // namespace lsms

#endif // LSMS_CORE_FUASSIGNMENT_H
