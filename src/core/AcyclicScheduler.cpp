#include "core/AcyclicScheduler.h"

#include "core/ModuloScheduler.h"

#include <algorithm>
#include <climits>
#include <vector>

using namespace lsms;

long lsms::straightLineMaxLive(const LoopBody &Body,
                               const std::vector<int> &Times,
                               RegClass Class) {
  struct Interval {
    long Start;
    long End;
  };
  std::vector<Interval> Intervals;

  std::vector<long> SameIterEnd(static_cast<size_t>(Body.numValues()),
                                LONG_MIN);
  std::vector<long> LiveInEnd(static_cast<size_t>(Body.numValues()),
                              LONG_MIN);
  auto Record = [&](int ValueId, int UserOp, int Omega) {
    if (Body.value(ValueId).Class != Class)
      return;
    const long T = Times[static_cast<size_t>(UserOp)];
    if (Omega == 0)
      SameIterEnd[static_cast<size_t>(ValueId)] =
          std::max(SameIterEnd[static_cast<size_t>(ValueId)], T);
    else
      LiveInEnd[static_cast<size_t>(ValueId)] =
          std::max(LiveInEnd[static_cast<size_t>(ValueId)], T);
  };
  for (const Operation &Op : Body.Ops) {
    for (const Use &U : Op.Operands)
      Record(U.Value, Op.Id, U.Omega);
    if (Op.PredValue >= 0)
      Record(Op.PredValue, Op.Id, Op.PredOmega);
  }

  for (const Value &V : Body.Values) {
    if (V.Class != Class)
      continue;
    if (SameIterEnd[static_cast<size_t>(V.Id)] != LONG_MIN)
      Intervals.push_back({Times[static_cast<size_t>(V.Def)],
                           SameIterEnd[static_cast<size_t>(V.Id)]});
    if (LiveInEnd[static_cast<size_t>(V.Id)] != LONG_MIN)
      Intervals.push_back({0, LiveInEnd[static_cast<size_t>(V.Id)]});
  }

  // Sweep: +1 at start, -1 after end.
  std::vector<std::pair<long, int>> Events;
  Events.reserve(2 * Intervals.size());
  for (const Interval &I : Intervals) {
    Events.push_back({I.Start, +1});
    Events.push_back({I.End + 1, -1});
  }
  std::sort(Events.begin(), Events.end());
  long Live = 0, MaxLive = 0;
  for (const auto &[Time, Delta] : Events) {
    (void)Time;
    Live += Delta;
    MaxLive = std::max(MaxLive, Live);
  }
  return MaxLive;
}

AcyclicSchedule
lsms::scheduleStraightLine(const DepGraph &Graph,
                           const SchedulerOptions &Options) {
  AcyclicSchedule Result;
  const LoopBody &Body = Graph.body();
  const MachineModel &Machine = Graph.machine();

  // An II no schedule can need: every op serialized on its unit plus the
  // longest latency chain.
  long BigII = 1;
  for (const Operation &Op : Body.Ops)
    BigII += Machine.reservationCycles(Op.Opc) + Machine.latency(Op.Opc);

  SchedulerOptions Acyclic = Options;
  Acyclic.IICap.MaxIIFactor = 4;
  // Straight-line mode: keep Lstart(Stop) near the critical path and relax
  // it additively when resource contention forces a longer block.
  Acyclic.AcyclicPadStep =
      std::max(4, Body.numMachineOps() / 4);

  // Force the single attempt at BigII by treating it as the loop's MII:
  // scheduleLoop starts at max(ResMII, RecMII) — both far below BigII — so
  // instead run the framework through a body whose brtop-II floor is
  // raised artificially. Simplest faithful approach: call scheduleLoop
  // and, when the achieved II wraps nothing (length <= II), reuse it;
  // otherwise reschedule with a pseudo arc forcing the larger II. In
  // practice the framework at II >= length never wraps, so we schedule at
  // BigII directly via a dedicated entry: add a self arc on brtop with
  // latency BigII and omega 1, which lifts RecMII to BigII without
  // otherwise constraining the block.
  LoopBody Padded = Body;
  Padded.MemDeps.push_back(
      {Padded.brTopOp(), Padded.brTopOp(), DepKind::Extra,
       static_cast<int>(BigII), 1});
  const DepGraph PaddedGraph(Padded, Machine);
  const Schedule Sched = scheduleLoop(PaddedGraph, Acyclic);
  if (!Sched.Success)
    return Result;

  // The block floats freely inside the huge II window; normalize so the
  // earliest machine operation issues at cycle 0 (pressure and length are
  // shift-invariant, live-in intervals anchor at block entry).
  int MinTime = INT_MAX, MaxEnd = 0;
  for (const Operation &Op : Body.Ops) {
    if (isPseudo(Op.Opc))
      continue;
    const int T = Sched.Times[static_cast<size_t>(Op.Id)];
    MinTime = std::min(MinTime, T);
    MaxEnd = std::max(MaxEnd, T + Machine.latency(Op.Opc));
  }
  if (MinTime == INT_MAX)
    MinTime = 0;

  Result.Success = true;
  Result.Times = Sched.Times;
  for (const Operation &Op : Body.Ops)
    if (!isPseudo(Op.Opc))
      Result.Times[static_cast<size_t>(Op.Id)] -= MinTime;
  Result.Times[static_cast<size_t>(Body.startOp())] = 0;
  Result.Length = MaxEnd - MinTime;
  Result.Times[static_cast<size_t>(Body.stopOp())] = Result.Length;
  Result.MaxLive = straightLineMaxLive(Body, Result.Times);
  return Result;
}
