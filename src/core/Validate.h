//===----------------------------------------------------------------------===//
///
/// \file
/// Independent validation of a modulo schedule: every dependence arc must
/// satisfy time(dst) >= time(src) + latency - omega*II, and no functional
/// unit instance may be reserved twice at the same cycle modulo II.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CORE_VALIDATE_H
#define LSMS_CORE_VALIDATE_H

#include "core/Schedule.h"
#include "ir/DepGraph.h"

#include <string>

namespace lsms {

/// Returns an empty string when \p Sched is a legal modulo schedule for
/// \p Graph, otherwise a description of the first violation found.
std::string validateSchedule(const DepGraph &Graph, const Schedule &Sched);

} // namespace lsms

#endif // LSMS_CORE_VALIDATE_H
