//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable schedule dumps: the flat issue-cycle listing and the
/// modulo reservation table view (rows = cycles mod II, columns =
/// functional-unit instances) that papers on modulo scheduling
/// traditionally draw.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CORE_SCHEDULEPRINTER_H
#define LSMS_CORE_SCHEDULEPRINTER_H

#include "core/Schedule.h"
#include "ir/LoopBody.h"
#include "machine/MachineModel.h"

#include <iosfwd>

namespace lsms {

/// Prints one line per operation in issue order: cycle, stage, unit, name.
void printScheduleListing(std::ostream &OS, const LoopBody &Body,
                          const MachineModel &Machine, const Schedule &Sched);

/// Prints the modulo reservation table: one row per cycle 0..II-1, one
/// column per functional-unit instance, cells naming the operation issued
/// there (with its stage).
void printReservationTable(std::ostream &OS, const LoopBody &Body,
                           const MachineModel &Machine,
                           const Schedule &Sched);

} // namespace lsms

#endif // LSMS_CORE_SCHEDULEPRINTER_H
