//===----------------------------------------------------------------------===//
///
/// \file
/// The result of modulo scheduling a loop: per-operation issue cycles at a
/// given initiation interval, plus the statistics Section 6 of the paper
/// reports (central-loop iterations, ejections, II restarts, time split).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CORE_SCHEDULE_H
#define LSMS_CORE_SCHEDULE_H

#include <vector>

namespace lsms {

/// Counters mirroring Section 6's measurements.
struct ScheduleStats {
  long CentralLoopIterations = 0; ///< iterations of the 6-step central loop
  long Placements = 0;            ///< operations placed (incl. re-placements)
  long ForcedPlacements = 0;      ///< step-3 invocations (no free issue slot)
  long Ejections = 0;             ///< operations ejected from the schedule
  long IIRestarts = 0;            ///< step-6 invocations (II incremented)
  long AttemptsTried = 0;         ///< scheduling attempts (II or pad values)
  long EjectionsLastAttempt = 0;  ///< ejections during the final attempt
  bool Backtracked = false;       ///< any ejection happened
  double SecondsTotal = 0;
  double SecondsMinDist = 0;
  double SecondsRecMII = 0;
  double SecondsBacktracking = 0; ///< time spent ejecting/re-placing

  void accumulate(const ScheduleStats &Other) {
    CentralLoopIterations += Other.CentralLoopIterations;
    Placements += Other.Placements;
    ForcedPlacements += Other.ForcedPlacements;
    Ejections += Other.Ejections;
    IIRestarts += Other.IIRestarts;
    AttemptsTried += Other.AttemptsTried;
    EjectionsLastAttempt += Other.EjectionsLastAttempt;
    Backtracked = Backtracked || Other.Backtracked;
    SecondsTotal += Other.SecondsTotal;
    SecondsMinDist += Other.SecondsMinDist;
    SecondsRecMII += Other.SecondsRecMII;
    SecondsBacktracking += Other.SecondsBacktracking;
  }
};

/// A (possibly failed) modulo schedule.
struct Schedule {
  bool Success = false;
  int II = 0;     ///< achieved II; for failures, the last II attempted
  int MII = 0;    ///< max(ResMII, RecMII)
  int ResMII = 0;
  int RecMII = 0;
  /// Issue cycle per operation id (Start at 0); valid only on success.
  std::vector<int> Times;
  ScheduleStats Stats;

  /// Schedule length: the Stop pseudo-op's issue time.
  int length() const { return Success ? Times[1] : 0; }
};

} // namespace lsms

#endif // LSMS_CORE_SCHEDULE_H
