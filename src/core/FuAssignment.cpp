#include "core/FuAssignment.h"

#include <array>

using namespace lsms;

std::vector<int> lsms::assignFunctionalUnits(const LoopBody &Body,
                                             const MachineModel &Machine) {
  std::vector<int> Instance(static_cast<size_t>(Body.numOps()), 0);
  // Round-robin on reserved cycles rather than op counts so a long divider
  // reservation counts for its full occupancy.
  std::array<std::vector<long>, NumFuKinds> Load;
  for (unsigned K = 0; K < NumFuKinds; ++K)
    Load[K].assign(
        static_cast<size_t>(Machine.unitCount(static_cast<FuKind>(K))), 0);

  for (const Operation &Op : Body.Ops) {
    const FuKind Kind = Machine.unitFor(Op.Opc);
    if (Kind == FuKind::None)
      continue;
    auto &Units = Load[static_cast<unsigned>(Kind)];
    size_t Best = 0;
    for (size_t U = 1; U < Units.size(); ++U)
      if (Units[U] < Units[Best])
        Best = U;
    Units[Best] += Machine.reservationCycles(Op.Opc);
    Instance[static_cast<size_t>(Op.Id)] = static_cast<int>(Best);
  }
  return Instance;
}
