//===----------------------------------------------------------------------===//
///
/// \file
/// The bidirectional slack-scheduling framework of Sections 4 and 5, plus
/// (via SchedulerOptions) the Cydrome-style baseline of Section 8.
///
/// The central loop, per Section 4.2:
///  1. choose the unplaced operation with minimum dynamic priority;
///  2. scan for a conflict-free issue cycle within [Estart, Lstart],
///     scanning early-to-late or late-to-early per the lifetime-sensitive
///     heuristic of Section 5.2;
///  3. if none exists, force the operation into
///     max(Estart, 1 + its last placement) and eject every conflicting
///     operation (except brtop);
///  4. place it and update the modulo resource table;
///  5. refresh Estart/Lstart bounds of unplaced operations;
///  6. if ejections exceed the budget, drop everything, increment II by
///     max(floor(0.04*II), 1), and start over.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CORE_MODULOSCHEDULER_H
#define LSMS_CORE_MODULOSCHEDULER_H

#include "core/Schedule.h"
#include "core/SchedulerOptions.h"
#include "ir/DepGraph.h"

namespace lsms {

/// Modulo schedules \p Graph's loop body under \p Options. Deterministic:
/// the same input always yields the same schedule.
Schedule scheduleLoop(const DepGraph &Graph,
                      const SchedulerOptions &Options = SchedulerOptions());

/// Convenience overload building the dependence graph internally.
Schedule scheduleLoop(const LoopBody &Body, const MachineModel &Machine,
                      const SchedulerOptions &Options = SchedulerOptions());

} // namespace lsms

#endif // LSMS_CORE_MODULOSCHEDULER_H
