#include "store/ScheduleStore.h"

#include "support/Crc32.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace lsms;

//===----------------------------------------------------------------------===//
// Little-endian serialization
//===----------------------------------------------------------------------===//

namespace {

void putU8(std::string &Out, uint8_t V) {
  Out.push_back(static_cast<char>(V));
}

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putI32(std::string &Out, int32_t V) { putU32(Out, static_cast<uint32_t>(V)); }
void putI64(std::string &Out, int64_t V) { putU64(Out, static_cast<uint64_t>(V)); }

/// Bounds-checked little-endian reader over a byte range.
struct Reader {
  const unsigned char *P;
  size_t Len;
  size_t Off = 0;
  bool Bad = false;

  bool need(size_t N) {
    if (Bad || Len - Off < N) {
      Bad = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return P[Off++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(P[Off++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(P[Off++]) << (8 * I);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
};

/// Decodes one record payload. Returns false on any structural problem.
bool decodePayload(const unsigned char *Data, size_t Len, CacheKey &Key,
                   CachedSchedule &Value) {
  Reader R{Data, Len};
  Key.Hi = R.u64();
  Key.Lo = R.u64();
  Key.Aux = R.u64();
  const uint8_t Version = R.u8();
  if (R.Bad || Version != ScheduleStore::PayloadVersion)
    return false;
  Value = CachedSchedule();
  const uint8_t Success = R.u8();
  const uint8_t Proven = R.u8();
  const uint8_t Cert = R.u8();
  const uint8_t Status = R.u8();
  if (Success > 1 || Proven > 1 ||
      Cert > static_cast<uint8_t>(MaxLiveCertificate::SatUnsatBelow) ||
      Status > static_cast<uint8_t>(ExactStatus::Timeout))
    return false;
  Value.Success = Success;
  Value.MaxLiveProven = Proven;
  Value.Certificate = static_cast<MaxLiveCertificate>(Cert);
  Value.Status = static_cast<ExactStatus>(Status);
  Value.II = R.i32();
  Value.MII = R.i32();
  Value.ResMII = R.i32();
  Value.RecMII = R.i32();
  Value.MaxLive = R.i64();
  const uint32_t NumTimes = R.u32();
  if (R.Bad || NumTimes > ScheduleStore::MaxPayloadBytes / 4)
    return false;
  // Exactly NumTimes i32s must remain — no slack bytes.
  if (Len - R.Off != static_cast<size_t>(NumTimes) * 4)
    return false;
  Value.Times.reserve(NumTimes);
  for (uint32_t I = 0; I < NumTimes; ++I)
    Value.Times.push_back(R.i32());
  return !R.Bad;
}

/// Folds a loop fingerprint into the LoopIndex bucket key.
uint64_t loopIndexKey(uint64_t Hi, uint64_t Lo) {
  uint64_t H = Hi ^ (Lo * 0x9e3779b97f4a7c15ULL);
  H ^= H >> 33;
  return H;
}

} // namespace

void lsms::appendStoreRecord(std::string &Out, const CacheKey &Key,
                             const CachedSchedule &Value) {
  std::string Payload;
  Payload.reserve(64 + Value.Times.size() * 4);
  putU64(Payload, Key.Hi);
  putU64(Payload, Key.Lo);
  putU64(Payload, Key.Aux);
  putU8(Payload, ScheduleStore::PayloadVersion);
  putU8(Payload, Value.Success ? 1 : 0);
  putU8(Payload, Value.MaxLiveProven ? 1 : 0);
  putU8(Payload, static_cast<uint8_t>(Value.Certificate));
  putU8(Payload, static_cast<uint8_t>(Value.Status));
  putI32(Payload, Value.II);
  putI32(Payload, Value.MII);
  putI32(Payload, Value.ResMII);
  putI32(Payload, Value.RecMII);
  putI64(Payload, Value.MaxLive);
  putU32(Payload, static_cast<uint32_t>(Value.Times.size()));
  for (const int T : Value.Times)
    putI32(Payload, T);

  putU32(Out, ScheduleStore::RecordMagic);
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out += Payload;
}

//===----------------------------------------------------------------------===//
// ScheduleStore
//===----------------------------------------------------------------------===//

ScheduleStore::~ScheduleStore() { close(); }

bool ScheduleStore::isOpen() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Fd >= 0;
}

bool ScheduleStore::open(const std::string &Path, std::string &Err) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0) {
    Err = "store already open at '" + LogPath + "'";
    return false;
  }
  const int NewFd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (NewFd < 0) {
    Err = "cannot open '" + Path + "': " + std::strerror(errno);
    return false;
  }

  // Read the whole log (records are small; logs are bounded by
  // compaction) and replay it.
  std::string Bytes;
  {
    char Buf[1 << 16];
    ssize_t N;
    while ((N = ::read(NewFd, Buf, sizeof(Buf))) > 0)
      Bytes.append(Buf, static_cast<size_t>(N));
    if (N < 0) {
      Err = "cannot read '" + Path + "': " + std::strerror(errno);
      ::close(NewFd);
      return false;
    }
  }

  Index.clear();
  LoopIndex.clear();
  Recovered = 0;
  Truncated = 0;
  Torn = 0;
  Dead = 0;
  const auto *Data = reinterpret_cast<const unsigned char *>(Bytes.data());
  size_t Off = 0;
  while (Bytes.size() - Off >= RecordHeaderBytes) {
    Reader H{Data + Off, RecordHeaderBytes};
    const uint32_t Magic = H.u32();
    const uint32_t Len = H.u32();
    const uint32_t Crc = H.u32();
    if (Magic != RecordMagic || Len > MaxPayloadBytes ||
        Len > Bytes.size() - Off - RecordHeaderBytes)
      break;
    const unsigned char *Payload = Data + Off + RecordHeaderBytes;
    if (crc32(Payload, Len) != Crc)
      break;
    CacheKey Key;
    CachedSchedule Value;
    if (!decodePayload(Payload, Len, Key, Value))
      break;
    const long RecordBytes = static_cast<long>(RecordHeaderBytes + Len);
    const auto It = Index.find(Key);
    if (It != Index.end()) {
      Dead += It->second.RecordBytes;
      It->second = IndexEntry{std::move(Value), RecordBytes};
    } else {
      Index.emplace(Key, IndexEntry{std::move(Value), RecordBytes});
      LoopIndex[loopIndexKey(Key.Hi, Key.Lo)].push_back(Key);
    }
    ++Recovered;
    Off += static_cast<size_t>(RecordBytes);
  }
  if (Off < Bytes.size()) {
    // Torn or corrupt tail: drop it so the next append starts on a clean
    // record boundary. Count the record starts the tail held — each
    // sighting of the record magic is one torn record; a tail cut before
    // its magic completed still counts as one.
    Truncated = static_cast<long>(Bytes.size() - Off);
    for (size_t P = Off; P + 4 <= Bytes.size(); ++P) {
      uint32_t Word = 0;
      for (int I = 0; I < 4; ++I)
        Word |= static_cast<uint32_t>(Data[P + static_cast<size_t>(I)])
                << (8 * I);
      if (Word == RecordMagic)
        ++Torn;
    }
    if (Torn == 0)
      Torn = 1;
    std::cerr << "store: recovered " << Recovered << " records from '"
              << Path << "', dropped " << Truncated << " torn tail bytes ("
              << Torn << " torn record" << (Torn == 1 ? "" : "s") << ")\n";
    if (::ftruncate(NewFd, static_cast<off_t>(Off)) != 0) {
      Err = "cannot truncate torn tail of '" + Path +
            "': " + std::strerror(errno);
      ::close(NewFd);
      Index.clear();
      return false;
    }
  }
  if (::lseek(NewFd, 0, SEEK_END) < 0) {
    Err = "cannot seek '" + Path + "': " + std::strerror(errno);
    ::close(NewFd);
    Index.clear();
    return false;
  }

  Fd = NewFd;
  LogPath = Path;
  LogSize = static_cast<long>(Off);
  return true;
}

void ScheduleStore::close() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
  Fd = -1;
  Index.clear();
  LoopIndex.clear();
}

bool ScheduleStore::get(const CacheKey &Key, CachedSchedule &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return false;
  const auto It = Index.find(Key);
  if (It == Index.end()) {
    ++MissCount;
    return false;
  }
  Out = It->second.Value;
  ++HitCount;
  return true;
}

bool ScheduleStore::getByLoop(uint64_t Hi, uint64_t Lo, CachedSchedule &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return false;
  const auto Bucket = LoopIndex.find(loopIndexKey(Hi, Lo));
  if (Bucket != LoopIndex.end()) {
    for (const CacheKey &Key : Bucket->second) {
      if (Key.Hi != Hi || Key.Lo != Lo)
        continue; // bucket collision across distinct loops
      const auto It = Index.find(Key);
      if (It != Index.end() && It->second.Value.Success) {
        Out = It->second.Value;
        ++HitCount;
        return true;
      }
    }
  }
  ++MissCount;
  return false;
}

bool ScheduleStore::appendRecordLocked(const CacheKey &Key,
                                       const CachedSchedule &Value,
                                       long &RecordBytes) {
  std::string Record;
  appendStoreRecord(Record, Key, Value);
  RecordBytes = static_cast<long>(Record.size());
  size_t Done = 0;
  while (Done < Record.size()) {
    const ssize_t N =
        ::write(Fd, Record.data() + Done, Record.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  LogSize += RecordBytes;
  ++AppendCount;
  return true;
}

bool ScheduleStore::put(const CacheKey &Key, const CachedSchedule &Value) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return false;
  const auto It = Index.find(Key);
  if (It != Index.end()) {
    const CachedSchedule &Old = It->second.Value;
    const bool Same =
        Old.Success == Value.Success && Old.II == Value.II &&
        Old.MII == Value.MII && Old.ResMII == Value.ResMII &&
        Old.RecMII == Value.RecMII && Old.MaxLive == Value.MaxLive &&
        Old.MaxLiveProven == Value.MaxLiveProven &&
        Old.Certificate == Value.Certificate && Old.Status == Value.Status &&
        Old.Times == Value.Times;
    if (Same)
      return true; // warm replay: nothing new to persist
  }
  long RecordBytes = 0;
  if (!appendRecordLocked(Key, Value, RecordBytes))
    return false;
  if (It != Index.end()) {
    Dead += It->second.RecordBytes;
    It->second = IndexEntry{Value, RecordBytes};
  } else {
    Index.emplace(Key, IndexEntry{Value, RecordBytes});
    LoopIndex[loopIndexKey(Key.Hi, Key.Lo)].push_back(Key);
  }
  // Periodic compaction: once superseded records dominate a log that has
  // grown past a trivial size, rewrite it. Failure is non-fatal — the log
  // keeps appending and the next put retries.
  if (LogSize > (1L << 16) && Dead * 2 > LogSize) {
    std::string Err;
    (void)compactLocked(Err);
  }
  return true;
}

bool ScheduleStore::compact(std::string &Err) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0) {
    Err = "store is closed";
    return false;
  }
  return compactLocked(Err);
}

bool ScheduleStore::compactLocked(std::string &Err) {
  // Deterministic record order: sort live keys.
  std::vector<const std::pair<const CacheKey, IndexEntry> *> Live;
  Live.reserve(Index.size());
  for (const auto &KV : Index)
    Live.push_back(&KV);
  std::sort(Live.begin(), Live.end(), [](const auto *A, const auto *B) {
    if (A->first.Hi != B->first.Hi)
      return A->first.Hi < B->first.Hi;
    if (A->first.Lo != B->first.Lo)
      return A->first.Lo < B->first.Lo;
    return A->first.Aux < B->first.Aux;
  });

  const std::string TmpPath = LogPath + ".compact";
  const int TmpFd =
      ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (TmpFd < 0) {
    Err = "cannot open '" + TmpPath + "': " + std::strerror(errno);
    return false;
  }
  std::string Bytes;
  for (const auto *KV : Live)
    appendStoreRecord(Bytes, KV->first, KV->second.Value);
  size_t Done = 0;
  while (Done < Bytes.size()) {
    const ssize_t N = ::write(TmpFd, Bytes.data() + Done, Bytes.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = "cannot write '" + TmpPath + "': " + std::strerror(errno);
      ::close(TmpFd);
      ::unlink(TmpPath.c_str());
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  if (::fsync(TmpFd) != 0 || ::rename(TmpPath.c_str(), LogPath.c_str()) != 0) {
    Err = "cannot commit '" + TmpPath + "': " + std::strerror(errno);
    ::close(TmpFd);
    ::unlink(TmpPath.c_str());
    return false;
  }
  // The renamed file is now the log; keep appending to it.
  ::close(Fd);
  Fd = TmpFd;
  LogSize = static_cast<long>(Bytes.size());
  Dead = 0;
  ++CompactionCount;
  // Record sizes may have changed only if serialization changed; they have
  // not, but refresh RecordBytes bookkeeping anyway for robustness.
  return true;
}

bool ScheduleStore::sync() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return false;
  return ::fsync(Fd) == 0;
}

ScheduleStoreStats ScheduleStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  ScheduleStoreStats S;
  S.Hits = HitCount;
  S.Misses = MissCount;
  S.Appends = AppendCount;
  S.LiveKeys = static_cast<long>(Index.size());
  S.RecoveredRecords = Recovered;
  S.TruncatedBytes = Truncated;
  S.TornRecords = Torn;
  S.Compactions = CompactionCount;
  S.LogBytes = LogSize;
  S.DeadBytes = Dead;
  return S;
}
