//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent content-addressed schedule store: the cache tier below the
/// scheduling service's in-memory sharded LRU, so certified schedules
/// survive restarts. The on-disk format is an append-only record log; a
/// full in-memory index (the latest value per key) is rebuilt on open.
///
/// Each record is
///
///   u32 magic | u32 payload-length | u32 crc32(payload) | payload
///
/// with a little-endian payload of the 192-bit cache key (canonical loop
/// fingerprint + options aux hash) followed by a versioned serialization
/// of the CachedSchedule. Recovery scans from the front and stops at the
/// first record that is short, mis-magicked, CRC-inconsistent, or
/// undecodable; everything from that offset on is a torn tail and is
/// truncated away (a crash mid-append loses at most the record being
/// written, never an earlier one). Re-putting a key appends a superseding
/// record; compaction rewrites only the live (latest-per-key) records into
/// a fresh log and atomically renames it into place. put() triggers
/// compaction automatically once dead bytes dominate a non-trivial log.
///
/// Thread-safe: one mutex serializes appends, lookups, and compaction.
/// Lookups are index reads and never touch the disk.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_STORE_SCHEDULESTORE_H
#define LSMS_STORE_SCHEDULESTORE_H

#include "service/ScheduleCache.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace lsms {

/// Point-in-time statistics for one ScheduleStore.
struct ScheduleStoreStats {
  long Hits = 0;             ///< get() found the key
  long Misses = 0;           ///< get() did not
  long Appends = 0;          ///< records appended this session
  long LiveKeys = 0;         ///< distinct keys in the index
  long RecoveredRecords = 0; ///< valid records replayed by open()
  long TruncatedBytes = 0;   ///< torn/corrupt tail bytes dropped by open()
  /// Record starts (magic sightings) inside the dropped tail; a tail cut
  /// before its magic completed still counts as one torn record.
  long TornRecords = 0;
  long Compactions = 0;      ///< compactions run this session
  long LogBytes = 0;         ///< current log file size
  long DeadBytes = 0;        ///< bytes held by superseded records

  double hitRate() const {
    const long Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// The persistent store. Disabled (all operations no-ops returning false)
/// until open() succeeds.
class ScheduleStore {
public:
  /// Record header constants, shared with the tests that corrupt logs.
  static constexpr uint32_t RecordMagic = 0x4C535231; // "LSR1"
  static constexpr size_t RecordHeaderBytes = 12;
  /// Serialization version inside the payload.
  static constexpr uint8_t PayloadVersion = 1;
  /// Records beyond this are rejected as corrupt (no legal loop body
  /// approaches it).
  static constexpr uint32_t MaxPayloadBytes = 1u << 24;

  ScheduleStore() = default;
  ~ScheduleStore();
  ScheduleStore(const ScheduleStore &) = delete;
  ScheduleStore &operator=(const ScheduleStore &) = delete;

  /// Opens (creating if absent) the log at \p Path, replays every valid
  /// record into the index, and truncates any torn tail. Returns false
  /// with a diagnostic on I/O errors; the store is then disabled.
  bool open(const std::string &Path, std::string &Err);

  /// Flushes and closes the log; the store becomes disabled.
  void close();

  bool isOpen() const;
  const std::string &path() const { return LogPath; }

  /// Index lookup; copies the latest value for \p Key into \p Out.
  bool get(const CacheKey &Key, CachedSchedule &Out);

  /// Nearest-answer lookup for the overload ladder's cached tier: the
  /// first successful record whose canonical loop fingerprint is
  /// (Hi, Lo), under ANY options aux — i.e. a schedule for this exact
  /// loop computed under a different engine or budget configuration.
  /// Deterministic (first-inserted wins). Returns false when no
  /// successful record exists for the loop.
  bool getByLoop(uint64_t Hi, uint64_t Lo, CachedSchedule &Out);

  /// Appends a record for \p Key and updates the index. Appending the
  /// same key/value pair again is a no-op (keeps replayed warm traffic
  /// from growing the log). May trigger an automatic compaction. Returns
  /// false on I/O failure or when closed.
  bool put(const CacheKey &Key, const CachedSchedule &Value);

  /// Rewrites the log to exactly the live records (deterministic key
  /// order), fsyncs, and atomically renames it over the old log.
  bool compact(std::string &Err);

  /// Durably flushes appended records (fsync).
  bool sync();

  ScheduleStoreStats stats() const;

private:
  struct KeyHash {
    size_t operator()(const CacheKey &K) const {
      uint64_t H = K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ULL) ^
                   (K.Aux * 0xff51afd7ed558ccdULL);
      H ^= H >> 33;
      return static_cast<size_t>(H);
    }
  };

  struct IndexEntry {
    CachedSchedule Value;
    long RecordBytes = 0; ///< full on-disk size of the latest record
  };

  bool appendRecordLocked(const CacheKey &Key, const CachedSchedule &Value,
                          long &RecordBytes);
  bool compactLocked(std::string &Err);

  mutable std::mutex Mu;
  int Fd = -1;
  std::string LogPath;
  std::unordered_map<CacheKey, IndexEntry, KeyHash> Index;
  /// Secondary index for getByLoop: loop fingerprint (Hi, Lo, aux
  /// ignored) -> every full key seen for that loop, in insertion order.
  std::unordered_map<uint64_t, std::vector<CacheKey>> LoopIndex;

  long HitCount = 0, MissCount = 0, AppendCount = 0;
  long Recovered = 0, Truncated = 0, Torn = 0, CompactionCount = 0;
  long LogSize = 0, Dead = 0;
};

/// Serializes one record (header + payload) for \p Key and \p Value into
/// \p Out; exposed so the tests and compaction share the writer.
void appendStoreRecord(std::string &Out, const CacheKey &Key,
                       const CachedSchedule &Value);

} // namespace lsms

#endif // LSMS_STORE_SCHEDULESTORE_H
