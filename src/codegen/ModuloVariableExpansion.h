//===----------------------------------------------------------------------===//
///
/// \file
/// Modulo variable expansion (MVE): the alternative to rotating register
/// files for conventional machines (Section 2.3, citing Lam [9]). When a
/// value's lifetime exceeds II, successive iterations cannot target the
/// same register, so the *kernel* is unrolled and the value's register is
/// renamed across kernel copies. The paper adopts rotating files instead
/// because "this modulo variable expansion technique can result in a large
/// amount of code expansion [18]" — this module quantifies that trade-off.
///
/// A value needing u = ceil(LT/II) simultaneous instances receives u
/// registers cycled by iteration number mod u; for the renaming to be
/// static, u must divide the kernel unroll factor U, so each value's slot
/// count is rounded up to the smallest divisor of U no smaller than u
/// (U itself being max over values of u).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CODEGEN_MODULOVARIABLEEXPANSION_H
#define LSMS_CODEGEN_MODULOVARIABLEEXPANSION_H

#include "core/Schedule.h"
#include "ir/LoopBody.h"

#include <string>
#include <vector>

namespace lsms {

/// The MVE plan for one scheduled loop.
struct MveInfo {
  bool Success = false;
  /// Kernel unroll factor: max over values of ceil(LT/II).
  int UnrollFactor = 1;
  /// Registers per value id (0 for values without uses / other classes);
  /// the smallest divisor of UnrollFactor >= ceil(LT/II).
  std::vector<int> Slots;
  /// Total conventional registers needed for the class.
  long TotalRegisters = 0;
  /// Kernel operations after unrolling (code expansion proxy):
  /// UnrollFactor * (machine ops in the body).
  long ExpandedKernelOps = 0;
  /// The rotating-file alternative's pressure, for comparison.
  long MaxLive = 0;
};

/// Plans modulo variable expansion for \p Class values of \p Body under
/// \p Sched.
MveInfo planMve(const LoopBody &Body, const Schedule &Sched,
                RegClass Class = RegClass::RR);

/// Validates the plan by brute force: instances j and j' of a value map to
/// the same register iff j == j' (mod slots); no two live instances may
/// collide. Returns an empty string when sound.
std::string validateMve(const LoopBody &Body, const Schedule &Sched,
                        RegClass Class, const MveInfo &Info);

} // namespace lsms

#endif // LSMS_CODEGEN_MODULOVARIABLEEXPANSION_H
