//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a scheduled loop body plus rotating-register allocations into
/// kernel-only VLIW code (see KernelCode.h for the specifier convention).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CODEGEN_KERNELCODEGEN_H
#define LSMS_CODEGEN_KERNELCODEGEN_H

#include "codegen/KernelCode.h"
#include "core/Schedule.h"
#include "ir/LoopBody.h"

#include <string>

namespace lsms {

/// Generates kernel-only code for \p Sched (which must be a successful
/// schedule of \p Body). Performs RR and ICR rotating allocation
/// internally (the ICR allocation includes the stage-predicate chain).
/// Returns an empty string and fills \p Out on success, else a diagnostic.
std::string generateKernelCode(const LoopBody &Body, const Schedule &Sched,
                               KernelCode &Out);

} // namespace lsms

#endif // LSMS_CODEGEN_KERNELCODEGEN_H
