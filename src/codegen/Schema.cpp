#include "codegen/Schema.h"

#include <algorithm>
#include <vector>

using namespace lsms;

SchemaInfo lsms::planSchema(const LoopBody &Body, const Schedule &Sched) {
  SchemaInfo Info;
  if (!Sched.Success)
    return Info;

  const int Span = Sched.Success ? Sched.Times[1] : 0;
  Info.StageCount = std::max(1, (Span + Sched.II - 1) / Sched.II);
  Info.MinTripCount = Info.StageCount;

  // Operations per stage.
  std::vector<long> PerStage(static_cast<size_t>(Info.StageCount), 0);
  for (const Operation &Op : Body.Ops) {
    if (isPseudo(Op.Opc))
      continue;
    const int Stage = Sched.Times[static_cast<size_t>(Op.Id)] / Sched.II;
    ++PerStage[static_cast<size_t>(Stage)];
    ++Info.KernelOps;
  }

  // Prologue copy p holds stages 0..p; epilogue copy e holds stages
  // e+1..SC-1 (e = 0..SC-2).
  for (int P = 0; P < Info.StageCount - 1; ++P)
    for (int S = 0; S <= P; ++S)
      Info.PrologueOps += PerStage[static_cast<size_t>(S)];
  for (int E = 0; E < Info.StageCount - 1; ++E)
    for (int S = E + 1; S < Info.StageCount; ++S)
      Info.EpilogueOps += PerStage[static_cast<size_t>(S)];

  Info.Success = true;
  return Info;
}
