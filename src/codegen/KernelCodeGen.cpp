#include "codegen/KernelCodeGen.h"

#include "regalloc/RotatingAllocator.h"

#include <algorithm>
#include <ostream>
#include <sstream>

using namespace lsms;

namespace {

RegRef rotatingRef(RegRef::File File, int Color, int Omega, int Stage) {
  RegRef Ref;
  Ref.WhichFile = File;
  Ref.Rotating = true;
  Ref.Spec = Color + Omega + Stage;
  return Ref;
}

} // namespace

std::string lsms::generateKernelCode(const LoopBody &Body,
                                     const Schedule &Sched, KernelCode &Out) {
  if (!Sched.Success)
    return "cannot generate code for a failed schedule";
  // Irregular bodies stop at the scheduling/replay layers: the kernel
  // specifier encodes affine address streams and a counted trip, neither
  // of which covers data-dependent subscripts or a while-exit.
  if (Body.isWhileLoop())
    return "cannot generate kernel code for a while-loop";
  for (const Operation &Op : Body.Ops)
    if (Op.Indirect)
      return "cannot generate kernel code for data-dependent subscripts";

  Out = KernelCode();
  Out.II = Sched.II;
  const int Span = Sched.length();
  Out.StageCount = std::max(1, (Span + Sched.II - 1) / Sched.II);

  // Rotating allocations. The stage-predicate chain is one logical value
  // defined at cycle 0 each iteration and live for StageCount * II cycles;
  // it is co-allocated with the if-conversion predicates.
  const AllocationResult RR =
      allocateRotating(Body, Sched.Times, Sched.II, RegClass::RR);
  if (!RR.Success)
    return "rotating register allocation failed";
  // The chain instance for source iteration j is published by brtop at the
  // end of the previous kernel iteration (cycle j*II - 1), before any of
  // iteration j's reads — hence the -1 start.
  const std::vector<ExtraRange> StageChain = {
      {-1, static_cast<long>(Out.StageCount) * Sched.II + 1}};
  const AllocationResult ICR = allocateRotating(
      Body, Sched.Times, Sched.II, RegClass::ICR, 4096, StageChain);
  if (!ICR.Success)
    return "rotating predicate allocation failed";

  Out.RRSize = std::max(RR.FileSize, 1);
  Out.ICRSize = ICR.FileSize;
  Out.StagePredColor = ICR.ExtraColor.at(0);
  Out.RRColor = RR.Color;
  Out.ICRColor = ICR.Color;

  // GPR assignment: one register per loop input, in value order.
  Out.GprIndex.assign(static_cast<size_t>(Body.numValues()), -1);
  for (const Value &V : Body.Values) {
    if (V.Class != RegClass::GPR)
      continue;
    Out.GprIndex[static_cast<size_t>(V.Id)] = Out.GprCount++;
    Out.GprInit.push_back(V.Init);
  }

  auto MakeSrc = [&](const Use &U, int Stage) -> RegRef {
    const Value &V = Body.value(U.Value);
    if (V.Class == RegClass::GPR) {
      RegRef Ref;
      Ref.WhichFile = RegRef::File::GPR;
      Ref.Spec = Out.GprIndex[static_cast<size_t>(U.Value)];
      return Ref;
    }
    const bool Pred = V.Class == RegClass::ICR;
    const int Color = (Pred ? ICR : RR).Color[static_cast<size_t>(U.Value)];
    if (Color < 0) {
      // The value was never read in the loop (dead); it has no register.
      // Uses of such values cannot occur — guarded by the IR.
      RegRef Ref;
      Ref.WhichFile = RegRef::File::None;
      return Ref;
    }
    return rotatingRef(Pred ? RegRef::File::ICR : RegRef::File::RR, Color,
                       U.Omega, Stage);
  };

  for (const Operation &Op : Body.Ops) {
    if (isPseudo(Op.Opc))
      continue;
    KernelOp K;
    K.Opc = Op.Opc;
    const int Time = Sched.Times[static_cast<size_t>(Op.Id)];
    K.Stage = Time / Sched.II;
    K.Cycle = Time % Sched.II;
    K.OrigOp = Op.Id;
    K.ArrayId = Op.ArrayId;
    K.ElemOffset = Op.ElemOffset;
    K.ElemStride = Op.ElemStride;
    K.StagePredSpec = Out.StagePredColor + K.Stage;

    for (const Use &U : Op.Operands)
      K.Srcs.push_back(MakeSrc(U, K.Stage));
    if (Op.PredValue >= 0)
      K.UserPred = MakeSrc(Use{Op.PredValue, Op.PredOmega}, K.Stage);

    if (Op.Result >= 0) {
      const Value &V = Body.value(Op.Result);
      const bool Pred = V.Class == RegClass::ICR;
      const int Color =
          (Pred ? ICR : RR).Color[static_cast<size_t>(Op.Result)];
      if (Color >= 0)
        K.Dst = rotatingRef(Pred ? RegRef::File::ICR : RegRef::File::RR,
                            Color, /*Omega=*/0, K.Stage);
    }
    Out.Ops.push_back(std::move(K));
  }

  std::stable_sort(Out.Ops.begin(), Out.Ops.end(),
                   [](const KernelOp &A, const KernelOp &B) {
                     return A.Cycle < B.Cycle;
                   });
  return std::string();
}

void KernelCode::print(std::ostream &OS, const LoopBody &Body) const {
  OS << "kernel II=" << II << " stages=" << StageCount << " RR[" << RRSize
     << "] ICR[" << ICRSize << "] GPR[" << GprCount << "]\n";
  for (int Cycle = 0; Cycle < II; ++Cycle) {
    OS << "  c" << Cycle << ":";
    bool Any = false;
    for (const KernelOp &Op : Ops) {
      if (Op.Cycle != Cycle)
        continue;
      Any = true;
      OS << "  " << opcodeName(Op.Opc) << "[s" << Op.Stage << "]";
      auto PrintRef = [&OS](const RegRef &Ref) {
        switch (Ref.WhichFile) {
        case RegRef::File::None:
          OS << " _";
          break;
        case RegRef::File::RR:
          OS << " rr" << Ref.Spec;
          break;
        case RegRef::File::GPR:
          OS << " g" << Ref.Spec;
          break;
        case RegRef::File::ICR:
          OS << " p" << Ref.Spec;
          break;
        }
      };
      if (Op.Dst.WhichFile != RegRef::File::None) {
        PrintRef(Op.Dst);
        OS << " =";
      }
      for (const RegRef &Src : Op.Srcs)
        PrintRef(Src);
      if (Op.ArrayId >= 0)
        OS << " @" << (static_cast<size_t>(Op.ArrayId) <
                               Body.ArrayNames.size()
                           ? Body.ArrayNames[static_cast<size_t>(Op.ArrayId)]
                           : std::to_string(Op.ArrayId))
           << "[i" << (Op.ElemOffset >= 0 ? "+" : "") << Op.ElemOffset
           << "]";
      if (Op.UserPred.WhichFile != RegRef::File::None) {
        OS << " if";
        PrintRef(Op.UserPred);
      }
    }
    if (!Any)
      OS << "  (no-op)";
    OS << '\n';
  }
}
