//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel-only code for a modulo-scheduled loop (Section 2.3 and Rau et
/// al. [19]): one VLIW instruction word per kernel cycle, rotating
/// register specifiers for loop variants, GPR indices for invariants, and
/// a rotating stage-predicate chain that squashes operations of iterations
/// that have not started or have already finished — no prologue/epilogue
/// code is emitted.
///
/// Register specifier convention: the file rotates once per kernel
/// iteration (the iteration control pointer ICP decrements), so in kernel
/// iteration k a specifier S addresses physical register (S - k) mod size.
/// An operation of stage s defining a value with allocator color C uses
/// specifier C + s; a use omega iterations later in stage s' uses
/// C + omega + s'.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CODEGEN_KERNELCODE_H
#define LSMS_CODEGEN_KERNELCODE_H

#include "ir/LoopBody.h"

#include <iosfwd>
#include <vector>

namespace lsms {

/// A register reference in emitted code.
struct RegRef {
  enum class File : uint8_t { None, RR, GPR, ICR };
  File WhichFile = File::None;
  bool Rotating = false;
  int Spec = 0; ///< rotating specifier or absolute GPR index
};

/// One operation slotted into the kernel.
struct KernelOp {
  Opcode Opc = Opcode::Start;
  int Cycle = 0; ///< kernel cycle, 0..II-1
  int Stage = 0; ///< floor(schedule time / II)
  std::vector<RegRef> Srcs;
  RegRef Dst;
  /// Rotating ICR specifier of the stage predicate gating this op.
  int StagePredSpec = 0;
  /// Optional if-conversion predicate (ICR), File::None when always-on.
  RegRef UserPred;
  int ArrayId = -1; ///< loads/stores
  int ElemOffset = 0;
  int ElemStride = 1;
  int OrigOp = -1; ///< originating LoopBody operation
};

/// The complete kernel.
struct KernelCode {
  int II = 0;
  int StageCount = 0;
  int RRSize = 0;  ///< rotating register file size
  int ICRSize = 0; ///< rotating predicate file size
  int GprCount = 0;
  /// Rotating ICR color of the stage-predicate chain: stage s reads
  /// specifier StagePredColor + s.
  int StagePredColor = 0;
  /// GPR index per invariant value id (-1 otherwise) and its initial
  /// contents.
  std::vector<int> GprIndex;
  std::vector<double> GprInit;
  /// Allocator colors per value id (-1 when the value has no register),
  /// kept so the simulator can preload seeds and read back live-outs.
  std::vector<int> RRColor;
  std::vector<int> ICRColor;
  /// Kernel operations sorted by cycle.
  std::vector<KernelOp> Ops;

  /// Prints a VLIW listing, one instruction word per kernel cycle.
  void print(std::ostream &OS, const LoopBody &Body) const;
};

} // namespace lsms

#endif // LSMS_CODEGEN_KERNELCODE_H
