#include "codegen/ModuloVariableExpansion.h"

#include "bounds/Lifetimes.h"

#include <algorithm>
#include <sstream>

using namespace lsms;

namespace {

/// Smallest divisor of \p U that is >= \p Need.
int roundUpToDivisor(int Need, int U) {
  for (int D = Need; D <= U; ++D)
    if (U % D == 0)
      return D;
  return U;
}

} // namespace

MveInfo lsms::planMve(const LoopBody &Body, const Schedule &Sched,
                      RegClass Class) {
  MveInfo Info;
  Info.Slots.assign(static_cast<size_t>(Body.numValues()), 0);
  if (!Sched.Success)
    return Info;

  const PressureInfo Pressure =
      computePressure(Body, Sched.Times, Sched.II, Class);
  Info.MaxLive = Pressure.MaxLive;

  int U = 1;
  for (const Value &V : Body.Values) {
    if (V.Class != Class)
      continue;
    const long LT = Pressure.Length[static_cast<size_t>(V.Id)];
    if (LT <= 0)
      continue;
    U = std::max(U, static_cast<int>((LT + Sched.II - 1) / Sched.II));
  }
  Info.UnrollFactor = U;

  for (const Value &V : Body.Values) {
    if (V.Class != Class)
      continue;
    const long LT = Pressure.Length[static_cast<size_t>(V.Id)];
    if (LT <= 0)
      continue;
    const int Need = static_cast<int>((LT + Sched.II - 1) / Sched.II);
    const int Slots = roundUpToDivisor(Need, U);
    Info.Slots[static_cast<size_t>(V.Id)] = Slots;
    Info.TotalRegisters += Slots;
  }

  Info.ExpandedKernelOps =
      static_cast<long>(U) * Body.numMachineOps();
  Info.Success = true;
  return Info;
}

std::string lsms::validateMve(const LoopBody &Body, const Schedule &Sched,
                              RegClass Class, const MveInfo &Info) {
  std::ostringstream Err;
  if (!Info.Success) {
    Err << "MVE plan unsuccessful";
    return Err.str();
  }
  const PressureInfo Pressure =
      computePressure(Body, Sched.Times, Sched.II, Class);

  for (const Value &V : Body.Values) {
    if (V.Class != Class)
      continue;
    const long LT = Pressure.Length[static_cast<size_t>(V.Id)];
    if (LT <= 0)
      continue;
    const int Slots = Info.Slots[static_cast<size_t>(V.Id)];
    if (Slots <= 0) {
      Err << "live value " << V.Name << " received no slots";
      return Err.str();
    }
    if (Info.UnrollFactor % Slots != 0) {
      Err << "slot count of " << V.Name
          << " does not divide the kernel unroll factor";
      return Err.str();
    }
    // Instances j and j + k*Slots share a register; their live intervals
    // [j*II, j*II + LT) must not overlap for any k >= 1.
    for (long J = 0; J < Info.UnrollFactor; ++J) {
      const long Next = (J + Slots) * Sched.II;
      if (J * Sched.II + LT > Next) {
        Err << "instances of " << V.Name << " overlap in slot "
            << J % Slots;
        return Err.str();
      }
    }
  }
  return Err.str();
}
