//===----------------------------------------------------------------------===//
///
/// \file
/// Prologue / kernel / epilogue code-generation schema (Rau et al. [19],
/// cited in Sections 2.2-2.3): on machines without the brtop/stage-
/// predicate support, the pipeline's fill and drain phases must be emitted
/// as explicit code — StageCount-1 partial kernel copies before and after
/// the kernel — "at the expense of code expansion". This module plans the
/// schema (quantifying that expansion) and the machine simulator can
/// execute it (runSchemaCode) to show it computes the same results as the
/// kernel-only predicated form.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CODEGEN_SCHEMA_H
#define LSMS_CODEGEN_SCHEMA_H

#include "codegen/KernelCode.h"
#include "core/Schedule.h"
#include "ir/LoopBody.h"

namespace lsms {

/// Static shape of the prologue/kernel/epilogue expansion of one schedule.
struct SchemaInfo {
  bool Success = false;
  int StageCount = 0;
  long KernelOps = 0;   ///< operations in the steady-state kernel
  long PrologueOps = 0; ///< operations across the StageCount-1 fill copies
  long EpilogueOps = 0; ///< operations across the StageCount-1 drain copies
  /// Minimum trip count the schema supports without a scalar cleanup loop.
  int MinTripCount = 0;

  long totalOps() const { return KernelOps + PrologueOps + EpilogueOps; }
};

/// Plans the schema for \p Sched: prologue copy p (p = 0..SC-2) holds the
/// operations of stages <= p; epilogue copy e holds stages >= e+1.
SchemaInfo planSchema(const LoopBody &Body, const Schedule &Sched);

} // namespace lsms

#endif // LSMS_CODEGEN_SCHEMA_H
