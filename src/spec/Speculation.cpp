#include "spec/Speculation.h"

#include "support/Compiler.h"

#include <map>
#include <sstream>

using namespace lsms;

const char *lsms::assumptionKindName(AssumptionKind Kind) {
  switch (Kind) {
  case AssumptionKind::NoAlias:
    return "noalias";
  case AssumptionKind::NoEarlyExit:
    return "noearlyexit";
  }
  LSMS_UNREACHABLE("invalid assumption kind");
}

namespace {

void countArcs(const LoopBody &Body, Lowering &L) {
  for (const MemDep &D : Body.MemDeps) {
    if (D.Conf == ArcConfidence::MayAlias)
      ++L.MayAliasArcs;
    else if (D.Conf == ArcConfidence::Control)
      ++L.ControlArcs;
  }
}

} // namespace

Lowering lsms::lowerConservative(const LoopBody &Body) {
  Lowering L;
  L.Body = Body;
  countArcs(Body, L);
  return L;
}

Lowering lsms::lowerSpeculative(const LoopBody &Body,
                                const SpecOptions &Opts) {
  Lowering L;
  L.Body = Body;
  countArcs(Body, L);

  // Decide per alias group: a group is dropped only when *every* arc in it
  // qualifies (they always carry the same stamped probability, but be
  // defensive). Collect group extents for the assumption records.
  struct GroupInfo {
    int First = -1;  ///< program-order first op of the pair
    int Second = -1; ///< program-order second op
    double Prob = -1.0;
    bool Drop = true;
  };
  std::map<int, GroupInfo> Groups;
  for (const MemDep &D : Body.MemDeps) {
    if (D.Conf != ArcConfidence::MayAlias)
      continue;
    GroupInfo &G = Groups[D.AliasGroup];
    // The omega-0 arc runs in program order: its endpoints name the pair.
    if (D.Omega == 0) {
      G.First = D.Src;
      G.Second = D.Dst;
    } else if (G.First < 0) {
      G.First = D.Dst;
      G.Second = D.Src;
    }
    if (D.Prob >= 0)
      G.Prob = std::max(G.Prob, D.Prob);
    const bool Qualifies =
        D.Prob >= 0 ? D.Prob <= Opts.DropProbAtMost : Opts.SpeculateUnknown;
    if (!Qualifies)
      G.Drop = false;
  }

  const bool DropControl = Opts.SpeculateControl && Body.isWhileLoop();

  std::vector<MemDep> Kept;
  Kept.reserve(Body.MemDeps.size());
  for (const MemDep &D : Body.MemDeps) {
    const bool Drop =
        (D.Conf == ArcConfidence::MayAlias && Groups[D.AliasGroup].Drop) ||
        (D.Conf == ArcConfidence::Control && DropControl);
    if (Drop)
      ++L.DroppedArcs;
    else
      Kept.push_back(D);
  }
  L.Body.MemDeps = std::move(Kept);

  for (const auto &[Id, G] : Groups) {
    if (!G.Drop)
      continue;
    Assumption A;
    A.Kind = AssumptionKind::NoAlias;
    A.SrcOp = G.First;
    A.DstOp = G.Second;
    A.AliasGroup = Id;
    A.Prob = G.Prob;
    std::ostringstream OS;
    OS << "noalias(" << (G.First >= 0 ? Body.op(G.First).Name : "?") << ", "
       << (G.Second >= 0 ? Body.op(G.Second).Name : "?") << ")";
    A.Text = OS.str();
    L.Assumptions.push_back(std::move(A));
  }
  if (DropControl && L.ControlArcs > 0) {
    Assumption A;
    A.Kind = AssumptionKind::NoEarlyExit;
    A.Text = "noearlyexit(" + Body.value(Body.ExitValue).Name + ")";
    L.Assumptions.push_back(std::move(A));
  }
  return L;
}
