//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative vs speculative lowering of loop bodies with irregular
/// (may-alias / while-exit) dependence arcs.
///
/// The front end always emits *conservative* bodies: every may-alias site
/// is serialized at its worst-case distance and every store is fenced
/// behind the previous iteration's exit test. Those arcs are ordinary
/// MemDeps — they flow through DepGraph/MinDist untouched, so every
/// scheduler and engine sees them as plain constraints.
///
/// lowerSpeculative() produces a second body with low-confidence arcs
/// *removed*, paired with a machine-checkable Assumption list describing
/// exactly what runtime disambiguation would justify each omission. The
/// simulator (vliwsim/Replay) replays a mapped schedule against a concrete
/// memory trace and reports whether each assumption held, making
/// misspeculation observable.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SPEC_SPECULATION_H
#define LSMS_SPEC_SPECULATION_H

#include "ir/LoopBody.h"

#include <string>
#include <vector>

namespace lsms {

enum class AssumptionKind : uint8_t {
  /// The two memory accesses of a dropped may-alias group never touch the
  /// same element within the executed window.
  NoAlias,
  /// The while-exit condition never fires inside the executed window (the
  /// loop runs its full trip count), so no store needed the control fence.
  NoEarlyExit,
};

/// Returns "noalias" or "noearlyexit".
const char *assumptionKindName(AssumptionKind Kind);

/// One machine-checkable speculation record: which arcs were dropped and
/// what runtime disambiguation would validate the omission.
struct Assumption {
  AssumptionKind Kind = AssumptionKind::NoAlias;
  /// NoAlias: the two operations of the dropped alias group (program-order
  /// first/second). Unused (-1) for NoEarlyExit.
  int SrcOp = -1;
  int DstOp = -1;
  /// The alias group the dropped arcs carried (-1 for NoEarlyExit).
  int AliasGroup = -1;
  /// Collision-probability estimate the decision was based on (< 0 when
  /// the front end had none).
  double Prob = -1.0;
  /// Human-readable description for reports.
  std::string Text;
};

struct SpecOptions {
  /// Drop a may-alias group when its stamped collision probability is
  /// known and at most this threshold.
  double DropProbAtMost = 0.75;
  /// Also drop groups whose probability is unknown (< 0). Off by default:
  /// unknown-probability affine pairs are usually real dependences.
  bool SpeculateUnknown = false;
  /// Drop while-exit control fences (NoEarlyExit assumption).
  bool SpeculateControl = true;
};

/// Result of a lowering: a plain LoopBody (arcs only differ) plus the
/// assumptions backing any omissions.
struct Lowering {
  LoopBody Body;
  std::vector<Assumption> Assumptions;
  int MayAliasArcs = 0; ///< may-alias arcs in the input body
  int ControlArcs = 0;  ///< control-fence arcs in the input body
  int DroppedArcs = 0;  ///< arcs omitted by this lowering
};

/// Materializes every arc at its worst-case distance: the body is copied
/// verbatim (the front end already emits conservative arcs) and no
/// assumptions are made.
Lowering lowerConservative(const LoopBody &Body);

/// Omits low-probability may-alias groups and (optionally) control fences,
/// recording one Assumption per omission. The result still verifies and
/// schedules like any other body; its MinDist is pointwise at most the
/// conservative one, so the speculative II never exceeds the conservative
/// II for exact engines.
Lowering lowerSpeculative(const LoopBody &Body, const SpecOptions &Opts = {});

} // namespace lsms

#endif // LSMS_SPEC_SPECULATION_H
