//===----------------------------------------------------------------------===//
///
/// \file
/// The speculation sweep: lowers every irregular loop both conservatively
/// and speculatively, schedules both lowerings with the slack heuristic
/// and an exact engine, replays the speculative schedule against a
/// concrete memory trace, and aggregates the conservative/speculative II
/// gap together with assumption-violation rates.
///
/// The speculative lowering's arcs are a subset of the conservative ones,
/// so every conservative schedule is also legal for the speculative body.
/// The sweep exploits that: when the heuristic does worse on the
/// speculative body (or fails), the conservative schedule is adopted for
/// it — making "speculative II <= conservative II" a structural guarantee
/// rather than a property of the heuristic.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SPEC_SPECORACLE_H
#define LSMS_SPEC_SPECORACLE_H

#include "core/SchedulerOptions.h"
#include "exact/ExactEngine.h"
#include "spec/Speculation.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lsms {

class LoopBody;

/// Configuration of one speculation sweep.
struct IrregularOptions {
  uint64_t Seed = 0x19930601;
  int NumLoops = 40;
  int MaxOps = 48;
  /// Iteration window for the replay harness (also the window the
  /// generator's collision estimates assume).
  long Iterations = 64;
  SchedulerOptions Heuristic = SchedulerOptions::slack();
  ExactOptions Exact;
  SpecOptions Spec;
  /// Worker threads (0 = LSMS_JOBS / hardware). Results merge in loop
  /// order: the report is byte-identical for every job count.
  int Jobs = 0;

  IrregularOptions() { Exact.Engine = ExactEngineKind::Portfolio; }
};

/// One loop's conservative-vs-speculative result.
struct IrregularCase {
  std::string Name;
  int Ops = 0;
  bool IsWhile = false;
  int MayAliasArcs = 0; ///< may-alias arcs in the conservative body
  int ControlArcs = 0;  ///< control-fence arcs in the conservative body
  int DroppedArcs = 0;  ///< arcs the speculative lowering omitted
  int NumAssumptions = 0;

  bool ConsSuccess = false;
  bool SpecSuccess = false;
  int ConsII = 0, SpecII = 0;
  int ConsMII = 0, SpecMII = 0;
  /// The heuristic's speculative schedule was replaced by the conservative
  /// one (which is always legal for the speculative body) because it
  /// failed or landed on a higher II.
  bool AdoptedCons = false;
  bool IIGapValid = false;
  int IIGap = 0; ///< ConsII - SpecII (>= 0 by construction)

  ExactStatus ConsStatus = ExactStatus::Timeout;
  ExactStatus SpecStatus = ExactStatus::Timeout;
  int ConsExactII = 0, SpecExactII = 0;
  /// Both exact runs proved their II minimal: the gap is certified.
  bool CertifiedGapValid = false;
  int CertifiedGap = 0; ///< ConsExactII - SpecExactII

  // Replay of the speculative schedule against the default trace.
  bool Replayed = false;
  int AssumptionsHeld = 0;
  bool AllHeld = false;
  long Violations = 0; ///< summed over assumptions
  long MisspeculatedStores = 0;
  long ActualTrip = 0; ///< iterations the reference actually executed
  /// The conservative schedule reproduced the reference trace (must always
  /// hold) and the speculative one did where its assumptions held.
  bool ConsTraceOk = false;
  bool SpecTraceOk = false;
  /// Strict heuristic II gap, every assumption held, and the speculative
  /// pipelined execution matched the reference: a demonstrated win.
  bool SpecWin = false;

  std::string ConsError;  ///< validateSchedule output (empty = legal)
  std::string SpecError;  ///< validateSchedule output (empty = legal)
  std::string TraceError; ///< unexpected execution mismatch (empty = ok)
};

/// Aggregated sweep results.
struct IrregularReport {
  IrregularOptions Config;
  std::vector<IrregularCase> Cases;

  int ConsScheduled = 0;
  int SpecScheduled = 0;
  int Adopted = 0;
  int Comparable = 0;        ///< both lowerings scheduled (valid II gap)
  int SpecAtOrBelowCons = 0; ///< must equal Comparable (structural)
  int StrictGaps = 0;
  int CertifiedStrictGaps = 0;
  int WhileLoops = 0;
  int LoopsWithAssumptions = 0;
  int AllHeldLoops = 0;
  int ViolatedLoops = 0;
  int SpecWins = 0;
  long TotalViolations = 0;
  long TotalMisspeculatedStores = 0;
  int ValidationFailures = 0;
  int TraceFailures = 0;
};

/// Runs both lowerings of one body through the heuristic + exact engines
/// and the replay harness. Pure: depends only on its arguments.
IrregularCase runIrregularCase(const LoopBody &Body,
                               const IrregularOptions &Options);

/// Runs the sweep over buildIrregularSuite(NumLoops, MaxOps, Seed).
/// Deterministic: depends only on \p Options.
IrregularReport runIrregularSweep(const IrregularOptions &Options = {});

/// Aggregates \p Cases into a report (exposed so tests and perf_report can
/// sweep their own suites — e.g. the hand-written kernels).
IrregularReport aggregateIrregularCases(const IrregularOptions &Options,
                                        std::vector<IrregularCase> Cases);

/// Prints the per-loop table and summary counters. Deterministic (no
/// timings), so the output can serve as a golden regression reference.
void printIrregularReport(std::ostream &OS, const IrregularReport &Report);

} // namespace lsms

#endif // LSMS_SPEC_SPECORACLE_H
