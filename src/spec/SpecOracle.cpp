#include "spec/SpecOracle.h"

#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "ir/DepGraph.h"
#include "support/ParallelFor.h"
#include "support/Table.h"
#include "vliwsim/Replay.h"
#include "workloads/Suite.h"

#include <ostream>

using namespace lsms;

IrregularCase lsms::runIrregularCase(const LoopBody &Body,
                                     const IrregularOptions &Options) {
  const MachineModel Machine = MachineModel::cydra5();
  IrregularCase Case;
  Case.Name = Body.Name;
  Case.Ops = Body.numMachineOps();
  Case.IsWhile = Body.isWhileLoop();

  const Lowering Cons = lowerConservative(Body);
  const Lowering Spec = lowerSpeculative(Body, Options.Spec);
  Case.MayAliasArcs = Cons.MayAliasArcs;
  Case.ControlArcs = Cons.ControlArcs;
  Case.DroppedArcs = Spec.DroppedArcs;
  Case.NumAssumptions = static_cast<int>(Spec.Assumptions.size());

  const DepGraph ConsG(Cons.Body, Machine);
  const DepGraph SpecG(Spec.Body, Machine);

  const Schedule ConsS = scheduleLoop(ConsG, Options.Heuristic);
  Schedule SpecS = scheduleLoop(SpecG, Options.Heuristic);
  Case.ConsMII = ConsS.MII;
  Case.SpecMII = SpecS.MII;
  Case.ConsSuccess = ConsS.Success;
  if (ConsS.Success) {
    Case.ConsII = ConsS.II;
    Case.ConsError = validateSchedule(ConsG, ConsS);
  }

  // The speculative arcs are a subset of the conservative ones, so the
  // conservative schedule is legal for the speculative body too. Adopting
  // it whenever the heuristic did worse makes SpecII <= ConsII structural.
  if (ConsS.Success && (!SpecS.Success || SpecS.II > ConsS.II)) {
    const int MII = SpecS.MII, ResMII = SpecS.ResMII, RecMII = SpecS.RecMII;
    SpecS = ConsS;
    SpecS.MII = MII;
    SpecS.ResMII = ResMII;
    SpecS.RecMII = RecMII;
    Case.AdoptedCons = true;
  }
  Case.SpecSuccess = SpecS.Success;
  if (SpecS.Success) {
    Case.SpecII = SpecS.II;
    Case.SpecError = validateSchedule(SpecG, SpecS);
  }
  Case.IIGapValid = Case.ConsSuccess && Case.SpecSuccess;
  Case.IIGap = Case.IIGapValid ? Case.ConsII - Case.SpecII : 0;

  const ExactResult ConsX = scheduleLoopExact(ConsG, Options.Exact);
  const ExactResult SpecX = scheduleLoopExact(SpecG, Options.Exact);
  Case.ConsStatus = ConsX.Status;
  Case.SpecStatus = SpecX.Status;
  if (ConsX.Sched.Success) {
    Case.ConsExactII = ConsX.Sched.II;
    if (Case.ConsError.empty())
      Case.ConsError = validateSchedule(ConsG, ConsX.Sched);
  }
  if (SpecX.Sched.Success) {
    Case.SpecExactII = SpecX.Sched.II;
    if (Case.SpecError.empty())
      Case.SpecError = validateSchedule(SpecG, SpecX.Sched);
  }
  Case.CertifiedGapValid = ConsX.Status == ExactStatus::Optimal &&
                           SpecX.Status == ExactStatus::Optimal;
  Case.CertifiedGap =
      Case.CertifiedGapValid ? Case.ConsExactII - Case.SpecExactII : 0;

  // Replay both schedules against the default concrete trace. The
  // conservative schedule must reproduce the reference unconditionally;
  // the speculative one must whenever every assumption held.
  if (SpecS.Success) {
    Case.Replayed = true;
    const ReplayResult RR = replaySchedule(Cons.Body, SpecS,
                                           Options.Iterations,
                                           Spec.Assumptions);
    Case.AllHeld = RR.AllHeld;
    for (const AssumptionOutcome &O : RR.Outcomes) {
      if (O.Held)
        ++Case.AssumptionsHeld;
      Case.Violations += O.Violations;
    }
    Case.MisspeculatedStores = RR.Pipelined.MisspeculatedStores;
    Case.ActualTrip = RR.Reference.ActualTrip;
    Case.SpecTraceOk = RR.Mismatch.empty();
    if (RR.AllHeld && !RR.Mismatch.empty())
      Case.TraceError =
          "speculative schedule diverged with all assumptions held: " +
          RR.Mismatch;
  }
  if (ConsS.Success) {
    const ReplayResult CR =
        replaySchedule(Cons.Body, ConsS, Options.Iterations, {});
    Case.ConsTraceOk = CR.Mismatch.empty();
    if (!Case.ConsTraceOk && Case.TraceError.empty())
      Case.TraceError =
          "conservative schedule diverged from reference: " + CR.Mismatch;
  }

  Case.SpecWin = Case.IIGapValid && Case.IIGap > 0 && Case.Replayed &&
                 Case.AllHeld && Case.SpecTraceOk && Case.DroppedArcs > 0;
  return Case;
}

IrregularReport
lsms::aggregateIrregularCases(const IrregularOptions &Options,
                              std::vector<IrregularCase> Cases) {
  IrregularReport Report;
  Report.Config = Options;
  Report.Cases = std::move(Cases);
  for (const IrregularCase &Case : Report.Cases) {
    if (Case.ConsSuccess)
      ++Report.ConsScheduled;
    if (Case.SpecSuccess)
      ++Report.SpecScheduled;
    if (Case.AdoptedCons)
      ++Report.Adopted;
    if (Case.IIGapValid) {
      ++Report.Comparable;
      if (Case.IIGap >= 0)
        ++Report.SpecAtOrBelowCons;
    }
    if (Case.IIGapValid && Case.IIGap > 0)
      ++Report.StrictGaps;
    if (Case.CertifiedGapValid && Case.CertifiedGap > 0)
      ++Report.CertifiedStrictGaps;
    if (Case.IsWhile)
      ++Report.WhileLoops;
    if (Case.NumAssumptions > 0)
      ++Report.LoopsWithAssumptions;
    if (Case.Replayed && Case.NumAssumptions > 0) {
      if (Case.AllHeld)
        ++Report.AllHeldLoops;
      else
        ++Report.ViolatedLoops;
    }
    if (Case.SpecWin)
      ++Report.SpecWins;
    Report.TotalViolations += Case.Violations;
    Report.TotalMisspeculatedStores += Case.MisspeculatedStores;
    if (!Case.ConsError.empty() || !Case.SpecError.empty())
      ++Report.ValidationFailures;
    if (!Case.TraceError.empty())
      ++Report.TraceFailures;
  }
  return Report;
}

IrregularReport lsms::runIrregularSweep(const IrregularOptions &Options) {
  const std::vector<LoopBody> Suite = buildIrregularSuite(
      Options.NumLoops, Options.MaxOps, Options.Seed, Options.Jobs);
  // Disjoint result slots + index-ordered merge: byte-identical report at
  // every job count.
  std::vector<IrregularCase> Cases(Suite.size());
  parallelFor(resolveJobs(Options.Jobs), static_cast<int>(Suite.size()),
              [&](int I) {
                Cases[static_cast<size_t>(I)] =
                    runIrregularCase(Suite[static_cast<size_t>(I)], Options);
              });
  return aggregateIrregularCases(Options, std::move(Cases));
}

void lsms::printIrregularReport(std::ostream &OS,
                                const IrregularReport &Report) {
  TextTable T;
  T.setHeader({"loop", "ops", "w", "ma", "drop", "cII", "sII", "dII", "xcII",
               "xsII", "cert", "asm", "viol", "mst", "win"});
  for (const IrregularCase &Case : Report.Cases) {
    std::string Asm = "-";
    if (Case.NumAssumptions > 0 && Case.Replayed)
      Asm = std::to_string(Case.AssumptionsHeld) + "/" +
            std::to_string(Case.NumAssumptions);
    T.addRow({Case.Name, std::to_string(Case.Ops), Case.IsWhile ? "y" : "-",
              std::to_string(Case.MayAliasArcs),
              std::to_string(Case.DroppedArcs),
              Case.ConsSuccess ? std::to_string(Case.ConsII) : "-",
              Case.SpecSuccess ? std::to_string(Case.SpecII) : "-",
              Case.IIGapValid ? std::to_string(Case.IIGap) : "-",
              Case.ConsStatus == ExactStatus::Optimal ||
                      Case.ConsStatus == ExactStatus::Feasible
                  ? std::to_string(Case.ConsExactII)
                  : "-",
              Case.SpecStatus == ExactStatus::Optimal ||
                      Case.SpecStatus == ExactStatus::Feasible
                  ? std::to_string(Case.SpecExactII)
                  : "-",
              Case.CertifiedGapValid ? std::to_string(Case.CertifiedGap)
                                     : "-",
              Asm, std::to_string(Case.Violations),
              std::to_string(Case.MisspeculatedStores),
              Case.SpecWin ? "win" : "-"});
  }
  T.print(OS);

  OS << "\nSummary over " << Report.Cases.size() << " loops (seed "
     << Report.Config.Seed << ", <= " << Report.Config.MaxOps << " ops, "
     << Report.Config.Iterations << "-iteration replay window):\n"
     << "  conservative scheduled:  " << Report.ConsScheduled << "\n"
     << "  speculative scheduled:   " << Report.SpecScheduled
     << " (adopted the conservative schedule on " << Report.Adopted << ")\n"
     << "  spec II <= cons II:      " << Report.SpecAtOrBelowCons << " of "
     << Report.Comparable << " comparable (structural)\n"
     << "  strict II gaps:          " << Report.StrictGaps
     << " (certified by the exact engine: " << Report.CertifiedStrictGaps
     << ")\n"
     << "  while loops:             " << Report.WhileLoops << "\n"
     << "  loops with assumptions:  " << Report.LoopsWithAssumptions
     << " (all held: " << Report.AllHeldLoops << ", violated: "
     << Report.ViolatedLoops << ")\n"
     << "  held-assumption wins:    " << Report.SpecWins << "\n"
     << "  assumption violations:   " << Report.TotalViolations
     << " (misspeculated stores: " << Report.TotalMisspeculatedStores
     << ")\n"
     << "  validation failures:     " << Report.ValidationFailures << "\n"
     << "  trace failures:          " << Report.TraceFailures << "\n";
}
