//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used by the
/// persistent schedule store to detect torn or corrupted log records.
/// Header-only: the lookup table is built at compile time.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SUPPORT_CRC32_H
#define LSMS_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace lsms {

namespace detail {

constexpr std::array<uint32_t, 256> makeCrc32Table() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1u) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

inline constexpr std::array<uint32_t, 256> Crc32Table = makeCrc32Table();

} // namespace detail

/// CRC-32 of \p Size bytes at \p Data. Pass a previous result as \p Seed
/// to continue a running checksum over split buffers.
inline uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint32_t C = ~Seed;
  for (size_t I = 0; I < Size; ++I)
    C = detail::Crc32Table[(C ^ P[I]) & 0xFFu] ^ (C >> 8);
  return ~C;
}

} // namespace lsms

#endif // LSMS_SUPPORT_CRC32_H
