//===----------------------------------------------------------------------===//
///
/// \file
/// Bucketed histograms with cumulative percentages, used to regenerate the
/// paper's Figures 5-8 ("percent of all loops" vs "number of registers").
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SUPPORT_HISTOGRAM_H
#define LSMS_SUPPORT_HISTOGRAM_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lsms {

/// A histogram over non-negative integer samples with fixed-width buckets.
class Histogram {
public:
  /// Creates a histogram with buckets [0,W), [W,2W), ... up to \p MaxValue;
  /// larger samples fall in a final overflow bucket.
  Histogram(int64_t BucketWidth, int64_t MaxValue);

  /// Adds one sample.
  void add(int64_t Value);

  /// Number of samples added.
  size_t count() const { return Total; }

  /// Fraction of samples <= \p Value, in [0,1]. Counts exact samples, not
  /// bucket boundaries.
  double fractionAtOrBelow(int64_t Value) const;

  /// The \p Fraction-quantile over the exact samples (e.g. 0.5 for the
  /// median, 0.99 for p99): the smallest sample S such that at least
  /// ceil(Fraction * count) samples are <= S. Returns 0 on an empty
  /// histogram. \p Fraction is clamped to [0,1].
  int64_t percentile(double Fraction) const;

  /// Largest sample added, or 0 on an empty histogram.
  int64_t maxSample() const;

  /// Prints one line per bucket: range, count, percent, cumulative percent,
  /// and a proportional bar.
  void print(std::ostream &OS, const std::string &ValueLabel) const;

private:
  int64_t BucketWidth;
  int64_t MaxValue;
  std::vector<size_t> Buckets; // last bucket is overflow
  std::vector<int64_t> Samples;
  size_t Total = 0;
};

/// Prints two histograms side by side as a comparison series (e.g. new vs
/// old scheduler in Figures 5 and 6). Both must share bucket geometry.
void printComparison(std::ostream &OS, const std::string &Title,
                     const Histogram &A, const std::string &NameA,
                     const Histogram &B, const std::string &NameB,
                     const std::string &ValueLabel);

} // namespace lsms

#endif // LSMS_SUPPORT_HISTOGRAM_H
