#include "support/Table.h"

#include <algorithm>
#include <cctype>
#include <ostream>

using namespace lsms;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*Separator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*Separator=*/true}); }

static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  bool SawDigit = false;
  for (char C : S) {
    if (std::isdigit(static_cast<unsigned char>(C))) {
      SawDigit = true;
      continue;
    }
    if (C == '.' || C == '-' || C == '+' || C == '%' || C == ',' || C == 'x')
      continue;
    return false;
  }
  return SawDigit;
}

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const Row &R : Rows)
    Grow(R.Cells);

  auto PrintCells = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      const size_t Pad = Widths[I] - Cell.size();
      if (looksNumeric(Cell)) {
        OS << std::string(Pad, ' ') << Cell;
      } else {
        OS << Cell << std::string(Pad, ' ');
      }
      OS << (I + 1 == Widths.size() ? "" : "  ");
    }
    OS << '\n';
  };

  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  if (Total >= 2)
    Total -= 2;

  if (!Header.empty()) {
    PrintCells(Header);
    OS << std::string(Total, '-') << '\n';
  }
  for (const Row &R : Rows) {
    if (R.Separator) {
      OS << std::string(Total, '-') << '\n';
      continue;
    }
    PrintCells(R.Cells);
  }
}
