//===----------------------------------------------------------------------===//
///
/// \file
/// Order statistics used to report the paper's Min / 50% / 90% / Max rows.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SUPPORT_STATISTICS_H
#define LSMS_SUPPORT_STATISTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace lsms {

/// Summary of a sample in the format used by Table 2 and Tables 3/4 of the
/// paper: minimum, median, 90th percentile, and maximum.
struct QuantileSummary {
  double Min = 0;
  double Median = 0;
  double Pct90 = 0;
  double Max = 0;
  double Mean = 0;
  size_t Count = 0;
};

/// Computes a QuantileSummary over \p Samples. Empty input yields all zeros.
QuantileSummary summarize(std::vector<double> Samples);

/// Convenience overload for integer samples.
QuantileSummary summarize(const std::vector<int64_t> &Samples);

/// Returns the \p Q quantile (0 <= Q <= 1) of the *sorted* \p Sorted sample
/// using the nearest-rank method, matching how the paper reports "50%" and
/// "90%" columns over discrete loop metrics.
double quantileOfSorted(const std::vector<double> &Sorted, double Q);

/// Renders \p Value with trailing zeros trimmed (e.g. "3", "2.5", "0.04").
std::string formatNumber(double Value, int MaxDecimals = 2);

} // namespace lsms

#endif // LSMS_SUPPORT_STATISTICS_H
