#include "support/Histogram.h"

#include "support/Statistics.h"
#include "support/Table.h"

#include <algorithm>
#include <cassert>
#include <ostream>

using namespace lsms;

Histogram::Histogram(int64_t BucketWidth, int64_t MaxValue)
    : BucketWidth(BucketWidth), MaxValue(MaxValue) {
  assert(BucketWidth > 0 && MaxValue >= BucketWidth && "bad bucket geometry");
  const size_t NumBuckets =
      static_cast<size_t>((MaxValue + BucketWidth - 1) / BucketWidth) + 1;
  Buckets.assign(NumBuckets, 0);
}

void Histogram::add(int64_t Value) {
  if (Value < 0)
    Value = 0;
  size_t Index = static_cast<size_t>(Value / BucketWidth);
  if (Index >= Buckets.size())
    Index = Buckets.size() - 1;
  ++Buckets[Index];
  Samples.push_back(Value);
  ++Total;
}

double Histogram::fractionAtOrBelow(int64_t Value) const {
  if (Total == 0)
    return 0.0;
  size_t N = 0;
  for (int64_t S : Samples)
    if (S <= Value)
      ++N;
  return static_cast<double>(N) / static_cast<double>(Total);
}

int64_t Histogram::percentile(double Fraction) const {
  if (Samples.empty())
    return 0;
  Fraction = std::min(1.0, std::max(0.0, Fraction));
  size_t Rank = static_cast<size_t>(Fraction * static_cast<double>(Samples.size()) + 0.999999);
  if (Rank > 0)
    --Rank; // 1-based rank -> 0-based index
  std::vector<int64_t> Sorted = Samples;
  std::nth_element(Sorted.begin(),
                   Sorted.begin() + static_cast<ptrdiff_t>(Rank),
                   Sorted.end());
  return Sorted[Rank];
}

int64_t Histogram::maxSample() const {
  if (Samples.empty())
    return 0;
  return *std::max_element(Samples.begin(), Samples.end());
}

static std::string bucketLabel(size_t Index, int64_t Width, size_t NumBuckets,
                               int64_t MaxValue) {
  const int64_t Lo = static_cast<int64_t>(Index) * Width;
  if (Index + 1 == NumBuckets)
    return "> " + formatNumber(static_cast<double>(MaxValue));
  if (Width == 1)
    return formatNumber(static_cast<double>(Lo));
  return "[" + formatNumber(static_cast<double>(Lo)) + "," +
         formatNumber(static_cast<double>(Lo + Width)) + ")";
}

void Histogram::print(std::ostream &OS, const std::string &ValueLabel) const {
  TextTable T;
  T.setHeader({ValueLabel, "loops", "%", "cum%", ""});
  double Cum = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    const double Pct =
        Total ? 100.0 * static_cast<double>(Buckets[I]) /
                    static_cast<double>(Total)
              : 0.0;
    Cum += Pct;
    const size_t BarLen = static_cast<size_t>(Pct / 2.0 + 0.5);
    T.addRow({bucketLabel(I, BucketWidth, Buckets.size(), MaxValue),
              std::to_string(Buckets[I]), formatNumber(Pct, 1),
              formatNumber(std::min(Cum, 100.0), 1),
              std::string(BarLen, '#')});
  }
  T.print(OS);
}

void lsms::printComparison(std::ostream &OS, const std::string &Title,
                           const Histogram &A, const std::string &NameA,
                           const Histogram &B, const std::string &NameB,
                           const std::string &ValueLabel) {
  OS << Title << '\n';
  OS << "--- " << NameA << " ---\n";
  A.print(OS, ValueLabel);
  OS << "--- " << NameB << " ---\n";
  B.print(OS, ValueLabel);
}
