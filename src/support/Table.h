//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned text-table printer used by the benchmark harnesses
/// to regenerate the paper's tables on stdout.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SUPPORT_TABLE_H
#define LSMS_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace lsms {

/// Accumulates rows of strings and prints them with columns padded to the
/// widest cell. The first row added as a header is underlined with dashes.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Prints the table to \p OS. Columns are left-aligned except cells that
  /// parse as numbers, which are right-aligned.
  void print(std::ostream &OS) const;

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace lsms

#endif // LSMS_SUPPORT_TABLE_H
