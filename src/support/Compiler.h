//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-portability helpers shared across the LSMS libraries.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SUPPORT_COMPILER_H
#define LSMS_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace lsms {

/// Reports an unreachable program point and aborts.
///
/// Use via the LSMS_UNREACHABLE macro so the message carries file/line
/// context. Marked [[noreturn]] so callers may omit dummy returns.
[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace lsms

#define LSMS_UNREACHABLE(msg)                                                  \
  ::lsms::unreachableInternal(msg, __FILE__, __LINE__)

#endif // LSMS_SUPPORT_COMPILER_H
