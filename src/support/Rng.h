//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation for workload synthesis.
///
/// The workload generator must be reproducible across platforms and standard
/// library implementations, so we use a fixed xorshift128+ generator instead
/// of <random> engines/distributions (whose outputs are not pinned down by
/// the standard for all distributions).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SUPPORT_RNG_H
#define LSMS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace lsms {

/// A small, fast, deterministic xorshift128+ generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // SplitMix64 seeding avoids the all-zero state and decorrelates nearby
    // seeds.
    State[0] = splitMix(Seed);
    State[1] = splitMix(Seed);
  }

  /// Returns the next raw 64-bit sample.
  uint64_t next() {
    uint64_t X = State[0];
    const uint64_t Y = State[1];
    State[0] = Y;
    X ^= X << 23;
    State[1] = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State[1] + Y;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Modulo bias is negligible for the small bounds used here.
    return next() % Bound;
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(nextBelow(
                    static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t splitMix(uint64_t &X) {
    X += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  uint64_t State[2];
};

} // namespace lsms

#endif // LSMS_SUPPORT_RNG_H
