//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic work-sharded parallel-for for the embarrassingly parallel
/// sweeps (oracle runs, suite scheduling, bench harnesses).
///
/// Policy (see DESIGN.md, "Parallelism & determinism"): sharding is static
/// and index-ordered — worker W owns the indices congruent to W modulo the
/// worker count — so the index->worker assignment never depends on timing.
/// Workers communicate only through disjoint result slots indexed by the
/// loop index; callers merge/aggregate sequentially in input order after
/// the join. Any randomness must be seeded per loop index, never drawn
/// from a stream shared across workers. Under this discipline every
/// result, report, and table is byte-identical for all job counts, and
/// Jobs=1 executes the plain sequential loop on the caller's thread.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SUPPORT_PARALLELFOR_H
#define LSMS_SUPPORT_PARALLELFOR_H

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace lsms {

/// Worker threads the host supports (always >= 1).
inline int hardwareJobs() {
  const unsigned H = std::thread::hardware_concurrency();
  return H == 0 ? 1 : static_cast<int>(H);
}

/// Resolves a job-count request: a positive \p Requested wins; otherwise
/// the LSMS_JOBS environment variable (a positive integer; 0 or unset
/// means "use the hardware") decides, falling back to hardwareJobs().
inline int resolveJobs(int Requested) {
  if (Requested > 0)
    return Requested;
  if (const char *Env = std::getenv("LSMS_JOBS")) {
    const int V = std::atoi(Env);
    if (V > 0)
      return V;
  }
  return hardwareJobs();
}

/// Runs Body(I) for every I in [0, N) on at most \p Jobs threads with the
/// static index-ordered sharding described above. \p Body is invoked
/// concurrently for distinct indices and must only touch per-index state.
/// Jobs <= 1 (or N <= 1) is the exact sequential path: no threads are
/// created and Body runs in index order on the caller.
template <typename Fn> void parallelFor(int Jobs, int N, Fn &&Body) {
  const int Workers = std::max(1, std::min(Jobs, N));
  if (Workers <= 1) {
    for (int I = 0; I < N; ++I)
      Body(I);
    return;
  }
  std::vector<std::jthread> Pool;
  Pool.reserve(static_cast<size_t>(Workers));
  for (int W = 0; W < Workers; ++W)
    Pool.emplace_back([W, Workers, N, &Body] {
      for (int I = W; I < N; I += Workers)
        Body(I);
    });
  // ~jthread joins every worker before the pool goes out of scope.
}

} // namespace lsms

#endif // LSMS_SUPPORT_PARALLELFOR_H
