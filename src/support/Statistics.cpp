#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace lsms;

double lsms::quantileOfSorted(const std::vector<double> &Sorted, double Q) {
  assert(!Sorted.empty() && "quantile of empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  if (Sorted.size() == 1)
    return Sorted.front();
  // Nearest-rank: smallest value with at least ceil(Q * N) observations at or
  // below it.
  const double N = static_cast<double>(Sorted.size());
  size_t Rank = static_cast<size_t>(std::ceil(Q * N));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Sorted.size())
    Rank = Sorted.size();
  return Sorted[Rank - 1];
}

QuantileSummary lsms::summarize(std::vector<double> Samples) {
  QuantileSummary S;
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  S.Count = Samples.size();
  S.Min = Samples.front();
  S.Max = Samples.back();
  S.Median = quantileOfSorted(Samples, 0.50);
  S.Pct90 = quantileOfSorted(Samples, 0.90);
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  S.Mean = Sum / static_cast<double>(Samples.size());
  return S;
}

QuantileSummary lsms::summarize(const std::vector<int64_t> &Samples) {
  std::vector<double> D;
  D.reserve(Samples.size());
  for (int64_t V : Samples)
    D.push_back(static_cast<double>(V));
  return summarize(std::move(D));
}

std::string lsms::formatNumber(double Value, int MaxDecimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", MaxDecimals, Value);
  std::string S(Buf);
  if (S.find('.') != std::string::npos) {
    while (!S.empty() && S.back() == '0')
      S.pop_back();
    if (!S.empty() && S.back() == '.')
      S.pop_back();
  }
  return S;
}
