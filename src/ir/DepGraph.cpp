#include "ir/DepGraph.h"

using namespace lsms;

DepGraph::DepGraph(const LoopBody &Body, const MachineModel &Machine)
    : TheBody(Body), Machine(Machine) {
  const int N = Body.numOps();
  Adjacency.assign(static_cast<size_t>(N), {});
  RevAdjacency.assign(static_cast<size_t>(N), {});

  const int Start = Body.startOp();
  const int Stop = Body.stopOp();

  // Start precedes everything; everything precedes Stop, arriving after its
  // own latency so that time(Stop) is the schedule length.
  for (const Operation &Op : Body.Ops) {
    if (Op.Id != Start)
      addArc({Start, Op.Id, 0, 0, DepKind::Extra, -1});
    if (Op.Id != Stop)
      addArc({Op.Id, Stop, Machine.latency(Op.Opc), 0, DepKind::Extra, -1});
  }

  // Register flow dependences from operand and predicate uses. Loop
  // invariants (GPR) impose no scheduling constraint beyond the Start arc.
  for (const Operation &Op : Body.Ops) {
    auto AddFlow = [this, &Body, &Machine, &Op](const Use &U) {
      const Value &V = Body.value(U.Value);
      if (V.Class == RegClass::GPR)
        return;
      addArc({V.Def, Op.Id, Machine.latency(Body.op(V.Def).Opc), U.Omega,
              DepKind::Flow, U.Value});
    };
    for (const Use &U : Op.Operands)
      AddFlow(U);
    if (Op.PredValue >= 0)
      AddFlow(Use{Op.PredValue, Op.PredOmega});
  }

  // Memory and extra precedence arcs.
  for (const MemDep &D : Body.MemDeps)
    addArc({D.Src, D.Dst, D.Latency, D.Omega, D.Kind, -1});
}

void DepGraph::addArc(DepArc Arc) {
  const int Index = static_cast<int>(Arcs.size());
  Adjacency[static_cast<size_t>(Arc.Src)].push_back(Index);
  RevAdjacency[static_cast<size_t>(Arc.Dst)].push_back(Index);
  Arcs.push_back(Arc);
}
