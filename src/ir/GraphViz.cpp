#include "ir/GraphViz.h"

#include <ostream>

using namespace lsms;

void lsms::writeGraphViz(std::ostream &OS, const DepGraph &Graph,
                         bool IncludePseudo) {
  const LoopBody &Body = Graph.body();
  OS << "digraph \"" << Body.Name << "\" {\n";
  OS << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";

  for (const Operation &Op : Body.Ops) {
    if (!IncludePseudo && isPseudo(Op.Opc))
      continue;
    OS << "  n" << Op.Id << " [label=\"" << Op.Name << "\\n"
       << opcodeName(Op.Opc) << "\"";
    if (isPseudo(Op.Opc))
      OS << ", style=dotted";
    else if (isDividerOp(Op.Opc))
      OS << ", style=bold";
    OS << "];\n";
  }

  for (const DepArc &Arc : Graph.arcs()) {
    if (!IncludePseudo &&
        (isPseudo(Body.op(Arc.Src).Opc) || isPseudo(Body.op(Arc.Dst).Opc)))
      continue;
    OS << "  n" << Arc.Src << " -> n" << Arc.Dst << " [label=\"("
       << Arc.Latency << "," << Arc.Omega << ")\"";
    if (Arc.Kind != DepKind::Flow)
      OS << ", style=dashed";
    if (Arc.Omega > 0)
      OS << ", color=red, constraint=false";
    OS << "];\n";
  }
  OS << "}\n";
}
