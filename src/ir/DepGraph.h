//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence graph the scheduler works on: loop-body operations plus
/// arcs labeled with (latency, omega). Register flow dependences are derived
/// from operand lists (latency = producer latency); memory and extra arcs
/// come from the LoopBody; Start/Stop arcs make Estart/Lstart well defined
/// for every operation (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_IR_DEPGRAPH_H
#define LSMS_IR_DEPGRAPH_H

#include "ir/LoopBody.h"
#include "machine/MachineModel.h"

#include <vector>

namespace lsms {

/// One dependence arc: Dst must issue at least Latency cycles after Src's
/// instance Omega iterations earlier; i.e. in any schedule with initiation
/// interval II, time(Dst) >= time(Src) + Latency - Omega*II.
struct DepArc {
  int Src = -1;
  int Dst = -1;
  int Latency = 0;
  int Omega = 0;
  DepKind Kind = DepKind::Flow;
  int Value = -1; ///< carried value for register flow arcs, else -1
};

/// Immutable dependence graph over a LoopBody.
class DepGraph {
public:
  DepGraph(const LoopBody &Body, const MachineModel &Machine);

  const LoopBody &body() const { return TheBody; }
  const MachineModel &machine() const { return Machine; }

  int numOps() const { return static_cast<int>(Adjacency.size()); }
  const std::vector<DepArc> &arcs() const { return Arcs; }

  /// Arc indices leaving \p Op.
  const std::vector<int> &succArcs(int Op) const {
    return Adjacency[static_cast<size_t>(Op)];
  }
  /// Arc indices entering \p Op.
  const std::vector<int> &predArcs(int Op) const {
    return RevAdjacency[static_cast<size_t>(Op)];
  }

  const DepArc &arc(int Index) const {
    return Arcs[static_cast<size_t>(Index)];
  }

  /// Latency of the operation's result (0 for pseudo-ops).
  int latency(int Op) const {
    return Machine.latency(TheBody.op(Op).Opc);
  }

private:
  void addArc(DepArc Arc);

  const LoopBody &TheBody;
  const MachineModel &Machine;
  std::vector<DepArc> Arcs;
  std::vector<std::vector<int>> Adjacency;
  std::vector<std::vector<int>> RevAdjacency;
};

} // namespace lsms

#endif // LSMS_IR_DEPGRAPH_H
