//===----------------------------------------------------------------------===//
///
/// \file
/// The loop intermediate representation: a branch-free (if-converted) loop
/// body in dynamic-single-assignment form (Section 5.1). Every value has a
/// unique defining operation per iteration; uses name the value together
/// with an omega — the number of iterations separating the use from the
/// definition it reads. Memory ordering constraints that do not flow
/// through registers are recorded as explicit dependence arcs.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_IR_LOOPBODY_H
#define LSMS_IR_LOOPBODY_H

#include "machine/Opcode.h"

#include <cassert>
#include <string>
#include <vector>

namespace lsms {

/// The machine's register files (Section 2.3): RR holds rotating loop
/// variants (addresses, ints, floats), GPR holds loop invariants, ICR holds
/// rotating predicates.
enum class RegClass : uint8_t { RR, GPR, ICR };

/// Returns "RR", "GPR", or "ICR".
const char *regClassName(RegClass Class);

/// A use of a value: reads the instance defined \p Omega iterations before
/// the using operation's iteration. Omega 0 reads the same iteration's
/// definition.
struct Use {
  int Value = -1;
  int Omega = 0;
};

inline bool operator==(const Use &A, const Use &B) {
  return A.Value == B.Value && A.Omega == B.Omega;
}

/// An SSA value. Values defined by the Start pseudo-operation are loop
/// inputs: GPR values are loop invariants (including literal constants);
/// RR/ICR values defined inside the loop may additionally carry seeds — the
/// instances "defined" by the iterations that precede the first one, needed
/// when a use's omega reaches before the loop begins.
struct Value {
  int Id = -1;
  RegClass Class = RegClass::RR;
  int Def = -1; ///< defining operation
  std::string Name;
  bool LiveOut = false; ///< read after the loop completes (e.g. accumulator)
  double Init = 0;      ///< initial value for Start-defined values
  /// Seeds[K] is the instance for iteration First-1-K (i.e. omega K+1 before
  /// the first iteration). Missing seeds default to 0.
  std::vector<double> Seeds;
  /// When >= 0, pre-loop instances come from the initial contents of this
  /// array instead: the instance for iteration J (J < First) is
  /// InitialArray[SeedArrayId][J*SeedElemStride + SeedElemOffset]. Used
  /// when load/store elimination turns memory reads into cross-iteration
  /// register flow.
  int SeedArrayId = -1;
  int SeedElemOffset = 0;
  int SeedElemStride = 1;
};

/// One operation of the loop body.
struct Operation {
  int Id = -1;
  Opcode Opc = Opcode::Start;
  std::vector<Use> Operands;
  int Result = -1; ///< defined value, or -1 (stores, brtop, pseudo-ops)
  /// Guarding predicate for predicated execution (Section 2.2); -1 means
  /// always execute. PredOmega gives the iteration distance of the read.
  int PredValue = -1;
  int PredOmega = 0;
  /// For loads/stores: the accessed array and the affine subscript
  /// iter*ElemStride + ElemOffset (a[i + ElemOffset] in the common
  /// stride-1 case; unrolled loops use larger strides). Used by dependence
  /// analysis and by the simulators.
  int ArrayId = -1;
  int ElemOffset = 0;
  int ElemStride = 1;
  /// For loads/stores with a data-dependent subscript: the element index is
  /// the rounded value of operand 0 instead of the affine form above
  /// (pointer chases, histograms). Dependence analysis must treat such
  /// accesses as may-alias against every access of the same array.
  bool Indirect = false;
  std::string Name;
};

/// Non-register dependence arcs (memory ordering and any extra precedence
/// constraints). Register flow dependences are implied by operand lists.
enum class DepKind : uint8_t { Flow, Anti, Output, Extra };

/// Returns "flow", "anti", "output", or "extra".
const char *depKindName(DepKind Kind);

/// How certain the dependence analyzer is that the arc is real.
///  - Exact: distance proven; the arc must always be honored.
///  - MayAlias: the two accesses *may* touch the same location (indirect
///    subscripts, unresolvable affine distances). The recorded omega is the
///    worst-case (conservative) distance; Prob estimates how likely the
///    accesses are to actually collide (< 0 when unknown). Speculative
///    lowering may drop the whole AliasGroup and emit a NoAlias assumption.
///  - Control: ordering induced by a while-style exit condition — stores of
///    iteration j+1 must not commit before iteration j's exit test resolves.
///    Speculative lowering may drop these and emit a NoEarlyExit assumption.
enum class ArcConfidence : uint8_t { Exact, MayAlias, Control };

/// Returns "exact", "mayalias", or "control".
const char *arcConfidenceName(ArcConfidence Conf);

struct MemDep {
  int Src = -1;
  int Dst = -1;
  DepKind Kind = DepKind::Flow;
  int Latency = 0;
  int Omega = 0;
  /// Certainty of the arc. Exact arcs are unconditional; MayAlias/Control
  /// arcs are conservative and may be speculatively omitted (src/spec).
  ArcConfidence Conf = ArcConfidence::Exact;
  /// For MayAlias arcs: estimated probability that the accesses collide
  /// within one conservative window. Negative means unknown. Exact arcs
  /// keep the default 1.
  double Prob = 1.0;
  /// Groups the paired arcs of one may-alias site (forward + reverse
  /// serialization arcs share a group). Speculation drops whole groups and
  /// emits one assumption per group. -1 for ungrouped (Exact) arcs.
  int AliasGroup = -1;
};

/// A branch-free loop body eligible for modulo scheduling.
///
/// Invariants (checked by verify()):
///  - operation 0 is Start, operation 1 is Stop, exactly one BrTop exists;
///  - each value has exactly one defining operation;
///  - operand counts and register classes match the opcode;
///  - every use's omega is non-negative and intra-iteration uses (omega 0)
///    never form a cycle.
class LoopBody {
public:
  LoopBody();

  /// Identification / provenance.
  std::string Name;
  std::string Source; ///< original DSL text when built by the front end

  /// Iteration space: the loop runs for iterations First..Last of the
  /// counter (defaults support DO i = 3, n style kernels).
  long First = 1;

  /// Number of distinct arrays referenced by loads/stores.
  int NumArrays = 0;

  /// Optional array names (parallel to array ids; may be shorter when the
  /// builder did not name them).
  std::vector<std::string> ArrayNames;

  /// Classification used by Tables 3/4: loops whose source contained a
  /// conditional (if-converted into predicated operations).
  bool HasConditional = false;

  /// Number of basic blocks in the source before if-conversion (Table 2
  /// metric; 1 for straight-line bodies).
  int SourceBasicBlocks = 1;

  /// While-style exit condition: the ICR value whose instance for iteration
  /// j decides whether iteration j+1 runs (do-while semantics — the first
  /// iteration whose exit value is false is the *last* executed). -1 for
  /// counted DO loops. The brtop trip count then acts as an upper bound on
  /// the iteration window.
  int ExitValue = -1;

  bool isWhileLoop() const { return ExitValue >= 0; }

  std::vector<Operation> Ops;
  std::vector<Value> Values;
  std::vector<MemDep> MemDeps;

  int startOp() const { return 0; }
  int stopOp() const { return 1; }
  /// The unique brtop operation, or -1 before it is created.
  int brTopOp() const { return BrTop; }

  const Operation &op(int Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Ops.size());
    return Ops[static_cast<size_t>(Id)];
  }
  Operation &op(int Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Ops.size());
    return Ops[static_cast<size_t>(Id)];
  }
  const Value &value(int Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Values.size());
    return Values[static_cast<size_t>(Id)];
  }
  Value &value(int Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Values.size());
    return Values[static_cast<size_t>(Id)];
  }

  int numOps() const { return static_cast<int>(Ops.size()); }
  int numValues() const { return static_cast<int>(Values.size()); }

  /// Number of real machine operations (excludes Start/Stop).
  int numMachineOps() const { return numOps() - 2; }

  /// Creates a new value of \p Class defined by \p Def.
  int addValue(RegClass Class, int Def, std::string Name);

  /// Creates a new operation and returns its id.
  int addOperation(Opcode Opc, std::vector<Use> Operands, std::string Name);

  /// Records the unique brtop operation id.
  void setBrTop(int Op) {
    assert(BrTop < 0 && "brtop already set");
    BrTop = Op;
  }

  /// All uses of \p ValueId across operations (operand and predicate
  /// positions).
  struct UseSite {
    int Op;
    int Omega;
  };
  std::vector<UseSite> usesOf(int ValueId) const;

  /// Expected operand count for \p Opc, or -1 when variable.
  static int operandArity(Opcode Opc);

  /// Checks structural invariants; returns an empty string on success or a
  /// description of the first violation.
  std::string verify() const;

  /// Pretty-prints the loop body.
  void print(std::ostream &OS) const;

private:
  int BrTop = -1;
};

} // namespace lsms

#endif // LSMS_IR_LOOPBODY_H
