//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience API for constructing well-formed LoopBody instances. Used by
/// the DSL front end, the hand-written kernel suite, and the random loop
/// generator.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_IR_IRBUILDER_H
#define LSMS_IR_IRBUILDER_H

#include "ir/LoopBody.h"

#include <map>
#include <string>
#include <vector>

namespace lsms {

/// Incrementally builds a LoopBody. Call finish() exactly once at the end;
/// it appends the brtop loop-control operation and asserts the body
/// verifies.
class IRBuilder {
public:
  explicit IRBuilder(LoopBody &Body) : Body(Body) {}

  LoopBody &body() { return Body; }

  /// Creates (or reuses) a loop-invariant GPR input with initial value
  /// \p Init.
  int invariant(const std::string &Name, double Init);

  /// Creates (or reuses) a literal constant, modeled as a GPR input.
  int constant(double C);

  /// Creates a rotating (RR or ICR) loop input seeded from outside the loop
  /// is not supported directly; recurrences seed via setSeeds().

  /// Emits a value-producing operation and returns the *value* id.
  /// The result class is ICR for predicate-producing opcodes, RR otherwise.
  int emitValue(Opcode Opc, std::vector<Use> Operands,
                const std::string &Name, int PredValue = -1,
                int PredOmega = 0);

  /// Forward-declares a rotating value so mutually recurrent operations can
  /// reference each other; pair with defineValue().
  int declareValue(RegClass Class, const std::string &Name);

  /// Creates the operation that defines a previously declared value and
  /// returns the operation id.
  int defineValue(int ValueId, Opcode Opc, std::vector<Use> Operands,
                  int PredValue = -1, int PredOmega = 0);

  /// Emits a load of Array[i + ElemOffset] through address \p Addr and
  /// returns the loaded value id.
  int emitLoad(int ArrayId, int ElemOffset, Use Addr, const std::string &Name,
               int PredValue = -1, int PredOmega = 0);

  /// Emits a store of \p Val to Array[i + ElemOffset] through address
  /// \p Addr and returns the *operation* id.
  int emitStore(int ArrayId, int ElemOffset, Use Addr, Use Val,
                const std::string &Name, int PredValue = -1,
                int PredOmega = 0);

  /// Creates a self-recurrent address stream: a = aadd(a@1, stride), seeded
  /// so that iteration j's value is Base + (j+1)*Stride. Returns the value
  /// id. Each distinct array reference keeps its own stream, mirroring the
  /// address arithmetic a FORTRAN compiler generates per reference.
  int addressStream(const std::string &Name, double Base, double Stride = 4);

  /// Declares a new array and returns its id.
  int newArray(const std::string &Name = std::string());

  /// Sets the pre-loop seed instances of \p ValueId (Seeds[K] is the value
  /// omega K+1 before the first iteration).
  void setSeeds(int ValueId, std::vector<double> Seeds);

  /// Marks \p ValueId as read after the loop (e.g. a reduction result).
  void markLiveOut(int ValueId);

  /// Emits a load of Array[index] where the element index is the rounded
  /// runtime value of \p Index (data-dependent subscript). Returns the
  /// loaded value id.
  int emitIndirectLoad(int ArrayId, Use Index, const std::string &Name,
                       int PredValue = -1, int PredOmega = 0);

  /// Emits a store of \p Val to Array[index] with a data-dependent
  /// subscript; returns the *operation* id.
  int emitIndirectStore(int ArrayId, Use Index, Use Val,
                        const std::string &Name, int PredValue = -1,
                        int PredOmega = 0);

  /// Adds an explicit (memory) dependence arc.
  void addMemDep(int SrcOp, int DstOp, DepKind Kind, int Latency, int Omega);

  /// Adds a tagged (may-alias / control) dependence arc. \p Prob is the
  /// collision-probability estimate for may-alias arcs (< 0 when unknown);
  /// \p AliasGroup groups the paired arcs of one may-alias site.
  void addTaggedMemDep(int SrcOp, int DstOp, DepKind Kind, int Latency,
                       int Omega, ArcConfidence Conf, double Prob = -1.0,
                       int AliasGroup = -1);

  /// Appends the brtop operation, verifies the body, and returns it.
  /// Asserts on verification failure (builder clients are trusted code; the
  /// verifier message is printed first).
  LoopBody &finish();

private:
  LoopBody &Body;
  std::map<double, int> Constants;
  bool Finished = false;
};

} // namespace lsms

#endif // LSMS_IR_IRBUILDER_H
