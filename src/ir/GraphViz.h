//===----------------------------------------------------------------------===//
///
/// \file
/// GraphViz (DOT) export of the dependence graph, for visualizing
/// recurrence circuits and the Start/Stop scaffolding.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_IR_GRAPHVIZ_H
#define LSMS_IR_GRAPHVIZ_H

#include "ir/DepGraph.h"

#include <iosfwd>

namespace lsms {

/// Writes \p Graph as a DOT digraph. Flow arcs are solid and labeled with
/// (latency, omega); memory arcs dashed; the Start/Stop scaffolding is
/// omitted unless \p IncludePseudo.
void writeGraphViz(std::ostream &OS, const DepGraph &Graph,
                   bool IncludePseudo = false);

} // namespace lsms

#endif // LSMS_IR_GRAPHVIZ_H
