#include "ir/IRBuilder.h"

#include "support/Statistics.h"

#include <cassert>
#include <cstdio>

using namespace lsms;

int IRBuilder::invariant(const std::string &Name, double Init) {
  const int V = Body.addValue(RegClass::GPR, Body.startOp(), Name);
  Body.value(V).Init = Init;
  return V;
}

int IRBuilder::constant(double C) {
  auto It = Constants.find(C);
  if (It != Constants.end())
    return It->second;
  const int V = invariant("#" + formatNumber(C, 6), C);
  Constants.emplace(C, V);
  return V;
}

int IRBuilder::emitValue(Opcode Opc, std::vector<Use> Operands,
                         const std::string &Name, int PredValue,
                         int PredOmega) {
  assert(!isPseudo(Opc) && Opc != Opcode::Store && Opc != Opcode::BrTop &&
         "opcode does not produce a value");
  const int Op = Body.addOperation(Opc, std::move(Operands), Name);
  const RegClass Class =
      producesPredicate(Opc) ? RegClass::ICR : RegClass::RR;
  const int V = Body.addValue(Class, Op, Name);
  Body.op(Op).Result = V;
  Body.op(Op).PredValue = PredValue;
  Body.op(Op).PredOmega = PredOmega;
  return V;
}

int IRBuilder::declareValue(RegClass Class, const std::string &Name) {
  assert(Class != RegClass::GPR && "declare is for loop-defined values");
  return Body.addValue(Class, /*Def=*/-1, Name);
}

int IRBuilder::defineValue(int ValueId, Opcode Opc, std::vector<Use> Operands,
                           int PredValue, int PredOmega) {
  assert(Body.value(ValueId).Def < 0 && "value already defined");
  assert(!isPseudo(Opc) && Opc != Opcode::Store && Opc != Opcode::BrTop &&
         "opcode does not produce a value");
  const int Op =
      Body.addOperation(Opc, std::move(Operands), Body.value(ValueId).Name);
  Body.op(Op).Result = ValueId;
  Body.op(Op).PredValue = PredValue;
  Body.op(Op).PredOmega = PredOmega;
  Body.value(ValueId).Def = Op;
  return Op;
}

int IRBuilder::emitLoad(int ArrayId, int ElemOffset, Use Addr,
                        const std::string &Name, int PredValue,
                        int PredOmega) {
  const int V = emitValue(Opcode::Load, {Addr}, Name, PredValue, PredOmega);
  Operation &Op = Body.op(Body.value(V).Def);
  Op.ArrayId = ArrayId;
  Op.ElemOffset = ElemOffset;
  return V;
}

int IRBuilder::emitStore(int ArrayId, int ElemOffset, Use Addr, Use Val,
                         const std::string &Name, int PredValue,
                         int PredOmega) {
  const int Op = Body.addOperation(Opcode::Store, {Addr, Val}, Name);
  Body.op(Op).ArrayId = ArrayId;
  Body.op(Op).ElemOffset = ElemOffset;
  Body.op(Op).PredValue = PredValue;
  Body.op(Op).PredOmega = PredOmega;
  return Op;
}

int IRBuilder::emitIndirectLoad(int ArrayId, Use Index,
                                const std::string &Name, int PredValue,
                                int PredOmega) {
  const int V = emitValue(Opcode::Load, {Index}, Name, PredValue, PredOmega);
  Operation &Op = Body.op(Body.value(V).Def);
  Op.ArrayId = ArrayId;
  Op.Indirect = true;
  Op.ElemOffset = 0;
  Op.ElemStride = 0;
  return V;
}

int IRBuilder::emitIndirectStore(int ArrayId, Use Index, Use Val,
                                 const std::string &Name, int PredValue,
                                 int PredOmega) {
  const int Op = Body.addOperation(Opcode::Store, {Index, Val}, Name);
  Body.op(Op).ArrayId = ArrayId;
  Body.op(Op).Indirect = true;
  Body.op(Op).ElemOffset = 0;
  Body.op(Op).ElemStride = 0;
  Body.op(Op).PredValue = PredValue;
  Body.op(Op).PredOmega = PredOmega;
  return Op;
}

int IRBuilder::addressStream(const std::string &Name, double Base,
                             double Stride) {
  const int StrideC = constant(Stride);
  // Forward-declare the value so the operation can use itself with omega 1.
  const int Op = Body.addOperation(Opcode::AddrAdd, {}, Name);
  const int V = Body.addValue(RegClass::RR, Op, Name);
  Body.op(Op).Result = V;
  Body.op(Op).Operands = {Use{V, 1}, Use{StrideC, 0}};
  Body.value(V).Seeds = {Base};
  return V;
}

int IRBuilder::newArray(const std::string &Name) {
  Body.ArrayNames.push_back(Name.empty() ? "A" + std::to_string(Body.NumArrays)
                                         : Name);
  return Body.NumArrays++;
}

void IRBuilder::setSeeds(int ValueId, std::vector<double> Seeds) {
  Body.value(ValueId).Seeds = std::move(Seeds);
}

void IRBuilder::markLiveOut(int ValueId) {
  Body.value(ValueId).LiveOut = true;
}

void IRBuilder::addMemDep(int SrcOp, int DstOp, DepKind Kind, int Latency,
                          int Omega) {
  Body.MemDeps.push_back({SrcOp, DstOp, Kind, Latency, Omega});
}

void IRBuilder::addTaggedMemDep(int SrcOp, int DstOp, DepKind Kind,
                                int Latency, int Omega, ArcConfidence Conf,
                                double Prob, int AliasGroup) {
  MemDep D{SrcOp, DstOp, Kind, Latency, Omega};
  D.Conf = Conf;
  D.Prob = Prob;
  D.AliasGroup = AliasGroup;
  Body.MemDeps.push_back(D);
}

LoopBody &IRBuilder::finish() {
  assert(!Finished && "finish() called twice");
  Finished = true;
  const int BrTop = Body.addOperation(Opcode::BrTop, {}, "brtop");
  Body.setBrTop(BrTop);
  const std::string Err = Body.verify();
  if (!Err.empty()) {
    std::fprintf(stderr, "IRBuilder produced an invalid loop '%s': %s\n",
                 Body.Name.c_str(), Err.c_str());
    assert(false && "IRBuilder produced an invalid loop body");
  }
  return Body;
}
