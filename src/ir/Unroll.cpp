#include "ir/Unroll.h"

#include "support/Compiler.h"

#include <cassert>
#include <cstdio>
#include <map>

using namespace lsms;

namespace {

/// Copy index holding source-iteration residue (k - Omega) mod F.
int copyOf(int K, int Omega, int Factor) {
  return (((K - Omega) % Factor) + Factor) % Factor;
}

/// New omega for a use with source omega \p Omega read by copy \p K.
int omegaOf(int K, int Omega, int Factor) {
  const int KPrime = copyOf(K, Omega, Factor);
  assert((Omega - K + KPrime) % Factor == 0 && "copy arithmetic broken");
  return (Omega - K + KPrime) / Factor;
}

} // namespace

LoopBody lsms::unrollLoop(const LoopBody &Body, int Factor) {
  assert(Factor >= 1 && "unroll factor must be positive");
  // A while-exit firing mid-group has no representation in the unrolled
  // iteration space; irregular loops are scheduled at source granularity.
  assert(!Body.isWhileLoop() && "cannot unroll a while-loop");

  LoopBody Out;
  Out.Name = Body.Name + "_x" + std::to_string(Factor);
  Out.Source = Body.Source;
  Out.First = 0;
  Out.NumArrays = Body.NumArrays;
  Out.ArrayNames = Body.ArrayNames;
  Out.HasConditional = Body.HasConditional;
  Out.SourceBasicBlocks = Body.SourceBasicBlocks;

  const int NumValues = Body.numValues();
  const int NumOps = Body.numOps();

  // Value map: invariants are shared; loop-defined values get one copy per
  // unroll instance (def links patched once the operations exist).
  std::vector<std::vector<int>> ValueMap(
      static_cast<size_t>(NumValues), std::vector<int>(Factor, -1));
  for (const Value &V : Body.Values) {
    if (V.Def == Body.startOp()) {
      const int NewV = Out.addValue(V.Class, Out.startOp(), V.Name);
      Out.value(NewV).Init = V.Init;
      for (int K = 0; K < Factor; ++K)
        ValueMap[static_cast<size_t>(V.Id)][static_cast<size_t>(K)] = NewV;
      continue;
    }
    for (int K = 0; K < Factor; ++K) {
      const int NewV = Out.addValue(
          V.Class, /*Def=*/-1, V.Name + "." + std::to_string(K));
      ValueMap[static_cast<size_t>(V.Id)][static_cast<size_t>(K)] = NewV;
      Value &NV = Out.value(NewV);
      NV.LiveOut = V.LiveOut && K == Factor - 1;
      if (V.SeedArrayId >= 0) {
        // Source instance j_src = First + J*F + K, index j_src*S + O.
        NV.SeedArrayId = V.SeedArrayId;
        NV.SeedElemStride = V.SeedElemStride * Factor;
        NV.SeedElemOffset =
            static_cast<int>((Body.First + K) * V.SeedElemStride) +
            V.SeedElemOffset;
      } else if (!V.Seeds.empty()) {
        // New depth d' corresponds to source depth d'*F - K.
        const int Needed =
            (static_cast<int>(V.Seeds.size()) + K + Factor - 1) / Factor;
        NV.Seeds.assign(static_cast<size_t>(Needed), 0.0);
        for (int D = 1; D <= Needed; ++D) {
          const int SrcDepth = D * Factor - K;
          if (SrcDepth >= 1 &&
              static_cast<size_t>(SrcDepth - 1) < V.Seeds.size())
            NV.Seeds[static_cast<size_t>(D - 1)] =
                V.Seeds[static_cast<size_t>(SrcDepth - 1)];
        }
      }
    }
  }

  auto MapUse = [&ValueMap, &Body, Factor](const Use &U, int K) -> Use {
    const Value &V = Body.value(U.Value);
    if (V.Def == Body.startOp())
      return Use{ValueMap[static_cast<size_t>(U.Value)][0], 0};
    return Use{ValueMap[static_cast<size_t>(U.Value)][static_cast<size_t>(
                   copyOf(K, U.Omega, Factor))],
               omegaOf(K, U.Omega, Factor)};
  };

  // Clone operations: copy 0 of every op, then copy 1, etc., preserving
  // program order within a copy. BrTop is emitted once at the very end.
  std::vector<std::vector<int>> OpMap(static_cast<size_t>(NumOps),
                                      std::vector<int>(Factor, -1));
  for (int K = 0; K < Factor; ++K) {
    for (const Operation &Op : Body.Ops) {
      if (isPseudo(Op.Opc) || Op.Opc == Opcode::BrTop)
        continue;
      std::vector<Use> Operands;
      Operands.reserve(Op.Operands.size());
      for (const Use &U : Op.Operands)
        Operands.push_back(MapUse(U, K));
      const int NewOp = Out.addOperation(
          Op.Opc, std::move(Operands),
          Op.Name + "." + std::to_string(K));
      OpMap[static_cast<size_t>(Op.Id)][static_cast<size_t>(K)] = NewOp;
      Operation &NO = Out.op(NewOp);
      if (Op.PredValue >= 0) {
        const Use P = MapUse(Use{Op.PredValue, Op.PredOmega}, K);
        NO.PredValue = P.Value;
        NO.PredOmega = P.Omega;
      }
      if (Op.ArrayId >= 0) {
        NO.ArrayId = Op.ArrayId;
        if (Op.Indirect) {
          // Data-dependent subscript: the element index is the rounded
          // operand value in every copy; the affine form stays unused.
          NO.Indirect = true;
          NO.ElemStride = Op.ElemStride;
          NO.ElemOffset = Op.ElemOffset;
        } else {
          NO.ElemStride = Op.ElemStride * Factor;
          NO.ElemOffset =
              static_cast<int>((Body.First + K) * Op.ElemStride) +
              Op.ElemOffset;
        }
      }
      if (Op.Result >= 0) {
        const int NewV =
            ValueMap[static_cast<size_t>(Op.Result)][static_cast<size_t>(K)];
        NO.Result = NewV;
        Out.value(NewV).Def = NewOp;
      }
    }
  }

  // Memory and extra dependence arcs, translated per destination copy.
  for (const MemDep &D : Body.MemDeps) {
    for (int K = 0; K < Factor; ++K) {
      const int SrcCopy = copyOf(K, D.Omega, Factor);
      const int NewOmega = omegaOf(K, D.Omega, Factor);
      const int NewSrc =
          OpMap[static_cast<size_t>(D.Src)][static_cast<size_t>(SrcCopy)];
      const int NewDst =
          OpMap[static_cast<size_t>(D.Dst)][static_cast<size_t>(K)];
      if (NewSrc < 0 || NewDst < 0)
        continue;
      // Confidence tags are dropped to Exact: speculation lowers front-end
      // bodies before any unrolling, and an unconditional arc is the sound
      // direction for everything downstream of an unroll.
      Out.MemDeps.push_back({NewSrc, NewDst, D.Kind, D.Latency, NewOmega});
    }
  }

  const int BrTop = Out.addOperation(Opcode::BrTop, {}, "brtop");
  Out.setBrTop(BrTop);

  const std::string Err = Out.verify();
  if (!Err.empty()) {
    std::fprintf(stderr, "unrollLoop produced an invalid body: %s\n",
                 Err.c_str());
    assert(false && "unrollLoop produced an invalid body");
  }
  return Out;
}
