//===----------------------------------------------------------------------===//
///
/// \file
/// Loop unrolling at the IR level. Section 3.1 of the paper observes that
/// a compiler performing loop unrolling can exploit *fractional* lower
/// bounds on II: a loop whose exact minimum II is 3/2 can be unrolled once
/// and scheduled at II = 3, initiating two source iterations per kernel
/// iteration. ("Unfortunately, the current compiler does not perform any
/// such loop transformations" — this module adds the transformation the
/// paper wished for.)
///
/// Unrolling by F makes each new iteration execute F consecutive source
/// iterations: every operation and every loop-defined value is cloned F
/// times; a use with omega w in copy k reads copy (k - w) mod F at omega
/// (w - k + k')/F; memory subscripts become stride-F affine expressions;
/// seeds are retargeted so the unrolled loop's pre-history matches the
/// source loop's.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_IR_UNROLL_H
#define LSMS_IR_UNROLL_H

#include "ir/LoopBody.h"

namespace lsms {

/// Returns \p Body unrolled by \p Factor (>= 1; 1 returns a copy). The
/// result iterates from 0: new iteration J performs source iterations
/// First + J*Factor .. First + J*Factor + Factor - 1. Executing the
/// result for N/Factor iterations is memory-equivalent to executing the
/// source for N iterations (N a multiple of Factor); live-out values are
/// carried by the last copy.
LoopBody unrollLoop(const LoopBody &Body, int Factor);

} // namespace lsms

#endif // LSMS_IR_UNROLL_H
