#include "ir/LoopBody.h"

#include "support/Compiler.h"

#include <ostream>
#include <sstream>

using namespace lsms;

const char *lsms::regClassName(RegClass Class) {
  switch (Class) {
  case RegClass::RR:
    return "RR";
  case RegClass::GPR:
    return "GPR";
  case RegClass::ICR:
    return "ICR";
  }
  LSMS_UNREACHABLE("invalid register class");
}

const char *lsms::depKindName(DepKind Kind) {
  switch (Kind) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Extra:
    return "extra";
  }
  LSMS_UNREACHABLE("invalid dependence kind");
}

const char *lsms::arcConfidenceName(ArcConfidence Conf) {
  switch (Conf) {
  case ArcConfidence::Exact:
    return "exact";
  case ArcConfidence::MayAlias:
    return "mayalias";
  case ArcConfidence::Control:
    return "control";
  }
  LSMS_UNREACHABLE("invalid arc confidence");
}

LoopBody::LoopBody() {
  // Operation 0 is Start, operation 1 is Stop (Section 4.1).
  addOperation(Opcode::Start, {}, "start");
  addOperation(Opcode::Stop, {}, "stop");
}

int LoopBody::addValue(RegClass Class, int Def, std::string Name) {
  Value V;
  V.Id = numValues();
  V.Class = Class;
  V.Def = Def;
  V.Name = std::move(Name);
  Values.push_back(std::move(V));
  return Values.back().Id;
}

int LoopBody::addOperation(Opcode Opc, std::vector<Use> Operands,
                           std::string Name) {
  Operation Op;
  Op.Id = numOps();
  Op.Opc = Opc;
  Op.Operands = std::move(Operands);
  Op.Name = std::move(Name);
  Ops.push_back(std::move(Op));
  return Ops.back().Id;
}

std::vector<LoopBody::UseSite> LoopBody::usesOf(int ValueId) const {
  std::vector<UseSite> Sites;
  for (const Operation &Op : Ops) {
    for (const Use &U : Op.Operands)
      if (U.Value == ValueId)
        Sites.push_back({Op.Id, U.Omega});
    if (Op.PredValue == ValueId)
      Sites.push_back({Op.Id, Op.PredOmega});
  }
  return Sites;
}

int LoopBody::operandArity(Opcode Opc) {
  switch (Opc) {
  case Opcode::Start:
  case Opcode::Stop:
  case Opcode::BrTop:
    return 0;
  case Opcode::Load:
  case Opcode::Copy:
  case Opcode::PredNot:
  case Opcode::FloatSqrt:
    return 1;
  case Opcode::Store:
  case Opcode::AddrAdd:
  case Opcode::AddrSub:
  case Opcode::AddrMul:
  case Opcode::IntAdd:
  case Opcode::IntSub:
  case Opcode::IntAnd:
  case Opcode::IntOr:
  case Opcode::IntXor:
  case Opcode::FloatAdd:
  case Opcode::FloatSub:
  case Opcode::IntMul:
  case Opcode::FloatMul:
  case Opcode::IntDiv:
  case Opcode::IntMod:
  case Opcode::FloatDiv:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::PredAnd:
  case Opcode::PredOr:
    return 2;
  case Opcode::Select:
    return 3;
  case Opcode::NumOpcodes:
    break;
  }
  LSMS_UNREACHABLE("invalid opcode");
}

namespace {

/// Detects cycles among omega-0 register/memory dependences, which would
/// make the body unschedulable at any II.
bool hasZeroOmegaCycle(const LoopBody &Body) {
  const int N = Body.numOps();
  std::vector<std::vector<int>> Succ(static_cast<size_t>(N));
  for (const Operation &Op : Body.Ops) {
    for (const Use &U : Op.Operands)
      if (U.Omega == 0 && Body.value(U.Value).Def >= 0)
        Succ[static_cast<size_t>(Body.value(U.Value).Def)].push_back(Op.Id);
    if (Op.PredValue >= 0 && Op.PredOmega == 0)
      Succ[static_cast<size_t>(Body.value(Op.PredValue).Def)].push_back(
          Op.Id);
  }
  for (const MemDep &D : Body.MemDeps)
    if (D.Omega == 0)
      Succ[static_cast<size_t>(D.Src)].push_back(D.Dst);

  // Iterative three-color DFS.
  std::vector<uint8_t> Color(static_cast<size_t>(N), 0);
  std::vector<std::pair<int, size_t>> Stack;
  for (int Root = 0; Root < N; ++Root) {
    if (Color[static_cast<size_t>(Root)] != 0)
      continue;
    Stack.push_back({Root, 0});
    Color[static_cast<size_t>(Root)] = 1;
    while (!Stack.empty()) {
      auto &[Node, Next] = Stack.back();
      if (Next < Succ[static_cast<size_t>(Node)].size()) {
        const int S = Succ[static_cast<size_t>(Node)][Next++];
        if (Color[static_cast<size_t>(S)] == 1)
          return true;
        if (Color[static_cast<size_t>(S)] == 0) {
          Color[static_cast<size_t>(S)] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Color[static_cast<size_t>(Node)] = 2;
      Stack.pop_back();
    }
  }
  return false;
}

} // namespace

std::string LoopBody::verify() const {
  std::ostringstream Err;
  auto Fail = [&Err](const std::string &Msg) {
    Err << Msg;
    return Err.str();
  };

  if (numOps() < 2 || Ops[0].Opc != Opcode::Start ||
      Ops[1].Opc != Opcode::Stop)
    return Fail("operations 0/1 must be the Start/Stop pseudo-ops");

  int BrTops = 0;
  for (const Operation &Op : Ops) {
    if (Op.Opc == Opcode::BrTop)
      ++BrTops;
    if (Op.Id > 1 && isPseudo(Op.Opc))
      return Fail("duplicate pseudo-operation " + Op.Name);

    const int Arity = operandArity(Op.Opc);
    if (Arity >= 0 && static_cast<int>(Op.Operands.size()) != Arity)
      return Fail("operation " + Op.Name + " has wrong operand count");

    for (const Use &U : Op.Operands) {
      if (U.Value < 0 || U.Value >= numValues())
        return Fail("operation " + Op.Name + " uses an unknown value");
      if (U.Omega < 0)
        return Fail("operation " + Op.Name + " has a negative omega");
      const Value &V = value(U.Value);
      if (V.Class == RegClass::GPR && U.Omega != 0)
        return Fail("invariant " + V.Name + " used with nonzero omega");
    }
    if (Op.PredValue >= 0) {
      if (Op.PredValue >= numValues())
        return Fail("operation " + Op.Name + " has an unknown predicate");
      if (value(Op.PredValue).Class != RegClass::ICR)
        return Fail("predicate of " + Op.Name + " is not an ICR value");
      if (Op.PredOmega < 0)
        return Fail("operation " + Op.Name + " has a negative pred omega");
    }
    if (isMemoryOp(Op.Opc)) {
      if (Op.ArrayId < 0 || Op.ArrayId >= NumArrays)
        return Fail("memory operation " + Op.Name +
                    " references an unknown array");
    }
    if (Op.Result >= 0) {
      if (Op.Result >= numValues())
        return Fail("operation " + Op.Name + " defines an unknown value");
      if (value(Op.Result).Def != Op.Id)
        return Fail("value def link broken for " + Op.Name);
      const bool WantPred = producesPredicate(Op.Opc);
      const RegClass Class = value(Op.Result).Class;
      if (WantPred && Class != RegClass::ICR)
        return Fail("comparison " + Op.Name + " must define an ICR value");
      if (!WantPred && Class == RegClass::ICR)
        return Fail("operation " + Op.Name + " may not define an ICR value");
    }
    if ((Op.Opc == Opcode::Store || Op.Opc == Opcode::BrTop ||
         isPseudo(Op.Opc)) &&
        Op.Result >= 0)
      return Fail("operation " + Op.Name + " must not define a value");
    if (!(Op.Opc == Opcode::Store || Op.Opc == Opcode::BrTop ||
          isPseudo(Op.Opc)) &&
        Op.Result < 0)
      return Fail("operation " + Op.Name + " must define a value");
  }
  if (BrTops != 1 || BrTop < 0 || Ops[static_cast<size_t>(BrTop)].Opc !=
                                      Opcode::BrTop)
    return Fail("loop must contain exactly one brtop");

  for (const Value &V : Values) {
    if (V.Def < 0 || V.Def >= numOps())
      return Fail("value " + V.Name + " has no defining operation");
    const Operation &Def = op(V.Def);
    if (Def.Id != startOp() && Def.Result != V.Id)
      return Fail("value " + V.Name + " not defined by its def op");
    if (Def.Id == startOp() && !V.Seeds.empty())
      return Fail("loop input " + V.Name + " may not carry seeds");
  }

  for (const MemDep &D : MemDeps) {
    if (D.Src < 0 || D.Src >= numOps() || D.Dst < 0 || D.Dst >= numOps())
      return Fail("memory dependence references unknown operations");
    if (D.Omega < 0)
      return Fail("memory dependence has negative omega");
    if (D.Conf == ArcConfidence::MayAlias && D.AliasGroup < 0)
      return Fail("may-alias dependence missing its alias group");
  }

  if (ExitValue >= 0) {
    if (ExitValue >= numValues())
      return Fail("exit condition references an unknown value");
    if (value(ExitValue).Class != RegClass::ICR)
      return Fail("exit condition must be an ICR (predicate) value");
    if (value(ExitValue).Def == startOp())
      return Fail("exit condition must be computed inside the loop");
  }

  if (hasZeroOmegaCycle(*this))
    return Fail("loop body has an intra-iteration dependence cycle");

  return std::string();
}

void LoopBody::print(std::ostream &OS) const {
  OS << "loop " << Name << " (ops=" << numMachineOps()
     << ", values=" << numValues() << ", arrays=" << NumArrays
     << (HasConditional ? ", conditional" : "") << ")\n";
  for (const Operation &Op : Ops) {
    if (isPseudo(Op.Opc))
      continue;
    OS << "  ";
    if (Op.Result >= 0) {
      const Value &R = value(Op.Result);
      OS << R.Name << ":" << regClassName(R.Class) << " = ";
    }
    OS << opcodeName(Op.Opc);
    if (Op.ArrayId >= 0) {
      if (Op.Indirect)
        OS << " A" << Op.ArrayId << "[indirect]";
      else
        OS << " A" << Op.ArrayId << "[i"
           << (Op.ElemOffset >= 0 ? "+" : "") << Op.ElemOffset << "]";
    }
    for (const Use &U : Op.Operands) {
      OS << ' ' << value(U.Value).Name;
      if (U.Omega != 0)
        OS << '@' << U.Omega;
    }
    if (Op.PredValue >= 0) {
      OS << " if " << value(Op.PredValue).Name;
      if (Op.PredOmega != 0)
        OS << '@' << Op.PredOmega;
    }
    OS << '\n';
  }
  for (const MemDep &D : MemDeps) {
    OS << "  memdep " << op(D.Src).Name << " -> " << op(D.Dst).Name << " ("
       << depKindName(D.Kind) << ", lat=" << D.Latency << ", omega=" << D.Omega;
    if (D.Conf != ArcConfidence::Exact) {
      OS << ", " << arcConfidenceName(D.Conf);
      if (D.Conf == ArcConfidence::MayAlias) {
        OS << " g" << D.AliasGroup << " p=";
        if (D.Prob < 0)
          OS << '?';
        else
          OS << D.Prob;
      }
    }
    OS << ")\n";
  }
  if (ExitValue >= 0)
    OS << "  while " << value(ExitValue).Name << '\n';
}
