//===----------------------------------------------------------------------===//
///
/// \file
/// The hypothetical VLIW target machine of Section 2: functional-unit kinds,
/// per-unit counts, opcode latencies (Table 1), and pipelining behaviour.
/// All latencies are configurable so the robustness experiment ("other
/// experiments with different latencies...", Section 7) can perturb them.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_MACHINE_MACHINEMODEL_H
#define LSMS_MACHINE_MACHINEMODEL_H

#include "machine/Opcode.h"

#include <array>
#include <cassert>
#include <string>

namespace lsms {

/// The machine's functional-unit classes (Table 1).
enum class FuKind : uint8_t {
  MemoryPort, ///< 2 units: load / store
  AddressAlu, ///< 2 units: address add / sub / mult
  Adder,      ///< 1 unit: int & float add/sub/logical, compares
  Multiplier, ///< 1 unit: int / float multiply
  Divider,    ///< 1 unit, not pipelined: div / mod / sqrt
  Branch,     ///< 1 unit: brtop
  None,       ///< pseudo-operations
};

inline constexpr unsigned NumFuKinds = 6;

/// Returns a printable name for \p Kind.
const char *fuKindName(FuKind Kind);

/// Describes the target machine: how many instances of each functional unit
/// exist, which unit executes each opcode, the opcode's result latency, and
/// how long the unit stays reserved (1 cycle when fully pipelined, the full
/// latency for the divider).
class MachineModel {
public:
  /// Builds the paper's default machine (Table 1).
  static MachineModel cydra5();

  /// Builds a variant of the default machine with the load latency replaced
  /// by \p LoadLatency (used by the latency-robustness ablation).
  static MachineModel withLoadLatency(int LoadLatency);

  /// Number of instances of \p Kind.
  int unitCount(FuKind Kind) const {
    return Counts[static_cast<unsigned>(Kind)];
  }

  /// The functional unit that executes \p Op; FuKind::None for pseudo-ops.
  FuKind unitFor(Opcode Op) const {
    return Units[static_cast<unsigned>(Op)];
  }

  /// Result latency of \p Op in cycles (0 for pseudo-ops).
  int latency(Opcode Op) const {
    return Latencies[static_cast<unsigned>(Op)];
  }

  /// Number of consecutive cycles \p Op reserves its functional unit:
  /// 1 for fully pipelined units, the full latency on the non-pipelined
  /// divider, 0 for pseudo-ops.
  int reservationCycles(Opcode Op) const {
    const FuKind Kind = unitFor(Op);
    if (Kind == FuKind::None)
      return 0;
    if (Kind == FuKind::Divider)
      return latency(Op);
    return 1;
  }

  /// True when every instance of \p Kind is fully pipelined.
  bool isPipelined(FuKind Kind) const { return Kind != FuKind::Divider; }

  /// Overrides the latency of \p Op (for ablation studies).
  void setLatency(Opcode Op, int Lat) {
    assert(Lat >= 0 && "negative latency");
    Latencies[static_cast<unsigned>(Op)] = Lat;
  }

  /// Overrides the number of instances of \p Kind.
  void setUnitCount(FuKind Kind, int Count) {
    assert(Count > 0 && "need at least one unit");
    Counts[static_cast<unsigned>(Kind)] = Count;
  }

  /// A short human-readable description (used by bench headers).
  std::string describe() const;

private:
  MachineModel();

  std::array<int, NumFuKinds + 1> Counts{};
  std::array<FuKind, NumOpcodeValues> Units{};
  std::array<int, NumOpcodeValues> Latencies{};
};

} // namespace lsms

#endif // LSMS_MACHINE_MACHINEMODEL_H
