#include "machine/MachineModel.h"

#include "support/Compiler.h"

#include <sstream>

using namespace lsms;

const char *lsms::fuKindName(FuKind Kind) {
  switch (Kind) {
  case FuKind::MemoryPort:
    return "Memory Port";
  case FuKind::AddressAlu:
    return "Address ALU";
  case FuKind::Adder:
    return "Adder";
  case FuKind::Multiplier:
    return "Multiplier";
  case FuKind::Divider:
    return "Divider";
  case FuKind::Branch:
    return "Branch Unit";
  case FuKind::None:
    return "None";
  }
  LSMS_UNREACHABLE("invalid functional unit kind");
}

MachineModel::MachineModel() {
  for (auto &U : Units)
    U = FuKind::None;
  for (auto &L : Latencies)
    L = 0;
}

MachineModel MachineModel::cydra5() {
  MachineModel M;

  auto Set = [&M](Opcode Op, FuKind Kind, int Lat) {
    M.Units[static_cast<unsigned>(Op)] = Kind;
    M.Latencies[static_cast<unsigned>(Op)] = Lat;
  };

  M.Counts[static_cast<unsigned>(FuKind::MemoryPort)] = 2;
  M.Counts[static_cast<unsigned>(FuKind::AddressAlu)] = 2;
  M.Counts[static_cast<unsigned>(FuKind::Adder)] = 1;
  M.Counts[static_cast<unsigned>(FuKind::Multiplier)] = 1;
  M.Counts[static_cast<unsigned>(FuKind::Divider)] = 1;
  M.Counts[static_cast<unsigned>(FuKind::Branch)] = 1;

  Set(Opcode::Start, FuKind::None, 0);
  Set(Opcode::Stop, FuKind::None, 0);

  Set(Opcode::Load, FuKind::MemoryPort, 13);
  Set(Opcode::Store, FuKind::MemoryPort, 1);

  Set(Opcode::AddrAdd, FuKind::AddressAlu, 1);
  Set(Opcode::AddrSub, FuKind::AddressAlu, 1);
  Set(Opcode::AddrMul, FuKind::AddressAlu, 1);

  Set(Opcode::IntAdd, FuKind::Adder, 1);
  Set(Opcode::IntSub, FuKind::Adder, 1);
  Set(Opcode::IntAnd, FuKind::Adder, 1);
  Set(Opcode::IntOr, FuKind::Adder, 1);
  Set(Opcode::IntXor, FuKind::Adder, 1);
  Set(Opcode::FloatAdd, FuKind::Adder, 1);
  Set(Opcode::FloatSub, FuKind::Adder, 1);

  Set(Opcode::IntMul, FuKind::Multiplier, 2);
  Set(Opcode::FloatMul, FuKind::Multiplier, 2);

  Set(Opcode::IntDiv, FuKind::Divider, 17);
  Set(Opcode::IntMod, FuKind::Divider, 17);
  Set(Opcode::FloatDiv, FuKind::Divider, 17);
  Set(Opcode::FloatSqrt, FuKind::Divider, 21);

  Set(Opcode::CmpEQ, FuKind::Adder, 1);
  Set(Opcode::CmpNE, FuKind::Adder, 1);
  Set(Opcode::CmpLT, FuKind::Adder, 1);
  Set(Opcode::CmpLE, FuKind::Adder, 1);
  Set(Opcode::CmpGT, FuKind::Adder, 1);
  Set(Opcode::CmpGE, FuKind::Adder, 1);
  Set(Opcode::PredAnd, FuKind::Adder, 1);
  Set(Opcode::PredOr, FuKind::Adder, 1);
  Set(Opcode::PredNot, FuKind::Adder, 1);
  Set(Opcode::Copy, FuKind::Adder, 1);
  Set(Opcode::Select, FuKind::Adder, 1);

  Set(Opcode::BrTop, FuKind::Branch, 2);

  return M;
}

MachineModel MachineModel::withLoadLatency(int LoadLatency) {
  MachineModel M = cydra5();
  M.setLatency(Opcode::Load, LoadLatency);
  return M;
}

std::string MachineModel::describe() const {
  std::ostringstream OS;
  OS << "VLIW:";
  const FuKind Kinds[] = {FuKind::MemoryPort, FuKind::AddressAlu, FuKind::Adder,
                          FuKind::Multiplier, FuKind::Divider, FuKind::Branch};
  for (FuKind K : Kinds)
    OS << ' ' << fuKindName(K) << "x" << unitCount(K);
  OS << ", load latency " << latency(Opcode::Load);
  return OS.str();
}
