#include "machine/Opcode.h"

#include "support/Compiler.h"

using namespace lsms;

const char *lsms::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Start:
    return "start";
  case Opcode::Stop:
    return "stop";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::AddrAdd:
    return "aadd";
  case Opcode::AddrSub:
    return "asub";
  case Opcode::AddrMul:
    return "amul";
  case Opcode::IntAdd:
    return "iadd";
  case Opcode::IntSub:
    return "isub";
  case Opcode::IntAnd:
    return "iand";
  case Opcode::IntOr:
    return "ior";
  case Opcode::IntXor:
    return "ixor";
  case Opcode::FloatAdd:
    return "fadd";
  case Opcode::FloatSub:
    return "fsub";
  case Opcode::IntMul:
    return "imul";
  case Opcode::FloatMul:
    return "fmul";
  case Opcode::IntDiv:
    return "idiv";
  case Opcode::IntMod:
    return "imod";
  case Opcode::FloatDiv:
    return "fdiv";
  case Opcode::FloatSqrt:
    return "fsqrt";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::PredAnd:
    return "pand";
  case Opcode::PredOr:
    return "por";
  case Opcode::PredNot:
    return "pnot";
  case Opcode::Copy:
    return "copy";
  case Opcode::Select:
    return "select";
  case Opcode::BrTop:
    return "brtop";
  case Opcode::NumOpcodes:
    break;
  }
  LSMS_UNREACHABLE("invalid opcode");
}
