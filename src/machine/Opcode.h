//===----------------------------------------------------------------------===//
///
/// \file
/// The operation repertoire of the hypothetical Cydra-5-like VLIW target
/// (Section 2 of the paper). Opcodes are shared between the loop IR and the
/// machine model; the machine model maps each opcode to a functional unit
/// and a latency.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_MACHINE_OPCODE_H
#define LSMS_MACHINE_OPCODE_H

#include <cstdint>

namespace lsms {

/// Machine operations plus the two scheduling pseudo-operations (Start and
/// Stop, Section 4.1) which consume no machine resources.
enum class Opcode : uint8_t {
  Start, ///< pseudo-op: predecessor of every operation, fixed at cycle 0
  Stop,  ///< pseudo-op: successor of every operation

  Load,  ///< memory port, latency 13 (second-level cache)
  Store, ///< memory port, latency 1

  AddrAdd, ///< address ALU, latency 1
  AddrSub, ///< address ALU, latency 1
  AddrMul, ///< address ALU, latency 1

  IntAdd, ///< adder, latency 1
  IntSub, ///< adder, latency 1
  IntAnd, ///< adder (logical), latency 1
  IntOr,  ///< adder (logical), latency 1
  IntXor, ///< adder (logical), latency 1
  FloatAdd, ///< adder, latency 1
  FloatSub, ///< adder, latency 1

  IntMul,   ///< multiplier, latency 2
  FloatMul, ///< multiplier, latency 2

  IntDiv,    ///< divider (non-pipelined), latency 17
  IntMod,    ///< divider (non-pipelined), latency 17
  FloatDiv,  ///< divider (non-pipelined), latency 17
  FloatSqrt, ///< divider (non-pipelined), latency 21

  CmpEQ, ///< adder; produces an ICR predicate, latency 1
  CmpNE, ///< adder; produces an ICR predicate, latency 1
  CmpLT, ///< adder; produces an ICR predicate, latency 1
  CmpLE, ///< adder; produces an ICR predicate, latency 1
  CmpGT, ///< adder; produces an ICR predicate, latency 1
  CmpGE, ///< adder; produces an ICR predicate, latency 1

  PredAnd, ///< adder; combines predicates for nested if-conversion
  PredOr,  ///< adder; combines predicates (else-branches)
  PredNot, ///< adder; negates a predicate

  Copy,   ///< adder; register-to-register move
  Select, ///< adder; select(pred, a, b) — merges if-converted values

  BrTop, ///< branch unit; loop-control conditional branch, latency 2

  NumOpcodes
};

/// Number of real+pseudo opcodes, usable for dense tables.
inline constexpr unsigned NumOpcodeValues =
    static_cast<unsigned>(Opcode::NumOpcodes);

/// Returns a stable mnemonic for \p Op (e.g. "fadd", "brtop").
const char *opcodeName(Opcode Op);

/// Returns true for the Start/Stop pseudo-operations, which occupy no
/// functional unit and have zero latency (Stop) or zero latency (Start).
inline bool isPseudo(Opcode Op) {
  return Op == Opcode::Start || Op == Opcode::Stop;
}

/// Returns true for operations that read or write memory.
inline bool isMemoryOp(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store;
}

/// Returns true for comparison / predicate-manipulation ops whose result is
/// an ICR predicate.
inline bool producesPredicate(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::PredAnd:
  case Opcode::PredOr:
  case Opcode::PredNot:
    return true;
  default:
    return false;
  }
}

/// Returns true for divide/modulo/square-root operations, which use the
/// non-pipelined divider (their slack is halved twice by the dynamic
/// priority scheme, Section 4.3).
inline bool isDividerOp(Opcode Op) {
  switch (Op) {
  case Opcode::IntDiv:
  case Opcode::IntMod:
  case Opcode::FloatDiv:
  case Opcode::FloatSqrt:
    return true;
  default:
    return false;
  }
}

} // namespace lsms

#endif // LSMS_MACHINE_OPCODE_H
