#include "machine/ModuloResourceTable.h"

using namespace lsms;

ModuloResourceTable::ModuloResourceTable(const MachineModel &Machine, int II)
    : Machine(Machine), II(II) {
  assert(II > 0 && "initiation interval must be positive");
  KindBase.assign(NumFuKinds, 0);
  int Next = 0;
  for (unsigned K = 0; K < NumFuKinds; ++K) {
    KindBase[K] = Next;
    Next += Machine.unitCount(static_cast<FuKind>(K)) * II;
  }
  Slots.assign(static_cast<size_t>(Next), 0);
}

bool ModuloResourceTable::canPlace(Opcode Op, FuKind Kind, int Instance,
                                   int Cycle) const {
  if (Kind == FuKind::None)
    return true;
  const int Res = Machine.reservationCycles(Op);
  // A non-pipelined reservation longer than II would overlap the same
  // operation's next iteration: never placeable at this II.
  if (Res > II)
    return false;
  for (int K = 0; K < Res; ++K)
    if (Slots[slotIndex(Kind, Instance, wrap(Cycle + K))])
      return false;
  return true;
}

void ModuloResourceTable::place(Opcode Op, FuKind Kind, int Instance,
                                int Cycle) {
  if (Kind == FuKind::None)
    return;
  const int Res = Machine.reservationCycles(Op);
  assert(Res <= II && "reservation longer than II");
  for (int K = 0; K < Res; ++K) {
    uint8_t &Slot = Slots[slotIndex(Kind, Instance, wrap(Cycle + K))];
    assert(!Slot && "placing over an existing reservation");
    Slot = 1;
  }
}

void ModuloResourceTable::remove(Opcode Op, FuKind Kind, int Instance,
                                 int Cycle) {
  if (Kind == FuKind::None)
    return;
  const int Res = Machine.reservationCycles(Op);
  for (int K = 0; K < Res; ++K) {
    uint8_t &Slot = Slots[slotIndex(Kind, Instance, wrap(Cycle + K))];
    assert(Slot && "removing a reservation that was never made");
    Slot = 0;
  }
}

int ModuloResourceTable::occupancy(FuKind Kind, int Instance,
                                   int Cycle) const {
  if (Kind == FuKind::None)
    return 0;
  return Slots[slotIndex(Kind, Instance, wrap(Cycle))];
}

void ModuloResourceTable::clear() {
  std::fill(Slots.begin(), Slots.end(), 0);
}
