#include "machine/ModuloResourceTable.h"

#include <algorithm>

using namespace lsms;

namespace {

/// Mask of \p Len bits (1..64) starting at bit \p Lo within a word index
/// space; callers split ranges at word boundaries first.
uint64_t maskBits(int Lo, int Len) {
  const uint64_t Body = Len >= 64 ? ~0ull : ((1ull << Len) - 1);
  return Body << Lo;
}

/// True when any bit of [Lo, Lo+Len) is set in \p Row.
bool testRange(const uint64_t *Row, int Lo, int Len) {
  const int Hi = Lo + Len; // exclusive
  const int W0 = Lo >> 6;
  const int W1 = (Hi - 1) >> 6;
  if (W0 == W1)
    return (Row[W0] & maskBits(Lo & 63, Len)) != 0;
  if (Row[W0] & maskBits(Lo & 63, 64 - (Lo & 63)))
    return true;
  for (int W = W0 + 1; W < W1; ++W)
    if (Row[W])
      return true;
  return (Row[W1] & maskBits(0, Hi - (W1 << 6))) != 0;
}

/// Sets (\p Set) or clears every bit of [Lo, Lo+Len) in \p Row.
void fillRange(uint64_t *Row, int Lo, int Len, bool Set) {
  const int Hi = Lo + Len;
  const int W0 = Lo >> 6;
  const int W1 = (Hi - 1) >> 6;
  const auto Apply = [&](int W, uint64_t Mask) {
    if (Set) {
      assert((Row[W] & Mask) == 0 && "placing over an existing reservation");
      Row[W] |= Mask;
    } else {
      assert((Row[W] & Mask) == Mask &&
             "removing a reservation that was never made");
      Row[W] &= ~Mask;
    }
  };
  if (W0 == W1) {
    Apply(W0, maskBits(Lo & 63, Len));
    return;
  }
  Apply(W0, maskBits(Lo & 63, 64 - (Lo & 63)));
  for (int W = W0 + 1; W < W1; ++W)
    Apply(W, ~0ull);
  Apply(W1, maskBits(0, Hi - (W1 << 6)));
}

} // namespace

ModuloResourceTable::ModuloResourceTable(const MachineModel &Machine, int II)
    : Machine(Machine), II(II), WordsPerRow((II + 63) / 64) {
  assert(II > 0 && "initiation interval must be positive");
  RowBase.assign(NumFuKinds, 0);
  int Next = 0;
  for (unsigned K = 0; K < NumFuKinds; ++K) {
    RowBase[K] = Next;
    Next += Machine.unitCount(static_cast<FuKind>(K));
  }
  Words.assign(static_cast<size_t>(Next) * WordsPerRow, 0);
}

bool ModuloResourceTable::canPlace(Opcode Op, FuKind Kind, int Instance,
                                   int Cycle) const {
  if (Kind == FuKind::None)
    return true;
  const int Res = Machine.reservationCycles(Op);
  // A non-pipelined reservation longer than II would overlap the same
  // operation's next iteration: never placeable at this II.
  if (Res > II)
    return false;
  if (Res <= 0)
    return true;
  const uint64_t *Row = row(Kind, Instance);
  const int Start = wrap(Cycle);
  const int FirstLen = std::min(Res, II - Start);
  if (testRange(Row, Start, FirstLen))
    return false;
  // The wrapped tail, when the reservation crosses the II boundary.
  return Res == FirstLen || !testRange(Row, 0, Res - FirstLen);
}

void ModuloResourceTable::place(Opcode Op, FuKind Kind, int Instance,
                                int Cycle) {
  if (Kind == FuKind::None)
    return;
  const int Res = Machine.reservationCycles(Op);
  assert(Res <= II && "reservation longer than II");
  if (Res <= 0)
    return;
  uint64_t *Row = row(Kind, Instance);
  const int Start = wrap(Cycle);
  const int FirstLen = std::min(Res, II - Start);
  fillRange(Row, Start, FirstLen, /*Set=*/true);
  if (Res > FirstLen)
    fillRange(Row, 0, Res - FirstLen, /*Set=*/true);
}

void ModuloResourceTable::remove(Opcode Op, FuKind Kind, int Instance,
                                 int Cycle) {
  if (Kind == FuKind::None)
    return;
  const int Res = Machine.reservationCycles(Op);
  if (Res <= 0)
    return;
  uint64_t *Row = row(Kind, Instance);
  const int Start = wrap(Cycle);
  const int FirstLen = std::min(Res, II - Start);
  fillRange(Row, Start, FirstLen, /*Set=*/false);
  if (Res > FirstLen)
    fillRange(Row, 0, Res - FirstLen, /*Set=*/false);
}

int ModuloResourceTable::occupancy(FuKind Kind, int Instance,
                                   int Cycle) const {
  if (Kind == FuKind::None)
    return 0;
  const int Bit = wrap(Cycle);
  return (row(Kind, Instance)[Bit >> 6] >> (Bit & 63)) & 1;
}

void ModuloResourceTable::clear() {
  std::fill(Words.begin(), Words.end(), 0);
}
