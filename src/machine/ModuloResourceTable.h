//===----------------------------------------------------------------------===//
///
/// \file
/// The modulo resource table (Section 1): II entries, each tracking which
/// functional-unit instances are reserved at that cycle modulo II. Placing
/// an operation at cycle t commits its unit for cycles t+k*II for all k, so
/// reservations are recorded at t mod II.
///
/// Reservations are stored as bitsets: one row of packed 64-bit words per
/// (FuKind, instance), II bits each. A multi-cycle reservation is at most
/// two contiguous bit ranges (it can wrap once around the II boundary), so
/// conflict checks are a handful of word operations instead of a per-cycle
/// loop — this sits on the innermost branch-and-bound placement path.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_MACHINE_MODULORESOURCETABLE_H
#define LSMS_MACHINE_MODULORESOURCETABLE_H

#include "machine/MachineModel.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace lsms {

/// Tracks per-cycle (mod II) reservations of functional-unit instances.
///
/// Operations are pre-assigned to a specific unit instance before scheduling
/// commences (Section 4.3), so a reservation is identified by
/// (FuKind, instance). Non-pipelined operations (divider) reserve
/// `reservationCycles` consecutive cycles; the table rejects placements
/// whose reservation would wrap onto itself (which would mean the operation
/// conflicts with its own next-iteration instance).
class ModuloResourceTable {
public:
  ModuloResourceTable(const MachineModel &Machine, int II);

  int initiationInterval() const { return II; }

  /// True if \p Op (on unit \p Kind instance \p Instance) can be issued at
  /// \p Cycle without a resource conflict.
  bool canPlace(Opcode Op, FuKind Kind, int Instance, int Cycle) const;

  /// Reserves the unit for \p Op at \p Cycle. Must be preceded by a
  /// successful canPlace query.
  void place(Opcode Op, FuKind Kind, int Instance, int Cycle);

  /// Releases the reservation made by place().
  void remove(Opcode Op, FuKind Kind, int Instance, int Cycle);

  /// Returns the operation count currently holding a reservation in the slot
  /// of (\p Kind, \p Instance) at \p Cycle mod II (0 or 1).
  int occupancy(FuKind Kind, int Instance, int Cycle) const;

  /// Drops every reservation.
  void clear();

private:
  const uint64_t *row(FuKind Kind, int Instance) const {
    assert(Kind != FuKind::None && "pseudo-ops take no slots");
    assert(Instance >= 0 && Instance < Machine.unitCount(Kind) &&
           "unit instance out of range");
    return Words.data() +
           static_cast<size_t>(RowBase[static_cast<unsigned>(Kind)] +
                               Instance) *
               WordsPerRow;
  }
  uint64_t *row(FuKind Kind, int Instance) {
    return const_cast<uint64_t *>(
        static_cast<const ModuloResourceTable *>(this)->row(Kind, Instance));
  }

  int wrap(int Cycle) const {
    const int M = Cycle % II;
    return M < 0 ? M + II : M;
  }

  const MachineModel &Machine;
  int II;
  int WordsPerRow;
  std::vector<int> RowBase;    ///< first row index per FuKind
  std::vector<uint64_t> Words; ///< packed reservation bits, II per row
};

} // namespace lsms

#endif // LSMS_MACHINE_MODULORESOURCETABLE_H
