//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking JSONL client for the epoll front end — the test
/// suite's and load generator's view of the wire protocol. One instance
/// is one connection: send request lines (newline appended), read
/// response lines back in order, optionally half-close the write side to
/// tell the server this connection is done (the server answers
/// everything in flight, then closes).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_NET_JSONLCLIENT_H
#define LSMS_NET_JSONLCLIENT_H

#include <cstdint>
#include <string>

namespace lsms {

class JsonlClient {
public:
  JsonlClient() = default;
  ~JsonlClient() { close(); }
  JsonlClient(const JsonlClient &) = delete;
  JsonlClient &operator=(const JsonlClient &) = delete;
  JsonlClient(JsonlClient &&Other) noexcept;
  JsonlClient &operator=(JsonlClient &&Other) noexcept;

  /// Connects to \p Host:\p Port (IPv4 dotted quad). Returns false with a
  /// diagnostic on failure.
  bool connect(const std::string &Host, uint16_t Port, std::string &Err);

  /// Sends \p Line plus a trailing newline.
  bool sendLine(const std::string &Line, std::string &Err);

  /// Sends \p Bytes verbatim (for pipelined batches: many lines, one
  /// write).
  bool sendRaw(const std::string &Bytes, std::string &Err);

  /// Reads one response line (newline stripped). Returns false on error
  /// (diagnostic in \p Err) or on clean EOF (\p Err stays empty).
  bool recvLine(std::string &Line, std::string &Err);

  /// Half-closes the write side; the server drains this connection.
  void shutdownWrite();

  void close();
  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

private:
  int Fd = -1;
  std::string Buf; ///< read-ahead beyond the last returned line
  size_t Off = 0;
};

} // namespace lsms

#endif // LSMS_NET_JSONLCLIENT_H
