//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free epoll socket front end for the scheduling service.
///
/// Framing is newline-delimited JSONL — byte-compatible with the stdin
/// pipe (SchedulingService::processJsonl): each request line on a
/// connection gets exactly one response line, in request order, and the
/// response bytes for a given line are identical to what the pipe would
/// emit for the same line at the same stream index. Blank lines and '#'
/// comments are skipped without a response, exactly like the pipe.
///
/// Threading: one IO thread (the caller of serve()) owns the listener,
/// epoll instance, and every connection's buffers; a fixed pool of worker
/// threads runs SchedulingService::handleLine(). The IO thread batches
/// complete lines out of each readable connection into a bounded
/// admission queue; workers push finished response bytes onto a
/// completion list and wake the IO thread through an eventfd. Responses
/// are sequenced per connection (a pipelined fast request never
/// overtakes a slow earlier one) and flushed through a per-connection
/// write buffer under EPOLLOUT.
///
/// Admission control: when the queue is at MaxQueueDepth the request is
/// not dropped silently — the server immediately emits a shed response
/// ({"index":N,"name":"shed","ok":false,...}, the 503 of this protocol)
/// through the ordered completion path. Connections beyond
/// MaxConnections are accepted and closed. Idle connections are closed
/// after IdleTimeoutMs.
///
/// Shutdown: requestStop() is async-signal-safe (atomic store + eventfd
/// write; call it from a SIGTERM handler). The IO loop then closes the
/// listener and drains: existing connections are served until the client
/// half-closes, force-closed at DrainTimeoutMs; then the workers finish
/// the queue and join, so every admitted request was answered or its
/// connection provably went away.
///
/// Control lines: a line whose JSON object has a "cmd" field addresses
/// the server, not the scheduler. {"cmd":"metrics"} returns the
/// service's full metrics document (counters, gauges, histograms, cache
/// and store statistics) as one line. {"cmd":"sleep_ms","ms":N} occupies
/// a worker for N ms — a test hook, rejected unless EnableTestCommands.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_NET_EPOLLSERVER_H
#define LSMS_NET_EPOLLSERVER_H

#include "service/SchedulingService.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lsms {

/// Socket front-end configuration.
struct ServerConfig {
  /// IPv4 address to bind; tests and the bench use the loopback default.
  std::string BindAddress = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
  uint16_t Port = 0;
  int Backlog = 128;
  /// Worker threads running handleLine(); 0 = the service's job count.
  int Workers = 0;
  /// Admission-queue bound: requests beyond this are shed, not queued.
  size_t MaxQueueDepth = 1024;
  /// Connections beyond this are accepted and immediately closed.
  int MaxConnections = 1024;
  /// Close a connection with no traffic and no in-flight work after this
  /// many milliseconds; < 0 disables the deadline.
  long IdleTimeoutMs = -1;
  /// Force-close connections still open this long after requestStop().
  long DrainTimeoutMs = 5000;
  /// Close a connection whose un-read responses exceed this many bytes
  /// (a pipelining client that never reads).
  size_t MaxWriteBufferBytes = 16u << 20;
  /// Engine for request lines without an "engine" field (mirrors the
  /// processJsonl parameter, so the two paths stay byte-identical).
  ServiceEngine DefaultEngine = ServiceEngine::Slack;
  /// Accept {"cmd":"sleep_ms"} (tests only; keeps a worker busy on cue).
  bool EnableTestCommands = false;
};

/// The epoll front end. One instance serves one SchedulingService; the
/// service outlives the server and is not drained by it (stopping the
/// server leaves the service usable).
class EpollServer {
public:
  explicit EpollServer(SchedulingService &Service,
                       ServerConfig Config = ServerConfig());
  ~EpollServer();
  EpollServer(const EpollServer &) = delete;
  EpollServer &operator=(const EpollServer &) = delete;

  /// Binds, listens, creates the epoll instance, and spawns the workers.
  /// Returns false with a diagnostic on any syscall failure.
  bool start(std::string &Err);

  /// The bound port (the kernel's pick when Config.Port was 0).
  uint16_t port() const { return BoundPort; }

  /// Runs the IO loop on the calling thread until requestStop() and the
  /// subsequent drain complete. Returns immediately if start() failed or
  /// was never called.
  void serve();

  /// Initiates shutdown. Async-signal-safe: an atomic store plus an
  /// eventfd write, callable straight from a SIGTERM handler.
  void requestStop();

  /// True between a successful start() and the end of serve().
  bool running() const { return Running.load(std::memory_order_acquire); }

private:
  struct Conn;
  struct Job;
  struct Completion;

  void acceptPending();
  void readConn(Conn &C);
  void writeConn(Conn &C);
  void onLine(Conn &C, std::string Line);
  void completeLocal(Conn &C, uint64_t Seq, std::string Bytes);
  void flushReady(Conn &C);
  void deliverCompletions();
  void maybeFinish(Conn &C);
  void updateEpoll(Conn &C);
  void closeConn(int Fd);
  void closeAllConns();
  void scanIdle(int64_t NowMs);
  void beginDrainIO();
  void stopWorkers();
  void workerLoop();

  SchedulingService &Service;
  ServerConfig Config;
  int NumWorkers = 0;
  uint16_t BoundPort = 0;

  int ListenFd = -1;
  int EpollFd = -1;
  int WakeFd = -1; ///< eventfd: completion + stop wakeups

  std::unordered_map<int, std::unique_ptr<Conn>> Conns;
  uint64_t NextConnGen = 1;

  std::mutex QueueMu;
  std::condition_variable QueueCV;
  std::deque<Job> Queue;
  bool WorkersStop = false;
  std::vector<std::thread> Workers;

  std::mutex CompletionMu;
  std::vector<Completion> Completions;

  std::atomic<bool> StopRequested{false};
  std::atomic<bool> Running{false};
  bool Draining = false;
  int64_t DrainDeadlineMs = 0;
};

} // namespace lsms

#endif // LSMS_NET_EPOLLSERVER_H
