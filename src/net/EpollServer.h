//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free epoll socket front end for the scheduling service.
///
/// Framing is newline-delimited JSONL — byte-compatible with the stdin
/// pipe (SchedulingService::processJsonl): each request line on a
/// connection gets exactly one response line, in request order, and the
/// response bytes for a given line are identical to what the pipe would
/// emit for the same line at the same stream index. Blank lines and '#'
/// comments are skipped without a response, exactly like the pipe. All
/// lines follow the versioned wire protocol (service/Protocol.h).
///
/// Threading: IoShards independent IO event loops, each bound to the same
/// port through SO_REUSEPORT so the kernel spreads incoming connections
/// across them. Each shard owns its listener, epoll instance, eventfd,
/// and every buffer of every connection it accepted — no connection state
/// is ever shared between shards, so per-connection response ordering and
/// byte-identity are exactly the single-thread story. A single fixed pool
/// of worker threads runs SchedulingService::handleLine() for all shards;
/// completions are routed back to the owning shard's completion list and
/// eventfd. IoShards = 1 degenerates to the classic one-IO-thread server
/// (and skips SO_REUSEPORT so the port stays exclusively bound).
///
/// Overload ladder: requests are classified at admission. While the
/// shared queue is below MaxQueueDepth they run at full fidelity; between
/// MaxQueueDepth and MaxQueueDepth + SlackQueueDepth they are admitted
/// SlackOnly (exact requests degrade deterministically to the slack
/// heuristic, "tier":"slack"); past that, with CachedFallback on, the IO
/// thread answers from the cache/store without computing
/// ("tier":"cached"); only when even the cached rung has no answer is the
/// request shed with a structured shed line (status "shed", error_code
/// "overloaded", echoing the request id when parseable). Connections
/// beyond MaxConnections are accepted and closed. Idle connections are
/// closed after IdleTimeoutMs (counter net_idle_closed).
///
/// Shutdown: requestStop() is async-signal-safe (atomic store + one
/// eventfd write per shard; call it from a SIGTERM handler). Each shard
/// then closes its listener and drains: existing connections are served
/// until the client half-closes, force-closed at DrainTimeoutMs; then the
/// workers finish the queue and join, so every admitted request was
/// answered or its connection provably went away.
///
/// Control lines: a line whose JSON object has a "cmd" field addresses
/// the server, not the scheduler. {"cmd":"metrics"} returns the
/// service's full metrics document (counters, gauges, histograms, cache
/// and store statistics) as one line. {"cmd":"sleep_ms","ms":N} occupies
/// a worker for N ms — a test hook, rejected unless EnableTestCommands.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_NET_EPOLLSERVER_H
#define LSMS_NET_EPOLLSERVER_H

#include "service/SchedulingService.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lsms {

/// Socket front-end configuration.
struct ServerConfig {
  /// IPv4 address to bind; tests and the bench use the loopback default.
  std::string BindAddress = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
  uint16_t Port = 0;
  int Backlog = 128;
  /// Independent SO_REUSEPORT-sharded IO event loops; each owns its
  /// accepted connections end to end. 1 = the single-IO-thread front end.
  int IoShards = 1;
  /// Worker threads running handleLine(); 0 = the service's job count.
  int Workers = 0;
  /// Full-fidelity admission bound: requests arriving while the queue
  /// holds this many jobs enter the overload ladder instead.
  size_t MaxQueueDepth = 1024;
  /// Slack rung of the ladder: requests arriving with the queue between
  /// MaxQueueDepth and MaxQueueDepth + SlackQueueDepth are admitted
  /// SlackOnly (exact engines degrade deterministically). 0 disables the
  /// rung (legacy shed-at-MaxQueueDepth behavior).
  size_t SlackQueueDepth = 1024;
  /// Cached rung of the ladder: when both queue rungs are full, answer
  /// from the cache/store on the IO thread (no computation) and only
  /// shed on a total miss. false = shed as soon as the queues are full.
  bool CachedFallback = true;
  /// Connections beyond this are accepted and immediately closed.
  int MaxConnections = 1024;
  /// Close a connection with no traffic and no in-flight work after this
  /// many milliseconds; < 0 disables the deadline (schedule_server sets
  /// a 60 s default for real deployments).
  long IdleTimeoutMs = -1;
  /// Force-close connections still open this long after requestStop().
  long DrainTimeoutMs = 5000;
  /// Close a connection whose un-read responses exceed this many bytes
  /// (a pipelining client that never reads).
  size_t MaxWriteBufferBytes = 16u << 20;
  /// Engine for request lines without an "engine" field (mirrors the
  /// processJsonl parameter, so the two paths stay byte-identical).
  ServiceEngine DefaultEngine = ServiceEngine::Slack;
  /// Accept {"cmd":"sleep_ms"} (tests only; keeps a worker busy on cue).
  bool EnableTestCommands = false;
};

/// The epoll front end. One instance serves one SchedulingService; the
/// service outlives the server and is not drained by it (stopping the
/// server leaves the service usable).
class EpollServer {
public:
  explicit EpollServer(SchedulingService &Service,
                       ServerConfig Config = ServerConfig());
  ~EpollServer();
  EpollServer(const EpollServer &) = delete;
  EpollServer &operator=(const EpollServer &) = delete;

  /// Binds every shard's listener, creates the epoll instances, and
  /// spawns the workers. Returns false with a diagnostic on any syscall
  /// failure.
  bool start(std::string &Err);

  /// The bound port (the kernel's pick when Config.Port was 0; every
  /// shard listens on it).
  uint16_t port() const { return BoundPort; }

  /// Runs shard 0's IO loop on the calling thread (spawning one thread
  /// per additional shard) until requestStop() and the subsequent drain
  /// complete. Returns immediately if start() failed or was never called.
  void serve();

  /// Initiates shutdown. Async-signal-safe: an atomic store plus one
  /// eventfd write per shard, callable straight from a SIGTERM handler.
  void requestStop();

  /// True between a successful start() and the end of serve().
  bool running() const { return Running.load(std::memory_order_acquire); }

private:
  struct Conn;
  struct Job;
  struct Completion;

  /// One independent IO event loop: listener, epoll, wake eventfd, and
  /// all state of the connections it accepted.
  struct Shard {
    int Index = 0;
    int ListenFd = -1;
    int EpollFd = -1;
    int WakeFd = -1;
    std::unordered_map<int, std::unique_ptr<Conn>> Conns;
    uint64_t NextConnGen = 1;
    std::mutex CompletionMu;
    std::vector<Completion> Completions;
    bool Draining = false;
    int64_t DrainDeadlineMs = 0;
  };

  bool startShard(Shard &S, uint16_t BindPort, std::string &Err);
  void ioLoop(Shard &S);
  void acceptPending(Shard &S);
  void readConn(Shard &S, Conn &C);
  void writeConn(Conn &C);
  void onLine(Shard &S, Conn &C, std::string Line);
  void completeLocal(Shard &S, Conn &C, uint64_t Seq, std::string Bytes);
  void flushReady(Conn &C);
  void deliverCompletions(Shard &S);
  void maybeFinish(Conn &C);
  void updateEpoll(Shard &S, Conn &C);
  void closeConn(Shard &S, int Fd);
  void closeAllConns(Shard &S);
  void scanIdle(Shard &S, int64_t NowMs);
  void beginDrainIO(Shard &S);
  void stopWorkers();
  void workerLoop();

  SchedulingService &Service;
  ServerConfig Config;
  int NumWorkers = 0;
  uint16_t BoundPort = 0;

  std::vector<std::unique_ptr<Shard>> Shards;
  /// Shard eventfds, frozen after start(): requestStop() walks this from
  /// signal context, so it must never reallocate.
  std::vector<int> WakeFds;
  /// Connections across all shards, for the MaxConnections cap and the
  /// net_active_connections gauge.
  std::atomic<int> ActiveConns{0};

  std::mutex QueueMu;
  std::condition_variable QueueCV;
  std::deque<Job> Queue;
  bool WorkersStop = false;
  std::vector<std::thread> Workers;

  std::atomic<bool> StopRequested{false};
  std::atomic<bool> Running{false};
};

} // namespace lsms

#endif // LSMS_NET_EPOLLSERVER_H
