#include "net/EpollServer.h"

#include "service/Json.h"
#include "service/Protocol.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lsms;

namespace {

/// Longest request line the server will buffer before declaring the
/// connection broken (a client that never sends '\n').
constexpr size_t MaxLineBytes = 1u << 20;

int64_t steadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t steadyUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void wakeEventFd(int Fd) {
  const uint64_t One = 1;
  ssize_t Unused = ::write(Fd, &One, sizeof(One));
  (void)Unused;
}

} // namespace

/// One accepted connection; owned by exactly one shard's IO thread. Gen
/// guards worker completions against fd reuse after a close.
struct EpollServer::Conn {
  int Fd = -1;
  uint64_t Gen = 0;
  std::string In;   ///< bytes read, possibly ending mid-line
  std::string Out;  ///< ordered response bytes not yet written
  size_t OutOff = 0;
  uint64_t NextSeq = 0;      ///< next request index to assign
  uint64_t NextWriteSeq = 0; ///< next response index to flush into Out
  std::map<uint64_t, std::string> Done; ///< completed, waiting for order
  uint64_t InFlightJobs = 0;
  bool PeerClosed = false; ///< read side saw EOF
  bool WantWrite = false;  ///< EPOLLOUT currently armed
  bool Doomed = false;     ///< close at the next safe point
  int64_t LastActiveMs = 0;
};

struct EpollServer::Job {
  int ShardIdx = 0;
  int Fd = -1;
  uint64_t Gen = 0;
  uint64_t Seq = 0;
  long SleepMs = -1; ///< >= 0: test command, sleep instead of schedule
  AdmitMode Mode = AdmitMode::Full; ///< overload-ladder rung at admission
  std::string Line;
  int64_t EnqueuedUs = 0;
};

struct EpollServer::Completion {
  int Fd = -1;
  uint64_t Gen = 0;
  uint64_t Seq = 0;
  std::string Bytes;
};

EpollServer::EpollServer(SchedulingService &Service, ServerConfig Config)
    : Service(Service), Config(std::move(Config)) {}

EpollServer::~EpollServer() {
  requestStop();
  stopWorkers();
  for (const auto &S : Shards) {
    closeAllConns(*S);
    if (S->ListenFd >= 0)
      ::close(S->ListenFd);
    if (S->EpollFd >= 0)
      ::close(S->EpollFd);
    if (S->WakeFd >= 0)
      ::close(S->WakeFd);
  }
}

bool EpollServer::startShard(Shard &S, uint16_t BindPort, std::string &Err) {
  S.WakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (S.WakeFd < 0) {
    Err = std::string("eventfd: ") + std::strerror(errno);
    return false;
  }
  S.EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  if (S.EpollFd < 0) {
    Err = std::string("epoll_create1: ") + std::strerror(errno);
    return false;
  }
  S.ListenFd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (S.ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int One = 1;
  ::setsockopt(S.ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  // Sharding relies on the kernel's SO_REUSEPORT connection spreading;
  // single-shard servers skip it so the port stays exclusively theirs.
  if (static_cast<int>(Shards.size()) > 1 &&
      ::setsockopt(S.ListenFd, SOL_SOCKET, SO_REUSEPORT, &One,
                   sizeof(One)) < 0) {
    Err = std::string("setsockopt(SO_REUSEPORT): ") + std::strerror(errno);
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(BindPort);
  if (::inet_pton(AF_INET, Config.BindAddress.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad bind address \"" + Config.BindAddress + "\"";
    return false;
  }
  if (::bind(S.ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Err = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(S.ListenFd, Config.Backlog) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(S.ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) <
      0) {
    Err = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  if (BoundPort == 0)
    BoundPort = ntohs(Addr.sin_port);

  epoll_event E{};
  E.events = EPOLLIN;
  E.data.fd = S.ListenFd;
  if (::epoll_ctl(S.EpollFd, EPOLL_CTL_ADD, S.ListenFd, &E) < 0) {
    Err = std::string("epoll_ctl(listen): ") + std::strerror(errno);
    return false;
  }
  E.data.fd = S.WakeFd;
  if (::epoll_ctl(S.EpollFd, EPOLL_CTL_ADD, S.WakeFd, &E) < 0) {
    Err = std::string("epoll_ctl(wake): ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool EpollServer::start(std::string &Err) {
  const int NumShards = std::max(1, Config.IoShards);
  Shards.reserve(static_cast<size_t>(NumShards));
  for (int I = 0; I < NumShards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Index = I;
    Shards.push_back(std::move(S));
  }
  // Shard 0 discovers the port (the kernel's pick when Config.Port is 0);
  // the remaining shards bind the discovered port through SO_REUSEPORT.
  for (auto &S : Shards)
    if (!startShard(*S, S->Index == 0 ? Config.Port : BoundPort, Err))
      return false;
  WakeFds.reserve(Shards.size());
  for (const auto &S : Shards)
    WakeFds.push_back(S->WakeFd);

  NumWorkers = Config.Workers > 0 ? Config.Workers : Service.jobs();
  NumWorkers = std::max(1, NumWorkers);
  Workers.reserve(static_cast<size_t>(NumWorkers));
  for (int I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  Running.store(true, std::memory_order_release);
  return true;
}

void EpollServer::requestStop() {
  StopRequested.store(true, std::memory_order_release);
  for (const int Fd : WakeFds)
    if (Fd >= 0)
      wakeEventFd(Fd);
}

void EpollServer::serve() {
  if (Shards.empty() || Shards[0]->EpollFd < 0)
    return;
  {
    std::vector<std::thread> IoThreads;
    IoThreads.reserve(Shards.size() - 1);
    for (size_t I = 1; I < Shards.size(); ++I)
      IoThreads.emplace_back([this, I] { ioLoop(*Shards[I]); });
    ioLoop(*Shards[0]);
    for (std::thread &T : IoThreads)
      T.join();
  }
  stopWorkers();
  for (auto &S : Shards) {
    {
      std::lock_guard<std::mutex> Lock(S->CompletionMu);
      S->Completions.clear(); // their connections are gone
    }
    closeAllConns(*S);
  }
  Running.store(false, std::memory_order_release);
}

void EpollServer::ioLoop(Shard &S) {
  epoll_event Events[64];
  while (true) {
    if (StopRequested.load(std::memory_order_acquire) && !S.Draining)
      beginDrainIO(S);
    if (S.Draining) {
      if (S.Conns.empty())
        break;
      if (steadyMs() >= S.DrainDeadlineMs) {
        Service.metrics().inc("net_drain_forced",
                              static_cast<long>(S.Conns.size()));
        closeAllConns(S);
        break;
      }
    }

    int TimeoutMs = -1;
    if (S.Draining)
      TimeoutMs = static_cast<int>(std::clamp<int64_t>(
          S.DrainDeadlineMs - steadyMs(), 0, 100));
    else if (Config.IdleTimeoutMs > 0)
      TimeoutMs = 100;

    const int N = ::epoll_wait(S.EpollFd, Events, 64, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    for (int I = 0; I < N; ++I) {
      const epoll_event &E = Events[I];
      const int Fd = E.data.fd;
      if (Fd == S.WakeFd) {
        uint64_t Buf;
        while (::read(S.WakeFd, &Buf, sizeof(Buf)) > 0) {
        }
        deliverCompletions(S);
        continue;
      }
      if (Fd == S.ListenFd) {
        acceptPending(S);
        continue;
      }
      const auto It = S.Conns.find(Fd);
      if (It == S.Conns.end())
        continue;
      Conn &C = *It->second;
      if (E.events & EPOLLERR) {
        closeConn(S, Fd);
        continue;
      }
      if (E.events & EPOLLIN)
        readConn(S, C);
      if (!C.Doomed && (E.events & EPOLLOUT)) {
        writeConn(C);
        updateEpoll(S, C);
        maybeFinish(C);
      }
      if (!C.Doomed && (E.events & EPOLLHUP))
        C.Doomed = true; // both directions gone; responses undeliverable
      if (C.Doomed)
        closeConn(S, Fd);
    }
    if (!S.Draining && Config.IdleTimeoutMs > 0)
      scanIdle(S, steadyMs());
  }
}

void EpollServer::acceptPending(Shard &S) {
  while (true) {
    const int Fd =
        ::accept4(S.ListenFd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // EAGAIN or a transient accept failure; epoll re-arms
    }
    if (S.Draining ||
        ActiveConns.load(std::memory_order_relaxed) >= Config.MaxConnections) {
      ::close(Fd);
      Service.metrics().inc("net_rejected");
      continue;
    }
    const int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    C->Gen = S.NextConnGen++;
    C->LastActiveMs = steadyMs();
    epoll_event E{};
    E.events = EPOLLIN;
    E.data.fd = Fd;
    if (::epoll_ctl(S.EpollFd, EPOLL_CTL_ADD, Fd, &E) < 0) {
      ::close(Fd);
      continue;
    }
    S.Conns.emplace(Fd, std::move(C));
    Service.metrics().inc("net_accepted");
    Service.metrics().set(
        "net_active_connections",
        ActiveConns.fetch_add(1, std::memory_order_relaxed) + 1);
  }
}

void EpollServer::readConn(Shard &S, Conn &C) {
  char Buf[65536];
  while (true) {
    const ssize_t R = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (R > 0) {
      C.In.append(Buf, static_cast<size_t>(R));
      C.LastActiveMs = steadyMs();
      if (static_cast<size_t>(R) < sizeof(Buf))
        break; // short read: the socket is drained
      continue;
    }
    if (R == 0) {
      C.PeerClosed = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    C.Doomed = true;
    return;
  }

  size_t Start = 0;
  for (size_t NL; (NL = C.In.find('\n', Start)) != std::string::npos;
       Start = NL + 1) {
    std::string Line = C.In.substr(Start, NL - Start);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    onLine(S, C, std::move(Line));
  }
  C.In.erase(0, Start);
  if (C.In.size() > MaxLineBytes) {
    Service.metrics().inc("net_overlong_lines");
    C.Doomed = true;
    return;
  }
  writeConn(C);
  updateEpoll(S, C);
  maybeFinish(C);
}

void EpollServer::onLine(Shard &S, Conn &C, std::string Line) {
  const size_t FirstCh = Line.find_first_not_of(" \t\r");
  if (FirstCh == std::string::npos || Line[FirstCh] == '#')
    return; // same skip rule as processJsonl: no index, no response
  const uint64_t Seq = C.NextSeq++;
  ++C.InFlightJobs;
  Service.metrics().inc("net_requests");

  long SleepMs = -1;
  if (Line.find("\"cmd\"") != std::string::npos) {
    std::map<std::string, JsonScalar> Obj;
    std::string Err;
    if (parseFlatJsonObject(Line, Obj, Err)) {
      const auto CmdIt = Obj.find("cmd");
      if (CmdIt != Obj.end() && CmdIt->second.K == JsonScalar::String) {
        const std::string &Cmd = CmdIt->second.S;
        if (Cmd == "metrics") {
          Service.metrics().inc("net_control");
          completeLocal(S, C, Seq, Service.metricsJson(false) + "\n");
          return;
        }
        if (Cmd == "sleep_ms" && Config.EnableTestCommands) {
          Service.metrics().inc("net_control");
          const auto MsIt = Obj.find("ms");
          SleepMs = (MsIt != Obj.end() && MsIt->second.K == JsonScalar::Number)
                        ? static_cast<long>(MsIt->second.N)
                        : 0;
          Line.clear(); // the worker only needs SleepMs
        } else {
          completeLocal(S, C, Seq,
                        renderControlErrorLine(
                            Seq, ServiceErrorCode::UnknownCommand,
                            "unknown cmd \"" + Cmd + "\"") +
                            "\n");
          return;
        }
      }
      // No top-level "cmd": an ordinary request whose payload happens to
      // contain the substring; dispatch it like any other line.
    }
    // Unparseable lines also fall through: handleLine() renders the same
    // parse error the JSONL pipe would.
  }

  // Overload ladder, rung by rung: Full while the queue is healthy,
  // SlackOnly in the overflow band, then the cached rung inline on this
  // IO thread, and only then a shed.
  int Admitted = -1; // 0 = Full, 1 = SlackOnly
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    const size_t Depth = Queue.size();
    if (Depth < Config.MaxQueueDepth)
      Admitted = 0;
    else if (Depth < Config.MaxQueueDepth + Config.SlackQueueDepth)
      Admitted = 1;
    if (Admitted >= 0) {
      Job J;
      J.ShardIdx = S.Index;
      J.Fd = C.Fd;
      J.Gen = C.Gen;
      J.Seq = Seq;
      J.SleepMs = SleepMs;
      J.Mode = Admitted == 1 ? AdmitMode::SlackOnly : AdmitMode::Full;
      J.Line = std::move(Line);
      J.EnqueuedUs = steadyUs();
      Queue.push_back(std::move(J));
      Service.metrics().set("net_queue_depth",
                            static_cast<long>(Queue.size()));
    }
  }
  if (Admitted >= 0) {
    if (Admitted == 1)
      Service.metrics().inc("net_slack_admits");
    QueueCV.notify_one();
    return;
  }
  // Both queue rungs are full. Control sleeps are not schedulable
  // requests, so they skip the cached rung and shed directly.
  if (Config.CachedFallback && SleepMs < 0) {
    ServiceResponse R;
    if (Service.handleLineCachedOnly(Line, static_cast<int>(Seq),
                                     Config.DefaultEngine, R)) {
      Service.metrics().inc("net_cached_answers");
      completeLocal(S, C, Seq, R.toJsonl() + "\n");
      return;
    }
  }
  Service.metrics().inc("net_shed");
  completeLocal(S, C, Seq, renderShedLine(Seq, requestIdForShed(Line)) + "\n");
}

void EpollServer::completeLocal(Shard &S, Conn &C, uint64_t Seq,
                                std::string Bytes) {
  --C.InFlightJobs;
  C.Done[Seq] = std::move(Bytes);
  flushReady(C);
  updateEpoll(S, C);
}

void EpollServer::flushReady(Conn &C) {
  for (auto It = C.Done.find(C.NextWriteSeq); It != C.Done.end();
       It = C.Done.find(C.NextWriteSeq)) {
    C.Out += It->second;
    C.Done.erase(It);
    ++C.NextWriteSeq;
    Service.metrics().inc("net_responses");
  }
  if (C.Out.size() - C.OutOff > Config.MaxWriteBufferBytes) {
    Service.metrics().inc("net_write_overflow");
    C.Doomed = true;
  }
}

void EpollServer::deliverCompletions(Shard &S) {
  std::vector<Completion> Batch;
  {
    std::lock_guard<std::mutex> Lock(S.CompletionMu);
    Batch.swap(S.Completions);
  }
  for (Completion &Done : Batch) {
    const auto It = S.Conns.find(Done.Fd);
    if (It == S.Conns.end() || It->second->Gen != Done.Gen)
      continue; // connection closed (or fd reused) while the job ran
    Conn &C = *It->second;
    --C.InFlightJobs;
    C.Done[Done.Seq] = std::move(Done.Bytes);
    flushReady(C);
    writeConn(C);
    updateEpoll(S, C);
    maybeFinish(C);
    if (C.Doomed)
      closeConn(S, Done.Fd);
  }
}

void EpollServer::maybeFinish(Conn &C) {
  if (C.PeerClosed && C.InFlightJobs == 0 && C.Done.empty() &&
      C.OutOff == C.Out.size())
    C.Doomed = true;
}

void EpollServer::writeConn(Conn &C) {
  while (C.OutOff < C.Out.size()) {
    const ssize_t W = ::send(C.Fd, C.Out.data() + C.OutOff,
                             C.Out.size() - C.OutOff, MSG_NOSIGNAL);
    if (W > 0) {
      C.OutOff += static_cast<size_t>(W);
      C.LastActiveMs = steadyMs();
      continue;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    C.Doomed = true;
    return;
  }
  if (C.OutOff == C.Out.size()) {
    C.Out.clear();
    C.OutOff = 0;
  } else if (C.OutOff > MaxLineBytes) {
    C.Out.erase(0, C.OutOff);
    C.OutOff = 0;
  }
}

void EpollServer::updateEpoll(Shard &S, Conn &C) {
  const bool Want = C.OutOff < C.Out.size();
  if (Want == C.WantWrite)
    return;
  C.WantWrite = Want;
  epoll_event E{};
  E.events = EPOLLIN | (Want ? EPOLLOUT : 0u);
  E.data.fd = C.Fd;
  ::epoll_ctl(S.EpollFd, EPOLL_CTL_MOD, C.Fd, &E);
}

void EpollServer::closeConn(Shard &S, int Fd) {
  const auto It = S.Conns.find(Fd);
  if (It == S.Conns.end())
    return;
  ::epoll_ctl(S.EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  ::close(Fd);
  S.Conns.erase(It);
  Service.metrics().set(
      "net_active_connections",
      ActiveConns.fetch_sub(1, std::memory_order_relaxed) - 1);
}

void EpollServer::closeAllConns(Shard &S) {
  while (!S.Conns.empty())
    closeConn(S, S.Conns.begin()->first);
}

void EpollServer::scanIdle(Shard &S, int64_t NowMs) {
  std::vector<int> Stale;
  for (const auto &[Fd, C] : S.Conns)
    if (C->InFlightJobs == 0 && C->OutOff == C->Out.size() &&
        NowMs - C->LastActiveMs > Config.IdleTimeoutMs)
      Stale.push_back(Fd);
  for (const int Fd : Stale) {
    Service.metrics().inc("net_idle_closed");
    closeConn(S, Fd);
  }
}

void EpollServer::beginDrainIO(Shard &S) {
  S.Draining = true;
  S.DrainDeadlineMs = steadyMs() + std::max(0L, Config.DrainTimeoutMs);
  if (S.ListenFd >= 0) {
    ::epoll_ctl(S.EpollFd, EPOLL_CTL_DEL, S.ListenFd, nullptr);
    ::close(S.ListenFd);
    S.ListenFd = -1;
  }
}

void EpollServer::stopWorkers() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    WorkersStop = true;
  }
  QueueCV.notify_all();
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  Workers.clear();
}

void EpollServer::workerLoop() {
  while (true) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCV.wait(Lock, [this] { return WorkersStop || !Queue.empty(); });
      if (Queue.empty())
        return; // WorkersStop and nothing admitted remains
      J = std::move(Queue.front());
      Queue.pop_front();
      Service.metrics().set("net_queue_depth",
                            static_cast<long>(Queue.size()));
    }
    std::string Bytes;
    if (J.SleepMs >= 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(J.SleepMs));
      Bytes = renderSleepLine(J.Seq, J.SleepMs) + "\n";
    } else {
      const ServiceResponse R = Service.handleLine(
          J.Line, static_cast<int>(J.Seq), Config.DefaultEngine, J.Mode);
      Bytes = R.toJsonl();
      Bytes += '\n';
    }
    Service.metrics().observe("net_request_us", steadyUs() - J.EnqueuedUs);
    Shard &S = *Shards[static_cast<size_t>(J.ShardIdx)];
    {
      std::lock_guard<std::mutex> Lock(S.CompletionMu);
      Completion Done;
      Done.Fd = J.Fd;
      Done.Gen = J.Gen;
      Done.Seq = J.Seq;
      Done.Bytes = std::move(Bytes);
      S.Completions.push_back(std::move(Done));
    }
    wakeEventFd(S.WakeFd);
  }
}
