#include "net/EpollServer.h"

#include "service/Json.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lsms;

namespace {

/// Longest request line the server will buffer before declaring the
/// connection broken (a client that never sends '\n').
constexpr size_t MaxLineBytes = 1u << 20;

int64_t steadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t steadyUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string shedLine(uint64_t Seq) {
  return "{\"index\":" + std::to_string(Seq) +
         ",\"name\":\"shed\",\"status\":\"shed\",\"error\":\"server "
         "overloaded: admission queue full\"}\n";
}

std::string controlError(uint64_t Seq, const std::string &Msg) {
  return "{\"index\":" + std::to_string(Seq) +
         ",\"name\":\"control\",\"status\":\"error\",\"error\":" +
         jsonQuote(Msg) + "}\n";
}

void wakeEventFd(int Fd) {
  const uint64_t One = 1;
  ssize_t Unused = ::write(Fd, &One, sizeof(One));
  (void)Unused;
}

} // namespace

/// One accepted connection; owned by the IO thread. Gen guards worker
/// completions against fd reuse after a close.
struct EpollServer::Conn {
  int Fd = -1;
  uint64_t Gen = 0;
  std::string In;   ///< bytes read, possibly ending mid-line
  std::string Out;  ///< ordered response bytes not yet written
  size_t OutOff = 0;
  uint64_t NextSeq = 0;      ///< next request index to assign
  uint64_t NextWriteSeq = 0; ///< next response index to flush into Out
  std::map<uint64_t, std::string> Done; ///< completed, waiting for order
  uint64_t InFlightJobs = 0;
  bool PeerClosed = false; ///< read side saw EOF
  bool WantWrite = false;  ///< EPOLLOUT currently armed
  bool Doomed = false;     ///< close at the next safe point
  int64_t LastActiveMs = 0;
};

struct EpollServer::Job {
  int Fd = -1;
  uint64_t Gen = 0;
  uint64_t Seq = 0;
  long SleepMs = -1; ///< >= 0: test command, sleep instead of schedule
  std::string Line;
  int64_t EnqueuedUs = 0;
};

struct EpollServer::Completion {
  int Fd = -1;
  uint64_t Gen = 0;
  uint64_t Seq = 0;
  std::string Bytes;
};

EpollServer::EpollServer(SchedulingService &Service, ServerConfig Config)
    : Service(Service), Config(std::move(Config)) {}

EpollServer::~EpollServer() {
  requestStop();
  stopWorkers();
  closeAllConns();
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
  if (WakeFd >= 0)
    ::close(WakeFd);
}

bool EpollServer::start(std::string &Err) {
  WakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (WakeFd < 0) {
    Err = std::string("eventfd: ") + std::strerror(errno);
    return false;
  }
  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  if (EpollFd < 0) {
    Err = std::string("epoll_create1: ") + std::strerror(errno);
    return false;
  }
  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.BindAddress.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad bind address \"" + Config.BindAddress + "\"";
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Err = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(ListenFd, Config.Backlog) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) <
      0) {
    Err = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  BoundPort = ntohs(Addr.sin_port);

  epoll_event E{};
  E.events = EPOLLIN;
  E.data.fd = ListenFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &E) < 0) {
    Err = std::string("epoll_ctl(listen): ") + std::strerror(errno);
    return false;
  }
  E.data.fd = WakeFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &E) < 0) {
    Err = std::string("epoll_ctl(wake): ") + std::strerror(errno);
    return false;
  }

  NumWorkers = Config.Workers > 0 ? Config.Workers : Service.jobs();
  NumWorkers = std::max(1, NumWorkers);
  Workers.reserve(static_cast<size_t>(NumWorkers));
  for (int I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  Running.store(true, std::memory_order_release);
  return true;
}

void EpollServer::requestStop() {
  StopRequested.store(true, std::memory_order_release);
  if (WakeFd >= 0)
    wakeEventFd(WakeFd);
}

void EpollServer::serve() {
  if (EpollFd < 0)
    return;
  epoll_event Events[64];
  while (true) {
    if (StopRequested.load(std::memory_order_acquire) && !Draining)
      beginDrainIO();
    if (Draining) {
      if (Conns.empty())
        break;
      if (steadyMs() >= DrainDeadlineMs) {
        Service.metrics().inc("net_drain_forced",
                              static_cast<long>(Conns.size()));
        closeAllConns();
        break;
      }
    }

    int TimeoutMs = -1;
    if (Draining)
      TimeoutMs = static_cast<int>(std::clamp<int64_t>(
          DrainDeadlineMs - steadyMs(), 0, 100));
    else if (Config.IdleTimeoutMs > 0)
      TimeoutMs = 100;

    const int N = ::epoll_wait(EpollFd, Events, 64, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    for (int I = 0; I < N; ++I) {
      const epoll_event &E = Events[I];
      const int Fd = E.data.fd;
      if (Fd == WakeFd) {
        uint64_t Buf;
        while (::read(WakeFd, &Buf, sizeof(Buf)) > 0) {
        }
        deliverCompletions();
        continue;
      }
      if (Fd == ListenFd) {
        acceptPending();
        continue;
      }
      const auto It = Conns.find(Fd);
      if (It == Conns.end())
        continue;
      Conn &C = *It->second;
      if (E.events & EPOLLERR) {
        closeConn(Fd);
        continue;
      }
      if (E.events & EPOLLIN)
        readConn(C);
      if (!C.Doomed && (E.events & EPOLLOUT)) {
        writeConn(C);
        updateEpoll(C);
        maybeFinish(C);
      }
      if (!C.Doomed && (E.events & EPOLLHUP))
        C.Doomed = true; // both directions gone; responses undeliverable
      if (C.Doomed)
        closeConn(Fd);
    }
    if (!Draining && Config.IdleTimeoutMs > 0)
      scanIdle(steadyMs());
  }
  stopWorkers();
  {
    std::lock_guard<std::mutex> Lock(CompletionMu);
    Completions.clear(); // their connections are gone
  }
  closeAllConns();
  Running.store(false, std::memory_order_release);
}

void EpollServer::acceptPending() {
  while (true) {
    const int Fd =
        ::accept4(ListenFd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // EAGAIN or a transient accept failure; epoll re-arms
    }
    if (Draining ||
        static_cast<int>(Conns.size()) >= Config.MaxConnections) {
      ::close(Fd);
      Service.metrics().inc("net_rejected");
      continue;
    }
    const int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    C->Gen = NextConnGen++;
    C->LastActiveMs = steadyMs();
    epoll_event E{};
    E.events = EPOLLIN;
    E.data.fd = Fd;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &E) < 0) {
      ::close(Fd);
      continue;
    }
    Conns.emplace(Fd, std::move(C));
    Service.metrics().inc("net_accepted");
    Service.metrics().set("net_active_connections",
                          static_cast<long>(Conns.size()));
  }
}

void EpollServer::readConn(Conn &C) {
  char Buf[65536];
  while (true) {
    const ssize_t R = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (R > 0) {
      C.In.append(Buf, static_cast<size_t>(R));
      C.LastActiveMs = steadyMs();
      if (static_cast<size_t>(R) < sizeof(Buf))
        break; // short read: the socket is drained
      continue;
    }
    if (R == 0) {
      C.PeerClosed = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    C.Doomed = true;
    return;
  }

  size_t Start = 0;
  for (size_t NL; (NL = C.In.find('\n', Start)) != std::string::npos;
       Start = NL + 1) {
    std::string Line = C.In.substr(Start, NL - Start);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    onLine(C, std::move(Line));
  }
  C.In.erase(0, Start);
  if (C.In.size() > MaxLineBytes) {
    Service.metrics().inc("net_overlong_lines");
    C.Doomed = true;
    return;
  }
  writeConn(C);
  updateEpoll(C);
  maybeFinish(C);
}

void EpollServer::onLine(Conn &C, std::string Line) {
  const size_t FirstCh = Line.find_first_not_of(" \t\r");
  if (FirstCh == std::string::npos || Line[FirstCh] == '#')
    return; // same skip rule as processJsonl: no index, no response
  const uint64_t Seq = C.NextSeq++;
  ++C.InFlightJobs;
  Service.metrics().inc("net_requests");

  long SleepMs = -1;
  if (Line.find("\"cmd\"") != std::string::npos) {
    std::map<std::string, JsonScalar> Obj;
    std::string Err;
    if (parseFlatJsonObject(Line, Obj, Err)) {
      const auto CmdIt = Obj.find("cmd");
      if (CmdIt != Obj.end() && CmdIt->second.K == JsonScalar::String) {
        const std::string &Cmd = CmdIt->second.S;
        if (Cmd == "metrics") {
          Service.metrics().inc("net_control");
          completeLocal(C, Seq, Service.metricsJson(false) + "\n");
          return;
        }
        if (Cmd == "sleep_ms" && Config.EnableTestCommands) {
          Service.metrics().inc("net_control");
          const auto MsIt = Obj.find("ms");
          SleepMs = (MsIt != Obj.end() && MsIt->second.K == JsonScalar::Number)
                        ? static_cast<long>(MsIt->second.N)
                        : 0;
          Line.clear(); // the worker only needs SleepMs
        } else {
          completeLocal(C, Seq,
                        controlError(Seq, "unknown cmd \"" + Cmd + "\""));
          return;
        }
      }
      // No top-level "cmd": an ordinary request whose payload happens to
      // contain the substring; dispatch it like any other line.
    }
    // Unparseable lines also fall through: handleLine() renders the same
    // parse error the JSONL pipe would.
  }

  bool Shed = false;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Queue.size() >= Config.MaxQueueDepth) {
      Shed = true;
    } else {
      Job J;
      J.Fd = C.Fd;
      J.Gen = C.Gen;
      J.Seq = Seq;
      J.SleepMs = SleepMs;
      J.Line = std::move(Line);
      J.EnqueuedUs = steadyUs();
      Queue.push_back(std::move(J));
      Service.metrics().set("net_queue_depth",
                            static_cast<long>(Queue.size()));
    }
  }
  if (Shed) {
    Service.metrics().inc("net_shed");
    completeLocal(C, Seq, shedLine(Seq));
  } else {
    QueueCV.notify_one();
  }
}

void EpollServer::completeLocal(Conn &C, uint64_t Seq, std::string Bytes) {
  --C.InFlightJobs;
  C.Done[Seq] = std::move(Bytes);
  flushReady(C);
  updateEpoll(C);
}

void EpollServer::flushReady(Conn &C) {
  for (auto It = C.Done.find(C.NextWriteSeq); It != C.Done.end();
       It = C.Done.find(C.NextWriteSeq)) {
    C.Out += It->second;
    C.Done.erase(It);
    ++C.NextWriteSeq;
    Service.metrics().inc("net_responses");
  }
  if (C.Out.size() - C.OutOff > Config.MaxWriteBufferBytes) {
    Service.metrics().inc("net_write_overflow");
    C.Doomed = true;
  }
}

void EpollServer::deliverCompletions() {
  std::vector<Completion> Batch;
  {
    std::lock_guard<std::mutex> Lock(CompletionMu);
    Batch.swap(Completions);
  }
  for (Completion &Done : Batch) {
    const auto It = Conns.find(Done.Fd);
    if (It == Conns.end() || It->second->Gen != Done.Gen)
      continue; // connection closed (or fd reused) while the job ran
    Conn &C = *It->second;
    --C.InFlightJobs;
    C.Done[Done.Seq] = std::move(Done.Bytes);
    flushReady(C);
    writeConn(C);
    updateEpoll(C);
    maybeFinish(C);
    if (C.Doomed)
      closeConn(Done.Fd);
  }
}

void EpollServer::maybeFinish(Conn &C) {
  if (C.PeerClosed && C.InFlightJobs == 0 && C.Done.empty() &&
      C.OutOff == C.Out.size())
    C.Doomed = true;
}

void EpollServer::writeConn(Conn &C) {
  while (C.OutOff < C.Out.size()) {
    const ssize_t W = ::send(C.Fd, C.Out.data() + C.OutOff,
                             C.Out.size() - C.OutOff, MSG_NOSIGNAL);
    if (W > 0) {
      C.OutOff += static_cast<size_t>(W);
      C.LastActiveMs = steadyMs();
      continue;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    C.Doomed = true;
    return;
  }
  if (C.OutOff == C.Out.size()) {
    C.Out.clear();
    C.OutOff = 0;
  } else if (C.OutOff > MaxLineBytes) {
    C.Out.erase(0, C.OutOff);
    C.OutOff = 0;
  }
}

void EpollServer::updateEpoll(Conn &C) {
  const bool Want = C.OutOff < C.Out.size();
  if (Want == C.WantWrite)
    return;
  C.WantWrite = Want;
  epoll_event E{};
  E.events = EPOLLIN | (Want ? EPOLLOUT : 0u);
  E.data.fd = C.Fd;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &E);
}

void EpollServer::closeConn(int Fd) {
  const auto It = Conns.find(Fd);
  if (It == Conns.end())
    return;
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  ::close(Fd);
  Conns.erase(It);
  Service.metrics().set("net_active_connections",
                        static_cast<long>(Conns.size()));
}

void EpollServer::closeAllConns() {
  while (!Conns.empty())
    closeConn(Conns.begin()->first);
}

void EpollServer::scanIdle(int64_t NowMs) {
  std::vector<int> Stale;
  for (const auto &[Fd, C] : Conns)
    if (C->InFlightJobs == 0 && C->OutOff == C->Out.size() &&
        NowMs - C->LastActiveMs > Config.IdleTimeoutMs)
      Stale.push_back(Fd);
  for (const int Fd : Stale) {
    Service.metrics().inc("net_idle_closed");
    closeConn(Fd);
  }
}

void EpollServer::beginDrainIO() {
  Draining = true;
  DrainDeadlineMs = steadyMs() + std::max(0L, Config.DrainTimeoutMs);
  if (ListenFd >= 0) {
    ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, ListenFd, nullptr);
    ::close(ListenFd);
    ListenFd = -1;
  }
}

void EpollServer::stopWorkers() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    WorkersStop = true;
  }
  QueueCV.notify_all();
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  Workers.clear();
}

void EpollServer::workerLoop() {
  while (true) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCV.wait(Lock, [this] { return WorkersStop || !Queue.empty(); });
      if (Queue.empty())
        return; // WorkersStop and nothing admitted remains
      J = std::move(Queue.front());
      Queue.pop_front();
      Service.metrics().set("net_queue_depth",
                            static_cast<long>(Queue.size()));
    }
    std::string Bytes;
    if (J.SleepMs >= 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(J.SleepMs));
      Bytes = "{\"index\":" + std::to_string(J.Seq) +
              ",\"name\":\"control\",\"status\":\"ok\",\"slept_ms\":" +
              std::to_string(J.SleepMs) + "}\n";
    } else {
      const ServiceResponse R =
          Service.handleLine(J.Line, static_cast<int>(J.Seq),
                             Config.DefaultEngine);
      Bytes = R.toJsonl();
      Bytes += '\n';
    }
    Service.metrics().observe("net_request_us", steadyUs() - J.EnqueuedUs);
    {
      std::lock_guard<std::mutex> Lock(CompletionMu);
      Completion Done;
      Done.Fd = J.Fd;
      Done.Gen = J.Gen;
      Done.Seq = J.Seq;
      Done.Bytes = std::move(Bytes);
      Completions.push_back(std::move(Done));
    }
    wakeEventFd(WakeFd);
  }
}
