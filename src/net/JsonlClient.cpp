#include "net/JsonlClient.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lsms;

JsonlClient::JsonlClient(JsonlClient &&Other) noexcept
    : Fd(Other.Fd), Buf(std::move(Other.Buf)), Off(Other.Off) {
  Other.Fd = -1;
  Other.Off = 0;
}

JsonlClient &JsonlClient::operator=(JsonlClient &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = std::exchange(Other.Fd, -1);
    Buf = std::move(Other.Buf);
    Off = std::exchange(Other.Off, 0);
  }
  return *this;
}

bool JsonlClient::connect(const std::string &Host, uint16_t Port,
                          std::string &Err) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad address \"" + Host + "\"";
    close();
    return false;
  }
  while (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
         0) {
    if (errno == EINTR)
      continue;
    Err = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  const int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return true;
}

bool JsonlClient::sendLine(const std::string &Line, std::string &Err) {
  return sendRaw(Line + "\n", Err);
}

bool JsonlClient::sendRaw(const std::string &Bytes, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    const ssize_t W = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                             MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

bool JsonlClient::recvLine(std::string &Line, std::string &Err) {
  Err.clear();
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  while (true) {
    const size_t NL = Buf.find('\n', Off);
    if (NL != std::string::npos) {
      Line.assign(Buf, Off, NL - Off);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      Off = NL + 1;
      if (Off == Buf.size()) {
        Buf.clear();
        Off = 0;
      } else if (Off > (1u << 20)) {
        Buf.erase(0, Off);
        Off = 0;
      }
      return true;
    }
    char Chunk[65536];
    const ssize_t R = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (R > 0) {
      Buf.append(Chunk, static_cast<size_t>(R));
      continue;
    }
    if (R == 0) {
      if (Off < Buf.size())
        Err = "connection closed mid-line";
      return false; // clean EOF leaves Err empty
    }
    if (errno == EINTR)
      continue;
    Err = std::string("recv: ") + std::strerror(errno);
    return false;
  }
}

void JsonlClient::shutdownWrite() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

void JsonlClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
  Off = 0;
}
