//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned JSONL wire protocol shared by every emitter and consumer
/// of scheduler traffic: the service pipe (processJsonl), the socket front
/// end (net/EpollServer), the load tools (bench/NetBenchCommon), and the
/// tests. Exactly one place renders response lines and exactly one place
/// names the enums that appear on the wire, so the shapes cannot drift.
///
/// Version policy: every response line carries `"proto":1`. Additive
/// fields (new keys, new enum spellings) keep the version; renaming or
/// removing a field, changing a field's type, or changing the meaning of
/// an existing spelling bumps it. Clients must ignore keys they do not
/// know.
///
/// v1 response shapes (one line each, `\n`-terminated on the wire):
///
///   ok      {"index":N,"proto":1[,"id":S],"name":S,"engine":E,
///            "status":"ok","tier":T,"degraded":B[,"exact_status":S],
///            "ii":N,"mii":N,"res_mii":N,"rec_mii":N,"length":N,
///            "maxlive":N[,"maxlive_proven":B,"maxlive_cert":S]
///            [,"times":[N,...]]}
///   error   {"index":N,"proto":1[,"id":S],"name":S,"engine":E,
///            "status":"error","error_code":C,"error":S}
///   shed    {"index":N,"proto":1[,"id":S],"name":"shed","status":"shed",
///            "tier":"shed","error_code":"overloaded","error":S}
///   control {"index":N,"proto":1,"name":"control","status":"ok"|"error",
///            ...}
///
/// `"tier"` is the overload-degradation rung that produced the answer:
/// "exact" (the requested exact engine answered, undegraded), "slack"
/// (the slack heuristic answered — requested, or an exact request
/// degraded), "cached" (answered from the cache/store under overload
/// without running any engine), "shed" (no answer).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SERVICE_PROTOCOL_H
#define LSMS_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>

namespace lsms {

struct ServiceResponse;

/// The wire protocol version stamped into every response line.
constexpr int ProtocolVersion = 1;

/// The scheduler a request selects.
enum class ServiceEngine : uint8_t { Slack, BranchAndBound, Sat, Portfolio };

/// Returns "slack", "bnb", "sat", or "portfolio" (the wire spellings).
const char *serviceEngineName(ServiceEngine Engine);

/// Parses a wire spelling; returns false on an unknown name.
bool parseServiceEngine(const std::string &Name, ServiceEngine &Engine);

/// The degradation rung that produced (or failed to produce) an answer.
enum class ServiceTier : uint8_t { Exact, Slack, Cached, Shed };

/// Returns "exact", "slack", "cached", or "shed" (the wire spellings).
const char *serviceTierName(ServiceTier Tier);

/// Machine-readable failure taxonomy carried as "error_code" alongside the
/// human-oriented "error" string. Append-only: new codes may be added,
/// existing spellings never change within a protocol version.
enum class ServiceErrorCode : uint8_t {
  None,          ///< the request succeeded (no "error_code" emitted)
  BadRequest,    ///< malformed JSON / unknown field / bad payload combo
  UnknownKernel, ///< named kernel not in the suite
  CompileError,  ///< DSL source failed to compile
  NoSchedule,    ///< no engine found a schedule within the II cap
  MaxIIExceeded, ///< best schedule violates the request's max_ii
  Internal,      ///< server-side invariant failure (validation, remap)
  Overloaded,    ///< shed: every degradation tier was exhausted
  UnknownCommand ///< control line with an unrecognized "cmd"
};

/// Returns the wire spelling ("bad_request", "unknown_kernel", ...).
const char *serviceErrorCodeName(ServiceErrorCode Code);

/// Renders one response as a single v1 JSONL line (no trailing newline).
/// This is THE response serializer: the pipe, the socket workers, and the
/// cached-tier fast path all call it (via ServiceResponse::toJsonl), so
/// every transport emits byte-identical lines for identical answers.
std::string renderResponseLine(const ServiceResponse &Resp);

/// Renders the server's shed line (the 503 of this protocol): emitted by
/// the socket front end when a request exhausts every degradation tier.
/// \p Id is the request's "id" field when it was parseable ("" otherwise),
/// echoed back so pipelined clients can correlate the refusal.
std::string renderShedLine(uint64_t Index, const std::string &Id);

/// Renders a control-channel error line (e.g. an unknown "cmd").
std::string renderControlErrorLine(uint64_t Index, ServiceErrorCode Code,
                                   const std::string &Message);

/// Renders the {"cmd":"sleep_ms"} acknowledgement (test control channel).
std::string renderSleepLine(uint64_t Index, long SleptMs);

/// Builds a minimal scheduling request line from inline DSL source — the
/// shape the load tools send.
std::string renderRequestLine(const std::string &Source,
                              const std::string &Engine);

/// Extracts the "id" field from a request line for shed echoing; returns
/// "" when the line is unparseable or has no string "id".
std::string requestIdForShed(const std::string &Line);

/// Cheap substring classification of one response line, for consumers
/// that count outcomes without parsing full JSON (load generators, smoke
/// scripts). Exactly one of Ok/Error/Shed is true for well-formed lines.
struct WireResponseView {
  bool Ok = false;
  bool Error = false;
  bool Shed = false;
  bool HasTier = false;
  ServiceTier Tier = ServiceTier::Slack; ///< valid only when HasTier
};
WireResponseView classifyResponseLine(const std::string &Line);

} // namespace lsms

#endif // LSMS_SERVICE_PROTOCOL_H
