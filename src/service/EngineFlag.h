//===----------------------------------------------------------------------===//
///
/// \file
/// The one --engine flag grammar shared by every CLI tool (exact_gap,
/// perf_report, scheduler_comparison, schedule_service, schedule_server),
/// so the spellings, the "both" sweep selector, and the exact-budget
/// knobs cannot drift between tools:
///
///   --engine bnb|sat|portfolio        an exact engine (every tool)
///   --engine slack                    the heuristic (service tools only)
///   --engine both                     every exact engine (sweep tools)
///   --node-budget=N                   ExactOptions::NodeBudget
///   --sat-conflict-budget=N           ExactOptions::SatConflictBudget
///   --maxlive-node-budget=N           ExactOptions::MaxLiveNodeBudget
///   --maxlive-conflict-budget=N       ExactOptions::MaxLiveConflictBudget
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SERVICE_ENGINEFLAG_H
#define LSMS_SERVICE_ENGINEFLAG_H

#include "exact/ExactEngine.h"
#include "service/Protocol.h"

#include <cstdlib>
#include <string>

namespace lsms {

/// The result of parsing one --engine value. Exactly one interpretation
/// holds: All (the "both" sweep), or a single engine readable through
/// whichever of the two enum views the tool consumes (for the exact
/// spellings the views agree; "slack" is service-only and leaves Exact at
/// its default).
struct EngineSelection {
  bool All = false;
  ServiceEngine Service = ServiceEngine::Slack;
  ExactEngineKind Exact = ExactEngineKind::BranchAndBound;
};

/// The choices string for usage text, matching what parseEngineSelection
/// accepts with the same permission flags.
inline const char *engineFlagChoices(bool AllowSlack, bool AllowAll) {
  if (AllowSlack && AllowAll)
    return "slack|bnb|sat|portfolio|both";
  if (AllowSlack)
    return "slack|bnb|sat|portfolio";
  if (AllowAll)
    return "bnb|sat|portfolio|both";
  return "bnb|sat|portfolio";
}

/// Parses an --engine value. \p AllowSlack admits "slack" (tools with a
/// heuristic path); \p AllowAll admits "both" (sweep tools that run every
/// exact engine). On failure returns false with a caller-printable
/// message in \p Err.
inline bool parseEngineSelection(const std::string &Name, bool AllowSlack,
                                 bool AllowAll, EngineSelection &Out,
                                 std::string &Err) {
  Out = EngineSelection();
  if (Name == "both") {
    if (!AllowAll) {
      Err = "engine 'both' is not valid here (choose one of " +
            std::string(engineFlagChoices(AllowSlack, false)) + ")";
      return false;
    }
    Out.All = true;
    return true;
  }
  if (Name == "slack") {
    if (!AllowSlack) {
      Err = "engine 'slack' is not valid here (choose one of " +
            std::string(engineFlagChoices(false, AllowAll)) + ")";
      return false;
    }
    Out.Service = ServiceEngine::Slack;
    return true;
  }
  if (!parseServiceEngine(Name, Out.Service) ||
      !parseExactEngine(Name.c_str(), Out.Exact)) {
    Err = "unknown engine '" + Name + "' (choose one of " +
          std::string(engineFlagChoices(AllowSlack, AllowAll)) + ")";
    return false;
  }
  return true;
}

/// Applies one exact-budget flag of the form --<knob>=N to \p Options.
/// Returns false when \p Arg is not a budget flag (the caller keeps
/// parsing); unparseable values fall back to strtol semantics (0).
inline bool applyExactBudgetFlag(const std::string &Arg,
                                 ExactOptions &Options) {
  const auto valueOf = [&](size_t Prefix) {
    return std::strtol(Arg.c_str() + Prefix, nullptr, 10);
  };
  if (Arg.rfind("--node-budget=", 0) == 0) {
    Options.NodeBudget = valueOf(14);
    return true;
  }
  if (Arg.rfind("--sat-conflict-budget=", 0) == 0) {
    Options.SatConflictBudget = valueOf(22);
    return true;
  }
  if (Arg.rfind("--maxlive-node-budget=", 0) == 0) {
    Options.MaxLiveNodeBudget = valueOf(22);
    return true;
  }
  if (Arg.rfind("--maxlive-conflict-budget=", 0) == 0) {
    Options.MaxLiveConflictBudget = valueOf(26);
    return true;
  }
  return false;
}

} // namespace lsms

#endif // LSMS_SERVICE_ENGINEFLAG_H
