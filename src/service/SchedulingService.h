//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived scheduling service: a batched request pipeline over the
/// slack heuristic and the exact engines, with canonical-loop memoization,
/// per-request deadlines, and metrics.
///
/// Requests arrive as JSONL lines (inline DSL source or a named suite
/// kernel, an engine selection, optional deadline and II cap) and are
/// dispatched to a persistent worker pool. Every request is first
/// canonicalized (service/LoopKey.h); the service schedules the CANONICAL
/// body and remaps issue cycles back to the request's numbering, so a
/// cache hit and a cache miss produce bit-identical responses and the
/// whole response stream is byte-identical at every worker count.
///
/// Robustness: an exact request that misses its wall-clock deadline or
/// exhausts its engine budget degrades to the slack heuristic and says so
/// (degraded=true); the response is still validator-clean. Determinism
/// caveat: the degradation decision for a request WITH a deadline depends
/// on wall-clock time; requests without deadlines (the bench and the
/// byte-identity tests) are fully deterministic, because budget-driven
/// timeouts are part of the engines' deterministic contract.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SERVICE_SCHEDULINGSERVICE_H
#define LSMS_SERVICE_SCHEDULINGSERVICE_H

#include "core/SchedulerOptions.h"
#include "exact/ExactEngine.h"
#include "machine/MachineModel.h"
#include "service/Metrics.h"
#include "service/Protocol.h"
#include "service/ScheduleCache.h"
#include "store/ScheduleStore.h"

#include <atomic>
#include <condition_variable>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lsms {

/// How far down the overload ladder a request is admitted. Full runs the
/// requested engine; SlackOnly forces the deterministic exact→slack
/// degradation (the deadline-expired path) without touching an exact
/// engine; CachedOnly answers purely from the front cache / LRU / store
/// (including the nearest-per-loop rung) and never computes — cheap
/// enough that the socket front end runs it inline on the IO thread.
enum class AdmitMode : uint8_t { Full, SlackOnly, CachedOnly };

/// One scheduling request. Exactly one of Kernel/Source must be set.
struct ServiceRequest {
  std::string Id;     ///< client tag, echoed back verbatim when non-empty
  std::string Name;   ///< display name (defaults: kernel name / "inline")
  std::string Kernel; ///< a named kernel from workloads/Suite.h, or
  std::string Source; ///< inline loop-DSL source
  ServiceEngine Engine = ServiceEngine::Slack;
  /// Wall-clock deadline for exact engines, in milliseconds from request
  /// start: < 0 means none; 0 means already expired (always degrades —
  /// deterministically, which the degradation tests rely on).
  long DeadlineMs = -1;
  /// When > 0, an absolute II cap replacing the configured IICapPolicy.
  int MaxII = 0;
  /// Include per-operation issue cycles (request numbering) in the
  /// response.
  bool EmitTimes = false;
};

/// One response, serialized as a single JSONL line by toJsonl(). Contains
/// no wall-clock or cache-state fields: for deadline-free requests the
/// line is a pure function of the request, whatever the worker count and
/// whatever the cache held.
struct ServiceResponse {
  int Index = -1; ///< position in the batch / request stream
  std::string Id;
  std::string Name;
  bool Ok = false;
  std::string Error;
  ServiceEngine Engine = ServiceEngine::Slack; ///< engine requested
  /// The overload-ladder rung that produced the answer (wire field
  /// "tier"): Exact for an undegraded exact answer, Slack for the
  /// heuristic (requested or degraded-to), Cached for answers served
  /// under overload without running any engine.
  ServiceTier Tier = ServiceTier::Slack;
  /// Machine-readable failure code (wire field "error_code"); None on
  /// success.
  ServiceErrorCode Code = ServiceErrorCode::None;
  /// True when an exact request fell back to the slack heuristic
  /// (deadline missed, engine budget exhausted, or exact-infeasible under
  /// the II cap). The schedule below is then the slack schedule.
  bool Degraded = false;
  /// Exact-engine verdict (pre-degradation); Optimal for untroubled exact
  /// runs, meaningless for Engine == Slack.
  ExactStatus ExactVerdict = ExactStatus::Timeout;
  int II = 0;
  int MII = 0;
  int ResMII = 0;
  int RecMII = 0;
  int Length = 0;    ///< schedule length (Stop issue time)
  long MaxLive = -1; ///< RR register pressure of the returned schedule
  /// True when MaxLive is certified minimal (MinAvg bound met or family
  /// minimality proven); only exact engines with pressure minimization
  /// configured ever set it, and degradation clears it.
  bool MaxLiveProven = false;
  /// The proof kind behind MaxLiveProven.
  MaxLiveCertificate Certificate = MaxLiveCertificate::None;
  std::vector<int> Times; ///< issue cycles, request numbering (EmitTimes)

  std::string toJsonl() const;
};

/// Service-wide configuration.
struct ServiceConfig {
  /// Worker threads for handleBatch/processJsonl; 0 = LSMS_JOBS or the
  /// hardware count, 1 = run requests inline on the caller.
  int Jobs = 0;
  size_t CacheCapacity = 4096;
  int CacheShards = 8;
  /// Capacity of the request-level front cache (fully-rendered responses
  /// keyed by payload text + options; the fast path for byte-identical
  /// resubmissions, skipping parse/canonicalize/validate entirely).
  size_t FrontCacheCapacity = 4096;
  MachineModel Machine = MachineModel::cydra5();
  SchedulerOptions Slack;
  /// Base exact options; Engine is overridden per request, Deadline per
  /// request from DeadlineMs.
  ExactOptions Exact;
  /// When non-empty, an append-only persistent schedule store (see
  /// store/ScheduleStore.h) is mounted at this path as the cache tier
  /// below the in-memory LRU: schedule-tier misses consult it before
  /// computing, and every cache-eligible result is written through, so
  /// warm state survives restarts. Open failures disable the store and
  /// are reported by storeError().
  std::string StorePath;
  /// Re-validate every remapped schedule against the request's own
  /// dependence graph before responding (cheap; guards the cache's
  /// canonical-isomorphism remap against fingerprint collisions).
  bool ValidateResponses = true;
};

/// The service. Thread-safe: handle() may be called concurrently, and
/// handleBatch/processJsonl fan out over the persistent worker pool.
class SchedulingService {
public:
  explicit SchedulingService(ServiceConfig Config = ServiceConfig());
  ~SchedulingService();
  SchedulingService(const SchedulingService &) = delete;
  SchedulingService &operator=(const SchedulingService &) = delete;

  /// Handles one request synchronously on the calling thread. \p Mode
  /// selects the overload-ladder rung (see AdmitMode); Full is the normal
  /// path.
  ServiceResponse handle(const ServiceRequest &Request, int Index = 0,
                         AdmitMode Mode = AdmitMode::Full);

  /// Parses one JSONL request line and handles it; malformed lines become
  /// the same error responses processJsonl emits. This is the unit of work
  /// the socket front end (net/EpollServer.h) dispatches per request, so
  /// the wire path and the JSONL pipe produce byte-identical responses for
  /// identical lines.
  ServiceResponse
  handleLine(const std::string &Line, int Index,
             ServiceEngine DefaultEngine = ServiceEngine::Slack,
             AdmitMode Mode = AdmitMode::Full);

  /// The cached rung of the overload ladder: answers \p Line without
  /// running any engine (parse errors, front-cache hits, LRU/store hits,
  /// and the nearest-per-loop store lookup all count as answers). Returns
  /// false — and leaves \p Out meaningless — when no cached answer
  /// exists, in which case the caller sheds. Cheap enough to run inline
  /// on the socket IO thread.
  bool handleLineCachedOnly(const std::string &Line, int Index,
                            ServiceEngine DefaultEngine,
                            ServiceResponse &Out);

  /// Handles a batch on the worker pool; Responses[I] answers Requests[I].
  std::vector<ServiceResponse>
  handleBatch(const std::vector<ServiceRequest> &Requests);

  /// Parses one JSONL request line. Returns false with a diagnostic on
  /// malformed JSON, unknown fields, or a missing/ambiguous loop payload.
  /// A request without an "engine" field gets \p DefaultEngine.
  static bool
  parseRequestLine(const std::string &Line, ServiceRequest &Out,
                   std::string &Err,
                   ServiceEngine DefaultEngine = ServiceEngine::Slack);

  /// Reads JSONL requests from \p In (blank lines and '#' comments are
  /// skipped), schedules them as one batch on the worker pool, and writes
  /// one response line per request to \p Out in request order. Returns the
  /// number of non-Ok responses.
  int processJsonl(std::istream &In, std::ostream &Out,
                   ServiceEngine DefaultEngine = ServiceEngine::Slack);

  /// Stops admission: accepting() turns false. Requests already inside
  /// handle() keep running; new callers are expected to check accepting()
  /// first (the socket front end sheds instead of submitting).
  void beginDrain();

  /// True until beginDrain()/drain() is called.
  bool accepting() const;

  /// beginDrain() plus a blocking wait until every in-flight handle()
  /// call (and therefore every batch) has completed, so each admitted
  /// request's response exists before the worker pool is torn down. The
  /// destructor drains before joining the pool and closing the store;
  /// servers drain on SIGTERM so no admitted request is dropped.
  void drain();

  const ServiceConfig &config() const { return Config; }
  int jobs() const { return Jobs; }
  ScheduleCache::Stats cacheStats() const { return Cache.stats(); }
  ScheduleCache::Stats frontCacheStats() const { return Front.stats(); }
  MetricsRegistry &metrics() { return Metrics; }

  /// True when the persistent store is mounted and healthy.
  bool storeOpen() const { return Store.isOpen(); }
  /// The open failure that disabled the store ("" when none).
  const std::string &storeError() const { return StoreOpenError; }
  ScheduleStoreStats storeStats() const { return Store.stats(); }
  /// Rewrites the store log to live records only (no-op when unmounted).
  bool compactStore(std::string &Err) { return Store.compact(Err); }

  /// Counters, gauges, latency histograms, cache and store statistics as
  /// one JSON document; \p Pretty selects the indented CLI form, false the
  /// single-line wire form.
  std::string metricsJson(bool Pretty = true) const;

private:
  class Pool;

  /// RAII in-flight accounting for drain().
  class InFlightGuard;

  ServiceConfig Config;
  int Jobs;
  ScheduleCache Cache;
  /// Request-level memo: rendered responses keyed by raw payload text.
  /// Deadline-armed (DeadlineMs > 0) requests bypass it, so every entry is
  /// a pure function of the request and replays are bit-exact.
  ShardedLruCache<ServiceResponse> Front;
  /// The persistent tier below the LRU (unmounted when StorePath is "").
  ScheduleStore Store;
  std::string StoreOpenError;
  MetricsRegistry Metrics;
  std::unique_ptr<Pool> Workers;

  std::atomic<bool> Draining{false};
  std::atomic<long> InFlight{0};
  mutable std::mutex DrainMu;
  std::condition_variable DrainCV;
};

} // namespace lsms

#endif // LSMS_SERVICE_SCHEDULINGSERVICE_H
