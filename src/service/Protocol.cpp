#include "service/Protocol.h"

#include "service/Json.h"
#include "service/SchedulingService.h"

#include <map>
#include <sstream>

using namespace lsms;

const char *lsms::serviceEngineName(ServiceEngine Engine) {
  switch (Engine) {
  case ServiceEngine::Slack:
    return "slack";
  case ServiceEngine::BranchAndBound:
    return "bnb";
  case ServiceEngine::Sat:
    return "sat";
  case ServiceEngine::Portfolio:
    return "portfolio";
  }
  return "?";
}

bool lsms::parseServiceEngine(const std::string &Name,
                              ServiceEngine &Engine) {
  if (Name == "slack") {
    Engine = ServiceEngine::Slack;
    return true;
  }
  if (Name == "bnb") {
    Engine = ServiceEngine::BranchAndBound;
    return true;
  }
  if (Name == "sat") {
    Engine = ServiceEngine::Sat;
    return true;
  }
  if (Name == "portfolio") {
    Engine = ServiceEngine::Portfolio;
    return true;
  }
  return false;
}

const char *lsms::serviceTierName(ServiceTier Tier) {
  switch (Tier) {
  case ServiceTier::Exact:
    return "exact";
  case ServiceTier::Slack:
    return "slack";
  case ServiceTier::Cached:
    return "cached";
  case ServiceTier::Shed:
    return "shed";
  }
  return "?";
}

const char *lsms::serviceErrorCodeName(ServiceErrorCode Code) {
  switch (Code) {
  case ServiceErrorCode::None:
    return "none";
  case ServiceErrorCode::BadRequest:
    return "bad_request";
  case ServiceErrorCode::UnknownKernel:
    return "unknown_kernel";
  case ServiceErrorCode::CompileError:
    return "compile_error";
  case ServiceErrorCode::NoSchedule:
    return "no_schedule";
  case ServiceErrorCode::MaxIIExceeded:
    return "max_ii_exceeded";
  case ServiceErrorCode::Internal:
    return "internal";
  case ServiceErrorCode::Overloaded:
    return "overloaded";
  case ServiceErrorCode::UnknownCommand:
    return "unknown_command";
  }
  return "?";
}

std::string lsms::renderResponseLine(const ServiceResponse &R) {
  std::ostringstream OS;
  OS << "{\"index\":" << R.Index << ",\"proto\":" << ProtocolVersion;
  if (!R.Id.empty())
    OS << ",\"id\":" << jsonQuote(R.Id);
  OS << ",\"name\":" << jsonQuote(R.Name);
  OS << ",\"engine\":\"" << serviceEngineName(R.Engine) << '"';
  if (!R.Ok) {
    OS << ",\"status\":\"error\",\"error_code\":\""
       << serviceErrorCodeName(R.Code == ServiceErrorCode::None
                                   ? ServiceErrorCode::Internal
                                   : R.Code)
       << "\",\"error\":" << jsonQuote(R.Error) << '}';
    return OS.str();
  }
  OS << ",\"status\":\"ok\"";
  OS << ",\"tier\":\"" << serviceTierName(R.Tier) << '"';
  OS << ",\"degraded\":" << (R.Degraded ? "true" : "false");
  if (R.Engine != ServiceEngine::Slack)
    OS << ",\"exact_status\":\"" << exactStatusName(R.ExactVerdict) << '"';
  OS << ",\"ii\":" << R.II << ",\"mii\":" << R.MII
     << ",\"res_mii\":" << R.ResMII << ",\"rec_mii\":" << R.RecMII
     << ",\"length\":" << R.Length << ",\"maxlive\":" << R.MaxLive;
  if (R.Engine != ServiceEngine::Slack)
    OS << ",\"maxlive_proven\":" << (R.MaxLiveProven ? "true" : "false")
       << ",\"maxlive_cert\":\"" << maxLiveCertificateName(R.Certificate)
       << '"';
  if (!R.Times.empty()) {
    OS << ",\"times\":[";
    for (size_t I = 0; I < R.Times.size(); ++I)
      OS << (I ? "," : "") << R.Times[I];
    OS << ']';
  }
  OS << '}';
  return OS.str();
}

std::string lsms::renderShedLine(uint64_t Index, const std::string &Id) {
  std::string Line = "{\"index\":" + std::to_string(Index) +
                     ",\"proto\":" + std::to_string(ProtocolVersion);
  if (!Id.empty())
    Line += ",\"id\":" + jsonQuote(Id);
  Line += ",\"name\":\"shed\",\"status\":\"shed\",\"tier\":\"shed\","
          "\"error_code\":\"overloaded\",\"error\":\"server overloaded: "
          "admission queue full and no cached answer\"}";
  return Line;
}

std::string lsms::renderControlErrorLine(uint64_t Index,
                                         ServiceErrorCode Code,
                                         const std::string &Message) {
  return "{\"index\":" + std::to_string(Index) +
         ",\"proto\":" + std::to_string(ProtocolVersion) +
         ",\"name\":\"control\",\"status\":\"error\",\"error_code\":\"" +
         serviceErrorCodeName(Code) + "\",\"error\":" + jsonQuote(Message) +
         '}';
}

std::string lsms::renderSleepLine(uint64_t Index, long SleptMs) {
  return "{\"index\":" + std::to_string(Index) +
         ",\"proto\":" + std::to_string(ProtocolVersion) +
         ",\"name\":\"control\",\"status\":\"ok\",\"slept_ms\":" +
         std::to_string(SleptMs) + '}';
}

std::string lsms::renderRequestLine(const std::string &Source,
                                    const std::string &Engine) {
  return "{\"source\":" + jsonQuote(Source) + ",\"engine\":\"" + Engine +
         "\"}";
}

std::string lsms::requestIdForShed(const std::string &Line) {
  std::map<std::string, JsonScalar> Obj;
  std::string Err;
  if (!parseFlatJsonObject(Line, Obj, Err))
    return "";
  const auto It = Obj.find("id");
  if (It == Obj.end() || It->second.K != JsonScalar::String)
    return "";
  return It->second.S;
}

WireResponseView lsms::classifyResponseLine(const std::string &Line) {
  WireResponseView V;
  if (Line.find("\"status\":\"shed\"") != std::string::npos)
    V.Shed = true;
  else if (Line.find("\"status\":\"error\"") != std::string::npos)
    V.Error = true;
  else if (Line.find("\"status\":\"ok\"") != std::string::npos)
    V.Ok = true;
  static const ServiceTier Tiers[] = {ServiceTier::Exact, ServiceTier::Slack,
                                      ServiceTier::Cached, ServiceTier::Shed};
  for (const ServiceTier T : Tiers) {
    const std::string Needle =
        std::string("\"tier\":\"") + serviceTierName(T) + '"';
    if (Line.find(Needle) != std::string::npos) {
      V.HasTier = true;
      V.Tier = T;
      break;
    }
  }
  return V;
}
