#include "service/LoopKey.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <tuple>

using namespace lsms;

namespace {

/// SplitMix64 finalizer: the bijective mixer behind every hash here.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t combine(uint64_t Seed, uint64_t V) {
  return mix64(Seed ^ (V * 0xff51afd7ed558ccdULL + 0x2545f4914f6cdd1dULL));
}

uint64_t bitsOf(double D) { return std::bit_cast<uint64_t>(D); }
uint64_t asWord(long long V) { return static_cast<uint64_t>(V); }

// Arc-label tags, so a use in operand position 0 can never collide with a
// predicate read or a def link.
constexpr uint64_t TagDef = 0x11;
constexpr uint64_t TagUse = 0x22;
constexpr uint64_t TagPred = 0x33;
constexpr uint64_t TagMem = 0x44;
constexpr uint64_t TagIndividualize = 0x55;

/// One labeled arc endpoint as seen from a node.
struct LabeledNeighbor {
  uint64_t Label;
  int Node;
};

/// Canonical labeling of one loop body via color refinement plus bounded
/// individualization-refinement. Nodes 0..NO-1 are operations, NO..NO+NV-1
/// are values.
class Canonicalizer {
public:
  explicit Canonicalizer(const LoopBody &Body)
      : Body(Body), NO(Body.numOps()), NV(Body.numValues()), N(NO + NV),
        Out(static_cast<size_t>(N)), In(static_cast<size_t>(N)) {
    buildGraph();
    seedColors();
  }

  /// Serialization under the identity permutations (the body's own
  /// numbering), folded like the canonical fingerprint but with distinct
  /// seeds so a raw print can never equal a canonical one.
  uint64_t rawFingerprint() const {
    std::vector<int> OpId(static_cast<size_t>(NO)), ValueId(
                                                       static_cast<size_t>(NV));
    for (int I = 0; I < NO; ++I)
      OpId[static_cast<size_t>(I)] = I;
    for (int I = 0; I < NV; ++I)
      ValueId[static_cast<size_t>(I)] = I;
    uint64_t H = 0x6c736d735f726177ULL; // "lsms_raw"
    for (uint64_t W : serialize(OpId, ValueId))
      H = combine(H, W);
    return H;
  }

  LoopKey run() {
    search(InitialColors);
    assert(HasBest && "canonical search produced no leaf");
    LoopKey Key;
    Key.OpPerm = std::move(BestOpPerm);
    Key.ValuePerm = std::move(BestValuePerm);
    uint64_t Hi = 0x6c736d735f686921ULL; // "lsms_hi!"
    uint64_t Lo = 0x6c736d735f6c6f21ULL; // "lsms_lo!"
    for (uint64_t W : BestSerial) {
      Hi = combine(Hi, W);
      Lo = combine(Lo, ~W);
    }
    Key.Hi = Hi;
    Key.Lo = Lo;
    return Key;
  }

private:
  void addArc(int From, int To, uint64_t Label) {
    Out[static_cast<size_t>(From)].push_back({Label, To});
    In[static_cast<size_t>(To)].push_back({Label, From});
  }

  int valueNode(int ValueId) const { return NO + ValueId; }

  void buildGraph() {
    for (const Operation &Op : Body.Ops) {
      if (Op.Result >= 0)
        addArc(Op.Id, valueNode(Op.Result), combine(TagDef, 0));
      for (size_t K = 0; K < Op.Operands.size(); ++K) {
        const Use &U = Op.Operands[K];
        addArc(valueNode(U.Value), Op.Id,
               combine(combine(TagUse, K), asWord(U.Omega)));
      }
      if (Op.PredValue >= 0)
        addArc(valueNode(Op.PredValue), Op.Id,
               combine(TagPred, asWord(Op.PredOmega)));
    }
    // Start also "defines" its values (loop inputs): Value::Def is the
    // Start op even though Operation::Result is -1 there.
    for (const Value &V : Body.Values)
      if (V.Def == Body.startOp())
        addArc(Body.startOp(), valueNode(V.Id), combine(TagDef, 0));
    for (const MemDep &D : Body.MemDeps) {
      uint64_t L = combine(TagMem, static_cast<uint64_t>(D.Kind));
      L = combine(L, asWord(D.Latency));
      L = combine(L, asWord(D.Omega));
      // Confidence payload: two arcs differing only in alias certainty or
      // probability must not alias in the cache — speculation lowers them
      // differently. AliasGroup ids are program-order dependent, so a
      // renumbered-but-isomorphic body may fingerprint differently; that is
      // only a cache miss, never a false hit.
      L = combine(L, static_cast<uint64_t>(D.Conf));
      L = combine(L, bitsOf(D.Prob));
      L = combine(L, asWord(D.AliasGroup));
      addArc(D.Src, D.Dst, L);
    }
  }

  void seedColors() {
    InitialColors.assign(static_cast<size_t>(N), 0);
    for (const Operation &Op : Body.Ops) {
      uint64_t C = combine(0xA0, static_cast<uint64_t>(Op.Opc));
      C = combine(C, asWord(Op.ArrayId));
      C = combine(C, asWord(Op.ElemOffset));
      C = combine(C, asWord(Op.ElemStride));
      C = combine(C, Op.Indirect ? 1 : 0);
      C = combine(C, static_cast<uint64_t>(Op.Operands.size()));
      C = combine(C, Op.Result >= 0 ? 1 : 0);
      C = combine(C, Op.PredValue >= 0 ? 1 : 0);
      InitialColors[static_cast<size_t>(Op.Id)] = C;
    }
    for (const Value &V : Body.Values) {
      uint64_t C = combine(0xB0, static_cast<uint64_t>(V.Class));
      C = combine(C, V.LiveOut ? 1 : 0);
      C = combine(C, V.Def == Body.startOp() ? 1 : 0);
      C = combine(C, bitsOf(V.Init));
      C = combine(C, V.Seeds.size());
      for (double S : V.Seeds)
        C = combine(C, bitsOf(S));
      C = combine(C, asWord(V.SeedArrayId));
      C = combine(C, asWord(V.SeedElemOffset));
      C = combine(C, asWord(V.SeedElemStride));
      InitialColors[static_cast<size_t>(valueNode(V.Id))] = C;
    }
  }

  static size_t countDistinct(std::vector<uint64_t> Colors) {
    std::sort(Colors.begin(), Colors.end());
    return static_cast<size_t>(
        std::unique(Colors.begin(), Colors.end()) - Colors.begin());
  }

  /// 1-WL refinement to a fixed partition. Each round folds the sorted
  /// multiset of (arc label, neighbor color) pairs — separately for out-
  /// and in-arcs — into every node's color, so the result is invariant
  /// under node renumbering and arc reordering.
  void refine(std::vector<uint64_t> &Colors) const {
    size_t Distinct = countDistinct(Colors);
    std::vector<uint64_t> Next(Colors.size());
    std::vector<uint64_t> Scratch;
    for (int Round = 0; Round < N; ++Round) {
      for (int V = 0; V < N; ++V) {
        uint64_t C = combine(0xC0, Colors[static_cast<size_t>(V)]);
        for (const bool IsOut : {true, false}) {
          const auto &Arcs =
              IsOut ? Out[static_cast<size_t>(V)] : In[static_cast<size_t>(V)];
          Scratch.clear();
          for (const LabeledNeighbor &A : Arcs)
            Scratch.push_back(
                combine(A.Label, Colors[static_cast<size_t>(A.Node)]));
          std::sort(Scratch.begin(), Scratch.end());
          C = combine(C, IsOut ? 0xD1 : 0xD2);
          for (uint64_t W : Scratch)
            C = combine(C, W);
        }
        Next[static_cast<size_t>(V)] = C;
      }
      const size_t NextDistinct = countDistinct(Next);
      Colors.swap(Next);
      if (NextDistinct == Distinct)
        return; // partition stable (refinement is monotone)
      Distinct = NextDistinct;
    }
  }

  /// First ambiguous cell: the smallest color value shared by >= 2 nodes,
  /// or an empty vector when the coloring is discrete.
  std::vector<int> targetCell(const std::vector<uint64_t> &Colors) const {
    std::vector<int> Order(static_cast<size_t>(N));
    for (int V = 0; V < N; ++V)
      Order[static_cast<size_t>(V)] = V;
    std::sort(Order.begin(), Order.end(), [&](int A, int B) {
      return Colors[static_cast<size_t>(A)] < Colors[static_cast<size_t>(B)];
    });
    for (size_t I = 0; I + 1 < Order.size(); ++I) {
      if (Colors[static_cast<size_t>(Order[I])] !=
          Colors[static_cast<size_t>(Order[I + 1])])
        continue;
      const uint64_t C = Colors[static_cast<size_t>(Order[I])];
      std::vector<int> Cell;
      for (size_t J = I; J < Order.size() &&
                         Colors[static_cast<size_t>(Order[J])] == C;
           ++J)
        Cell.push_back(Order[J]);
      std::sort(Cell.begin(), Cell.end());
      return Cell;
    }
    return {};
  }

  void search(std::vector<uint64_t> Colors) {
    refine(Colors);
    const std::vector<int> Cell = targetCell(Colors);
    if (Cell.empty()) {
      leaf(Colors);
      return;
    }
    for (const int V : Cell) {
      if (Leaves >= LoopKeyLeafBudget)
        return;
      std::vector<uint64_t> Branch = Colors;
      Branch[static_cast<size_t>(V)] =
          combine(TagIndividualize, Branch[static_cast<size_t>(V)]);
      search(std::move(Branch));
    }
  }

  void leaf(const std::vector<uint64_t> &Colors) {
    ++Leaves;
    // Canonical operation order: Start, Stop, then color order. Canonical
    // value order: color order. The discrete coloring makes both total.
    std::vector<int> OpOrder, ValueOrder;
    for (int I = 2; I < NO; ++I)
      OpOrder.push_back(I);
    std::sort(OpOrder.begin(), OpOrder.end(), [&](int A, int B) {
      return Colors[static_cast<size_t>(A)] < Colors[static_cast<size_t>(B)];
    });
    for (int I = 0; I < NV; ++I)
      ValueOrder.push_back(I);
    std::sort(ValueOrder.begin(), ValueOrder.end(), [&](int A, int B) {
      return Colors[static_cast<size_t>(valueNode(A))] <
             Colors[static_cast<size_t>(valueNode(B))];
    });

    std::vector<int> OpPerm(static_cast<size_t>(NO), -1);
    OpPerm[0] = 0;
    OpPerm[1] = 1;
    for (size_t K = 0; K < OpOrder.size(); ++K)
      OpPerm[static_cast<size_t>(OpOrder[K])] = static_cast<int>(K) + 2;
    std::vector<int> ValuePerm(static_cast<size_t>(NV), -1);
    for (size_t K = 0; K < ValueOrder.size(); ++K)
      ValuePerm[static_cast<size_t>(ValueOrder[K])] = static_cast<int>(K);

    const std::vector<uint64_t> Serial = serialize(OpPerm, ValuePerm);
    if (!HasBest || Serial < BestSerial) {
      HasBest = true;
      BestSerial = Serial;
      BestOpPerm = std::move(OpPerm);
      BestValuePerm = std::move(ValuePerm);
    }
  }

  /// Complete, order-normalized encoding of the loop body under the given
  /// canonical permutations. Lexicographic comparison of two encodings
  /// decides the minimal leaf, and the fingerprint hashes this verbatim.
  std::vector<uint64_t> serialize(const std::vector<int> &OpPerm,
                                  const std::vector<int> &ValuePerm) const {
    std::vector<uint64_t> S;
    S.reserve(static_cast<size_t>(8 * N));
    S.push_back(asWord(Body.First));
    S.push_back(asWord(Body.NumArrays));
    S.push_back(Body.HasConditional ? 1 : 0);
    S.push_back(Body.ExitValue < 0
                    ? ~0ULL
                    : asWord(ValuePerm[static_cast<size_t>(Body.ExitValue)]));
    S.push_back(asWord(Body.SourceBasicBlocks));
    S.push_back(asWord(NO));
    S.push_back(asWord(NV));
    S.push_back(Body.MemDeps.size());

    std::vector<int> InvOp(static_cast<size_t>(NO));
    for (int I = 0; I < NO; ++I)
      InvOp[static_cast<size_t>(OpPerm[static_cast<size_t>(I)])] = I;
    for (int K = 0; K < NO; ++K) {
      const Operation &Op = Body.op(InvOp[static_cast<size_t>(K)]);
      S.push_back(static_cast<uint64_t>(Op.Opc));
      S.push_back(asWord(Op.ArrayId));
      S.push_back(asWord(Op.ElemOffset));
      S.push_back(asWord(Op.ElemStride));
      S.push_back(Op.Indirect ? 1 : 0);
      S.push_back(Op.Result < 0
                      ? ~0ULL
                      : asWord(ValuePerm[static_cast<size_t>(Op.Result)]));
      S.push_back(Op.PredValue < 0
                      ? ~0ULL
                      : asWord(ValuePerm[static_cast<size_t>(Op.PredValue)]));
      S.push_back(asWord(Op.PredOmega));
      S.push_back(Op.Operands.size());
      for (const Use &U : Op.Operands) {
        S.push_back(asWord(ValuePerm[static_cast<size_t>(U.Value)]));
        S.push_back(asWord(U.Omega));
      }
    }

    std::vector<int> InvValue(static_cast<size_t>(NV));
    for (int I = 0; I < NV; ++I)
      InvValue[static_cast<size_t>(ValuePerm[static_cast<size_t>(I)])] = I;
    for (int K = 0; K < NV; ++K) {
      const Value &V = Body.value(InvValue[static_cast<size_t>(K)]);
      S.push_back(static_cast<uint64_t>(V.Class));
      S.push_back(asWord(OpPerm[static_cast<size_t>(V.Def)]));
      S.push_back(V.LiveOut ? 1 : 0);
      S.push_back(bitsOf(V.Init));
      S.push_back(V.Seeds.size());
      for (double Seed : V.Seeds)
        S.push_back(bitsOf(Seed));
      S.push_back(asWord(V.SeedArrayId));
      S.push_back(asWord(V.SeedElemOffset));
      S.push_back(asWord(V.SeedElemStride));
    }

    std::vector<std::tuple<int, int, int, int, int, int, uint64_t, int>> Deps;
    for (const MemDep &D : Body.MemDeps)
      Deps.emplace_back(OpPerm[static_cast<size_t>(D.Src)],
                        OpPerm[static_cast<size_t>(D.Dst)],
                        static_cast<int>(D.Kind), D.Latency, D.Omega,
                        static_cast<int>(D.Conf), bitsOf(D.Prob),
                        D.AliasGroup);
    std::sort(Deps.begin(), Deps.end());
    for (const auto &[Src, Dst, Kind, Latency, Omega, Conf, ProbBits, Group] :
         Deps) {
      S.push_back(asWord(Src));
      S.push_back(asWord(Dst));
      S.push_back(asWord(Kind));
      S.push_back(asWord(Latency));
      S.push_back(asWord(Omega));
      S.push_back(asWord(Conf));
      S.push_back(ProbBits);
      S.push_back(asWord(Group));
    }
    return S;
  }

  const LoopBody &Body;
  const int NO, NV, N;
  std::vector<std::vector<LabeledNeighbor>> Out, In;
  std::vector<uint64_t> InitialColors;

  int Leaves = 0;
  bool HasBest = false;
  std::vector<uint64_t> BestSerial;
  std::vector<int> BestOpPerm, BestValuePerm;
};

} // namespace

LoopKey lsms::canonicalLoopKey(const LoopBody &Body) {
  return Canonicalizer(Body).run();
}

LoopBody lsms::canonicalLoopBody(const LoopBody &Body, const LoopKey &Key) {
  const int NO = Body.numOps();
  const int NV = Body.numValues();
  assert(static_cast<int>(Key.OpPerm.size()) == NO &&
         static_cast<int>(Key.ValuePerm.size()) == NV && "stale key");

  std::vector<int> InvOp(static_cast<size_t>(NO));
  for (int I = 0; I < NO; ++I)
    InvOp[static_cast<size_t>(Key.OpPerm[static_cast<size_t>(I)])] = I;
  std::vector<int> InvValue(static_cast<size_t>(NV));
  for (int I = 0; I < NV; ++I)
    InvValue[static_cast<size_t>(Key.ValuePerm[static_cast<size_t>(I)])] = I;

  LoopBody C; // constructor creates Start (0) and Stop (1)
  C.Name = Body.Name;
  C.First = Body.First;
  C.NumArrays = Body.NumArrays;
  C.HasConditional = Body.HasConditional;
  if (Body.ExitValue >= 0)
    C.ExitValue = Key.ValuePerm[static_cast<size_t>(Body.ExitValue)];
  C.SourceBasicBlocks = Body.SourceBasicBlocks;

  for (int K = 0; K < NV; ++K) {
    const Value &V = Body.value(InvValue[static_cast<size_t>(K)]);
    const int Id = C.addValue(
        V.Class, Key.OpPerm[static_cast<size_t>(V.Def)], "v" + std::to_string(K));
    Value &NewV = C.value(Id);
    NewV.LiveOut = V.LiveOut;
    NewV.Init = V.Init;
    NewV.Seeds = V.Seeds;
    NewV.SeedArrayId = V.SeedArrayId;
    NewV.SeedElemOffset = V.SeedElemOffset;
    NewV.SeedElemStride = V.SeedElemStride;
  }

  for (int K = 2; K < NO; ++K) {
    const Operation &Op = Body.op(InvOp[static_cast<size_t>(K)]);
    std::vector<Use> Operands;
    Operands.reserve(Op.Operands.size());
    for (const Use &U : Op.Operands)
      Operands.push_back(
          Use{Key.ValuePerm[static_cast<size_t>(U.Value)], U.Omega});
    const int Id =
        C.addOperation(Op.Opc, std::move(Operands), "o" + std::to_string(K));
    Operation &NewOp = C.op(Id);
    if (Op.Result >= 0)
      NewOp.Result = Key.ValuePerm[static_cast<size_t>(Op.Result)];
    if (Op.PredValue >= 0) {
      NewOp.PredValue = Key.ValuePerm[static_cast<size_t>(Op.PredValue)];
      NewOp.PredOmega = Op.PredOmega;
    }
    NewOp.ArrayId = Op.ArrayId;
    NewOp.ElemOffset = Op.ElemOffset;
    NewOp.ElemStride = Op.ElemStride;
    NewOp.Indirect = Op.Indirect;
  }
  if (Body.brTopOp() >= 0)
    C.setBrTop(Key.OpPerm[static_cast<size_t>(Body.brTopOp())]);

  for (const MemDep &D : Body.MemDeps) {
    MemDep M = D;
    M.Src = Key.OpPerm[static_cast<size_t>(D.Src)];
    M.Dst = Key.OpPerm[static_cast<size_t>(D.Dst)];
    C.MemDeps.push_back(M);
  }
  std::sort(C.MemDeps.begin(), C.MemDeps.end(),
            [](const MemDep &A, const MemDep &B) {
              const uint64_t PA = std::bit_cast<uint64_t>(A.Prob);
              const uint64_t PB = std::bit_cast<uint64_t>(B.Prob);
              return std::tie(A.Src, A.Dst, A.Kind, A.Latency, A.Omega,
                              A.Conf, PA, A.AliasGroup) <
                     std::tie(B.Src, B.Dst, B.Kind, B.Latency, B.Omega,
                              B.Conf, PB, B.AliasGroup);
            });
  return C;
}

uint64_t lsms::rawLoopFingerprint(const LoopBody &Body) {
  return Canonicalizer(Body).rawFingerprint();
}

uint64_t lsms::machineFingerprint(const MachineModel &Machine) {
  uint64_t H = 0x6d616368696e6521ULL; // "machine!"
  for (unsigned K = 0; K < NumFuKinds; ++K)
    H = combine(H, asWord(Machine.unitCount(static_cast<FuKind>(K))));
  for (unsigned O = 0; O < NumOpcodeValues; ++O) {
    const Opcode Op = static_cast<Opcode>(O);
    H = combine(H, static_cast<uint64_t>(Machine.unitFor(Op)));
    H = combine(H, asWord(Machine.latency(Op)));
    H = combine(H, asWord(Machine.reservationCycles(Op)));
  }
  return H;
}
