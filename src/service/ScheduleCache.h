//===----------------------------------------------------------------------===//
///
/// \file
/// Sharded LRU memoization caches for the scheduling service. Keys are
/// 128-bit fingerprints combined with an auxiliary hash of everything else
/// that determines the answer; payloads are either canonical-numbering
/// schedules (ScheduleCache, shared across isomorphic resubmissions) or
/// fully-rendered responses (the service's request-level front cache).
/// Shards each have their own mutex and LRU list, so concurrent workers
/// only contend when their keys land in the same shard. Hit/miss/eviction
/// counters feed the metrics export.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SERVICE_SCHEDULECACHE_H
#define LSMS_SERVICE_SCHEDULECACHE_H

#include "exact/ExactEngine.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace lsms {

/// Full cache key: a 128-bit fingerprint of the loop (canonical or raw)
/// plus an auxiliary hash of everything else that determines the answer
/// (engine, budgets, II cap, machine fingerprint).
struct CacheKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;
  uint64_t Aux = 0;

  bool operator==(const CacheKey &O) const {
    return Hi == O.Hi && Lo == O.Lo && Aux == O.Aux;
  }
};

/// Point-in-time aggregate statistics over a cache's shards.
struct CacheStats {
  long Hits = 0;
  long Misses = 0;
  long Evictions = 0;
  long Insertions = 0;
  size_t Entries = 0;

  double hitRate() const {
    const long Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// A bounded, sharded LRU map from CacheKey to \p Value.
template <typename Value> class ShardedLruCache {
public:
  /// Creates a cache holding at most \p Capacity entries spread over
  /// \p Shards independent LRU shards (both clamped to >= 1).
  explicit ShardedLruCache(size_t Capacity, int Shards = 8) {
    TotalCapacity = std::max<size_t>(1, Capacity);
    const size_t NumShards = static_cast<size_t>(std::max(1, Shards));
    // No point in more shards than capacity: a shard must hold >= 1 entry.
    const size_t Usable = std::min(NumShards, TotalCapacity);
    PerShardCapacity = (TotalCapacity + Usable - 1) / Usable;
    ShardList.reserve(Usable);
    for (size_t I = 0; I < Usable; ++I)
      ShardList.push_back(std::make_unique<Shard>());
  }

  /// Looks up \p Key; on a hit copies the payload into \p Out, refreshes
  /// recency, and counts a hit. Counts a miss otherwise.
  bool lookup(const CacheKey &Key, Value &Out) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.Mu);
    const auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      S.Misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    Out = It->second->second;
    S.Hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Inserts or refreshes \p Key, evicting the shard's least recently used
  /// entry when the shard is full.
  void insert(const CacheKey &Key, const Value &Payload) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.Mu);
    const auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      It->second->second = Payload;
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      return;
    }
    if (S.Lru.size() >= PerShardCapacity) {
      S.Map.erase(S.Lru.back().first);
      S.Lru.pop_back();
      S.Evictions.fetch_add(1, std::memory_order_relaxed);
    }
    S.Lru.emplace_front(Key, Payload);
    S.Map.emplace(Key, S.Lru.begin());
    S.Insertions.fetch_add(1, std::memory_order_relaxed);
  }

  using Stats = CacheStats;

  Stats stats() const {
    Stats Total;
    for (const auto &S : ShardList) {
      Total.Hits += S->Hits.load(std::memory_order_relaxed);
      Total.Misses += S->Misses.load(std::memory_order_relaxed);
      Total.Evictions += S->Evictions.load(std::memory_order_relaxed);
      Total.Insertions += S->Insertions.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> Lock(S->Mu);
      Total.Entries += S->Lru.size();
    }
    return Total;
  }

  size_t capacity() const { return TotalCapacity; }
  int shards() const { return static_cast<int>(ShardList.size()); }

  /// Drops every entry (counters survive).
  void clear() {
    for (const auto &S : ShardList) {
      std::lock_guard<std::mutex> Lock(S->Mu);
      S->Map.clear();
      S->Lru.clear();
    }
  }

private:
  struct KeyHash {
    size_t operator()(const CacheKey &K) const {
      uint64_t H = K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ULL) ^
                   (K.Aux * 0xff51afd7ed558ccdULL);
      H ^= H >> 33;
      return static_cast<size_t>(H);
    }
  };

  struct Shard {
    mutable std::mutex Mu;
    /// Front = most recently used.
    std::list<std::pair<CacheKey, Value>> Lru;
    std::unordered_map<CacheKey, typename std::list<std::pair<
                                     CacheKey, Value>>::iterator,
                       KeyHash>
        Map;
    std::atomic<long> Hits{0}, Misses{0}, Evictions{0}, Insertions{0};
  };

  Shard &shardFor(const CacheKey &Key) {
    return *ShardList[KeyHash()(Key) % ShardList.size()];
  }

  size_t TotalCapacity;
  size_t PerShardCapacity;
  std::vector<std::unique_ptr<Shard>> ShardList;
};

/// A memoized scheduling result. Times are issue cycles in CANONICAL
/// operation numbering; callers remap through their request's LoopKey.
/// (Requests routed through the numbering-sensitive key store times in
/// their own numbering and remap through the identity.)
struct CachedSchedule {
  bool Success = false;
  int II = 0;
  int MII = 0;
  int ResMII = 0;
  int RecMII = 0;
  long MaxLive = -1;
  /// True when MaxLive carries a minimality certificate (exact engines
  /// with MinimizeMaxLive only; always false on the slack path).
  bool MaxLiveProven = false;
  /// The proof kind behind MaxLiveProven.
  MaxLiveCertificate Certificate = MaxLiveCertificate::None;
  /// Exact-engine verdict; Optimal also stands in for a successful slack
  /// heuristic run (which has no notion of proof).
  ExactStatus Status = ExactStatus::Timeout;
  std::vector<int> Times;
};

/// The schedule-level memoization tier.
using ScheduleCache = ShardedLruCache<CachedSchedule>;

} // namespace lsms

#endif // LSMS_SERVICE_SCHEDULECACHE_H
