#include "service/Metrics.h"

#include <sstream>

using namespace lsms;

void MetricsRegistry::inc(const std::string &Name, long By) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += By;
}

long MetricsRegistry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

void MetricsRegistry::observe(const std::string &Name, int64_t Micros) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(Name, Histogram(LatencyBucketUs, LatencyMaxUs))
             .first;
  It->second.add(Micros);
}

size_t MetricsRegistry::observations(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Histograms.find(Name);
  return It == Histograms.end() ? 0 : It->second.count();
}

int64_t MetricsRegistry::percentile(const std::string &Name,
                                    double Fraction) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Histograms.find(Name);
  return It == Histograms.end() ? 0 : It->second.percentile(Fraction);
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    OS << (First ? "\n" : ",\n") << "    \"" << Name << "\": " << Value;
    First = false;
  }
  OS << (First ? "" : "\n  ") << "},\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, Hist] : Histograms) {
    OS << (First ? "\n" : ",\n") << "    \"" << Name << "\": {"
       << "\"count\": " << Hist.count()
       << ", \"p50_us\": " << Hist.percentile(0.50)
       << ", \"p90_us\": " << Hist.percentile(0.90)
       << ", \"p99_us\": " << Hist.percentile(0.99)
       << ", \"max_us\": " << Hist.maxSample() << "}";
    First = false;
  }
  OS << (First ? "" : "\n  ") << "}\n}\n";
  return OS.str();
}
