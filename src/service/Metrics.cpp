#include "service/Metrics.h"

#include <sstream>

using namespace lsms;

void MetricsRegistry::inc(const std::string &Name, long By) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += By;
}

long MetricsRegistry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

void MetricsRegistry::set(const std::string &Name, long Value) {
  std::lock_guard<std::mutex> Lock(Mu);
  Gauges[Name] = Value;
}

long MetricsRegistry::gauge(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0 : It->second;
}

void MetricsRegistry::observe(const std::string &Name, int64_t Micros) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(Name, Histogram(LatencyBucketUs, LatencyMaxUs))
             .first;
  It->second.add(Micros);
}

size_t MetricsRegistry::observations(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Histograms.find(Name);
  return It == Histograms.end() ? 0 : It->second.count();
}

int64_t MetricsRegistry::percentile(const std::string &Name,
                                    double Fraction) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Histograms.find(Name);
  return It == Histograms.end() ? 0 : It->second.percentile(Fraction);
}

std::string MetricsRegistry::toJson(bool Pretty) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const char *Open = Pretty ? "\n" : "";
  const char *Item = Pretty ? "\n    " : "";
  const char *Sep = Pretty ? ",\n    " : ", ";
  const char *CloseMap = Pretty ? "\n  " : "";
  std::ostringstream OS;
  const auto scalarMap = [&](const char *Title,
                             const std::map<std::string, long> &Map) {
    OS << "\"" << Title << "\": {";
    bool First = true;
    for (const auto &[Name, Value] : Map) {
      OS << (First ? Item : Sep) << "\"" << Name << "\": " << Value;
      First = false;
    }
    OS << (First ? "" : CloseMap) << "}";
  };
  OS << "{" << Open << (Pretty ? "  " : "");
  scalarMap("counters", Counters);
  OS << "," << Open << (Pretty ? "  " : " ");
  scalarMap("gauges", Gauges);
  OS << "," << Open << (Pretty ? "  " : " ") << "\"histograms\": {";
  bool First = true;
  for (const auto &[Name, Hist] : Histograms) {
    OS << (First ? Item : Sep) << "\"" << Name << "\": {"
       << "\"count\": " << Hist.count()
       << ", \"p50_us\": " << Hist.percentile(0.50)
       << ", \"p90_us\": " << Hist.percentile(0.90)
       << ", \"p99_us\": " << Hist.percentile(0.99)
       << ", \"p999_us\": " << Hist.percentile(0.999)
       << ", \"max_us\": " << Hist.maxSample() << "}";
    First = false;
  }
  OS << (First ? "" : CloseMap) << "}" << Open << "}" << (Pretty ? "\n" : "");
  return OS.str();
}
