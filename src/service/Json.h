//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal JSON support for the scheduling service's JSONL request and
/// response lines. Requests are flat objects (string/number/bool/null
/// values only — no nesting), which keeps the parser a few dozen lines and
/// the wire format trivially diffable. Escaping follows RFC 8259 for the
/// characters the DSL can produce (quotes, backslashes, control chars).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SERVICE_JSON_H
#define LSMS_SERVICE_JSON_H

#include <map>
#include <string>

namespace lsms {

/// One scalar value of a flat JSON object.
struct JsonScalar {
  enum Kind : uint8_t { Null, Bool, Number, String } K = Null;
  bool B = false;
  double N = 0;
  std::string S;
};

/// Parses \p Line as a flat JSON object into \p Out (cleared first).
/// Returns false with a diagnostic in \p Err on malformed input, nested
/// arrays/objects, or duplicate keys.
bool parseFlatJsonObject(const std::string &Line,
                         std::map<std::string, JsonScalar> &Out,
                         std::string &Err);

/// Returns \p S as a double-quoted JSON string with escapes applied.
std::string jsonQuote(const std::string &S);

} // namespace lsms

#endif // LSMS_SERVICE_JSON_H
