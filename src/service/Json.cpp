#include "service/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace lsms;

namespace {

class Cursor {
public:
  explicit Cursor(const std::string &S) : S(S) {}

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool done() const { return Pos >= S.size(); }
  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  bool accept(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  bool literal(const char *Word) {
    size_t P = Pos;
    for (const char *W = Word; *W; ++W, ++P)
      if (P >= S.size() || S[P] != *W)
        return false;
    Pos = P;
    return true;
  }

  bool parseString(std::string &Out, std::string &Err) {
    if (!accept('"')) {
      Err = "expected '\"'";
      return false;
    }
    Out.clear();
    while (true) {
      if (done()) {
        Err = "unterminated string";
        return false;
      }
      const char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (done()) {
        Err = "unterminated escape";
        return false;
      }
      const char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 > S.size()) {
          Err = "truncated \\u escape";
          return false;
        }
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          const char H = S[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else {
            Err = "bad \\u escape";
            return false;
          }
        }
        // The DSL is ASCII; encode BMP code points as UTF-8 for
        // completeness.
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        Err = "unknown escape";
        return false;
      }
    }
  }

  bool parseNumber(double &Out, std::string &Err) {
    const char *Begin = S.c_str() + Pos;
    char *End = nullptr;
    Out = std::strtod(Begin, &End);
    if (End == Begin) {
      Err = "expected a number";
      return false;
    }
    Pos += static_cast<size_t>(End - Begin);
    return true;
  }

private:
  const std::string &S;
  size_t Pos = 0;
};

} // namespace

bool lsms::parseFlatJsonObject(const std::string &Line,
                               std::map<std::string, JsonScalar> &Out,
                               std::string &Err) {
  Out.clear();
  Cursor C(Line);
  C.skipWs();
  if (!C.accept('{')) {
    Err = "expected '{'";
    return false;
  }
  C.skipWs();
  if (C.accept('}')) {
    C.skipWs();
    if (!C.done()) {
      Err = "trailing input after object";
      return false;
    }
    return true;
  }
  while (true) {
    C.skipWs();
    std::string Key;
    if (!C.parseString(Key, Err))
      return false;
    C.skipWs();
    if (!C.accept(':')) {
      Err = "expected ':' after key \"" + Key + "\"";
      return false;
    }
    C.skipWs();
    JsonScalar V;
    if (C.peek() == '"') {
      V.K = JsonScalar::String;
      if (!C.parseString(V.S, Err))
        return false;
    } else if (C.literal("true")) {
      V.K = JsonScalar::Bool;
      V.B = true;
    } else if (C.literal("false")) {
      V.K = JsonScalar::Bool;
      V.B = false;
    } else if (C.literal("null")) {
      V.K = JsonScalar::Null;
    } else if (C.peek() == '{' || C.peek() == '[') {
      Err = "nested values are not supported in request objects";
      return false;
    } else {
      V.K = JsonScalar::Number;
      if (!C.parseNumber(V.N, Err))
        return false;
    }
    if (!Out.emplace(Key, std::move(V)).second) {
      Err = "duplicate key \"" + Key + "\"";
      return false;
    }
    C.skipWs();
    if (C.accept(','))
      continue;
    if (C.accept('}'))
      break;
    Err = "expected ',' or '}'";
    return false;
  }
  C.skipWs();
  if (!C.done()) {
    Err = "trailing input after object";
    return false;
  }
  return true;
}

std::string lsms::jsonQuote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out.push_back('"');
  for (const char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
      break;
    }
  }
  Out.push_back('"');
  return Out;
}
