//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical fingerprints for loop bodies, the cache key of the scheduling
/// service. Two loop bodies that differ only in operation/value numbering,
/// memory-dependence ordering, or names receive the same 128-bit
/// fingerprint and isomorphic canonical forms, so the service can memoize
/// one schedule and replay it for every renumbered resubmission.
///
/// The canonicalization is a color-refinement (1-WL) pass over a bipartite
/// operation/value graph with labeled arcs (operand position, omega,
/// predicate, memory-dependence kind/latency/omega), followed by
/// individualization-refinement when refinement alone leaves symmetric
/// nodes: each member of the first ambiguous color class is individualized
/// in turn and the lexicographically smallest canonical serialization wins.
/// The search is bounded (LoopKeyLeafBudget leaves); loops that exhaust it
/// still get a deterministic key, it is just no longer guaranteed to match
/// every isomorphic renumbering (a cache miss, never a wrong hit — the
/// service validates remapped schedules against the request's own
/// dependence graph).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SERVICE_LOOPKEY_H
#define LSMS_SERVICE_LOOPKEY_H

#include "ir/LoopBody.h"
#include "machine/MachineModel.h"

#include <cstdint>
#include <vector>

namespace lsms {

/// Individualization-refinement leaf budget. Loop bodies have rich local
/// labels (opcode, array id, subscript, omegas), so refinement almost
/// always splits every non-automorphic pair; genuinely automorphic nodes
/// make all leaves serialize identically and the first one wins.
inline constexpr int LoopKeyLeafBudget = 64;

/// A canonical key for one loop body: the fingerprint of its canonical
/// serialization plus the permutations into canonical numbering.
struct LoopKey {
  /// 128-bit fingerprint of the canonical serialization. Equal for
  /// isomorphic (renumbered) loop bodies; unequal for structurally
  /// distinct ones up to hash collision.
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  /// OpPerm[InputOpId] = canonical operation index. Start and Stop keep
  /// indices 0 and 1 so the canonical body satisfies the IR invariants.
  std::vector<int> OpPerm;

  /// ValuePerm[InputValueId] = canonical value index.
  std::vector<int> ValuePerm;

  bool operator==(const LoopKey &O) const { return Hi == O.Hi && Lo == O.Lo; }
};

/// Computes the canonical key of \p Body. Deterministic; invariant under
/// operation/value renumbering, memory-dependence reordering, and renaming
/// (names, Source text, and ArrayNames never enter the key).
LoopKey canonicalLoopKey(const LoopBody &Body);

/// Rebuilds \p Body in canonical numbering (ops and values permuted by
/// \p Key, names replaced by canonical placeholders, memory dependences
/// sorted). The result passes LoopBody::verify() whenever \p Body does,
/// and isomorphic inputs rebuild byte-identical canonical bodies. The
/// service schedules this body — not the request's — so cache hits and
/// misses produce bit-identical schedules.
LoopBody canonicalLoopBody(const LoopBody &Body, const LoopKey &Key);

/// Fingerprint of the scheduling-relevant machine description (unit
/// counts, opcode->unit mapping, latencies). Folded into cache keys so a
/// latency ablation can never replay a schedule computed for a different
/// machine.
uint64_t machineFingerprint(const MachineModel &Machine);

/// Fingerprint of \p Body in its OWN numbering (the identity permutation
/// through the same serialization as the canonical key). Unlike the
/// canonical fingerprint this is sensitive to operation/value order. The
/// service mixes it into the cache key for requests whose functional-unit
/// assignment is not equivariant with the canonical body's, where a
/// schedule is only replayable for byte-identical numberings.
uint64_t rawLoopFingerprint(const LoopBody &Body);

} // namespace lsms

#endif // LSMS_SERVICE_LOOPKEY_H
