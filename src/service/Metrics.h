//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for the scheduling service: named monotonic counters,
/// named point-in-time gauges (queue depth, active connections), and
/// named latency histograms (reusing support/Histogram for bucketing and
/// exact-sample percentiles), exported as deterministic-order JSON —
/// pretty-printed for the CLI or as a single line for the wire. The
/// registry is thread-safe; workers record from the request pipeline
/// concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_SERVICE_METRICS_H
#define LSMS_SERVICE_METRICS_H

#include "support/Histogram.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace lsms {

class MetricsRegistry {
public:
  /// Histogram geometry for latency observations: 100us buckets up to
  /// 100ms, overflow above (percentiles use exact samples, so bucket
  /// geometry only affects print()).
  static constexpr int64_t LatencyBucketUs = 100;
  static constexpr int64_t LatencyMaxUs = 100000;

  /// Adds \p By to counter \p Name (created at zero on first use).
  void inc(const std::string &Name, long By = 1);

  /// Current value of counter \p Name (0 when never incremented).
  long counter(const std::string &Name) const;

  /// Sets gauge \p Name to \p Value (a point-in-time level, unlike the
  /// monotonic counters).
  void set(const std::string &Name, long Value);

  /// Current value of gauge \p Name (0 when never set).
  long gauge(const std::string &Name) const;

  /// Records one latency sample, in microseconds, into histogram \p Name.
  void observe(const std::string &Name, int64_t Micros);

  /// Sample count of histogram \p Name (0 when absent).
  size_t observations(const std::string &Name) const;

  /// Exact \p Fraction-quantile of histogram \p Name (0 when absent).
  int64_t percentile(const std::string &Name, double Fraction) const;

  /// Exports every counter, gauge, and histogram as a JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {NAME: {"count": C, "p50_us": ..., "p90_us": ...,
  ///    "p99_us": ..., "p999_us": ..., "max_us": ...}, ...}}
  /// Keys are emitted in sorted order so the export is deterministic for a
  /// given set of recorded events. \p Pretty selects the indented CLI form;
  /// false emits one line (the wire form behind "cmd":"metrics").
  std::string toJson(bool Pretty = true) const;

private:
  mutable std::mutex Mu;
  std::map<std::string, long> Counters;
  std::map<std::string, long> Gauges;
  std::map<std::string, Histogram> Histograms;
};

} // namespace lsms

#endif // LSMS_SERVICE_METRICS_H
