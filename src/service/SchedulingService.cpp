#include "service/SchedulingService.h"

#include "bounds/Lifetimes.h"
#include "core/FuAssignment.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "frontend/LoopCompiler.h"
#include "service/Json.h"
#include "service/LoopKey.h"
#include "support/ParallelFor.h"
#include "workloads/Suite.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

using namespace lsms;

std::string ServiceResponse::toJsonl() const {
  return renderResponseLine(*this);
}

//===----------------------------------------------------------------------===//
// Persistent worker pool
//===----------------------------------------------------------------------===//

/// A minimal persistent pool: threads live for the service's lifetime and
/// pick batch indices off a shared atomic counter. Work stealing order is
/// timing-dependent, but results land in disjoint index slots and response
/// bytes are index-ordered, so scheduling order never shows.
class SchedulingService::Pool {
public:
  explicit Pool(int Threads) {
    Workers.reserve(static_cast<size_t>(Threads));
    for (int I = 0; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stopping = true;
    }
    WakeCV.notify_all();
    // ~jthread joins.
  }

  void run(int N, const std::function<void(int)> &Fn) {
    if (N <= 0)
      return;
    {
      // Defensive: a batch submitted after shutdown began would hang
      // forever waiting for workers that already exited. Run it inline
      // instead (drain() makes this unreachable in normal use).
      std::lock_guard<std::mutex> Lock(Mu);
      if (Stopping) {
        for (int I = 0; I < N; ++I)
          Fn(I);
        return;
      }
    }
    auto State = std::make_shared<Batch>();
    State->N = N;
    State->Fn = &Fn;
    State->Remaining.store(N, std::memory_order_relaxed);
    std::unique_lock<std::mutex> Lock(Mu);
    Current = State;
    ++Generation;
    WakeCV.notify_all();
    DoneCV.wait(Lock, [&] {
      return State->Remaining.load(std::memory_order_acquire) == 0;
    });
    Current.reset();
  }

private:
  /// Per-run state. Stragglers from a finished batch still hold their
  /// shared_ptr and see an exhausted index counter, so they can never
  /// touch the next batch's function or indices.
  struct Batch {
    int N = 0;
    const std::function<void(int)> *Fn = nullptr;
    std::atomic<int> Next{0};
    std::atomic<int> Remaining{0};
  };

  void workerLoop() {
    uint64_t Seen = 0;
    while (true) {
      std::shared_ptr<Batch> B;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        WakeCV.wait(Lock, [&] { return Stopping || Generation != Seen; });
        if (Stopping)
          return;
        Seen = Generation;
        B = Current;
      }
      if (!B)
        continue;
      while (true) {
        const int I = B->Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= B->N)
          break;
        (*B->Fn)(I);
        if (B->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> Lock(Mu);
          DoneCV.notify_all();
        }
      }
    }
  }

  std::mutex Mu;
  std::condition_variable WakeCV, DoneCV;
  uint64_t Generation = 0;
  bool Stopping = false;
  std::shared_ptr<Batch> Current;
  std::vector<std::jthread> Workers;
};

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

namespace {

uint64_t mixAux(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  H *= 0xff51afd7ed558ccdULL;
  return H ^ (H >> 33);
}

/// Everything besides the loop itself that determines a slack answer.
uint64_t slackAux(const ServiceConfig &Config, const SchedulerOptions &O) {
  uint64_t H = mixAux(0x51acULL, machineFingerprint(Config.Machine));
  H = mixAux(H, O.DynamicPriority);
  H = mixAux(H, O.Bidirectional);
  H = mixAux(H, O.RecurrencesFirst);
  H = mixAux(H, O.HalveCriticalSlack);
  H = mixAux(H, O.HalveDividerSlack);
  H = mixAux(H, static_cast<uint64_t>(O.IIIncrementPct));
  H = mixAux(H, static_cast<uint64_t>(O.BudgetRatio));
  H = mixAux(H, static_cast<uint64_t>(O.IICap.MaxIIFactor));
  H = mixAux(H, static_cast<uint64_t>(O.IICap.MaxIISlack));
  H = mixAux(H, static_cast<uint64_t>(O.AcyclicPadStep));
  return H;
}

/// Everything besides the loop itself that determines an exact answer.
/// The deadline is deliberately absent: deadline-shortened outcomes are
/// never cached.
uint64_t exactAux(const ServiceConfig &Config, const ExactOptions &O) {
  uint64_t H = mixAux(0xe8acULL, machineFingerprint(Config.Machine));
  H = mixAux(H, static_cast<uint64_t>(O.Engine));
  H = mixAux(H, static_cast<uint64_t>(O.NodeBudget));
  H = mixAux(H, static_cast<uint64_t>(O.SatConflictBudget));
  H = mixAux(H, static_cast<uint64_t>(O.MaxLiveNodeBudget));
  H = mixAux(H, static_cast<uint64_t>(O.MaxLiveConflictBudget));
  H = mixAux(H, static_cast<uint64_t>(O.IICap.MaxIIFactor));
  H = mixAux(H, static_cast<uint64_t>(O.IICap.MaxIISlack));
  H = mixAux(H, O.MinimizeMaxLive);
  return H;
}

CachedSchedule fromSchedule(const Schedule &S, long MaxLive) {
  CachedSchedule C;
  C.Success = S.Success;
  C.II = S.II;
  C.MII = S.MII;
  C.ResMII = S.ResMII;
  C.RecMII = S.RecMII;
  C.MaxLive = MaxLive;
  C.Status = S.Success ? ExactStatus::Optimal : ExactStatus::Infeasible;
  if (S.Success)
    C.Times = S.Times;
  return C;
}

} // namespace

/// Counts a handle() call as in flight for drain(); the last one out
/// notifies waiters.
class SchedulingService::InFlightGuard {
public:
  explicit InFlightGuard(SchedulingService &S) : S(S) {
    S.InFlight.fetch_add(1, std::memory_order_acquire);
  }
  ~InFlightGuard() {
    if (S.InFlight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> Lock(S.DrainMu);
      S.DrainCV.notify_all();
    }
  }

private:
  SchedulingService &S;
};

SchedulingService::SchedulingService(ServiceConfig ConfigIn)
    : Config(std::move(ConfigIn)), Jobs(resolveJobs(Config.Jobs)),
      Cache(Config.CacheCapacity, Config.CacheShards),
      Front(Config.FrontCacheCapacity, Config.CacheShards) {
  if (!Config.StorePath.empty() &&
      !Store.open(Config.StorePath, StoreOpenError))
    Metrics.inc("store_open_failures");
  if (Jobs > 1)
    Workers = std::make_unique<Pool>(Jobs);
}

SchedulingService::~SchedulingService() {
  // Shutdown ordering: finish every admitted request first, then join the
  // pool, then close the store the requests were writing through.
  drain();
  Workers.reset();
  Store.close();
}

void SchedulingService::beginDrain() {
  Draining.store(true, std::memory_order_release);
}

bool SchedulingService::accepting() const {
  return !Draining.load(std::memory_order_acquire);
}

void SchedulingService::drain() {
  beginDrain();
  std::unique_lock<std::mutex> Lock(DrainMu);
  DrainCV.wait(Lock, [&] {
    return InFlight.load(std::memory_order_acquire) == 0;
  });
}

ServiceResponse SchedulingService::handle(const ServiceRequest &ReqIn,
                                          int Index, AdmitMode Mode) {
  const InFlightGuard Guard(*this);
  const auto T0 = std::chrono::steady_clock::now();
  // SlackOnly admission reuses the deterministic deadline-expired path:
  // forcing DeadlineMs to 0 makes an exact request degrade to the slack
  // heuristic without touching an exact engine, and the front-cache key
  // already distinguishes the forced variant (the DeadlineMs == 0 flag is
  // part of it).
  ServiceRequest SlackOnlyReq;
  const ServiceRequest *ReqP = &ReqIn;
  if (Mode == AdmitMode::SlackOnly &&
      ReqIn.Engine != ServiceEngine::Slack && ReqIn.DeadlineMs != 0) {
    SlackOnlyReq = ReqIn;
    SlackOnlyReq.DeadlineMs = 0;
    ReqP = &SlackOnlyReq;
  }
  const ServiceRequest &Req = *ReqP;
  ServiceResponse Resp;
  Resp.Index = Index;
  Resp.Id = Req.Id;
  Resp.Engine = Req.Engine;
  Metrics.inc("requests_total");
  Metrics.inc(std::string("requests_engine_") +
              serviceEngineName(Req.Engine));
  if (Mode == AdmitMode::SlackOnly)
    Metrics.inc("requests_admit_slack_only");
  else if (Mode == AdmitMode::CachedOnly)
    Metrics.inc("requests_admit_cached_only");

  // -- Front cache: fully-rendered responses keyed on the raw payload
  // text and everything else that determines the line. A hit skips
  // parsing, canonicalization, scheduling, and validation. Requests with
  // an armed wall-clock deadline (DeadlineMs > 0) bypass this tier: their
  // degradation outcome is time-dependent, and every front entry must be
  // a pure function of the request. (DeadlineMs == 0 degrades
  // deterministically and is eligible; the flag is part of the key.)
  const bool FrontEligible = Req.DeadlineMs <= 0;
  CacheKey FrontKey;
  if (FrontEligible) {
    uint64_t Hi = 0x66726f6e745f6869ULL; // "front_hi"
    for (const char C : Req.Kernel)
      Hi = mixAux(Hi, static_cast<unsigned char>(C));
    uint64_t Lo = 0x66726f6e745f6c6fULL; // "front_lo"
    for (const char C : Req.Source)
      Lo = mixAux(Lo, static_cast<unsigned char>(C));
    uint64_t Aux = mixAux(0xf307ULL, static_cast<uint64_t>(Req.Engine));
    Aux = mixAux(Aux, slackAux(Config, Config.Slack));
    Aux = mixAux(Aux, exactAux(Config, Config.Exact));
    Aux = mixAux(Aux, static_cast<uint64_t>(Req.MaxII));
    Aux = mixAux(Aux, Req.DeadlineMs == 0);
    Aux = mixAux(Aux, Req.EmitTimes);
    FrontKey = CacheKey{Hi, Lo, Aux};
  }

  const auto finish = [&](ServiceResponse &R,
                          bool Replayed = false) -> ServiceResponse & {
    const auto Micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - T0)
                            .count();
    Metrics.observe("request_latency_us", Micros);
    Metrics.observe(std::string("request_latency_us_") +
                        serviceEngineName(Req.Engine),
                    Micros);
    Metrics.inc(R.Ok ? "requests_ok" : "requests_error");
    if (R.Ok)
      Metrics.inc(std::string("responses_tier_") + serviceTierName(R.Tier));
    // CachedOnly answers are re-tiered replays; inserting them would
    // poison the front cache for full-admission traffic.
    if (FrontEligible && !Replayed && Mode != AdmitMode::CachedOnly)
      Front.insert(FrontKey, R);
    return R;
  };
  const auto fail = [&](ServiceErrorCode Code, const std::string &Why) {
    Resp.Ok = false;
    Resp.Code = Code;
    Resp.Error = Why;
    return finish(Resp);
  };
  // The cached rung found nothing: report Overloaded WITHOUT caching the
  // outcome, so the caller (the socket front end) sheds this request.
  const auto cacheMiss = [&]() {
    Resp.Ok = false;
    Resp.Code = ServiceErrorCode::Overloaded;
    Resp.Tier = ServiceTier::Shed;
    Resp.Error = "server overloaded and no cached schedule for this loop";
    Metrics.inc("requests_cached_only_misses");
    return finish(Resp, /*Replayed=*/true);
  };

  if (FrontEligible) {
    ServiceResponse Hit;
    if (Front.lookup(FrontKey, Hit)) {
      // Index/Id/Name are per-request echoes, not part of the answer.
      Hit.Index = Index;
      Hit.Id = Req.Id;
      Hit.Name = Req.Name.empty()
                     ? (Req.Kernel.empty() ? std::string("inline")
                                           : Req.Kernel)
                     : Req.Name;
      if (Mode == AdmitMode::CachedOnly && Hit.Ok)
        Hit.Tier = ServiceTier::Cached;
      Metrics.inc("requests_front_hits");
      if (Hit.Degraded)
        Metrics.inc("requests_degraded");
      return finish(Hit, /*Replayed=*/true);
    }
  }

  // -- Resolve the loop body (named kernel or inline DSL). ----------------
  LoopBody Body;
  if (!Req.Kernel.empty()) {
    Resp.Name = Req.Name.empty() ? Req.Kernel : Req.Name;
    const NamedKernel *Found = nullptr;
    for (const NamedKernel &K : kernelSources())
      if (Req.Kernel == K.Name)
        Found = &K;
    if (!Found)
      return fail(ServiceErrorCode::UnknownKernel,
                  "unknown kernel '" + Req.Kernel + "'");
    const std::string Err = compileLoop(Found->Source, Resp.Name, Body);
    if (!Err.empty())
      return fail(ServiceErrorCode::CompileError,
                  "kernel '" + Req.Kernel + "' failed to compile: " + Err);
  } else {
    Resp.Name = Req.Name.empty() ? "inline" : Req.Name;
    const std::string Err = compileLoop(Req.Source, Resp.Name, Body);
    if (!Err.empty())
      return fail(ServiceErrorCode::CompileError, Err);
  }

  // -- Canonicalize. Schedules are only legal relative to their body's
  // greedy functional-unit assignment (assignFunctionalUnits walks ops in
  // id order), so canonical issue cycles remap soundly to the request's
  // numbering only when the request's unit partition REFINES the canonical
  // one: any two ops sharing a request-side instance must share a
  // canonical instance, so the canonical schedule's conflict-freedom
  // carries over (splits and instance relabelings are harmless; only
  // merging two canonical instances could double-book). When it does, the
  // canonical body is scheduled and the cache is shared across every
  // compatible renumbering of the loop. When it does not, the request body
  // itself is scheduled and cached under a numbering-sensitive key,
  // trading cross-numbering sharing for soundness. Both paths are
  // deterministic, so hits, misses, and worker counts all produce
  // bit-identical responses.
  const LoopKey Key = canonicalLoopKey(Body);
  const LoopBody Canon = canonicalLoopBody(Body, Key);
  bool Equivariant = true;
  {
    const std::vector<int> InstReq =
        assignFunctionalUnits(Body, Config.Machine);
    const std::vector<int> InstCanon =
        assignFunctionalUnits(Canon, Config.Machine);
    // Induced map (kind, request instance) -> canonical instance; it must
    // be single-valued.
    std::map<std::pair<int, int>, int> Induced;
    for (const Operation &Op : Body.Ops) {
      if (Config.Machine.unitFor(Op.Opc) == FuKind::None)
        continue;
      const int Kind = static_cast<int>(Config.Machine.unitFor(Op.Opc));
      const int CanonInst = InstCanon[static_cast<size_t>(
          Key.OpPerm[static_cast<size_t>(Op.Id)])];
      const auto [It, Inserted] = Induced.try_emplace(
          {Kind, InstReq[static_cast<size_t>(Op.Id)]}, CanonInst);
      if (!Inserted && It->second != CanonInst) {
        Equivariant = false;
        break;
      }
    }
  }
  uint64_t KeyHi = Key.Hi, KeyLo = Key.Lo;
  if (!Equivariant) {
    const uint64_t Raw = rawLoopFingerprint(Body);
    KeyHi ^= Raw;
    KeyLo ^= Raw * 0x9e3779b97f4a7c15ULL;
    Metrics.inc("requests_order_bound");
  }
  const LoopBody &Target = Equivariant ? Canon : Body;
  const DepGraph TargetGraph(Target, Config.Machine);

  CachedSchedule Result;
  bool HaveResult = false;
  bool NearestUsed = false;
  const bool WantExact = Req.Engine != ServiceEngine::Slack;

  if (WantExact) {
    ExactOptions EO = Config.Exact;
    switch (Req.Engine) {
    case ServiceEngine::Sat:
      EO.Engine = ExactEngineKind::Sat;
      break;
    case ServiceEngine::Portfolio:
      EO.Engine = ExactEngineKind::Portfolio;
      break;
    default:
      EO.Engine = ExactEngineKind::BranchAndBound;
      break;
    }
    if (Req.MaxII > 0) {
      EO.IICap.MaxIIFactor = 0;
      EO.IICap.MaxIISlack = Req.MaxII;
    }
    const CacheKey CK{KeyHi, KeyLo, exactAux(Config, EO)};
    if (Cache.lookup(CK, Result)) {
      HaveResult = true;
      Resp.ExactVerdict = Result.Status;
    } else if (Store.get(CK, Result)) {
      // Persistent tier: a previous run (possibly a previous process)
      // already computed this answer. Promote it into the LRU.
      Metrics.inc("store_hits");
      Cache.insert(CK, Result);
      HaveResult = true;
      Resp.ExactVerdict = Result.Status;
    } else if (Mode == AdmitMode::CachedOnly) {
      // No precomputed exact answer; fall through to the cached slack
      // rungs below without running an engine.
      Resp.ExactVerdict = ExactStatus::Timeout;
    } else if (Req.DeadlineMs == 0) {
      // A zero deadline has expired before any work can happen; skip the
      // solve entirely so the degradation path is wall-clock independent.
      Resp.ExactVerdict = ExactStatus::Timeout;
    } else {
      if (Req.DeadlineMs > 0)
        EO.Deadline = T0 + std::chrono::milliseconds(Req.DeadlineMs);
      const ExactResult R = scheduleLoopExact(TargetGraph, EO);
      Resp.ExactVerdict = R.Status;
      CachedSchedule C;
      C.Success = R.Sched.Success;
      C.II = R.Sched.II;
      C.MII = R.Sched.MII;
      C.ResMII = R.Sched.ResMII;
      C.RecMII = R.Sched.RecMII;
      C.MaxLive = R.MaxLive;
      C.MaxLiveProven = R.MaxLiveProven;
      C.Certificate = R.Certificate;
      C.Status = R.Status;
      if (R.Sched.Success)
        C.Times = R.Sched.Times;
      // Deadline-free outcomes are deterministic under the service's fixed
      // budgets and safe to replay; with a deadline armed only a proven
      // Optimal is (an Optimal ladder never hit the deadline). The same
      // eligibility rule governs the persistent write-through.
      if (Req.DeadlineMs < 0 || R.Status == ExactStatus::Optimal) {
        Cache.insert(CK, C);
        if (Store.put(CK, C))
          Metrics.inc("store_writes");
      }
      Result = std::move(C);
      HaveResult = true;
    }
    if (HaveResult && !Result.Success)
      HaveResult = false; // cached Infeasible/Timeout: degrade below
  }

  if (!HaveResult) {
    // Slack path: the requested engine, or the degradation fallback.
    SchedulerOptions SO = Config.Slack;
    if (Req.MaxII > 0) {
      SO.IICap.MaxIIFactor = 0;
      SO.IICap.MaxIISlack = Req.MaxII;
    }
    const CacheKey SK{KeyHi, KeyLo, slackAux(Config, SO)};
    if (!Cache.lookup(SK, Result)) {
      if (Store.get(SK, Result)) {
        Metrics.inc("store_hits");
        Cache.insert(SK, Result);
      } else if (Mode == AdmitMode::CachedOnly) {
        // Last rung: any persisted schedule for this loop, whatever the
        // options aux it was computed under (a different engine or budget
        // configuration). Validation below still guards the answer.
        if (!Store.getByLoop(KeyHi, KeyLo, Result) || !Result.Success)
          return cacheMiss();
        Metrics.inc("store_nearest_hits");
        NearestUsed = true;
      } else {
        const Schedule S = scheduleLoop(TargetGraph, SO);
        long MaxLive = -1;
        if (S.Success)
          MaxLive =
              computePressure(Target, S.Times, S.II, RegClass::RR).MaxLive;
        Result = fromSchedule(S, MaxLive);
        Cache.insert(SK, Result);
        if (Store.put(SK, Result))
          Metrics.inc("store_writes");
      }
    }
    if (WantExact) {
      Resp.Degraded = true;
      Metrics.inc("requests_degraded");
    }
    if (!Result.Success) {
      if (Mode == AdmitMode::CachedOnly)
        return cacheMiss(); // a cached failure is not an answer; shed
      return fail(ServiceErrorCode::NoSchedule,
                  WantExact
                      ? "exact engine gave up and the slack fallback found "
                        "no schedule within the II cap"
                      : "no schedule within the II cap");
    }
  }

  // The per-request cap is a hard constraint. The heuristic's ladder only
  // consults its cap when escalating — its first attempt at MII can
  // "succeed" past a cap below MII — so enforce it on the answer.
  if (Req.MaxII > 0 && Result.II > Req.MaxII)
    return fail(ServiceErrorCode::MaxIIExceeded,
                "no schedule within max_ii " + std::to_string(Req.MaxII) +
                    " (minimum initiation interval is " +
                    std::to_string(Result.MII) + ")");

  // -- Remap the schedule back to the request's numbering (the identity
  // when the request body was scheduled directly) and re-validate against
  // the request's own dependence graph. -----------------------------------
  std::vector<int> Times;
  if (Equivariant) {
    Times.resize(static_cast<size_t>(Body.numOps()));
    for (int Op = 0; Op < Body.numOps(); ++Op)
      Times[static_cast<size_t>(Op)] = Result.Times[static_cast<size_t>(
          Key.OpPerm[static_cast<size_t>(Op)])];
  } else {
    Times = Result.Times;
  }
  if (Config.ValidateResponses) {
    Schedule Check;
    Check.Success = true;
    Check.II = Result.II;
    Check.MII = Result.MII;
    Check.Times = Times;
    const DepGraph ReqGraph(Body, Config.Machine);
    const std::string V = validateSchedule(ReqGraph, Check);
    if (!V.empty()) {
      // A nearest-per-loop record can legitimately fail here (it was
      // written under a different machine/options aux): that rung simply
      // has no answer, so shed rather than report an internal error.
      if (NearestUsed)
        return cacheMiss();
      Metrics.inc("responses_validation_failures");
      return fail(ServiceErrorCode::Internal,
                  "internal: remapped schedule failed validation: " + V);
    }
  }

  Resp.Ok = true;
  Resp.Tier = Mode == AdmitMode::CachedOnly
                  ? ServiceTier::Cached
                  : (WantExact && !Resp.Degraded ? ServiceTier::Exact
                                                 : ServiceTier::Slack);
  Resp.II = Result.II;
  Resp.MII = Result.MII;
  Resp.ResMII = Result.ResMII;
  Resp.RecMII = Result.RecMII;
  Resp.Length = Times[1]; // Stop is operation 1 in every numbering
  Resp.MaxLive = Result.MaxLive;
  // Degraded responses carry the slack schedule, whose pressure is never
  // certified (the slack cache entry always has Certificate None).
  Resp.MaxLiveProven = Result.MaxLiveProven;
  Resp.Certificate = Result.Certificate;
  if (Req.EmitTimes)
    Resp.Times = std::move(Times);
  return finish(Resp);
}

std::vector<ServiceResponse>
SchedulingService::handleBatch(const std::vector<ServiceRequest> &Requests) {
  std::vector<ServiceResponse> Responses(Requests.size());
  const int N = static_cast<int>(Requests.size());
  const std::function<void(int)> Work = [&](int I) {
    Responses[static_cast<size_t>(I)] =
        handle(Requests[static_cast<size_t>(I)], I);
  };
  if (Workers)
    Workers->run(N, Work);
  else
    for (int I = 0; I < N; ++I)
      Work(I);
  return Responses;
}

bool SchedulingService::parseRequestLine(const std::string &Line,
                                         ServiceRequest &Out,
                                         std::string &Err,
                                         ServiceEngine DefaultEngine) {
  std::map<std::string, JsonScalar> Obj;
  if (!parseFlatJsonObject(Line, Obj, Err))
    return false;
  Out = ServiceRequest();
  Out.Engine = DefaultEngine;
  const auto takeString = [&](const char *Field, std::string &Dst) {
    const auto It = Obj.find(Field);
    if (It == Obj.end())
      return true;
    if (It->second.K != JsonScalar::String) {
      Err = std::string("field \"") + Field + "\" must be a string";
      return false;
    }
    Dst = It->second.S;
    Obj.erase(It);
    return true;
  };
  const auto takeInteger = [&](const char *Field, long &Dst) {
    const auto It = Obj.find(Field);
    if (It == Obj.end())
      return true;
    if (It->second.K != JsonScalar::Number ||
        It->second.N != static_cast<double>(static_cast<long>(It->second.N))) {
      Err = std::string("field \"") + Field + "\" must be an integer";
      return false;
    }
    Dst = static_cast<long>(It->second.N);
    Obj.erase(It);
    return true;
  };
  const auto takeBool = [&](const char *Field, bool &Dst) {
    const auto It = Obj.find(Field);
    if (It == Obj.end())
      return true;
    if (It->second.K != JsonScalar::Bool) {
      Err = std::string("field \"") + Field + "\" must be a boolean";
      return false;
    }
    Dst = It->second.B;
    Obj.erase(It);
    return true;
  };

  std::string EngineName;
  long MaxII = 0;
  if (!takeString("id", Out.Id) || !takeString("name", Out.Name) ||
      !takeString("kernel", Out.Kernel) || !takeString("source", Out.Source) ||
      !takeString("engine", EngineName) ||
      !takeInteger("deadline_ms", Out.DeadlineMs) ||
      !takeInteger("max_ii", MaxII) || !takeBool("emit_times", Out.EmitTimes))
    return false;
  if (!Obj.empty()) {
    Err = "unknown field \"" + Obj.begin()->first + "\"";
    return false;
  }
  if (!EngineName.empty() && !parseServiceEngine(EngineName, Out.Engine)) {
    Err = "unknown engine \"" + EngineName +
          "\" (expected slack, bnb, sat, or portfolio)";
    return false;
  }
  if (Out.Kernel.empty() == Out.Source.empty()) {
    Err = Out.Kernel.empty()
              ? "request needs exactly one of \"kernel\" or \"source\""
              : "request may not set both \"kernel\" and \"source\"";
    return false;
  }
  if (MaxII < 0) {
    Err = "field \"max_ii\" must be non-negative";
    return false;
  }
  Out.MaxII = static_cast<int>(MaxII);
  return true;
}

ServiceResponse SchedulingService::handleLine(const std::string &Line,
                                              int Index,
                                              ServiceEngine DefaultEngine,
                                              AdmitMode Mode) {
  ServiceRequest Req;
  std::string Err;
  if (parseRequestLine(Line, Req, Err, DefaultEngine))
    return handle(Req, Index, Mode);
  ServiceResponse Resp;
  Resp.Index = Index;
  Resp.Name = "invalid";
  Resp.Code = ServiceErrorCode::BadRequest;
  Resp.Error = "bad request: " + Err;
  Metrics.inc("requests_parse_errors");
  return Resp;
}

bool SchedulingService::handleLineCachedOnly(const std::string &Line,
                                             int Index,
                                             ServiceEngine DefaultEngine,
                                             ServiceResponse &Out) {
  Out = handleLine(Line, Index, DefaultEngine, AdmitMode::CachedOnly);
  // Parse errors and other request-level failures ARE answers; only the
  // ladder-exhausted Overloaded outcome means "nothing cached, shed me".
  return Out.Ok || Out.Code != ServiceErrorCode::Overloaded;
}

int SchedulingService::processJsonl(std::istream &In, std::ostream &Out,
                                    ServiceEngine DefaultEngine) {
  std::vector<std::string> Batch;
  std::string Line;
  while (std::getline(In, Line)) {
    const size_t FirstCh = Line.find_first_not_of(" \t\r");
    if (FirstCh == std::string::npos || Line[FirstCh] == '#')
      continue;
    Batch.push_back(Line);
  }

  std::vector<ServiceResponse> Responses(Batch.size());
  const int N = static_cast<int>(Batch.size());
  const std::function<void(int)> Work = [&](int I) {
    Responses[static_cast<size_t>(I)] =
        handleLine(Batch[static_cast<size_t>(I)], I, DefaultEngine);
  };
  if (Workers)
    Workers->run(N, Work);
  else
    for (int I = 0; I < N; ++I)
      Work(I);

  int Failures = 0;
  for (const ServiceResponse &R : Responses) {
    Out << R.toJsonl() << '\n';
    if (!R.Ok)
      ++Failures;
  }
  return Failures;
}

namespace {

void appendCacheJson(std::ostream &OS, const ScheduleCache::Stats &S,
                     size_t Capacity, int Shards) {
  char HitRate[32];
  std::snprintf(HitRate, sizeof(HitRate), "%.4f", S.hitRate());
  OS << "{\"capacity\": " << Capacity << ", \"shards\": " << Shards
     << ", \"entries\": " << S.Entries << ", \"hits\": " << S.Hits
     << ", \"misses\": " << S.Misses << ", \"evictions\": " << S.Evictions
     << ", \"insertions\": " << S.Insertions << ", \"hit_rate\": " << HitRate
     << '}';
}

void appendStoreJson(std::ostream &OS, bool Open,
                     const ScheduleStoreStats &S) {
  char HitRate[32];
  std::snprintf(HitRate, sizeof(HitRate), "%.4f", S.hitRate());
  OS << "{\"open\": " << (Open ? "true" : "false") << ", \"hits\": " << S.Hits
     << ", \"misses\": " << S.Misses << ", \"appends\": " << S.Appends
     << ", \"live_keys\": " << S.LiveKeys
     << ", \"recovered_records\": " << S.RecoveredRecords
     << ", \"truncated_bytes\": " << S.TruncatedBytes
     << ", \"torn_records\": " << S.TornRecords
     << ", \"compactions\": " << S.Compactions
     << ", \"log_bytes\": " << S.LogBytes
     << ", \"dead_bytes\": " << S.DeadBytes << ", \"hit_rate\": " << HitRate
     << '}';
}

} // namespace

std::string SchedulingService::metricsJson(bool Pretty) const {
  const char *Sep = Pretty ? ",\n  " : ", ";
  std::ostringstream OS;
  OS << "{" << (Pretty ? "\n  " : "") << "\"jobs\": " << Jobs << Sep
     << "\"cache\": ";
  appendCacheJson(OS, Cache.stats(), Cache.capacity(), Cache.shards());
  OS << Sep << "\"front_cache\": ";
  appendCacheJson(OS, Front.stats(), Front.capacity(), Front.shards());
  OS << Sep << "\"store\": ";
  appendStoreJson(OS, Store.isOpen(), Store.stats());
  OS << Sep << "\"metrics\": " << Metrics.toJson(Pretty) << "}"
     << (Pretty ? "\n" : "");
  return OS.str();
}
