#include "cgra/CgraModel.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

using namespace lsms;

const char *lsms::peCapName(PeCap Cap) {
  switch (Cap) {
  case PeCap::Mem:
    return "mem";
  case PeCap::Alu:
    return "alu";
  case PeCap::Mul:
    return "mul";
  case PeCap::Div:
    return "div";
  }
  return "?";
}

PeCap lsms::peCapForFuKind(FuKind Kind) {
  switch (Kind) {
  case FuKind::MemoryPort:
    return PeCap::Mem;
  case FuKind::AddressAlu:
  case FuKind::Adder:
    return PeCap::Alu;
  case FuKind::Multiplier:
    return PeCap::Mul;
  case FuKind::Divider:
    return PeCap::Div;
  case FuKind::Branch:
  case FuKind::None:
    break;
  }
  assert(false && "kind takes no PE slot");
  return PeCap::Alu;
}

CgraModel::CgraModel()
    : Base(MachineModel::cydra5()), Flat(MachineModel::cydra5()) {}

namespace {

constexpr uint8_t capBit(PeCap Cap) {
  return static_cast<uint8_t>(1u << static_cast<unsigned>(Cap));
}

constexpr uint8_t AllCaps = capBit(PeCap::Mem) | capBit(PeCap::Alu) |
                            capBit(PeCap::Mul) | capBit(PeCap::Div);

/// The FuKinds whose unit counts the flattening derives from PE caps.
constexpr FuKind PlacedKinds[] = {FuKind::MemoryPort, FuKind::AddressAlu,
                                  FuKind::Adder, FuKind::Multiplier,
                                  FuKind::Divider};

} // namespace

void CgraModel::rebuildFlat() {
  Flat = Base;
  for (const FuKind Kind : PlacedKinds) {
    const int Capable = capableCount(peCapForFuKind(Kind));
    Flat.setUnitCount(Kind, std::max(1, Capable));
  }
}

CgraModel CgraModel::defaultGrid(int Rows, int Cols) {
  assert(Rows >= 1 && Cols >= 1 && "degenerate grid");
  CgraModel M;
  M.Rows = Rows;
  M.Cols = Cols;
  M.Torus = false;
  M.HopLatency = 1;
  M.RouteCap = 2;
  M.Caps.assign(static_cast<size_t>(Rows) * static_cast<size_t>(Cols),
                capBit(PeCap::Alu));
  for (int R = 0; R < Rows; ++R) {
    for (int C = 0; C < Cols; ++C) {
      uint8_t &Bits = M.Caps[static_cast<size_t>(M.peId(R, C))];
      if (C == 0)
        Bits |= capBit(PeCap::Mem);
      if (C >= (Cols + 1) / 2)
        Bits |= capBit(PeCap::Mul);
      if (R == Rows - 1 && C == Cols - 1)
        Bits |= capBit(PeCap::Div);
    }
  }
  // A 1-wide grid has no mul column; fall back to mul everywhere so the
  // model stays usable for degenerate test grids.
  if (M.capableCount(PeCap::Mul) == 0)
    for (uint8_t &Bits : M.Caps)
      Bits |= capBit(PeCap::Mul);
  M.rebuildFlat();
  return M;
}

int CgraModel::capableCount(PeCap Cap) const {
  int Count = 0;
  for (const uint8_t Bits : Caps)
    if (Bits & capBit(Cap))
      ++Count;
  return Count;
}

int CgraModel::hopDistance(int A, int B) const {
  int DR = std::abs(peRow(A) - peRow(B));
  int DC = std::abs(peCol(A) - peCol(B));
  if (Torus) {
    DR = std::min(DR, Rows - DR);
    DC = std::min(DC, Cols - DC);
  }
  return DR + DC;
}

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::istringstream IS(Line);
  std::string Tok;
  while (IS >> Tok)
    Tokens.push_back(Tok);
  return Tokens;
}

bool parsePositiveInt(const std::string &S, int &Out) {
  if (S.empty())
    return false;
  long V = 0;
  for (const char Ch : S) {
    if (Ch < '0' || Ch > '9')
      return false;
    V = V * 10 + (Ch - '0');
    if (V > 1 << 20)
      return false;
  }
  Out = static_cast<int>(V);
  return true;
}

/// "<rows>x<cols>" with both in [1, 64].
bool parseDims(const std::string &S, int &Rows, int &Cols) {
  const size_t X = S.find('x');
  if (X == std::string::npos)
    return false;
  if (!parsePositiveInt(S.substr(0, X), Rows) ||
      !parsePositiveInt(S.substr(X + 1), Cols))
    return false;
  return Rows >= 1 && Rows <= 64 && Cols >= 1 && Cols <= 64;
}

bool parseCapToken(const std::string &Tok, uint8_t &Bits) {
  if (Tok == "mem")
    Bits |= capBit(PeCap::Mem);
  else if (Tok == "alu")
    Bits |= capBit(PeCap::Alu);
  else if (Tok == "mul")
    Bits |= capBit(PeCap::Mul);
  else if (Tok == "div")
    Bits |= capBit(PeCap::Div);
  else if (Tok == "all")
    Bits |= AllCaps;
  else
    return false;
  return true;
}

} // namespace

bool CgraModel::parse(const std::string &Config, CgraModel &Out,
                      std::string &Err) {
  CgraModel M;
  bool SawGrid = false;
  bool SawPeLine = false;

  std::istringstream IS(Config);
  std::string RawLine;
  int LineNo = 0;
  while (std::getline(IS, RawLine)) {
    ++LineNo;
    const size_t Hash = RawLine.find('#');
    if (Hash != std::string::npos)
      RawLine.resize(Hash);
    const std::vector<std::string> Tok = tokenize(RawLine);
    if (Tok.empty())
      continue;
    std::ostringstream At;
    At << "cgra config line " << LineNo << ": ";

    if (Tok[0] == "grid") {
      if (SawGrid) {
        Err = At.str() + "duplicate grid line";
        return false;
      }
      if (Tok.size() < 2 || !parseDims(Tok[1], M.Rows, M.Cols)) {
        Err = At.str() + "bad grid dimensions '" +
              (Tok.size() < 2 ? std::string() : Tok[1]) +
              "' (want <rows>x<cols>, each in [1, 64])";
        return false;
      }
      for (size_t I = 2; I < Tok.size(); ++I) {
        int V = 0;
        if (Tok[I] == "mesh") {
          M.Torus = false;
        } else if (Tok[I] == "torus") {
          M.Torus = true;
        } else if (Tok[I].rfind("hop=", 0) == 0 &&
                   parsePositiveInt(Tok[I].substr(4), V)) {
          M.HopLatency = V;
        } else if (Tok[I] == "hop=0") {
          M.HopLatency = 0;
        } else if (Tok[I].rfind("route=", 0) == 0) {
          if (!parsePositiveInt(Tok[I].substr(6), V) || V == 0) {
            Err = At.str() + "routing capacity must be a positive integer: '" +
                  Tok[I] + "'";
            return false;
          }
          M.RouteCap = V;
        } else {
          Err = At.str() + "unknown grid attribute '" + Tok[I] + "'";
          return false;
        }
      }
      M.Caps.assign(static_cast<size_t>(M.Rows) * static_cast<size_t>(M.Cols),
                    AllCaps);
      SawGrid = true;
      continue;
    }

    if (Tok[0] == "pe") {
      if (!SawGrid) {
        Err = At.str() + "pe line before grid line";
        return false;
      }
      // pe <spec> : <cap>...
      size_t Colon = 0;
      while (Colon < Tok.size() && Tok[Colon] != ":")
        ++Colon;
      if (Tok.size() < 2 || Colon != 2 || Colon + 1 >= Tok.size()) {
        Err = At.str() + "want 'pe <row>,<col>|* : <cap>...'";
        return false;
      }
      uint8_t Bits = 0;
      for (size_t I = Colon + 1; I < Tok.size(); ++I) {
        if (!parseCapToken(Tok[I], Bits)) {
          Err = At.str() + "unknown capability '" + Tok[I] + "'";
          return false;
        }
      }
      if (Tok[1] == "*") {
        std::fill(M.Caps.begin(), M.Caps.end(), Bits);
      } else {
        const size_t Comma = Tok[1].find(',');
        int R = -1, C = -1;
        if (Comma == std::string::npos ||
            !parsePositiveInt(Tok[1].substr(0, Comma), R) ||
            !parsePositiveInt(Tok[1].substr(Comma + 1), C) || R >= M.Rows ||
            C >= M.Cols) {
          Err = At.str() + "bad PE address '" + Tok[1] + "' for a " +
                std::to_string(M.Rows) + "x" + std::to_string(M.Cols) +
                " grid";
          return false;
        }
        M.Caps[static_cast<size_t>(M.peId(R, C))] = Bits;
      }
      SawPeLine = true;
      continue;
    }

    Err = At.str() + "unknown directive '" + Tok[0] + "'";
    return false;
  }

  if (!SawGrid) {
    Err = "cgra config: missing grid line";
    return false;
  }
  (void)SawPeLine;
  M.rebuildFlat();
  Out = M;
  Err.clear();
  return true;
}

bool CgraModel::parseGridArg(const std::string &Arg, CgraModel &Out,
                             std::string &Err) {
  int Rows = 0, Cols = 0;
  if (!parseDims(Arg, Rows, Cols)) {
    Err = "bad grid '" + Arg + "' (want <rows>x<cols>, each in [1, 64])";
    return false;
  }
  Out = defaultGrid(Rows, Cols);
  return true;
}

std::string CgraModel::describe() const {
  std::ostringstream OS;
  OS << Rows << "x" << Cols << (Torus ? " torus" : " mesh") << ", hop "
     << HopLatency << ", route " << RouteCap << ", caps";
  for (unsigned I = 0; I < NumPeCaps; ++I) {
    const PeCap Cap = static_cast<PeCap>(I);
    OS << " " << peCapName(Cap) << "=" << capableCount(Cap);
  }
  return OS.str();
}
