//===----------------------------------------------------------------------===//
///
/// \file
/// Placement-aware modulo scheduling onto a CgraModel: the paper's
/// lifetime-sensitive slack heuristic extended from (op -> time) to
/// (op -> time, PE). The issue-time machinery is unchanged — static slack
/// priorities from the flat MinDist relation, a modulo time window per
/// operation, lifetime-sensitive scan direction, ejection with a budget,
/// geometric II escalation — but every candidate now also names a PE, and
/// legality charges interconnect hops to register-flow dependences whose
/// producer and consumer land on different PEs, bounds each PE to one
/// operation per modulo slot, and caps remote transfers per (PE, cycle).
///
/// validateMapping is the independent legality checker the differential
/// harness trusts: it re-derives every constraint from the graph and the
/// grid, sharing no code with the mapper's feasibility tests beyond the
/// route-counting helper.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CGRA_CGRAMAPPER_H
#define LSMS_CGRA_CGRAMAPPER_H

#include "cgra/CgraModel.h"
#include "core/IICapPolicy.h"
#include "ir/DepGraph.h"

#include <string>
#include <vector>

namespace lsms {

struct CgraMapOptions {
  /// Percentage for the II escalation step (II += max(II*Pct/100, 1)).
  int IIIncrementPct = 4;
  /// Ejection budget per II attempt, as a multiple of the op count.
  int BudgetRatio = 16;
  IICapPolicy IICap;
};

/// A spatial modulo schedule: issue time and PE per operation.
struct CgraMapping {
  bool Success = false;
  int II = 0;
  /// Flat-machine MII of the loop (a valid lower bound for the spatial II).
  int MII = 0;
  /// Issue time per op (Start/Stop materialized; indexed by op id).
  std::vector<int> Times;
  /// PE per op; -1 for Start/Stop/brtop (nothing occupying a PE slot).
  std::vector<int> Pes;
  long Ejections = 0;
  int Attempts = 0; ///< II rungs tried
};

/// Maps \p Graph (built over Cgra.flatModel()) onto the grid. On failure
/// (capability hole or II cap exhausted) returns Success == false with
/// MII/Attempts still filled in.
CgraMapping mapLoopCgra(const DepGraph &Graph, const CgraModel &Cgra,
                        const CgraMapOptions &Options = CgraMapOptions());

/// Checks a mapping against every spatial constraint: PE range and opcode
/// capability, one op per PE per modulo slot (reservation cycles included),
/// every dependence arc satisfied with hop delay charged to cross-PE
/// register flow, and per-(PE, cycle) route capacity. Returns "" when
/// legal, else a description of the first violation.
std::string validateMapping(const DepGraph &Graph, const CgraModel &Cgra,
                            const CgraMapping &Map);

/// Hop delay charged to arc \p Arc when its endpoints sit on PEs \p SrcPe
/// and \p DstPe (-1 = not placed): only register flow between two distinct
/// placed PEs pays interconnect latency; memory-ordering and control arcs
/// never route a value.
int arcHopDelay(const CgraModel &Cgra, const DepArc &Arc, int SrcPe,
                int DstPe);

/// Counts remote transfers per (PE, departure residue) into \p Counts
/// (size numPes * II, row-major by PE). A transfer is one producer op
/// sending to one distinct destination PE (fan-out to several consumers on
/// the same PE is a single transfer); it departs the producer's PE at
/// residue (time + latency) mod II. Returns false when some slot exceeds
/// Cgra.routeCapacity(), filling \p OverPe / \p OverResidue.
bool countRouteUse(const DepGraph &Graph, const CgraModel &Cgra,
                   const std::vector<int> &Times, const std::vector<int> &Pes,
                   int II, std::vector<int> &Counts, int *OverPe = nullptr,
                   int *OverResidue = nullptr);

} // namespace lsms

#endif // LSMS_CGRA_CGRAMAPPER_H
