#include "cgra/CgraOracle.h"

#include "bounds/Bounds.h"
#include "support/ParallelFor.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <ostream>
#include <sstream>

using namespace lsms;

CgraExactResult lsms::mapLoopCgraExact(const DepGraph &Graph,
                                       const CgraModel &Cgra,
                                       const CgraExactOptions &Options) {
  CgraExactResult Res;
  const MIIBounds Bounds = computeMII(Graph);
  Res.Map.MII = Bounds.MII;
  const int MaxII = Options.IICap.maxII(Bounds.MII);

  MinDistMatrix MD;
  std::vector<int> Times, Pes;
  bool SawBudget = false;
  for (int II = Bounds.MII; II <= MaxII; ++II) {
    ++Res.Attempts;
    if (!MD.compute(Graph, II))
      continue; // II < RecMII: infeasible at this rung by the cycle test
    const CgraSatStatus S = mapAtIICgraSat(Graph, Cgra, MD,
                                           Options.ConflictBudget, Times,
                                           Pes, Res.Sat);
    if (S == CgraSatStatus::Mapped) {
      Res.Status = SawBudget ? ExactStatus::Feasible : ExactStatus::Optimal;
      Res.Map.Success = true;
      Res.Map.II = II;
      Res.Map.Times = Times;
      Res.Map.Pes = Pes;
      return Res;
    }
    if (S == CgraSatStatus::Budget)
      SawBudget = true;
  }
  Res.Status = SawBudget ? ExactStatus::Timeout : ExactStatus::Infeasible;
  return Res;
}

CgraOracleCase lsms::runCgraOracleCase(const LoopBody &Body,
                                       const CgraOracleOptions &Options) {
  CgraOracleCase Case;
  Case.Name = Body.Name;
  Case.Ops = Body.numMachineOps();

  const DepGraph Graph(Body, Options.Cgra.flatModel());

  const CgraMapping Heur =
      mapLoopCgra(Graph, Options.Cgra, Options.Heuristic);
  Case.FlatMII = Heur.MII;
  Case.HeurSuccess = Heur.Success;
  Case.HeurII = Heur.II;
  Case.HeurEjections = Heur.Ejections;
  Case.HeurAttempts = Heur.Attempts;
  if (Heur.Success)
    Case.HeurError = validateMapping(Graph, Options.Cgra, Heur);

  const CgraExactResult Exact =
      mapLoopCgraExact(Graph, Options.Cgra, Options.Exact);
  Case.Status = Exact.Status;
  Case.ExactII = Exact.Map.II;
  Case.ExactConflicts = Exact.Sat.Conflicts;
  Case.ExactRefinements = Exact.Sat.Refinements;
  if (Exact.Map.Success)
    Case.ExactError = validateMapping(Graph, Options.Cgra, Exact.Map);

  if (Case.HeurSuccess && Exact.Map.Success) {
    Case.IIGapValid = true;
    Case.IIGap = Case.HeurII - Case.ExactII;
  }
  Case.AboveFlatMII =
      Case.Status == ExactStatus::Optimal && Case.ExactII > Case.FlatMII;

  std::ostringstream Parity;
  if (Case.Status == ExactStatus::Optimal && Case.HeurSuccess &&
      Case.HeurII < Case.ExactII)
    Parity << "heuristic II " << Case.HeurII
           << " beats proven-optimal II " << Case.ExactII;
  else if (Case.Status == ExactStatus::Infeasible && Case.HeurSuccess &&
           Case.HeurError.empty())
    Parity << "heuristic mapped at II " << Case.HeurII
           << " a loop SAT proved unmappable";
  Case.ParityError = Parity.str();
  return Case;
}

CgraOracleReport lsms::runCgraOracle(const CgraOracleOptions &Options) {
  CgraOracleReport Report;
  Report.Config = Options;

  std::vector<LoopBody> Loops;
  if (Options.IncludeKernels)
    Loops = buildKernelSuite();
  std::vector<LoopBody> Random = buildOracleSuite(
      Options.NumLoops, Options.MinOps, Options.MaxOps, Options.Seed,
      Options.Jobs);
  for (LoopBody &Body : Random)
    Loops.push_back(std::move(Body));

  const int N = static_cast<int>(Loops.size());
  Report.Cases.resize(static_cast<size_t>(N));
  parallelFor(resolveJobs(Options.Jobs), N, [&](int I) {
    Report.Cases[static_cast<size_t>(I)] =
        runCgraOracleCase(Loops[static_cast<size_t>(I)], Options);
  });

  for (const CgraOracleCase &Case : Report.Cases) {
    if (Case.HeurSuccess)
      ++Report.HeurMapped;
    if (Case.Status == ExactStatus::Optimal ||
        Case.Status == ExactStatus::Feasible)
      ++Report.ExactMapped;
    if (Case.Status == ExactStatus::Optimal)
      ++Report.CertifiedOptimal;
    if (Case.IIGapValid && Case.IIGap == 0)
      ++Report.HeurAtExactII;
    if (Case.AboveFlatMII)
      ++Report.AboveFlatMII;
    if (Case.Status == ExactStatus::Timeout)
      ++Report.Timeouts;
    if (Case.Status == ExactStatus::Infeasible)
      ++Report.Infeasible;
    if (!Case.HeurError.empty() || !Case.ExactError.empty())
      ++Report.ValidationFailures;
    if (!Case.ParityError.empty())
      ++Report.ParityViolations;
  }
  return Report;
}

void lsms::printCgraOracleReport(std::ostream &OS,
                                 const CgraOracleReport &Report) {
  TextTable Table;
  Table.setHeader({"loop", "ops", "flatMII", "heur II", "exact II", "status",
                   "gap", ">MII"});
  for (const CgraOracleCase &Case : Report.Cases) {
    std::vector<std::string> Row;
    Row.push_back(Case.Name);
    Row.push_back(std::to_string(Case.Ops));
    Row.push_back(std::to_string(Case.FlatMII));
    Row.push_back(Case.HeurSuccess ? std::to_string(Case.HeurII) : "-");
    Row.push_back((Case.Status == ExactStatus::Optimal ||
                   Case.Status == ExactStatus::Feasible)
                      ? std::to_string(Case.ExactII)
                      : "-");
    Row.push_back(exactStatusName(Case.Status));
    Row.push_back(Case.IIGapValid ? std::to_string(Case.IIGap) : "-");
    Row.push_back(Case.AboveFlatMII ? "*" : "");
    Table.addRow(std::move(Row));
  }
  Table.print(OS);

  OS << "\nGrid: " << Report.Config.Cgra.describe() << "\n";
  OS << "Loops: " << Report.Cases.size() << "  heuristic mapped: "
     << Report.HeurMapped << "  exact mapped: " << Report.ExactMapped
     << "  certified optimal: " << Report.CertifiedOptimal << "\n";
  OS << "Heuristic at exact II: " << Report.HeurAtExactII
     << "  spatial II above flat MII: " << Report.AboveFlatMII
     << "  timeouts: " << Report.Timeouts << "  infeasible: "
     << Report.Infeasible << "\n";
  OS << "Validation failures: " << Report.ValidationFailures
     << "  parity violations: " << Report.ParityViolations << "\n";
  for (const CgraOracleCase &Case : Report.Cases) {
    if (!Case.HeurError.empty())
      OS << "  " << Case.Name << ": heuristic mapping invalid: "
         << Case.HeurError << "\n";
    if (!Case.ExactError.empty())
      OS << "  " << Case.Name << ": exact mapping invalid: "
         << Case.ExactError << "\n";
    if (!Case.ParityError.empty())
      OS << "  " << Case.Name << ": parity: " << Case.ParityError << "\n";
  }
}
