//===----------------------------------------------------------------------===//
///
/// \file
/// The spatial target: an N x M grid of processing elements (PEs) in the
/// SAT-MapIt tradition of coarse-grained reconfigurable arrays. Each PE
/// executes at most one operation per cycle (a single universal issue slot
/// gated by per-PE opcode capabilities), the interconnect is a mesh or
/// torus with a configurable per-hop latency, and each PE can launch a
/// bounded number of remote value transfers per cycle (the routing
/// resource). Models are built from a small line-oriented config grammar
/// (parse) or the heterogeneous defaultGrid preset.
///
/// The grid flattens down to a MachineModel (flatModel) whose unit counts
/// are the capable-PE counts. That machine over-approximates the grid —
/// it ignores that one PE serves several capability classes and that
/// transfers cost hops — so its ResMII/RecMII/MinDist are valid LOWER
/// bounds for the spatial mapping problem, which is exactly what the
/// heuristic ladder and the SAT oracle need to start from.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CGRA_CGRAMODEL_H
#define LSMS_CGRA_CGRAMODEL_H

#include "machine/MachineModel.h"

#include <cassert>
#include <string>
#include <vector>

namespace lsms {

/// Per-PE capability classes. Coarser than FuKind: a CGRA PE advertises
/// what it can do, not how many copies of a unit it has (always one slot).
enum class PeCap : uint8_t {
  Mem, ///< loads/stores (FuKind::MemoryPort)
  Alu, ///< integer/float add-class + address arithmetic (AddressAlu, Adder)
  Mul, ///< multiplies (FuKind::Multiplier)
  Div, ///< divide/mod/sqrt, non-pipelined (FuKind::Divider)
};

inline constexpr unsigned NumPeCaps = 4;

/// Returns "mem", "alu", "mul", or "div".
const char *peCapName(PeCap Cap);

/// True for unit kinds that occupy a PE issue slot. Branch is loop control
/// (a global sequencer on real CGRAs) and pseudo-ops take no resources;
/// neither is placed on a PE.
inline bool fuKindNeedsPe(FuKind Kind) {
  return Kind != FuKind::None && Kind != FuKind::Branch;
}

/// The PE capability class serving \p Kind. Only valid when
/// fuKindNeedsPe(Kind).
PeCap peCapForFuKind(FuKind Kind);

/// The CGRA target description.
class CgraModel {
public:
  /// An empty (0x0) model; build real ones with parse or defaultGrid.
  CgraModel();

  /// The heterogeneous reference grid used by the benches: mesh, hop
  /// latency 1, route capacity 2/PE/cycle; every PE has alu, column 0 has
  /// mem, the right half has mul, and only the bottom-right PE has div.
  /// Keeping mem and mul on disjoint PEs makes recurrences that mix them
  /// pay interconnect hops — the constraint class a flat machine cannot
  /// express.
  static CgraModel defaultGrid(int Rows, int Cols);

  /// Parses the config grammar. Line-oriented; '#' starts a comment.
  ///
  ///   grid <rows>x<cols> [mesh|torus] [hop=<int>] [route=<int>]
  ///   pe * : <cap>...            # baseline for every PE
  ///   pe <row>,<col> : <cap>...  # override one PE
  ///
  /// Caps: mem alu mul div all. The grid line must come first; pe lines
  /// replace the capability set of the addressed PEs (later lines win).
  /// Without any pe line every PE gets every capability. Returns false
  /// with a diagnostic on bad grid dimensions, an unknown capability,
  /// non-positive route capacity, negative hop latency, or malformed
  /// lines.
  static bool parse(const std::string &Config, CgraModel &Out,
                    std::string &Err);

  /// Parses a "<rows>x<cols>" bench argument into defaultGrid(rows, cols).
  static bool parseGridArg(const std::string &Arg, CgraModel &Out,
                           std::string &Err);

  int rows() const { return Rows; }
  int cols() const { return Cols; }
  int numPes() const { return Rows * Cols; }
  bool isTorus() const { return Torus; }
  int hopLatency() const { return HopLatency; }
  /// Remote value transfers a PE may launch per cycle.
  int routeCapacity() const { return RouteCap; }

  int peId(int Row, int Col) const {
    assert(Row >= 0 && Row < Rows && Col >= 0 && Col < Cols);
    return Row * Cols + Col;
  }
  int peRow(int Pe) const { return Pe / Cols; }
  int peCol(int Pe) const { return Pe % Cols; }

  bool hasCap(int Pe, PeCap Cap) const {
    return (Caps[static_cast<size_t>(Pe)] &
            (1u << static_cast<unsigned>(Cap))) != 0;
  }

  /// True when \p Pe can execute \p Op (which must need a PE).
  bool capableOf(int Pe, Opcode Op) const {
    return hasCap(Pe, peCapForFuKind(Base.unitFor(Op)));
  }

  /// Number of PEs advertising \p Cap.
  int capableCount(PeCap Cap) const;

  /// Hop distance between two PEs: Manhattan on the mesh, wrap-around
  /// Manhattan on the torus.
  int hopDistance(int A, int B) const;

  /// Interconnect delay charged to a value moving from \p A to \p B.
  int hopDelay(int A, int B) const { return HopLatency * hopDistance(A, B); }

  /// Base machine supplying opcode latencies and reservation behaviour
  /// (the paper's Table 1 values; one slot per PE).
  const MachineModel &machine() const { return Base; }

  /// The flat over-approximation: unit counts = capable-PE counts (clamped
  /// to 1 so the MachineModel invariants hold even for absent caps —
  /// capableCount is the source of truth for mappability). MII/MinDist on
  /// this machine are valid lower bounds for the spatial problem.
  const MachineModel &flatModel() const { return Flat; }

  /// "4x4 mesh, hop 1, route 2, caps mem=4 alu=16 mul=8 div=1".
  std::string describe() const;

private:
  void rebuildFlat();

  int Rows = 0;
  int Cols = 0;
  bool Torus = false;
  int HopLatency = 1;
  int RouteCap = 2;
  std::vector<uint8_t> Caps; ///< capability bitmask per PE
  MachineModel Base;
  MachineModel Flat;
};

} // namespace lsms

#endif // LSMS_CGRA_CGRAMODEL_H
