#include "cgra/CgraMapper.h"

#include "bounds/Bounds.h"
#include "graph/MinDist.h"

#include <algorithm>
#include <array>
#include <climits>
#include <sstream>

using namespace lsms;

int lsms::arcHopDelay(const CgraModel &Cgra, const DepArc &Arc, int SrcPe,
                      int DstPe) {
  if (Arc.Value < 0 || SrcPe < 0 || DstPe < 0 || SrcPe == DstPe)
    return 0;
  return Cgra.hopDelay(SrcPe, DstPe);
}

namespace {

int safeMod(long T, int II) {
  return static_cast<int>(((T % II) + II) % II);
}

} // namespace

bool lsms::countRouteUse(const DepGraph &Graph, const CgraModel &Cgra,
                         const std::vector<int> &Times,
                         const std::vector<int> &Pes, int II,
                         std::vector<int> &Counts, int *OverPe,
                         int *OverResidue) {
  const int NumPes = Cgra.numPes();
  Counts.assign(static_cast<size_t>(NumPes) * static_cast<size_t>(II), 0);
  std::vector<char> SendsTo(static_cast<size_t>(NumPes), 0);
  bool Ok = true;
  for (int U = 0; U < Graph.numOps(); ++U) {
    if (Pes[static_cast<size_t>(U)] < 0 || Times[static_cast<size_t>(U)] < 0)
      continue;
    const int SrcPe = Pes[static_cast<size_t>(U)];
    std::fill(SendsTo.begin(), SendsTo.end(), 0);
    for (const int ArcId : Graph.succArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Value < 0)
        continue;
      const int DstPe = Pes[static_cast<size_t>(Arc.Dst)];
      if (DstPe < 0 || DstPe == SrcPe ||
          Times[static_cast<size_t>(Arc.Dst)] < 0)
        continue;
      SendsTo[static_cast<size_t>(DstPe)] = 1;
    }
    const int Departure =
        safeMod(Times[static_cast<size_t>(U)] + Graph.latency(U), II);
    for (int Pe = 0; Pe < NumPes; ++Pe) {
      if (!SendsTo[static_cast<size_t>(Pe)])
        continue;
      int &Slot = Counts[static_cast<size_t>(SrcPe) * static_cast<size_t>(II) +
                         static_cast<size_t>(Departure)];
      if (++Slot > Cgra.routeCapacity() && Ok) {
        Ok = false;
        if (OverPe)
          *OverPe = SrcPe;
        if (OverResidue)
          *OverResidue = Departure;
      }
    }
  }
  return Ok;
}

std::string lsms::validateMapping(const DepGraph &Graph, const CgraModel &Cgra,
                                  const CgraMapping &Map) {
  const int N = Graph.numOps();
  const MachineModel &M = Cgra.machine();
  std::ostringstream OS;
  if (Map.II < 1) {
    OS << "II " << Map.II << " < 1";
    return OS.str();
  }
  if (static_cast<int>(Map.Times.size()) != N ||
      static_cast<int>(Map.Pes.size()) != N)
    return "mapping arrays do not cover every operation";

  // PE range + capability; non-placed ops must carry no PE.
  for (int U = 0; U < N; ++U) {
    const Opcode Opc = Graph.body().op(U).Opc;
    const int Pe = Map.Pes[static_cast<size_t>(U)];
    if (fuKindNeedsPe(M.unitFor(Opc))) {
      if (Pe < 0 || Pe >= Cgra.numPes()) {
        OS << "op " << U << " placed on PE " << Pe << " outside the "
           << Cgra.rows() << "x" << Cgra.cols() << " grid";
        return OS.str();
      }
      if (!Cgra.capableOf(Pe, Opc)) {
        OS << "op " << U << " (" << opcodeName(Opc) << ") on PE " << Pe
           << " lacking the " << peCapName(peCapForFuKind(M.unitFor(Opc)))
           << " capability";
        return OS.str();
      }
    } else if (Pe != -1) {
      OS << "op " << U << " takes no PE slot but is placed on PE " << Pe;
      return OS.str();
    }
  }

  // One op per PE per modulo slot, reservation cycles included.
  std::vector<int> Owner(
      static_cast<size_t>(Cgra.numPes()) * static_cast<size_t>(Map.II), -1);
  for (int U = 0; U < N; ++U) {
    const int Pe = Map.Pes[static_cast<size_t>(U)];
    if (Pe < 0)
      continue;
    const int Res = M.reservationCycles(Graph.body().op(U).Opc);
    if (Res > Map.II) {
      OS << "op " << U << " reserves its PE for " << Res
         << " cycles, wrapping at II " << Map.II;
      return OS.str();
    }
    for (int K = 0; K < Res; ++K) {
      const int R = safeMod(Map.Times[static_cast<size_t>(U)] + K, Map.II);
      int &Slot = Owner[static_cast<size_t>(Pe) * static_cast<size_t>(Map.II) +
                        static_cast<size_t>(R)];
      if (Slot >= 0) {
        OS << "ops " << Slot << " and " << U << " both occupy PE " << Pe
           << " at residue " << R;
        return OS.str();
      }
      Slot = U;
    }
  }

  // Every dependence arc, with hop delay on cross-PE register flow.
  for (const DepArc &Arc : Graph.arcs()) {
    const int Hop = arcHopDelay(Cgra, Arc, Map.Pes[static_cast<size_t>(Arc.Src)],
                                Map.Pes[static_cast<size_t>(Arc.Dst)]);
    const long Need = static_cast<long>(Map.Times[static_cast<size_t>(Arc.Src)]) +
                      Arc.Latency + Hop -
                      static_cast<long>(Arc.Omega) * Map.II;
    if (Map.Times[static_cast<size_t>(Arc.Dst)] < Need) {
      OS << "arc " << Arc.Src << " -> " << Arc.Dst << " (latency "
         << Arc.Latency << " + hop " << Hop << ", omega " << Arc.Omega
         << ") violated: time " << Map.Times[static_cast<size_t>(Arc.Dst)]
         << " < " << Need;
      return OS.str();
    }
  }

  // Route capacity.
  std::vector<int> Counts;
  int OverPe = -1, OverR = -1;
  if (!countRouteUse(Graph, Cgra, Map.Times, Map.Pes, Map.II, Counts, &OverPe,
                     &OverR)) {
    OS << "route capacity " << Cgra.routeCapacity() << " exceeded on PE "
       << OverPe << " at residue " << OverR;
    return OS.str();
  }
  return std::string();
}

namespace {

/// One II attempt's mutable state for the ejection-based central loop.
class MapAttempt {
public:
  MapAttempt(const DepGraph &Graph, const CgraModel &Cgra, int II,
             const std::vector<long> &Estart, const std::vector<long> &Slack,
             const std::vector<std::vector<int>> &AllowedPes, long Budget)
      : Graph(Graph), Cgra(Cgra), M(Cgra.machine()), II(II), Estart(Estart),
        Slack(Slack), AllowedPes(AllowedPes), Budget(Budget),
        N(Graph.numOps()), Times(static_cast<size_t>(N), -1),
        Pes(static_cast<size_t>(N), -1),
        Scheduled(static_cast<size_t>(N), 0),
        PrevTime(static_cast<size_t>(N), LONG_MIN / 4),
        Owner(static_cast<size_t>(Cgra.numPes()) * static_cast<size_t>(II),
              -1) {}

  /// Runs the central loop over \p TimeOps; true when every op lands
  /// within the ejection budget.
  bool run(const std::vector<int> &TimeOps) {
    std::vector<char> Pending(static_cast<size_t>(N), 0);
    long NumPending = 0;
    for (const int U : TimeOps) {
      Pending[static_cast<size_t>(U)] = 1;
      ++NumPending;
    }
    while (NumPending > 0) {
      // Highest priority = smallest (slack, id) among pending ops.
      int U = -1;
      for (const int Cand : TimeOps)
        if (Pending[static_cast<size_t>(Cand)] &&
            (U < 0 || Slack[static_cast<size_t>(Cand)] <
                          Slack[static_cast<size_t>(U)]))
          U = Cand;
      Pending[static_cast<size_t>(U)] = 0;
      --NumPending;
      if (!placeOp(U, Pending, NumPending))
        return false;
    }
    return true;
  }

  const std::vector<int> &times() const { return Times; }
  const std::vector<int> &pes() const { return Pes; }
  long ejections() const { return Ejections; }

private:
  bool needsPe(int U) const {
    return fuKindNeedsPe(M.unitFor(Graph.body().op(U).Opc));
  }
  int resCycles(int U) const {
    return M.reservationCycles(Graph.body().op(U).Opc);
  }
  int &ownerSlot(int Pe, long T) {
    return Owner[static_cast<size_t>(Pe) * static_cast<size_t>(II) +
                 static_cast<size_t>(safeMod(T, II))];
  }

  /// Dependence feasibility of u at (t, pe) against scheduled neighbors.
  bool depsOk(int U, long T, int Pe) const {
    for (const int ArcId : Graph.predArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Src == U || !Scheduled[static_cast<size_t>(Arc.Src)])
        continue;
      const int Hop =
          arcHopDelay(Cgra, Arc, Pes[static_cast<size_t>(Arc.Src)], Pe);
      if (T < Times[static_cast<size_t>(Arc.Src)] + Arc.Latency + Hop -
                  static_cast<long>(Arc.Omega) * II)
        return false;
    }
    for (const int ArcId : Graph.succArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Dst == U || !Scheduled[static_cast<size_t>(Arc.Dst)])
        continue;
      const int Hop =
          arcHopDelay(Cgra, Arc, Pe, Pes[static_cast<size_t>(Arc.Dst)]);
      if (Times[static_cast<size_t>(Arc.Dst)] <
          T + Arc.Latency + Hop - static_cast<long>(Arc.Omega) * II)
        return false;
    }
    return true;
  }

  bool slotFree(int U, long T, int Pe) const {
    const int Res = resCycles(U);
    for (int K = 0; K < Res; ++K)
      if (Owner[static_cast<size_t>(Pe) * static_cast<size_t>(II) +
                static_cast<size_t>(safeMod(T + K, II))] >= 0)
        return false;
    return true;
  }

  bool routeOk(int U, long T, int Pe) {
    Times[static_cast<size_t>(U)] = static_cast<int>(T);
    Pes[static_cast<size_t>(U)] = Pe;
    const bool Ok =
        countRouteUse(Graph, Cgra, Times, Pes, II, RouteScratch);
    Times[static_cast<size_t>(U)] = -1;
    Pes[static_cast<size_t>(U)] = -1;
    return Ok;
  }

  /// Placement score: total hop delay to already-placed register-flow
  /// neighbors, then own occupancy, then adjacent-PE occupancy, then the
  /// PE index for determinism. Smaller is better.
  std::array<long, 4> peScore(int U, int Pe) const {
    long HopCost = 0;
    for (const int ArcId : Graph.predArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Value >= 0 && Arc.Src != U &&
          Scheduled[static_cast<size_t>(Arc.Src)] &&
          Pes[static_cast<size_t>(Arc.Src)] >= 0)
        HopCost += Cgra.hopDelay(Pes[static_cast<size_t>(Arc.Src)], Pe);
    }
    for (const int ArcId : Graph.succArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Value >= 0 && Arc.Dst != U &&
          Scheduled[static_cast<size_t>(Arc.Dst)] &&
          Pes[static_cast<size_t>(Arc.Dst)] >= 0)
        HopCost += Cgra.hopDelay(Pe, Pes[static_cast<size_t>(Arc.Dst)]);
    }
    long Own = 0;
    for (int R = 0; R < II; ++R)
      if (Owner[static_cast<size_t>(Pe) * static_cast<size_t>(II) +
                static_cast<size_t>(R)] >= 0)
        ++Own;
    long Neighbor = 0;
    for (int Q = 0; Q < Cgra.numPes(); ++Q) {
      if (Q == Pe || Cgra.hopDistance(Pe, Q) != 1)
        continue;
      for (int R = 0; R < II; ++R)
        if (Owner[static_cast<size_t>(Q) * static_cast<size_t>(II) +
                  static_cast<size_t>(R)] >= 0)
          ++Neighbor;
    }
    return {HopCost, Own, Neighbor, Pe};
  }

  void commit(int U, long T, int Pe) {
    Times[static_cast<size_t>(U)] = static_cast<int>(T);
    Pes[static_cast<size_t>(U)] = Pe;
    Scheduled[static_cast<size_t>(U)] = 1;
    PrevTime[static_cast<size_t>(U)] = T;
    if (Pe >= 0)
      for (int K = 0, Res = resCycles(U); K < Res; ++K)
        ownerSlot(Pe, T + K) = U;
  }

  void eject(int V, std::vector<char> &Pending, long &NumPending) {
    const int Pe = Pes[static_cast<size_t>(V)];
    if (Pe >= 0)
      for (int K = 0, Res = resCycles(V); K < Res; ++K) {
        int &Slot = ownerSlot(Pe, Times[static_cast<size_t>(V)] + K);
        if (Slot == V)
          Slot = -1;
      }
    Times[static_cast<size_t>(V)] = -1;
    Pes[static_cast<size_t>(V)] = -1;
    Scheduled[static_cast<size_t>(V)] = 0;
    if (!Pending[static_cast<size_t>(V)]) {
      Pending[static_cast<size_t>(V)] = 1;
      ++NumPending;
    }
    ++Ejections;
  }

  /// Lifetime-sensitive scan direction (Section 5.2 adapted to placement):
  /// when more register-flow consumers than producers are already placed,
  /// issue as late as possible to shorten the op's outgoing lifetimes.
  bool scanLate(int U) const {
    int Producers = 0, Consumers = 0;
    for (const int ArcId : Graph.predArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Value >= 0 && Arc.Src != U &&
          Scheduled[static_cast<size_t>(Arc.Src)])
        ++Producers;
    }
    for (const int ArcId : Graph.succArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Value >= 0 && Arc.Dst != U &&
          Scheduled[static_cast<size_t>(Arc.Dst)])
        ++Consumers;
    }
    return Consumers > Producers;
  }

  bool placeOp(int U, std::vector<char> &Pending, long &NumPending) {
    long EstartDyn = Estart[static_cast<size_t>(U)];
    for (const int ArcId : Graph.predArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Src == U || !Scheduled[static_cast<size_t>(Arc.Src)])
        continue;
      EstartDyn =
          std::max(EstartDyn, Times[static_cast<size_t>(Arc.Src)] +
                                  static_cast<long>(Arc.Latency) -
                                  static_cast<long>(Arc.Omega) * II);
    }

    const bool Late = scanLate(U);
    for (int Step = 0; Step < II; ++Step) {
      const long T = Late ? EstartDyn + II - 1 - Step : EstartDyn + Step;
      if (T < EstartDyn)
        continue;
      if (!needsPe(U)) {
        if (!depsOk(U, T, -1))
          continue;
        commit(U, T, -1);
        return true;
      }
      int BestPe = -1;
      std::array<long, 4> BestScore{};
      for (const int Pe : AllowedPes[static_cast<size_t>(U)]) {
        if (!slotFree(U, T, Pe) || !depsOk(U, T, Pe) || !routeOk(U, T, Pe))
          continue;
        const std::array<long, 4> Score = peScore(U, Pe);
        if (BestPe < 0 || Score < BestScore) {
          BestPe = Pe;
          BestScore = Score;
        }
      }
      if (BestPe >= 0) {
        commit(U, T, BestPe);
        return true;
      }
    }
    return placeForced(U, EstartDyn, Pending, NumPending);
  }

  bool placeForced(int U, long EstartDyn, std::vector<char> &Pending,
                   long &NumPending) {
    const long T =
        std::max(EstartDyn, PrevTime[static_cast<size_t>(U)] + 1);
    int Pe = -1;
    if (needsPe(U)) {
      std::array<long, 4> BestScore{};
      for (const int Cand : AllowedPes[static_cast<size_t>(U)]) {
        const std::array<long, 4> Score = peScore(U, Cand);
        if (Pe < 0 || Score < BestScore) {
          Pe = Cand;
          BestScore = Score;
        }
      }
    }

    // Displace the occupants of the claimed slots, then every scheduled op
    // whose dependence on/from u breaks, then route-overflow contributors;
    // only constraints involving u can have gone bad.
    if (Pe >= 0)
      for (int K = 0, Res = resCycles(U); K < Res; ++K) {
        const int V = ownerSlot(Pe, T + K);
        if (V >= 0)
          eject(V, Pending, NumPending);
      }
    commit(U, T, Pe);
    if (Ejections > Budget)
      return false;

    for (const int ArcId : Graph.predArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Src == U || !Scheduled[static_cast<size_t>(Arc.Src)])
        continue;
      const int Hop =
          arcHopDelay(Cgra, Arc, Pes[static_cast<size_t>(Arc.Src)], Pe);
      if (T < Times[static_cast<size_t>(Arc.Src)] + Arc.Latency + Hop -
                  static_cast<long>(Arc.Omega) * II)
        eject(Arc.Src, Pending, NumPending);
    }
    for (const int ArcId : Graph.succArcs(U)) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Arc.Dst == U || !Scheduled[static_cast<size_t>(Arc.Dst)])
        continue;
      const int Hop =
          arcHopDelay(Cgra, Arc, Pe, Pes[static_cast<size_t>(Arc.Dst)]);
      if (Times[static_cast<size_t>(Arc.Dst)] <
          T + Arc.Latency + Hop - static_cast<long>(Arc.Omega) * II)
        eject(Arc.Dst, Pending, NumPending);
    }
    if (Ejections > Budget)
      return false;

    for (long Guard = 0; Guard <= static_cast<long>(N); ++Guard) {
      int OverPe = -1, OverR = -1;
      if (countRouteUse(Graph, Cgra, Times, Pes, II, RouteScratch, &OverPe,
                        &OverR))
        return true;
      if (!ejectRouteContributor(U, OverPe, OverR, Pending, NumPending))
        return false;
      if (Ejections > Budget)
        return false;
    }
    return false;
  }

  /// Ejects one scheduled op feeding the overflowing (pe, residue) route
  /// slot: a remote-sending producer other than u, else one of u's remote
  /// consumers (removing a distinct destination). False when nothing can
  /// move, i.e. the slot cannot be relieved without unplacing u itself.
  bool ejectRouteContributor(int U, int OverPe, int OverR,
                             std::vector<char> &Pending, long &NumPending) {
    for (int X = 0; X < N; ++X) {
      if (X == U || Pes[static_cast<size_t>(X)] != OverPe ||
          !Scheduled[static_cast<size_t>(X)])
        continue;
      if (safeMod(Times[static_cast<size_t>(X)] + Graph.latency(X), II) !=
          OverR)
        continue;
      for (const int ArcId : Graph.succArcs(X)) {
        const DepArc &Arc = Graph.arc(ArcId);
        if (Arc.Value >= 0 && Scheduled[static_cast<size_t>(Arc.Dst)] &&
            Pes[static_cast<size_t>(Arc.Dst)] >= 0 &&
            Pes[static_cast<size_t>(Arc.Dst)] != OverPe) {
          eject(X, Pending, NumPending);
          return true;
        }
      }
    }
    if (Pes[static_cast<size_t>(U)] == OverPe)
      for (const int ArcId : Graph.succArcs(U)) {
        const DepArc &Arc = Graph.arc(ArcId);
        if (Arc.Value >= 0 && Arc.Dst != U &&
            Scheduled[static_cast<size_t>(Arc.Dst)] &&
            Pes[static_cast<size_t>(Arc.Dst)] >= 0 &&
            Pes[static_cast<size_t>(Arc.Dst)] !=
                Pes[static_cast<size_t>(U)]) {
          eject(Arc.Dst, Pending, NumPending);
          return true;
        }
      }
    return false;
  }

  const DepGraph &Graph;
  const CgraModel &Cgra;
  const MachineModel &M;
  const int II;
  const std::vector<long> &Estart;
  const std::vector<long> &Slack;
  const std::vector<std::vector<int>> &AllowedPes;
  const long Budget;
  const int N;
  std::vector<int> Times;
  std::vector<int> Pes;
  std::vector<char> Scheduled;
  std::vector<long> PrevTime;
  std::vector<int> Owner; ///< op per (PE, residue) reservation slot
  std::vector<int> RouteScratch;
  long Ejections = 0;
};

} // namespace

CgraMapping lsms::mapLoopCgra(const DepGraph &Graph, const CgraModel &Cgra,
                              const CgraMapOptions &Options) {
  CgraMapping Res;
  const int N = Graph.numOps();
  const MachineModel &M = Cgra.machine();
  const MIIBounds Bounds = computeMII(Graph);
  Res.MII = Bounds.MII;

  std::vector<std::vector<int>> AllowedPes(static_cast<size_t>(N));
  std::vector<int> TimeOps;
  for (int U = 0; U < N; ++U) {
    const Opcode Opc = Graph.body().op(U).Opc;
    if (M.unitFor(Opc) == FuKind::None)
      continue;
    TimeOps.push_back(U);
    if (!fuKindNeedsPe(M.unitFor(Opc)))
      continue;
    for (int Pe = 0; Pe < Cgra.numPes(); ++Pe)
      if (Cgra.capableOf(Pe, Opc))
        AllowedPes[static_cast<size_t>(U)].push_back(Pe);
    if (AllowedPes[static_cast<size_t>(U)].empty())
      return Res; // capability hole: no PE can run this opcode
  }

  const int MaxII = Options.IICap.maxII(Res.MII);
  const long Budget =
      static_cast<long>(Options.BudgetRatio) *
      std::max<long>(1, static_cast<long>(TimeOps.size()));
  MinDistMatrix MD;
  std::vector<long> E, L;

  for (int II = Res.MII; II <= MaxII;
       II += std::max(II * Options.IIIncrementPct / 100, 1)) {
    ++Res.Attempts;
    if (!MD.compute(Graph, II))
      continue;
    bool ResFits = true;
    for (const int U : TimeOps)
      if (!AllowedPes[static_cast<size_t>(U)].empty() &&
          M.reservationCycles(Graph.body().op(U).Opc) > II)
        ResFits = false;
    if (!ResFits)
      continue;

    MD.estarts(Graph.body().startOp(), E);
    MD.lstarts(Graph.body().stopOp(), E[static_cast<size_t>(
                                          Graph.body().stopOp())],
               L);
    std::vector<long> Slack(static_cast<size_t>(N), 0);
    for (const int U : TimeOps)
      Slack[static_cast<size_t>(U)] =
          L[static_cast<size_t>(U)] - E[static_cast<size_t>(U)];

    MapAttempt Attempt(Graph, Cgra, II, E, Slack, AllowedPes, Budget);
    const bool Ok = Attempt.run(TimeOps);
    Res.Ejections += Attempt.ejections();
    if (!Ok)
      continue;

    Res.Success = true;
    Res.II = II;
    Res.Times = Attempt.times();
    Res.Pes = Attempt.pes();
    // Materialize the pseudo-ops: Start at 0, Stop after the last
    // predecessor's result is due.
    Res.Times[static_cast<size_t>(Graph.body().startOp())] = 0;
    long StopTime = 0;
    for (const int ArcId : Graph.predArcs(Graph.body().stopOp())) {
      const DepArc &Arc = Graph.arc(ArcId);
      if (Res.Times[static_cast<size_t>(Arc.Src)] < 0)
        continue;
      StopTime = std::max(
          StopTime, Res.Times[static_cast<size_t>(Arc.Src)] + Arc.Latency -
                        static_cast<long>(Arc.Omega) * II);
    }
    Res.Times[static_cast<size_t>(Graph.body().stopOp())] =
        static_cast<int>(StopTime);
    return Res;
  }
  return Res;
}
