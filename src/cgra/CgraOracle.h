//===----------------------------------------------------------------------===//
///
/// \file
/// The spatial differential harness: the placement-aware slack heuristic
/// (CgraMapper.h) and the exact SAT mapper (sat/CgraSat.h) run side by
/// side on the kernel suite plus seeded random loops, every mapping is
/// re-checked by validateMapping, and the II gap is aggregated — the same
/// heuristic-vs-exact oracle pattern as exact/Oracle.h, pointed at the
/// CGRA target. mapLoopCgraExact is the exact II ladder: SAT decides each
/// II = MII, MII+1, ... in turn, so a Mapped verdict with no earlier
/// budgeted rung certifies the minimal spatial II.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_CGRA_CGRAORACLE_H
#define LSMS_CGRA_CGRAORACLE_H

#include "cgra/CgraMapper.h"
#include "exact/ExactEngine.h"
#include "sat/CgraSat.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lsms {

struct CgraExactOptions {
  /// CDCL conflict budget per II rung (refinement rounds included);
  /// negative = unlimited.
  long ConflictBudget = 1L << 16;
  IICapPolicy IICap;
};

struct CgraExactResult {
  ExactStatus Status = ExactStatus::Timeout;
  /// Valid (Success == true) when Status is Optimal or Feasible.
  CgraMapping Map;
  int Attempts = 0; ///< II rungs tried
  SatEngineStats Sat;
};

/// Exact spatial minimal-II search: the SAT mapper on the II ladder from
/// the flat MII upward in steps of 1 (exactness requires visiting every
/// II), capped at IICap.maxII(MII). Optimal means every smaller II was
/// proven infeasible; Feasible means some earlier rung exhausted its
/// budget first. Deterministic.
CgraExactResult mapLoopCgraExact(const DepGraph &Graph, const CgraModel &Cgra,
                                 const CgraExactOptions &Options =
                                     CgraExactOptions());

/// Configuration of one spatial differential sweep.
struct CgraOracleOptions {
  uint64_t Seed = 0x19930601;
  int NumLoops = 100;
  int MinOps = 3;
  int MaxOps = 12;
  /// The target grid (defaults to the heterogeneous 4x4 reference grid).
  CgraModel Cgra = CgraModel::defaultGrid(4, 4);
  /// Prepend the hand-written kernel suite to the random loops.
  bool IncludeKernels = true;
  CgraMapOptions Heuristic;
  CgraExactOptions Exact;
  /// Worker threads (0 = LSMS_JOBS / hardware); results merge in loop
  /// order, so reports are byte-identical at every job count.
  int Jobs = 0;
};

/// One loop's spatial differential result.
struct CgraOracleCase {
  uint64_t Seed = 0;
  std::string Name;
  int Ops = 0;
  int FlatMII = 0; ///< flat-machine lower bound

  bool HeurSuccess = false;
  int HeurII = 0;
  long HeurEjections = 0;
  long HeurAttempts = 0;

  ExactStatus Status = ExactStatus::Timeout;
  int ExactII = 0;
  long ExactConflicts = 0;
  long ExactRefinements = 0;

  bool IIGapValid = false; ///< both mappers produced a mapping
  int IIGap = 0;           ///< HeurII - ExactII
  /// The grid constraints bind: minimal spatial II proven strictly above
  /// the flat-machine MII.
  bool AboveFlatMII = false;

  std::string HeurError;  ///< validateMapping output (empty = legal)
  std::string ExactError; ///< validateMapping output (empty = legal)
  /// Cross-mapper contradiction: the heuristic beat a proven-optimal II,
  /// or mapped a loop SAT proved unmappable (empty = consistent).
  std::string ParityError;
};

/// Aggregated sweep results.
struct CgraOracleReport {
  CgraOracleOptions Config;
  std::vector<CgraOracleCase> Cases;

  int HeurMapped = 0;
  int ExactMapped = 0;      ///< status Optimal or Feasible
  int CertifiedOptimal = 0; ///< status Optimal
  int HeurAtExactII = 0;    ///< heuristic matched the exact II
  int AboveFlatMII = 0;     ///< certified spatial II > flat MII
  int Timeouts = 0;
  int Infeasible = 0;
  int ValidationFailures = 0;
  int ParityViolations = 0;
};

/// Runs one loop through both mappers and the validator. Pure; safe to
/// fan out across threads.
CgraOracleCase runCgraOracleCase(const LoopBody &Body,
                                 const CgraOracleOptions &Options);

/// Runs the sweep. Deterministic: depends only on \p Options.
CgraOracleReport runCgraOracle(const CgraOracleOptions &Options =
                                   CgraOracleOptions());

/// Prints the per-loop table and the summary counters (no timings).
void printCgraOracleReport(std::ostream &OS, const CgraOracleReport &Report);

} // namespace lsms

#endif // LSMS_CGRA_CGRAORACLE_H
