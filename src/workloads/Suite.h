//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation suite. The paper uses all 1,525 eligible DO loops from
/// the Lawrence Livermore Loops, SPEC89 FORTRAN, and the Perfect Club;
/// this repository substitutes ~25 hand-written Livermore-style DSL
/// kernels plus random loops calibrated to Table 2 (see RandomLoop.h and
/// DESIGN.md for the substitution rationale).
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_WORKLOADS_SUITE_H
#define LSMS_WORKLOADS_SUITE_H

#include "ir/LoopBody.h"

#include <vector>

namespace lsms {

/// A named DSL kernel.
struct NamedKernel {
  const char *Name;
  const char *Source;
};

/// The hand-written kernels (name + DSL source).
const std::vector<NamedKernel> &kernelSources();

/// Compiles every hand-written kernel.
std::vector<LoopBody> buildKernelSuite();

/// The full evaluation suite: hand-written kernels plus random loops up to
/// \p TotalLoops (default matches the paper's 1,525).
std::vector<LoopBody> buildFullSuite(int TotalLoops = 1525,
                                     uint64_t Seed = 19930601);

/// Small random loops for the exact-scheduling oracle: \p Count bodies
/// with MinOps <= machine operations <= MaxOps, drawn deterministically
/// from \p Seed (oversized draws are discarded and redrawn). Generation
/// fans out across \p Jobs workers (0 = LSMS_JOBS / hardware default);
/// each attempt is seeded by its index and accepted in index order, so the
/// suite is byte-identical for every job count.
std::vector<LoopBody> buildOracleSuite(int Count, int MinOps, int MaxOps,
                                       uint64_t Seed, int Jobs = 0);

/// Irregular loops (while-exits, data-dependent subscripts, stamped alias
/// probabilities) for the speculation sweep: \p Count bodies of at most
/// \p MaxOps machine operations, drawn deterministically from \p Seed with
/// the same blocked attempt scheme as buildOracleSuite (byte-identical for
/// every job count).
std::vector<LoopBody> buildIrregularSuite(int Count, int MaxOps,
                                          uint64_t Seed, int Jobs = 0);

} // namespace lsms

#endif // LSMS_WORKLOADS_SUITE_H
