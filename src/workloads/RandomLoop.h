//===----------------------------------------------------------------------===//
///
/// \file
/// Random loop synthesis. The paper evaluates on 1,525 FORTRAN DO loops
/// from the Lawrence Livermore Loops, SPEC89, and the Perfect Club; those
/// sources (and Cydrome's front end) are not available, so the suite is
/// substituted with random programs in the loop DSL, drawn so the resulting
/// bodies match Table 2's distributions of operation counts, recurrence
/// membership, conditional frequency, and divider usage.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_WORKLOADS_RANDOMLOOP_H
#define LSMS_WORKLOADS_RANDOMLOOP_H

#include "ir/LoopBody.h"
#include "support/Rng.h"

#include <string>

namespace lsms {

/// Knobs for one random loop.
struct RandomLoopConfig {
  /// Approximate number of machine operations to aim for (the generator
  /// adds statements until the estimate is reached).
  int TargetOps = 18;
  /// Probability that the loop contains conditionals (if-converted).
  double ConditionalProb = 0.30;
  /// Probability that the loop carries a non-trivial recurrence.
  double RecurrenceProb = 0.37;
  /// Probability that a generated statement uses divide or sqrt.
  double DividerProb = 0.04;
  /// Maximum omega for cross-iteration references.
  int MaxOmega = 3;
};

/// Draws a config whose TargetOps follow the heavy-tailed size
/// distribution of the paper's Table 2 (median ~18 ops, 90th percentile
/// ~80, maximum ~400).
RandomLoopConfig drawTable2Config(Rng &R);

/// Generates DSL source for one random loop.
std::string generateRandomLoopSource(Rng &R, const RandomLoopConfig &Config);

/// Generates and compiles one random loop (asserts the generated source
/// compiles — the generator emits only valid programs).
LoopBody generateRandomLoop(uint64_t Seed, const RandomLoopConfig &Config);

/// Convenience: Table 2-calibrated loop from a seed alone.
LoopBody generateRandomLoop(uint64_t Seed);

} // namespace lsms

#endif // LSMS_WORKLOADS_RANDOMLOOP_H
