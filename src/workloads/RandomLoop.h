//===----------------------------------------------------------------------===//
///
/// \file
/// Random loop synthesis. The paper evaluates on 1,525 FORTRAN DO loops
/// from the Lawrence Livermore Loops, SPEC89, and the Perfect Club; those
/// sources (and Cydrome's front end) are not available, so the suite is
/// substituted with random programs in the loop DSL, drawn so the resulting
/// bodies match Table 2's distributions of operation counts, recurrence
/// membership, conditional frequency, and divider usage.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_WORKLOADS_RANDOMLOOP_H
#define LSMS_WORKLOADS_RANDOMLOOP_H

#include "ir/LoopBody.h"
#include "support/Rng.h"

#include <string>

namespace lsms {

/// Knobs for one random loop.
struct RandomLoopConfig {
  /// Approximate number of machine operations to aim for (the generator
  /// adds statements until the estimate is reached).
  int TargetOps = 18;
  /// Probability that the loop contains conditionals (if-converted).
  double ConditionalProb = 0.30;
  /// Probability that the loop carries a non-trivial recurrence.
  double RecurrenceProb = 0.37;
  /// Probability that a generated statement uses divide or sqrt.
  double DividerProb = 0.04;
  /// Maximum omega for cross-iteration references.
  int MaxOmega = 3;
};

/// Draws a config whose TargetOps follow the heavy-tailed size
/// distribution of the paper's Table 2 (median ~18 ops, 90th percentile
/// ~80, maximum ~400).
RandomLoopConfig drawTable2Config(Rng &R);

/// Generates DSL source for one random loop.
std::string generateRandomLoopSource(Rng &R, const RandomLoopConfig &Config);

/// Generates and compiles one random loop (asserts the generated source
/// compiles — the generator emits only valid programs).
LoopBody generateRandomLoop(uint64_t Seed, const RandomLoopConfig &Config);

/// Convenience: Table 2-calibrated loop from a seed alone.
LoopBody generateRandomLoop(uint64_t Seed);

/// Knobs for one irregular loop (while-exits, data-dependent subscripts).
struct IrregularLoopConfig {
  /// Approximate number of affine filler operations added on top of the
  /// irregular core pattern.
  int TargetOps = 10;
  /// Probability that the loop carries a while-style exit clause.
  double WhileProb = 0.5;
  /// Relative weights for the irregular core pattern: a histogram update
  /// (h[b] = h[b] + e with a data-dependent bucket), a store/load pair on
  /// provably disjoint regions of one array (the canonical held-assumption
  /// speculation win), and a pointer chase (q = nx[q]).
  double HistogramWeight = 0.40;
  double DisjointWeight = 0.35;
  double ChaseWeight = 0.25;
  /// Iteration window the stamped collision-probability estimates assume
  /// (the replay harness executes this many iterations by default).
  long Window = 64;
};

/// Generated irregular source plus the generator's seeded collision
/// estimates, one per array with data-dependent accesses. Estimates model
/// cross-iteration collisions only — the replay harness additionally counts
/// same-iteration collisions, so a low stamped probability can still be
/// violated (that is the point: misspeculation must be observable).
struct IrregularSource {
  std::string Source;
  /// Array name -> estimated probability that two data-dependent accesses
  /// of the array collide within one Window.
  std::vector<std::pair<std::string, double>> ArrayAliasProb;
  bool HasWhile = false;
};

/// Generates DSL source for one irregular loop.
IrregularSource generateIrregularLoopSource(Rng &R,
                                            const IrregularLoopConfig &Config);

/// Generates, compiles, and stamps one irregular loop: every may-alias
/// group whose operations touch an array listed in ArrayAliasProb gets that
/// array's estimate as its MemDep::Prob (other groups keep Prob unknown).
LoopBody generateIrregularLoop(uint64_t Seed, const IrregularLoopConfig &Config);

/// Irregular loop from a seed alone (default config).
LoopBody generateIrregularLoop(uint64_t Seed);

} // namespace lsms

#endif // LSMS_WORKLOADS_RANDOMLOOP_H
