#include "workloads/Suite.h"

#include "frontend/LoopCompiler.h"
#include "support/ParallelFor.h"
#include "workloads/RandomLoop.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace lsms;

const std::vector<NamedKernel> &lsms::kernelSources() {
  // Livermore-loop-style kernels (LL*), plus classic BLAS-1 shapes and the
  // paper's own Figure 1 loop. All are expressed in the loop DSL.
  static const std::vector<NamedKernel> Kernels = {
      {"fig1_sample", //
       "loop i = 3, n\n"
       "  x[i] = x[i-1] + y[i-2]\n"
       "  y[i] = y[i-1] + x[i-2]\n"
       "end\n"},
      {"ll1_hydro", //
       "param q = 0.5\nparam r = 0.25\nparam t = 2\n"
       "loop i = 1, n\n"
       "  x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])\n"
       "end\n"},
      {"ll2_iccg_like", //
       "param c = 0.3\n"
       "loop i = 2, n\n"
       "  x[i] = x[i-1] - c*v[i]*x[i-2]\n"
       "end\n"},
      {"ll3_inner_product", //
       "param q = 0\n"
       "loop i = 1, n\n"
       "  q = q + z[i]*x[i]\n"
       "end\n"},
      {"ll4_banded_linear", //
       "param f = 0.175\n"
       "loop i = 1, n\n"
       "  y[i] = y[i] - f*x[i+5] - f*x[i+10]\n"
       "end\n"},
      {"ll5_tridiag", //
       "loop i = 2, n\n"
       "  x[i] = z[i]*(y[i] - x[i-1])\n"
       "end\n"},
      {"ll7_state_equation", //
       "param r = 0.5\nparam t = 2\n"
       "loop i = 1, n\n"
       "  x[i] = u[i] + r*(z[i] + r*y[i]) +"
       " t*(u[i+3] + r*(u[i+2] + r*u[i+1]) +"
       " t*(u[i+6] + r*(u[i+5] + r*u[i+4])))\n"
       "end\n"},
      {"ll9_integrate_predictor", //
       "param c0 = 2\nparam c1 = 4.5\nparam c2 = 6\nparam c3 = 3\n"
       "loop i = 1, n\n"
       "  px[i] = c0 + c1*(pa[i] + pb[i]) + c2*pc[i] + c3*pd[i]\n"
       "end\n"},
      {"ll10_difference_predictor", //
       "loop i = 1, n\n"
       "  br[i] = cx[i] - px[i]\n"
       "  px[i] = cx[i]\n"
       "end\n"},
      {"ll11_first_sum", //
       "loop i = 2, n\n"
       "  x[i] = x[i-1] + y[i]\n"
       "end\n"},
      {"ll12_first_diff", //
       "loop i = 1, n\n"
       "  x[i] = y[i+1] - y[i]\n"
       "end\n"},
      {"ll19_general_linear_recurrence", //
       "loop i = 2, n\n"
       "  b[i] = b[i] - sa[i]*b[i-1]\n"
       "  x[i] = b[i]*0.5 + x[i-1]*sb[i]\n"
       "end\n"},
      {"ll21_matrix_row", //
       "param s = 0\n"
       "loop i = 1, n\n"
       "  s = s + px[i]*vy[i]\n"
       "  cx[i] = s\n"
       "end\n"},
      {"daxpy", //
       "param a = 3\n"
       "loop i = 1, n\n"
       "  z[i] = a*x[i] + y[i]\n"
       "end\n"},
      {"dscale", //
       "param a = 0.5\n"
       "loop i = 1, n\n"
       "  x[i] = a*x[i]\n"
       "end\n"},
      {"vector_abs", //
       "loop i = 1, n\n"
       "  if (x[i] < 0) then\n"
       "    y[i] = -x[i]\n"
       "  else\n"
       "    y[i] = x[i]\n"
       "  end\n"
       "end\n"},
      {"clip_above_threshold", //
       "param t = 2.5\n"
       "loop i = 1, n\n"
       "  if (x[i] > t) then\n"
       "    x[i] = t\n"
       "  end\n"
       "end\n"},
      {"conditional_sum_count", //
       "param s = 0\nparam c = 0\n"
       "loop i = 1, n\n"
       "  if (x[i] > 1.5) then\n"
       "    s = s + x[i]\n"
       "    c = c + 1\n"
       "  end\n"
       "end\n"},
      {"minmax_select", //
       "param lo = 1\nparam hi = 2.5\n"
       "loop i = 1, n\n"
       "  if (x[i] < lo) then\n"
       "    y[i] = lo\n"
       "  else\n"
       "    if (x[i] > hi) then\n"
       "      y[i] = hi\n"
       "    else\n"
       "      y[i] = x[i]\n"
       "    end\n"
       "  end\n"
       "end\n"},
      {"newton_sqrt_step", //
       "loop i = 1, n\n"
       "  y[i] = 0.5*(g[i] + x[i]/g[i])\n"
       "end\n"},
      {"norm2_accumulate", //
       "param s = 0\n"
       "loop i = 1, n\n"
       "  s = s + x[i]*x[i]\n"
       "  y[i] = sqrt(x[i]*x[i] + 1)\n"
       "end\n"},
      {"rational_eval", //
       "param a = 1.5\nparam b = 0.5\n"
       "loop i = 1, n\n"
       "  y[i] = (a*x[i] + b) / (x[i] + 2)\n"
       "end\n"},
      {"complex_mult", //
       "loop i = 1, n\n"
       "  cr[i] = ar[i]*br[i] - ai[i]*bi[i]\n"
       "  ci[i] = ar[i]*bi[i] + ai[i]*br[i]\n"
       "end\n"},
      {"horner_poly4", //
       "param c0 = 1\nparam c1 = 0.5\nparam c2 = 0.25\nparam c3 = 0.125\n"
       "loop i = 1, n\n"
       "  y[i] = ((c3*x[i] + c2)*x[i] + c1)*x[i] + c0\n"
       "end\n"},
      {"smoothing_stencil", //
       "param w = 0.25\n"
       "loop i = 2, n\n"
       "  y[i] = w*(x[i-1] + 2*x[i] + x[i+1])\n"
       "end\n"},
      {"exp_decay_recurrence", //
       "param k = 0.9\n"
       "loop i = 2, n\n"
       "  x[i] = k*x[i-1] + u[i]\n"
       "end\n"},
      {"coupled_recurrence_deep", //
       "param a = 0.3\nparam b = 0.6\n"
       "loop i = 4, n\n"
       "  x[i] = a*x[i-3] + b*y[i-1]\n"
       "  y[i] = x[i-2] - y[i-3]\n"
       "end\n"},
      {"running_average3", //
       "loop i = 3, n\n"
       "  m[i] = (x[i] + x[i-1] + x[i-2]) / 3\n"
       "end\n"},
      {"induction_as_data", //
       "loop i = 1, n\n"
       "  x[i] = i*y[i] + i\n"
       "end\n"},
      {"ll6_general_recurrence_band", //
       "loop i = 2, n\n"
       "  w[i] = 0.01 + b[i]*w[i-1] + c[i]*w[i-2]\n"
       "end\n"},
      {"ll13_particle_push_fragment", //
       "param dt = 0.05\n"
       "loop i = 1, n\n"
       "  vx[i] = vx[i] + dt*ex[i]\n"
       "  xx[i] = xx[i] + dt*vx[i]\n"
       "end\n"},
      {"ll14_scatter_like", //
       "loop i = 1, n\n"
       "  rh[i] = rh[i] + dex[i]*dex[i+1]\n"
       "  ir[i] = grd[i] - dex[i]\n"
       "end\n"},
      {"ll18_explicit_hydro_fragment", //
       "param t = 0.0037\nparam s = 0.0041\n"
       "loop i = 2, n\n"
       "  zu[i] = zu[i] + s*(za[i]*(zz[i] - zz[i+1]) -"
       " za[i-1]*(zz[i] - zz[i-1]) - t*zb[i])\n"
       "end\n"},
      {"ll22_planckian", //
       "param expmax = 20\n"
       "loop i = 1, n\n"
       "  y[i] = u[i] / v[i]\n"
       "  w[i] = x[i] / (y[i] + 0.5)\n"
       "end\n"},
      {"saxpy_strided_even", //
       "param a = 2\n"
       "loop i = 1, n\n"
       "  z[2*i] = a*x[2*i] + y[2*i]\n"
       "end\n"},
      {"complex_scale_interleaved", //
       "param cr = 0.8\nparam ci = 0.6\n"
       "loop i = 1, n\n"
       "  out[2*i] = cr*v[2*i] - ci*v[2*i+1]\n"
       "  out[2*i+1] = cr*v[2*i+1] + ci*v[2*i]\n"
       "end\n"},
      {"red_black_relaxation", //
       "param w = 0.25\n"
       "loop i = 1, n\n"
       "  u[2*i] = w*(u[2*i-1] + u[2*i+1]) + u[2*i]*(1 - 2*w)\n"
       "end\n"},
      {"prefix_product", //
       "param p = 1\n"
       "loop i = 1, n\n"
       "  p = p * x[i]\n"
       "  y[i] = p\n"
       "end\n"},
      {"alternating_sign_sum", //
       "param s = 0\nparam sign = 1\n"
       "loop i = 1, n\n"
       "  s = s + sign*x[i]\n"
       "  sign = 0 - sign\n"
       "end\n"},
      {"three_term_recurrence", //
       "param a = 0.4\nparam b = 0.3\nparam c = 0.2\n"
       "loop i = 4, n\n"
       "  x[i] = a*x[i-1] + b*x[i-2] + c*x[i-3]\n"
       "end\n"},
      {"max_like_clamp_chain", //
       "param m = 0\n"
       "loop i = 1, n\n"
       "  if (x[i] > m) then\n"
       "    m = x[i]\n"
       "  end\n"
       "  y[i] = m\n"
       "end\n"},
      {"normalize_by_norm_estimate", //
       "loop i = 2, n\n"
       "  s = s*0.9 + x[i]*0.1\n"
       "  y[i] = x[i] / (s + 1)\n"
       "end\n"},
      {"branchy_three_way_split", //
       "param lo = 1.5\nparam hi = 2.5\n"
       "loop i = 1, n\n"
       "  if (x[i] < lo) then\n"
       "    small[i] = x[i]\n"
       "  else\n"
       "    if (x[i] < hi) then\n"
       "      mid[i] = x[i]\n"
       "    else\n"
       "      big[i] = x[i]\n"
       "    end\n"
       "  end\n"
       "end\n"},
  };
  return Kernels;
}

std::vector<LoopBody> lsms::buildKernelSuite() {
  std::vector<LoopBody> Suite;
  for (const NamedKernel &K : kernelSources()) {
    LoopBody Body;
    const std::string Err = compileLoop(K.Source, K.Name, Body);
    if (!Err.empty()) {
      std::fprintf(stderr, "kernel %s failed to compile: %s\n", K.Name,
                   Err.c_str());
      assert(false && "suite kernel failed to compile");
    }
    Suite.push_back(std::move(Body));
  }
  return Suite;
}

std::vector<LoopBody> lsms::buildFullSuite(int TotalLoops, uint64_t Seed) {
  std::vector<LoopBody> Suite = buildKernelSuite();
  Rng R(Seed);
  int Next = 0;
  while (static_cast<int>(Suite.size()) < TotalLoops) {
    const RandomLoopConfig Config = drawTable2Config(R);
    Suite.push_back(generateRandomLoop(Seed + 1000003ULL * ++Next, Config));
  }
  return Suite;
}

std::vector<LoopBody> lsms::buildOracleSuite(int Count, int MinOps,
                                             int MaxOps, uint64_t Seed,
                                             int Jobs) {
  assert(MinOps <= MaxOps && "empty size range");
  std::vector<LoopBody> Suite;
  Suite.reserve(static_cast<size_t>(Count));
  // Attempt k is a pure function of (Seed, k): its config comes from the
  // k-th draw of the config stream and its body from a per-attempt seed.
  // Workers therefore generate speculative blocks of attempts in parallel
  // while acceptance scans strictly in attempt order, reproducing the
  // sequential suite byte for byte at every job count (over-generated
  // attempts past the stopping point are simply discarded).
  Rng R(Seed);
  int Attempt = 0;
  const int MaxAttempts = Count * 64;
  const int BlockSize = std::max(Count, 32);
  while (static_cast<int>(Suite.size()) < Count && Attempt < MaxAttempts) {
    const int Block = std::min(BlockSize, MaxAttempts - Attempt);
    std::vector<RandomLoopConfig> Configs(static_cast<size_t>(Block));
    for (RandomLoopConfig &Config : Configs) {
      // Small targets: address arithmetic and brtop inflate the body
      // beyond TargetOps, so aim below the cap and filter on the realized
      // size.
      Config.TargetOps = static_cast<int>(
          R.nextInRange(2, std::max(2, MaxOps * 2 / 3)));
      Config.MaxOmega = 3;
    }
    std::vector<LoopBody> Bodies(static_cast<size_t>(Block));
    parallelFor(resolveJobs(Jobs), Block, [&](int I) {
      Bodies[static_cast<size_t>(I)] = generateRandomLoop(
          Seed + 1000003ULL * static_cast<uint64_t>(Attempt + I + 1),
          Configs[static_cast<size_t>(I)]);
    });
    for (int I = 0;
         I < Block && static_cast<int>(Suite.size()) < Count; ++I) {
      const int Ops = Bodies[static_cast<size_t>(I)].numMachineOps();
      if (Ops < MinOps || Ops > MaxOps)
        continue;
      Suite.push_back(std::move(Bodies[static_cast<size_t>(I)]));
    }
    Attempt += Block;
  }
  assert(static_cast<int>(Suite.size()) == Count &&
         "oracle suite generation exhausted its attempt budget");
  return Suite;
}

std::vector<LoopBody> lsms::buildIrregularSuite(int Count, int MaxOps,
                                                uint64_t Seed, int Jobs) {
  std::vector<LoopBody> Suite;
  Suite.reserve(static_cast<size_t>(Count));
  // Same blocked speculative-attempt scheme as buildOracleSuite: attempt k
  // is a pure function of (Seed, k), acceptance scans in attempt order.
  Rng R(Seed ^ 0x1993);
  int Attempt = 0;
  const int MaxAttempts = Count * 64;
  const int BlockSize = std::max(Count, 32);
  while (static_cast<int>(Suite.size()) < Count && Attempt < MaxAttempts) {
    const int Block = std::min(BlockSize, MaxAttempts - Attempt);
    std::vector<IrregularLoopConfig> Configs(static_cast<size_t>(Block));
    for (IrregularLoopConfig &Config : Configs)
      Config.TargetOps = static_cast<int>(
          R.nextInRange(4, std::max<int64_t>(6, MaxOps / 2)));
    std::vector<LoopBody> Bodies(static_cast<size_t>(Block));
    parallelFor(resolveJobs(Jobs), Block, [&](int I) {
      Bodies[static_cast<size_t>(I)] = generateIrregularLoop(
          Seed + 7778777ULL * static_cast<uint64_t>(Attempt + I + 1),
          Configs[static_cast<size_t>(I)]);
    });
    for (int I = 0;
         I < Block && static_cast<int>(Suite.size()) < Count; ++I) {
      if (Bodies[static_cast<size_t>(I)].numMachineOps() > MaxOps)
        continue;
      Suite.push_back(std::move(Bodies[static_cast<size_t>(I)]));
    }
    Attempt += Block;
  }
  assert(static_cast<int>(Suite.size()) == Count &&
         "irregular suite generation exhausted its attempt budget");
  return Suite;
}
