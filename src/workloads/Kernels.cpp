#include "workloads/Kernels.h"

#include "ir/IRBuilder.h"

using namespace lsms;

LoopBody lsms::buildSampleLoop() {
  LoopBody Body;
  Body.Name = "sample";
  Body.First = 3;
  Body.Source = "x(i) = x(i-1) + y(i-2); y(i) = y(i-1) + x(i-2)";
  IRBuilder B(Body);

  const int ArrX = B.newArray();
  const int ArrY = B.newArray();

  // Mutual recurrence: forward-declare both values.
  const int X = B.declareValue(RegClass::RR, "x");
  const int Y = B.declareValue(RegClass::RR, "y");
  B.defineValue(X, Opcode::FloatAdd, {Use{X, 1}, Use{Y, 2}});
  B.defineValue(Y, Opcode::FloatAdd, {Use{Y, 1}, Use{X, 2}});
  // Seeds: x(2), x(1) and y(2), y(1) (omega 1 and 2 before i = 3).
  B.setSeeds(X, {2.0, 1.0});
  B.setSeeds(Y, {20.0, 10.0});

  const int Ax = B.addressStream("ax", 4.0 * 2);
  const int Ay = B.addressStream("ay", 4.0 * 2);
  B.emitStore(ArrX, 0, Use{Ax, 0}, Use{X, 0}, "st_x");
  B.emitStore(ArrY, 0, Use{Ay, 0}, Use{Y, 0}, "st_y");

  B.finish();
  return Body;
}

LoopBody lsms::buildDaxpyLoop() {
  LoopBody Body;
  Body.Name = "daxpy";
  Body.First = 1;
  Body.Source = "z(i) = a*x(i) + y(i)";
  IRBuilder B(Body);

  const int ArrX = B.newArray();
  const int ArrY = B.newArray();
  const int ArrZ = B.newArray();
  const int A = B.invariant("a", 3.0);

  const int Ax = B.addressStream("ax", 0);
  const int Ay = B.addressStream("ay", 0);
  const int Az = B.addressStream("az", 0);
  const int Lx = B.emitLoad(ArrX, 0, Use{Ax, 0}, "lx");
  const int Ly = B.emitLoad(ArrY, 0, Use{Ay, 0}, "ly");
  const int T = B.emitValue(Opcode::FloatMul, {Use{A, 0}, Use{Lx, 0}}, "t");
  const int Z = B.emitValue(Opcode::FloatAdd, {Use{T, 0}, Use{Ly, 0}}, "z");
  B.emitStore(ArrZ, 0, Use{Az, 0}, Use{Z, 0}, "st_z");

  B.finish();
  return Body;
}

LoopBody lsms::buildDotLoop() {
  LoopBody Body;
  Body.Name = "dot";
  Body.First = 1;
  Body.Source = "s = s + x(i)*y(i)";
  IRBuilder B(Body);

  const int ArrX = B.newArray();
  const int ArrY = B.newArray();

  const int Ax = B.addressStream("ax", 0);
  const int Ay = B.addressStream("ay", 0);
  const int Lx = B.emitLoad(ArrX, 0, Use{Ax, 0}, "lx");
  const int Ly = B.emitLoad(ArrY, 0, Use{Ay, 0}, "ly");
  const int P = B.emitValue(Opcode::FloatMul, {Use{Lx, 0}, Use{Ly, 0}}, "p");
  const int S = B.declareValue(RegClass::RR, "s");
  B.defineValue(S, Opcode::FloatAdd, {Use{S, 1}, Use{P, 0}});
  B.setSeeds(S, {0.0});
  B.markLiveOut(S);

  B.finish();
  return Body;
}

LoopBody lsms::buildLinearRecurrenceLoop() {
  LoopBody Body;
  Body.Name = "linrec";
  Body.First = 1;
  Body.Source = "x(i) = a*x(i-1) + b";
  IRBuilder B(Body);

  const int ArrX = B.newArray();
  const int A = B.invariant("a", 0.5);
  const int C = B.invariant("b", 1.0);

  const int X = B.declareValue(RegClass::RR, "x");
  const int T = B.emitValue(Opcode::FloatMul, {Use{A, 0}, Use{X, 1}}, "t");
  B.defineValue(X, Opcode::FloatAdd, {Use{T, 0}, Use{C, 0}});
  B.setSeeds(X, {4.0});

  const int Ax = B.addressStream("ax", 0);
  B.emitStore(ArrX, 0, Use{Ax, 0}, Use{X, 0}, "st_x");

  B.finish();
  return Body;
}

LoopBody lsms::buildPredicatedAbsLoop() {
  LoopBody Body;
  Body.Name = "predabs";
  Body.First = 1;
  Body.Source = "if (x(i) > 0) then y(i) = x(i) else y(i) = -x(i)";
  Body.HasConditional = true;
  Body.SourceBasicBlocks = 4;
  IRBuilder B(Body);

  const int ArrX = B.newArray();
  const int ArrY = B.newArray();
  const int Zero = B.constant(0.0);

  const int Ax = B.addressStream("ax", 0);
  const int Ay = B.addressStream("ay", 0);
  const int Lx = B.emitLoad(ArrX, 0, Use{Ax, 0}, "lx");
  const int P =
      B.emitValue(Opcode::CmpGT, {Use{Lx, 0}, Use{Zero, 0}}, "p");
  const int Q = B.emitValue(Opcode::PredNot, {Use{P, 0}}, "q");
  const int Neg =
      B.emitValue(Opcode::FloatSub, {Use{Zero, 0}, Use{Lx, 0}}, "neg");
  const int St1 =
      B.emitStore(ArrY, 0, Use{Ay, 0}, Use{Lx, 0}, "st_then", P, 0);
  const int St2 =
      B.emitStore(ArrY, 0, Use{Ay, 0}, Use{Neg, 0}, "st_else", Q, 0);
  // The two stores execute under mutually exclusive predicates, but the
  // compiler "does not perform the requisite analysis" (Section 3.2) and
  // conservatively orders same-location writes.
  B.addMemDep(St1, St2, DepKind::Output, 1, 0);

  B.finish();
  return Body;
}

LoopBody lsms::buildDivideLoop() {
  LoopBody Body;
  Body.Name = "divide";
  Body.First = 1;
  Body.Source = "z(i) = x(i) / y(i)";
  IRBuilder B(Body);

  const int ArrX = B.newArray();
  const int ArrY = B.newArray();
  const int ArrZ = B.newArray();

  const int Ax = B.addressStream("ax", 0);
  const int Ay = B.addressStream("ay", 0);
  const int Az = B.addressStream("az", 0);
  const int Lx = B.emitLoad(ArrX, 0, Use{Ax, 0}, "lx");
  const int Ly = B.emitLoad(ArrY, 0, Use{Ay, 0}, "ly");
  const int Z = B.emitValue(Opcode::FloatDiv, {Use{Lx, 0}, Use{Ly, 0}}, "z");
  B.emitStore(ArrZ, 0, Use{Az, 0}, Use{Z, 0}, "st_z");

  B.finish();
  return Body;
}
