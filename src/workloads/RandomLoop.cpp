#include "workloads/RandomLoop.h"

#include "frontend/LoopCompiler.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace lsms;

namespace {

/// Deterministic exp replacement for the generator's hot path: libm exp is
/// not bit-pinned across implementations, and a 1-ulp difference at an
/// integer boundary would change every downstream loop. Range-reduce to
/// |r| <= ln2/2, evaluate a fixed degree-10 Taylor polynomial (relative
/// error ~1e-13, far below any decision boundary the generator uses), and
/// scale by 2^k exactly.
double detExp(double X) {
  if (X < -700.0)
    return 0.0;
  assert(X < 700.0 && "detExp is only used for moderate arguments");
  const double KD = std::floor(X * 1.4426950408889634 + 0.5);
  // ln2 split high/low so X - KD*ln2 is computed without cancellation.
  const double R = (X - KD * 6.93147180369123816490e-01) -
                   KD * 1.90821492927058770002e-10;
  const double P =
      1.0 +
      R * (1.0 +
           R * (1.0 / 2 +
                R * (1.0 / 6 +
                     R * (1.0 / 24 +
                          R * (1.0 / 120 +
                               R * (1.0 / 720 +
                                    R * (1.0 / 5040 +
                                         R * (1.0 / 40320 +
                                              R * (1.0 / 362880 +
                                                   R / 3628800)))))))));
  return std::ldexp(P, static_cast<int>(KD));
}

} // namespace

RandomLoopConfig lsms::drawTable2Config(Rng &R) {
  RandomLoopConfig C;
  // Log-normal op-count distribution fit to Table 2: median 18, 90th
  // percentile 80, clamped to [4, 400]. Approximate a standard normal
  // with the sum of four uniforms (Irwin-Hall).
  const double Z =
      (R.nextDouble() + R.nextDouble() + R.nextDouble() + R.nextDouble() -
       2.0) *
      std::sqrt(3.0);
  const double Ops = detExp(2.89 + 1.45 * Z);
  C.TargetOps = static_cast<int>(std::min(900.0, std::max(4.0, Ops)));
  return C;
}

namespace {

/// Emits DSL text for one random loop.
class SourceGen {
public:
  SourceGen(Rng &R, const RandomLoopConfig &C) : R(R), C(C) {}

  std::string run();

private:
  // ---- statement emitters ----
  void emitRecurrence();
  void emitAccumulator();
  void emitPlainWrite();
  void emitConditional(int Depth);
  void statement(int CondDepth);

  // ---- expression synthesis ----
  std::string expr(int Depth);
  std::string leaf();
  std::string inputRead();
  const char *binop();

  std::string indent() const { return std::string(2 * (Nesting + 1), ' '); }

  Rng &R;
  const RandomLoopConfig &C;
  std::ostringstream Body;
  int EstOps = 0;
  int NumInArrays = 0;
  int NumPlainOut = 0;
  int NumCondOut = 0;
  int NumRecOut = 0;
  int NumAccums = 0;
  int NumParams = 0;
  int Nesting = 0;
  bool WantRecurrence = false;
  bool WantConditional = false;
  bool MadeRecurrence = false;
  bool MadeConditional = false;
};

std::string SourceGen::run() {
  WantRecurrence = R.nextBool(C.RecurrenceProb);
  WantConditional = R.nextBool(C.ConditionalProb);
  NumInArrays = static_cast<int>(R.nextInRange(1, 3));
  NumParams = static_cast<int>(R.nextInRange(1, 3));

  const long First = R.nextInRange(1, 4);

  while (EstOps < C.TargetOps || (WantRecurrence && !MadeRecurrence) ||
         (WantConditional && !MadeConditional))
    statement(/*CondDepth=*/0);

  std::ostringstream Out;
  for (int P = 0; P < NumParams; ++P)
    Out << "param p" << P << " = "
        << formatNumber(0.25 + 0.5 * static_cast<double>(P), 2) << "\n";
  for (int S = 0; S < NumAccums; ++S)
    Out << "param s" << S << " = 0\n";
  Out << "loop i = " << First << ", n\n" << Body.str() << "end\n";
  return Out.str();
}

void SourceGen::statement(int CondDepth) {
  // Priorities: satisfy the requested classes first, then mix.
  if (CondDepth == 0 && WantRecurrence && !MadeRecurrence) {
    emitRecurrence();
    return;
  }
  if (CondDepth == 0 && WantConditional && !MadeConditional) {
    emitConditional(CondDepth);
    return;
  }
  const double U = R.nextDouble();
  if (CondDepth == 0 && WantConditional && U < 0.15) {
    emitConditional(CondDepth);
  } else if (CondDepth == 0 && WantRecurrence && U < 0.30) {
    emitRecurrence();
  } else if (U < 0.45 && (NumAccums > 0 || U < 0.38)) {
    emitAccumulator();
  } else {
    emitPlainWrite();
  }
}

void SourceGen::emitRecurrence() {
  // w[i] = f(w[i-d], ...): load/store elimination turns this into a
  // non-trivial recurrence circuit through rotating registers.
  const int Array = NumRecOut < 2 ? NumRecOut++ : 0;
  NumRecOut = std::max(NumRecOut, Array + 1);
  const int D = static_cast<int>(R.nextInRange(1, C.MaxOmega));
  const int Depth = static_cast<int>(R.nextInRange(0, 1));
  Body << indent() << "r" << Array << "[i] = r" << Array << "[i-" << D
       << "]";
  if (R.nextBool(0.6)) {
    Body << " * p" << R.nextInRange(0, NumParams - 1);
    ++EstOps;
  }
  Body << " + " << expr(Depth) << "\n";
  EstOps += 4; // fadd + store + address streams
  MadeRecurrence = true;
}

void SourceGen::emitAccumulator() {
  const int S = NumAccums == 0 || R.nextBool(0.5)
                    ? (NumAccums < 3 ? NumAccums++ : 0)
                    : static_cast<int>(R.nextInRange(0, NumAccums - 1));
  NumAccums = std::max(NumAccums, S + 1);
  Body << indent() << "s" << S << " = s" << S;
  if (WantRecurrence && R.nextBool(0.2)) {
    // Multi-op recurrence circuit: s = s * p + e.
    Body << " * p" << R.nextInRange(0, NumParams - 1);
    ++EstOps;
    MadeRecurrence = true;
  }
  Body << " + " << expr(static_cast<int>(R.nextInRange(0, 2))) << "\n";
  EstOps += 1;
}

void SourceGen::emitPlainWrite() {
  const int Array = NumPlainOut == 0 || R.nextBool(0.4)
                        ? (NumPlainOut < 4 ? NumPlainOut++ : 0)
                        : static_cast<int>(R.nextInRange(0, NumPlainOut - 1));
  NumPlainOut = std::max(NumPlainOut, Array + 1);
  const int Depth = static_cast<int>(R.nextInRange(1, 2));
  Body << indent() << "w" << Array << "[i] = " << expr(Depth) << "\n";
  EstOps += 3;
}

void SourceGen::emitConditional(int Depth) {
  MadeConditional = true;
  Body << indent() << "if (" << leaf() << " "
       << (R.nextBool(0.5) ? ">" : "<=") << " " << leaf() << ") then\n";
  EstOps += 2;
  ++Nesting;
  const int ThenStmts = static_cast<int>(R.nextInRange(1, 2));
  for (int S = 0; S < ThenStmts; ++S) {
    if (R.nextBool(0.3) && NumAccums < 3) {
      emitAccumulator();
    } else {
      const int Array = NumCondOut < 3 ? NumCondOut++ : 0;
      NumCondOut = std::max(NumCondOut, Array + 1);
      Body << indent() << "c" << Array << "[i] = "
           << expr(static_cast<int>(R.nextInRange(0, 2))) << "\n";
      EstOps += 3;
    }
  }
  --Nesting;
  if (R.nextBool(0.5)) {
    Body << indent() << "else\n";
    ++Nesting;
    if (Depth == 0 && R.nextBool(0.2)) {
      emitConditional(Depth + 1); // one level of nesting
    } else {
      const int Array = NumCondOut < 3 ? NumCondOut++ : 0;
      NumCondOut = std::max(NumCondOut, Array + 1);
      Body << indent() << "c" << Array << "[i] = "
           << expr(static_cast<int>(R.nextInRange(0, 1))) << "\n";
      EstOps += 3;
    }
    --Nesting;
  }
  Body << indent() << "end\n";
}

std::string SourceGen::expr(int Depth) {
  if (Depth <= 0)
    return leaf();
  const double U = R.nextDouble();
  if (U < C.DividerProb) {
    ++EstOps;
    EstOps += 16; // divider pressure: count its reservation weight
    if (R.nextBool(0.3))
      return "sqrt(" + expr(Depth - 1) + ")";
    return "(" + expr(Depth - 1) + " / (" + leaf() + " + 2))";
  }
  ++EstOps;
  return "(" + expr(Depth - 1) + " " + binop() + " " + expr(Depth - 1) + ")";
}

const char *SourceGen::binop() {
  const double U = R.nextDouble();
  if (U < 0.45)
    return "+";
  if (U < 0.70)
    return "-";
  return "*";
}

std::string SourceGen::leaf() {
  const double U = R.nextDouble();
  if (U < 0.55)
    return inputRead();
  if (U < 0.60 && NumPlainOut > 0) {
    // Cross-iteration (or future) read of a written array: exercises
    // load/store elimination and anti dependences.
    const int Array = static_cast<int>(R.nextInRange(0, NumPlainOut - 1));
    // Negative offsets into written arrays close recurrence circuits via
    // load/store elimination; only draw them when the loop is meant to
    // carry recurrences.
    const int Off = static_cast<int>(
        WantRecurrence ? R.nextInRange(-C.MaxOmega, 1) : R.nextInRange(0, 1));
    std::ostringstream OS;
    OS << "w" << Array << "[i" << (Off < 0 ? "-" : "+") << std::abs(Off)
       << "]";
    EstOps += Off >= 1 ? 2 : 0; // future reads stay loads
    return OS.str();
  }
  if (U < 0.72)
    return "p" + std::to_string(R.nextInRange(0, NumParams - 1));
  if (U < 0.78)
    return formatNumber(0.5 + R.nextDouble() * 3.0, 2);
  if (U < 0.82)
    return "i";
  return inputRead();
}

std::string SourceGen::inputRead() {
  const int Array = static_cast<int>(R.nextInRange(0, NumInArrays - 1));
  const int Off = static_cast<int>(R.nextInRange(-2, 2));
  std::ostringstream OS;
  OS << "in" << Array << "[i";
  if (Off != 0)
    OS << (Off < 0 ? "-" : "+") << std::abs(Off);
  OS << "]";
  EstOps += 2;
  return OS.str();
}

} // namespace

std::string lsms::generateRandomLoopSource(Rng &R,
                                           const RandomLoopConfig &Config) {
  SourceGen G(R, Config);
  return G.run();
}

LoopBody lsms::generateRandomLoop(uint64_t Seed,
                                  const RandomLoopConfig &Config) {
  Rng R(Seed);
  const std::string Source = generateRandomLoopSource(R, Config);
  LoopBody Body;
  const std::string Err =
      compileLoop(Source, "rand" + std::to_string(Seed), Body);
  if (!Err.empty()) {
    std::fprintf(stderr,
                 "random loop generator produced invalid source (%s):\n%s\n",
                 Err.c_str(), Source.c_str());
    assert(false && "random loop generator produced invalid source");
  }
  return Body;
}

LoopBody lsms::generateRandomLoop(uint64_t Seed) {
  Rng R(Seed ^ 0xABCDEF);
  return generateRandomLoop(Seed, drawTable2Config(R));
}

//===----------------------------------------------------------------------===//
// Irregular loops: while-exits, data-dependent subscripts, seeded alias
// probabilities.
//===----------------------------------------------------------------------===//

namespace {

/// Emits DSL text for one irregular loop. Kept entirely separate from
/// SourceGen so the Table-2 generator's RNG consumption (which existing
/// goldens pin) is untouched.
class IrregularGen {
public:
  IrregularGen(Rng &R, const IrregularLoopConfig &C) : R(R), C(C) {}

  IrregularSource run();

private:
  void emitHistogram();
  void emitDisjointRegions();
  void emitPointerChase();
  void emitFiller();
  void emitAccumulator();
  std::string expr(int Depth);
  std::string leaf();
  std::string inputRead();

  Rng &R;
  const IrregularLoopConfig &C;
  std::ostringstream Params;
  std::ostringstream Body;
  std::vector<std::pair<std::string, double>> AliasProb;
  int EstOps = 0;
  int NumW = 0;
  bool HaveS0 = false;
  bool HaveQ0 = false; ///< the disjoint pattern's scalar recurrence
};

IrregularSource IrregularGen::run() {
  Params << "param p0 = 0.75\nparam p1 = 1.25\n";

  // Irregular core pattern.
  const double TotalW =
      C.HistogramWeight + C.DisjointWeight + C.ChaseWeight;
  const double U = R.nextDouble() * (TotalW > 0 ? TotalW : 1.0);
  if (U < C.HistogramWeight)
    emitHistogram();
  else if (U < C.HistogramWeight + C.DisjointWeight)
    emitDisjointRegions();
  else
    emitPointerChase();

  // Affine filler around the core.
  while (EstOps < C.TargetOps)
    emitFiller();

  // A live-out accumulator is always present: it keeps the loop's results
  // observable and gives while-exit conditions a monotone operand.
  emitAccumulator();

  // Optional while-style exit clause (do-while semantics: the condition is
  // evaluated from end-of-iteration bindings; the first false value marks
  // the last executed iteration).
  const bool HasWhile = R.nextBool(C.WhileProb);
  std::string WhileClause;
  if (HasWhile) {
    // s0 accumulates in0 reads in [1, 3): after j iterations it lies in
    // [j, 3j). A threshold beyond 3*Window never fires (the NoEarlyExit
    // assumption holds); a threshold inside the window's reach fires
    // mid-window (observable misspeculation for speculative schedules).
    const bool Fires = R.nextBool(0.5);
    const long Threshold =
        Fires ? R.nextInRange(8, std::max<long>(9, C.Window))
              : 4 * C.Window + R.nextInRange(0, 64);
    std::ostringstream W;
    W << " while (s0 < " << Threshold << ")";
    WhileClause = W.str();
  }

  IrregularSource Out;
  std::ostringstream Src;
  Src << Params.str() << "loop i = 1, n" << WhileClause << "\n"
      << Body.str() << "end\n";
  Out.Source = Src.str();
  Out.ArrayAliasProb = AliasProb;
  Out.HasWhile = HasWhile;
  return Out;
}

void IrregularGen::emitHistogram() {
  // h0[b0] = h0[b0] + p0 with a data-dependent bucket b0 = in0[i] * S.
  // Memory values lie in [1, 3), so buckets spread over ~2S integers. The
  // stamped estimate models cross-iteration collisions (birthday bound over
  // the window); the replay harness additionally counts the same-iteration
  // load/store collision, so mid/large scales get dropped by speculation
  // and then observably violate — exactly the misspeculation the harness
  // must surface. Small scales estimate ~1 and stay serialized.
  static const long Scales[5] = {4, 48, 768, 4096, 16384};
  const long S = Scales[R.nextBelow(5)];
  const double Buckets = 2.0 * static_cast<double>(S);
  const double Pairs =
      0.5 * static_cast<double>(C.Window) * static_cast<double>(C.Window - 1);
  const double Est = 1.0 - detExp(-Pairs / Buckets);
  AliasProb.emplace_back("h0", Est);
  Body << "  b0 = in0[i] * " << S << "\n";
  Body << "  h0[b0] = h0[b0] + p0\n";
  EstOps += 8; // load, mul, indirect load/store, fadd, address streams
}

void IrregularGen::emitDisjointRegions() {
  // Store region [8, 24] and load region [72, 88] of one array are
  // provably disjoint, but the subscripts are data-dependent so the front
  // end must serialize them. Speculation drops the group (low stamped
  // probability), the NoAlias assumption holds on every trace, and the
  // conservative store->load recurrence (~15 cycles through the load
  // latency) collapses to the scalar q0 recurrence (~3 cycles): the
  // canonical held-assumption speculative win.
  AliasProb.emplace_back("g0", 0.01 + 0.04 * R.nextDouble());
  Params << "param q0 = 0\n";
  HaveQ0 = true;
  Body << "  b0 = in0[i] * 8\n";
  Body << "  j0 = (in0[i] * 8) + 64\n";
  Body << "  g0[b0] = (q0 * p0) + in1[i]\n";
  Body << "  q0 = g0[j0] + (q0 * 0.5)\n";
  EstOps += 12;
}

void IrregularGen::emitPointerChase() {
  // q1 = nx0[q1]: a register recurrence through the load latency (floor of
  // 13 cycles for both lowerings — speculation cannot remove register
  // flow). An optional update store to the same array adds a may-alias
  // group: written either to a disjoint high region (assumption holds) or
  // into the chase range (likely violated / kept, drawn per seed).
  Params << "param q1 = 1\n";
  Body << "  q1 = nx0[q1]\n";
  EstOps += 4;
  if (R.nextBool(0.7)) {
    const bool Disjoint = R.nextBool(0.5);
    if (Disjoint) {
      AliasProb.emplace_back("nx0", 0.02 + 0.05 * R.nextDouble());
      Body << "  u0 = (in0[i] * 4) + 200\n";
    } else {
      // Overlapping region: draw whether the (wrong) estimate still gets
      // the group dropped — violated assumptions and kept-arc loops are
      // both populations the harness needs.
      AliasProb.emplace_back("nx0", R.nextBool(0.5) ? 0.5 : 0.9);
      Body << "  u0 = in0[i]\n";
    }
    Body << "  nx0[u0] = (q1 * p0) + in0[i]\n";
    EstOps += 6;
  }
}

void IrregularGen::emitFiller() {
  const int Array = NumW < 3 ? NumW++ : static_cast<int>(R.nextBelow(
                                            static_cast<uint64_t>(NumW)));
  Body << "  w" << Array << "[i] = "
       << expr(static_cast<int>(R.nextInRange(1, 2))) << "\n";
  EstOps += 3;
}

void IrregularGen::emitAccumulator() {
  Params << "param s0 = 0\n";
  HaveS0 = true;
  Body << "  s0 = s0 + " << (HaveQ0 ? "q0" : inputRead()) << "\n";
  EstOps += 1;
}

std::string IrregularGen::expr(int Depth) {
  if (Depth <= 0)
    return leaf();
  ++EstOps;
  const double U = R.nextDouble();
  const char *Op = U < 0.45 ? "+" : U < 0.70 ? "-" : "*";
  return "(" + expr(Depth - 1) + " " + Op + " " + expr(Depth - 1) + ")";
}

std::string IrregularGen::leaf() {
  const double U = R.nextDouble();
  if (U < 0.55)
    return inputRead();
  if (U < 0.75)
    return "p" + std::to_string(R.nextBelow(2));
  if (U < 0.85)
    return formatNumber(0.5 + R.nextDouble() * 3.0, 2);
  return "i";
}

std::string IrregularGen::inputRead() {
  const int Array = static_cast<int>(R.nextBelow(2));
  const int Off = static_cast<int>(R.nextInRange(-2, 2));
  std::ostringstream OS;
  OS << "in" << Array << "[i";
  if (Off != 0)
    OS << (Off < 0 ? "-" : "+") << std::abs(Off);
  OS << "]";
  EstOps += 2;
  return OS.str();
}

} // namespace

IrregularSource
lsms::generateIrregularLoopSource(Rng &R, const IrregularLoopConfig &Config) {
  IrregularGen G(R, Config);
  return G.run();
}

LoopBody lsms::generateIrregularLoop(uint64_t Seed,
                                     const IrregularLoopConfig &Config) {
  Rng R(Seed);
  const IrregularSource Gen = generateIrregularLoopSource(R, Config);
  LoopBody Body;
  const std::string Err =
      compileLoop(Gen.Source, "irr" + std::to_string(Seed), Body);
  if (!Err.empty()) {
    std::fprintf(stderr,
                 "irregular loop generator produced invalid source (%s):\n%s\n",
                 Err.c_str(), Gen.Source.c_str());
    assert(false && "irregular loop generator produced invalid source");
    return Body;
  }
  // Stamp the generator's collision estimates onto the may-alias groups of
  // the arrays it knows about (both arcs of a group carry the same stamp).
  for (MemDep &Dep : Body.MemDeps) {
    if (Dep.Conf != ArcConfidence::MayAlias)
      continue;
    const int ArrayId = Body.op(Dep.Src).ArrayId;
    if (ArrayId < 0 ||
        static_cast<size_t>(ArrayId) >= Body.ArrayNames.size())
      continue;
    const std::string &Name = Body.ArrayNames[static_cast<size_t>(ArrayId)];
    for (const auto &[ArrayName, Prob] : Gen.ArrayAliasProb)
      if (ArrayName == Name)
        Dep.Prob = Prob;
  }
  return Body;
}

LoopBody lsms::generateIrregularLoop(uint64_t Seed) {
  return generateIrregularLoop(Seed, IrregularLoopConfig());
}
