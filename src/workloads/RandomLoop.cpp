#include "workloads/RandomLoop.h"

#include "frontend/LoopCompiler.h"
#include "support/Statistics.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace lsms;

RandomLoopConfig lsms::drawTable2Config(Rng &R) {
  RandomLoopConfig C;
  // Log-normal op-count distribution fit to Table 2: median 18, 90th
  // percentile 80, clamped to [4, 400]. Approximate a standard normal
  // with the sum of four uniforms (Irwin-Hall).
  const double Z =
      (R.nextDouble() + R.nextDouble() + R.nextDouble() + R.nextDouble() -
       2.0) *
      std::sqrt(3.0);
  const double Ops = std::exp(2.89 + 1.45 * Z);
  C.TargetOps = static_cast<int>(std::min(900.0, std::max(4.0, Ops)));
  return C;
}

namespace {

/// Emits DSL text for one random loop.
class SourceGen {
public:
  SourceGen(Rng &R, const RandomLoopConfig &C) : R(R), C(C) {}

  std::string run();

private:
  // ---- statement emitters ----
  void emitRecurrence();
  void emitAccumulator();
  void emitPlainWrite();
  void emitConditional(int Depth);
  void statement(int CondDepth);

  // ---- expression synthesis ----
  std::string expr(int Depth);
  std::string leaf();
  std::string inputRead();
  const char *binop();

  std::string indent() const { return std::string(2 * (Nesting + 1), ' '); }

  Rng &R;
  const RandomLoopConfig &C;
  std::ostringstream Body;
  int EstOps = 0;
  int NumInArrays = 0;
  int NumPlainOut = 0;
  int NumCondOut = 0;
  int NumRecOut = 0;
  int NumAccums = 0;
  int NumParams = 0;
  int Nesting = 0;
  bool WantRecurrence = false;
  bool WantConditional = false;
  bool MadeRecurrence = false;
  bool MadeConditional = false;
};

std::string SourceGen::run() {
  WantRecurrence = R.nextBool(C.RecurrenceProb);
  WantConditional = R.nextBool(C.ConditionalProb);
  NumInArrays = static_cast<int>(R.nextInRange(1, 3));
  NumParams = static_cast<int>(R.nextInRange(1, 3));

  const long First = R.nextInRange(1, 4);

  while (EstOps < C.TargetOps || (WantRecurrence && !MadeRecurrence) ||
         (WantConditional && !MadeConditional))
    statement(/*CondDepth=*/0);

  std::ostringstream Out;
  for (int P = 0; P < NumParams; ++P)
    Out << "param p" << P << " = "
        << formatNumber(0.25 + 0.5 * static_cast<double>(P), 2) << "\n";
  for (int S = 0; S < NumAccums; ++S)
    Out << "param s" << S << " = 0\n";
  Out << "loop i = " << First << ", n\n" << Body.str() << "end\n";
  return Out.str();
}

void SourceGen::statement(int CondDepth) {
  // Priorities: satisfy the requested classes first, then mix.
  if (CondDepth == 0 && WantRecurrence && !MadeRecurrence) {
    emitRecurrence();
    return;
  }
  if (CondDepth == 0 && WantConditional && !MadeConditional) {
    emitConditional(CondDepth);
    return;
  }
  const double U = R.nextDouble();
  if (CondDepth == 0 && WantConditional && U < 0.15) {
    emitConditional(CondDepth);
  } else if (CondDepth == 0 && WantRecurrence && U < 0.30) {
    emitRecurrence();
  } else if (U < 0.45 && (NumAccums > 0 || U < 0.38)) {
    emitAccumulator();
  } else {
    emitPlainWrite();
  }
}

void SourceGen::emitRecurrence() {
  // w[i] = f(w[i-d], ...): load/store elimination turns this into a
  // non-trivial recurrence circuit through rotating registers.
  const int Array = NumRecOut < 2 ? NumRecOut++ : 0;
  NumRecOut = std::max(NumRecOut, Array + 1);
  const int D = static_cast<int>(R.nextInRange(1, C.MaxOmega));
  const int Depth = static_cast<int>(R.nextInRange(0, 1));
  Body << indent() << "r" << Array << "[i] = r" << Array << "[i-" << D
       << "]";
  if (R.nextBool(0.6)) {
    Body << " * p" << R.nextInRange(0, NumParams - 1);
    ++EstOps;
  }
  Body << " + " << expr(Depth) << "\n";
  EstOps += 4; // fadd + store + address streams
  MadeRecurrence = true;
}

void SourceGen::emitAccumulator() {
  const int S = NumAccums == 0 || R.nextBool(0.5)
                    ? (NumAccums < 3 ? NumAccums++ : 0)
                    : static_cast<int>(R.nextInRange(0, NumAccums - 1));
  NumAccums = std::max(NumAccums, S + 1);
  Body << indent() << "s" << S << " = s" << S;
  if (WantRecurrence && R.nextBool(0.2)) {
    // Multi-op recurrence circuit: s = s * p + e.
    Body << " * p" << R.nextInRange(0, NumParams - 1);
    ++EstOps;
    MadeRecurrence = true;
  }
  Body << " + " << expr(static_cast<int>(R.nextInRange(0, 2))) << "\n";
  EstOps += 1;
}

void SourceGen::emitPlainWrite() {
  const int Array = NumPlainOut == 0 || R.nextBool(0.4)
                        ? (NumPlainOut < 4 ? NumPlainOut++ : 0)
                        : static_cast<int>(R.nextInRange(0, NumPlainOut - 1));
  NumPlainOut = std::max(NumPlainOut, Array + 1);
  const int Depth = static_cast<int>(R.nextInRange(1, 2));
  Body << indent() << "w" << Array << "[i] = " << expr(Depth) << "\n";
  EstOps += 3;
}

void SourceGen::emitConditional(int Depth) {
  MadeConditional = true;
  Body << indent() << "if (" << leaf() << " "
       << (R.nextBool(0.5) ? ">" : "<=") << " " << leaf() << ") then\n";
  EstOps += 2;
  ++Nesting;
  const int ThenStmts = static_cast<int>(R.nextInRange(1, 2));
  for (int S = 0; S < ThenStmts; ++S) {
    if (R.nextBool(0.3) && NumAccums < 3) {
      emitAccumulator();
    } else {
      const int Array = NumCondOut < 3 ? NumCondOut++ : 0;
      NumCondOut = std::max(NumCondOut, Array + 1);
      Body << indent() << "c" << Array << "[i] = "
           << expr(static_cast<int>(R.nextInRange(0, 2))) << "\n";
      EstOps += 3;
    }
  }
  --Nesting;
  if (R.nextBool(0.5)) {
    Body << indent() << "else\n";
    ++Nesting;
    if (Depth == 0 && R.nextBool(0.2)) {
      emitConditional(Depth + 1); // one level of nesting
    } else {
      const int Array = NumCondOut < 3 ? NumCondOut++ : 0;
      NumCondOut = std::max(NumCondOut, Array + 1);
      Body << indent() << "c" << Array << "[i] = "
           << expr(static_cast<int>(R.nextInRange(0, 1))) << "\n";
      EstOps += 3;
    }
    --Nesting;
  }
  Body << indent() << "end\n";
}

std::string SourceGen::expr(int Depth) {
  if (Depth <= 0)
    return leaf();
  const double U = R.nextDouble();
  if (U < C.DividerProb) {
    ++EstOps;
    EstOps += 16; // divider pressure: count its reservation weight
    if (R.nextBool(0.3))
      return "sqrt(" + expr(Depth - 1) + ")";
    return "(" + expr(Depth - 1) + " / (" + leaf() + " + 2))";
  }
  ++EstOps;
  return "(" + expr(Depth - 1) + " " + binop() + " " + expr(Depth - 1) + ")";
}

const char *SourceGen::binop() {
  const double U = R.nextDouble();
  if (U < 0.45)
    return "+";
  if (U < 0.70)
    return "-";
  return "*";
}

std::string SourceGen::leaf() {
  const double U = R.nextDouble();
  if (U < 0.55)
    return inputRead();
  if (U < 0.60 && NumPlainOut > 0) {
    // Cross-iteration (or future) read of a written array: exercises
    // load/store elimination and anti dependences.
    const int Array = static_cast<int>(R.nextInRange(0, NumPlainOut - 1));
    // Negative offsets into written arrays close recurrence circuits via
    // load/store elimination; only draw them when the loop is meant to
    // carry recurrences.
    const int Off = static_cast<int>(
        WantRecurrence ? R.nextInRange(-C.MaxOmega, 1) : R.nextInRange(0, 1));
    std::ostringstream OS;
    OS << "w" << Array << "[i" << (Off < 0 ? "-" : "+") << std::abs(Off)
       << "]";
    EstOps += Off >= 1 ? 2 : 0; // future reads stay loads
    return OS.str();
  }
  if (U < 0.72)
    return "p" + std::to_string(R.nextInRange(0, NumParams - 1));
  if (U < 0.78)
    return formatNumber(0.5 + R.nextDouble() * 3.0, 2);
  if (U < 0.82)
    return "i";
  return inputRead();
}

std::string SourceGen::inputRead() {
  const int Array = static_cast<int>(R.nextInRange(0, NumInArrays - 1));
  const int Off = static_cast<int>(R.nextInRange(-2, 2));
  std::ostringstream OS;
  OS << "in" << Array << "[i";
  if (Off != 0)
    OS << (Off < 0 ? "-" : "+") << std::abs(Off);
  OS << "]";
  EstOps += 2;
  return OS.str();
}

} // namespace

std::string lsms::generateRandomLoopSource(Rng &R,
                                           const RandomLoopConfig &Config) {
  SourceGen G(R, Config);
  return G.run();
}

LoopBody lsms::generateRandomLoop(uint64_t Seed,
                                  const RandomLoopConfig &Config) {
  Rng R(Seed);
  const std::string Source = generateRandomLoopSource(R, Config);
  LoopBody Body;
  const std::string Err =
      compileLoop(Source, "rand" + std::to_string(Seed), Body);
  if (!Err.empty()) {
    std::fprintf(stderr,
                 "random loop generator produced invalid source (%s):\n%s\n",
                 Err.c_str(), Source.c_str());
    assert(false && "random loop generator produced invalid source");
  }
  return Body;
}

LoopBody lsms::generateRandomLoop(uint64_t Seed) {
  Rng R(Seed ^ 0xABCDEF);
  return generateRandomLoop(Seed, drawTable2Config(R));
}
