//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-built kernel loop bodies, starting with the paper's Figure 1 sample
/// loop. Most kernels are written in the loop DSL (see Suite.h); the ones
/// here are constructed directly with IRBuilder so the scheduler can be
/// exercised without the front end.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_WORKLOADS_KERNELS_H
#define LSMS_WORKLOADS_KERNELS_H

#include "ir/LoopBody.h"

namespace lsms {

/// The paper's Figure 1 loop after load/store elimination:
///   do i = 3, n
///     x(i) = x(i-1) + y(i-2)
///     y(i) = y(i-1) + x(i-2)
/// Cross-iteration reads flow through rotating registers (omega 1 and 2);
/// the stores keep memory up to date. MII = ResMII = 2 on the default
/// machine (two FP adds on one adder).
LoopBody buildSampleLoop();

/// A single-statement streaming kernel: z(i) = a*x(i) + y(i) (daxpy-like),
/// with loads, a multiply, an add, and a store. No recurrences beyond the
/// address streams.
LoopBody buildDaxpyLoop();

/// A reduction: s = s + x(i)*y(i) (inner product). The accumulator is a
/// lifetime-fixed self-recurrence and is live-out.
LoopBody buildDotLoop();

/// First-order linear recurrence: x(i) = a*x(i-1) + b (RecMII-bound).
LoopBody buildLinearRecurrenceLoop();

/// A loop with a conditional, if-converted into predicated stores:
///   if (x(i) > 0) then y(i) = x(i) else y(i) = -x(i)
LoopBody buildPredicatedAbsLoop();

/// A divider-bound kernel: z(i) = x(i) / y(i).
LoopBody buildDivideLoop();

} // namespace lsms

#endif // LSMS_WORKLOADS_KERNELS_H
