//===----------------------------------------------------------------------===//
/// \file Ablation of the Section 5.2 lifetime-sensitive heuristics. The
/// paper: "This performance is due to the bidirectional heuristics of
/// Section 5.2; without them, the slack scheduler generates nearly the
/// same register pressure as Cydrome's scheduler."
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  struct Config {
    const char *Name;
    SchedulerOptions Options;
  };
  const Config Configs[] = {
      {"bidirectional slack", SchedulerOptions::slack()},
      {"unidirectional slack", SchedulerOptions::unidirectionalSlack()},
      {"cydrome-style", SchedulerOptions::cydrome()},
  };

  TextTable T;
  T.setHeader({"Scheduler", "opt II %", "total MaxLive", "mean gap",
               "gap=0 %", "gap<=10 %"});
  for (const Config &C : Configs) {
    long Opt = 0, Done = 0, TotalMaxLive = 0;
    std::vector<double> Gaps;
    long GapZero = 0, GapTen = 0;
    for (const LoopBody &Body : Suite) {
      const SchedOutcome O = runScheduler(Body, Machine, C.Options);
      if (!O.Success)
        continue;
      ++Done;
      Opt += O.II == O.MII ? 1 : 0;
      TotalMaxLive += O.MaxLive;
      const long Gap = O.MaxLive - O.MinAvgAtII;
      Gaps.push_back(static_cast<double>(Gap));
      GapZero += Gap <= 0 ? 1 : 0;
      GapTen += Gap <= 10 ? 1 : 0;
    }
    const QuantileSummary S = summarize(Gaps);
    T.addRow({C.Name,
              formatNumber(100.0 * static_cast<double>(Opt) /
                               static_cast<double>(Done),
                           1),
              std::to_string(TotalMaxLive), formatNumber(S.Mean, 2),
              formatNumber(100.0 * static_cast<double>(GapZero) /
                               static_cast<double>(Done),
                           1),
              formatNumber(100.0 * static_cast<double>(GapTen) /
                               static_cast<double>(Done),
                           1)});
  }

  std::cout << "Ablation: lifetime-sensitive bidirectional placement ("
            << Suite.size() << " loops)\n";
  T.print(std::cout);
  std::cout << "\nExpected shape: unidirectional slack pressure ~= "
               "cydrome-style pressure >> bidirectional slack pressure.\n";
  return 0;
}
