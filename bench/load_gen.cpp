//===----------------------------------------------------------------------===//
/// \file load_gen — closed-loop load generator for a running
/// schedule_server: N connections, each pipelining JSONL requests built
/// from the deterministic bench corpus, reporting throughput and latency
/// percentiles (and shed counts, which makes it double as an overload
/// probe).
///
/// Usage:
///   load_gen --port=P [--host=A] [--connections=N] [--requests=N]
///            [--pipeline=N] [--engine=slack|bnb|sat] [--corpus=N]
///            [--seed=S] [--passes=N] [--disjoint] [--json]
///   --requests    total request lines across all connections (default:
///                 one pass over the corpus per connection, times --passes)
///   --pipeline    in-flight lines per connection (default 8)
///   --corpus      random sources appended to the suite kernels (default 16)
///   --disjoint    give each connection a disjoint corpus slice
///   --json        machine-readable result on stdout
//===----------------------------------------------------------------------===//

#include "NetBenchCommon.h"
#include "ServiceBenchCommon.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  NetLoadConfig Config;
  int CorpusRandom = 16;
  uint64_t Seed = 0x19930601;
  int Passes = 1;
  long TotalRequests = -1;
  bool Json = false;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    const auto intArg = [&](const char *Prefix, auto &Dst) {
      const size_t Len = std::strlen(Prefix);
      if (Arg.rfind(Prefix, 0) != 0)
        return false;
      Dst = static_cast<std::remove_reference_t<decltype(Dst)>>(
          std::strtol(Arg.c_str() + Len, nullptr, 10));
      return true;
    };
    if (Arg.rfind("--host=", 0) == 0) {
      Config.Host = Arg.substr(7);
    } else if (Arg.rfind("--engine=", 0) == 0) {
      Config.Engine = Arg.substr(9);
    } else if (intArg("--port=", Config.Port) ||
               intArg("--connections=", Config.Connections) ||
               intArg("--requests=", TotalRequests) ||
               intArg("--pipeline=", Config.PipelineDepth) ||
               intArg("--corpus=", CorpusRandom) ||
               intArg("--seed=", Seed) || intArg("--passes=", Passes)) {
      // parsed
    } else if (Arg == "--disjoint") {
      Config.DisjointSlices = true;
    } else if (Arg == "--json") {
      Json = true;
    } else {
      std::cerr << "usage: load_gen --port=P [--host=A] [--connections=N]\n"
                   "                [--requests=N] [--pipeline=N]\n"
                   "                [--engine=slack|bnb|sat] [--corpus=N]\n"
                   "                [--seed=S] [--passes=N] [--disjoint]\n"
                   "                [--json]\n";
      return 2;
    }
  }
  if (Config.Port == 0) {
    std::cerr << "load_gen: --port is required\n";
    return 2;
  }

  Config.Corpus = serviceBenchCorpus(CorpusRandom, Seed);
  if (TotalRequests > 0) {
    Config.RequestsPerConnection = static_cast<int>(
        (TotalRequests + Config.Connections - 1) / Config.Connections);
  } else {
    const size_t SliceSize =
        Config.DisjointSlices
            ? (Config.Corpus.size() +
               static_cast<size_t>(Config.Connections) - 1) /
                  static_cast<size_t>(Config.Connections)
            : Config.Corpus.size();
    Config.RequestsPerConnection =
        static_cast<int>(SliceSize) * std::max(1, Passes);
  }

  const NetLoadResult R = runNetLoad(Config);
  if (!R.ok()) {
    std::cerr << "load_gen: " << R.Error << "\n";
    return 1;
  }
  char Rps[32], Secs[32];
  std::snprintf(Rps, sizeof(Rps), "%.1f", R.rps());
  std::snprintf(Secs, sizeof(Secs), "%.3f", R.Seconds);
  if (Json) {
    std::cout << "{\"connections\":" << Config.Connections
              << ",\"sent\":" << R.Sent << ",\"received\":" << R.Received
              << ",\"errors\":" << R.Errors << ",\"shed\":" << R.Shed
              << ",\"seconds\":" << Secs << ",\"rps\":" << Rps
              << ",\"p50_us\":" << R.P50Us << ",\"p99_us\":" << R.P99Us
              << ",\"p999_us\":" << R.P999Us << ",\"max_us\":" << R.MaxUs
              << "}\n";
  } else {
    std::cout << "load_gen: " << R.Received << " responses ("
              << R.Errors << " errors, " << R.Shed << " shed) over "
              << Config.Connections << " connections in " << Secs << "s  ["
              << Rps << " req/s]\n"
              << "latency: p50=" << R.P50Us << "us p99=" << R.P99Us
              << "us p999=" << R.P999Us << "us max=" << R.MaxUs << "us\n";
  }
  return R.Errors == 0 ? 0 : 1;
}
