//===----------------------------------------------------------------------===//
/// \file load_gen — load generator for a running schedule_server, in two
/// modes:
///
///  - closed loop (default): N connections, each pipelining JSONL
///    requests built from the deterministic bench corpus, reporting
///    throughput and latency percentiles (and shed counts, which makes
///    it double as an overload probe).
///  - open arrival (--open): requests arrive on a Poisson process at
///    --rps across --connections persistent connections; latency is
///    measured from the scheduled arrival (no coordinated omission) and
///    responses are classified per degradation tier.
///
/// Usage:
///   load_gen --port=P [--host=A] [--connections=N] [--requests=N]
///            [--pipeline=N] [--engine=slack|bnb|sat|portfolio]
///            [--corpus=N] [--seed=S] [--passes=N] [--disjoint] [--json]
///            [--open --rps=R [--threads=N]]
///   --requests    total request lines across all connections (default:
///                 one pass over the corpus per connection, times --passes;
///                 in open mode: total arrivals, default 10000)
///   --pipeline    in-flight lines per connection (closed loop, default 8)
///   --corpus      random sources appended to the suite kernels (default 16)
///   --disjoint    give each connection a disjoint corpus slice (closed)
///   --open        open-arrival mode (Poisson arrivals at --rps)
///   --rps         target aggregate arrival rate (open mode, required)
///   --threads     client event-loop threads (open mode, default: auto)
///   --json        machine-readable result on stdout
//===----------------------------------------------------------------------===//

#include "NetBenchCommon.h"
#include "ServiceBenchCommon.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace lsms;

namespace {

int runOpenMode(const OpenLoadConfig &Config, bool Json) {
  const OpenLoadResult R = runOpenLoad(Config);
  if (!R.ok()) {
    std::cerr << "load_gen: " << R.Error << "\n";
    return 1;
  }
  char Rps[32], Secs[32], Answered[32];
  std::snprintf(Rps, sizeof(Rps), "%.1f", R.rps());
  std::snprintf(Secs, sizeof(Secs), "%.3f", R.Seconds);
  std::snprintf(Answered, sizeof(Answered), "%.4f", R.answeredFraction());
  if (Json) {
    std::cout << "{\"mode\":\"open\",\"connections\":" << Config.Connections
              << ",\"target_rps\":" << Config.TargetRps
              << ",\"sent\":" << R.Sent << ",\"received\":" << R.Received
              << ",\"errors\":" << R.Errors << ",\"shed\":" << R.Shed
              << ",\"tier_exact\":" << R.TierExact
              << ",\"tier_slack\":" << R.TierSlack
              << ",\"tier_cached\":" << R.TierCached
              << ",\"answered_fraction\":" << Answered
              << ",\"seconds\":" << Secs << ",\"rps\":" << Rps
              << ",\"p50_us\":" << R.P50Us << ",\"p99_us\":" << R.P99Us
              << ",\"p999_us\":" << R.P999Us << ",\"max_us\":" << R.MaxUs
              << "}\n";
  } else {
    std::cout << "load_gen (open): " << R.Received << " responses ("
              << R.Errors << " errors, " << R.Shed << " shed; tiers "
              << R.TierExact << " exact / " << R.TierSlack << " slack / "
              << R.TierCached << " cached) over " << Config.Connections
              << " connections in " << Secs << "s  [" << Rps
              << " req/s of " << Config.TargetRps << " offered, "
              << Answered << " answered]\n"
              << "latency: p50=" << R.P50Us << "us p99=" << R.P99Us
              << "us p999=" << R.P999Us << "us max=" << R.MaxUs << "us\n";
  }
  return R.Errors == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  NetLoadConfig Config;
  int CorpusRandom = 16;
  uint64_t Seed = 0x19930601;
  int Passes = 1;
  long TotalRequests = -1;
  bool Json = false;
  bool Open = false;
  double TargetRps = 0;
  int ClientThreads = 0;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    const auto intArg = [&](const char *Prefix, auto &Dst) {
      const size_t Len = std::strlen(Prefix);
      if (Arg.rfind(Prefix, 0) != 0)
        return false;
      Dst = static_cast<std::remove_reference_t<decltype(Dst)>>(
          std::strtol(Arg.c_str() + Len, nullptr, 10));
      return true;
    };
    if (Arg.rfind("--host=", 0) == 0) {
      Config.Host = Arg.substr(7);
    } else if (Arg.rfind("--engine=", 0) == 0) {
      Config.Engine = Arg.substr(9);
    } else if (Arg.rfind("--rps=", 0) == 0) {
      TargetRps = std::strtod(Arg.c_str() + 6, nullptr);
    } else if (intArg("--port=", Config.Port) ||
               intArg("--connections=", Config.Connections) ||
               intArg("--requests=", TotalRequests) ||
               intArg("--pipeline=", Config.PipelineDepth) ||
               intArg("--corpus=", CorpusRandom) ||
               intArg("--seed=", Seed) || intArg("--passes=", Passes) ||
               intArg("--threads=", ClientThreads)) {
      // parsed
    } else if (Arg == "--disjoint") {
      Config.DisjointSlices = true;
    } else if (Arg == "--open") {
      Open = true;
    } else if (Arg == "--json") {
      Json = true;
    } else {
      std::cerr << "usage: load_gen --port=P [--host=A] [--connections=N]\n"
                   "                [--requests=N] [--pipeline=N]\n"
                   "                [--engine=slack|bnb|sat|portfolio]\n"
                   "                [--corpus=N] [--seed=S] [--passes=N]\n"
                   "                [--disjoint] [--json]\n"
                   "                [--open --rps=R [--threads=N]]\n";
      return 2;
    }
  }
  if (Config.Port == 0) {
    std::cerr << "load_gen: --port is required\n";
    return 2;
  }

  Config.Corpus = serviceBenchCorpus(CorpusRandom, Seed);

  if (Open) {
    if (TargetRps <= 0) {
      std::cerr << "load_gen: --open requires --rps=R > 0\n";
      return 2;
    }
    OpenLoadConfig OC;
    OC.Host = Config.Host;
    OC.Port = Config.Port;
    OC.Connections = Config.Connections;
    OC.TargetRps = TargetRps;
    OC.TotalRequests = TotalRequests > 0 ? TotalRequests : 10000;
    OC.ClientThreads = ClientThreads;
    OC.Seed = Seed;
    OC.Engine = Config.Engine;
    OC.Corpus = Config.Corpus;
    return runOpenMode(OC, Json);
  }

  if (TotalRequests > 0) {
    Config.RequestsPerConnection = static_cast<int>(
        (TotalRequests + Config.Connections - 1) / Config.Connections);
  } else {
    const size_t SliceSize =
        Config.DisjointSlices
            ? (Config.Corpus.size() +
               static_cast<size_t>(Config.Connections) - 1) /
                  static_cast<size_t>(Config.Connections)
            : Config.Corpus.size();
    Config.RequestsPerConnection =
        static_cast<int>(SliceSize) * std::max(1, Passes);
  }

  const NetLoadResult R = runNetLoad(Config);
  if (!R.ok()) {
    std::cerr << "load_gen: " << R.Error << "\n";
    return 1;
  }
  char Rps[32], Secs[32];
  std::snprintf(Rps, sizeof(Rps), "%.1f", R.rps());
  std::snprintf(Secs, sizeof(Secs), "%.3f", R.Seconds);
  if (Json) {
    std::cout << "{\"mode\":\"closed\",\"connections\":"
              << Config.Connections << ",\"sent\":" << R.Sent
              << ",\"received\":" << R.Received << ",\"errors\":" << R.Errors
              << ",\"shed\":" << R.Shed << ",\"seconds\":" << Secs
              << ",\"rps\":" << Rps << ",\"p50_us\":" << R.P50Us
              << ",\"p99_us\":" << R.P99Us << ",\"p999_us\":" << R.P999Us
              << ",\"max_us\":" << R.MaxUs << "}\n";
  } else {
    std::cout << "load_gen: " << R.Received << " responses ("
              << R.Errors << " errors, " << R.Shed << " shed) over "
              << Config.Connections << " connections in " << Secs << "s  ["
              << Rps << " req/s]\n"
              << "latency: p50=" << R.P50Us << "us p99=" << R.P99Us
              << "us p999=" << R.P999Us << "us max=" << R.MaxUs << "us\n";
  }
  return R.Errors == 0 ? 0 : 1;
}
