//===----------------------------------------------------------------------===//
/// \file The paper's future-work experiment (Section 8): how does
/// bidirectional slack scheduling fare on straight-line code, the context
/// where Integrated Prepass Scheduling was studied [8,3]? Compares
/// schedule length and register pressure of the bidirectional and
/// unidirectional policies on basic blocks (suite loop bodies viewed as
/// straight-line code).
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "core/AcyclicScheduler.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv, /*Default=*/400);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  struct Totals {
    long Length = 0;
    long MaxLive = 0;
    long Blocks = 0;
    long PressureWins = 0;
  };
  Totals Bi, Uni;
  long Ties = 0;
  for (const LoopBody &Body : Suite) {
    const DepGraph Graph(Body, Machine);
    const AcyclicSchedule A =
        scheduleStraightLine(Graph, SchedulerOptions::slack());
    const AcyclicSchedule B =
        scheduleStraightLine(Graph, SchedulerOptions::unidirectionalSlack());
    if (!A.Success || !B.Success)
      continue;
    ++Bi.Blocks;
    ++Uni.Blocks;
    Bi.Length += A.Length;
    Uni.Length += B.Length;
    Bi.MaxLive += A.MaxLive;
    Uni.MaxLive += B.MaxLive;
    if (A.MaxLive < B.MaxLive)
      ++Bi.PressureWins;
    else if (B.MaxLive < A.MaxLive)
      ++Uni.PressureWins;
    else
      ++Ties;
  }

  std::cout << "Straight-line slack scheduling (" << Bi.Blocks
            << " basic blocks)\n";
  TextTable T;
  T.setHeader({"policy", "total length", "total MaxLive", "pressure wins"});
  T.addRow({"bidirectional", std::to_string(Bi.Length),
            std::to_string(Bi.MaxLive), std::to_string(Bi.PressureWins)});
  T.addRow({"unidirectional", std::to_string(Uni.Length),
            std::to_string(Uni.MaxLive), std::to_string(Uni.PressureWins)});
  T.print(std::cout);
  std::cout << "(" << Ties << " ties)\n\n"
            << "Expected shape: comparable schedule lengths, markedly lower "
               "pressure for the bidirectional policy — supporting the "
               "paper's conjecture that slack scheduling integrates "
               "lifetime sensitivity where IPS merely switches heuristics.\n";
  return 0;
}
