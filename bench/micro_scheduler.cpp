//===----------------------------------------------------------------------===//
/// \file Google-benchmark micro-benchmarks for the scheduler's component
/// costs: dependence-graph construction, RecMII (circuit scan vs min-ratio
/// cycle), MinDist, and end-to-end scheduling, by loop size.
//===----------------------------------------------------------------------===//

#include "bounds/Bounds.h"
#include "core/ModuloScheduler.h"
#include "graph/Circuits.h"
#include "graph/MinDist.h"
#include "graph/MinRatioCycle.h"
#include "workloads/RandomLoop.h"

#include <benchmark/benchmark.h>

using namespace lsms;

namespace {

LoopBody loopOfSize(int TargetOps) {
  RandomLoopConfig Config;
  Config.TargetOps = TargetOps;
  Config.RecurrenceProb = 1.0; // keep RecMII interesting
  return generateRandomLoop(/*Seed=*/42 + TargetOps, Config);
}

const MachineModel &machine() {
  static MachineModel M = MachineModel::cydra5();
  return M;
}

void BM_DepGraphBuild(benchmark::State &State) {
  const LoopBody Body = loopOfSize(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    DepGraph Graph(Body, machine());
    benchmark::DoNotOptimize(Graph.arcs().size());
  }
  State.SetLabel(std::to_string(Body.numMachineOps()) + " ops");
}
BENCHMARK(BM_DepGraphBuild)->Arg(16)->Arg(64)->Arg(256);

void BM_RecMIIByRatio(benchmark::State &State) {
  const LoopBody Body = loopOfSize(static_cast<int>(State.range(0)));
  const DepGraph Graph(Body, machine());
  for (auto _ : State)
    benchmark::DoNotOptimize(computeRecMIIByRatio(Graph));
}
BENCHMARK(BM_RecMIIByRatio)->Arg(16)->Arg(64)->Arg(256);

void BM_RecMIIByCircuitScan(benchmark::State &State) {
  const LoopBody Body = loopOfSize(static_cast<int>(State.range(0)));
  const DepGraph Graph(Body, machine());
  for (auto _ : State) {
    const CircuitScan Scan = findElementaryCircuits(Graph);
    int RecMII = 1;
    for (const Circuit &C : Scan.Circuits)
      RecMII = std::max(RecMII, circuitRecMII(Graph, C.Nodes));
    benchmark::DoNotOptimize(RecMII);
  }
}
BENCHMARK(BM_RecMIIByCircuitScan)->Arg(16)->Arg(64);

void BM_MinDist(benchmark::State &State) {
  const LoopBody Body = loopOfSize(static_cast<int>(State.range(0)));
  const DepGraph Graph(Body, machine());
  const MIIBounds Bounds = computeMII(Graph);
  for (auto _ : State) {
    MinDistMatrix M;
    benchmark::DoNotOptimize(M.compute(Graph, Bounds.MII));
  }
}
BENCHMARK(BM_MinDist)->Arg(16)->Arg(64)->Arg(256);

void BM_ScheduleSlack(benchmark::State &State) {
  const LoopBody Body = loopOfSize(static_cast<int>(State.range(0)));
  const DepGraph Graph(Body, machine());
  for (auto _ : State) {
    const Schedule Sched = scheduleLoop(Graph);
    benchmark::DoNotOptimize(Sched.II);
  }
}
BENCHMARK(BM_ScheduleSlack)->Arg(16)->Arg(64)->Arg(256);

void BM_ScheduleCydrome(benchmark::State &State) {
  const LoopBody Body = loopOfSize(static_cast<int>(State.range(0)));
  const DepGraph Graph(Body, machine());
  for (auto _ : State) {
    const Schedule Sched = scheduleLoop(Graph, SchedulerOptions::cydrome());
    benchmark::DoNotOptimize(Sched.II);
  }
}
BENCHMARK(BM_ScheduleCydrome)->Arg(16)->Arg(64)->Arg(256);

} // namespace

BENCHMARK_MAIN();
