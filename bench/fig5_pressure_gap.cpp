//===----------------------------------------------------------------------===//
/// \file Regenerates Figure 5: distribution of MaxLive - MinAvg (register
/// pressure above the schedule-independent lower bound) for the
/// bidirectional slack scheduler ("New Scheduler") and the Cydrome-style
/// baseline ("Old Scheduler"). The paper reports 46% of loops at 0 and
/// 93% within 10 registers for the new scheduler.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "workloads/Suite.h"

#include <algorithm>
#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  Histogram New(1, 30), Old(1, 30);
  // Secondary reading of MinAvg (per-value ceilings, Section 3.2's literal
  // formula); values below the bound clamp to 0.
  Histogram NewCeil(1, 30), OldCeil(1, 30);
  for (const LoopBody &Body : Suite) {
    const SchedOutcome A =
        runScheduler(Body, Machine, SchedulerOptions::slack());
    const SchedOutcome B =
        runScheduler(Body, Machine, SchedulerOptions::cydrome());
    if (A.Success) {
      New.add(A.MaxLive - A.MinAvgAtII);
      NewCeil.add(std::max(0L, A.MaxLive - A.MinAvgPerValueCeilAtII));
    }
    if (B.Success) {
      Old.add(B.MaxLive - B.MinAvgAtII);
      OldCeil.add(std::max(0L, B.MaxLive - B.MinAvgPerValueCeilAtII));
    }
  }

  printComparison(std::cout,
                  "Figure 5: MaxLive - MinAvg (" +
                      std::to_string(Suite.size()) + " loops)",
                  New, "New Scheduler (bidirectional slack)", Old,
                  "Old Scheduler (Cydrome-style)", "MaxLive-MinAvg");

  std::cout << "\nNew scheduler: "
            << formatNumber(100.0 * New.fractionAtOrBelow(0), 1)
            << "% of loops achieve MinAvg exactly (paper: 46%); "
            << formatNumber(100.0 * New.fractionAtOrBelow(10), 1)
            << "% within 10 RRs (paper: 93%)\n";
  std::cout << "Old scheduler: "
            << formatNumber(100.0 * Old.fractionAtOrBelow(0), 1)
            << "% at MinAvg; "
            << formatNumber(100.0 * Old.fractionAtOrBelow(10), 1)
            << "% within 10 RRs\n";

  std::cout << "\nUnder the per-value-ceiling reading of MinAvg "
               "(Section 3.2's literal formula, gap clamped at 0):\n"
            << "  new: " << formatNumber(100.0 * NewCeil.fractionAtOrBelow(0), 1)
            << "% at bound, "
            << formatNumber(100.0 * NewCeil.fractionAtOrBelow(10), 1)
            << "% within 10; old: "
            << formatNumber(100.0 * OldCeil.fractionAtOrBelow(0), 1)
            << "% at bound, "
            << formatNumber(100.0 * OldCeil.fractionAtOrBelow(10), 1)
            << "% within 10\n";
  return 0;
}
