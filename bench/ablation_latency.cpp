//===----------------------------------------------------------------------===//
/// \file Latency-robustness experiment (Section 7: "other experiments with
/// different latencies for the functional units give very similar
/// performance results and compilation times"). Sweeps the load latency
/// and re-runs the suite.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv, /*Default=*/600);
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  TextTable T;
  T.setHeader({"load latency", "opt II %", "II/MII", "gap=0 %",
               "gap<=10 %", "sched time (s)"});
  for (const int LoadLatency : {1, 5, 13, 26}) {
    const MachineModel Machine = MachineModel::withLoadLatency(LoadLatency);
    long Opt = 0, Done = 0, SumII = 0, SumMII = 0, GapZero = 0, GapTen = 0;
    double Seconds = 0;
    for (const LoopBody &Body : Suite) {
      const SchedOutcome O =
          runScheduler(Body, Machine, SchedulerOptions::slack());
      Seconds += O.Stats.SecondsTotal;
      SumII += O.II;
      SumMII += O.MII;
      if (!O.Success)
        continue;
      ++Done;
      Opt += O.II == O.MII ? 1 : 0;
      const long Gap = O.MaxLive - O.MinAvgAtII;
      GapZero += Gap <= 0 ? 1 : 0;
      GapTen += Gap <= 10 ? 1 : 0;
    }
    T.addRow({std::to_string(LoadLatency),
              formatNumber(100.0 * static_cast<double>(Opt) /
                               static_cast<double>(Done),
                           1),
              formatNumber(static_cast<double>(SumII) /
                               static_cast<double>(SumMII),
                           3),
              formatNumber(100.0 * static_cast<double>(GapZero) /
                               static_cast<double>(Done),
                           1),
              formatNumber(100.0 * static_cast<double>(GapTen) /
                               static_cast<double>(Done),
                           1),
              formatNumber(Seconds, 2)});
  }

  std::cout << "Latency robustness: slack scheduler across load latencies ("
            << Suite.size() << " loops)\n";
  T.print(std::cout);
  std::cout << "\nExpected shape: near-optimal II percentage and pressure "
               "gaps stay flat across latencies.\n";
  return 0;
}
