//===----------------------------------------------------------------------===//
/// \file Regenerates Table 3: bidirectional slack-scheduling performance —
/// per-class optimality (II = MII), total II vs total MII, the II > MII
/// tail, and the Section 7 headline numbers (96% optimal, 1.01x minimum
/// execution time, 1.11x speedup over Cydrome's scheduler).
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/ParallelFor.h"
#include "support/Statistics.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const int Jobs = resolveJobs(jobsFromArgs(Argc, Argv));
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  // Per-loop slots filled across workers; every table below reads them in
  // suite order, so the report does not depend on the job count.
  std::vector<LoopAnalysis> Analyses(Suite.size());
  std::vector<SchedOutcome> Slack(Suite.size()), Cydrome(Suite.size());
  parallelFor(Jobs, static_cast<int>(Suite.size()), [&](int I) {
    const LoopBody &Body = Suite[static_cast<size_t>(I)];
    Analyses[static_cast<size_t>(I)] = analyzeLoop(Body, Machine);
    Slack[static_cast<size_t>(I)] =
        runScheduler(Body, Machine, SchedulerOptions::slack());
    Cydrome[static_cast<size_t>(I)] =
        runScheduler(Body, Machine, SchedulerOptions::cydrome());
  });

  printPerformanceTable(std::cout,
                        "Table 3: Slack Scheduling Performance (" +
                            std::to_string(Suite.size()) + " loops)",
                        Analyses, Slack);

  long SlackII = 0, CydromeII = 0;
  for (size_t I = 0; I < Suite.size(); ++I) {
    SlackII += Slack[I].II;
    CydromeII += Cydrome[I].II;
  }
  std::cout << "\nSpeedup over Cydrome's scheduler (total II ratio): "
            << formatNumber(static_cast<double>(CydromeII) /
                                static_cast<double>(SlackII),
                            3)
            << "x (paper: 1.11x)\n";
  return 0;
}
