//===----------------------------------------------------------------------===//
/// \file Differential sweep of the slack heuristic against the exact
/// branch-and-bound scheduler: II-gap and MaxLive-gap tables and histograms
/// on Table 2-calibrated random loops. Deterministic from a fixed seed, so
/// the output can serve as a regression reference.
///
/// Usage: exact_gap [num_loops] [max_ops] [seed]
//===----------------------------------------------------------------------===//

#include "exact/Oracle.h"

#include <cstdlib>
#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  OracleOptions Options;
  if (Argc > 1)
    Options.NumLoops = std::atoi(Argv[1]);
  if (Argc > 2)
    Options.MaxOps = std::atoi(Argv[2]);
  if (Argc > 3)
    Options.Seed = std::strtoull(Argv[3], nullptr, 0);
  if (Options.NumLoops <= 0 || Options.MaxOps < Options.MinOps) {
    std::cerr << "usage: exact_gap [num_loops] [max_ops] [seed]\n";
    return 1;
  }

  const OracleReport Report = runOracle(Options);
  std::cout << "Slack heuristic vs exact modulo scheduler ("
            << Report.Cases.size() << " random loops, <= "
            << Options.MaxOps << " ops, seed " << Options.Seed << ")\n\n";
  printOracleReport(std::cout, Report);

  int BadValidation = 0;
  for (const OracleCase &Case : Report.Cases) {
    if (!Case.HeurError.empty()) {
      std::cerr << Case.Name << ": heuristic schedule invalid: "
                << Case.HeurError << "\n";
      ++BadValidation;
    }
    if (!Case.ExactError.empty()) {
      std::cerr << Case.Name << ": exact schedule invalid: "
                << Case.ExactError << "\n";
      ++BadValidation;
    }
  }
  return BadValidation == 0 ? 0 : 1;
}
