//===----------------------------------------------------------------------===//
/// \file Differential sweep of the slack heuristic against the exact
/// branch-and-bound scheduler: II-gap and MaxLive-gap tables and histograms
/// on Table 2-calibrated random loops. Deterministic from a fixed seed, so
/// the output can serve as a regression reference.
///
/// Usage: exact_gap [num_loops] [max_ops] [seed] [--jobs N]
///
/// The sweep fans out across worker threads (--jobs, or LSMS_JOBS, or the
/// hardware by default) with results merged in loop order, so the report
/// is byte-identical at every job count.
//===----------------------------------------------------------------------===//

#include "exact/Oracle.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

using namespace lsms;

int main(int Argc, char **Argv) {
  OracleOptions Options;
  std::vector<const char *> Positional;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      Options.Jobs = std::atoi(Argv[++I]);
      continue;
    }
    Positional.push_back(Argv[I]);
  }
  if (Positional.size() > 0)
    Options.NumLoops = std::atoi(Positional[0]);
  if (Positional.size() > 1)
    Options.MaxOps = std::atoi(Positional[1]);
  if (Positional.size() > 2)
    Options.Seed = std::strtoull(Positional[2], nullptr, 0);
  if (Options.NumLoops <= 0 || Options.MaxOps < Options.MinOps) {
    std::cerr << "usage: exact_gap [num_loops] [max_ops] [seed] [--jobs N]\n";
    return 1;
  }

  const OracleReport Report = runOracle(Options);
  std::cout << "Slack heuristic vs exact modulo scheduler ("
            << Report.Cases.size() << " random loops, <= "
            << Options.MaxOps << " ops, seed " << Options.Seed << ")\n\n";
  printOracleReport(std::cout, Report);

  int BadValidation = 0;
  for (const OracleCase &Case : Report.Cases) {
    if (!Case.HeurError.empty()) {
      std::cerr << Case.Name << ": heuristic schedule invalid: "
                << Case.HeurError << "\n";
      ++BadValidation;
    }
    if (!Case.ExactError.empty()) {
      std::cerr << Case.Name << ": exact schedule invalid: "
                << Case.ExactError << "\n";
      ++BadValidation;
    }
  }
  return BadValidation == 0 ? 0 : 1;
}
