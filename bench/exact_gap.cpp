//===----------------------------------------------------------------------===//
/// \file Differential sweep of the slack heuristic against an exact modulo
/// scheduler: II-gap and MaxLive-gap tables and histograms on Table
/// 2-calibrated random loops. Deterministic from a fixed seed, so the
/// output can serve as a regression reference.
///
/// Usage: exact_gap [num_loops] [max_ops] [seed] [--jobs N] [--engine E]
///
/// --engine selects the exact decision procedure: bnb (branch-and-bound,
/// the default), sat (the CDCL encoding), portfolio (the staged bnb/sat
/// combination), or both — which runs the sweep once per engine, bnb and
/// sat and portfolio alike, and reports any verdict or II disagreement
/// between them (there must be none; they decide the same question).
///
/// The sweep fans out across worker threads (--jobs, or LSMS_JOBS, or the
/// hardware by default) with results merged in loop order, so the report
/// is byte-identical at every job count.
//===----------------------------------------------------------------------===//

#include "exact/Oracle.h"
#include "service/EngineFlag.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

using namespace lsms;

namespace {

/// Compares the two engines' sweeps case by case; returns the number of
/// disagreements printed. Timeout on either side proves nothing and is
/// skipped (budgets, not verdicts, differ there). Beyond the feasibility
/// verdict and the minimal II, certified MaxLive values must be mutually
/// consistent: same-kind certificates name the same minimum (family or
/// MinAvg), and a MinAvg-met global value can only sit at or below a
/// certified family minimum, so any violation means one engine's proof
/// is wrong.
int reportDisagreements(std::ostream &OS, const OracleReport &Bnb,
                        const OracleReport &Sat, const char *NameB,
                        const char *NameS) {
  int Disagreements = 0;
  for (size_t I = 0; I < Bnb.Cases.size() && I < Sat.Cases.size(); ++I) {
    const OracleCase &B = Bnb.Cases[I];
    const OracleCase &S = Sat.Cases[I];
    if (B.Status == ExactStatus::Timeout || S.Status == ExactStatus::Timeout)
      continue;
    const bool BFound = B.Status == ExactStatus::Optimal ||
                        B.Status == ExactStatus::Feasible;
    const bool SFound = S.Status == ExactStatus::Optimal ||
                        S.Status == ExactStatus::Feasible;
    if (BFound != SFound || (BFound && B.ExactII != S.ExactII)) {
      OS << "  " << B.Name << ": " << NameB << " "
         << exactStatusName(B.Status) << " II=" << B.ExactII << " vs "
         << NameS << " " << exactStatusName(S.Status) << " II=" << S.ExactII
         << "\n";
      ++Disagreements;
      continue;
    }
    const bool SameKind =
        maxLiveCertificatesAgree(B.Certificate, S.Certificate) &&
        B.Certificate != MaxLiveCertificate::None;
    if (!certifiedMaxLiveConsistent(B.ExactMaxLive, B.Certificate,
                                    S.ExactMaxLive, S.Certificate) ||
        (SameKind && B.ExactMaxLive != S.ExactMaxLive)) {
      OS << "  " << B.Name << ": certified MaxLive inconsistent: " << NameB
         << " " << B.ExactMaxLive << " ("
         << maxLiveCertificateName(B.Certificate) << ") vs " << NameS << " "
         << S.ExactMaxLive << " (" << maxLiveCertificateName(S.Certificate)
         << ")\n";
      ++Disagreements;
    }
  }
  return Disagreements;
}

int validationFailures(const OracleReport &Report, const char *Engine) {
  int Bad = 0;
  for (const OracleCase &Case : Report.Cases) {
    if (!Case.HeurError.empty()) {
      std::cerr << Case.Name << ": heuristic schedule invalid: "
                << Case.HeurError << "\n";
      ++Bad;
    }
    if (!Case.ExactError.empty()) {
      std::cerr << Case.Name << ": exact (" << Engine
                << ") schedule invalid: " << Case.ExactError << "\n";
      ++Bad;
    }
  }
  return Bad;
}

} // namespace

int main(int Argc, char **Argv) {
  OracleOptions Options;
  bool Both = false;
  std::vector<const char *> Positional;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      Options.Jobs = std::atoi(Argv[++I]);
      continue;
    }
    if (std::strcmp(Argv[I], "--engine") == 0 && I + 1 < Argc) {
      EngineSelection Sel;
      std::string EngineErr;
      if (!parseEngineSelection(Argv[++I], /*AllowSlack=*/false,
                                /*AllowAll=*/true, Sel, EngineErr)) {
        std::cerr << "exact_gap: " << EngineErr << "\n";
        return 1;
      }
      Both = Sel.All;
      if (!Sel.All)
        Options.Exact.Engine = Sel.Exact;
      continue;
    }
    if (applyExactBudgetFlag(Argv[I], Options.Exact))
      continue;
    Positional.push_back(Argv[I]);
  }
  if (Positional.size() > 0)
    Options.NumLoops = std::atoi(Positional[0]);
  if (Positional.size() > 1)
    Options.MaxOps = std::atoi(Positional[1]);
  if (Positional.size() > 2)
    Options.Seed = std::strtoull(Positional[2], nullptr, 0);
  if (Options.NumLoops <= 0 || Options.MaxOps < Options.MinOps) {
    std::cerr << "usage: exact_gap [num_loops] [max_ops] [seed] [--jobs N] "
                 "[--engine bnb|sat|portfolio|both]\n";
    return 1;
  }

  if (Both) {
    OracleOptions SatOptions = Options;
    OracleOptions PortfolioOptions = Options;
    Options.Exact.Engine = ExactEngineKind::BranchAndBound;
    SatOptions.Exact.Engine = ExactEngineKind::Sat;
    PortfolioOptions.Exact.Engine = ExactEngineKind::Portfolio;
    const OracleReport Bnb = runOracle(Options);
    const OracleReport Sat = runOracle(SatOptions);
    const OracleReport Pf = runOracle(PortfolioOptions);
    std::cout << "Slack heuristic vs exact modulo scheduler ("
              << Bnb.Cases.size() << " random loops, <= " << Options.MaxOps
              << " ops, seed " << Options.Seed << ", engine bnb)\n\n";
    printOracleReport(std::cout, Bnb);
    std::cout << "\nCross-engine check (bnb vs sat vs portfolio, "
              << Sat.Cases.size() << " loops):\n";
    const int Disagreements =
        reportDisagreements(std::cout, Bnb, Sat, "bnb", "sat") +
        reportDisagreements(std::cout, Bnb, Pf, "bnb", "portfolio") +
        reportDisagreements(std::cout, Sat, Pf, "sat", "portfolio");
    std::cout << (Disagreements == 0
                      ? "  engines agree on every non-timeout verdict\n"
                      : "")
              << "  disagreements: " << Disagreements << "\n";
    const int Bad = validationFailures(Bnb, "bnb") +
                    validationFailures(Sat, "sat") +
                    validationFailures(Pf, "portfolio");
    return Disagreements == 0 && Bad == 0 ? 0 : 1;
  }

  const OracleReport Report = runOracle(Options);
  std::cout << "Slack heuristic vs exact modulo scheduler ("
            << Report.Cases.size() << " random loops, <= "
            << Options.MaxOps << " ops, seed " << Options.Seed;
  // The default engine's header is part of the golden regression surface;
  // only non-default runs announce themselves.
  if (Options.Exact.Engine != ExactEngineKind::BranchAndBound)
    std::cout << ", engine " << exactEngineName(Options.Exact.Engine);
  std::cout << ")\n\n";
  printOracleReport(std::cout, Report);

  const int Bad =
      validationFailures(Report, exactEngineName(Options.Exact.Engine));
  return Bad == 0 ? 0 : 1;
}
