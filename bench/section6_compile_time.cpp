//===----------------------------------------------------------------------===//
/// \file Regenerates Section 6's compilation-time measurements: scheduling
/// wall time, backtracking statistics (central-loop iterations, forced
/// placements, ejections, step-6 invocations), the time split between
/// backtracking / RecMII / MinDist, and the comparison against the
/// Cydrome-style scheduler (paper: 6.5x slower, 3.7x more backtracking).
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/ParallelFor.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

namespace {

struct Totals {
  long Loops = 0;
  long LoopsNoBacktracking = 0;
  long OpsInBacktrackedLoops = 0;
  long Placements = 0;
  long Iterations = 0;
  long Forced = 0;
  long Ejections = 0;
  long Step6 = 0;
  double Seconds = 0;
  double SecondsBacktracking = 0;
  double SecondsRecMII = 0;
  double SecondsMinDist = 0;
};

Totals runAll(const std::vector<LoopBody> &Suite,
              const MachineModel &Machine, const SchedulerOptions &Options,
              int Jobs) {
  // Schedule the loops across workers (per-loop slots, no shared state);
  // aggregate sequentially in suite order. The accumulated Seconds* fields
  // stay per-loop CPU measurements, so only the wall time of this sweep
  // changes with the job count.
  std::vector<SchedOutcome> Outcomes(Suite.size());
  parallelFor(Jobs, static_cast<int>(Suite.size()), [&](int I) {
    Outcomes[static_cast<size_t>(I)] =
        runScheduler(Suite[static_cast<size_t>(I)], Machine, Options);
  });
  Totals T;
  for (size_t I = 0; I < Suite.size(); ++I) {
    const LoopBody &Body = Suite[I];
    const SchedOutcome &O = Outcomes[I];
    ++T.Loops;
    if (!O.Stats.Backtracked)
      ++T.LoopsNoBacktracking;
    else
      T.OpsInBacktrackedLoops += Body.numMachineOps();
    T.Placements += O.Stats.Placements;
    T.Iterations += O.Stats.CentralLoopIterations;
    T.Forced += O.Stats.ForcedPlacements;
    T.Ejections += O.Stats.Ejections;
    T.Step6 += O.Stats.IIRestarts;
    T.Seconds += O.Stats.SecondsTotal;
    T.SecondsBacktracking += O.Stats.SecondsBacktracking;
    T.SecondsRecMII += O.Stats.SecondsRecMII;
    T.SecondsMinDist += O.Stats.SecondsMinDist;
  }
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const int Jobs = resolveJobs(jobsFromArgs(Argc, Argv));
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  const Totals Slack =
      runAll(Suite, Machine, SchedulerOptions::slack(), Jobs);
  const Totals Cydrome =
      runAll(Suite, Machine, SchedulerOptions::cydrome(), Jobs);

  std::cout << "Section 6: Compilation Time (" << Suite.size()
            << " loops, host machine)\n";
  TextTable T;
  T.setHeader({"Metric", "Slack Scheduler", "Cydrome-style"});
  auto Row = [&T](const char *Name, const std::string &A,
                  const std::string &B) { T.addRow({Name, A, B}); };
  Row("scheduling wall time (s)", formatNumber(Slack.Seconds, 2),
      formatNumber(Cydrome.Seconds, 2));
  Row("loops w/o backtracking", std::to_string(Slack.LoopsNoBacktracking),
      std::to_string(Cydrome.LoopsNoBacktracking));
  Row("central-loop iterations", std::to_string(Slack.Iterations),
      std::to_string(Cydrome.Iterations));
  Row("operations placed", std::to_string(Slack.Placements),
      std::to_string(Cydrome.Placements));
  Row("step-3 forced placements", std::to_string(Slack.Forced),
      std::to_string(Cydrome.Forced));
  Row("operations ejected", std::to_string(Slack.Ejections),
      std::to_string(Cydrome.Ejections));
  Row("step-6 II restarts", std::to_string(Slack.Step6),
      std::to_string(Cydrome.Step6));
  auto Pct = [](double Part, double Whole) {
    return Whole > 0 ? formatNumber(100.0 * Part / Whole, 1) + "%" : "-";
  };
  Row("time in backtracking",
      Pct(Slack.SecondsBacktracking, Slack.Seconds),
      Pct(Cydrome.SecondsBacktracking, Cydrome.Seconds));
  Row("time computing RecMII", Pct(Slack.SecondsRecMII, Slack.Seconds),
      Pct(Cydrome.SecondsRecMII, Cydrome.Seconds));
  Row("time computing MinDist", Pct(Slack.SecondsMinDist, Slack.Seconds),
      Pct(Cydrome.SecondsMinDist, Cydrome.Seconds));
  T.print(std::cout);

  std::cout << "\nCydrome-style vs slack: time ratio "
            << formatNumber(Cydrome.Seconds / std::max(Slack.Seconds, 1e-9),
                            2)
            << "x (paper: 6.5x), ejection ratio "
            << formatNumber(static_cast<double>(Cydrome.Ejections) /
                                std::max<long>(Slack.Ejections, 1),
                            2)
            << "x (paper: 3.7x)\n"
            << "(Paper reference: 3.96 minutes for 1,525 loops on an HP "
               "9000/730; 65% of time in backtracking, 6% RecMII, 10% "
               "MinDist.)\n";
  return 0;
}
