//===----------------------------------------------------------------------===//
/// \file Code-generation schema experiment (Rau et al. [19], cited in
/// Sections 2.2-2.3): quantifies the code expansion a machine without
/// brtop/stage-predicate support pays for explicit prologue and epilogue
/// copies, relative to kernel-only predicated code — and, stacked with
/// modulo variable expansion, the full cost of forgoing the Cydra's
/// architectural support.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "codegen/KernelCodeGen.h"
#include "codegen/ModuloVariableExpansion.h"
#include "codegen/Schema.h"
#include "core/ModuloScheduler.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv, /*Default=*/400);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  long Loops = 0;
  long KernelOnlyOps = 0, SchemaOps = 0, SchemaMveOps = 0;
  std::vector<double> Stages, Expansion;
  for (const LoopBody &Body : Suite) {
    const Schedule Sched = scheduleLoop(Body, Machine);
    if (!Sched.Success)
      continue;
    const SchemaInfo Schema = planSchema(Body, Sched);
    const MveInfo Mve = planMve(Body, Sched);
    if (!Schema.Success || !Mve.Success)
      continue;
    ++Loops;
    KernelOnlyOps += Schema.KernelOps;
    SchemaOps += Schema.totalOps();
    // A fully conventional machine needs the schema AND modulo variable
    // expansion of the kernel.
    SchemaMveOps += Schema.PrologueOps + Schema.EpilogueOps +
                    static_cast<long>(Mve.UnrollFactor) * Schema.KernelOps;
    Stages.push_back(Schema.StageCount);
    Expansion.push_back(static_cast<double>(Schema.totalOps()) /
                        static_cast<double>(Schema.KernelOps));
  }

  std::cout << "Code-generation schemas (Rau et al. [19]) over " << Loops
            << " loops\n";
  TextTable T;
  T.setHeader({"scheme", "total ops emitted", "vs kernel-only"});
  auto Ratio = [&](long Ops) {
    return formatNumber(static_cast<double>(Ops) /
                            static_cast<double>(std::max(KernelOnlyOps, 1L)),
                        2) +
           "x";
  };
  T.addRow({"kernel-only (brtop + stage predicates + rotating files)",
            std::to_string(KernelOnlyOps), "1x"});
  T.addRow({"prologue/kernel/epilogue (no predicated brtop)",
            std::to_string(SchemaOps), Ratio(SchemaOps)});
  T.addRow({"schema + modulo variable expansion (conventional machine)",
            std::to_string(SchemaMveOps), Ratio(SchemaMveOps)});
  T.print(std::cout);

  const QuantileSummary S = summarize(Stages);
  const QuantileSummary E = summarize(Expansion);
  std::cout << "\nstages: median " << formatNumber(S.Median) << ", 90% "
            << formatNumber(S.Pct90) << ", max " << formatNumber(S.Max)
            << "; per-loop schema expansion: median "
            << formatNumber(E.Median, 2) << "x, max "
            << formatNumber(E.Max, 2)
            << "x\n(The paper adopts kernel-only code precisely because "
               "the alternatives expand code this much.)\n";
  return 0;
}
