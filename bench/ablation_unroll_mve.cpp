//===----------------------------------------------------------------------===//
/// \file Extension experiments around Section 2.3 / 3.1:
///  (a) loop unrolling to exploit fractional MII — "if a loop had an exact
///      minimum II of 3/2, the compiler could unroll the loop once and
///      attempt to schedule for an II of 3" (the paper's compiler did not
///      implement this; this repository does);
///  (b) modulo variable expansion instead of rotating register files —
///      quantifying the code expansion and extra registers the rotating
///      file avoids.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "codegen/KernelCodeGen.h"
#include "codegen/ModuloVariableExpansion.h"
#include "core/ModuloScheduler.h"
#include "frontend/LoopCompiler.h"
#include "ir/Unroll.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv, /*Default=*/400);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  // (a) Fractional-MII recovery: unroll x2 and compare II per source
  // iteration on recurrence-bound loops.
  long Considered = 0, Improved = 0;
  double SumPlain = 0, SumUnrolled = 0;
  for (const LoopBody &Body : Suite) {
    const DepGraph Graph(Body, Machine);
    const Schedule Plain = scheduleLoop(Graph);
    if (!Plain.Success || Plain.RecMII <= Plain.ResMII)
      continue; // only recurrence-bound loops can gain
    const LoopBody U2 = unrollLoop(Body, 2);
    const DepGraph GraphU(U2, Machine);
    const Schedule Unrolled = scheduleLoop(GraphU);
    if (!Unrolled.Success)
      continue;
    ++Considered;
    const double PerIterPlain = Plain.II;
    const double PerIterUnrolled = Unrolled.II / 2.0;
    SumPlain += PerIterPlain;
    SumUnrolled += PerIterUnrolled;
    if (PerIterUnrolled < PerIterPlain)
      ++Improved;
  }
  std::cout << "Unrolling for fractional MII (recurrence-bound loops of a "
            << Suite.size() << "-loop suite)\n";
  std::cout << "  " << Considered << " recurrence-bound loops; " << Improved
            << " improve when unrolled x2; cycles per source iteration "
            << formatNumber(SumPlain, 1) << " -> "
            << formatNumber(SumUnrolled, 1) << " ("
            << formatNumber(
                   100.0 * (1.0 - SumUnrolled / std::max(SumPlain, 1.0)), 1)
            << "% fewer)\n\n";

  // Synthetic family with known fractional minimum II (the paper's 3/2
  // example generalized: recurrence latency L over omega 2 has exact
  // minimum L/2, but an un-unrolled schedule pays ceil(L/2)).
  const struct {
    const char *Name;
    const char *Source;
  } Fractional[] = {
      {"mul-add over omega 2 (exact 3/2)",
       "param a = 0.5\nparam b = 1\nloop i = 3, n\n"
       "  x[i] = a*x[i-2] + b\nend\n"},
      {"mul-mul-add over omega 2 (exact 5/2)",
       "param a = 0.5\nparam b = 1\nloop i = 3, n\n"
       "  x[i] = a*(b*x[i-2]) + x[i-2]*a\nend\n"},
      {"mul-add over omega 3 (exact 4/3... via extra add)",
       "param a = 0.5\nparam b = 1\nloop i = 4, n\n"
       "  x[i] = a*x[i-3] + b + x[i-3]\nend\n"},
  };
  TextTable Frac;
  Frac.setHeader({"loop", "MII", "II", "II/iter unrolled x2",
                  "II/iter unrolled x3"});
  for (const auto &F : Fractional) {
    LoopBody Body;
    if (!compileLoop(F.Source, F.Name, Body).empty())
      continue;
    const Schedule Plain = scheduleLoop(Body, Machine);
    std::vector<std::string> Row = {F.Name, std::to_string(Plain.MII),
                                    std::to_string(Plain.II)};
    for (int Factor : {2, 3}) {
      const LoopBody U = unrollLoop(Body, Factor);
      const Schedule S = scheduleLoop(U, Machine);
      Row.push_back(S.Success ? formatNumber(
                                    static_cast<double>(S.II) / Factor, 2)
                              : "fail");
    }
    Frac.addRow(Row);
  }
  std::cout << "Synthetic fractional-MII family:\n";
  Frac.print(std::cout);
  std::cout << '\n';

  // (b) Rotating files vs modulo variable expansion.
  long Loops = 0;
  long RotRegs = 0, MveRegs = 0;
  long RotOps = 0, MveOps = 0;
  std::vector<double> ExpansionFactors;
  for (const LoopBody &Body : Suite) {
    const Schedule Sched = scheduleLoop(Body, Machine);
    if (!Sched.Success)
      continue;
    KernelCode Code;
    if (!generateKernelCode(Body, Sched, Code).empty())
      continue;
    const MveInfo Mve = planMve(Body, Sched);
    if (!Mve.Success)
      continue;
    ++Loops;
    RotRegs += Code.RRSize;
    MveRegs += Mve.TotalRegisters;
    RotOps += Body.numMachineOps();
    MveOps += Mve.ExpandedKernelOps;
    ExpansionFactors.push_back(Mve.UnrollFactor);
  }
  const QuantileSummary Exp = summarize(ExpansionFactors);
  std::cout << "Rotating register files vs modulo variable expansion ("
            << Loops << " loops)\n";
  TextTable T;
  T.setHeader({"", "rotating file", "modulo variable expansion"});
  T.addRow({"total registers", std::to_string(RotRegs),
            std::to_string(MveRegs)});
  T.addRow({"total kernel ops", std::to_string(RotOps),
            std::to_string(MveOps)});
  T.print(std::cout);
  std::cout << "\nkernel unroll factor: min " << formatNumber(Exp.Min)
            << ", median " << formatNumber(Exp.Median) << ", 90% "
            << formatNumber(Exp.Pct90) << ", max " << formatNumber(Exp.Max)
            << " — code expands "
            << formatNumber(static_cast<double>(MveOps) /
                                static_cast<double>(std::max(RotOps, 1L)),
                            2)
            << "x without rotating files (the paper's motivation for the "
               "Cydra's rotating file, Section 2.3)\n";
  return 0;
}
