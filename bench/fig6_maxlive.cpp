//===----------------------------------------------------------------------===//
/// \file Regenerates Figure 6: distribution of MaxLive (rotating register
/// pressure) under both schedulers. The paper reports 92% of loops within
/// 32 RRs and only 5 loops above 64 for the new scheduler.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  Histogram New(8, 96), Old(8, 96);
  long Above64New = 0, Above64Old = 0;
  for (const LoopBody &Body : Suite) {
    const SchedOutcome A =
        runScheduler(Body, Machine, SchedulerOptions::slack());
    const SchedOutcome B =
        runScheduler(Body, Machine, SchedulerOptions::cydrome());
    if (A.Success) {
      New.add(A.MaxLive);
      Above64New += A.MaxLive > 64 ? 1 : 0;
    }
    if (B.Success) {
      Old.add(B.MaxLive);
      Above64Old += B.MaxLive > 64 ? 1 : 0;
    }
  }

  printComparison(std::cout,
                  "Figure 6: MaxLive (" + std::to_string(Suite.size()) +
                      " loops)",
                  New, "New Scheduler (bidirectional slack)", Old,
                  "Old Scheduler (Cydrome-style)", "MaxLive (RRs)");

  std::cout << "\nNew scheduler: "
            << formatNumber(100.0 * New.fractionAtOrBelow(32), 1)
            << "% of loops use <= 32 RRs (paper: 92%); " << Above64New
            << " loops above 64 RRs (paper: 5)\n";
  std::cout << "Old scheduler: "
            << formatNumber(100.0 * Old.fractionAtOrBelow(32), 1)
            << "% within 32 RRs; " << Above64Old << " loops above 64\n";
  return 0;
}
