//===----------------------------------------------------------------------===//
/// \file Scheduling-service benchmark: cold vs warm throughput, cache hit
/// rate, and request-latency percentiles over the deterministic corpus
/// (suite kernels + seeded random DSL loops), plus the byte-identity check
/// across worker counts. Exit status enforces the service's contracts:
/// warm (cache-hit) throughput must be >= 10x cold, and the response
/// stream must be byte-identical at --jobs 1, 2, and the hardware count.
///
/// Usage: service_bench [--smoke] [--jobs N] [--loops N] [--repeats R]
///                      [--engine slack|bnb|sat] [--out FILE]
//===----------------------------------------------------------------------===//

#include "ServiceBenchCommon.h"

#include "support/ParallelFor.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace lsms;

namespace {

std::string formatDouble(double V, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  int JobsN = 0;
  int RandomLoops = -1;
  int Repeats = -1;
  ServiceEngine Engine = ServiceEngine::Slack;
  const char *OutPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      JobsN = std::atoi(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--loops") == 0 && I + 1 < Argc) {
      RandomLoops = std::atoi(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--repeats") == 0 && I + 1 < Argc) {
      Repeats = std::atoi(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--engine") == 0 && I + 1 < Argc) {
      if (!parseServiceEngine(Argv[++I], Engine)) {
        std::cerr << "service_bench: unknown engine '" << Argv[I] << "'\n";
        return 1;
      }
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else {
      std::cerr << "usage: service_bench [--smoke] [--jobs N] [--loops N] "
                   "[--repeats R] [--engine slack|bnb|sat] [--out FILE]\n";
      return 1;
    }
  }
  JobsN = resolveJobs(JobsN);
  if (RandomLoops < 0)
    RandomLoops = Smoke ? 8 : 75;
  if (Repeats < 0)
    Repeats = Smoke ? 3 : 10;
  const uint64_t Seed = 0x19930601;

  const std::vector<std::string> Corpus =
      serviceBenchCorpus(RandomLoops, Seed);

  ServiceConfig Config;
  Config.Jobs = JobsN;
  const ServiceBenchResult R =
      runServiceBench(Corpus, Engine, Repeats, Config);

  // Determinism: identical response bytes at 1, 2, and JobsN workers.
  std::vector<int> JobCounts = {1, 2, JobsN};
  const std::vector<std::string> Streams =
      serviceResponsesAtJobs(Corpus, Engine, JobCounts);
  bool ByteIdentical = true;
  for (size_t I = 1; I < Streams.size(); ++I)
    ByteIdentical = ByteIdentical && Streams[I] == Streams[0];

  const bool WarmFastEnough = R.warmSpeedup() >= 10.0;
  const bool NoErrors = R.Errors == 0;

  std::ostringstream JSON;
  JSON << "{\n"
       << "  \"bench\": \"service_bench\",\n"
       << "  \"mode\": \"" << (Smoke ? "smoke" : "full") << "\",\n"
       << "  \"engine\": \"" << serviceEngineName(Engine) << "\",\n"
       << "  \"jobs\": " << JobsN << ",\n"
       << "  \"corpus_loops\": " << R.CorpusLoops << ",\n"
       << "  \"warm_passes\": " << R.WarmPasses << ",\n"
       << "  \"cold_seconds\": " << formatDouble(R.ColdSeconds, 4) << ",\n"
       << "  \"cold_loops_per_sec\": " << formatDouble(R.coldLoopsPerSec(), 1)
       << ",\n"
       << "  \"warm_seconds\": " << formatDouble(R.WarmSeconds, 4) << ",\n"
       << "  \"warm_loops_per_sec\": " << formatDouble(R.warmLoopsPerSec(), 1)
       << ",\n"
       << "  \"warm_speedup\": " << formatDouble(R.warmSpeedup(), 1) << ",\n"
       << "  \"cache_hit_rate\": " << formatDouble(R.HitRate, 4) << ",\n"
       << "  \"request_p50_us\": " << R.P50Us << ",\n"
       << "  \"request_p99_us\": " << R.P99Us << ",\n"
       << "  \"errors\": " << R.Errors << ",\n"
       << "  \"responses_byte_identical_across_jobs\": "
       << (ByteIdentical ? "true" : "false") << ",\n"
       << "  \"warm_speedup_at_least_10x\": "
       << (WarmFastEnough ? "true" : "false") << "\n"
       << "}\n";

  if (OutPath) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::cerr << "service_bench: cannot write " << OutPath << "\n";
      return 1;
    }
    Out << JSON.str();
    std::cout << "wrote " << OutPath << "\n";
  } else {
    std::cout << JSON.str();
  }
  if (!ByteIdentical)
    std::cerr << "service_bench: FAIL responses differ across job counts\n";
  if (!WarmFastEnough)
    std::cerr << "service_bench: FAIL warm speedup "
              << formatDouble(R.warmSpeedup(), 1) << "x < 10x\n";
  if (!NoErrors)
    std::cerr << "service_bench: FAIL " << R.Errors << " error responses\n";
  return ByteIdentical && WarmFastEnough && NoErrors ? 0 : 1;
}
