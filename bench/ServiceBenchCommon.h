//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the scheduling-service benchmarks: a deterministic
/// request corpus (every suite kernel plus seeded random DSL sources) and
/// a cold/warm throughput measurement over a SchedulingService, reused by
/// bench/service_bench and the service section of bench/perf_report.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_BENCH_SERVICEBENCHCOMMON_H
#define LSMS_BENCH_SERVICEBENCHCOMMON_H

#include "service/SchedulingService.h"

#include <string>
#include <vector>

namespace lsms {

/// Deterministic DSL corpus: the named suite kernels followed by
/// \p RandomCount seeded random loop programs (each verified to compile).
/// The same (RandomCount, Seed) always produces byte-identical sources.
std::vector<std::string> serviceBenchCorpus(int RandomCount, uint64_t Seed);

/// One seeded random loop-DSL program (exposed for the generator tests).
std::string randomDslSource(uint64_t Seed);

/// Cold/warm measurement over one service instance.
struct ServiceBenchResult {
  int CorpusLoops = 0;   ///< distinct requests in the corpus
  int WarmPasses = 0;    ///< corpus repetitions measured as warm
  double ColdSeconds = 0; ///< first pass (every request a cache miss)
  double WarmSeconds = 0; ///< WarmPasses subsequent passes (cache hits)
  double coldLoopsPerSec() const {
    return ColdSeconds > 0 ? CorpusLoops / ColdSeconds : 0;
  }
  double warmLoopsPerSec() const {
    return WarmSeconds > 0
               ? static_cast<double>(CorpusLoops) * WarmPasses / WarmSeconds
               : 0;
  }
  double warmSpeedup() const {
    const double Cold = coldLoopsPerSec(), Warm = warmLoopsPerSec();
    return Cold > 0 ? Warm / Cold : 0;
  }
  double HitRate = 0;   ///< cache hit rate over the whole run
  long Hits = 0, Misses = 0;
  int64_t P50Us = 0, P99Us = 0; ///< request latency percentiles
  int Errors = 0;               ///< non-Ok responses (should be 0)
};

/// Runs the corpus through a fresh SchedulingService: one timed cold pass,
/// then \p WarmPasses timed repetitions. Every request uses \p Engine.
ServiceBenchResult runServiceBench(const std::vector<std::string> &Corpus,
                                   ServiceEngine Engine, int WarmPasses,
                                   const ServiceConfig &Config);

/// Streams the corpus (cold pass + one warm pass) through processJsonl on
/// a fresh service at each job count and returns the response streams,
/// index-aligned with \p JobCounts. Byte-comparing them asserts the
/// service's determinism guarantee.
std::vector<std::string>
serviceResponsesAtJobs(const std::vector<std::string> &Corpus,
                       ServiceEngine Engine,
                       const std::vector<int> &JobCounts);

} // namespace lsms

#endif // LSMS_BENCH_SERVICEBENCHCOMMON_H
