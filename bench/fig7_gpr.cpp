//===----------------------------------------------------------------------===//
/// \file Regenerates Figure 7: loop-invariant (GPR) usage and combined
/// GPRs + MaxLive pressure under both schedulers. The paper reports 97% of
/// loops within 16 GPRs and 82% with RRs + GPRs <= 32.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  Histogram Gprs(4, 48);
  Histogram CombinedNew(8, 96), CombinedOld(8, 96);
  long Above64 = 0;
  for (const LoopBody &Body : Suite) {
    const LoopAnalysis A = analyzeLoop(Body, Machine);
    Gprs.add(A.Gprs);
    const SchedOutcome SNew =
        runScheduler(Body, Machine, SchedulerOptions::slack());
    const SchedOutcome SOld =
        runScheduler(Body, Machine, SchedulerOptions::cydrome());
    if (SNew.Success) {
      CombinedNew.add(A.Gprs + SNew.MaxLive);
      Above64 += A.Gprs + SNew.MaxLive > 64 ? 1 : 0;
    }
    if (SOld.Success)
      CombinedOld.add(A.Gprs + SOld.MaxLive);
  }

  std::cout << "Figure 7: GPRs and GPRs + MaxLive ("
            << Suite.size() << " loops)\n";
  std::cout << "--- GPRs (either scheduler) ---\n";
  Gprs.print(std::cout, "GPRs");
  std::cout << "--- (New Scheduler) GPRs + MaxLive ---\n";
  CombinedNew.print(std::cout, "GPRs+MaxLive");
  std::cout << "--- (Old Scheduler) GPRs + MaxLive ---\n";
  CombinedOld.print(std::cout, "GPRs+MaxLive");

  std::cout << "\n" << formatNumber(100.0 * Gprs.fractionAtOrBelow(16), 1)
            << "% of loops use <= 16 GPRs (paper: 97%); "
            << formatNumber(100.0 * CombinedNew.fractionAtOrBelow(32), 1)
            << "% keep RRs + GPRs <= 32 (paper: 82%); " << Above64
            << " loops above 64 combined (paper: 16)\n";
  return 0;
}
