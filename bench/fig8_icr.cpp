//===----------------------------------------------------------------------===//
/// \file Regenerates Figure 8: ICR predicate usage (if-conversion
/// predicates plus the kernel's stage predicates). The paper reports that
/// only one loop uses more than 32 ICR predicates and that both schedulers
/// generate very similar ICR pressure.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  Histogram New(4, 48), Old(4, 48);
  long Above32 = 0;
  for (const LoopBody &Body : Suite) {
    const SchedOutcome A =
        runScheduler(Body, Machine, SchedulerOptions::slack());
    const SchedOutcome B =
        runScheduler(Body, Machine, SchedulerOptions::cydrome());
    if (A.Success) {
      New.add(A.IcrUsage);
      Above32 += A.IcrUsage > 32 ? 1 : 0;
    }
    if (B.Success)
      Old.add(B.IcrUsage);
  }

  printComparison(std::cout,
                  "Figure 8: ICR Predicate Usage (" +
                      std::to_string(Suite.size()) + " loops)",
                  New, "New Scheduler", Old, "Old Scheduler",
                  "ICR predicates");

  std::cout << "\nNew scheduler: " << Above32
            << " loops above 32 ICR predicates (paper: 1); "
            << formatNumber(100.0 * New.fractionAtOrBelow(16), 1)
            << "% within 16\n";
  return 0;
}
