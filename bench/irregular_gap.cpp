//===----------------------------------------------------------------------===//
/// \file Conservative vs speculative sweep over irregular loops
/// (while-exits, data-dependent subscripts): both lowerings run through the
/// slack heuristic and an exact engine, the speculative schedule is
/// replayed against a concrete memory trace, and the report aggregates the
/// per-loop II gap, the certified (exact) gap, and assumption-violation
/// rates. Deterministic from a fixed seed, so the output can serve as a
/// regression reference.
///
/// Usage: irregular_gap [num_loops] [max_ops] [seed] [--jobs N] [--engine E]
//===----------------------------------------------------------------------===//

#include "service/EngineFlag.h"
#include "spec/SpecOracle.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

using namespace lsms;

int main(int Argc, char **Argv) {
  IrregularOptions Options;
  std::vector<const char *> Positional;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      Options.Jobs = std::atoi(Argv[++I]);
      continue;
    }
    if (std::strcmp(Argv[I], "--engine") == 0 && I + 1 < Argc) {
      EngineSelection Sel;
      std::string EngineErr;
      if (!parseEngineSelection(Argv[++I], /*AllowSlack=*/false,
                                /*AllowAll=*/false, Sel, EngineErr)) {
        std::cerr << "irregular_gap: " << EngineErr << "\n";
        return 1;
      }
      Options.Exact.Engine = Sel.Exact;
      continue;
    }
    if (applyExactBudgetFlag(Argv[I], Options.Exact))
      continue;
    Positional.push_back(Argv[I]);
  }
  if (Positional.size() > 0)
    Options.NumLoops = std::atoi(Positional[0]);
  if (Positional.size() > 1)
    Options.MaxOps = std::atoi(Positional[1]);
  if (Positional.size() > 2)
    Options.Seed = std::strtoull(Positional[2], nullptr, 0);
  if (Options.NumLoops <= 0 || Options.MaxOps <= 0) {
    std::cerr << "usage: irregular_gap [num_loops] [max_ops] [seed] "
                 "[--jobs N] [--engine bnb|sat|portfolio]\n";
    return 1;
  }

  const IrregularReport Report = runIrregularSweep(Options);
  std::cout << "Conservative vs speculative scheduling on irregular loops ("
            << Report.Cases.size() << " loops, <= " << Options.MaxOps
            << " ops, seed " << Options.Seed;
  // The default engine's header is part of the golden regression surface;
  // only non-default runs announce themselves.
  if (Options.Exact.Engine != ExactEngineKind::Portfolio)
    std::cout << ", engine " << exactEngineName(Options.Exact.Engine);
  std::cout << ")\n\n";
  printIrregularReport(std::cout, Report);

  int Bad = 0;
  for (const IrregularCase &Case : Report.Cases) {
    if (!Case.ConsError.empty()) {
      std::cerr << Case.Name
                << ": conservative schedule invalid: " << Case.ConsError
                << "\n";
      ++Bad;
    }
    if (!Case.SpecError.empty()) {
      std::cerr << Case.Name
                << ": speculative schedule invalid: " << Case.SpecError
                << "\n";
      ++Bad;
    }
    if (!Case.TraceError.empty()) {
      std::cerr << Case.Name << ": " << Case.TraceError << "\n";
      ++Bad;
    }
    if (Case.IIGapValid && Case.IIGap < 0) {
      std::cerr << Case.Name << ": speculative II " << Case.SpecII
                << " exceeds conservative II " << Case.ConsII << "\n";
      ++Bad;
    }
  }
  return Bad == 0 ? 0 : 1;
}
