#include "SuiteMetrics.h"

#include "bounds/Bounds.h"
#include "bounds/Lifetimes.h"
#include "graph/MinDist.h"
#include "graph/Scc.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdlib>
#include <cstring>
#include <ostream>

using namespace lsms;

LoopAnalysis lsms::analyzeLoop(const LoopBody &Body,
                               const MachineModel &Machine) {
  LoopAnalysis A;
  A.Name = Body.Name;
  A.Ops = Body.numMachineOps();
  A.BasicBlocks = Body.SourceBasicBlocks;
  A.HasConditional = Body.HasConditional;
  A.Gprs = countGprs(Body);

  const DepGraph Graph(Body, Machine);
  const MIIBounds Bounds = computeMII(Graph);
  A.ResMII = Bounds.ResMII;
  A.RecMII = Bounds.RecMII;
  A.MII = Bounds.MII;

  const auto Critical = markCriticalOps(Body, Machine, A.MII);
  const SccInfo Sccs = computeSccs(Graph);
  for (const Operation &Op : Body.Ops) {
    if (isPseudo(Op.Opc))
      continue;
    if (Critical[static_cast<size_t>(Op.Id)])
      ++A.CriticalOps;
    if (Sccs.OnRecurrence[static_cast<size_t>(Op.Id)])
      ++A.RecurrenceOps;
    if (isDividerOp(Op.Opc))
      ++A.DivOps;
  }
  A.HasRecurrence = A.RecurrenceOps > 0;

  MinDistMatrix MinDist;
  if (MinDist.compute(Graph, A.MII))
    A.MinAvgAtMII = computeMinAvg(Graph, MinDist);
  return A;
}

SchedOutcome lsms::runScheduler(const LoopBody &Body,
                                const MachineModel &Machine,
                                const SchedulerOptions &Options) {
  SchedOutcome O;
  const DepGraph Graph(Body, Machine);
  const Schedule Sched = scheduleLoop(Graph, Options);
  O.Success = Sched.Success;
  O.II = Sched.II;
  O.MII = Sched.MII;
  O.Stats = Sched.Stats;
  if (!Sched.Success)
    return O;

  O.ScheduleLength = Sched.length();
  O.Stages = static_cast<int>((O.ScheduleLength + Sched.II - 1) / Sched.II);

  const PressureInfo RR =
      computePressure(Body, Sched.Times, Sched.II, RegClass::RR);
  O.MaxLive = RR.MaxLive;
  const PressureInfo ICR =
      computePressure(Body, Sched.Times, Sched.II, RegClass::ICR);
  // Kernel-only code keeps one rotating stage predicate per stage in the
  // ICR file on top of the if-conversion predicates.
  O.IcrUsage = ICR.MaxLive + O.Stages;

  MinDistMatrix MinDist;
  if (MinDist.compute(Graph, Sched.II)) {
    O.MinAvgAtII = computeMinAvg(Graph, MinDist);
    O.MinAvgPerValueCeilAtII = computeMinAvgPerValueCeil(Graph, MinDist);
  }
  return O;
}

int lsms::suiteSizeFromArgs(int Argc, char **Argv, int Default) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0) {
      ++I; // skip the flag's value
      continue;
    }
    const int N = std::atoi(Argv[I]);
    return N > 0 ? N : Default;
  }
  return Default;
}

int lsms::jobsFromArgs(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--jobs") == 0) {
      const int Jobs = std::atoi(Argv[I + 1]);
      return Jobs > 0 ? Jobs : 0;
    }
  return 0;
}

void lsms::printPerformanceTable(std::ostream &OS, const std::string &Title,
                                 const std::vector<LoopAnalysis> &Analyses,
                                 const std::vector<SchedOutcome> &Outcomes) {
  struct ClassAgg {
    long Opt = 0;
    long All = 0;
    long SumII = 0;
    long SumMII = 0;
    long Failures = 0;
  };
  ClassAgg Classes[4], Total;
  const char *ClassNames[4] = {"Has Conditional", "Has Recurrence",
                               "Has Both", "Has Neither"};

  std::vector<double> TailII, TailMII, TailDiff, TailRatio;
  for (size_t I = 0; I < Analyses.size(); ++I) {
    const LoopAnalysis &A = Analyses[I];
    const SchedOutcome &O = Outcomes[I];
    int ClassIndex;
    if (A.HasConditional && A.HasRecurrence)
      ClassIndex = 2;
    else if (A.HasConditional)
      ClassIndex = 0;
    else if (A.HasRecurrence)
      ClassIndex = 1;
    else
      ClassIndex = 3;

    for (ClassAgg *Agg : {&Classes[ClassIndex], &Total}) {
      ++Agg->All;
      // Failures are represented by the last II attempted (the paper's
      // footnote 8).
      Agg->SumII += O.II;
      Agg->SumMII += O.MII;
      if (O.Success && O.II == O.MII)
        ++Agg->Opt;
      if (!O.Success)
        ++Agg->Failures;
    }
    if (!O.Success || O.II > O.MII) {
      TailII.push_back(O.II);
      TailMII.push_back(O.MII);
      TailDiff.push_back(O.II - O.MII);
      TailRatio.push_back(static_cast<double>(O.II) / O.MII);
    }
  }

  OS << Title << '\n';
  TextTable T;
  T.setHeader({"Loop Class", "Opt", "All", "%", "Sum II", "Sum MII",
               "Ratio"});
  auto AddRow = [&T](const char *Name, const ClassAgg &Agg) {
    if (Agg.All == 0) {
      T.addRow({Name, "0", "0", "-", "0", "0", "-"});
      return;
    }
    T.addRow({Name, std::to_string(Agg.Opt), std::to_string(Agg.All),
              formatNumber(100.0 * static_cast<double>(Agg.Opt) /
                               static_cast<double>(Agg.All),
                           1),
              std::to_string(Agg.SumII), std::to_string(Agg.SumMII),
              formatNumber(static_cast<double>(Agg.SumII) /
                               static_cast<double>(Agg.SumMII),
                           3)});
  };
  for (int C = 0; C < 4; ++C)
    AddRow(ClassNames[C], Classes[C]);
  T.addSeparator();
  AddRow("All Loops", Total);
  T.print(OS);

  if (Total.Failures > 0)
    OS << "(failed to pipeline " << Total.Failures
       << " loops; each counted at the last II attempted)\n";

  OS << "\nFor the " << TailII.size() << " loops with II > MII:\n";
  if (!TailII.empty()) {
    TextTable Tail;
    Tail.setHeader({"Metric", "Min", "50%", "90%", "Max"});
    auto Row = [&Tail](const char *Name, const std::vector<double> &V,
                       int Decimals) {
      const QuantileSummary S = summarize(V);
      Tail.addRow({Name, formatNumber(S.Min, Decimals),
                   formatNumber(S.Median, Decimals),
                   formatNumber(S.Pct90, Decimals),
                   formatNumber(S.Max, Decimals)});
    };
    Row("II", TailII, 0);
    Row("MII", TailMII, 0);
    Row("II - MII", TailDiff, 0);
    Row("II / MII", TailRatio, 2);
    Tail.print(OS);
  }

  const double OptPct =
      Total.All ? 100.0 * static_cast<double>(Total.Opt) /
                      static_cast<double>(Total.All)
                : 0.0;
  const double TimeRatio =
      Total.SumMII
          ? static_cast<double>(Total.SumII) /
                static_cast<double>(Total.SumMII)
          : 0.0;
  OS << "\nHeadline: " << formatNumber(OptPct, 1)
     << "% of loops at II = MII; overall execution time "
     << formatNumber(TimeRatio, 3) << "x the absolute minimum\n";
}
