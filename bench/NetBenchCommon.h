//===----------------------------------------------------------------------===//
///
/// \file
/// Shared load-generation harness for the socket front end, in two modes:
///
///  - closed loop (runNetLoad): N client connections each keep a bounded
///    pipeline of requests in flight — throughput-oriented, but latency
///    under overload is flattered because a slow server throttles the
///    offered load.
///  - open arrival (runOpenLoad): requests arrive on a Poisson process at
///    a target aggregate rate, spread over a large pool of persistent
///    connections driven by a few epoll event-loop threads. Latency is
///    measured from the *scheduled* arrival time, so queueing delay the
///    server induces is charged to it (no coordinated omission), and
///    responses are classified per degradation tier.
///
/// Both build requests from a DSL corpus and report latency percentiles.
/// Used by bench/load_gen (the CLI) and the server sections of
/// bench/perf_report.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_BENCH_NETBENCHCOMMON_H
#define LSMS_BENCH_NETBENCHCOMMON_H

#include <cstdint>
#include <string>
#include <vector>

namespace lsms {

struct NetLoadConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  int Connections = 4;
  /// Request lines each connection sends (its corpus slice is cycled).
  int RequestsPerConnection = 0;
  /// Closed-loop window: lines in flight per connection before the client
  /// waits for a response. 1 = strict request/response lockstep.
  int PipelineDepth = 8;
  /// Wire engine name stamped into every request ("slack", "bnb", "sat").
  std::string Engine = "slack";
  /// DSL sources requests are built from.
  std::vector<std::string> Corpus;
  /// When true, connection I only sends corpus[J] with J % Connections ==
  /// I, so no two connections ever share a cache or store key — the cold
  /// phase of the restart benchmark stays genuinely compute-bound.
  bool DisjointSlices = false;
};

struct NetLoadResult {
  long Sent = 0;
  long Received = 0;
  long Errors = 0; ///< responses with "status":"error"
  long Shed = 0;   ///< responses with "status":"shed"
  double Seconds = 0;
  int64_t P50Us = 0, P99Us = 0, P999Us = 0, MaxUs = 0;
  /// First connection-level failure ("" when the run was clean).
  std::string Error;
  bool ok() const { return Error.empty(); }
  double rps() const { return Seconds > 0 ? Received / Seconds : 0; }
};

/// Runs the configured load against a live server and blocks until every
/// connection finished (or failed).
NetLoadResult runNetLoad(const NetLoadConfig &Config);

struct OpenLoadConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  /// Persistent connections held open for the whole run; arrivals are
  /// spread over them round-robin.
  int Connections = 1000;
  /// Aggregate Poisson arrival rate (requests per second).
  double TargetRps = 1000;
  /// Total requests to send across all connections.
  long TotalRequests = 10000;
  /// Client event-loop threads (connections split evenly); 0 picks a
  /// small count from hardware concurrency.
  int ClientThreads = 0;
  /// Seed for the deterministic arrival process and corpus order.
  uint64_t Seed = 1;
  /// Wire engine name stamped into every request.
  std::string Engine = "slack";
  /// DSL sources requests are built from.
  std::vector<std::string> Corpus;
  /// After the last send, wait at most this long for stragglers before
  /// declaring the run stuck.
  long TailTimeoutMs = 30000;
};

struct OpenLoadResult {
  long Sent = 0;
  long Received = 0;
  long Errors = 0; ///< responses with "status":"error"
  long Shed = 0;   ///< responses with "tier":"shed"
  /// Per-tier answer counts (see service/Protocol.h).
  long TierExact = 0, TierSlack = 0, TierCached = 0;
  double Seconds = 0;
  /// Percentiles of response time measured from the scheduled arrival.
  int64_t P50Us = 0, P99Us = 0, P999Us = 0, MaxUs = 0;
  /// First connection-level failure ("" when the run was clean).
  std::string Error;
  bool ok() const { return Error.empty(); }
  double rps() const { return Seconds > 0 ? Received / Seconds : 0; }
  /// Fraction of sent requests that got a real answer (any tier but
  /// shed) — the degrade-before-shed acceptance metric.
  double answeredFraction() const {
    return Sent > 0 ? static_cast<double>(Received - Shed) /
                          static_cast<double>(Sent)
                    : 0;
  }
};

/// Runs the open-arrival load against a live server and blocks until
/// every request was answered (or the tail timeout expired).
OpenLoadResult runOpenLoad(const OpenLoadConfig &Config);

/// Best-effort raise of the process RLIMIT_NOFILE soft limit to at least
/// \p AtLeast (capped at the hard limit); returns the resulting soft
/// limit. Large open-arrival runs need client + server fds in one
/// process.
long raiseFdLimit(long AtLeast);

} // namespace lsms

#endif // LSMS_BENCH_NETBENCHCOMMON_H
