//===----------------------------------------------------------------------===//
///
/// \file
/// Shared load-generation harness for the socket front end: N client
/// connections drive a running EpollServer with pipelined JSONL requests
/// built from a DSL corpus, and the run reports throughput and latency
/// percentiles. Used by bench/load_gen (the CLI) and the server section
/// of bench/perf_report.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_BENCH_NETBENCHCOMMON_H
#define LSMS_BENCH_NETBENCHCOMMON_H

#include <cstdint>
#include <string>
#include <vector>

namespace lsms {

struct NetLoadConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  int Connections = 4;
  /// Request lines each connection sends (its corpus slice is cycled).
  int RequestsPerConnection = 0;
  /// Closed-loop window: lines in flight per connection before the client
  /// waits for a response. 1 = strict request/response lockstep.
  int PipelineDepth = 8;
  /// Wire engine name stamped into every request ("slack", "bnb", "sat").
  std::string Engine = "slack";
  /// DSL sources requests are built from.
  std::vector<std::string> Corpus;
  /// When true, connection I only sends corpus[J] with J % Connections ==
  /// I, so no two connections ever share a cache or store key — the cold
  /// phase of the restart benchmark stays genuinely compute-bound.
  bool DisjointSlices = false;
};

struct NetLoadResult {
  long Sent = 0;
  long Received = 0;
  long Errors = 0; ///< responses with "status":"error"
  long Shed = 0;   ///< responses with "status":"shed"
  double Seconds = 0;
  int64_t P50Us = 0, P99Us = 0, P999Us = 0, MaxUs = 0;
  /// First connection-level failure ("" when the run was clean).
  std::string Error;
  bool ok() const { return Error.empty(); }
  double rps() const { return Seconds > 0 ? Received / Seconds : 0; }
};

/// Runs the configured load against a live server and blocks until every
/// connection finished (or failed).
NetLoadResult runNetLoad(const NetLoadConfig &Config);

} // namespace lsms

#endif // LSMS_BENCH_NETBENCHCOMMON_H
