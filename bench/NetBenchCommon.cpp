#include "NetBenchCommon.h"

#include "net/JsonlClient.h"
#include "service/Json.h"
#include "service/Protocol.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lsms;

namespace {

using Clock = std::chrono::steady_clock;

int64_t nowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

struct ConnStats {
  long Sent = 0, Received = 0, Errors = 0, Shed = 0;
  std::vector<int64_t> LatenciesUs;
  std::string Error;
};

void runConnection(const NetLoadConfig &Config, int ConnIndex,
                   ConnStats &Stats) {
  // This connection's request lines, built once up front so the timed
  // loop is pure socket traffic.
  std::vector<std::string> Slice;
  for (size_t I = 0; I < Config.Corpus.size(); ++I)
    if (!Config.DisjointSlices ||
        static_cast<int>(I % static_cast<size_t>(Config.Connections)) ==
            ConnIndex)
      Slice.push_back(renderRequestLine(Config.Corpus[I], Config.Engine));
  if (Slice.empty()) {
    Stats.Error = "empty corpus slice";
    return;
  }

  JsonlClient Client;
  std::string Err;
  if (!Client.connect(Config.Host, Config.Port, Err)) {
    Stats.Error = Err;
    return;
  }

  const int Total = Config.RequestsPerConnection;
  const int Depth = std::max(1, Config.PipelineDepth);
  std::deque<int64_t> SendTimes; // responses come back in request order
  int SentCount = 0, RecvCount = 0;
  Stats.LatenciesUs.reserve(static_cast<size_t>(Total));
  while (RecvCount < Total) {
    if (SentCount < Total &&
        static_cast<int>(SendTimes.size()) < Depth) {
      const std::string &Line =
          Slice[static_cast<size_t>(SentCount) % Slice.size()];
      SendTimes.push_back(nowUs());
      if (!Client.sendLine(Line, Err)) {
        Stats.Error = Err;
        return;
      }
      ++SentCount;
      ++Stats.Sent;
      continue;
    }
    std::string Resp;
    if (!Client.recvLine(Resp, Err)) {
      Stats.Error = Err.empty() ? "server closed connection early" : Err;
      return;
    }
    Stats.LatenciesUs.push_back(nowUs() - SendTimes.front());
    SendTimes.pop_front();
    ++RecvCount;
    ++Stats.Received;
    const WireResponseView V = classifyResponseLine(Resp);
    if (V.Shed)
      ++Stats.Shed;
    else if (V.Error)
      ++Stats.Errors;
  }
  Client.shutdownWrite();
  // The server answers everything in flight and closes; a clean EOF here
  // proves the drain handshake.
  std::string Tail;
  if (Client.recvLine(Tail, Err))
    Stats.Error = "unexpected response after final request";
  else if (!Err.empty())
    Stats.Error = Err;
}

} // namespace

NetLoadResult lsms::runNetLoad(const NetLoadConfig &Config) {
  NetLoadResult Result;
  const int Conns = std::max(1, Config.Connections);
  std::vector<ConnStats> Stats(static_cast<size_t>(Conns));
  const auto T0 = Clock::now();
  {
    std::vector<std::thread> Threads;
    Threads.reserve(static_cast<size_t>(Conns));
    for (int I = 0; I < Conns; ++I)
      Threads.emplace_back(
          [&Config, I, &Stats] { runConnection(Config, I, Stats[I]); });
    for (std::thread &T : Threads)
      T.join();
  }
  Result.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();

  std::vector<int64_t> All;
  for (const ConnStats &S : Stats) {
    Result.Sent += S.Sent;
    Result.Received += S.Received;
    Result.Errors += S.Errors;
    Result.Shed += S.Shed;
    if (!S.Error.empty() && Result.Error.empty())
      Result.Error = S.Error;
    All.insert(All.end(), S.LatenciesUs.begin(), S.LatenciesUs.end());
  }
  if (!All.empty()) {
    std::sort(All.begin(), All.end());
    const auto pct = [&](double F) {
      const size_t N = All.size();
      size_t Rank = static_cast<size_t>(F * static_cast<double>(N));
      if (Rank >= N)
        Rank = N - 1;
      return All[Rank];
    };
    Result.P50Us = pct(0.50);
    Result.P99Us = pct(0.99);
    Result.P999Us = pct(0.999);
    Result.MaxUs = All.back();
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Open-arrival mode
//===----------------------------------------------------------------------===//

namespace {

/// One persistent client connection in an open-arrival event loop.
struct OpenConn {
  int Fd = -1;
  std::string Out; ///< bytes queued but not yet written
  size_t OutOff = 0;
  std::string In; ///< partial response line
  /// Scheduled arrival time of every in-flight request, in request order
  /// (responses come back in order on a connection).
  std::deque<int64_t> PendingUs;
  bool WantWrite = false;
  bool Dead = false;
};

struct OpenStats {
  long Sent = 0, Received = 0, Errors = 0, Shed = 0;
  long TierExact = 0, TierSlack = 0, TierCached = 0;
  std::vector<int64_t> LatenciesUs;
  std::string Error;
};

bool setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

int connectBlocking(const std::string &Host, uint16_t Port,
                    std::string &Err) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad address " + Host;
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Err = std::string("connect: ") + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  const int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

void updateInterest(int Ep, OpenConn &C, size_t Idx) {
  epoll_event Ev{};
  Ev.events = EPOLLIN | (C.WantWrite ? EPOLLOUT : 0u);
  Ev.data.u64 = Idx;
  ::epoll_ctl(Ep, EPOLL_CTL_MOD, C.Fd, &Ev);
}

/// Writes what the socket accepts; arms EPOLLOUT on a partial write.
/// Returns false when the connection failed.
bool flushOut(int Ep, OpenConn &C, size_t Idx) {
  while (C.OutOff < C.Out.size()) {
    const ssize_t N = ::send(C.Fd, C.Out.data() + C.OutOff,
                             C.Out.size() - C.OutOff, MSG_NOSIGNAL);
    if (N > 0) {
      C.OutOff += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!C.WantWrite) {
        C.WantWrite = true;
        updateInterest(Ep, C, Idx);
      }
      return true;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  C.Out.clear();
  C.OutOff = 0;
  if (C.WantWrite) {
    C.WantWrite = false;
    updateInterest(Ep, C, Idx);
  }
  return true;
}

/// One event-loop thread: NumConns persistent connections, a private
/// Poisson arrival process at TargetRps / NumThreads, Quota requests.
void runOpenWorker(const OpenLoadConfig &Config, int ThreadIdx,
                   int NumThreads, long Quota, int NumConns,
                   OpenStats &S) {
  std::vector<std::string> Lines;
  Lines.reserve(Config.Corpus.size());
  for (const std::string &Src : Config.Corpus)
    Lines.push_back(renderRequestLine(Src, Config.Engine) + "\n");
  if (Lines.empty()) {
    S.Error = "empty corpus";
    return;
  }

  const int Ep = ::epoll_create1(0);
  if (Ep < 0) {
    S.Error = std::string("epoll_create1: ") + std::strerror(errno);
    return;
  }
  std::vector<OpenConn> Conns(static_cast<size_t>(NumConns));
  const auto Cleanup = [&] {
    for (OpenConn &C : Conns)
      if (C.Fd >= 0)
        ::close(C.Fd);
    ::close(Ep);
  };
  std::string Err;
  for (size_t I = 0; I < Conns.size(); ++I) {
    Conns[I].Fd = connectBlocking(Config.Host, Config.Port, Err);
    if (Conns[I].Fd < 0 || !setNonBlocking(Conns[I].Fd)) {
      S.Error = Err.empty() ? "fcntl(O_NONBLOCK) failed" : Err;
      Cleanup();
      return;
    }
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.u64 = I;
    ::epoll_ctl(Ep, EPOLL_CTL_ADD, Conns[I].Fd, &Ev);
  }

  long Outstanding = 0;
  const auto failConn = [&](OpenConn &C) {
    if (S.Error.empty())
      S.Error = "connection failed mid-run";
    Outstanding -= static_cast<long>(C.PendingUs.size());
    C.PendingUs.clear();
    ::epoll_ctl(Ep, EPOLL_CTL_DEL, C.Fd, nullptr);
    ::close(C.Fd);
    C.Fd = -1;
    C.Dead = true;
  };

  Rng R(Config.Seed ^
        (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(ThreadIdx + 1)));
  const double RatePerUs =
      (Config.TargetRps / static_cast<double>(NumThreads)) / 1e6;
  const int64_t StartUs = nowUs();
  double NextDueUs = 0;
  long SentCount = 0;
  int64_t LastProgressUs = StartUs;
  std::vector<epoll_event> Events(128);
  S.LatenciesUs.reserve(static_cast<size_t>(Quota));

  while (!(SentCount >= Quota && Outstanding == 0)) {
    const int64_t Now = nowUs();
    // Emit every arrival whose scheduled time has come, whether or not
    // the server kept up — that is what "open" means.
    while (SentCount < Quota &&
           StartUs + static_cast<int64_t>(NextDueUs) <= Now) {
      const size_t CI =
          static_cast<size_t>(SentCount) % Conns.size();
      OpenConn &C = Conns[CI];
      if (!C.Dead) {
        C.PendingUs.push_back(StartUs + static_cast<int64_t>(NextDueUs));
        C.Out += Lines[static_cast<size_t>(SentCount * NumThreads +
                                           ThreadIdx) %
                       Lines.size()];
        ++Outstanding;
        ++S.Sent;
        LastProgressUs = Now;
        if (!flushOut(Ep, C, CI))
          failConn(C);
      }
      ++SentCount;
      NextDueUs += -std::log(1.0 - R.nextDouble()) / RatePerUs;
    }

    int WaitMs;
    if (SentCount < Quota) {
      const int64_t DueInUs =
          StartUs + static_cast<int64_t>(NextDueUs) - nowUs();
      WaitMs = DueInUs <= 0
                   ? 0
                   : static_cast<int>(
                         std::min<int64_t>(DueInUs / 1000 + 1, 100));
    } else {
      WaitMs = 50;
      if (nowUs() - LastProgressUs > Config.TailTimeoutMs * 1000) {
        S.Error = "tail timeout with " + std::to_string(Outstanding) +
                  " responses outstanding";
        break;
      }
    }

    const int N =
        ::epoll_wait(Ep, Events.data(), static_cast<int>(Events.size()),
                     WaitMs);
    for (int E = 0; E < N; ++E) {
      const size_t CI = static_cast<size_t>(Events[E].data.u64);
      OpenConn &C = Conns[CI];
      if (C.Dead)
        continue;
      if (Events[E].events & (EPOLLHUP | EPOLLERR)) {
        failConn(C);
        continue;
      }
      if ((Events[E].events & EPOLLOUT) && !flushOut(Ep, C, CI)) {
        failConn(C);
        continue;
      }
      if (!(Events[E].events & EPOLLIN))
        continue;
      char Buf[16384];
      while (!C.Dead) {
        const ssize_t RN = ::recv(C.Fd, Buf, sizeof(Buf), 0);
        if (RN > 0) {
          C.In.append(Buf, static_cast<size_t>(RN));
          size_t Pos;
          while ((Pos = C.In.find('\n')) != std::string::npos) {
            const std::string Line = C.In.substr(0, Pos);
            C.In.erase(0, Pos + 1);
            if (C.PendingUs.empty())
              continue; // server-initiated line we did not time
            const int64_t RecvUs = nowUs();
            S.LatenciesUs.push_back(RecvUs - C.PendingUs.front());
            C.PendingUs.pop_front();
            --Outstanding;
            ++S.Received;
            LastProgressUs = RecvUs;
            const WireResponseView V = classifyResponseLine(Line);
            if (V.Shed)
              ++S.Shed;
            else if (V.Error)
              ++S.Errors;
            if (V.HasTier) {
              switch (V.Tier) {
              case ServiceTier::Exact:
                ++S.TierExact;
                break;
              case ServiceTier::Slack:
                ++S.TierSlack;
                break;
              case ServiceTier::Cached:
                ++S.TierCached;
                break;
              case ServiceTier::Shed:
                break;
              }
            }
          }
          continue;
        }
        if (RN < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
          break;
        if (RN < 0 && errno == EINTR)
          continue;
        failConn(C); // EOF or hard error with requests outstanding
      }
    }
  }
  Cleanup();
}

} // namespace

long lsms::raiseFdLimit(long AtLeast) {
  rlimit RL{};
  if (::getrlimit(RLIMIT_NOFILE, &RL) != 0)
    return -1;
  if (static_cast<long>(RL.rlim_cur) >= AtLeast)
    return static_cast<long>(RL.rlim_cur);
  rlimit NewRL = RL;
  NewRL.rlim_cur =
      RL.rlim_max == RLIM_INFINITY
          ? static_cast<rlim_t>(AtLeast)
          : std::min<rlim_t>(RL.rlim_max, static_cast<rlim_t>(AtLeast));
  if (::setrlimit(RLIMIT_NOFILE, &NewRL) != 0)
    return static_cast<long>(RL.rlim_cur);
  return static_cast<long>(NewRL.rlim_cur);
}

OpenLoadResult lsms::runOpenLoad(const OpenLoadConfig &Config) {
  OpenLoadResult Result;
  if (Config.TargetRps <= 0) {
    Result.Error = "open-arrival mode needs a positive target rps";
    return Result;
  }
  const int Conns = std::max(1, Config.Connections);
  int Threads = Config.ClientThreads;
  if (Threads <= 0) {
    const unsigned HW = std::thread::hardware_concurrency();
    Threads = static_cast<int>(HW ? std::min(4u, std::max(1u, HW / 2)) : 2);
  }
  Threads = std::min(Threads, Conns);
  // Client fds live in the same process as the server in the benches.
  raiseFdLimit(2L * Conns + 256);

  std::vector<OpenStats> Stats(static_cast<size_t>(Threads));
  const auto T0 = Clock::now();
  {
    std::vector<std::thread> Pool;
    Pool.reserve(static_cast<size_t>(Threads));
    for (int T = 0; T < Threads; ++T) {
      const long Quota =
          Config.TotalRequests / Threads +
          (T < Config.TotalRequests % Threads ? 1 : 0);
      const int NumConns =
          Conns / Threads + (T < Conns % Threads ? 1 : 0);
      Pool.emplace_back([&Config, T, Threads, Quota, NumConns, &Stats] {
        runOpenWorker(Config, T, Threads, Quota, NumConns, Stats[T]);
      });
    }
    for (std::thread &T : Pool)
      T.join();
  }
  Result.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();

  std::vector<int64_t> All;
  for (const OpenStats &S : Stats) {
    Result.Sent += S.Sent;
    Result.Received += S.Received;
    Result.Errors += S.Errors;
    Result.Shed += S.Shed;
    Result.TierExact += S.TierExact;
    Result.TierSlack += S.TierSlack;
    Result.TierCached += S.TierCached;
    if (!S.Error.empty() && Result.Error.empty())
      Result.Error = S.Error;
    All.insert(All.end(), S.LatenciesUs.begin(), S.LatenciesUs.end());
  }
  if (!All.empty()) {
    std::sort(All.begin(), All.end());
    const auto pct = [&](double F) {
      const size_t N = All.size();
      size_t Rank = static_cast<size_t>(F * static_cast<double>(N));
      if (Rank >= N)
        Rank = N - 1;
      return All[Rank];
    };
    Result.P50Us = pct(0.50);
    Result.P99Us = pct(0.99);
    Result.P999Us = pct(0.999);
    Result.MaxUs = All.back();
  }
  return Result;
}
