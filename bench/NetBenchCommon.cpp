#include "NetBenchCommon.h"

#include "net/JsonlClient.h"
#include "service/Json.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

using namespace lsms;

namespace {

using Clock = std::chrono::steady_clock;

int64_t nowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

struct ConnStats {
  long Sent = 0, Received = 0, Errors = 0, Shed = 0;
  std::vector<int64_t> LatenciesUs;
  std::string Error;
};

void runConnection(const NetLoadConfig &Config, int ConnIndex,
                   ConnStats &Stats) {
  // This connection's request lines, built once up front so the timed
  // loop is pure socket traffic.
  std::vector<std::string> Slice;
  for (size_t I = 0; I < Config.Corpus.size(); ++I)
    if (!Config.DisjointSlices ||
        static_cast<int>(I % static_cast<size_t>(Config.Connections)) ==
            ConnIndex)
      Slice.push_back("{\"source\":" + jsonQuote(Config.Corpus[I]) +
                      ",\"engine\":\"" + Config.Engine + "\"}");
  if (Slice.empty()) {
    Stats.Error = "empty corpus slice";
    return;
  }

  JsonlClient Client;
  std::string Err;
  if (!Client.connect(Config.Host, Config.Port, Err)) {
    Stats.Error = Err;
    return;
  }

  const int Total = Config.RequestsPerConnection;
  const int Depth = std::max(1, Config.PipelineDepth);
  std::deque<int64_t> SendTimes; // responses come back in request order
  int SentCount = 0, RecvCount = 0;
  Stats.LatenciesUs.reserve(static_cast<size_t>(Total));
  while (RecvCount < Total) {
    if (SentCount < Total &&
        static_cast<int>(SendTimes.size()) < Depth) {
      const std::string &Line =
          Slice[static_cast<size_t>(SentCount) % Slice.size()];
      SendTimes.push_back(nowUs());
      if (!Client.sendLine(Line, Err)) {
        Stats.Error = Err;
        return;
      }
      ++SentCount;
      ++Stats.Sent;
      continue;
    }
    std::string Resp;
    if (!Client.recvLine(Resp, Err)) {
      Stats.Error = Err.empty() ? "server closed connection early" : Err;
      return;
    }
    Stats.LatenciesUs.push_back(nowUs() - SendTimes.front());
    SendTimes.pop_front();
    ++RecvCount;
    ++Stats.Received;
    if (Resp.find("\"status\":\"shed\"") != std::string::npos)
      ++Stats.Shed;
    else if (Resp.find("\"status\":\"error\"") != std::string::npos)
      ++Stats.Errors;
  }
  Client.shutdownWrite();
  // The server answers everything in flight and closes; a clean EOF here
  // proves the drain handshake.
  std::string Tail;
  if (Client.recvLine(Tail, Err))
    Stats.Error = "unexpected response after final request";
  else if (!Err.empty())
    Stats.Error = Err;
}

} // namespace

NetLoadResult lsms::runNetLoad(const NetLoadConfig &Config) {
  NetLoadResult Result;
  const int Conns = std::max(1, Config.Connections);
  std::vector<ConnStats> Stats(static_cast<size_t>(Conns));
  const auto T0 = Clock::now();
  {
    std::vector<std::thread> Threads;
    Threads.reserve(static_cast<size_t>(Conns));
    for (int I = 0; I < Conns; ++I)
      Threads.emplace_back(
          [&Config, I, &Stats] { runConnection(Config, I, Stats[I]); });
    for (std::thread &T : Threads)
      T.join();
  }
  Result.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();

  std::vector<int64_t> All;
  for (const ConnStats &S : Stats) {
    Result.Sent += S.Sent;
    Result.Received += S.Received;
    Result.Errors += S.Errors;
    Result.Shed += S.Shed;
    if (!S.Error.empty() && Result.Error.empty())
      Result.Error = S.Error;
    All.insert(All.end(), S.LatenciesUs.begin(), S.LatenciesUs.end());
  }
  if (!All.empty()) {
    std::sort(All.begin(), All.end());
    const auto pct = [&](double F) {
      const size_t N = All.size();
      size_t Rank = static_cast<size_t>(F * static_cast<double>(N));
      if (Rank >= N)
        Rank = N - 1;
      return All[Rank];
    };
    Result.P50Us = pct(0.50);
    Result.P99Us = pct(0.99);
    Result.P999Us = pct(0.999);
    Result.MaxUs = All.back();
  }
  return Result;
}
