//===----------------------------------------------------------------------===//
/// \file Regenerates Table 4: Cydrome-style scheduler performance (static
/// initial-slack priority, recurrence operations placed first,
/// unidirectional early placement; Section 8).
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  std::vector<LoopAnalysis> Analyses;
  std::vector<SchedOutcome> Outcomes;
  for (const LoopBody &Body : Suite) {
    Analyses.push_back(analyzeLoop(Body, Machine));
    Outcomes.push_back(
        runScheduler(Body, Machine, SchedulerOptions::cydrome()));
  }

  printPerformanceTable(std::cout,
                        "Table 4: Cydrome's Scheduling Performance (" +
                            std::to_string(Suite.size()) + " loops)",
                        Analyses, Outcomes);
  return 0;
}
