#include "ServiceBenchCommon.h"

#include "frontend/LoopCompiler.h"
#include "service/Json.h"
#include "support/Rng.h"
#include "workloads/Suite.h"

#include <chrono>
#include <sstream>

using namespace lsms;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Random expression over the generator's fixed vocabulary: read-only
/// arrays u/v/w, recurrence reads of the destination array, params q/r/t,
/// and small constants. Depth-bounded so sources stay kernel-sized.
std::string randomExpr(Rng &R, const std::string &Dest, int MaxRecur,
                       int Depth) {
  if (Depth <= 0 || R.nextBool(0.35)) {
    switch (R.nextBelow(5)) {
    case 0:
      return std::string(1, "uvw"[R.nextBelow(3)]) + "[i+" +
             std::to_string(R.nextInRange(0, 6)) + "]";
    case 1:
      return Dest + "[i-" + std::to_string(R.nextInRange(1, MaxRecur)) + "]";
    case 2:
      return std::string(1, "qrt"[R.nextBelow(3)]);
    case 3:
      return std::to_string(R.nextInRange(1, 9)) + "." +
             std::to_string(R.nextInRange(0, 9)) +
             std::to_string(R.nextInRange(1, 9));
    default:
      return std::string(1, "uvw"[R.nextBelow(3)]) + "[i]";
    }
  }
  const char *Ops[] = {" + ", " - ", " * ", " * ", " / "};
  const std::string Lhs = randomExpr(R, Dest, MaxRecur, Depth - 1);
  const std::string Rhs = randomExpr(R, Dest, MaxRecur, Depth - 1);
  if (R.nextBool(0.12))
    return "sqrt(" + Lhs + " * " + Lhs + " + " + Rhs + " * " + Rhs + ")";
  return "(" + Lhs + Ops[R.nextBelow(5)] + Rhs + ")";
}

std::string randomDslAttempt(uint64_t Seed) {
  Rng R(Seed);
  std::ostringstream OS;
  OS << "param q = 0." << R.nextInRange(1, 9) << "\n"
     << "param r = " << R.nextInRange(1, 3) << "." << R.nextInRange(0, 9)
     << "\n"
     << "param t = 2\n";
  const int MaxRecur = static_cast<int>(R.nextInRange(1, 3));
  OS << "loop i = " << (MaxRecur + 1) << ", n\n";
  const int Stmts = static_cast<int>(R.nextInRange(1, 3));
  const char *Dests[] = {"x", "y", "z"};
  for (int S = 0; S < Stmts; ++S) {
    const std::string Dest = Dests[S];
    const std::string Value =
        randomExpr(R, Dest, MaxRecur, static_cast<int>(R.nextInRange(1, 3)));
    if (R.nextBool(0.25)) {
      OS << "  if (" << randomExpr(R, Dest, MaxRecur, 1) << " < "
         << randomExpr(R, Dest, MaxRecur, 1) << ") then\n"
         << "    " << Dest << "[i] = " << Value << "\n"
         << "  else\n"
         << "    " << Dest << "[i] = " << Dest << "[i-1]\n"
         << "  end\n";
    } else {
      OS << "  " << Dest << "[i] = " << Value << "\n";
    }
  }
  OS << "end\n";
  return OS.str();
}

} // namespace

std::string lsms::randomDslSource(uint64_t Seed) {
  // Redraw (deterministically) until the program compiles; in practice the
  // vocabulary above nearly always compiles on the first attempt.
  for (uint64_t Attempt = 0;; ++Attempt) {
    const std::string Source =
        randomDslAttempt(Seed + 0x9e3779b97f4a7c15ULL * Attempt);
    LoopBody Body;
    if (compileLoop(Source, "random", Body).empty())
      return Source;
  }
}

std::vector<std::string> lsms::serviceBenchCorpus(int RandomCount,
                                                  uint64_t Seed) {
  std::vector<std::string> Corpus;
  for (const NamedKernel &K : kernelSources())
    Corpus.push_back(K.Source);
  for (int I = 0; I < RandomCount; ++I)
    Corpus.push_back(randomDslSource(Seed + static_cast<uint64_t>(I)));
  return Corpus;
}

ServiceBenchResult
lsms::runServiceBench(const std::vector<std::string> &Corpus,
                      ServiceEngine Engine, int WarmPasses,
                      const ServiceConfig &Config) {
  SchedulingService Service(Config);
  std::vector<ServiceRequest> Requests;
  Requests.reserve(Corpus.size());
  for (size_t I = 0; I < Corpus.size(); ++I) {
    ServiceRequest Req;
    Req.Name = "c" + std::to_string(I);
    Req.Source = Corpus[I];
    Req.Engine = Engine;
    Requests.push_back(std::move(Req));
  }

  ServiceBenchResult Result;
  Result.CorpusLoops = static_cast<int>(Corpus.size());
  Result.WarmPasses = WarmPasses;

  const auto Cold0 = Clock::now();
  for (const ServiceResponse &R : Service.handleBatch(Requests))
    Result.Errors += R.Ok ? 0 : 1;
  Result.ColdSeconds = secondsSince(Cold0);

  const auto Warm0 = Clock::now();
  for (int Pass = 0; Pass < WarmPasses; ++Pass)
    for (const ServiceResponse &R : Service.handleBatch(Requests))
      Result.Errors += R.Ok ? 0 : 1;
  Result.WarmSeconds = secondsSince(Warm0);

  // Combined over both tiers: warm repeats hit the request-level front
  // cache, so the schedule-level cache alone would undercount warm hits.
  const CacheStats Sched = Service.cacheStats();
  const CacheStats FrontStats = Service.frontCacheStats();
  Result.Hits = Sched.Hits + FrontStats.Hits;
  Result.Misses = Sched.Misses + FrontStats.Misses;
  const long Total = Result.Hits + Result.Misses;
  Result.HitRate =
      Total ? static_cast<double>(Result.Hits) / static_cast<double>(Total)
            : 0.0;
  Result.P50Us = Service.metrics().percentile("request_latency_us", 0.50);
  Result.P99Us = Service.metrics().percentile("request_latency_us", 0.99);
  return Result;
}

std::vector<std::string>
lsms::serviceResponsesAtJobs(const std::vector<std::string> &Corpus,
                             ServiceEngine Engine,
                             const std::vector<int> &JobCounts) {
  std::ostringstream Input;
  for (int Pass = 0; Pass < 2; ++Pass)
    for (size_t I = 0; I < Corpus.size(); ++I)
      Input << "{\"name\": " << jsonQuote("c" + std::to_string(I))
            << ", \"source\": " << jsonQuote(Corpus[I]) << ", \"engine\": \""
            << serviceEngineName(Engine) << "\"}\n";
  const std::string Requests = Input.str();

  std::vector<std::string> Streams;
  for (const int Jobs : JobCounts) {
    ServiceConfig Config;
    Config.Jobs = Jobs;
    SchedulingService Service(Config);
    std::istringstream In(Requests);
    std::ostringstream Out;
    Service.processJsonl(In, Out);
    Streams.push_back(Out.str());
  }
  return Streams;
}
