//===----------------------------------------------------------------------===//
/// \file Regenerates Table 2: Min / 50% / 90% / Max of the loop-complexity
/// metrics over the evaluation suite.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  std::vector<double> BBs, Ops, Crit, RecOps, Div, RecMII, ResMII, MII,
      MinAvg, Gprs;
  for (const LoopBody &Body : Suite) {
    const LoopAnalysis A = analyzeLoop(Body, Machine);
    BBs.push_back(A.BasicBlocks);
    Ops.push_back(A.Ops);
    Crit.push_back(A.CriticalOps);
    RecOps.push_back(A.RecurrenceOps);
    Div.push_back(A.DivOps);
    RecMII.push_back(A.RecMII);
    ResMII.push_back(A.ResMII);
    MII.push_back(A.MII);
    MinAvg.push_back(static_cast<double>(A.MinAvgAtMII));
    Gprs.push_back(A.Gprs);
  }

  std::cout << "Table 2: Measurements from all " << Suite.size()
            << " Loops\n";
  TextTable T;
  T.setHeader({"Metric", "Min", "50%", "90%", "Max"});
  auto Row = [&T](const char *Name, const std::vector<double> &V) {
    const QuantileSummary S = summarize(V);
    T.addRow({Name, formatNumber(S.Min), formatNumber(S.Median),
              formatNumber(S.Pct90), formatNumber(S.Max)});
  };
  Row("# Basic Blocks", BBs);
  Row("# Operations", Ops);
  Row("# Critical Ops at MII", Crit);
  Row("# Ops on Recurrences", RecOps);
  Row("# Div/Mod/Sqrt Ops", Div);
  Row("RecMII", RecMII);
  Row("ResMII", ResMII);
  Row("MII", MII);
  Row("MinAvg at MII", MinAvg);
  Row("# GPRs", Gprs);
  T.print(std::cout);

  std::cout << "\nPaper's reference values (1,525 FORTRAN loops): "
               "# Operations 4 / 18 / 80 / 406.\n";
  return 0;
}
