//===----------------------------------------------------------------------===//
/// \file Ablation of the II escalation step (footnote 6): incrementing II
/// by 1 instead of max(floor(0.04*II), 1) lowered the paper's total II by
/// 45 at the expense of 29% more scheduler time.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  SchedulerOptions ByPct = SchedulerOptions::slack(); // 4% (the default)
  SchedulerOptions ByOne = SchedulerOptions::slack();
  ByOne.IIIncrementPct = 0; // max(0, 1) = +1 per restart

  TextTable T;
  T.setHeader({"II increment", "total II", "II restarts", "sched time (s)",
               "opt %"});
  for (const auto &[Name, Options] :
       {std::pair<const char *, SchedulerOptions>{"max(4% of II, 1)", ByPct},
        std::pair<const char *, SchedulerOptions>{"always 1", ByOne}}) {
    long TotalII = 0, Restarts = 0, Opt = 0, Done = 0;
    double Seconds = 0;
    for (const LoopBody &Body : Suite) {
      const SchedOutcome O = runScheduler(Body, Machine, Options);
      TotalII += O.II;
      Restarts += O.Stats.IIRestarts;
      Seconds += O.Stats.SecondsTotal;
      if (O.Success) {
        ++Done;
        Opt += O.II == O.MII ? 1 : 0;
      }
    }
    T.addRow({Name, std::to_string(TotalII), std::to_string(Restarts),
              formatNumber(Seconds, 2),
              formatNumber(100.0 * static_cast<double>(Opt) /
                               static_cast<double>(Done),
                           1)});
  }

  std::cout << "Ablation: II escalation step (footnote 6, " << Suite.size()
            << " loops)\n";
  T.print(std::cout);
  std::cout << "\nPaper: increment-by-1 lowered total II by 45 for 29% "
               "more scheduler time.\n";
  return 0;
}
