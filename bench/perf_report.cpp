//===----------------------------------------------------------------------===//
/// \file Scheduling-throughput record for the perf trajectory: times the
/// heuristic suite sweep, the exact sweeps (branch-and-bound, the SAT
/// engine, and the staged portfolio), and the full differential-oracle
/// sweep (run on the portfolio engine) at jobs=1 and jobs=N, and emits the
/// numbers as JSON (checked in at the repo root as BENCH_schedule.json so
/// later PRs have a baseline to regress against). Also cross-checks that
/// the oracle report is byte-identical at both job counts, and enforces
/// the certified-MaxLive ratchet: a full run fails unless the oracle
/// sweep certifies at least 23 of its 50 loops.
///
/// The CGRA section runs the spatial differential sweep (bench/cgra_gap's
/// workload): the placement-aware slack mapper vs the exact SAT spatial
/// mapper on a 4x4 grid over the kernel suite plus 100 seeded loops. A
/// full run fails unless every mapping validates, the mappers agree, at
/// least one loop certifies a spatial II strictly above the flat MII, and
/// the SAT ladder certifies at least 140 of the 143 loops optimal.
///
/// The report also drives the socket front end at scale: an open-arrival
/// (Poisson) tail-latency section over >= 1000 concurrent connections
/// against the sharded epoll server, and an overload section that pushes
/// exact requests through a deliberately tiny admission queue and checks
/// the tier ladder answers (degraded or cached) instead of shedding.
///
/// Usage: perf_report [--smoke] [--jobs N] [--out FILE] [--engine E]
///   --smoke     small sizes for the `perf` CTest tier (throughput numbers
///               are then NOT representative; the JSON is tagged "smoke")
///   --jobs N    the "parallel" job count to measure. Default: 4 in full
///               mode (pinned so the checked-in par numbers measure the
///               thread pool, not whatever machine generated them), the
///               hardware in smoke mode
///   --out F     write the JSON to F instead of stdout
///   --engine E  exact engines to time: bnb, sat, portfolio, or both
///               (default both = all three — the JSON then also records
///               that the engines' minimal IIs agree loop for loop)
///   Exact budgets (--node-budget=N etc., see service/EngineFlag.h) apply
///   to the exact and oracle sweeps.
//===----------------------------------------------------------------------===//

#include "NetBenchCommon.h"
#include "ServiceBenchCommon.h"
#include "SuiteMetrics.h"
#include "cgra/CgraOracle.h"
#include "exact/Oracle.h"
#include "spec/SpecOracle.h"
#include "net/EpollServer.h"
#include "service/EngineFlag.h"
#include "support/ParallelFor.h"
#include "workloads/Suite.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

using namespace lsms;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

struct SectionResult {
  int Loops = 0;
  double Jobs1Seconds = 0;
  double JobsNSeconds = 0;
};

std::string formatDouble(double V, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}

void printSection(std::ostream &OS, const char *Name,
                  const SectionResult &S, int JobsN, bool Last) {
  const double Rate1 =
      S.Jobs1Seconds > 0 ? S.Loops / S.Jobs1Seconds : 0;
  const double RateN =
      S.JobsNSeconds > 0 ? S.Loops / S.JobsNSeconds : 0;
  const double Speedup =
      S.JobsNSeconds > 0 ? S.Jobs1Seconds / S.JobsNSeconds : 0;
  OS << "    \"" << Name << "\": {\n"
     << "      \"loops\": " << S.Loops << ",\n"
     << "      \"seq_seconds\": " << formatDouble(S.Jobs1Seconds, 3)
     << ",\n"
     << "      \"seq_loops_per_sec\": " << formatDouble(Rate1, 1) << ",\n"
     << "      \"par_jobs\": " << JobsN << ",\n"
     << "      \"par_seconds\": " << formatDouble(S.JobsNSeconds, 3)
     << ",\n"
     << "      \"par_loops_per_sec\": " << formatDouble(RateN, 1) << ",\n"
     << "      \"speedup\": " << formatDouble(Speedup, 2) << "\n"
     << "    }" << (Last ? "\n" : ",\n");
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  int JobsN = 0;
  const char *OutPath = nullptr;
  bool RunBnb = true, RunSat = true, RunPortfolio = true;
  ExactOptions BaseExact;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      JobsN = std::atoi(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--engine") == 0 && I + 1 < Argc) {
      EngineSelection Sel;
      std::string EngineErr;
      if (!parseEngineSelection(Argv[++I], /*AllowSlack=*/false,
                                /*AllowAll=*/true, Sel, EngineErr)) {
        std::cerr << "perf_report: " << EngineErr << "\n";
        return 1;
      }
      RunBnb = Sel.All || Sel.Exact == ExactEngineKind::BranchAndBound;
      RunSat = Sel.All || Sel.Exact == ExactEngineKind::Sat;
      RunPortfolio = Sel.All || Sel.Exact == ExactEngineKind::Portfolio;
    } else if (applyExactBudgetFlag(Argv[I], BaseExact)) {
      // parsed an exact-budget knob
    } else {
      std::cerr << "usage: perf_report [--smoke] [--jobs N] [--out FILE] "
                   "[--engine bnb|sat|portfolio|both]\n"
                   "       [--node-budget=N] [--sat-conflict-budget=N]\n"
                   "       [--maxlive-node-budget=N] "
                   "[--maxlive-conflict-budget=N]\n";
      return 1;
    }
  }
  // Full mode pins the parallel job count (default 4) so the checked-in
  // par/speedup numbers measure the thread pool at a fixed width instead
  // of degenerating to jobs=1 on single-core builders (which made every
  // speedup a vacuous 1.00). Smoke mode keeps the hardware default.
  if (JobsN <= 0 && !Smoke)
    JobsN = 4;
  JobsN = resolveJobs(JobsN);

  const int SuiteLoops = Smoke ? 40 : 300;
  const int ExactLoops = Smoke ? 10 : 50;
  const int OracleLoops = Smoke ? 8 : 50;
  const uint64_t Seed = 0x19930601;
  const MachineModel Machine = MachineModel::cydra5();

  // -- Heuristic sweep: slack-schedule the Table 2-calibrated suite. ------
  SectionResult Heur;
  {
    const std::vector<LoopBody> Suite = buildFullSuite(SuiteLoops);
    Heur.Loops = static_cast<int>(Suite.size());
    for (const int Jobs : {1, JobsN}) {
      const auto T0 = Clock::now();
      std::vector<SchedOutcome> Outcomes(Suite.size());
      parallelFor(Jobs, static_cast<int>(Suite.size()), [&](int I) {
        Outcomes[static_cast<size_t>(I)] =
            runScheduler(Suite[static_cast<size_t>(I)], Machine,
                         SchedulerOptions::slack());
      });
      (Jobs == 1 ? Heur.Jobs1Seconds : Heur.JobsNSeconds) =
          secondsSince(T0);
      if (JobsN == 1)
        Heur.JobsNSeconds = Heur.Jobs1Seconds;
    }
  }

  // -- Exact sweeps: each selected engine to a proven-minimal II. ---------
  SectionResult ExactBnb, ExactSat, ExactPortfolio;
  std::vector<int> BnbII, SatII, PortfolioII;
  {
    const std::vector<LoopBody> Suite =
        buildOracleSuite(ExactLoops, 3, 20, Seed);
    auto sweep = [&](ExactEngineKind Engine, SectionResult &Section,
                     std::vector<int> &IIOut) {
      ExactOptions Options = BaseExact;
      Options.Engine = Engine;
      Section.Loops = static_cast<int>(Suite.size());
      for (const int Jobs : {1, JobsN}) {
        const auto T0 = Clock::now();
        std::vector<int> II(Suite.size());
        parallelFor(Jobs, static_cast<int>(Suite.size()), [&](int I) {
          const DepGraph Graph(Suite[static_cast<size_t>(I)], Machine);
          II[static_cast<size_t>(I)] =
              scheduleLoopExact(Graph, Options).Sched.II;
        });
        (Jobs == 1 ? Section.Jobs1Seconds : Section.JobsNSeconds) =
            secondsSince(T0);
        if (JobsN == 1)
          Section.JobsNSeconds = Section.Jobs1Seconds;
        IIOut = II;
      }
    };
    if (RunBnb)
      sweep(ExactEngineKind::BranchAndBound, ExactBnb, BnbII);
    if (RunSat)
      sweep(ExactEngineKind::Sat, ExactSat, SatII);
    if (RunPortfolio)
      sweep(ExactEngineKind::Portfolio, ExactPortfolio, PortfolioII);
  }
  const bool EnginesCompared = RunBnb && RunSat && RunPortfolio;
  const bool EnginesAgree =
      !EnginesCompared || (BnbII == SatII && BnbII == PortfolioII);

  // -- Oracle sweep: the full differential run (both schedulers + MaxLive
  // minimization + validation), the exact_gap workload. -------------------
  SectionResult Oracle;
  bool ReportsIdentical = true;
  int CertifiedLoops = 0, CertMinAvg = 0, CertFamily = 0;
  {
    OracleOptions Options;
    Options.NumLoops = OracleLoops;
    // The oracle's exact side runs on the portfolio engine: feasibility by
    // branch-and-bound with a SAT fallback, MaxLive certification SAT-first
    // — the configuration the >=10x sweep throughput and the certified
    // ratchet are measured against.
    Options.Exact = BaseExact;
    Options.Exact.Engine = ExactEngineKind::Portfolio;
    std::string Report1, ReportN;
    for (const int Jobs : {1, JobsN}) {
      Options.Jobs = Jobs;
      const auto T0 = Clock::now();
      const OracleReport Report = runOracle(Options);
      (Jobs == 1 ? Oracle.Jobs1Seconds : Oracle.JobsNSeconds) =
          secondsSince(T0);
      if (JobsN == 1)
        Oracle.JobsNSeconds = Oracle.Jobs1Seconds;
      Oracle.Loops = static_cast<int>(Report.Cases.size());
      CertifiedLoops = Report.MaxLiveCertified;
      CertMinAvg = Report.CertMinAvg;
      CertFamily = Report.CertFamily;
      std::ostringstream OS;
      printOracleReport(OS, Report);
      (Jobs == 1 ? Report1 : ReportN) = OS.str();
      if (JobsN == 1)
        ReportN = Report1;
    }
    ReportsIdentical = Report1 == ReportN;
  }

  // -- CGRA spatial sweep: the placement-aware slack mapper vs the exact
  // SAT spatial mapper (the cgra_gap workload). Smoke shrinks to a 2x2
  // grid over random loops only; full runs the kernel suite plus 100
  // seeded loops on the heterogeneous 4x4 reference grid. -----------------
  SectionResult CgraSection;
  CgraOracleReport CgraReport;
  bool CgraReportsIdentical = true;
  {
    CgraOracleOptions Options;
    if (Smoke) {
      Options.NumLoops = 8;
      Options.Cgra = CgraModel::defaultGrid(2, 2);
      Options.IncludeKernels = false;
    }
    std::string Report1, ReportN;
    for (const int Jobs : {1, JobsN}) {
      Options.Jobs = Jobs;
      const auto T0 = Clock::now();
      CgraReport = runCgraOracle(Options);
      (Jobs == 1 ? CgraSection.Jobs1Seconds : CgraSection.JobsNSeconds) =
          secondsSince(T0);
      if (JobsN == 1)
        CgraSection.JobsNSeconds = CgraSection.Jobs1Seconds;
      CgraSection.Loops = static_cast<int>(CgraReport.Cases.size());
      std::ostringstream OS;
      printCgraOracleReport(OS, CgraReport);
      (Jobs == 1 ? Report1 : ReportN) = OS.str();
      if (JobsN == 1)
        ReportN = Report1;
    }
    CgraReportsIdentical = Report1 == ReportN;
  }

  // -- Irregular loops: conservative vs speculative scheduling over the
  // while-exit / may-alias suite (the irregular_gap workload), with the
  // speculative schedules replayed against a concrete trace. Smoke shrinks
  // the sweep; the gates on validation, the structural II ordering, and
  // report byte-identity apply in both modes. ----------------------------
  SectionResult IrregularSection;
  IrregularReport IrrReport;
  bool IrrReportsIdentical = true;
  {
    IrregularOptions Options;
    if (Smoke)
      Options.NumLoops = 8;
    std::string Report1, ReportN;
    for (const int Jobs : {1, JobsN}) {
      Options.Jobs = Jobs;
      const auto T0 = Clock::now();
      IrrReport = runIrregularSweep(Options);
      (Jobs == 1 ? IrregularSection.Jobs1Seconds
                 : IrregularSection.JobsNSeconds) = secondsSince(T0);
      if (JobsN == 1)
        IrregularSection.JobsNSeconds = IrregularSection.Jobs1Seconds;
      IrregularSection.Loops = static_cast<int>(IrrReport.Cases.size());
      std::ostringstream OS;
      printIrregularReport(OS, IrrReport);
      (Jobs == 1 ? Report1 : ReportN) = OS.str();
      if (JobsN == 1)
        ReportN = Report1;
    }
    IrrReportsIdentical = Report1 == ReportN;
  }

  // -- Scheduling service: cold vs warm (cache-hit) throughput over the
  // deterministic corpus, plus the byte-identity check across workers. ----
  ServiceBenchResult Service;
  bool ServiceByteIdentical = true;
  {
    const std::vector<std::string> Corpus =
        serviceBenchCorpus(Smoke ? 8 : 75, Seed);
    ServiceConfig Config;
    Config.Jobs = JobsN;
    Service = runServiceBench(Corpus, ServiceEngine::Slack, Smoke ? 3 : 10,
                              Config);
    const std::vector<std::string> Streams =
        serviceResponsesAtJobs(Corpus, ServiceEngine::Slack, {1, 2, JobsN});
    for (size_t I = 1; I < Streams.size(); ++I)
      ServiceByteIdentical = ServiceByteIdentical && Streams[I] == Streams[0];
  }
  const bool ServiceWarmFastEnough = Service.warmSpeedup() >= 10.0;

  // -- Socket front end + persistent store: exact (bnb) cold compute over
  // the wire into a fresh store, then a full restart — a new service on
  // the same store path — answering the same corpus from the recovered
  // index. The gate: the warm restart must serve >= 10x the cold
  // request rate. ---------------------------------------------------------
  struct ServerBenchNumbers {
    double ColdSeconds = 0, WarmSeconds = 0;
    long ColdRequests = 0, WarmRequests = 0;
    long RecoveredRecords = 0;
    int64_t WarmP50Us = 0, WarmP99Us = 0, WarmP999Us = 0;
    long Errors = 0, Shed = 0;
    int Connections = 0, WarmPasses = 0;
    std::string Error;
  } Server;
  {
    const std::vector<std::string> NetCorpus =
        serviceBenchCorpus(Smoke ? 4 : 24, Seed + 1);
    Server.Connections = Smoke ? 2 : 4;
    Server.WarmPasses = 3;
    const std::string StorePath = "perf_report_store.lsr";
    std::remove(StorePath.c_str());

    const auto phase = [&](int Passes, double &Seconds, long &Requests,
                           bool WarmStats) {
      ServiceConfig SC;
      SC.Jobs = JobsN;
      SC.StorePath = StorePath;
      // Budget-bound the exact engine (instead of a wall deadline) so the
      // cold phase is expensive but bounded AND deterministic — budget
      // degradation is part of the engines' contract, so every response,
      // degraded or not, is cache-eligible and store-persisted, and the
      // warm restart never recomputes.
      SC.Exact.NodeBudget = 1L << 14;
      SC.Exact.MaxLiveNodeBudget = 1L << 14;
      SchedulingService Svc(SC);
      if (WarmStats)
        Server.RecoveredRecords = Svc.storeStats().RecoveredRecords;
      EpollServer Front(Svc);
      std::string Err;
      if (!Front.start(Err)) {
        Server.Error = Err;
        return false;
      }
      std::thread IO([&Front] { Front.serve(); });
      NetLoadConfig LC;
      LC.Port = Front.port();
      LC.Connections = Server.Connections;
      LC.Engine = "bnb";
      LC.Corpus = NetCorpus;
      LC.DisjointSlices = true;
      LC.PipelineDepth = 16;
      const size_t Slice =
          (NetCorpus.size() + static_cast<size_t>(LC.Connections) - 1) /
          static_cast<size_t>(LC.Connections);
      LC.RequestsPerConnection = static_cast<int>(Slice) * Passes;
      const NetLoadResult R = runNetLoad(LC);
      Front.requestStop();
      IO.join();
      if (!R.ok()) {
        Server.Error = R.Error;
        return false;
      }
      Seconds = R.Seconds;
      Requests = R.Received;
      Server.Errors += R.Errors;
      Server.Shed += R.Shed;
      if (WarmStats) {
        Server.WarmP50Us = R.P50Us;
        Server.WarmP99Us = R.P99Us;
        Server.WarmP999Us = R.P999Us;
      }
      return true;
    };
    if (phase(1, Server.ColdSeconds, Server.ColdRequests, false))
      phase(Server.WarmPasses, Server.WarmSeconds, Server.WarmRequests,
            true);
    std::remove(StorePath.c_str());
  }
  const double ServerColdRps =
      Server.ColdSeconds > 0 ? Server.ColdRequests / Server.ColdSeconds : 0;
  const double ServerWarmRps =
      Server.WarmSeconds > 0 ? Server.WarmRequests / Server.WarmSeconds : 0;
  const double ServerRestartSpeedup =
      ServerColdRps > 0 ? ServerWarmRps / ServerColdRps : 0;
  const bool ServerWarmFastEnough =
      Server.Error.empty() && Server.Errors == 0 && Server.Shed == 0 &&
      Server.RecoveredRecords > 0 && ServerRestartSpeedup >= 10.0;

  // -- Open-arrival tail latency: Poisson arrivals over a large pool of
  // persistent connections against the 4-way SO_REUSEPORT-sharded front
  // end. Latency is charged from the scheduled arrival (no coordinated
  // omission); the full-mode gate bounds slack-engine p99 and requires a
  // clean (no errors, nothing shed) run at >= 1000 connections. ----------
  struct OpenBenchNumbers {
    OpenLoadResult Tail;
    OpenLoadResult Overload;
    int TailConns = 0, OverloadConns = 0;
    double TailTargetRps = 0, OverloadTargetRps = 0;
    int IoShards = 4;
  } Open;
  {
    const std::vector<std::string> OpenCorpus =
        serviceBenchCorpus(Smoke ? 8 : 32, Seed + 2);
    ServiceConfig SC;
    SC.Jobs = JobsN;
    SchedulingService Svc(SC);
    ServerConfig NC;
    NC.IoShards = Open.IoShards;
    EpollServer Front(Svc, NC);
    std::string Err;
    if (!Front.start(Err)) {
      Open.Tail.Error = Err;
    } else {
      std::thread IO([&Front] { Front.serve(); });
      OpenLoadConfig OC;
      OC.Port = Front.port();
      OC.Connections = Smoke ? 128 : 1000;
      OC.TargetRps = Smoke ? 400 : 2000;
      OC.TotalRequests = Smoke ? 800 : 10000;
      OC.Seed = Seed + 2;
      OC.Engine = "slack";
      OC.Corpus = OpenCorpus;
      Open.TailConns = OC.Connections;
      Open.TailTargetRps = OC.TargetRps;
      Open.Tail = runOpenLoad(OC);
      Front.requestStop();
      IO.join();
    }
  }
  const bool OpenTailOk = Open.Tail.Error.empty() &&
                          Open.Tail.Errors == 0 && Open.Tail.Shed == 0 &&
                          (Smoke || Open.Tail.P99Us <= 250000);

  // -- Overload ladder under open arrival: a deliberately starved server
  // (one worker, tiny admission queue, budget-bound exact engine) takes a
  // bnb-engine Poisson burst far above its compute capacity. A slack warm
  // pass first populates the cache so the cached rung has answers; the
  // gate then demands >= 90% of requests get answered (degraded or
  // cached) rather than shed, with the cached rung demonstrably used. ----
  {
    const std::vector<std::string> OverCorpus =
        serviceBenchCorpus(Smoke ? 8 : 32, Seed + 3);
    ServiceConfig SC;
    SC.Jobs = 1;
    SC.Exact.NodeBudget = 1L << 14;
    SC.Exact.MaxLiveNodeBudget = 1L << 14;
    SchedulingService Svc(SC);
    ServerConfig NC;
    NC.Workers = 1;
    NC.IoShards = 2;
    NC.MaxQueueDepth = 4;
    NC.SlackQueueDepth = 8;
    NC.CachedFallback = true;
    EpollServer Front(Svc, NC);
    std::string Err;
    if (!Front.start(Err)) {
      Open.Overload.Error = Err;
    } else {
      std::thread IO([&Front] { Front.serve(); });
      // Warm pass: strict lockstep on one connection so nothing queues —
      // every corpus loop gets a slack answer into the cache.
      NetLoadConfig WC;
      WC.Port = Front.port();
      WC.Connections = 1;
      WC.PipelineDepth = 1;
      WC.Engine = "slack";
      WC.Corpus = OverCorpus;
      WC.RequestsPerConnection = static_cast<int>(OverCorpus.size());
      const NetLoadResult Warm = runNetLoad(WC);
      if (!Warm.ok() || Warm.Errors > 0) {
        Open.Overload.Error =
            Warm.Error.empty() ? "overload warm pass saw errors"
                               : Warm.Error;
      } else {
        OpenLoadConfig OC;
        OC.Port = Front.port();
        OC.Connections = Smoke ? 64 : 256;
        OC.TargetRps = Smoke ? 300 : 1500;
        OC.TotalRequests = Smoke ? 600 : 6000;
        OC.Seed = Seed + 3;
        OC.Engine = "bnb";
        OC.Corpus = OverCorpus;
        Open.OverloadConns = OC.Connections;
        Open.OverloadTargetRps = OC.TargetRps;
        Open.Overload = runOpenLoad(OC);
      }
      Front.requestStop();
      IO.join();
    }
  }
  const bool OverloadAnswers =
      Open.Overload.Error.empty() && Open.Overload.Errors == 0 &&
      (Smoke || (Open.Overload.answeredFraction() >= 0.9 &&
                 Open.Overload.TierCached > 0));

  std::ostringstream JSON;
  JSON << "{\n"
       << "  \"bench\": \"perf_report\",\n"
       << "  \"mode\": \"" << (Smoke ? "smoke" : "full") << "\",\n"
       << "  \"hardware_concurrency\": " << hardwareJobs() << ",\n"
       << "  \"jobs\": " << JobsN << ",\n"
       << "  \"oracle_report_byte_identical_across_jobs\": "
       << (ReportsIdentical ? "true" : "false") << ",\n"
       << "  \"cgra_report_byte_identical_across_jobs\": "
       << (CgraReportsIdentical ? "true" : "false") << ",\n"
       << "  \"irregular_report_byte_identical_across_jobs\": "
       << (IrrReportsIdentical ? "true" : "false") << ",\n"
       << "  \"oracle_maxlive_certified\": " << CertifiedLoops << ",\n"
       << "  \"oracle_sweep_loops_per_sec\": "
       << formatDouble(Oracle.Jobs1Seconds > 0
                           ? Oracle.Loops / Oracle.Jobs1Seconds
                           : 0,
                       1)
       << ",\n"
       << "  \"oracle_maxlive_cert_minavg\": " << CertMinAvg << ",\n"
       << "  \"oracle_maxlive_cert_family\": " << CertFamily << ",\n";
  if (EnginesCompared)
    JSON << "  \"exact_engines_agree\": " << (EnginesAgree ? "true" : "false")
         << ",\n";
  JSON << "  \"service_responses_byte_identical_across_jobs\": "
       << (ServiceByteIdentical ? "true" : "false") << ",\n"
       << "  \"sections\": {\n";
  printSection(JSON, "heuristic_suite", Heur, JobsN, false);
  if (RunBnb)
    printSection(JSON, "exact_suite", ExactBnb, JobsN, false);
  if (RunSat)
    printSection(JSON, "exact_suite_sat", ExactSat, JobsN, false);
  if (RunPortfolio)
    printSection(JSON, "exact_suite_portfolio", ExactPortfolio, JobsN,
                 false);
  printSection(JSON, "oracle_sweep", Oracle, JobsN, false);
  JSON << "    \"cgra\": {\n"
       << "      \"grid\": \"" << CgraReport.Config.Cgra.rows() << "x"
       << CgraReport.Config.Cgra.cols() << "\",\n"
       << "      \"loops\": " << CgraSection.Loops << ",\n"
       << "      \"seq_seconds\": "
       << formatDouble(CgraSection.Jobs1Seconds, 3) << ",\n"
       << "      \"par_seconds\": "
       << formatDouble(CgraSection.JobsNSeconds, 3) << ",\n"
       << "      \"heur_mapped\": " << CgraReport.HeurMapped << ",\n"
       << "      \"exact_optimal\": " << CgraReport.CertifiedOptimal
       << ",\n"
       << "      \"heur_at_exact\": " << CgraReport.HeurAtExactII << ",\n"
       << "      \"spatial_above_flat_mii\": " << CgraReport.AboveFlatMII
       << ",\n"
       << "      \"timeouts\": " << CgraReport.Timeouts << ",\n"
       << "      \"validation_failures\": "
       << CgraReport.ValidationFailures << ",\n"
       << "      \"parity_failures\": " << CgraReport.ParityViolations
       << "\n"
       << "    },\n"
       << "    \"irregular\": {\n"
       << "      \"loops\": " << IrregularSection.Loops << ",\n"
       << "      \"seq_seconds\": "
       << formatDouble(IrregularSection.Jobs1Seconds, 3) << ",\n"
       << "      \"par_seconds\": "
       << formatDouble(IrregularSection.JobsNSeconds, 3) << ",\n"
       << "      \"cons_scheduled\": " << IrrReport.ConsScheduled << ",\n"
       << "      \"spec_scheduled\": " << IrrReport.SpecScheduled << ",\n"
       << "      \"comparable\": " << IrrReport.Comparable << ",\n"
       << "      \"spec_at_or_below_cons\": " << IrrReport.SpecAtOrBelowCons
       << ",\n"
       << "      \"strict_gaps\": " << IrrReport.StrictGaps << ",\n"
       << "      \"certified_strict_gaps\": "
       << IrrReport.CertifiedStrictGaps << ",\n"
       << "      \"spec_wins\": " << IrrReport.SpecWins << ",\n"
       << "      \"assumption_violations\": " << IrrReport.TotalViolations
       << ",\n"
       << "      \"misspeculated_stores\": "
       << IrrReport.TotalMisspeculatedStores << ",\n"
       << "      \"validation_failures\": " << IrrReport.ValidationFailures
       << ",\n"
       << "      \"trace_failures\": " << IrrReport.TraceFailures << "\n"
       << "    },\n"
       << "    \"service\": {\n"
       << "      \"loops\": " << Service.CorpusLoops << ",\n"
       << "      \"warm_passes\": " << Service.WarmPasses << ",\n"
       << "      \"cold_seconds\": " << formatDouble(Service.ColdSeconds, 4)
       << ",\n"
       << "      \"cold_loops_per_sec\": "
       << formatDouble(Service.coldLoopsPerSec(), 1) << ",\n"
       << "      \"warm_seconds\": " << formatDouble(Service.WarmSeconds, 4)
       << ",\n"
       << "      \"warm_loops_per_sec\": "
       << formatDouble(Service.warmLoopsPerSec(), 1) << ",\n"
       << "      \"warm_speedup\": "
       << formatDouble(Service.warmSpeedup(), 1) << ",\n"
       << "      \"cache_hit_rate\": " << formatDouble(Service.HitRate, 4)
       << ",\n"
       << "      \"request_p50_us\": " << Service.P50Us << ",\n"
       << "      \"request_p99_us\": " << Service.P99Us << ",\n"
       << "      \"errors\": " << Service.Errors << "\n"
       << "    },\n"
       << "    \"server\": {\n"
       << "      \"connections\": " << Server.Connections << ",\n"
       << "      \"cold_requests\": " << Server.ColdRequests << ",\n"
       << "      \"cold_seconds\": " << formatDouble(Server.ColdSeconds, 4)
       << ",\n"
       << "      \"cold_rps\": " << formatDouble(ServerColdRps, 1) << ",\n"
       << "      \"warm_passes\": " << Server.WarmPasses << ",\n"
       << "      \"warm_requests\": " << Server.WarmRequests << ",\n"
       << "      \"warm_seconds\": " << formatDouble(Server.WarmSeconds, 4)
       << ",\n"
       << "      \"warm_rps\": " << formatDouble(ServerWarmRps, 1) << ",\n"
       << "      \"restart_speedup\": "
       << formatDouble(ServerRestartSpeedup, 1) << ",\n"
       << "      \"recovered_records\": " << Server.RecoveredRecords << ",\n"
       << "      \"warm_p50_us\": " << Server.WarmP50Us << ",\n"
       << "      \"warm_p99_us\": " << Server.WarmP99Us << ",\n"
       << "      \"warm_p999_us\": " << Server.WarmP999Us << ",\n"
       << "      \"errors\": " << Server.Errors << ",\n"
       << "      \"shed\": " << Server.Shed << ",\n"
       << "      \"warm_store_10x\": "
       << (ServerWarmFastEnough ? "true" : "false") << "\n"
       << "    },\n"
       << "    \"server_open\": {\n"
       << "      \"io_shards\": " << Open.IoShards << ",\n"
       << "      \"connections\": " << Open.TailConns << ",\n"
       << "      \"target_rps\": " << formatDouble(Open.TailTargetRps, 1)
       << ",\n"
       << "      \"sent\": " << Open.Tail.Sent << ",\n"
       << "      \"received\": " << Open.Tail.Received << ",\n"
       << "      \"seconds\": " << formatDouble(Open.Tail.Seconds, 3)
       << ",\n"
       << "      \"achieved_rps\": " << formatDouble(Open.Tail.rps(), 1)
       << ",\n"
       << "      \"p50_us\": " << Open.Tail.P50Us << ",\n"
       << "      \"p99_us\": " << Open.Tail.P99Us << ",\n"
       << "      \"p999_us\": " << Open.Tail.P999Us << ",\n"
       << "      \"max_us\": " << Open.Tail.MaxUs << ",\n"
       << "      \"errors\": " << Open.Tail.Errors << ",\n"
       << "      \"shed\": " << Open.Tail.Shed << ",\n"
       << "      \"p99_under_250ms\": " << (OpenTailOk ? "true" : "false")
       << "\n"
       << "    },\n"
       << "    \"server_overload\": {\n"
       << "      \"connections\": " << Open.OverloadConns << ",\n"
       << "      \"target_rps\": "
       << formatDouble(Open.OverloadTargetRps, 1) << ",\n"
       << "      \"sent\": " << Open.Overload.Sent << ",\n"
       << "      \"received\": " << Open.Overload.Received << ",\n"
       << "      \"tier_exact\": " << Open.Overload.TierExact << ",\n"
       << "      \"tier_slack\": " << Open.Overload.TierSlack << ",\n"
       << "      \"tier_cached\": " << Open.Overload.TierCached << ",\n"
       << "      \"shed\": " << Open.Overload.Shed << ",\n"
       << "      \"errors\": " << Open.Overload.Errors << ",\n"
       << "      \"answered_fraction\": "
       << formatDouble(Open.Overload.answeredFraction(), 4) << ",\n"
       << "      \"p99_us\": " << Open.Overload.P99Us << ",\n"
       << "      \"answered_90pct\": "
       << (OverloadAnswers ? "true" : "false") << "\n"
       << "    }\n"
       << "  }\n"
       << "}\n";

  if (OutPath) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::cerr << "perf_report: cannot write " << OutPath << "\n";
      return 1;
    }
    Out << JSON.str();
    std::cout << "wrote " << OutPath << "\n";
  } else {
    std::cout << JSON.str();
  }
  // The certified-MaxLive ratchet: the portfolio oracle sweep must keep
  // certifying at least as many loops as the current baseline (23 of 50).
  // Smoke mode sweeps too few loops for the threshold to apply.
  const bool CertifiedEnough = Smoke || CertifiedLoops >= 23;
  if (!CertifiedEnough)
    std::cerr << "perf_report: FAIL oracle sweep certified only "
              << CertifiedLoops << " loops < 23 (ratchet)\n";
  // The CGRA ratchet: every mapping validates, the mappers never
  // contradict each other, the grid constraints demonstrably bind on at
  // least one loop, and the SAT ladder keeps certifying at least 140 of
  // the 143 sweep loops optimal. Smoke keeps the parity/validation gates
  // but sweeps too few loops for the count floors.
  const bool CgraOk =
      CgraReportsIdentical && CgraReport.ValidationFailures == 0 &&
      CgraReport.ParityViolations == 0 &&
      (Smoke || (CgraReport.AboveFlatMII >= 1 &&
                 CgraReport.CertifiedOptimal >= 140));
  // The irregular ratchet: both lowerings schedule and validate on every
  // loop, the structural "spec II <= cons II" ordering holds on 100% of
  // them, no schedule diverges from its trace obligations, and — in full
  // mode — the sweep keeps demonstrating >= 10 strict II gaps and >= 1
  // held-assumption speculative win. Smoke keeps the correctness gates but
  // sweeps too few loops for the count floors.
  const bool IrregularOk =
      IrrReportsIdentical && IrrReport.ValidationFailures == 0 &&
      IrrReport.TraceFailures == 0 &&
      IrrReport.Comparable == IrregularSection.Loops &&
      IrrReport.SpecAtOrBelowCons == IrrReport.Comparable &&
      (Smoke || (IrrReport.StrictGaps >= 10 && IrrReport.SpecWins >= 1));
  if (!IrregularOk)
    std::cerr << "perf_report: FAIL irregular sweep (comparable "
              << IrrReport.Comparable << " of " << IrregularSection.Loops
              << " loops, spec<=cons on " << IrrReport.SpecAtOrBelowCons
              << "; strict gaps " << IrrReport.StrictGaps
              << " (floor 10), wins " << IrrReport.SpecWins
              << " (floor 1); validation=" << IrrReport.ValidationFailures
              << " trace=" << IrrReport.TraceFailures << " byte_identical="
              << (IrrReportsIdentical ? "true" : "false") << ")\n";
  if (!CgraOk)
    std::cerr << "perf_report: FAIL cgra sweep (certified "
              << CgraReport.CertifiedOptimal << " of " << CgraSection.Loops
              << " loops, floor 140; above-flat-MII "
              << CgraReport.AboveFlatMII
              << "; validation=" << CgraReport.ValidationFailures
              << " parity=" << CgraReport.ParityViolations
              << " byte_identical="
              << (CgraReportsIdentical ? "true" : "false") << ")\n";
  if (!ServiceByteIdentical)
    std::cerr << "perf_report: FAIL service responses differ across jobs\n";
  if (!ServiceWarmFastEnough)
    std::cerr << "perf_report: FAIL service warm speedup "
              << formatDouble(Service.warmSpeedup(), 1) << "x < 10x\n";
  if (!ServerWarmFastEnough) {
    if (!Server.Error.empty())
      std::cerr << "perf_report: FAIL server bench: " << Server.Error
                << "\n";
    else
      std::cerr << "perf_report: FAIL warm-store restart "
                << formatDouble(ServerRestartSpeedup, 1)
                << "x < 10x over cold exact (errors=" << Server.Errors
                << " shed=" << Server.Shed
                << " recovered=" << Server.RecoveredRecords << ")\n";
  }
  if (!OpenTailOk) {
    if (!Open.Tail.Error.empty())
      std::cerr << "perf_report: FAIL open-arrival bench: "
                << Open.Tail.Error << "\n";
    else
      std::cerr << "perf_report: FAIL open-arrival tail p99 "
                << Open.Tail.P99Us << "us > 250ms (errors="
                << Open.Tail.Errors << " shed=" << Open.Tail.Shed
                << ")\n";
  }
  if (!OverloadAnswers) {
    if (!Open.Overload.Error.empty())
      std::cerr << "perf_report: FAIL overload bench: "
                << Open.Overload.Error << "\n";
    else
      std::cerr << "perf_report: FAIL overload ladder answered "
                << formatDouble(Open.Overload.answeredFraction() * 100, 1)
                << "% < 90% (tier_cached=" << Open.Overload.TierCached
                << " shed=" << Open.Overload.Shed << ")\n";
  }
  return ReportsIdentical && EnginesAgree && CertifiedEnough && CgraOk &&
                 IrregularOk &&
                 ServiceByteIdentical && ServiceWarmFastEnough &&
                 ServerWarmFastEnough && OpenTailOk && OverloadAnswers &&
                 Service.Errors == 0
             ? 0
             : 1;
}
