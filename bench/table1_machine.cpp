//===----------------------------------------------------------------------===//
/// \file Regenerates Table 1: functional unit latencies of the target
/// machine (configuration echo — the machine model is an input).
//===----------------------------------------------------------------------===//

#include "machine/MachineModel.h"
#include "support/Table.h"

#include <iostream>

using namespace lsms;

int main() {
  const MachineModel M = MachineModel::cydra5();
  std::cout << "Table 1: Functional Unit Latencies\n";
  TextTable T;
  T.setHeader({"Pipeline", "No.", "Operations", "Latency"});
  auto Count = [&M](FuKind Kind) {
    return std::to_string(M.unitCount(Kind));
  };
  auto Lat = [&M](Opcode Op) { return std::to_string(M.latency(Op)); };
  T.addRow({"Memory Port", Count(FuKind::MemoryPort), "load",
            Lat(Opcode::Load)});
  T.addRow({"", "", "store", Lat(Opcode::Store)});
  T.addRow({"Address ALU", Count(FuKind::AddressAlu), "addr add/sub/mult",
            Lat(Opcode::AddrAdd)});
  T.addRow({"Adder", Count(FuKind::Adder), "int add/sub/logical",
            Lat(Opcode::IntAdd)});
  T.addRow({"", "", "float add/sub", Lat(Opcode::FloatAdd)});
  T.addRow({"Multiplier", Count(FuKind::Multiplier), "int/float multiply",
            Lat(Opcode::IntMul)});
  T.addRow({"Divider", Count(FuKind::Divider), "int/float div/mod",
            Lat(Opcode::IntDiv)});
  T.addRow({"", "", "float sqrt", Lat(Opcode::FloatSqrt)});
  T.addRow({"Branch Unit", Count(FuKind::Branch), "brtop",
            Lat(Opcode::BrTop)});
  T.print(std::cout);
  std::cout << "\nDivider is not pipelined (reserves the unit for its full "
               "latency); all other units are fully pipelined.\n";
  return 0;
}
