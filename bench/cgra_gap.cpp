//===----------------------------------------------------------------------===//
/// \file Differential sweep of the placement-aware slack mapper against the
/// exact SAT spatial mapper on a CGRA grid: per-loop II table, certified
/// optimal counts, and the spatial-vs-flat MII gap on the kernel suite plus
/// seeded random loops. Deterministic from a fixed seed.
///
/// Usage: cgra_gap [--loops N] [--grid RxC] [--seed S] [--jobs N]
///                 [--min-ops N] [--max-ops N] [--no-kernels]
///                 [--conflict-budget N]
///
/// Exits nonzero when any mapping fails validation or the two mappers
/// contradict each other (heuristic II below a proven-optimal II, or a
/// heuristic mapping for a loop SAT proved unmappable).
//===----------------------------------------------------------------------===//

#include "cgra/CgraOracle.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  CgraOracleOptions Options;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--loops") == 0 && I + 1 < Argc) {
      Options.NumLoops = std::atoi(Argv[++I]);
      continue;
    }
    if (std::strcmp(Argv[I], "--grid") == 0 && I + 1 < Argc) {
      std::string Err;
      if (!CgraModel::parseGridArg(Argv[++I], Options.Cgra, Err)) {
        std::cerr << "cgra_gap: " << Err << "\n";
        return 1;
      }
      continue;
    }
    if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc) {
      Options.Seed = std::strtoull(Argv[++I], nullptr, 0);
      continue;
    }
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      Options.Jobs = std::atoi(Argv[++I]);
      continue;
    }
    if (std::strcmp(Argv[I], "--min-ops") == 0 && I + 1 < Argc) {
      Options.MinOps = std::atoi(Argv[++I]);
      continue;
    }
    if (std::strcmp(Argv[I], "--max-ops") == 0 && I + 1 < Argc) {
      Options.MaxOps = std::atoi(Argv[++I]);
      continue;
    }
    if (std::strcmp(Argv[I], "--no-kernels") == 0) {
      Options.IncludeKernels = false;
      continue;
    }
    if (std::strcmp(Argv[I], "--conflict-budget") == 0 && I + 1 < Argc) {
      Options.Exact.ConflictBudget = std::atol(Argv[++I]);
      continue;
    }
    std::cerr << "usage: cgra_gap [--loops N] [--grid RxC] [--seed S] "
                 "[--jobs N] [--min-ops N] [--max-ops N] [--no-kernels] "
                 "[--conflict-budget N]\n";
    return 1;
  }
  if (Options.NumLoops < 0 || Options.MaxOps < Options.MinOps) {
    std::cerr << "cgra_gap: bad loop-count or op-range arguments\n";
    return 1;
  }

  const CgraOracleReport Report = runCgraOracle(Options);
  std::cout << "Placement-aware slack mapper vs exact SAT spatial mapper ("
            << Report.Cases.size() << " loops, grid "
            << Options.Cgra.rows() << "x" << Options.Cgra.cols() << ", seed "
            << Options.Seed << ")\n\n";
  printCgraOracleReport(std::cout, Report);

  return Report.ValidationFailures == 0 && Report.ParityViolations == 0 ? 0
                                                                        : 1;
}
