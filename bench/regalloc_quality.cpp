//===----------------------------------------------------------------------===//
/// \file Extension experiment: rotating-register allocation quality. The
/// paper approximates a schedule's register pressure by MaxLive because
/// Rau et al. [18] report allocators that almost always achieve MaxLive
/// (never worse than MaxLive+1 with end-fit/adjacency ordering). This
/// bench allocates every scheduled loop and measures registers used above
/// MaxLive, justifying that approximation within this codebase.
//===----------------------------------------------------------------------===//

#include "SuiteMetrics.h"
#include "core/ModuloScheduler.h"
#include "regalloc/RotatingAllocator.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace lsms;

int main(int Argc, char **Argv) {
  const int N = suiteSizeFromArgs(Argc, Argv, /*Default=*/600);
  const MachineModel Machine = MachineModel::cydra5();
  const std::vector<LoopBody> Suite = buildFullSuite(N);

  Histogram Excess(1, 8);
  long Done = 0, AtBound = 0, WithinOne = 0;
  for (const LoopBody &Body : Suite) {
    const Schedule Sched = scheduleLoop(Body, Machine);
    if (!Sched.Success)
      continue;
    const AllocationResult Alloc =
        allocateRotating(Body, Sched.Times, Sched.II, RegClass::RR);
    if (!Alloc.Success)
      continue;
    ++Done;
    const long Over = Alloc.FileSize - Alloc.MaxLive;
    Excess.add(Over);
    AtBound += Over == 0 ? 1 : 0;
    WithinOne += Over <= 1 ? 1 : 0;
  }

  std::cout << "Rotating register allocation: registers used above MaxLive ("
            << Done << " loops)\n";
  Excess.print(std::cout, "regs above MaxLive");
  std::cout << "\n" << formatNumber(100.0 * AtBound / Done, 1)
            << "% of loops allocate at exactly MaxLive; "
            << formatNumber(100.0 * WithinOne / Done, 1)
            << "% within MaxLive+1 (Rau et al. [18]: end-fit never needed "
               "more than MaxLive+1)\n";
  return 0;
}
