//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the benchmark harnesses that regenerate the paper's
/// tables and figures: per-loop static analysis (Table 2 metrics),
/// per-scheduler outcomes (II, MaxLive, MinAvg, ICR usage, statistics),
/// and the Table 3/4 performance printer.
///
//===----------------------------------------------------------------------===//

#ifndef LSMS_BENCH_SUITEMETRICS_H
#define LSMS_BENCH_SUITEMETRICS_H

#include "core/ModuloScheduler.h"
#include "ir/LoopBody.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace lsms {

/// Schedule-independent per-loop metrics (Table 2).
struct LoopAnalysis {
  std::string Name;
  int Ops = 0;            ///< machine operations (incl. brtop)
  int BasicBlocks = 1;    ///< source basic blocks before if-conversion
  int CriticalOps = 0;    ///< critical operations at MII
  int RecurrenceOps = 0;  ///< operations on non-trivial recurrence circuits
  int DivOps = 0;         ///< div/mod/sqrt operations
  int ResMII = 1;
  int RecMII = 1;
  int MII = 1;
  long MinAvgAtMII = 0;
  int Gprs = 0;
  bool HasConditional = false;
  bool HasRecurrence = false;
};

/// One scheduler's outcome on one loop.
struct SchedOutcome {
  bool Success = false;
  int II = 0;  ///< achieved II (last attempted II for failures)
  int MII = 0;
  long MaxLive = 0;
  long MinAvgAtII = 0;
  long MinAvgPerValueCeilAtII = 0;
  long IcrUsage = 0; ///< ICR MaxLive plus the kernel's stage predicates
  int Stages = 0;
  long ScheduleLength = 0;
  ScheduleStats Stats;
};

/// Computes the Table 2 metrics of one loop.
LoopAnalysis analyzeLoop(const LoopBody &Body, const MachineModel &Machine);

/// Schedules one loop and derives the pressure metrics.
SchedOutcome runScheduler(const LoopBody &Body, const MachineModel &Machine,
                          const SchedulerOptions &Options);

/// Suite size from argv: the first positional argument overrides the
/// paper's 1,525 for quick runs ("--jobs N" pairs are skipped).
int suiteSizeFromArgs(int Argc, char **Argv, int Default = 1525);

/// Parses an optional "--jobs N" flag anywhere in argv. Returns the
/// requested worker count, or 0 (= LSMS_JOBS / hardware default) when the
/// flag is absent or malformed; feed the result to resolveJobs().
int jobsFromArgs(int Argc, char **Argv);

/// Prints a Table 3/4-style performance table: per-class optimality, total
/// II vs total MII, and the II > MII tail distribution.
void printPerformanceTable(std::ostream &OS, const std::string &Title,
                           const std::vector<LoopAnalysis> &Analyses,
                           const std::vector<SchedOutcome> &Outcomes);

} // namespace lsms

#endif // LSMS_BENCH_SUITEMETRICS_H
