//===----------------------------------------------------------------------===//
/// \file schedule_server — the scheduling service behind a TCP socket:
/// an epoll front end (net/EpollServer.h) multiplexing JSONL request
/// connections onto the service's deterministic workers, with an
/// optional persistent schedule store so warm state survives restarts.
///
/// The wire protocol is the JSONL pipe, verbatim: one request per line,
/// one response line per request, in order, byte-identical to what
/// `schedule_service` prints for the same lines (service/Protocol.h
/// documents the v1 line shapes). `{"cmd":"metrics"}` returns server +
/// service metrics as one JSON line.
///
/// Scaling: --io-shards=N runs N SO_REUSEPORT-sharded IO event loops over
/// one worker pool. Under overload, requests degrade down the tier ladder
/// (exact -> slack -> cached) before anything is shed; --slack-queue and
/// --no-cached-fallback tune the ladder.
///
/// SIGTERM/SIGINT drain gracefully: the listener closes, in-flight and
/// already-connected work completes, then the process exits 0.
///
/// Usage:
///   schedule_server [--port=N] [--bind=ADDR] [--jobs=N] [--workers=N]
///                   [--io-shards=N] [--store=PATH]
///                   [--engine=slack|bnb|sat|portfolio]
///                   [--max-queue=N] [--slack-queue=N]
///                   [--no-cached-fallback] [--max-conns=N]
///                   [--idle-timeout-ms=N] [--drain-timeout-ms=N]
///                   [--node-budget=N] [--sat-conflict-budget=N]
///                   [--maxlive-node-budget=N]
///                   [--maxlive-conflict-budget=N]
///                   [--enable-test-commands] [--print-port] [--metrics]
///   --port=0 (default) binds an ephemeral port; --print-port writes the
///   bound port as a single line on stdout so scripts can connect.
///   Idle connections close after 60 s by default (--idle-timeout-ms=-1
///   disables the deadline; the embedded-server default is disabled, the
///   deployment default here is not).
//===----------------------------------------------------------------------===//

#include "net/EpollServer.h"
#include "service/EngineFlag.h"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace lsms;

namespace {

EpollServer *ActiveServer = nullptr;

void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestStop(); // async-signal-safe
}

void usage() {
  std::cerr
      << "usage: schedule_server [--port=N] [--bind=ADDR] [--jobs=N]\n"
         "                       [--workers=N] [--io-shards=N]\n"
         "                       [--store=PATH]\n"
         "                       [--engine=" << engineFlagChoices(true, false)
      << "]\n"
         "                       [--max-queue=N] [--slack-queue=N]\n"
         "                       [--no-cached-fallback] [--max-conns=N]\n"
         "                       [--idle-timeout-ms=N]\n"
         "                       [--drain-timeout-ms=N]\n"
         "                       [--node-budget=N] [--sat-conflict-budget=N]\n"
         "                       [--maxlive-node-budget=N]\n"
         "                       [--maxlive-conflict-budget=N]\n"
         "                       [--enable-test-commands] [--print-port]\n"
         "                       [--metrics]\n"
         "Serves JSONL scheduling requests over TCP. SIGTERM drains\n"
         "gracefully. --store persists schedules across restarts.\n"
         "--io-shards runs N SO_REUSEPORT IO loops; under overload the\n"
         "tier ladder degrades exact->slack->cached before shedding.\n";
}

} // namespace

int main(int Argc, char **Argv) {
  ServiceConfig Service;
  ServerConfig Server;
  // Deployment default: reap idle connections after a minute. The
  // embedded ServerConfig default stays -1 (disabled) so tests and
  // short-lived harnesses never race a reaper they did not ask for.
  Server.IdleTimeoutMs = 60000;
  std::string EngineName;
  bool PrintPort = false;
  bool PrintMetrics = false;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    const auto intOf = [&](size_t Prefix) {
      return std::strtol(Arg.c_str() + Prefix, nullptr, 10);
    };
    if (Arg.rfind("--port=", 0) == 0) {
      Server.Port = static_cast<uint16_t>(intOf(7));
    } else if (Arg.rfind("--bind=", 0) == 0) {
      Server.BindAddress = Arg.substr(7);
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      Service.Jobs = static_cast<int>(intOf(7));
    } else if (Arg.rfind("--workers=", 0) == 0) {
      Server.Workers = static_cast<int>(intOf(10));
    } else if (Arg.rfind("--io-shards=", 0) == 0) {
      Server.IoShards = static_cast<int>(intOf(12));
    } else if (Arg.rfind("--store=", 0) == 0) {
      Service.StorePath = Arg.substr(8);
    } else if (Arg.rfind("--engine=", 0) == 0) {
      EngineName = Arg.substr(9);
    } else if (Arg.rfind("--max-queue=", 0) == 0) {
      Server.MaxQueueDepth = static_cast<size_t>(intOf(12));
    } else if (Arg.rfind("--slack-queue=", 0) == 0) {
      Server.SlackQueueDepth = static_cast<size_t>(intOf(14));
    } else if (Arg == "--no-cached-fallback") {
      Server.CachedFallback = false;
    } else if (Arg.rfind("--max-conns=", 0) == 0) {
      Server.MaxConnections = static_cast<int>(intOf(12));
    } else if (Arg.rfind("--idle-timeout-ms=", 0) == 0) {
      Server.IdleTimeoutMs = intOf(18);
    } else if (Arg.rfind("--drain-timeout-ms=", 0) == 0) {
      Server.DrainTimeoutMs = intOf(19);
    } else if (applyExactBudgetFlag(Arg, Service.Exact)) {
      // parsed an exact-budget knob
    } else if (Arg == "--enable-test-commands") {
      Server.EnableTestCommands = true;
    } else if (Arg == "--print-port") {
      PrintPort = true;
    } else if (Arg == "--metrics") {
      PrintMetrics = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }
  if (!EngineName.empty()) {
    EngineSelection Sel;
    std::string EngineErr;
    if (!parseEngineSelection(EngineName, /*AllowSlack=*/true,
                              /*AllowAll=*/false, Sel, EngineErr)) {
      std::cerr << "schedule_server: " << EngineErr << "\n";
      return 2;
    }
    Server.DefaultEngine = Sel.Service;
  }

  SchedulingService Svc(Service);
  if (!Service.StorePath.empty() && !Svc.storeOpen()) {
    std::cerr << "schedule_server: store disabled: " << Svc.storeError()
              << "\n";
  } else if (Svc.storeOpen()) {
    std::cerr << "schedule_server: store '" << Service.StorePath << "' ("
              << Svc.storeStats().RecoveredRecords << " records recovered)\n";
  }

  EpollServer Srv(Svc, Server);
  std::string Err;
  if (!Srv.start(Err)) {
    std::cerr << "schedule_server: " << Err << "\n";
    return 1;
  }
  ActiveServer = &Srv;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cerr << "schedule_server: listening on " << Server.BindAddress << ":"
            << Srv.port() << " (" << Svc.jobs() << " workers)\n";
  if (PrintPort) {
    std::cout << Srv.port() << std::endl; // endl: scripts read one line
  }

  Srv.serve(); // returns after a signal-initiated drain

  // Every admitted request was answered before serve() returned; drain
  // the service too so the store closes with all writes applied.
  Svc.drain();
  if (PrintMetrics)
    std::cerr << Svc.metricsJson();
  std::cerr << "schedule_server: drained cleanly ("
            << Svc.metrics().counter("net_responses") << " responses, "
            << Svc.metrics().counter("net_shed") << " shed)\n";
  return 0;
}
