//===----------------------------------------------------------------------===//
/// \file Compares the paper's bidirectional slack scheduler against the
/// Cydrome-style baseline and the unidirectional ablation on the
/// hand-written kernel suite: achieved II and register pressure per loop.
/// The "II ex" yardstick column comes from an exact engine selected with
/// --engine {bnb,sat,portfolio,both}; both runs all three engines side by
/// side and reports any disagreement on the proven-minimal II (there must
/// be none).
//===----------------------------------------------------------------------===//

#include "bounds/Lifetimes.h"
#include "cgra/CgraOracle.h"
#include "core/ModuloScheduler.h"
#include "exact/ExactEngine.h"
#include "service/EngineFlag.h"
#include "support/Table.h"
#include "workloads/Suite.h"

#include <cstring>
#include <iostream>

using namespace lsms;

namespace {

struct Row {
  int II = 0;
  long MaxLive = 0;
};

Row runOne(const LoopBody &Body, const MachineModel &Machine,
           const SchedulerOptions &Options) {
  Row R;
  const Schedule Sched = scheduleLoop(Body, Machine, Options);
  if (!Sched.Success)
    return R;
  R.II = Sched.II;
  R.MaxLive =
      computePressure(Body, Sched.Times, Sched.II, RegClass::RR).MaxLive;
  return R;
}

std::string exactIIString(const ExactResult &Exact) {
  return Exact.Sched.Success ? std::to_string(Exact.Sched.II)
                             : std::string(exactStatusName(Exact.Status));
}

/// --cgra mode: the placement-aware slack mapper vs the exact SAT spatial
/// mapper on the kernel suite, mapped onto \p Cgra. Returns the exit code.
int runCgraComparison(const CgraModel &Cgra) {
  TextTable T;
  T.setHeader({"kernel", "ops", "flatMII", "II slk", "II ex", "status",
               "gap"});
  int Disagreements = 0, AboveFlat = 0;
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, Cgra.flatModel());
    const CgraMapping Heur = mapLoopCgra(Graph, Cgra);
    const CgraExactResult Exact = mapLoopCgraExact(Graph, Cgra);
    std::string HeurErr, ExactErr;
    if (Heur.Success)
      HeurErr = validateMapping(Graph, Cgra, Heur);
    if (Exact.Map.Success)
      ExactErr = validateMapping(Graph, Cgra, Exact.Map);
    if (!HeurErr.empty() || !ExactErr.empty() ||
        (Exact.Status == ExactStatus::Optimal && Heur.Success &&
         Heur.II < Exact.Map.II)) {
      std::cerr << Body.Name << ": "
                << (!HeurErr.empty()
                        ? "heuristic mapping invalid: " + HeurErr
                    : !ExactErr.empty()
                        ? "exact mapping invalid: " + ExactErr
                        : "heuristic II beats a proven-optimal II")
                << "\n";
      ++Disagreements;
    }
    if (Exact.Status == ExactStatus::Optimal &&
        Exact.Map.II > Exact.Map.MII)
      ++AboveFlat;
    const bool ExactMapped = Exact.Map.Success;
    T.addRow({Body.Name, std::to_string(Body.numMachineOps()),
              std::to_string(Exact.Map.MII),
              Heur.Success ? std::to_string(Heur.II) : "-",
              ExactMapped ? std::to_string(Exact.Map.II) : "-",
              exactStatusName(Exact.Status),
              Heur.Success && ExactMapped
                  ? std::to_string(Heur.II - Exact.Map.II)
                  : "-"});
  }

  std::cout << "Spatial mapping comparison on the kernel suite\n"
            << "(grid " << Cgra.describe()
            << ";\n slk = placement-aware slack mapper, ex = exact SAT "
               "spatial mapper,\n flatMII = flat-machine lower bound, gap "
               "= slk II - ex II)\n\n";
  T.print(std::cout);
  std::cout << "\nKernels whose certified spatial II exceeds the flat MII: "
            << AboveFlat << " (the grid constraints bind there)\n";
  return Disagreements == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  ExactOptions ExactConfig;
  bool Both = false;
  bool UseCgra = false;
  CgraModel Cgra = CgraModel::defaultGrid(4, 4);
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--cgra") == 0 && I + 1 < Argc) {
      std::string GridErr;
      if (!CgraModel::parseGridArg(Argv[++I], Cgra, GridErr)) {
        std::cerr << "scheduler_comparison: " << GridErr << "\n";
        return 1;
      }
      UseCgra = true;
      continue;
    }
    if (std::strcmp(Argv[I], "--engine") == 0 && I + 1 < Argc) {
      EngineSelection Sel;
      std::string EngineErr;
      if (!parseEngineSelection(Argv[++I], /*AllowSlack=*/false,
                                /*AllowAll=*/true, Sel, EngineErr)) {
        std::cerr << "scheduler_comparison: " << EngineErr << "\n";
        return 1;
      }
      Both = Sel.All;
      if (!Sel.All)
        ExactConfig.Engine = Sel.Exact;
      continue;
    }
    if (applyExactBudgetFlag(Argv[I], ExactConfig))
      continue;
    std::cerr << "usage: scheduler_comparison "
                 "[--engine bnb|sat|portfolio|both] [--cgra RxC]\n"
                 "       [--node-budget=N] [--sat-conflict-budget=N]\n"
                 "       [--maxlive-node-budget=N] "
                 "[--maxlive-conflict-budget=N]\n";
    return 1;
  }

  if (UseCgra)
    return runCgraComparison(Cgra);

  const MachineModel Machine = MachineModel::cydra5();

  TextTable T;
  T.setHeader({"kernel", "ops", "MII", "II ex", "II slk", "II cyd", "RR slk",
               "RR uni", "RR cyd"});
  long TotalSlack = 0, TotalUni = 0, TotalCydrome = 0;
  int Disagreements = 0;
  for (const LoopBody &Body : buildKernelSuite()) {
    const DepGraph Graph(Body, Machine);
    const Schedule Probe = scheduleLoop(Graph);
    // The exact scheduler proves the minimal II, giving the heuristics an
    // absolute yardstick instead of just MII.
    const ExactResult Exact = scheduleLoopExact(Graph, ExactConfig);
    std::string ExactII = exactIIString(Exact);
    if (Both) {
      for (const ExactEngineKind Other :
           {ExactEngineKind::Sat, ExactEngineKind::Portfolio}) {
        ExactOptions OtherConfig = ExactConfig;
        OtherConfig.Engine = Other;
        const ExactResult R = scheduleLoopExact(Graph, OtherConfig);
        if (exactIIString(R) != ExactII) {
          std::cerr << Body.Name << ": engines disagree: bnb " << ExactII
                    << " vs " << exactEngineName(Other) << " "
                    << exactIIString(R) << "\n";
          ++Disagreements;
          ExactII += "!";
        }
      }
    }
    const Row Slack = runOne(Body, Machine, SchedulerOptions::slack());
    const Row Uni =
        runOne(Body, Machine, SchedulerOptions::unidirectionalSlack());
    const Row Cyd = runOne(Body, Machine, SchedulerOptions::cydrome());
    TotalSlack += Slack.MaxLive;
    TotalUni += Uni.MaxLive;
    TotalCydrome += Cyd.MaxLive;
    T.addRow({Body.Name, std::to_string(Body.numMachineOps()),
              std::to_string(Probe.MII), ExactII, std::to_string(Slack.II),
              std::to_string(Cyd.II), std::to_string(Slack.MaxLive),
              std::to_string(Uni.MaxLive), std::to_string(Cyd.MaxLive)});
  }
  T.addSeparator();
  T.addRow({"total", "", "", "", "", "", std::to_string(TotalSlack),
            std::to_string(TotalUni), std::to_string(TotalCydrome)});

  std::cout << "Scheduler comparison on the kernel suite\n"
            << "(ex = proven-minimal II from the exact scheduler, slk = "
               "bidirectional slack,\n uni = unidirectional slack ablation, "
               "cyd = Cydrome-style baseline)\n\n";
  T.print(std::cout);
  std::cout << "\nThe paper's claim: the bidirectional heuristics are what "
               "cut register pressure;\nwithout them slack scheduling "
               "behaves like Cydrome's scheduler.\n";
  if (Both)
    std::cout << "\nCross-engine check (bnb vs sat vs portfolio): "
              << (Disagreements == 0 ? "engines agree on every kernel"
                                     : "DISAGREEMENTS FOUND")
              << "\n";
  return Disagreements == 0 ? 0 : 1;
}
