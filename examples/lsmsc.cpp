//===----------------------------------------------------------------------===//
/// \file lsmsc — a command-line driver for the whole pipeline: reads a
/// loop-DSL program from a file (or stdin with "-"), compiles, modulo
/// schedules, and optionally prints the IR, the schedule, the kernel code,
/// and a simulation report.
///
/// Usage:
///   lsmsc [options] <file.loop | ->
///     --scheduler=slack|cydrome|unidirectional
///     --load-latency=N     override the machine's load latency
///     --iterations=N       simulate N iterations (default 40; 0 disables)
///     --print-ir --print-schedule --print-kernel   (all on by default)
///     --quiet              only print the summary line
//===----------------------------------------------------------------------===//

#include "bounds/Lifetimes.h"
#include "codegen/KernelCodeGen.h"
#include "core/ModuloScheduler.h"
#include "core/SchedulePrinter.h"
#include "core/Validate.h"
#include "frontend/LoopCompiler.h"
#include "vliwsim/MachineSim.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace lsms;

namespace {

void usage() {
  std::cerr
      << "usage: lsmsc [--scheduler=slack|cydrome|unidirectional]\n"
         "             [--load-latency=N] [--iterations=N] [--quiet]\n"
         "             <file.loop | ->\n";
}

} // namespace

int main(int Argc, char **Argv) {
  SchedulerOptions Options = SchedulerOptions::slack();
  std::string SchedName = "slack";
  int LoadLatency = -1;
  long Iterations = 40;
  bool Quiet = false;
  std::string Path;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg.rfind("--scheduler=", 0) == 0) {
      SchedName = Arg.substr(12);
      if (SchedName == "slack") {
        Options = SchedulerOptions::slack();
      } else if (SchedName == "cydrome") {
        Options = SchedulerOptions::cydrome();
      } else if (SchedName == "unidirectional") {
        Options = SchedulerOptions::unidirectionalSlack();
      } else {
        usage();
        return 2;
      }
    } else if (Arg.rfind("--load-latency=", 0) == 0) {
      LoadLatency = std::atoi(Arg.c_str() + 15);
    } else if (Arg.rfind("--iterations=", 0) == 0) {
      Iterations = std::atol(Arg.c_str() + 13);
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      usage();
      return 2;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    usage();
    return 2;
  }

  std::string Source;
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::cerr << "error: cannot open " << Path << '\n';
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  LoopBody Body;
  if (const std::string Err = compileLoop(Source, Path, Body);
      !Err.empty()) {
    std::cerr << "error: " << Err << '\n';
    return 1;
  }
  if (!Quiet) {
    std::cout << "=== IR ===\n";
    Body.print(std::cout);
  }

  const MachineModel Machine = LoadLatency > 0
                                   ? MachineModel::withLoadLatency(LoadLatency)
                                   : MachineModel::cydra5();
  const DepGraph Graph(Body, Machine);
  const Schedule Sched = scheduleLoop(Graph, Options);
  if (!Sched.Success) {
    std::cerr << "error: could not pipeline this loop (last II attempted "
              << Sched.II << ")\n";
    return 1;
  }
  const std::string Valid = validateSchedule(Graph, Sched);
  if (!Valid.empty()) {
    std::cerr << "internal error: invalid schedule: " << Valid << '\n';
    return 1;
  }

  const PressureInfo Pressure =
      computePressure(Body, Sched.Times, Sched.II, RegClass::RR);

  KernelCode Code;
  if (const std::string Err = generateKernelCode(Body, Sched, Code);
      !Err.empty()) {
    std::cerr << "error: " << Err << '\n';
    return 1;
  }
  if (!Quiet) {
    std::cout << "\n=== Modulo reservation table ===\n";
    printReservationTable(std::cout, Body, Machine, Sched);
    std::cout << "\n=== Kernel (" << SchedName << " scheduler) ===\n";
    Code.print(std::cout, Body);
  }

  std::string SimNote = "simulation skipped";
  if (Iterations > 0) {
    const ExecutionResult Ref = runReference(Body, Iterations);
    ExecutionResult Mach = runKernelCode(Body, Code, Iterations);
    ExecutionResult RefAligned = Ref;
    for (auto It = RefAligned.LiveOuts.begin();
         It != RefAligned.LiveOuts.end();)
      It = Mach.LiveOuts.count(It->first) ? std::next(It)
                                          : RefAligned.LiveOuts.erase(It);
    const std::string Diff = compareExecutions(RefAligned, Mach);
    SimNote = Diff.empty()
                  ? "simulated " + std::to_string(Iterations) +
                        " iterations: machine == reference"
                  : "SIMULATION MISMATCH: " + Diff;
  }

  std::cout << "\n" << Body.Name << ": " << Body.numMachineOps()
            << " ops, MII=" << Sched.MII << " (Res " << Sched.ResMII
            << ", Rec " << Sched.RecMII << "), II=" << Sched.II
            << ", stages=" << Code.StageCount
            << ", MaxLive=" << Pressure.MaxLive << ", RR=" << Code.RRSize
            << ", ICR=" << Code.ICRSize << ", GPR=" << Code.GprCount << "; "
            << SimNote << '\n';
  return 0;
}
