//===----------------------------------------------------------------------===//
/// \file Quickstart: compile the paper's Figure 1 loop from DSL source,
/// modulo schedule it with the bidirectional slack scheduler, and inspect
/// the result — II vs MII, the schedule, and register pressure against the
/// schedule-independent lower bounds of Section 3.
//===----------------------------------------------------------------------===//

#include "bounds/Lifetimes.h"
#include "core/ModuloScheduler.h"
#include "core/Validate.h"
#include "frontend/LoopCompiler.h"
#include "graph/MinDist.h"

#include <iostream>

using namespace lsms;

int main() {
  // The paper's Figure 1 sample loop (a pair of coupled recurrences):
  const std::string Source = "loop i = 3, n\n"
                             "  x[i] = x[i-1] + y[i-2]\n"
                             "  y[i] = y[i-1] + x[i-2]\n"
                             "end\n";

  // 1. Compile: if-conversion, load/store elimination (the x/y reads flow
  //    through rotating registers), dependence omegas, address streams.
  LoopBody Body;
  if (const std::string Err = compileLoop(Source, "sample", Body);
      !Err.empty()) {
    std::cerr << "compile error: " << Err << '\n';
    return 1;
  }
  std::cout << "=== Loop IR ===\n";
  Body.print(std::cout);

  // 2. Schedule on the paper's Cydra-5-like machine.
  const MachineModel Machine = MachineModel::cydra5();
  const DepGraph Graph(Body, Machine);
  const Schedule Sched = scheduleLoop(Graph);
  if (!Sched.Success) {
    std::cerr << "scheduling failed\n";
    return 1;
  }
  std::cout << "\n=== Schedule ===\n"
            << "ResMII=" << Sched.ResMII << " RecMII=" << Sched.RecMII
            << " MII=" << Sched.MII << " -> achieved II=" << Sched.II
            << " (length " << Sched.length() << ")\n";
  for (const Operation &Op : Body.Ops)
    if (!isPseudo(Op.Opc))
      std::cout << "  cycle " << Sched.Times[static_cast<size_t>(Op.Id)]
                << ": " << Op.Name << '\n';
  std::cout << "validator: "
            << (validateSchedule(Graph, Sched).empty() ? "OK" : "BROKEN")
            << '\n';

  // 3. Register pressure vs the Section 3 lower bound.
  const PressureInfo Pressure =
      computePressure(Body, Sched.Times, Sched.II, RegClass::RR);
  MinDistMatrix MinDist;
  MinDist.compute(Graph, Sched.II);
  std::cout << "\n=== Register pressure ===\n"
            << "MaxLive = " << Pressure.MaxLive
            << ", MinAvg lower bound = " << computeMinAvg(Graph, MinDist)
            << ", LiveVector = <";
  for (size_t C = 0; C < Pressure.LiveVector.size(); ++C)
    std::cout << (C ? "," : "") << Pressure.LiveVector[C];
  std::cout << ">\n";

  std::cout << "\nPer-value lifetimes (paper Figure 3: x lives ~[0,5), "
               "y ~[1,4) at II=2):\n";
  for (const Value &V : Body.Values) {
    if (V.Class != RegClass::RR ||
        Pressure.Length[static_cast<size_t>(V.Id)] == 0)
      continue;
    const int Def = Sched.Times[static_cast<size_t>(V.Def)];
    std::cout << "  " << V.Name << ": [" << Def << ","
              << Def + Pressure.Length[static_cast<size_t>(V.Id)]
              << ")  (MinLT " << computeMinLT(Graph, MinDist, V.Id) << ")\n";
  }
  return 0;
}
