//===----------------------------------------------------------------------===//
/// \file End-to-end demo: compile a conditional reduction kernel, modulo
/// schedule it, allocate rotating registers, emit kernel-only VLIW code
/// with stage predicates, execute that code on the simulated machine, and
/// verify the memory image and live-outs against sequential semantics.
//===----------------------------------------------------------------------===//

#include "codegen/KernelCodeGen.h"
#include "core/ModuloScheduler.h"
#include "frontend/LoopCompiler.h"
#include "regalloc/RotatingAllocator.h"
#include "vliwsim/MachineSim.h"

#include <iostream>

using namespace lsms;

int main() {
  // A loop with a conditional (if-converted to predicated stores + select)
  // and a reduction (self-recurrence kept in a rotating register).
  const std::string Source =
      "param hi = 2.2\n"
      "param s = 0\n"
      "loop i = 1, n\n"
      "  if (x[i] > hi) then\n"
      "    y[i] = hi\n"
      "    s = s + 1\n"
      "  else\n"
      "    y[i] = x[i]\n"
      "  end\n"
      "end\n";

  LoopBody Body;
  if (const std::string Err = compileLoop(Source, "clip_count", Body);
      !Err.empty()) {
    std::cerr << "compile error: " << Err << '\n';
    return 1;
  }

  const MachineModel Machine = MachineModel::cydra5();
  const Schedule Sched = scheduleLoop(Body, Machine);
  if (!Sched.Success) {
    std::cerr << "scheduling failed\n";
    return 1;
  }
  std::cout << "scheduled at II=" << Sched.II << " (MII=" << Sched.MII
            << "), " << Body.numMachineOps() << " ops, length "
            << Sched.length() << "\n\n";

  // Rotating register allocation (also done inside codegen; shown here for
  // the report).
  const AllocationResult RR =
      allocateRotating(Body, Sched.Times, Sched.II, RegClass::RR);
  const bool AllocOk =
      validateAllocation(Body, Sched.Times, Sched.II, RegClass::RR, RR)
          .empty();
  std::cout << "rotating allocation: " << RR.FileSize
            << " RRs for MaxLive=" << RR.MaxLive << " ("
            << (AllocOk ? "conflict-free" : "BROKEN") << ")\n\n";

  KernelCode Code;
  if (const std::string Err = generateKernelCode(Body, Sched, Code);
      !Err.empty()) {
    std::cerr << "codegen error: " << Err << '\n';
    return 1;
  }
  std::cout << "=== Kernel-only VLIW code ===\n";
  Code.print(std::cout, Body);

  const long N = 50;
  const ExecutionResult Ref = runReference(Body, N);
  const ExecutionResult Mach = runKernelCode(Body, Code, N);
  ExecutionResult RefAligned = Ref;
  for (auto It = RefAligned.LiveOuts.begin();
       It != RefAligned.LiveOuts.end();)
    It = Mach.LiveOuts.count(It->first) ? std::next(It)
                                        : RefAligned.LiveOuts.erase(It);

  const std::string Diff = compareExecutions(RefAligned, Mach);
  std::cout << "\nexecuted " << N << " iterations on the machine model: "
            << (Diff.empty() ? "memory and live-outs match the sequential "
                               "reference exactly"
                             : "MISMATCH: " + Diff)
            << '\n';

  // Show the reduction result.
  for (const Value &V : Body.Values)
    if (V.LiveOut && Mach.LiveOuts.count(V.Id))
      std::cout << "live-out " << V.Name << " = " << Mach.LiveOuts.at(V.Id)
                << '\n';
  return Diff.empty() ? 0 : 1;
}
