//===----------------------------------------------------------------------===//
/// \file schedule_service — the scheduling service as a command-line
/// filter: reads JSONL requests from a file (or stdin with "-"), answers
/// each on a persistent worker pool, and writes one JSONL response per
/// request, in request order, to stdout. The response stream is
/// byte-identical at every --jobs value (see DESIGN.md, "Scheduling
/// service").
///
/// Request lines look like
///   {"kernel": "hydro1", "engine": "bnb"}
///   {"source": "loop i = 1, n\n  x[i] = x[i-1] * 0.5\nend", "max_ii": 8}
/// with optional "id", "name", "deadline_ms", "emit_times" fields; blank
/// lines and '#' comments are skipped.
///
/// Usage:
///   schedule_service [--jobs=N] [--cache-capacity=N]
///                    [--engine=slack|bnb|sat|portfolio]
///                    [--node-budget=N] [--sat-conflict-budget=N]
///                    [--maxlive-node-budget=N]
///                    [--maxlive-conflict-budget=N]
///                    [--metrics] <requests.jsonl | ->
//===----------------------------------------------------------------------===//

#include "service/EngineFlag.h"
#include "service/SchedulingService.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace lsms;

namespace {

void usage() {
  std::cerr << "usage: schedule_service [--jobs=N] [--cache-capacity=N]\n"
               "                        [--engine="
            << engineFlagChoices(true, false)
            << "]\n"
               "                        [--node-budget=N]\n"
               "                        [--sat-conflict-budget=N]\n"
               "                        [--maxlive-node-budget=N]\n"
               "                        [--maxlive-conflict-budget=N]\n"
               "                        [--metrics] <requests.jsonl | ->\n"
               "Reads JSONL scheduling requests, writes JSONL responses in\n"
               "request order. --engine sets the default for requests that\n"
               "do not name one. --metrics prints cache and latency\n"
               "statistics to stderr afterwards.\n";
}

} // namespace

int main(int Argc, char **Argv) {
  ServiceConfig Config;
  bool PrintMetrics = false;
  std::string DefaultEngine;
  std::string Path;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg.rfind("--jobs=", 0) == 0) {
      Config.Jobs = std::atoi(Arg.c_str() + 7);
    } else if (Arg.rfind("--cache-capacity=", 0) == 0) {
      Config.CacheCapacity =
          static_cast<size_t>(std::strtoul(Arg.c_str() + 17, nullptr, 10));
    } else if (Arg.rfind("--engine=", 0) == 0) {
      DefaultEngine = Arg.substr(9);
    } else if (applyExactBudgetFlag(Arg, Config.Exact)) {
      // parsed an exact-budget knob
    } else if (Arg == "--metrics") {
      PrintMetrics = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      usage();
      return 2;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    usage();
    return 2;
  }

  ServiceEngine Engine = ServiceEngine::Slack;
  if (!DefaultEngine.empty()) {
    EngineSelection Sel;
    std::string EngineErr;
    if (!parseEngineSelection(DefaultEngine, /*AllowSlack=*/true,
                              /*AllowAll=*/false, Sel, EngineErr)) {
      std::cerr << "schedule_service: " << EngineErr << "\n";
      return 2;
    }
    Engine = Sel.Service;
  }

  SchedulingService Service(Config);
  int Failures = 0;
  if (Path == "-") {
    Failures = Service.processJsonl(std::cin, std::cout, Engine);
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::cerr << "schedule_service: cannot open '" << Path << "'\n";
      return 2;
    }
    Failures = Service.processJsonl(In, std::cout, Engine);
  }

  if (PrintMetrics)
    std::cerr << Service.metricsJson();
  return Failures ? 1 : 0;
}
